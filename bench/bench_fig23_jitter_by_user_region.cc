// Regenerates the paper's Figure 23 (jitter_by_user_region) from the full
// simulated study. See bench_common.h for environment overrides.
#include "bench_common.h"

RV_FIGURE_BENCH_MAIN(fig23_jitter_by_user_region)
