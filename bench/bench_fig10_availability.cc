// Regenerates the paper's Figure 10 (availability) from the full
// simulated study. See bench_common.h for environment overrides.
#include "bench_common.h"

RV_FIGURE_BENCH_MAIN(fig10_availability)
