// Regenerates the paper's Figure 11 (framerate_all) from the full
// simulated study. See bench_common.h for environment overrides.
#include "bench_common.h"

RV_FIGURE_BENCH_MAIN(fig11_framerate_all)
