// Regenerates the paper's Figure 28 (quality_vs_bandwidth) from the full
// simulated study. See bench_common.h for environment overrides.
#include "bench_common.h"

RV_FIGURE_BENCH_MAIN(fig28_quality_vs_bandwidth)
