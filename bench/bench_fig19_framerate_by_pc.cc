// Regenerates the paper's Figure 19 (framerate_by_pc) from the full
// simulated study. See bench_common.h for environment overrides.
#include "bench_common.h"

RV_FIGURE_BENCH_MAIN(fig19_framerate_by_pc)
