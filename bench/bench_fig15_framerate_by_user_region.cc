// Regenerates the paper's Figure 15 (framerate_by_user_region) from the full
// simulated study. See bench_common.h for environment overrides.
#include "bench_common.h"

RV_FIGURE_BENCH_MAIN(fig15_framerate_by_user_region)
