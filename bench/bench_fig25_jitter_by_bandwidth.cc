// Regenerates the paper's Figure 25 (jitter_by_bandwidth) from the full
// simulated study. See bench_common.h for environment overrides.
#include "bench_common.h"

RV_FIGURE_BENCH_MAIN(fig25_jitter_by_bandwidth)
