// Regenerates the paper's Figure 22 (jitter_by_server_region) from the full
// simulated study. See bench_common.h for environment overrides.
#include "bench_common.h"

RV_FIGURE_BENCH_MAIN(fig22_jitter_by_server_region)
