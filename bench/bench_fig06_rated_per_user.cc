// Regenerates the paper's Figure 6 (rated_per_user) from the full
// simulated study. See bench_common.h for environment overrides.
#include "bench_common.h"

RV_FIGURE_BENCH_MAIN(fig06_rated_per_user)
