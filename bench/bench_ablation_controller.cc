// Ablation: the UDP application-layer rate controller (DESIGN.md §4.3).
//
// Compares AIMD (the RealSystem-style default), TFRC (the TCP-friendly
// equation the paper cites [FHPW00]) and an unresponsive fixed-rate sender —
// the exact concern raised in the paper's §V.A discussion of congestion
// collapse. Expected shape: AIMD and TFRC deliver similar goodput with few
// rebuffers; the unresponsive sender wins no extra bandwidth but floods
// loaded links and stalls more.
#include "ablation_common.h"

namespace {

constexpr int kPlays = 24;

rv::tracer::TracerConfig with_controller(rv::server::CongestionControlKind k) {
  rv::tracer::TracerConfig cfg;
  cfg.udp_control = k;
  cfg.direct_tcp_probability = 0.0;  // UDP-only comparison
  // Congestion is what differentiates the controllers: on an uncongested
  // path the unresponsive sender simply wins (nothing punishes it). Run the
  // sweep with frequent saturation episodes, where blasting the top
  // SureStream level into a collapsed link costs complete frames.
  cfg.path.episode_probability = 0.25;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using rv::server::CongestionControlKind;
  std::cout << "Ablation: UDP rate controller (DSL/Cable users, "
            << kPlays << " plays each)\n";
  for (const auto& [label, kind] :
       {std::pair{"aimd (RealSystem-style)", CongestionControlKind::kAimd},
        std::pair{"tfrc (equation-based)", CongestionControlKind::kTfrc},
        std::pair{"none (unresponsive)", CongestionControlKind::kNone}}) {
    const auto stats = rv::bench::run_scenarios(
        with_controller(kind), rv::world::ConnectionClass::kDslCable,
        kPlays, 1000);
    rv::bench::print_ablation_row(label, stats);
  }

  benchmark::RegisterBenchmark("ablation/controller_aimd_play",
                               [](benchmark::State& state) {
                                 for (auto _ : state) {
                                   benchmark::DoNotOptimize(
                                       rv::bench::run_scenarios(
                                           with_controller(
                                               CongestionControlKind::kAimd),
                                           rv::world::ConnectionClass::
                                               kDslCable,
                                           1, 55));
                                 }
                               });
  return rv::bench::run_benchmark_tail(argc, argv);
}
