// Regenerates the paper's Figure 14 (framerate_by_server_region) from the full
// simulated study. See bench_common.h for environment overrides.
#include "bench_common.h"

RV_FIGURE_BENCH_MAIN(fig14_framerate_by_server_region)
