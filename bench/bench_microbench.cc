// Microbenchmarks of the simulation substrate: event scheduling, packet
// forwarding, TCP bulk transfer, frame-schedule generation, reassembly and
// CDF analysis. These bound how fast the full study can run and catch
// performance regressions in the hot paths.
#include <benchmark/benchmark.h>

#include <memory>

#include "media/catalog.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "telemetry/sampler.h"
#include "media/frame_schedule.h"
#include "media/packetizer.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "stats/cdf.h"
#include "transport/mux.h"
#include "transport/tcp.h"
#include "util/rng.h"

namespace {

using namespace rv;

void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(i, [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_SimulatorScheduleRun);

void BM_SimulatorCancelHeavy(benchmark::State& state) {
  // Retransmission-timer pattern: nearly every scheduled timer is cancelled
  // before it fires (an ack disarms it). Stresses cancel cost and tombstone
  // skipping; the old kernel paid an unordered_set insert+find per cancel.
  for (auto _ : state) {
    sim::Simulator sim;
    int fired = 0;
    std::vector<sim::EventId> ids;
    ids.reserve(100);
    for (int round = 0; round < 100; ++round) {
      ids.clear();
      for (int i = 0; i < 10; ++i) {
        ids.push_back(
            sim.schedule_at(sim.now() + 10 + i, [&fired] { ++fired; }));
      }
      for (int i = 0; i < 9; ++i) sim.cancel(ids[static_cast<size_t>(i)]);
      sim.run_until(sim.now() + 20);
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_SimulatorCancelHeavy);

void BM_SimulatorTimerChurn(benchmark::State& state) {
  // Steady-state churn: a fixed population of repeating timers, each firing
  // and immediately rescheduling itself — the playout/keepalive shape. The
  // heap stays small but every event is a pop+push; slot reuse keeps the
  // kernel allocation-free after warmup.
  constexpr int kTimers = 64;
  for (auto _ : state) {
    sim::Simulator sim;
    long fired = 0;
    std::function<void(int)> tick = [&](int period) {
      ++fired;
      if (fired < 10000) {
        sim.schedule_in(period, [&tick, period] { tick(period); });
      }
    };
    for (int t = 0; t < kTimers; ++t) {
      const int period = 5 + (t % 13);
      sim.schedule_in(period, [&tick, period] { tick(period); });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_SimulatorTimerChurn);

void BM_SimulatorTimerChurn64k(benchmark::State& state) {
  // Same churn shape at campaign scale: 64k concurrent timers. A comparison
  // heap is 8 levels deep here and every pop misses cache walking it; the
  // timer wheel keeps pop+push O(1), so the per-event gap vs the 64-timer
  // variant is the structure's payoff on the record.
  constexpr int kTimers = 64 * 1024;
  constexpr long kFires = 256 * 1024;
  for (auto _ : state) {
    sim::Simulator sim;
    long fired = 0;
    std::function<void(int)> tick = [&](int period) {
      ++fired;
      if (fired < kFires) {
        sim.schedule_in(period, [&tick, period] { tick(period); });
      }
    };
    for (int t = 0; t < kTimers; ++t) {
      const int period = 5 + (t % 13);
      sim.schedule_in(period, [&tick, period] { tick(period); });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * kFires);
}
BENCHMARK(BM_SimulatorTimerChurn64k)->Name("BM_SimulatorTimerChurn/64k")
    ->Unit(benchmark::kMicrosecond);

void BM_SimulatorWheelCascade(benchmark::State& state) {
  // Worst case for the hierarchical wheel: periods spanning all four levels
  // (sub-256us through multi-16s), so entries land high and cascade down —
  // sometimes across several levels — before firing. A pure heap pays
  // log(n) regardless; the wheel pays its amortised cascade cost here.
  constexpr long kFires = 20000;
  static constexpr int kPeriods[] = {7,      180,    3000,   70000,
                                     900000, 20000000, 300000000};
  for (auto _ : state) {
    sim::Simulator sim;
    long fired = 0;
    std::function<void(int)> tick = [&](int idx) {
      ++fired;
      if (fired < kFires) {
        const int next = (idx + 1) % 7;
        sim.schedule_in(kPeriods[next], [&tick, next] { tick(next); });
      }
    };
    for (int t = 0; t < 64; ++t) {
      const int idx = t % 7;
      sim.schedule_in(kPeriods[idx], [&tick, idx] { tick(idx); });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * kFires);
}
BENCHMARK(BM_SimulatorWheelCascade);

void BM_PacketForwardingChain(benchmark::State& state) {
  const auto hops = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    net::Network net(sim);
    std::vector<net::NodeId> nodes;
    for (std::size_t i = 0; i <= hops; ++i) {
      nodes.push_back(net.add_node("n"));
    }
    for (std::size_t i = 0; i < hops; ++i) {
      net.add_link(nodes[i], nodes[i + 1], mbps(100), msec(1));
    }
    net.compute_routes();
    int delivered = 0;
    net.node(nodes.back()).set_local_sink([&](net::Packet) { ++delivered; });
    for (int i = 0; i < 100; ++i) {
      net::Packet p;
      p.src = nodes.front();
      p.dst = nodes.back();
      p.proto = net::Protocol::kUdp;
      p.size_bytes = 1000;
      net.send(p);
    }
    sim.run();
    benchmark::DoNotOptimize(delivered);
  }
}
BENCHMARK(BM_PacketForwardingChain)->Arg(2)->Arg(8);

// A deep same-tick burst through one link: 512 packets queue behind the
// transmitter and drain at line rate. This is the shape the batched drain
// targets — the whole backlog is scheduled analytically in one event
// context (one delivery per packet plus a single batch-end) instead of a
// tx-done/start-transmission chain per packet. Arg 0 is the per-packet
// path (the default, and what the committed study runs); Arg 1 opts into
// the batched path — the pair is the in-tree ablation.
void BM_LinkBurstForward(benchmark::State& state) {
  constexpr int kPackets = 512;
  net::QueueConfig queue;
  queue.capacity_bytes = kPackets * 1000;
  queue.batch = state.range(0) != 0;
  for (auto _ : state) {
    sim::Simulator sim;
    net::Network net(sim);
    const auto a = net.add_node("a");
    const auto b = net.add_node("b");
    net.add_link(a, b, mbps(100), msec(1), queue);
    net.compute_routes();
    int delivered = 0;
    net.node(b).set_local_sink([&](net::Packet) { ++delivered; });
    for (int i = 0; i < kPackets; ++i) {
      net::Packet p;
      p.src = a;
      p.dst = b;
      p.proto = net::Protocol::kUdp;
      p.size_bytes = 1000;
      net.send(p);
    }
    sim.run();
    if (delivered != kPackets) state.SkipWithError("burst lost packets");
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * kPackets);
}
BENCHMARK(BM_LinkBurstForward)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

void BM_TcpBulkTransfer(benchmark::State& state) {
  struct Tag : net::PayloadMeta {};
  for (auto _ : state) {
    sim::Simulator sim;
    net::Network net(sim);
    const auto a = net.add_node("a");
    const auto b = net.add_node("b");
    net.add_link(a, b, mbps(10), msec(10));
    net.compute_routes();
    transport::TransportMux ma(net, a);
    transport::TransportMux mb(net, b);
    std::unique_ptr<transport::TcpConnection> accepted;
    transport::TcpListener listener(
        mb, 80, transport::TcpConfig{},
        [&](std::unique_ptr<transport::TcpConnection> c) {
          accepted = std::move(c);
        });
    transport::TcpConnection client(ma, transport::TcpConfig{});
    client.set_on_established([&] {
      for (int i = 0; i < 500; ++i) {
        client.send_chunk(1000, std::make_shared<Tag>());
      }
    });
    client.connect({b, 80});
    sim.run_until(sec(10));
    benchmark::DoNotOptimize(accepted->stats().bytes_delivered);
  }
}
BENCHMARK(BM_TcpBulkTransfer);

void BM_TcpChunkedSegments(benchmark::State& state) {
  // Many small application chunks per MSS: each TCP segment carries several
  // chunk records (the RTP-over-TCP interleaving shape), exercising the
  // per-packet chunk vector — inline up to 2 records after the SmallVec
  // change — and sack bookkeeping under loss-free reordering.
  struct Tag : net::PayloadMeta {};
  for (auto _ : state) {
    sim::Simulator sim;
    net::Network net(sim);
    const auto a = net.add_node("a");
    const auto b = net.add_node("b");
    net.add_link(a, b, mbps(10), msec(5));
    net.compute_routes();
    transport::TransportMux ma(net, a);
    transport::TransportMux mb(net, b);
    std::unique_ptr<transport::TcpConnection> accepted;
    transport::TcpListener listener(
        mb, 80, transport::TcpConfig{},
        [&](std::unique_ptr<transport::TcpConnection> c) {
          accepted = std::move(c);
        });
    transport::TcpConnection client(ma, transport::TcpConfig{});
    client.set_on_established([&] {
      for (int i = 0; i < 2000; ++i) {
        client.send_chunk(250, std::make_shared<Tag>());
      }
    });
    client.connect({b, 80});
    sim.run_until(sec(10));
    benchmark::DoNotOptimize(accepted->stats().bytes_delivered);
  }
}
BENCHMARK(BM_TcpChunkedSegments);

void BM_FrameScheduleGenerate(benchmark::State& state) {
  media::CatalogSpec spec;
  spec.clips_per_site = 1;
  spec.playlist_size = 1;
  const media::Catalog catalog(spec, {media::SiteProfile::kSportsNetwork});
  const auto& clip = catalog.clip(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(media::FrameSchedule::generate(clip, 0));
  }
}
BENCHMARK(BM_FrameScheduleGenerate);

void BM_PacketizeReassemble(benchmark::State& state) {
  media::VideoFrame frame;
  frame.index = 1;
  frame.pts = sec(1);
  frame.bytes = 6000;
  for (auto _ : state) {
    std::uint32_t seq = 0;
    const auto frags = media::packetize_frame(frame, 1, 0, 1000, seq);
    media::FrameAssembler assembler;
    std::optional<media::FrameAssembler::CompleteFrame> done;
    for (const auto& f : frags) done = assembler.add(*f);
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_PacketizeReassemble);

void BM_ObsHookDisabled(benchmark::State& state) {
  // Cost of 1000 emit+count hook pairs with no sink installed — the
  // tracing-off tax every hot-path call site pays. scripts/run_bench.py
  // --obs-overhead-check divides this per-pair cost into the measured
  // per-hop cost of BM_PacketForwardingChain to bound total overhead <2%.
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      obs::emit(i, obs::Code::kFrameDrop, static_cast<std::uint64_t>(i), 0);
      obs::count(obs::Counter::kPacketsEnqueued);
      // Compiler barrier: without it the thread-local load is hoisted and
      // the whole loop folds to nothing, measuring zero instead of the
      // per-call-site load+branch that real hook sites pay.
      benchmark::ClobberMemory();
    }
    benchmark::DoNotOptimize(obs::current_sink());
  }
}
BENCHMARK(BM_ObsHookDisabled);

void BM_ObsHookEnabled(benchmark::State& state) {
  // Same loop with a live sink: ring write + counter add per pair. Not
  // gated — tracing on is an explicitly requested mode — but tracked so a
  // regression is visible.
  obs::PlaySink sink;
  sink.reset(4096);
  obs::ScopedSink scope(&sink);
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      obs::emit(i, obs::Code::kFrameDrop, static_cast<std::uint64_t>(i), 0);
      obs::count(obs::Counter::kPacketsEnqueued);
    }
    benchmark::DoNotOptimize(sink.buffer.total_emitted());
  }
}
BENCHMARK(BM_ObsHookEnabled);

void BM_MetricsDisabled(benchmark::State& state) {
  // Cost of 1000 metrics_add hooks with no registry installed — the
  // metrics-off tax a campaign-loop call site pays (one relaxed atomic load
  // plus a predicted-untaken branch). Gated alongside the obs/telemetry
  // hooks by scripts/run_bench.py --obs-overhead-check.
  obs::install_metrics(nullptr);
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      obs::metrics_add(obs::Metric::kPlaysCompleted);
      benchmark::ClobberMemory();
    }
    benchmark::DoNotOptimize(obs::installed_metrics());
  }
}
BENCHMARK(BM_MetricsDisabled);

void BM_MetricsEnabled(benchmark::State& state) {
  // Same loop with a live registry: one relaxed fetch_add per call. Not
  // gated — the registry is only installed by tools — but tracked so a
  // regression is visible.
  obs::MetricsRegistry registry;
  obs::install_metrics(&registry);
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      obs::metrics_add(obs::Metric::kPlaysCompleted);
    }
    benchmark::DoNotOptimize(registry.value(obs::Metric::kPlaysCompleted));
  }
  obs::install_metrics(nullptr);
}
BENCHMARK(BM_MetricsEnabled);

void BM_SeriesSampleDisabled(benchmark::State& state) {
  // Cost of 1000 sample_if_active guards on an inactive sampler — the
  // telemetry-off tax a sampling call site pays, gated alongside the obs
  // hooks by scripts/run_bench.py --obs-overhead-check.
  sim::Simulator sim;
  telemetry::Series series;
  series.reset(0);
  telemetry::PlaySampler sampler(sim, nullptr, 0, telemetry::Probe{}, &series,
                                 msec(500));
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      sampler.sample_if_active(i);
      benchmark::ClobberMemory();
    }
    benchmark::DoNotOptimize(series.size());
  }
}
BENCHMARK(BM_SeriesSampleDisabled);

void BM_SeriesSampleEnabled(benchmark::State& state) {
  // Full sample_at against a live two-link network and synthetic probes.
  // Not gated — telemetry on is an explicitly requested mode — but tracked
  // so a per-tick regression is visible.
  sim::Simulator sim;
  net::Network net(sim);
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  const auto c = net.add_node("c");
  net.add_link(a, b, mbps(10), msec(5));
  net.add_link(b, c, mbps(10), msec(5));
  net.compute_routes();
  std::int64_t frames = 0, bytes = 0;
  telemetry::Probe probe;
  probe.buffer_sec = [] { return 4.2; };
  probe.frames_played = [&frames] { return frames += 7; };
  probe.bytes_received = [&bytes] { return bytes += 12000; };
  probe.cwnd_bytes = [] { return 8760.0; };
  probe.tcp_retransmits = [] { return std::uint64_t{3}; };
  telemetry::Series series;
  for (auto _ : state) {
    state.PauseTiming();
    series.reset(2);
    telemetry::PlaySampler sampler(sim, &net, 2, probe, &series, msec(500));
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) sampler.sample_at(i);
    benchmark::DoNotOptimize(series.size());
  }
}
BENCHMARK(BM_SeriesSampleEnabled);

void BM_CdfBuildAndQuery(benchmark::State& state) {
  util::Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 3000; ++i) xs.push_back(rng.normal(10.0, 5.0));
  for (auto _ : state) {
    const stats::Cdf cdf(xs);
    double acc = 0;
    for (double x = 0; x < 30; x += 0.5) acc += cdf.at(x);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_CdfBuildAndQuery);

}  // namespace

BENCHMARK_MAIN();
