// Microbenchmarks of the simulation substrate: event scheduling, packet
// forwarding, TCP bulk transfer, frame-schedule generation, reassembly and
// CDF analysis. These bound how fast the full study can run and catch
// performance regressions in the hot paths.
#include <benchmark/benchmark.h>

#include <memory>

#include "media/catalog.h"
#include "media/frame_schedule.h"
#include "media/packetizer.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "stats/cdf.h"
#include "transport/mux.h"
#include "transport/tcp.h"
#include "util/rng.h"

namespace {

using namespace rv;

void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(i, [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_SimulatorScheduleRun);

void BM_PacketForwardingChain(benchmark::State& state) {
  const auto hops = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    net::Network net(sim);
    std::vector<net::NodeId> nodes;
    for (std::size_t i = 0; i <= hops; ++i) {
      nodes.push_back(net.add_node("n"));
    }
    for (std::size_t i = 0; i < hops; ++i) {
      net.add_link(nodes[i], nodes[i + 1], mbps(100), msec(1));
    }
    net.compute_routes();
    int delivered = 0;
    net.node(nodes.back()).set_local_sink([&](net::Packet) { ++delivered; });
    for (int i = 0; i < 100; ++i) {
      net::Packet p;
      p.src = nodes.front();
      p.dst = nodes.back();
      p.proto = net::Protocol::kUdp;
      p.size_bytes = 1000;
      net.send(p);
    }
    sim.run();
    benchmark::DoNotOptimize(delivered);
  }
}
BENCHMARK(BM_PacketForwardingChain)->Arg(2)->Arg(8);

void BM_TcpBulkTransfer(benchmark::State& state) {
  struct Tag : net::PayloadMeta {};
  for (auto _ : state) {
    sim::Simulator sim;
    net::Network net(sim);
    const auto a = net.add_node("a");
    const auto b = net.add_node("b");
    net.add_link(a, b, mbps(10), msec(10));
    net.compute_routes();
    transport::TransportMux ma(net, a);
    transport::TransportMux mb(net, b);
    std::unique_ptr<transport::TcpConnection> accepted;
    transport::TcpListener listener(
        mb, 80, transport::TcpConfig{},
        [&](std::unique_ptr<transport::TcpConnection> c) {
          accepted = std::move(c);
        });
    transport::TcpConnection client(ma, transport::TcpConfig{});
    client.set_on_established([&] {
      for (int i = 0; i < 500; ++i) {
        client.send_chunk(1000, std::make_shared<Tag>());
      }
    });
    client.connect({b, 80});
    sim.run_until(sec(10));
    benchmark::DoNotOptimize(accepted->stats().bytes_delivered);
  }
}
BENCHMARK(BM_TcpBulkTransfer);

void BM_FrameScheduleGenerate(benchmark::State& state) {
  media::CatalogSpec spec;
  spec.clips_per_site = 1;
  spec.playlist_size = 1;
  const media::Catalog catalog(spec, {media::SiteProfile::kSportsNetwork});
  const auto& clip = catalog.clip(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(media::FrameSchedule::generate(clip, 0));
  }
}
BENCHMARK(BM_FrameScheduleGenerate);

void BM_PacketizeReassemble(benchmark::State& state) {
  media::VideoFrame frame;
  frame.index = 1;
  frame.pts = sec(1);
  frame.bytes = 6000;
  for (auto _ : state) {
    std::uint32_t seq = 0;
    const auto frags = media::packetize_frame(frame, 1, 0, 1000, seq);
    media::FrameAssembler assembler;
    std::optional<media::FrameAssembler::CompleteFrame> done;
    for (const auto& f : frags) done = assembler.add(*f);
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_PacketizeReassemble);

void BM_CdfBuildAndQuery(benchmark::State& state) {
  util::Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 3000; ++i) xs.push_back(rng.normal(10.0, 5.0));
  for (auto _ : state) {
    const stats::Cdf cdf(xs);
    double acc = 0;
    for (double x = 0; x < 30; x += 0.5) acc += cdf.at(x);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_CdfBuildAndQuery);

}  // namespace

BENCHMARK_MAIN();
