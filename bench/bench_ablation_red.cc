// Ablation: drop-tail vs RED queues on the wide-area path (DESIGN.md §4.2).
//
// The paper's congestion references [FF98] advocate active queue management.
// Expected shape: RED trims the standing queue (lower jitter from queueing
// delay, especially for modem-class flows behind bloated buffers) at a small
// cost in loss-triggered adaptation events.
#include "ablation_common.h"

namespace {

constexpr int kPlays = 20;

rv::tracer::TracerConfig with_policy(rv::net::QueuePolicy policy) {
  rv::tracer::TracerConfig cfg;
  cfg.path.queue_policy = policy;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  for (const auto connection : {rv::world::ConnectionClass::kModem56k,
                                rv::world::ConnectionClass::kDslCable}) {
    std::cout << "Ablation: queue discipline ("
              << rv::world::connection_class_name(connection) << " users, "
              << kPlays << " plays each)\n";
    for (const auto& [label, policy] :
         {std::pair{"drop-tail (2001 default)",
                    rv::net::QueuePolicy::kDropTail},
          std::pair{"RED", rv::net::QueuePolicy::kRed}}) {
      const auto stats = rv::bench::run_scenarios(with_policy(policy),
                                                  connection, kPlays, 5000);
      rv::bench::print_ablation_row(label, stats);
    }
  }

  benchmark::RegisterBenchmark(
      "ablation/red_play", [](benchmark::State& state) {
        for (auto _ : state) {
          benchmark::DoNotOptimize(rv::bench::run_scenarios(
              with_policy(rv::net::QueuePolicy::kRed),
              rv::world::ConnectionClass::kDslCable, 1, 66));
        }
      });
  return rv::bench::run_benchmark_tail(argc, argv);
}
