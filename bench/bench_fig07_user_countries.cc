// Regenerates the paper's Figure 7 (user_countries) from the full
// simulated study. See bench_common.h for environment overrides.
#include "bench_common.h"

RV_FIGURE_BENCH_MAIN(fig07_user_countries)
