// Ablation: adaptive media packet sizing (DESIGN.md §4.6).
//
// RealServer sizes packets to the client's connection speed so a modem
// doesn't spend 300+ ms serialising one packet. Expected shape: fixed
// MTU-size packets raise modem jitter (serialisation delay quantum) and
// frame loss impact; broadband is largely indifferent.
#include "ablation_common.h"

namespace {

constexpr int kPlays = 20;

rv::tracer::TracerConfig variant(bool adaptive) {
  rv::tracer::TracerConfig cfg;
  cfg.adaptive_packet_size = adaptive;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  for (const auto connection : {rv::world::ConnectionClass::kModem56k,
                                rv::world::ConnectionClass::kDslCable}) {
    std::cout << "Ablation: packet sizing ("
              << rv::world::connection_class_name(connection) << " users, "
              << kPlays << " plays each)\n";
    for (const bool adaptive : {true, false}) {
      const auto stats = rv::bench::run_scenarios(variant(adaptive),
                                                  connection, kPlays, 4000);
      rv::bench::print_ablation_row(
          adaptive ? "adaptive (RealServer)" : "fixed 1400B", stats);
    }
  }

  benchmark::RegisterBenchmark(
      "ablation/packet_size_play", [](benchmark::State& state) {
        for (auto _ : state) {
          benchmark::DoNotOptimize(rv::bench::run_scenarios(
              variant(true), rv::world::ConnectionClass::kModem56k, 1, 99));
        }
      });
  return rv::bench::run_benchmark_tail(argc, argv);
}
