// Ablation: SureStream level switching and Scalable Video Technology
// thinning (DESIGN.md §4.6, paper §II.C).
//
// Expected shape: with both off, constrained sessions rebuffer heavily
// instead of degrading gracefully; SureStream recovers most of the frame
// rate, SVT trims the residual stalls.
#include "ablation_common.h"

namespace {

constexpr int kPlays = 20;

rv::tracer::TracerConfig variant(bool surestream, bool svt) {
  rv::tracer::TracerConfig cfg;
  cfg.surestream_enabled = surestream;
  cfg.svt_enabled = svt;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "Ablation: SureStream + SVT (modem users, " << kPlays
            << " plays each)\n";
  for (const auto& [label, ss, svt] :
       {std::tuple{"surestream+svt (shipping)", true, true},
        std::tuple{"surestream only", true, false},
        std::tuple{"svt only", false, true},
        std::tuple{"neither (fixed level)", false, false}}) {
    const auto stats = rv::bench::run_scenarios(
        variant(ss, svt), rv::world::ConnectionClass::kModem56k, kPlays,
        3000);
    rv::bench::print_ablation_row(label, stats);
  }

  benchmark::RegisterBenchmark(
      "ablation/surestream_play", [](benchmark::State& state) {
        for (auto _ : state) {
          benchmark::DoNotOptimize(rv::bench::run_scenarios(
              variant(true, true), rv::world::ConnectionClass::kModem56k, 1,
              88));
        }
      });
  return rv::bench::run_benchmark_tail(argc, argv);
}
