// Regenerates the paper's Figure 20 (jitter_all) from the full
// simulated study. See bench_common.h for environment overrides.
#include "bench_common.h"

RV_FIGURE_BENCH_MAIN(fig20_jitter_all)
