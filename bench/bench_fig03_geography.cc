// Figures 3 and 4 of the paper are world maps of the RealServer sites and
// the participating users. This binary prints their textual equivalent: the
// server sites by backbone region and the user population by country —
// verifying the study's geographic footprint matches the paper's.
#include <benchmark/benchmark.h>

#include <iostream>
#include <map>
#include <set>

#include "bench_common.h"
#include "stats/render.h"
#include "world/servers.h"

int main(int argc, char** argv) {
  using namespace rv;
  std::cout << "Figure 3: RealServer sites (11 servers, 8 countries)\n";
  std::map<std::string, std::vector<std::string>> by_region;
  for (const auto& site : world::server_sites()) {
    by_region[std::string(world::region_name(site.region))].push_back(
        site.name);
  }
  for (const auto& [region, names] : by_region) {
    std::cout << "  " << region << ":";
    for (const auto& n : names) std::cout << " " << n;
    std::cout << "\n";
  }

  std::cout << "\nFigure 4: participating users by country (12 countries)\n";
  const auto users = world::generate_population({});
  std::map<std::string, int> by_country;
  for (const auto& u : users) ++by_country[u.country];
  for (const auto& [country, n] : by_country) {
    std::cout << "  " << country << ": " << n << " user" << (n > 1 ? "s" : "")
              << "\n";
  }
  const std::vector<stats::ComparisonRow> rows = {
      {"server countries", "8", std::to_string([&] {
         std::set<std::string> c;
         for (const auto& s : world::server_sites()) c.insert(s.country);
         return c.size();
       }())},
      {"user countries", "12", std::to_string(by_country.size())},
      {"users", "63", std::to_string(users.size())},
  };
  std::cout << "\n" << stats::render_comparison("paper vs measured", rows);

  benchmark::RegisterBenchmark("fig03_geography/population",
                               [](benchmark::State& state) {
                                 for (auto _ : state) {
                                   benchmark::DoNotOptimize(
                                       rv::world::generate_population({}));
                                 }
                               });
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
