// Regenerates the paper's Figure 9 (us_states) from the full
// simulated study. See bench_common.h for environment overrides.
#include "bench_common.h"

RV_FIGURE_BENCH_MAIN(fig09_us_states)
