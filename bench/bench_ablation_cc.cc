// Ablation: pluggable TCP congestion control (Reno / CUBIC / BBR).
//
// Two views of the same question — how much of the paper's poor-TCP story
// is the congestion controller rather than the path:
//
//  1. A loss x jitter grid of bulk TCP transfers over a fixed bottleneck
//     (4 Mbit/s, 84 ms base RTT, 64 kB queue), goodput mean and CV across
//     seeds per cell. Reproduces the jittertrap orderings: random
//     (non-congestive) loss starves loss-based CC while BBR's model holds
//     near the wire rate, and delay jitter past ~20% of RTT fakes dupACK
//     loss signals with the same effect.
//  2. Tracer plays (force-TCP, SACK on, congested regime) per backend:
//     the rebuffer-rate view a viewer would experience.
//
// `--grid-json=PATH` additionally dumps the grid as JSON (consumed by
// scripts/run_bench.py --cc-grid to update BENCH_sim.json); `--quick` runs
// a single-cell, single-seed grid as a CI smoke.
#include <cmath>
#include <cstring>
#include <fstream>
#include <memory>

#include "ablation_common.h"
#include "net/link.h"
#include "net/network.h"
#include "transport/congestion_control.h"
#include "transport/tcp.h"
#include "util/rng.h"

namespace {

using rv::transport::CcAlgorithm;

struct NoMeta : rv::net::PayloadMeta {};

// Bulk-transfer goodput (bytes/sec delivered to the receiving app) over a
// client -> server path whose bottleneck suffers random per-packet loss
// and/or per-packet delay jitter on the data direction. Mirrors the
// CcScenario regression harness in tests/congestion_control_test.cc.
double bulk_goodput(CcAlgorithm algorithm, double loss_prob,
                    double jitter_frac_of_rtt, std::uint64_t seed,
                    rv::SimTime horizon) {
  namespace net = rv::net;
  rv::sim::Simulator sim;
  net::Network netw(sim);
  const net::NodeId client_id = netw.add_node("client");
  const net::NodeId ra = netw.add_node("ra");
  const net::NodeId rb = netw.add_node("rb");
  const net::NodeId server_id = netw.add_node("server");
  netw.add_link(client_id, ra, rv::mbps(100), rv::msec(1));
  net::Link& bottleneck =
      netw.add_link(ra, rb, rv::mbps(4), rv::msec(40), 64 * 1024);
  netw.add_link(rb, server_id, rv::mbps(100), rv::msec(1));
  netw.compute_routes();
  // Base RTT is 2*(1+40+1) = 84 ms; jitter is quoted as a fraction of it.
  const auto jitter_max =
      static_cast<std::int64_t>(jitter_frac_of_rtt * 84'000.0);

  auto rng = std::make_shared<rv::util::Rng>(seed * 6151 + 11);
  net::LinkDirection& data_dir = bottleneck.direction_from(ra);
  if (loss_prob > 0.0) {
    data_dir.set_fault_filter([rng, loss_prob](const net::Packet& p,
                                               rv::SimTime) {
      // Only data-bearing packets; pure ACKs ride the reverse direction.
      return p.size_bytes >= 500 && rng->bernoulli(loss_prob);
    });
  }
  if (jitter_max > 0) {
    data_dir.set_delay_jitter([rng, jitter_max](rv::SimTime) {
      return rng->uniform_int(0, jitter_max);
    });
  }

  rv::transport::TransportMux client_mux(netw, client_id);
  rv::transport::TransportMux server_mux(netw, server_id);
  rv::transport::TcpConfig cfg;
  cfg.cc = algorithm;
  cfg.sack_enabled = true;
  std::unique_ptr<rv::transport::TcpConnection> accepted;
  rv::transport::TcpListener listener(
      server_mux, 80, cfg,
      [&](std::unique_ptr<rv::transport::TcpConnection> c) {
        accepted = std::move(c);
      });
  rv::transport::TcpConnection client(client_mux, cfg);
  client.set_on_established([&] {
    for (int i = 0; i < 20'000; ++i) {  // 20 MB: never source-limited
      client.send_chunk(1000, std::make_shared<NoMeta>());
    }
  });
  client.connect({server_id, 80});
  sim.run_until(horizon);
  if (accepted == nullptr) return 0.0;
  return static_cast<double>(accepted->stats().bytes_delivered) /
         rv::to_seconds(horizon);
}

struct Cell {
  double mean = 0.0;
  double cv = 0.0;
};

Cell grid_cell(CcAlgorithm algorithm, double loss, double jitter,
               int seeds, rv::SimTime horizon) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int s = 1; s <= seeds; ++s) {
    const double v = bulk_goodput(algorithm, loss, jitter,
                                  static_cast<std::uint64_t>(s), horizon);
    sum += v;
    sum_sq += v * v;
  }
  Cell cell;
  cell.mean = sum / seeds;
  const double var =
      seeds > 1 ? (sum_sq - sum * sum / seeds) / (seeds - 1) : 0.0;
  cell.cv = cell.mean > 0.0 ? std::sqrt(std::max(var, 0.0)) / cell.mean : 0.0;
  return cell;
}

rv::tracer::TracerConfig play_variant(CcAlgorithm algorithm) {
  rv::tracer::TracerConfig cfg;
  cfg.tcp_cc = algorithm;
  cfg.tcp_sack = true;               // scoreboard recovery for every backend
  cfg.direct_tcp_probability = 1.0;  // TCP-only comparison
  cfg.path.episode_probability = 0.20;  // congested regime
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const char* grid_json = nullptr;
  bool quick = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--grid-json=", 12) == 0) {
      grid_json = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  const std::vector<double> losses =
      quick ? std::vector<double>{0.05} : std::vector<double>{0.0, 0.01, 0.03, 0.05};
  const std::vector<double> jitters =
      quick ? std::vector<double>{0.0} : std::vector<double>{0.0, 0.10, 0.25, 0.50};
  const int seeds = quick ? 1 : 4;
  const rv::SimTime horizon = quick ? rv::sec(10) : rv::sec(30);
  const CcAlgorithm algorithms[] = {CcAlgorithm::kReno, CcAlgorithm::kCubic,
                                    CcAlgorithm::kBbr};

  std::cout << "Ablation: TCP congestion control, bulk goodput (bytes/s) on "
               "4 Mbit/s / 84 ms RTT / 64 kB queue, "
            << seeds << " seed(s)\n";
  std::string json = "{\n  \"grid\": {\n";
  for (std::size_t a = 0; a < 3; ++a) {
    const CcAlgorithm algorithm = algorithms[a];
    const char* name = rv::transport::cc_algorithm_name(algorithm);
    json += std::string("    \"") + name + "\": {\n";
    bool first = true;
    for (const double loss : losses) {
      for (const double jitter : jitters) {
        const Cell cell = grid_cell(algorithm, loss, jitter, seeds, horizon);
        std::cout << "  " << name << " loss="
                  << rv::util::format_double(100.0 * loss, 0) << "% jitter="
                  << rv::util::format_double(100.0 * jitter, 0)
                  << "%rtt  goodput="
                  << rv::util::format_double(cell.mean, 0)
                  << "  cv=" << rv::util::format_double(cell.cv, 3) << "\n";
        char key[64];
        std::snprintf(key, sizeof(key), "loss%02d_jitter%02d",
                      static_cast<int>(100.0 * loss + 0.5),
                      static_cast<int>(100.0 * jitter + 0.5));
        char row[128];
        std::snprintf(row, sizeof(row),
                      "%s      \"%s\": {\"goodput\": %.0f, \"cv\": %.3f}",
                      first ? "" : ",\n", key, cell.mean, cell.cv);
        json += row;
        first = false;
      }
    }
    json += "\n    }";
    json += (a + 1 < 3) ? ",\n" : "\n";
  }
  json += "  },\n  \"rebuffers\": {\n";

  std::cout << "Tracer plays (force-TCP, SACK, congested regime):\n";
  const int plays = quick ? 4 : 16;
  for (std::size_t a = 0; a < 3; ++a) {
    const CcAlgorithm algorithm = algorithms[a];
    const char* name = rv::transport::cc_algorithm_name(algorithm);
    const auto stats = rv::bench::run_scenarios(
        play_variant(algorithm), rv::world::ConnectionClass::kDslCable, plays,
        7300, /*force_tcp=*/true);
    rv::bench::print_ablation_row(name, stats);
    char row[96];
    std::snprintf(row, sizeof(row), "    \"%s\": %.3f%s\n", name,
                  stats.mean_rebuffers, (a + 1 < 3) ? "," : "");
    json += row;
  }
  json += "  }\n}\n";

  if (grid_json != nullptr) {
    std::ofstream f(grid_json);
    f << json;
    if (!f) {
      std::cerr << "failed to write " << grid_json << "\n";
      return 1;
    }
  }

  benchmark::RegisterBenchmark(
      "ablation/cc_bulk_goodput", [](benchmark::State& state) {
        for (auto _ : state) {
          benchmark::DoNotOptimize(
              bulk_goodput(CcAlgorithm::kBbr, 0.03, 0.0, 1, rv::sec(5)));
        }
      });
  return rv::bench::run_benchmark_tail(argc, argv);
}
