// Shared scenario runner for the ablation benches: plays a fixed set of
// (user, clip) scenarios under a configurable TracerConfig and aggregates
// the playout statistics, so design choices (rate controller, pre-roll,
// SureStream, packet sizing) can be compared like-for-like.
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "stats/summary.h"
#include "study/study.h"
#include "tracer/real_tracer.h"
#include "util/strings.h"
#include "world/region_graph.h"

namespace rv::bench {

struct AblationStats {
  double mean_fps = 0.0;
  double mean_bandwidth_kbps = 0.0;
  double mean_jitter_ms = 0.0;
  double mean_rebuffers = 0.0;
  double mean_preroll_sec = 0.0;
  double pct_below_3fps = 0.0;
  int plays = 0;
};

inline world::UserProfile ablation_user(world::ConnectionClass connection) {
  world::UserProfile u;
  u.id = 0;
  u.country = "US";
  u.us_state = "MA";
  u.region = world::Region::kUsEast;
  u.group = world::UserRegionGroup::kUsCanada;
  u.connection = connection;
  u.pc_class = "Pentium II / 128-256";
  u.isp_load_lo = 0.35;
  u.isp_load_hi = 0.75;
  u.seed = 4242;
  return u;
}

// Plays `n` scenarios per connection class over varied seeds/clips.
inline AblationStats run_scenarios(const tracer::TracerConfig& config,
                                   world::ConnectionClass connection,
                                   int n, std::uint64_t seed_base,
                                   bool force_tcp = false) {
  study::StudyConfig study_cfg;
  study_cfg.tracer = config;
  const media::Catalog catalog = study::make_catalog(study_cfg);
  const world::RegionGraph graph;
  const tracer::RealTracer tracer(catalog, graph, config);
  const world::UserProfile user = ablation_user(connection);

  stats::Summary fps;
  stats::Summary bw;
  stats::Summary jitter;
  stats::Summary rebuf;
  stats::Summary preroll;
  int below3 = 0;
  int played = 0;
  for (int i = 0; i < n; ++i) {
    const auto rec = tracer.run_single(
        user, static_cast<std::size_t>(i) % catalog.size(),
        seed_base + static_cast<std::uint64_t>(i) * 7919, force_tcp);
    if (!rec.stats.played_any_frame) {
      ++below3;  // a dead session is the worst outcome
      ++played;
      fps.add(0.0);
      continue;
    }
    ++played;
    fps.add(rec.stats.measured_fps);
    bw.add(to_kbps(rec.stats.measured_bandwidth));
    jitter.add(rec.stats.jitter_ms);
    rebuf.add(rec.stats.rebuffer_events);
    preroll.add(rec.stats.preroll_seconds);
    if (rec.stats.measured_fps < 3.0) ++below3;
  }
  AblationStats out;
  out.plays = played;
  if (!fps.empty()) out.mean_fps = fps.mean();
  if (!bw.empty()) out.mean_bandwidth_kbps = bw.mean();
  if (!jitter.empty()) out.mean_jitter_ms = jitter.mean();
  if (!rebuf.empty()) out.mean_rebuffers = rebuf.mean();
  if (!preroll.empty()) out.mean_preroll_sec = preroll.mean();
  out.pct_below_3fps =
      played == 0 ? 0.0 : 100.0 * static_cast<double>(below3) / played;
  return out;
}

inline void print_ablation_row(const std::string& label,
                               const AblationStats& s) {
  std::cout << "  " << label << std::string(label.size() < 26 ? 26 - label.size() : 1, ' ')
            << " fps=" << util::format_double(s.mean_fps, 1)
            << "  <3fps=" << util::format_double(s.pct_below_3fps, 0) << "%"
            << "  bw=" << util::format_double(s.mean_bandwidth_kbps, 0) << "k"
            << "  jitter=" << util::format_double(s.mean_jitter_ms, 0) << "ms"
            << "  rebuf=" << util::format_double(s.mean_rebuffers, 2)
            << "  preroll=" << util::format_double(s.mean_preroll_sec, 1)
            << "s\n";
}

inline int run_benchmark_tail(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace rv::bench
