// Regenerates the paper's Figure 16 (protocol_mix) from the full
// simulated study. See bench_common.h for environment overrides.
#include "bench_common.h"

RV_FIGURE_BENCH_MAIN(fig16_protocol_mix)
