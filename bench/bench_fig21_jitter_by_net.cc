// Regenerates the paper's Figure 21 (jitter_by_net) from the full
// simulated study. See bench_common.h for environment overrides.
#include "bench_common.h"

RV_FIGURE_BENCH_MAIN(fig21_jitter_by_net)
