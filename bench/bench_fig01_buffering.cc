// Regenerates the paper's Figure 1: the buffering and playout time series of
// a single RealVideo clip (coded/actual bandwidth and frame rate vs time).
// This one simulates a single instrumented playout rather than the study.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "study/figures.h"

int main(int argc, char** argv) {
  const rv::study::StudyConfig config = rv::bench::config_from_env();
  rv::study::set_csv_export_dir("fig_data");
  std::cout << rv::study::fig01_buffering(config) << "\n";
  rv::study::set_csv_export_dir("");

  benchmark::RegisterBenchmark(
      "fig01_buffering/single_play", [&config](benchmark::State& state) {
        for (auto _ : state) {
          benchmark::DoNotOptimize(rv::study::fig01_buffering(config));
        }
      });
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
