// Shared plumbing for the per-figure bench binaries.
//
// Each binary regenerates one figure of the paper: it loads (or runs and
// caches) the full 2855-play study, prints the figure with its
// paper-vs-measured block, exports the CSV series to fig_data/, and
// registers a google-benchmark timing of the figure's analysis step.
//
// Environment overrides (useful on slow machines):
//   RV_PLAY_SCALE  — fraction of each user's playlist to simulate (default 1)
//   RV_THREADS     — worker threads for the study (default: hardware)
//   RV_SEED        — study master seed (default 2001)
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <string>

#include "study/cache.h"
#include "study/figures.h"
#include "study/study.h"

namespace rv::bench {

inline study::StudyConfig config_from_env() {
  study::StudyConfig config;
  if (const char* scale = std::getenv("RV_PLAY_SCALE")) {
    config.play_scale = std::atof(scale);
  }
  if (const char* threads = std::getenv("RV_THREADS")) {
    config.threads = std::atoi(threads);
  }
  if (const char* seed = std::getenv("RV_SEED")) {
    config.seed = static_cast<std::uint64_t>(std::atoll(seed));
  }
  return config;
}

inline const study::StudyResult& shared_study() {
  static const study::StudyResult result =
      study::run_study_cached(config_from_env());
  return result;
}

// Runs a figure bench binary: prints the regenerated figure, then times the
// analysis under google-benchmark.
inline int run_figure_main(
    int argc, char** argv, const char* name,
    std::string (*figure)(const study::StudyResult&)) {
  const auto& result = shared_study();
  study::set_csv_export_dir("fig_data");
  std::cout << figure(result) << "\n";
  study::set_csv_export_dir("");  // don't rewrite CSVs per benchmark iter

  benchmark::RegisterBenchmark(name, [figure, &result](
                                         benchmark::State& state) {
    for (auto _ : state) {
      benchmark::DoNotOptimize(figure(result));
    }
  });
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace rv::bench

#define RV_FIGURE_BENCH_MAIN(fig_fn)                                   \
  int main(int argc, char** argv) {                                    \
    return rv::bench::run_figure_main(argc, argv, #fig_fn,             \
                                      &rv::study::fig_fn);             \
  }
