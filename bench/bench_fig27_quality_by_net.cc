// Regenerates the paper's Figure 27 (quality_by_net) from the full
// simulated study. See bench_common.h for environment overrides.
#include "bench_common.h"

RV_FIGURE_BENCH_MAIN(fig27_quality_by_net)
