// Regenerates the paper's Figure 24 (jitter_by_protocol) from the full
// simulated study. See bench_common.h for environment overrides.
#include "bench_common.h"

RV_FIGURE_BENCH_MAIN(fig24_jitter_by_protocol)
