// Regenerates EVERY figure of the paper in one run, plus the study totals of
// §IV, and times the full analysis pass. The underlying study is shared via
// the on-disk cache with the per-figure binaries.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "study/figures.h"

namespace {

void print_everything(const rv::study::StudyResult& result,
                      const rv::study::StudyConfig& config) {
  using namespace rv::study;
  std::cout << study_summary(result) << "\n";
  std::cout << fig01_buffering(config) << "\n";
  for (const auto& text :
       {fig05_clips_per_user(result),  fig06_rated_per_user(result),
        fig07_user_countries(result),  fig08_server_countries(result),
        fig09_us_states(result),       fig10_availability(result),
        fig11_framerate_all(result),   fig12_framerate_by_net(result),
        fig13_bandwidth_by_net(result),
        fig14_framerate_by_server_region(result),
        fig15_framerate_by_user_region(result),
        fig16_protocol_mix(result),    fig17_framerate_by_protocol(result),
        fig18_bandwidth_by_protocol(result),
        fig19_framerate_by_pc(result), fig20_jitter_all(result),
        fig21_jitter_by_net(result),   fig22_jitter_by_server_region(result),
        fig23_jitter_by_user_region(result),
        fig24_jitter_by_protocol(result),
        fig25_jitter_by_bandwidth(result), fig26_quality_all(result),
        fig27_quality_by_net(result),  fig28_quality_vs_bandwidth(result)}) {
    std::cout << text << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const rv::study::StudyConfig config = rv::bench::config_from_env();
  const auto& result = rv::bench::shared_study();
  rv::study::set_csv_export_dir("fig_data");
  print_everything(result, config);
  rv::study::set_csv_export_dir("");

  benchmark::RegisterBenchmark(
      "fig_all/full_analysis", [&result](benchmark::State& state) {
        for (auto _ : state) {
          benchmark::DoNotOptimize(rv::study::fig11_framerate_all(result));
          benchmark::DoNotOptimize(rv::study::fig20_jitter_all(result));
          benchmark::DoNotOptimize(rv::study::fig26_quality_all(result));
        }
      });
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
