// Ablation: pre-roll buffer length (DESIGN.md §4.7, paper §II.B).
//
// The paper attributes the high fraction of jitter-free playouts to
// RealPlayer's "large initial buffer". Expected shape: longer pre-roll →
// fewer rebuffers and lower jitter, at the cost of a longer startup wait.
#include "ablation_common.h"

namespace {

constexpr int kPlays = 20;

}  // namespace

int main(int argc, char** argv) {
  std::cout << "Ablation: pre-roll buffer length (modem users, " << kPlays
            << " plays each)\n";
  for (const double preroll : {2.0, 5.0, 8.0, 15.0}) {
    rv::tracer::TracerConfig cfg;
    cfg.preroll_media_seconds = preroll;
    const auto stats = rv::bench::run_scenarios(
        cfg, rv::world::ConnectionClass::kModem56k, kPlays, 2000);
    rv::bench::print_ablation_row(
        rv::util::str_cat("preroll=", preroll, "s"), stats);
  }

  benchmark::RegisterBenchmark(
      "ablation/preroll8_play", [](benchmark::State& state) {
        rv::tracer::TracerConfig cfg;
        cfg.preroll_media_seconds = 8.0;
        for (auto _ : state) {
          benchmark::DoNotOptimize(rv::bench::run_scenarios(
              cfg, rv::world::ConnectionClass::kModem56k, 1, 77));
        }
      });
  return rv::bench::run_benchmark_tail(argc, argv);
}
