// Ablation: TCP selective acknowledgements (RFC 2018).
//
// Our default TCP is conservative Reno (no new data during recovery, no
// SACK), which makes TCP sessions suffer congestion episodes more than the
// UDP stack does — a gap the paper did not observe (its Fig 17 CDFs are
// nearly identical). SACK was deploying rapidly in 2001; this ablation shows
// how much of that gap a SACK-capable stack closes.
#include "ablation_common.h"

namespace {

constexpr int kPlays = 24;

rv::tracer::TracerConfig variant(bool sack) {
  rv::tracer::TracerConfig cfg;
  cfg.tcp_sack = sack;
  cfg.direct_tcp_probability = 1.0;  // TCP-only comparison
  // Loss is what differentiates the recovery algorithms: run the sweep in a
  // congested regime (frequent saturation episodes).
  cfg.path.episode_probability = 0.20;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "Ablation: TCP SACK (TCP-only plays, DSL/Cable users, "
            << kPlays << " plays each)\n";
  for (const bool sack : {false, true}) {
    const auto stats = rv::bench::run_scenarios(
        variant(sack), rv::world::ConnectionClass::kDslCable, kPlays, 7000,
        /*force_tcp=*/true);
    rv::bench::print_ablation_row(sack ? "reno + sack" : "reno (default)",
                                  stats);
  }

  benchmark::RegisterBenchmark(
      "ablation/sack_play", [](benchmark::State& state) {
        for (auto _ : state) {
          benchmark::DoNotOptimize(rv::bench::run_scenarios(
              variant(true), rv::world::ConnectionClass::kDslCable, 1, 33,
              /*force_tcp=*/true));
        }
      });
  return rv::bench::run_benchmark_tail(argc, argv);
}
