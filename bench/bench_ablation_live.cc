// Extension bench: live vs pre-recorded content (paper §VIII future work).
//
// The paper proposes comparing live RealVideo with the pre-recorded clips of
// its study, citing [LH01] that live content behaves differently. Expected
// shape: live sessions start slower (the buffer can only fill in real time)
// and degrade harder under congestion (no faster-than-realtime catch-up),
// while pre-recorded playouts hide more of the network behind the buffer.
#include "ablation_common.h"

namespace {

constexpr int kPlays = 20;

rv::tracer::TracerConfig variant(bool live) {
  rv::tracer::TracerConfig cfg;
  cfg.live_content = live;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  for (const auto connection : {rv::world::ConnectionClass::kDslCable,
                                rv::world::ConnectionClass::kModem56k}) {
    std::cout << "Extension: live vs pre-recorded ("
              << rv::world::connection_class_name(connection) << " users, "
              << kPlays << " plays each)\n";
    for (const bool live : {false, true}) {
      const auto stats = rv::bench::run_scenarios(variant(live), connection,
                                                  kPlays, 6000);
      rv::bench::print_ablation_row(
          live ? "live (edge-pinned)" : "pre-recorded", stats);
    }
  }

  benchmark::RegisterBenchmark(
      "extension/live_play", [](benchmark::State& state) {
        for (auto _ : state) {
          benchmark::DoNotOptimize(rv::bench::run_scenarios(
              variant(true), rv::world::ConnectionClass::kDslCable, 1, 44));
        }
      });
  return rv::bench::run_benchmark_tail(argc, argv);
}
