// Ablation: fault injection — outage intensity and per-play fault rates.
//
// Sweeps the mechanistic-unavailability intensity knob (outage_scale) and
// shows the emergent study-level availability, frame rate and protocol mix,
// then sweeps the per-play stochastic fault probabilities (overload stalls,
// link flaps, corruption bursts) and shows their performance cost. Scaled by
// RV_PLAY_SCALE (default 0.04 here: the sweep runs several studies).
#include "ablation_common.h"

#include <cstdlib>

#include "faults/injector.h"
#include "study/analysis.h"

namespace {

double play_scale_from_env() {
  if (const char* scale = std::getenv("RV_PLAY_SCALE")) {
    return std::atof(scale);
  }
  return 0.04;
}

rv::study::StudyConfig faulted_config(double outage_scale,
                                      double per_play_rate) {
  rv::study::StudyConfig cfg;
  cfg.play_scale = play_scale_from_env();
  cfg.tracer.faults.enabled = true;
  cfg.tracer.faults.mechanistic_unavailability = outage_scale > 0.0;
  cfg.tracer.faults.outage_scale = outage_scale;
  cfg.tracer.faults.overload_probability = per_play_rate;
  cfg.tracer.faults.link_down_probability = per_play_rate;
  cfg.tracer.faults.corruption_probability = per_play_rate;
  if (const char* threads = std::getenv("RV_THREADS")) {
    cfg.threads = std::atoi(threads);
  }
  return cfg;
}

void print_study_row(const std::string& label,
                     const rv::study::StudyResult& result) {
  const auto accesses = result.accesses();
  const auto played = result.played();
  std::size_t available = 0;
  for (const auto* r : accesses) available += r->available;
  rv::stats::Summary fps;
  rv::stats::Summary rebuf;
  std::size_t udp = 0;
  std::size_t retried = 0;
  for (const auto* r : played) {
    fps.add(r->stats.measured_fps);
    rebuf.add(r->stats.rebuffer_events);
    udp += r->stats.protocol == rv::net::Protocol::kUdp;
    retried += r->stats.rtsp_retries > 0;
  }
  const double avail_pct =
      accesses.empty()
          ? 0.0
          : 100.0 * static_cast<double>(available) / accesses.size();
  const double udp_pct =
      played.empty() ? 0.0
                     : 100.0 * static_cast<double>(udp) / played.size();
  std::cout << "  " << label
            << std::string(label.size() < 26 ? 26 - label.size() : 1, ' ')
            << " avail=" << rv::util::format_double(avail_pct, 1) << "%"
            << "  fps=" << rv::util::format_double(fps.mean(), 1)
            << "  udp=" << rv::util::format_double(udp_pct, 0) << "%"
            << "  rebuf=" << rv::util::format_double(rebuf.mean(), 2)
            << "  retried=" << retried << "/" << played.size() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "Ablation: fault injection (play_scale="
            << play_scale_from_env() << ")\n";

  std::cout << "outage intensity sweep (mechanistic schedules, Fig 10 "
               "targets x scale):\n";
  for (const double scale : {0.0, 0.5, 1.0, 2.0}) {
    const auto result = rv::study::run_study(faulted_config(scale, 0.0));
    print_study_row("outage_scale=" + rv::util::format_double(scale, 1),
                    result);
  }

  std::cout << "per-play fault sweep (overload + link flap + corruption, "
               "each at rate p):\n";
  for (const double rate : {0.0, 0.05, 0.15}) {
    const auto result = rv::study::run_study(faulted_config(0.0, rate));
    print_study_row("p=" + rv::util::format_double(rate, 2), result);
  }

  benchmark::RegisterBenchmark(
      "ablation/faulted_play", [](benchmark::State& state) {
        rv::tracer::TracerConfig cfg;
        cfg.path.episode_probability = 0.0;
        rv::study::StudyConfig study_cfg;
        study_cfg.tracer = cfg;
        const rv::media::Catalog catalog = rv::study::make_catalog(study_cfg);
        const rv::world::RegionGraph graph;
        const rv::tracer::RealTracer tracer(catalog, graph, cfg);
        const rv::world::UserProfile user =
            rv::bench::ablation_user(rv::world::ConnectionClass::kDslCable);
        rv::faults::PlayFaults pf;
        rv::faults::LinkFaultSpec burst;
        burst.link_index = rv::world::PlayPath::kWanCorridor;
        burst.kind = rv::faults::LinkFaultKind::kCorrupt;
        burst.start = rv::sec(10);
        burst.duration = rv::sec(20);
        burst.loss_rate = 0.10;
        pf.link_faults.push_back(burst);
        std::uint64_t seed = 101;
        for (auto _ : state) {
          benchmark::DoNotOptimize(
              tracer.run_single(user, 0, seed++, false, &pf));
        }
      });
  return rv::bench::run_benchmark_tail(argc, argv);
}
