// The per-play sampler: kernel-timer driven, reads probes, appends to a
// Series. See series.h for the determinism argument.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/network.h"
#include "sim/simulator.h"
#include "telemetry/series.h"
#include "util/units.h"

namespace rv::telemetry {

// Cumulative/instantaneous reads the sampler takes each tick. The tracer
// wires these to the live player/server; any probe may be left empty (its
// column then reads 0). All must be pure reads of simulation state.
struct Probe {
  std::function<double()> buffer_sec;            // instantaneous
  std::function<std::int64_t()> frames_played;   // cumulative
  std::function<std::int64_t()> bytes_received;  // cumulative
  std::function<double()> cwnd_bytes;            // instantaneous
  std::function<std::uint64_t()> tcp_retransmits;  // cumulative
  std::function<double()> pacing_bps;            // instantaneous
  std::function<int()> cc_state;                 // instantaneous
  std::function<bool()> finished;  // true stops sampling (play over)
};

class PlaySampler {
 public:
  // Samples `network`'s first `link_count` links plus the probes into
  // `out` every `interval` (> 0) of sim-time, first tick one interval after
  // start(). `out` must outlive the sampler and have been reset to
  // link_count links. `network` may be null (no link columns sampled).
  PlaySampler(sim::Simulator& sim, const net::Network* network,
              std::size_t link_count, Probe probe, Series* out,
              SimTime interval);
  ~PlaySampler();
  PlaySampler(const PlaySampler&) = delete;
  PlaySampler& operator=(const PlaySampler&) = delete;

  // Schedules the tick chain. Sampling stops by itself once the probe
  // reports the play finished; the destructor cancels any pending tick.
  void start();
  bool active() const { return active_; }

  // Appends one sample at `now`. start() drives this from kernel timers;
  // exposed so benches and unit tests can tick without a running kernel.
  void sample_at(SimTime now);

  // The disabled-path guard every potential sampling site costs when
  // telemetry is off: one predicted-untaken branch (gated by
  // BM_SeriesSampleDisabled via run_bench.py --obs-overhead-check).
  void sample_if_active(SimTime now) {
    if (__builtin_expect(active_, 0)) sample_at(now);
  }

 private:
  void tick();

  sim::Simulator& sim_;
  const net::Network* network_;
  std::size_t link_count_;
  Probe probe_;
  Series* out_;
  SimTime interval_;
  bool active_ = false;
  sim::EventId tick_event_ = sim::kInvalidEventId;

  // Last cumulative probe reads, for per-interval deltas.
  std::int64_t last_frames_ = 0;
  std::int64_t last_bytes_ = 0;
  std::uint64_t last_retx_ = 0;
  std::vector<std::uint64_t> last_link_drops_;
};

}  // namespace rv::telemetry
