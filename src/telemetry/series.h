// Deterministic per-play time-series telemetry (the sampling layer on top of
// the obs event/counter subsystem — see docs/OBSERVABILITY.md).
//
// A PlaySampler ticks on the play's own simulated clock at a fixed interval
// (default 500 ms sim-time) and appends one columnar sample per tick:
// playout buffer depth, instantaneous frame rate, achieved bandwidth, the
// TCP sender's cwnd and retransmission rate, and each path link's queue
// occupancy and drop count. Everything is a pure *read* of simulation state
// — the sampler draws no randomness and mutates nothing the session can
// observe — so enabling telemetry cannot change results, and because every
// timestamp is sim-time and the series lands in the play's preassigned
// TraceRecord slot, the merged output is byte-identical at any worker-thread
// count (the same argument as TraceRecord.obs; proven in telemetry_test).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.h"

namespace rv::telemetry {

// Carried by tracer::TracerConfig. Excluded from the study-cache config
// fingerprint for the same reason as ObsConfig: sampling is observational
// and must not change which cache file a study maps to, nor its bytes.
struct TelemetryConfig {
  bool enabled = false;
  SimTime interval = msec(500);  // sim-time between samples; must be > 0
};

// Columnar per-play series: parallel vectors, one entry per sampler tick.
// Rate columns (fps, bandwidth, retx) are deltas of cumulative probes over
// the interval ending at t[i]; gauge columns (buffer, cwnd, occupancy) are
// instantaneous reads at t[i].
struct Series {
  std::vector<SimTime> t;                // sample time (usec, sim clock)
  std::vector<double> buffer_sec;        // playout buffer depth (media s)
  std::vector<double> fps;               // frames played per second
  std::vector<double> bandwidth_kbps;    // application bytes received
  std::vector<double> cwnd_bytes;        // TCP sender cwnd (0 for UDP media)
  std::vector<double> retx_per_sec;      // TCP retransmissions per second
  std::vector<double> pacing_kbps;       // TCP sender pacing rate (0 UDP)
  std::vector<double> cc_state;          // CC backend state (BBR phase)

  struct LinkSeries {
    std::vector<double> occupancy;       // queue fill fraction, [0, 1]
    std::vector<std::uint64_t> drops;    // packets dropped this interval

    bool operator==(const LinkSeries& other) const = default;
  };
  std::vector<LinkSeries> links;         // one per path link, layout order

  std::size_t size() const { return t.size(); }
  bool empty() const { return t.empty(); }
  // Clears all columns and (re)sizes the per-link set, keeping vector
  // capacity so reused worker contexts stop allocating in steady state.
  void reset(std::size_t link_count);

  bool operator==(const Series& other) const = default;
};

// Snapshot carried in tracer::TraceRecord. Like PlayObs, in-memory only:
// never serialized into the study cache.
struct PlaySeries {
  bool enabled = false;
  SimTime interval = 0;
  Series data;

  bool operator==(const PlaySeries& other) const = default;
};

// Index of the path link that constrained this play: argmax over links of
// (time-averaged queue occupancy + share of the play's total drops), the
// attribution rule behind the study-level bottleneck table. Ties break to
// the lower index; -1 when the series is empty or has no links.
int bottleneck_link(const Series& series);

}  // namespace rv::telemetry
