#include "telemetry/flight.h"

#include <cstdio>

#include "util/strings.h"

namespace rv::telemetry {
namespace {

void append_double_array(std::string& out, const std::vector<double>& v) {
  out += '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ',';
    out += util::format_double(v[i], 6);
  }
  out += ']';
}

template <typename T>
void append_int_array(std::string& out, const std::vector<T>& v) {
  out += '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(v[i]);
  }
  out += ']';
}

void append_events(std::string& out, const obs::PlayObs& obs) {
  out += "\"events_dropped\":";
  out += std::to_string(obs.events_dropped);
  out += ",\"events\":[";
  for (std::size_t i = 0; i < obs.events.size(); ++i) {
    const obs::TraceEvent& ev = obs.events[i];
    if (i != 0) out += ',';
    const auto code = static_cast<obs::Code>(ev.code);
    out += "{\"t\":";
    out += std::to_string(ev.t);
    out += ",\"cat\":";
    out += util::json_quote(obs::cat_name(obs::cat_of(code)));
    out += ",\"code\":";
    out += util::json_quote(obs::code_name(code));
    out += ",\"a0\":";
    out += std::to_string(ev.a0);
    out += ",\"a1\":";
    out += std::to_string(ev.a1);
    out += '}';
  }
  out += "],\"counters\":{";
  for (std::size_t i = 0; i < obs.counters.v.size(); ++i) {
    if (i != 0) out += ',';
    out += util::json_quote(obs::counter_name(static_cast<obs::Counter>(i)));
    out += ':';
    out += std::to_string(obs.counters.v[i]);
  }
  out += '}';
}

void append_series(std::string& out, const PlaySeries& series) {
  const Series& s = series.data;
  out += "\"series\":{\"interval_usec\":";
  out += std::to_string(series.interval);
  out += ",\"t\":";
  append_int_array(out, s.t);
  out += ",\"buffer_sec\":";
  append_double_array(out, s.buffer_sec);
  out += ",\"fps\":";
  append_double_array(out, s.fps);
  out += ",\"bandwidth_kbps\":";
  append_double_array(out, s.bandwidth_kbps);
  out += ",\"cwnd_bytes\":";
  append_double_array(out, s.cwnd_bytes);
  out += ",\"retx_per_sec\":";
  append_double_array(out, s.retx_per_sec);
  out += ",\"pacing_kbps\":";
  append_double_array(out, s.pacing_kbps);
  out += ",\"cc_state\":";
  append_double_array(out, s.cc_state);
  out += ",\"links\":[";
  for (std::size_t l = 0; l < s.links.size(); ++l) {
    if (l != 0) out += ',';
    out += "{\"occupancy\":";
    append_double_array(out, s.links[l].occupancy);
    out += ",\"drops\":";
    append_int_array(out, s.links[l].drops);
    out += '}';
  }
  out += "]}";
}

}  // namespace

std::string flight_json(const FlightInfo& info) {
  std::string out;
  out.reserve(4096);
  out += "{\"meta\":{";
  for (std::size_t i = 0; i < info.meta.size(); ++i) {
    if (i != 0) out += ',';
    out += util::json_quote(info.meta[i].first);
    out += ':';
    out += info.meta[i].second;  // pre-rendered JSON value
  }
  out += "},\"reasons\":[";
  for (std::size_t i = 0; i < info.reasons.size(); ++i) {
    if (i != 0) out += ',';
    out += util::json_quote(info.reasons[i]);
  }
  out += ']';
  if (info.obs != nullptr && info.obs->enabled) {
    out += ',';
    append_events(out, *info.obs);
  }
  if (info.series != nullptr && info.series->enabled) {
    out += ',';
    append_series(out, *info.series);
  }
  out += "}\n";
  return out;
}

bool write_flight_json(const std::string& path, const FlightInfo& info) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string doc = flight_json(info);
  const bool write_ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  const bool close_ok = std::fclose(f) == 0;
  return write_ok && close_ok;
}

}  // namespace rv::telemetry
