// Anomaly flight recorder: when a play trips an anomaly predicate (decided
// by the study layer), its full event ring and telemetry series are
// persisted as one JSON document per play. Dumps are rendered from
// slot-ordered in-memory records, so the file set and every file's bytes
// are identical at any worker-thread count.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "telemetry/series.h"

namespace rv::telemetry {

// Everything one flight dump needs. `meta` values are pre-rendered JSON
// (callers quote strings with util::json_quote; numbers/bools go verbatim),
// keeping this layer ignorant of study/tracer record types.
struct FlightInfo {
  std::vector<std::pair<std::string, std::string>> meta;  // name -> JSON value
  std::vector<std::string> reasons;       // tripped predicate names
  const obs::PlayObs* obs = nullptr;      // optional: event ring + counters
  const PlaySeries* series = nullptr;     // optional: sampled series
};

// Renders the flight document:
//   {"meta":{...},"reasons":[...],"events":[...],"counters":{...},
//    "series":{"interval_usec":N,"t":[...],...,"links":[{...},...]}}
// Events carry sim-time stamps and decoded code/category names; absent
// obs/series sections are omitted entirely.
std::string flight_json(const FlightInfo& info);

// Writes flight_json(info) to `path` (truncating). Returns false on any I/O
// failure.
bool write_flight_json(const std::string& path, const FlightInfo& info);

}  // namespace rv::telemetry
