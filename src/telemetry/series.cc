#include "telemetry/series.h"

#include "telemetry/sampler.h"
#include "util/check.h"

namespace rv::telemetry {

void Series::reset(std::size_t link_count) {
  t.clear();
  buffer_sec.clear();
  fps.clear();
  bandwidth_kbps.clear();
  cwnd_bytes.clear();
  retx_per_sec.clear();
  pacing_kbps.clear();
  cc_state.clear();
  links.resize(link_count);
  for (auto& link : links) {
    link.occupancy.clear();
    link.drops.clear();
  }
}

int bottleneck_link(const Series& series) {
  if (series.empty() || series.links.empty()) return -1;
  const auto n = static_cast<double>(series.size());
  std::uint64_t total_drops = 0;
  for (const auto& link : series.links) {
    for (const std::uint64_t d : link.drops) total_drops += d;
  }
  int best = 0;
  double best_score = -1.0;
  for (std::size_t l = 0; l < series.links.size(); ++l) {
    const auto& link = series.links[l];
    double occ_sum = 0.0;
    std::uint64_t drops = 0;
    for (const double o : link.occupancy) occ_sum += o;
    for (const std::uint64_t d : link.drops) drops += d;
    const double drop_share =
        total_drops > 0
            ? static_cast<double>(drops) / static_cast<double>(total_drops)
            : 0.0;
    const double score = occ_sum / n + drop_share;
    if (score > best_score) {  // strict: ties keep the lower index
      best_score = score;
      best = static_cast<int>(l);
    }
  }
  return best;
}

PlaySampler::PlaySampler(sim::Simulator& sim, const net::Network* network,
                         std::size_t link_count, Probe probe, Series* out,
                         SimTime interval)
    : sim_(sim),
      network_(network),
      link_count_(link_count),
      probe_(std::move(probe)),
      out_(out),
      interval_(interval) {
  RV_CHECK_GT(interval_, 0) << "telemetry interval must be positive";
  RV_CHECK(out_ != nullptr);
  RV_CHECK_EQ(out_->links.size(), link_count_)
      << "Series not reset to the sampled link count";
  last_link_drops_.assign(link_count_, 0);
}

PlaySampler::~PlaySampler() {
  if (tick_event_ != sim::kInvalidEventId) sim_.cancel(tick_event_);
}

void PlaySampler::start() {
  active_ = true;
  tick_event_ = sim_.schedule_in(interval_, [this] { tick(); });
}

void PlaySampler::tick() {
  tick_event_ = sim::kInvalidEventId;
  if (probe_.finished && probe_.finished()) {
    // The play is over; freeze the series rather than recording an idle
    // tail out to the horizon.
    active_ = false;
    return;
  }
  sample_at(sim_.now());
  tick_event_ = sim_.schedule_in(interval_, [this] { tick(); });
}

void PlaySampler::sample_at(SimTime now) {
  // Cumulative probes can step backwards when their source is replaced
  // mid-session (the playout engine is rebuilt on TCP fallback; a server
  // session can be torn down). A reset reads as a zero-rate interval rather
  // than a negative or wrapped one.
  const auto delta_u64 = [](std::uint64_t cur, std::uint64_t& last) {
    const std::uint64_t d = cur >= last ? cur - last : 0;
    last = cur;
    return d;
  };
  const auto delta_i64 = [](std::int64_t cur, std::int64_t& last) {
    const std::int64_t d = cur >= last ? cur - last : 0;
    last = cur;
    return d;
  };

  const double interval_sec = to_seconds(interval_);
  out_->t.push_back(now);
  out_->buffer_sec.push_back(probe_.buffer_sec ? probe_.buffer_sec() : 0.0);

  const std::int64_t frames =
      probe_.frames_played ? probe_.frames_played() : 0;
  out_->fps.push_back(static_cast<double>(delta_i64(frames, last_frames_)) /
                      interval_sec);

  const std::int64_t bytes =
      probe_.bytes_received ? probe_.bytes_received() : 0;
  out_->bandwidth_kbps.push_back(
      static_cast<double>(delta_i64(bytes, last_bytes_)) * 8.0 / 1000.0 /
      interval_sec);

  out_->cwnd_bytes.push_back(probe_.cwnd_bytes ? probe_.cwnd_bytes() : 0.0);

  const std::uint64_t retx =
      probe_.tcp_retransmits ? probe_.tcp_retransmits() : 0;
  out_->retx_per_sec.push_back(
      static_cast<double>(delta_u64(retx, last_retx_)) / interval_sec);

  out_->pacing_kbps.push_back(
      probe_.pacing_bps ? probe_.pacing_bps() * 8.0 / 1000.0 : 0.0);
  out_->cc_state.push_back(
      probe_.cc_state ? static_cast<double>(probe_.cc_state()) : 0.0);

  for (std::size_t l = 0; l < link_count_; ++l) {
    auto& col = out_->links[l];
    if (network_ != nullptr && l < network_->link_count()) {
      const net::Link& link = network_->link(l);
      col.occupancy.push_back(link.max_queue_fill());
      col.drops.push_back(
          delta_u64(link.total_dropped(), last_link_drops_[l]));
    } else {
      col.occupancy.push_back(0.0);
      col.drops.push_back(0);
    }
  }
}

}  // namespace rv::telemetry
