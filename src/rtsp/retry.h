// Bounded exponential backoff for RTSP connect/request attempts.
//
// RealPlayer's auto-configuration does not give up on the first silent
// timeout: it retries the current transport plan a few times with growing
// delays, then falls down the UDP → TCP → HTTP ladder. RetryState is the
// small deterministic state machine behind that — pure arithmetic, no
// clock, so it is trivially unit-testable.
#pragma once

#include <optional>

#include "util/units.h"

namespace rv::rtsp {

struct RetryPolicy {
  int max_attempts = 3;                // total attempts per transport plan
  SimTime initial_backoff = msec(500); // delay before the 2nd attempt
  SimTime max_backoff = sec(8);
  double multiplier = 2.0;
};

class RetryState {
 public:
  RetryState() : RetryState(RetryPolicy{}) {}
  explicit RetryState(RetryPolicy policy);

  // Records a failed attempt. Returns the backoff to wait before the next
  // attempt, or nullopt when the attempt budget is exhausted (give up /
  // move to the next transport plan).
  std::optional<SimTime> next_backoff();

  // Attempts failed so far (the first attempt is not counted until it
  // fails).
  int attempts_used() const { return attempts_used_; }
  bool exhausted() const { return attempts_used_ >= policy_.max_attempts; }

  // Fresh budget for a new transport plan.
  void reset() { attempts_used_ = 0; }

  const RetryPolicy& policy() const { return policy_; }

 private:
  RetryPolicy policy_;
  int attempts_used_ = 0;
};

}  // namespace rv::rtsp
