#include "rtsp/http.h"

#include <charconv>
#include <sstream>

#include "util/strings.h"

namespace rv::rtsp {
namespace {

constexpr std::string_view kHttpVersion = "HTTP/1.0";

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 500: return "Internal Server Error";
    default: return status < 400 ? "OK" : "Error";
  }
}

// Shares the header-block layout with the RTSP codec.
bool split_http(std::string_view text, std::string& start_line,
                HeaderMap& headers, std::string& body) {
  std::size_t pos = text.find('\n');
  if (pos == std::string_view::npos) return false;
  start_line = util::trim(text.substr(0, pos));
  std::size_t line_start = pos + 1;
  while (line_start < text.size()) {
    std::size_t line_end = text.find('\n', line_start);
    if (line_end == std::string_view::npos) line_end = text.size();
    const std::string line =
        util::trim(text.substr(line_start, line_end - line_start));
    line_start = line_end + 1;
    if (line.empty()) break;
    const auto [name, value] = util::split_first(line, ':');
    if (name.empty()) return false;
    headers.set(util::trim(name), util::trim(value));
  }
  if (line_start < text.size()) body = std::string(text.substr(line_start));
  return !start_line.empty();
}

}  // namespace

std::string HttpRequest::serialize() const {
  std::ostringstream os;
  os << "GET " << path << ' ' << kHttpVersion << "\r\n";
  for (const auto& [name, value] : headers) {
    os << name << ": " << value << "\r\n";
  }
  os << "\r\n";
  return os.str();
}

std::string HttpResponse::serialize() const {
  std::ostringstream os;
  os << kHttpVersion << ' ' << status << ' ' << reason_phrase(status)
     << "\r\n";
  for (const auto& [name, value] : headers) {
    os << name << ": " << value << "\r\n";
  }
  os << "\r\n" << body;
  return os.str();
}

std::optional<HttpRequest> parse_http_request(std::string_view text) {
  std::string start_line;
  HttpRequest req;
  std::string body;
  if (!split_http(text, start_line, req.headers, body)) return std::nullopt;
  const auto parts = util::split(start_line, ' ');
  // The metafile model is HTTP/1.0, but the embedded status exporter feeds
  // this parser requests from real clients (curl, Prometheus), which send
  // HTTP/1.1 — accept both request versions.
  if (parts.size() != 3 || parts[0] != "GET" ||
      (parts[2] != kHttpVersion && parts[2] != "HTTP/1.1")) {
    return std::nullopt;
  }
  req.path = parts[1];
  return req;
}

std::optional<HttpResponse> parse_http_response(std::string_view text) {
  std::string start_line;
  HttpResponse resp;
  if (!split_http(text, start_line, resp.headers, resp.body)) {
    return std::nullopt;
  }
  const auto parts = util::split(start_line, ' ');
  if (parts.size() < 2 || parts[0] != kHttpVersion) return std::nullopt;
  // Status must be exactly three digits ("2xx", "-1", "0200" all invalid).
  const std::string& code = parts[1];
  if (code.size() != 3) return std::nullopt;
  int status = 0;
  const auto [ptr, ec] = std::from_chars(code.data(), code.data() + 3, status);
  if (ec != std::errc() || ptr != code.data() + 3 || status < 100) {
    return std::nullopt;
  }
  resp.status = status;
  return resp;
}

std::string make_ram_metafile(const std::string& rtsp_url) {
  // Real .ram files are a list of URLs, one per line, possibly with
  // comments.
  return "# RAM metafile\n" + rtsp_url + "\n";
}

std::string parse_ram_metafile(std::string_view body) {
  for (const auto& line : util::split(body, '\n')) {
    const std::string trimmed = util::trim(line);
    if (trimmed.rfind("rtsp://", 0) == 0) return trimmed;
  }
  return "";
}

}  // namespace rv::rtsp
