// Server-side RTSP session state machine.
//
// Tracks the RFC 2326 session lifecycle (Init → Ready → Playing) and
// validates the method ordering RealServer enforces. The streaming engine
// (src/server) owns one Session per client.
#pragma once

#include <cstdint>
#include <string>

#include "rtsp/message.h"

namespace rv::rtsp {

enum class SessionState { kInit, kReady, kPlaying, kTornDown };

std::string_view session_state_name(SessionState s);

class Session {
 public:
  explicit Session(std::uint64_t id) : id_(id) {}

  std::uint64_t id() const { return id_; }
  std::string id_string() const;
  SessionState state() const { return state_; }

  // Returns true (and transitions) when `method` is legal in the current
  // state; illegal methods leave the state unchanged.
  bool apply(Method method);

  const TransportSpec& transport() const { return transport_; }
  void set_transport(const TransportSpec& t) { transport_ = t; }

 private:
  std::uint64_t id_;
  SessionState state_ = SessionState::kInit;
  TransportSpec transport_;
};

}  // namespace rv::rtsp
