#include "rtsp/session.h"

#include <sstream>

namespace rv::rtsp {

std::string_view session_state_name(SessionState s) {
  switch (s) {
    case SessionState::kInit:
      return "Init";
    case SessionState::kReady:
      return "Ready";
    case SessionState::kPlaying:
      return "Playing";
    case SessionState::kTornDown:
      return "TornDown";
  }
  return "?";
}

std::string Session::id_string() const {
  std::ostringstream os;
  os << std::hex << id_;
  return os.str();
}

bool Session::apply(Method method) {
  switch (method) {
    case Method::kOptions:
    case Method::kDescribe:
    case Method::kSetParameter:
      // Stateless methods: legal anywhere before teardown.
      return state_ != SessionState::kTornDown;
    case Method::kSetup:
      if (state_ != SessionState::kInit) return false;
      state_ = SessionState::kReady;
      return true;
    case Method::kPlay:
      if (state_ != SessionState::kReady && state_ != SessionState::kPlaying) {
        return false;
      }
      state_ = SessionState::kPlaying;
      return true;
    case Method::kPause:
      if (state_ != SessionState::kPlaying) return false;
      state_ = SessionState::kReady;
      return true;
    case Method::kTeardown:
      if (state_ == SessionState::kTornDown) return false;
      state_ = SessionState::kTornDown;
      return true;
  }
  return false;
}

}  // namespace rv::rtsp
