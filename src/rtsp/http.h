// Minimal HTTP/1.0 codec for the metafile step (§II.A of the paper):
// clicking a web link downloads a .ram metafile over HTTP; the metafile
// holds the rtsp:// URL the player then opens. Only GET and the handful of
// headers that flow are modelled.
//
// The request parser also serves the embedded status exporter
// (src/obs/http_exporter.h), so it additionally accepts HTTP/1.1 request
// lines — what curl and Prometheus scrapers actually send.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "rtsp/message.h"

namespace rv::rtsp {

struct HttpRequest {
  std::string path;  // e.g. "/clip/203.ram"
  HeaderMap headers;

  std::string serialize() const;
};

struct HttpResponse {
  int status = 200;
  HeaderMap headers;
  std::string body;

  bool ok() const { return status == 200; }
  std::string serialize() const;
};

std::optional<HttpRequest> parse_http_request(std::string_view text);
std::optional<HttpResponse> parse_http_response(std::string_view text);

// The .ram metafile body for a clip URL.
std::string make_ram_metafile(const std::string& rtsp_url);
// Extracts the first rtsp:// URL from a .ram body ("" if none).
std::string parse_ram_metafile(std::string_view body);

}  // namespace rv::rtsp
