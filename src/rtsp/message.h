// RTSP message model and wire codec (RFC 2326 subset).
//
// RealServer talks to RealPlayer over an RTSP control connection (§II.A of
// the paper); the streamed data flows on a separate data connection. We
// implement the subset RealPlayer exercises: OPTIONS, DESCRIBE, SETUP, PLAY,
// PAUSE, TEARDOWN and SET_PARAMETER, with CSeq tracking, Session ids and
// Transport negotiation.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace rv::rtsp {

enum class Method {
  kOptions,
  kDescribe,
  kSetup,
  kPlay,
  kPause,
  kTeardown,
  kSetParameter,
};

std::string_view method_name(Method m);
std::optional<Method> parse_method(std::string_view name);

enum class StatusCode {
  kOk = 200,
  kBadRequest = 400,
  kNotFound = 404,
  kSessionNotFound = 454,
  kUnsupportedTransport = 461,
  kInternalError = 500,
  kServiceUnavailable = 503,
};

std::string_view status_reason(StatusCode code);

// Case-insensitive header map (RTSP header names are case-insensitive).
class HeaderMap {
 public:
  void set(std::string_view name, std::string value);
  std::optional<std::string> get(std::string_view name) const;
  bool contains(std::string_view name) const { return get(name).has_value(); }
  std::size_t size() const { return headers_.size(); }
  auto begin() const { return headers_.begin(); }
  auto end() const { return headers_.end(); }

 private:
  // Stored with lower-cased keys; original casing is not preserved (the
  // serialiser emits canonical names).
  std::map<std::string, std::string> headers_;
};

struct Request {
  Method method = Method::kOptions;
  std::string url;
  int cseq = 0;
  HeaderMap headers;
  std::string body;

  std::string serialize() const;
};

struct Response {
  StatusCode status = StatusCode::kOk;
  int cseq = 0;
  HeaderMap headers;
  std::string body;

  bool ok() const { return status == StatusCode::kOk; }
  std::string serialize() const;
};

// Parses one complete message; returns std::nullopt on malformed input.
std::optional<Request> parse_request(std::string_view text);
std::optional<Response> parse_response(std::string_view text);

// --- Transport header ----------------------------------------------------
// RealSystem negotiates its RDT data transport over UDP or TCP, e.g.:
//   Transport: x-real-rdt/udp;client_port=6970
//   Transport: x-real-rdt/tcp
struct TransportSpec {
  bool use_udp = true;
  int client_port = 0;  // meaningful for UDP

  std::string serialize() const;
};

std::optional<TransportSpec> parse_transport(std::string_view value);

}  // namespace rv::rtsp
