#include "rtsp/message.h"

#include <array>
#include <charconv>
#include <sstream>

#include "util/strings.h"

namespace rv::rtsp {
namespace {

constexpr std::string_view kVersion = "RTSP/1.0";

struct MethodName {
  Method method;
  std::string_view name;
};

constexpr std::array<MethodName, 7> kMethods = {{
    {Method::kOptions, "OPTIONS"},
    {Method::kDescribe, "DESCRIBE"},
    {Method::kSetup, "SETUP"},
    {Method::kPlay, "PLAY"},
    {Method::kPause, "PAUSE"},
    {Method::kTeardown, "TEARDOWN"},
    {Method::kSetParameter, "SET_PARAMETER"},
}};

std::optional<int> parse_int(std::string_view s) {
  int value = 0;
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

// Splits raw text into (start line, headers, body); returns false when the
// message has no start line.
bool split_message(std::string_view text, std::string& start_line,
                   HeaderMap& headers, std::string& body) {
  std::size_t pos = text.find('\n');
  if (pos == std::string_view::npos) return false;
  start_line = util::trim(text.substr(0, pos));
  std::size_t line_start = pos + 1;
  while (line_start < text.size()) {
    std::size_t line_end = text.find('\n', line_start);
    if (line_end == std::string_view::npos) line_end = text.size();
    const std::string line =
        util::trim(text.substr(line_start, line_end - line_start));
    line_start = line_end + 1;
    if (line.empty()) break;  // blank line: headers done
    const auto [name, value] = util::split_first(line, ':');
    if (name.empty()) return false;
    headers.set(util::trim(name), util::trim(value));
  }
  if (line_start < text.size()) body = std::string(text.substr(line_start));
  return !start_line.empty();
}

int cseq_of(const HeaderMap& headers) {
  const auto v = headers.get("CSeq");
  if (!v) return 0;
  return parse_int(*v).value_or(0);
}

}  // namespace

std::string_view method_name(Method m) {
  for (const auto& entry : kMethods) {
    if (entry.method == m) return entry.name;
  }
  return "OPTIONS";
}

std::optional<Method> parse_method(std::string_view name) {
  for (const auto& entry : kMethods) {
    if (entry.name == name) return entry.method;
  }
  return std::nullopt;
}

std::string_view status_reason(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kBadRequest:
      return "Bad Request";
    case StatusCode::kNotFound:
      return "Not Found";
    case StatusCode::kSessionNotFound:
      return "Session Not Found";
    case StatusCode::kUnsupportedTransport:
      return "Unsupported Transport";
    case StatusCode::kInternalError:
      return "Internal Server Error";
    case StatusCode::kServiceUnavailable:
      return "Service Unavailable";
  }
  return "Unknown";
}

void HeaderMap::set(std::string_view name, std::string value) {
  headers_[util::to_lower(name)] = std::move(value);
}

std::optional<std::string> HeaderMap::get(std::string_view name) const {
  const auto it = headers_.find(util::to_lower(name));
  if (it == headers_.end()) return std::nullopt;
  return it->second;
}

std::string Request::serialize() const {
  std::ostringstream os;
  os << method_name(method) << ' ' << url << ' ' << kVersion << "\r\n";
  os << "CSeq: " << cseq << "\r\n";
  for (const auto& [name, value] : headers) {
    os << name << ": " << value << "\r\n";
  }
  os << "\r\n" << body;
  return os.str();
}

std::string Response::serialize() const {
  std::ostringstream os;
  os << kVersion << ' ' << static_cast<int>(status) << ' '
     << status_reason(status) << "\r\n";
  os << "CSeq: " << cseq << "\r\n";
  for (const auto& [name, value] : headers) {
    os << name << ": " << value << "\r\n";
  }
  os << "\r\n" << body;
  return os.str();
}

std::optional<Request> parse_request(std::string_view text) {
  std::string start_line;
  Request req;
  if (!split_message(text, start_line, req.headers, req.body)) {
    return std::nullopt;
  }
  const auto parts = util::split(start_line, ' ');
  if (parts.size() != 3 || parts[2] != kVersion) return std::nullopt;
  const auto method = parse_method(parts[0]);
  if (!method) return std::nullopt;
  req.method = *method;
  req.url = parts[1];
  req.cseq = cseq_of(req.headers);
  return req;
}

std::optional<Response> parse_response(std::string_view text) {
  std::string start_line;
  Response resp;
  if (!split_message(text, start_line, resp.headers, resp.body)) {
    return std::nullopt;
  }
  // "RTSP/1.0 200 OK" — reason may contain spaces.
  const auto first_space = start_line.find(' ');
  if (first_space == std::string::npos) return std::nullopt;
  if (std::string_view(start_line).substr(0, first_space) != kVersion) {
    return std::nullopt;
  }
  const auto second_space = start_line.find(' ', first_space + 1);
  const std::string code_str =
      second_space == std::string::npos
          ? start_line.substr(first_space + 1)
          : start_line.substr(first_space + 1, second_space - first_space - 1);
  const auto code = parse_int(code_str);
  if (!code) return std::nullopt;
  resp.status = static_cast<StatusCode>(*code);
  resp.cseq = cseq_of(resp.headers);
  return resp;
}

std::string TransportSpec::serialize() const {
  std::ostringstream os;
  os << "x-real-rdt/" << (use_udp ? "udp" : "tcp");
  if (use_udp) os << ";client_port=" << client_port;
  return os.str();
}

std::optional<TransportSpec> parse_transport(std::string_view value) {
  const auto fields = util::split(value, ';');
  if (fields.empty()) return std::nullopt;
  TransportSpec spec;
  const std::string proto = util::to_lower(util::trim(fields[0]));
  if (proto == "x-real-rdt/udp") {
    spec.use_udp = true;
  } else if (proto == "x-real-rdt/tcp") {
    spec.use_udp = false;
  } else {
    return std::nullopt;
  }
  for (std::size_t i = 1; i < fields.size(); ++i) {
    const auto [key, val] = util::split_first(util::trim(fields[i]), '=');
    if (util::iequals(key, "client_port")) {
      const auto port = parse_int(util::trim(val));
      if (!port) return std::nullopt;
      spec.client_port = *port;
    }
  }
  if (spec.use_udp && spec.client_port == 0) return std::nullopt;
  return spec;
}

}  // namespace rv::rtsp
