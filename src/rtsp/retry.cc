#include "rtsp/retry.h"

#include <algorithm>

#include "util/check.h"

namespace rv::rtsp {

RetryState::RetryState(RetryPolicy policy) : policy_(policy) {
  RV_CHECK_GE(policy_.max_attempts, 1);
  RV_CHECK_GT(policy_.initial_backoff, 0);
  RV_CHECK_GE(policy_.max_backoff, policy_.initial_backoff);
  RV_CHECK_GE(policy_.multiplier, 1.0);
}

std::optional<SimTime> RetryState::next_backoff() {
  ++attempts_used_;
  if (attempts_used_ >= policy_.max_attempts) return std::nullopt;
  double backoff = static_cast<double>(policy_.initial_backoff);
  for (int i = 1; i < attempts_used_; ++i) backoff *= policy_.multiplier;
  return std::min(static_cast<SimTime>(backoff), policy_.max_backoff);
}

}  // namespace rv::rtsp
