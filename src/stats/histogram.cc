#include "stats/histogram.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace rv::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  RV_CHECK_LT(lo, hi);
  RV_CHECK_GT(bins, 0u);
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::ptrdiff_t>((x - lo_) / width);
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  RV_CHECK_LT(bin, counts_.size());
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

MergeableHistogram::MergeableHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  RV_CHECK_LT(lo, hi);
  RV_CHECK_GT(bins, 0u);
}

void MergeableHistogram::add(double x, std::uint64_t weight) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::ptrdiff_t>((x - lo_) / width);
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(bin)] += weight;
  total_ += weight;
}

void MergeableHistogram::add_bin(std::size_t bin, std::uint64_t weight) {
  RV_CHECK_LT(bin, counts_.size());
  counts_[bin] += weight;
  total_ += weight;
}

void MergeableHistogram::merge(const MergeableHistogram& other) {
  RV_CHECK(same_geometry(other))
      << "merging histograms with different geometry: [" << lo_ << ", " << hi_
      << ")x" << counts_.size() << " vs [" << other.lo_ << ", " << other.hi_
      << ")x" << other.counts_.size();
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

std::uint64_t MergeableHistogram::bin_count(std::size_t bin) const {
  RV_CHECK_LT(bin, counts_.size());
  return counts_[bin];
}

double MergeableHistogram::quantile(double q) const {
  if (total_ == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto c = static_cast<double>(counts_[i]);
    if (cum + c >= target && c > 0.0) {
      const double frac = (target - cum) / c;
      return lo_ + width * (static_cast<double>(i) + frac);
    }
    cum += c;
  }
  return hi_;
}

void CountTable::add(const std::string& label, std::size_t n) {
  counts_[label] += n;
}

std::size_t CountTable::count(const std::string& label) const {
  const auto it = counts_.find(label);
  return it == counts_.end() ? 0 : it->second;
}

std::size_t CountTable::total() const {
  std::size_t t = 0;
  for (const auto& [_, n] : counts_) t += n;
  return t;
}

std::vector<std::pair<std::string, std::size_t>> CountTable::sorted_by_count()
    const {
  std::vector<std::pair<std::string, std::size_t>> out(counts_.begin(),
                                                       counts_.end());
  std::stable_sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second < b.second;
  });
  return out;
}

std::vector<std::pair<std::string, std::size_t>> CountTable::entries() const {
  return {counts_.begin(), counts_.end()};
}

}  // namespace rv::stats
