#include "stats/correlation.h"

#include <cmath>
#include <limits>

#include "stats/summary.h"
#include "util/check.h"

namespace rv::stats {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

}  // namespace

double pearson(std::span<const double> xs, std::span<const double> ys) {
  RV_CHECK_EQ(xs.size(), ys.size());
  RV_CHECK_GT(xs.size(), 1u);
  const double mx = mean_of(xs);
  const double my = mean_of(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  // A constant series has no linear association to measure; r is undefined.
  if (sxx <= 0.0 || syy <= 0.0) return kNaN;
  return sxy / std::sqrt(sxx * syy);
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  RV_CHECK_EQ(xs.size(), ys.size());
  RV_CHECK_GT(xs.size(), 1u);
  const double mx = mean_of(xs);
  const double my = mean_of(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
  }
  LinearFit fit{};
  if (sxx <= 0.0) {
    // Vertical data: no OLS line exists. NaN everywhere, caller renders n/a.
    fit.slope = kNaN;
    fit.intercept = kNaN;
    fit.r = kNaN;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r = pearson(xs, ys);  // NaN when ys is constant
  return fit;
}

}  // namespace rv::stats
