// Fixed-bin histograms and labelled count tables (for the paper's bar charts).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rv::stats {

// Histogram over [lo, hi) with `bins` equal-width bins; values outside the
// range land in the first/last bin.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t bin) const;
  std::size_t total() const { return total_; }
  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

// Mergeable fixed-bin histogram sketch for study-level telemetry rollups.
//
// Unlike Histogram it carries u64 weights and supports exact merging:
// two sketches with identical geometry combine bin-by-bin, so per-play
// sketches built on any worker in any order reduce to the same study-level
// sketch (merge is commutative and associative, bin-exact — proven in
// stats_test). Values outside [lo, hi) clamp into the edge bins, mirroring
// Histogram::add.
class MergeableHistogram {
 public:
  MergeableHistogram(double lo, double hi, std::size_t bins);

  void add(double x, std::uint64_t weight = 1);
  // Adds `weight` directly to `bin` (bounds-checked) — the deserialization
  // path for shard-rollup files, which carry bin indices, not sample values.
  void add_bin(std::size_t bin, std::uint64_t weight);
  // Requires identical geometry (checked).
  void merge(const MergeableHistogram& other);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t bins() const { return counts_.size(); }
  std::uint64_t bin_count(std::size_t bin) const;
  std::uint64_t total() const { return total_; }
  bool same_geometry(const MergeableHistogram& other) const {
    return lo_ == other.lo_ && hi_ == other.hi_ &&
           counts_.size() == other.counts_.size();
  }
  bool operator==(const MergeableHistogram& other) const {
    return same_geometry(other) && counts_ == other.counts_;
  }

  // Quantile estimate (q in [0,1]) by linear interpolation within the
  // containing bin; NaN when empty.
  double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

// Ordered label → count map (bar charts like Figs 7–10).
class CountTable {
 public:
  void add(const std::string& label, std::size_t n = 1);
  std::size_t count(const std::string& label) const;
  std::size_t total() const;
  // Entries sorted by ascending count (the paper's bar charts are sorted).
  std::vector<std::pair<std::string, std::size_t>> sorted_by_count() const;
  std::vector<std::pair<std::string, std::size_t>> entries() const;
  bool empty() const { return counts_.empty(); }

 private:
  std::map<std::string, std::size_t> counts_;
};

}  // namespace rv::stats
