// Fixed-bin histograms and labelled count tables (for the paper's bar charts).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace rv::stats {

// Histogram over [lo, hi) with `bins` equal-width bins; values outside the
// range land in the first/last bin.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t bin) const;
  std::size_t total() const { return total_; }
  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

// Ordered label → count map (bar charts like Figs 7–10).
class CountTable {
 public:
  void add(const std::string& label, std::size_t n = 1);
  std::size_t count(const std::string& label) const;
  std::size_t total() const;
  // Entries sorted by ascending count (the paper's bar charts are sorted).
  std::vector<std::pair<std::string, std::size_t>> sorted_by_count() const;
  std::vector<std::pair<std::string, std::size_t>> entries() const;
  bool empty() const { return counts_.empty(); }

 private:
  std::map<std::string, std::size_t> counts_;
};

}  // namespace rv::stats
