// Correlation and simple linear regression (Fig 28's trend analysis).
#pragma once

#include <span>

namespace rv::stats {

// Pearson correlation coefficient; requires equal-sized data with at least
// two points. Returns quiet NaN when either series has zero variance (a
// constant series has no defined correlation) -- callers render it as n/a.
double pearson(std::span<const double> xs, std::span<const double> ys);

struct LinearFit {
  double slope;
  double intercept;
  double r;  // Pearson correlation of the fit
};

// Ordinary least squares y = slope*x + intercept. When xs has zero variance
// every field is quiet NaN; when only ys is constant the line is exact
// (slope 0) but r is NaN.
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

}  // namespace rv::stats
