// Correlation and simple linear regression (Fig 28's trend analysis).
#pragma once

#include <span>

namespace rv::stats {

// Pearson correlation coefficient; requires equal-sized, non-degenerate data.
double pearson(std::span<const double> xs, std::span<const double> ys);

struct LinearFit {
  double slope;
  double intercept;
  double r;  // Pearson correlation of the fit
};

// Ordinary least squares y = slope*x + intercept.
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

}  // namespace rv::stats
