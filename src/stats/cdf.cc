#include "stats/cdf.h"

#include <algorithm>

#include "stats/summary.h"
#include "util/check.h"

namespace rv::stats {

Cdf::Cdf(std::span<const double> xs) : sorted_(xs.begin(), xs.end()) {
  std::sort(sorted_.begin(), sorted_.end());
  if (!sorted_.empty()) mean_ = mean_of(sorted_);
}

double Cdf::at(double x) const {
  RV_CHECK(!empty());
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Cdf::inverse(double q) const {
  RV_CHECK(!empty());
  RV_CHECK_GT(q, 0.0);
  RV_CHECK_LE(q, 1.0);
  const auto rank = static_cast<std::size_t>(
      std::max(0.0, q * static_cast<double>(sorted_.size()) - 1.0));
  return sorted_[std::min(rank, sorted_.size() - 1)];
}

double Cdf::min() const {
  RV_CHECK(!empty());
  return sorted_.front();
}

double Cdf::max() const {
  RV_CHECK(!empty());
  return sorted_.back();
}

std::vector<Cdf::Point> Cdf::sample(std::size_t n_points) const {
  RV_CHECK(!empty());
  RV_CHECK_GE(n_points, 2u);
  std::vector<Point> pts;
  pts.reserve(n_points);
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  for (std::size_t i = 0; i < n_points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) /
                 static_cast<double>(n_points - 1);
    pts.push_back({x, at(x)});
  }
  return pts;
}

}  // namespace rv::stats
