#include "stats/summary.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace rv::stats {

void Summary::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Summary::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

double Summary::mean() const {
  RV_CHECK_GT(count_, 0u);
  return mean_;
}

double Summary::variance() const {
  RV_CHECK_GT(count_, 0u);
  return m2_ / static_cast<double>(count_);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::sample_variance() const {
  RV_CHECK_GT(count_, 1u);
  return m2_ / static_cast<double>(count_ - 1);
}

double Summary::sample_stddev() const { return std::sqrt(sample_variance()); }

double Summary::min() const {
  RV_CHECK_GT(count_, 0u);
  return min_;
}

double Summary::max() const {
  RV_CHECK_GT(count_, 0u);
  return max_;
}

double quantile(std::span<const double> xs, double q) {
  RV_CHECK(!xs.empty());
  RV_CHECK_GE(q, 0.0);
  RV_CHECK_LE(q, 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean_of(std::span<const double> xs) {
  Summary s;
  s.add_all(xs);
  return s.mean();
}

double stddev_of(std::span<const double> xs) {
  Summary s;
  s.add_all(xs);
  return s.stddev();
}

double fraction_below(std::span<const double> xs, double threshold) {
  RV_CHECK(!xs.empty());
  std::size_t n = 0;
  for (double x : xs) {
    if (x < threshold) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(xs.size());
}

double fraction_at_or_above(std::span<const double> xs, double threshold) {
  return 1.0 - fraction_below(xs, threshold);
}

}  // namespace rv::stats
