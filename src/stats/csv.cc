#include "stats/csv.h"

#include <stdexcept>

namespace rv::stats {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("cannot open CSV file: " + path);
}

void CsvWriter::write_row(std::span<const std::string> cells) {
  bool first = true;
  for (const auto& cell : cells) {
    if (!first) out_ << ',';
    out_ << csv_escape(cell);
    first = false;
  }
  out_ << '\n';
}

void CsvWriter::write_row(std::initializer_list<std::string> cells) {
  write_row(std::span<const std::string>(cells.begin(), cells.size()));
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace rv::stats
