// Streaming summary statistics (count/mean/variance/min/max) and quantiles.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rv::stats {

// Welford-style online accumulator for mean and variance.
class Summary {
 public:
  void add(double x);
  void add_all(std::span<const double> xs);

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double mean() const;
  // Population variance/stddev (divide by n); the paper's jitter metric is the
  // standard deviation over all inter-frame gaps of a clip, not a sample
  // estimate, so population form is the right default.
  double variance() const;
  double stddev() const;
  // Sample (n-1) variants.
  double sample_variance() const;
  double sample_stddev() const;
  double min() const;
  double max() const;
  double sum() const { return count_ == 0 ? 0.0 : mean_ * count_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Quantile of a dataset using linear interpolation between order statistics
// (type-7, the numpy/R default). `q` in [0, 1]. Data need not be sorted.
double quantile(std::span<const double> xs, double q);

double mean_of(std::span<const double> xs);
double stddev_of(std::span<const double> xs);

// Fraction of values strictly below `threshold`.
double fraction_below(std::span<const double> xs, double threshold);
// Fraction of values at or above `threshold`.
double fraction_at_or_above(std::span<const double> xs, double threshold);

}  // namespace rv::stats
