// ASCII rendering of the paper's plot types: multi-series CDF line charts,
// horizontal bar charts, and scatter plots. The bench binaries print these so
// a figure can be eyeballed against the paper without a plotting stack.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "stats/cdf.h"
#include "stats/histogram.h"

namespace rv::stats {

struct RenderOptions {
  std::size_t width = 72;   // plot columns
  std::size_t height = 20;  // plot rows
  double x_min = 0.0;
  double x_max = 0.0;  // <= x_min means auto
  std::string x_label;
  std::string title;
};

// Multi-series CDF plot; each series is drawn with its own glyph and a legend
// line is appended.
std::string render_cdfs(std::span<const LabeledCdf> series,
                        const RenderOptions& opts);

// Horizontal bar chart of label → count, ascending by count.
std::string render_bars(const CountTable& table, const std::string& title,
                        std::size_t width = 50);

// Scatter plot of (x, y) points.
std::string render_scatter(std::span<const double> xs,
                           std::span<const double> ys,
                           const RenderOptions& opts,
                           const std::string& y_label);

// A two-column "paper vs measured" comparison block.
struct ComparisonRow {
  std::string metric;
  std::string paper;
  std::string measured;
};
std::string render_comparison(const std::string& title,
                              std::span<const ComparisonRow> rows);

}  // namespace rv::stats
