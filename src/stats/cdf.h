// Empirical cumulative distribution functions — the paper's workhorse plot.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace rv::stats {

// Empirical CDF over a dataset. Immutable once built.
class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::span<const double> xs);

  bool empty() const { return sorted_.empty(); }
  std::size_t size() const { return sorted_.size(); }

  // P(X <= x).
  double at(double x) const;
  // Smallest value v with P(X <= v) >= q, q in (0, 1].
  double inverse(double q) const;
  double median() const { return inverse(0.5); }
  double mean() const { return mean_; }
  double min() const;
  double max() const;

  // Evenly spaced sample points (x, F(x)) for plotting/export.
  struct Point {
    double x;
    double f;
  };
  std::vector<Point> sample(std::size_t n_points) const;

  // The underlying sorted values.
  std::span<const double> values() const { return sorted_; }

 private:
  std::vector<double> sorted_;
  double mean_ = 0.0;
};

// A named collection of CDFs plotted on shared axes (e.g., frame rate split by
// connection class).
struct LabeledCdf {
  std::string label;
  Cdf cdf;
};

}  // namespace rv::stats
