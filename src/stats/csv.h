// Minimal CSV writer for exporting figure data (one file per figure, so the
// series can be re-plotted with external tooling).
#pragma once

#include <fstream>
#include <span>
#include <string>
#include <vector>

namespace rv::stats {

class CsvWriter {
 public:
  // Opens (truncates) `path`; throws on failure.
  explicit CsvWriter(const std::string& path);

  void write_row(std::span<const std::string> cells);
  void write_row(std::initializer_list<std::string> cells);

 private:
  std::ofstream out_;
};

// Escapes a cell per RFC 4180 (quotes fields containing comma/quote/newline).
std::string csv_escape(const std::string& cell);

}  // namespace rv::stats
