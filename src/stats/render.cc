#include "stats/render.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"
#include "util/strings.h"

namespace rv::stats {
namespace {

constexpr char kGlyphs[] = {'*', '+', 'o', 'x', '#', '@', '%', '&'};

struct Range {
  double lo;
  double hi;
};

Range x_range(std::span<const LabeledCdf> series, const RenderOptions& opts) {
  if (opts.x_max > opts.x_min) return {opts.x_min, opts.x_max};
  double lo = 0.0;
  double hi = 1.0;
  bool first = true;
  for (const auto& s : series) {
    if (s.cdf.empty()) continue;
    if (first) {
      lo = s.cdf.min();
      hi = s.cdf.max();
      first = false;
    } else {
      lo = std::min(lo, s.cdf.min());
      hi = std::max(hi, s.cdf.max());
    }
  }
  if (hi <= lo) hi = lo + 1.0;
  return {lo, hi};
}

}  // namespace

std::string render_cdfs(std::span<const LabeledCdf> series,
                        const RenderOptions& opts) {
  RV_CHECK(!series.empty());
  const auto [xlo, xhi] = x_range(series, opts);
  const std::size_t w = opts.width;
  const std::size_t h = opts.height;
  std::vector<std::string> grid(h, std::string(w, ' '));

  for (std::size_t si = 0; si < series.size(); ++si) {
    const auto& s = series[si];
    if (s.cdf.empty()) continue;
    const char glyph = kGlyphs[si % sizeof(kGlyphs)];
    for (std::size_t col = 0; col < w; ++col) {
      const double x =
          xlo + (xhi - xlo) * static_cast<double>(col) /
                    static_cast<double>(w - 1);
      const double f = s.cdf.at(x);
      auto row = static_cast<std::size_t>(
          std::round(f * static_cast<double>(h - 1)));
      row = std::min(row, h - 1);
      grid[h - 1 - row][col] = glyph;
    }
  }

  std::ostringstream os;
  if (!opts.title.empty()) os << opts.title << "\n";
  for (std::size_t r = 0; r < h; ++r) {
    const double f =
        1.0 - static_cast<double>(r) / static_cast<double>(h - 1);
    os << util::format_double(f, 2) << " |" << grid[r] << "\n";
  }
  os << "     +" << std::string(w, '-') << "\n";
  os << "      " << util::format_double(xlo, 1)
     << std::string(w > 24 ? w - 16 : 1, ' ') << util::format_double(xhi, 1)
     << "\n";
  if (!opts.x_label.empty()) {
    const std::size_t pad = (w > opts.x_label.size())
                                ? (w - opts.x_label.size()) / 2
                                : 0;
    os << "      " << std::string(pad, ' ') << opts.x_label << "\n";
  }
  os << "      legend:";
  for (std::size_t si = 0; si < series.size(); ++si) {
    os << "  " << kGlyphs[si % sizeof(kGlyphs)] << "=" << series[si].label;
  }
  os << "\n";
  return os.str();
}

std::string render_bars(const CountTable& table, const std::string& title,
                        std::size_t width) {
  std::ostringstream os;
  if (!title.empty()) os << title << "\n";
  const auto rows = table.sorted_by_count();
  std::size_t max_count = 1;
  std::size_t max_label = 1;
  for (const auto& [label, n] : rows) {
    max_count = std::max(max_count, n);
    max_label = std::max(max_label, label.size());
  }
  for (const auto& [label, n] : rows) {
    const auto bar = static_cast<std::size_t>(
        std::round(static_cast<double>(n) / static_cast<double>(max_count) *
                   static_cast<double>(width)));
    os << "  " << label << std::string(max_label - label.size() + 1, ' ')
       << "|" << std::string(bar, '#') << " " << n << "\n";
  }
  return os.str();
}

std::string render_scatter(std::span<const double> xs,
                           std::span<const double> ys,
                           const RenderOptions& opts,
                           const std::string& y_label) {
  RV_CHECK_EQ(xs.size(), ys.size());
  RV_CHECK(!xs.empty());
  double xlo = opts.x_min;
  double xhi = opts.x_max;
  if (xhi <= xlo) {
    xlo = *std::min_element(xs.begin(), xs.end());
    xhi = *std::max_element(xs.begin(), xs.end());
    if (xhi <= xlo) xhi = xlo + 1.0;
  }
  const double ylo = *std::min_element(ys.begin(), ys.end());
  double yhi = *std::max_element(ys.begin(), ys.end());
  if (yhi <= ylo) yhi = ylo + 1.0;

  const std::size_t w = opts.width;
  const std::size_t h = opts.height;
  std::vector<std::string> grid(h, std::string(w, ' '));
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double fx = std::clamp((xs[i] - xlo) / (xhi - xlo), 0.0, 1.0);
    const double fy = std::clamp((ys[i] - ylo) / (yhi - ylo), 0.0, 1.0);
    const auto col = static_cast<std::size_t>(
        std::round(fx * static_cast<double>(w - 1)));
    const auto row = static_cast<std::size_t>(
        std::round(fy * static_cast<double>(h - 1)));
    grid[h - 1 - row][col] = '*';
  }

  std::ostringstream os;
  if (!opts.title.empty()) os << opts.title << "\n";
  os << "  y: " << y_label << " [" << util::format_double(ylo, 1) << ", "
     << util::format_double(yhi, 1) << "]\n";
  for (const auto& row : grid) os << "  |" << row << "\n";
  os << "  +" << std::string(w, '-') << "\n";
  os << "   " << util::format_double(xlo, 1)
     << std::string(w > 24 ? w - 16 : 1, ' ') << util::format_double(xhi, 1)
     << "\n";
  if (!opts.x_label.empty()) os << "   x: " << opts.x_label << "\n";
  return os.str();
}

std::string render_comparison(const std::string& title,
                              std::span<const ComparisonRow> rows) {
  std::size_t w_metric = 6;
  std::size_t w_paper = 5;
  for (const auto& r : rows) {
    w_metric = std::max(w_metric, r.metric.size());
    w_paper = std::max(w_paper, r.paper.size());
  }
  std::ostringstream os;
  os << title << "\n";
  os << "  " << std::string(w_metric, '-') << "  paper"
     << std::string(w_paper > 5 ? w_paper - 5 : 0, ' ') << "  measured\n";
  for (const auto& r : rows) {
    os << "  " << r.metric << std::string(w_metric - r.metric.size(), ' ')
       << "  " << r.paper << std::string(w_paper - r.paper.size(), ' ')
       << "  " << r.measured << "\n";
  }
  return os.str();
}

}  // namespace rv::stats
