#include "obs/http_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.h"
#include "rtsp/http.h"
#include "util/args.h"

namespace rv::obs {
namespace {

// Reads until the header terminator or the cap; a status request has no
// body, so the headers are the whole message.
bool read_request(int fd, std::string* out) {
  char buf[2048];
  while (out->size() < 16 * 1024) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return !out->empty();
    out->append(buf, static_cast<std::size_t>(n));
    if (out->find("\r\n\r\n") != std::string::npos ||
        out->find("\n\n") != std::string::npos) {
      return true;
    }
  }
  return true;
}

void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

StatusServer::StatusServer(MetricsRegistry* registry,
                           std::function<std::string()> progress)
    : registry_(registry), progress_(std::move(progress)) {
  if (!progress_) {
    progress_ = [registry] {
      return progress_json(snapshot_progress(*registry));
    };
  }
}

StatusServer::~StatusServer() { stop(); }

bool StatusServer::start(int port, std::string* error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 16) < 0) {
    if (error != nullptr) {
      *error = "cannot bind 127.0.0.1:" + std::to_string(port) + ": " +
               std::strerror(errno);
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  stopping_.store(false, std::memory_order_release);
  thread_ = std::thread(&StatusServer::serve, this);
  return true;
}

void StatusServer::stop() {
  stopping_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void StatusServer::serve() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stopping_
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // A stuck client must not wedge the (single) serving thread.
    timeval tv{2, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

    std::string raw;
    rtsp::HttpResponse resp;
    resp.headers.set("Connection", "close");
    if (!read_request(fd, &raw)) {
      ::close(fd);
      continue;
    }
    const auto req = rtsp::parse_http_request(raw);
    if (registry_ != nullptr) registry_->add(Metric::kHttpRequests);
    if (!req) {
      resp.status = 400;
      resp.body = "bad request\n";
      resp.headers.set("Content-Type", "text/plain");
    } else {
      int status = 200;
      std::string content_type = "text/plain";
      resp.body = handle(req->path, &status, &content_type);
      resp.status = status;
      resp.headers.set("Content-Type", content_type);
    }
    resp.headers.set("Content-Length", std::to_string(resp.body.size()));
    write_all(fd, resp.serialize());
    ::close(fd);
  }
}

std::string StatusServer::handle(const std::string& path, int* status,
                                 std::string* content_type) const {
  // Ignore any query string: /progress?x=1 is /progress.
  const std::string bare = path.substr(0, path.find('?'));
  if (bare == "/metrics") {
    *content_type = "text/plain; version=0.0.4; charset=utf-8";
    return registry_ != nullptr ? registry_->encode_prometheus() : "";
  }
  if (bare == "/progress") {
    *content_type = "application/json";
    return progress_();
  }
  if (bare == "/healthz" || bare == "/") {
    return "ok\n";
  }
  *status = 404;
  return "not found (try /metrics, /progress, /healthz)\n";
}

std::optional<int> parse_status_port(const std::string& text) {
  const auto v = util::parse_int(text);
  if (!v || *v < 0 || *v > 65535) return std::nullopt;
  return static_cast<int>(*v);
}

}  // namespace rv::obs
