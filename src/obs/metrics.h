// Process-wide, wall-clock-side metrics for long-running campaign/study
// execution — strictly OUTSIDE the deterministic simulation.
//
// The per-play tracing in obs/trace.h answers "what happened inside this
// simulated play"; this registry answers "how is the *process* doing right
// now": plays folded, users done, spill bytes written, cache hits, RSS.
// Values are sampled by the embedded HTTP exporter (obs/http_exporter.h),
// the upgraded stderr progress line, and the shard heartbeat files
// (obs/heartbeat.h) — all from the SAME registry snapshot, so there is one
// source of truth for rate and ETA.
//
// Determinism: nothing here ever feeds back into simulation state or the
// RNG tree. Hook sites live only on the wall-clock side (campaign chunk
// loop, study cache, tools); with no registry installed a hook is one
// relaxed atomic load and a predicted-untaken branch (gated <2% combined
// with the tracing hooks by run_bench.py --obs-overhead-check, see
// BM_MetricsDisabled). The committed study cache md5 is byte-identical with
// the exporter on or off.
//
// Concurrency: counters and gauges are relaxed atomics (lock-free adds from
// any thread); histograms take a tiny per-histogram mutex on observe() and
// encode(). The exporter thread only ever reads.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "stats/histogram.h"

namespace rv::obs {

// Monotonic process counters. Prometheus names end in _total by convention.
enum class Metric : std::uint16_t {
  kPlaysCompleted = 0,     // records folded / plays finished
  kUsersCompleted = 1,     // users fully executed
  kChunksCompleted = 2,    // campaign chunks folded
  kSpillBytesWritten = 3,  // bytes appended to the columnar spill
  kSpillFramesWritten = 4, // spill frames (extents) flushed
  kCacheHits = 5,          // study cache satisfied a run
  kCacheMisses = 6,        // study cache missed; study re-ran
  kHeartbeatsWritten = 7,  // shard heartbeat files atomically renamed
  kHttpRequests = 8,       // requests served by the status exporter

  kCount = 9,
};

// Instantaneous gauges (last write wins).
enum class MetricGauge : std::uint16_t {
  kUsersPlanned = 0,   // users this shard will run (ETA denominator)
  kShardIndex = 1,
  kShardCount = 2,
  kWorkers = 3,        // resolved worker-thread count
  kRssKb = 4,          // current resident set, KiB
  kLastFoldUser = 5,   // absolute user id the fold position has reached

  kCount = 6,
};

// Fixed-geometry distribution sketches (reusing stats::MergeableHistogram
// for quantiles). Geometry is fixed per slot so encoders and tests agree.
enum class MetricHist : std::uint16_t {
  kPlayFps = 0,            // measured fps per analyzable play
  kPlayBandwidthKbps = 1,  // measured bandwidth per analyzable play

  kCount = 2,
};

constexpr double kMetricFpsLo = 0.0, kMetricFpsHi = 40.0;
constexpr std::size_t kMetricFpsBins = 80;
constexpr double kMetricBwLo = 0.0, kMetricBwHi = 2000.0;
constexpr std::size_t kMetricBwBins = 200;

// Prometheus metric name / HELP text per slot.
const char* metric_name(Metric m);
const char* metric_help(Metric m);
const char* gauge_name(MetricGauge g);
const char* gauge_help(MetricGauge g);
const char* hist_name(MetricHist h);
const char* hist_help(MetricHist h);

// Prometheus text-exposition escaping. Label values escape backslash,
// double-quote and newline; HELP text escapes backslash and newline
// (exposition format v0.0.4).
std::string prom_escape_label(std::string_view s);
std::string prom_escape_help(std::string_view s);

class MetricsRegistry {
 public:
  MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Counters (monotonic adds; lock-free).
  void add(Metric m, std::uint64_t n = 1) {
    counters_[static_cast<std::size_t>(m)].fetch_add(
        n, std::memory_order_relaxed);
  }
  std::uint64_t value(Metric m) const {
    return counters_[static_cast<std::size_t>(m)].load(
        std::memory_order_relaxed);
  }

  // Gauges (lock-free set/read).
  void set(MetricGauge g, std::int64_t v) {
    gauges_[static_cast<std::size_t>(g)].store(v, std::memory_order_relaxed);
  }
  std::int64_t gauge(MetricGauge g) const {
    return gauges_[static_cast<std::size_t>(g)].load(
        std::memory_order_relaxed);
  }

  // Histograms (per-slot mutex; observe is cheap, encode snapshots).
  void observe(MetricHist h, double value);
  std::uint64_t hist_count(MetricHist h) const;
  double hist_quantile(MetricHist h, double q) const;

  // One optional label pair stamped on every exported series (e.g.
  // shard="3"). Thread-safe; set once at startup in practice.
  void set_common_label(std::string name, std::string value);

  // Wall-clock seconds since construction — the rate/ETA clock. Monotonic
  // (std::chrono::steady_clock), never the sim clock.
  double elapsed_seconds() const;

  // Prometheus text exposition (v0.0.4): HELP/TYPE per family, counters,
  // gauges, then histograms with cumulative le-buckets, _sum and _count.
  std::string encode_prometheus() const;

 private:
  struct Hist {
    mutable std::mutex mu;
    stats::MergeableHistogram h;
    double sum = 0.0;
    Hist(double lo, double hi, std::size_t bins) : h(lo, hi, bins) {}
  };

  std::array<std::atomic<std::uint64_t>,
             static_cast<std::size_t>(Metric::kCount)>
      counters_{};
  std::array<std::atomic<std::int64_t>,
             static_cast<std::size_t>(MetricGauge::kCount)>
      gauges_{};
  std::array<Hist, static_cast<std::size_t>(MetricHist::kCount)> hists_;
  mutable std::mutex label_mu_;
  std::string label_name_;
  std::string label_value_;
  std::chrono::steady_clock::time_point start_;
};

// One coherent progress view derived from a registry — the single source of
// truth behind /progress, the stderr progress line and the heartbeat files.
struct ProgressSnapshot {
  std::uint64_t plays = 0;
  std::uint64_t users_done = 0;
  std::uint64_t users_total = 0;
  std::uint64_t shard_index = 0;
  std::uint64_t shard_count = 1;
  double elapsed_seconds = 0.0;
  double plays_per_sec = 0.0;
  double users_per_sec = 0.0;
  // Seconds until users_done reaches users_total at the current user rate;
  // negative when unknown (no progress yet or no planned total).
  double eta_seconds = -1.0;
  std::int64_t rss_kb = 0;
  bool done = false;
};

ProgressSnapshot snapshot_progress(const MetricsRegistry& registry);

// The /progress payload. eta_seconds renders as null while unknown.
std::string progress_json(const ProgressSnapshot& s);

// Process-global install point for the cheap hook sites below. Passing
// nullptr uninstalls. Not reference-counted: the caller keeps the registry
// alive for the duration (tools own it in main()).
void install_metrics(MetricsRegistry* registry);
MetricsRegistry* installed_metrics();

namespace detail {
extern std::atomic<MetricsRegistry*> g_metrics;
}  // namespace detail

// Hook sites: with no registry installed, one relaxed load and a
// predicted-untaken branch (benched by BM_MetricsDisabled, gated alongside
// the obs/telemetry hooks in run_bench.py --obs-overhead-check).
inline void metrics_add(Metric m, std::uint64_t n = 1) {
  MetricsRegistry* r = detail::g_metrics.load(std::memory_order_relaxed);
  if (__builtin_expect(r != nullptr, 0)) r->add(m, n);
}

inline void metrics_gauge_set(MetricGauge g, std::int64_t v) {
  MetricsRegistry* r = detail::g_metrics.load(std::memory_order_relaxed);
  if (__builtin_expect(r != nullptr, 0)) r->set(g, v);
}

inline void metrics_observe(MetricHist h, double value) {
  MetricsRegistry* r = detail::g_metrics.load(std::memory_order_relaxed);
  if (__builtin_expect(r != nullptr, 0)) r->observe(h, value);
}

// Current (not peak) resident set in KiB from /proc/self/status VmRSS;
// 0 when unavailable.
std::int64_t current_rss_kb();

}  // namespace rv::obs
