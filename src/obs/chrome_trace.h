// Chrome trace_event JSON export for per-play observability data.
//
// Produces the JSON Object Format ({"traceEvents": [...]}) consumed by
// chrome://tracing and ui.perfetto.dev. One track per play: pid groups a
// user's plays, tid is the play's index within the user's session, and
// metadata events carry human-readable names. Rebuffer start/stop become
// duration ("B"/"E") spans; every other trace event is an instant ("i").
// Counter totals ride along in the track's thread_name metadata args.
//
// Emission order is the caller's track order, and events within a track are
// already merged in plan order, so the output bytes are identical no matter
// how many worker threads produced the data.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.h"

namespace rv::obs {

// One named counter ("C"-phase) track: a time series sampled at fixed
// sim-time intervals, rendered by the trace viewer as a stacked area chart
// under the play's thread. Kept generic (name + parallel t/v vectors) so the
// exporter stays independent of whichever layer produced the samples — the
// telemetry sampler converts its columnar Series into these.
struct CounterSeries {
  std::string name;
  std::vector<SimTime> t;
  std::vector<double> v;
};

struct PlayTrack {
  std::uint32_t pid = 0;  // user id
  std::uint32_t tid = 0;  // play index within the user's session
  std::string process_name;  // e.g. "user 12 (modem, US)"
  std::string thread_name;   // e.g. "play 3 clip 45 site US/CNN"
  const PlayObs* obs = nullptr;
  // Optional counter tracks (--telemetry); emitted after the track's events.
  std::vector<CounterSeries> counters;
};

// Renders the full trace document. Tracks with a null/disabled obs are
// skipped (e.g. plays excluded by --trace-play).
std::string chrome_trace_json(const std::vector<PlayTrack>& tracks);

// Writes chrome_trace_json(tracks) to path. Returns false on I/O failure.
bool write_chrome_trace(const std::string& path,
                        const std::vector<PlayTrack>& tracks);

}  // namespace rv::obs
