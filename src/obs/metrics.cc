#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace rv::obs {
namespace {

// Renders a double the way Prometheus clients expect: plain decimal, no
// exponent for the magnitudes we emit, trailing zeros trimmed.
std::string prom_double(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

const char* metric_name(Metric m) {
  switch (m) {
    case Metric::kPlaysCompleted: return "rv_plays_completed_total";
    case Metric::kUsersCompleted: return "rv_users_completed_total";
    case Metric::kChunksCompleted: return "rv_chunks_completed_total";
    case Metric::kSpillBytesWritten: return "rv_spill_bytes_written_total";
    case Metric::kSpillFramesWritten: return "rv_spill_frames_written_total";
    case Metric::kCacheHits: return "rv_study_cache_hits_total";
    case Metric::kCacheMisses: return "rv_study_cache_misses_total";
    case Metric::kHeartbeatsWritten: return "rv_heartbeats_written_total";
    case Metric::kHttpRequests: return "rv_status_http_requests_total";
    case Metric::kCount: break;
  }
  return "rv_unknown_total";
}

const char* metric_help(Metric m) {
  switch (m) {
    case Metric::kPlaysCompleted:
      return "Simulated plays finished and folded into the rollup";
    case Metric::kUsersCompleted: return "Users fully executed";
    case Metric::kChunksCompleted: return "Campaign chunks folded";
    case Metric::kSpillBytesWritten:
      return "Bytes appended to the columnar record spill";
    case Metric::kSpillFramesWritten:
      return "Spill frames (extents) flushed to disk";
    case Metric::kCacheHits: return "Study cache hits";
    case Metric::kCacheMisses: return "Study cache misses (study re-ran)";
    case Metric::kHeartbeatsWritten:
      return "Shard heartbeat files atomically renamed into place";
    case Metric::kHttpRequests:
      return "HTTP requests served by the embedded status exporter";
    case Metric::kCount: break;
  }
  return "";
}

const char* gauge_name(MetricGauge g) {
  switch (g) {
    case MetricGauge::kUsersPlanned: return "rv_users_planned";
    case MetricGauge::kShardIndex: return "rv_shard_index";
    case MetricGauge::kShardCount: return "rv_shard_count";
    case MetricGauge::kWorkers: return "rv_worker_threads";
    case MetricGauge::kRssKb: return "rv_resident_memory_kilobytes";
    case MetricGauge::kLastFoldUser: return "rv_last_fold_user";
    case MetricGauge::kCount: break;
  }
  return "rv_unknown";
}

const char* gauge_help(MetricGauge g) {
  switch (g) {
    case MetricGauge::kUsersPlanned:
      return "Users this process will execute (ETA denominator)";
    case MetricGauge::kShardIndex: return "This process's shard index";
    case MetricGauge::kShardCount: return "Total shards in the campaign";
    case MetricGauge::kWorkers: return "Resolved worker-thread count";
    case MetricGauge::kRssKb: return "Resident set size in KiB";
    case MetricGauge::kLastFoldUser:
      return "Absolute user id the fold position has reached";
    case MetricGauge::kCount: break;
  }
  return "";
}

const char* hist_name(MetricHist h) {
  switch (h) {
    case MetricHist::kPlayFps: return "rv_play_fps";
    case MetricHist::kPlayBandwidthKbps: return "rv_play_bandwidth_kbps";
    case MetricHist::kCount: break;
  }
  return "rv_unknown_hist";
}

const char* hist_help(MetricHist h) {
  switch (h) {
    case MetricHist::kPlayFps:
      return "Measured frame rate per analyzable play";
    case MetricHist::kPlayBandwidthKbps:
      return "Measured bandwidth per analyzable play (Kbps)";
    case MetricHist::kCount: break;
  }
  return "";
}

std::string prom_escape_label(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string prom_escape_help(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

MetricsRegistry::MetricsRegistry()
    : hists_{Hist(kMetricFpsLo, kMetricFpsHi, kMetricFpsBins),
             Hist(kMetricBwLo, kMetricBwHi, kMetricBwBins)},
      start_(std::chrono::steady_clock::now()) {}

void MetricsRegistry::observe(MetricHist h, double value) {
  Hist& slot = hists_[static_cast<std::size_t>(h)];
  std::lock_guard<std::mutex> lock(slot.mu);
  slot.h.add(value);
  slot.sum += value;
}

std::uint64_t MetricsRegistry::hist_count(MetricHist h) const {
  const Hist& slot = hists_[static_cast<std::size_t>(h)];
  std::lock_guard<std::mutex> lock(slot.mu);
  return slot.h.total();
}

double MetricsRegistry::hist_quantile(MetricHist h, double q) const {
  const Hist& slot = hists_[static_cast<std::size_t>(h)];
  std::lock_guard<std::mutex> lock(slot.mu);
  return slot.h.quantile(q);
}

void MetricsRegistry::set_common_label(std::string name, std::string value) {
  std::lock_guard<std::mutex> lock(label_mu_);
  label_name_ = std::move(name);
  label_value_ = std::move(value);
}

double MetricsRegistry::elapsed_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

std::string MetricsRegistry::encode_prometheus() const {
  std::string label;       // `{name="value"}` or ""
  std::string label_open;  // `{name="value",` or "{" — for histogram le
  {
    std::lock_guard<std::mutex> lock(label_mu_);
    if (!label_name_.empty()) {
      const std::string pair =
          label_name_ + "=\"" + prom_escape_label(label_value_) + "\"";
      label = "{" + pair + "}";
      label_open = "{" + pair + ",";
    } else {
      label_open = "{";
    }
  }

  std::ostringstream os;
  for (std::size_t i = 0; i < static_cast<std::size_t>(Metric::kCount); ++i) {
    const auto m = static_cast<Metric>(i);
    os << "# HELP " << metric_name(m) << ' '
       << prom_escape_help(metric_help(m)) << "\n";
    os << "# TYPE " << metric_name(m) << " counter\n";
    os << metric_name(m) << label << ' ' << value(m) << "\n";
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(MetricGauge::kCount);
       ++i) {
    const auto g = static_cast<MetricGauge>(i);
    os << "# HELP " << gauge_name(g) << ' '
       << prom_escape_help(gauge_help(g)) << "\n";
    os << "# TYPE " << gauge_name(g) << " gauge\n";
    os << gauge_name(g) << label << ' ' << gauge(g) << "\n";
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(MetricHist::kCount);
       ++i) {
    const auto hid = static_cast<MetricHist>(i);
    const Hist& slot = hists_[i];
    std::lock_guard<std::mutex> lock(slot.mu);
    os << "# HELP " << hist_name(hid) << ' '
       << prom_escape_help(hist_help(hid)) << "\n";
    os << "# TYPE " << hist_name(hid) << " histogram\n";
    // Cumulative le-buckets over the sketch's fixed geometry. Values above
    // hi clamp into the last finite bucket by MergeableHistogram::add, so
    // the +Inf bucket always equals the total count.
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < slot.h.bins(); ++b) {
      cumulative += slot.h.bin_count(b);
      const double le =
          slot.h.lo() +
          (slot.h.hi() - slot.h.lo()) *
              (static_cast<double>(b + 1) / static_cast<double>(slot.h.bins()));
      os << hist_name(hid) << "_bucket" << label_open << "le=\""
         << prom_double(le) << "\"} " << cumulative << "\n";
    }
    os << hist_name(hid) << "_bucket" << label_open << "le=\"+Inf\"} "
       << slot.h.total() << "\n";
    os << hist_name(hid) << "_sum" << label << ' ' << prom_double(slot.sum)
       << "\n";
    os << hist_name(hid) << "_count" << label << ' ' << slot.h.total()
       << "\n";
  }
  return os.str();
}

ProgressSnapshot snapshot_progress(const MetricsRegistry& registry) {
  ProgressSnapshot s;
  s.plays = registry.value(Metric::kPlaysCompleted);
  s.users_done = registry.value(Metric::kUsersCompleted);
  s.users_total =
      static_cast<std::uint64_t>(registry.gauge(MetricGauge::kUsersPlanned));
  s.shard_index =
      static_cast<std::uint64_t>(registry.gauge(MetricGauge::kShardIndex));
  const std::int64_t shards = registry.gauge(MetricGauge::kShardCount);
  s.shard_count = shards > 0 ? static_cast<std::uint64_t>(shards) : 1;
  s.elapsed_seconds = registry.elapsed_seconds();
  if (s.elapsed_seconds > 0.0) {
    s.plays_per_sec = static_cast<double>(s.plays) / s.elapsed_seconds;
    s.users_per_sec = static_cast<double>(s.users_done) / s.elapsed_seconds;
  }
  s.done = s.users_total > 0 && s.users_done >= s.users_total;
  if (s.done) {
    s.eta_seconds = 0.0;
  } else if (s.users_total > 0 && s.users_per_sec > 0.0) {
    s.eta_seconds =
        static_cast<double>(s.users_total - s.users_done) / s.users_per_sec;
  }
  s.rss_kb = registry.gauge(MetricGauge::kRssKb);
  return s;
}

std::string progress_json(const ProgressSnapshot& s) {
  std::ostringstream os;
  os << "{\"plays\":" << s.plays << ",\"users_done\":" << s.users_done
     << ",\"users_total\":" << s.users_total
     << ",\"plays_per_sec\":" << prom_double(s.plays_per_sec)
     << ",\"users_per_sec\":" << prom_double(s.users_per_sec)
     << ",\"elapsed_seconds\":" << prom_double(s.elapsed_seconds)
     << ",\"eta_seconds\":";
  if (s.eta_seconds < 0.0) {
    os << "null";
  } else {
    os << prom_double(s.eta_seconds);
  }
  os << ",\"shard_index\":" << s.shard_index
     << ",\"shard_count\":" << s.shard_count << ",\"rss_kb\":" << s.rss_kb
     << ",\"done\":" << (s.done ? "true" : "false") << "}";
  return os.str();
}

namespace detail {
std::atomic<MetricsRegistry*> g_metrics{nullptr};
}  // namespace detail

void install_metrics(MetricsRegistry* registry) {
  detail::g_metrics.store(registry, std::memory_order_release);
}

MetricsRegistry* installed_metrics() {
  return detail::g_metrics.load(std::memory_order_acquire);
}

std::int64_t current_rss_kb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      long kb = 0;
      std::sscanf(line.c_str(), "VmRSS: %ld", &kb);
      return static_cast<std::int64_t>(kb);
    }
  }
  return 0;
}

}  // namespace rv::obs
