// Shard heartbeat files for multi-process campaign runs.
//
// Each `realdata campaign --shard i/N --heartbeat-dir DIR` process refreshes
// DIR/heartbeat-<i>.json on its progress hook (and once more at exit with
// status "done"). The file is written to a temp name in the same directory
// and atomically renamed into place, so a reader never observes a torn
// file — it sees either the previous complete heartbeat or the new one.
//
// `rvmerge --status DIR` scans the directory and renders a campaign-wide
// table with stale/dead detection: a heartbeat older than --stale-after
// whose process is gone is DEAD, older but alive is STALE — the first
// building block for multi-machine shard orchestration (retry/reschedule
// decisions need exactly this signal).
//
// Timestamps are wall-clock (unix seconds): heartbeats describe the real
// world, never the simulation. Nothing here touches sim state.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace rv::obs {

struct Heartbeat {
  int schema = 1;                   // "rv-heartbeat-v1"
  std::uint64_t shard_index = 0;
  std::uint64_t shard_count = 1;
  std::int64_t pid = 0;
  double timestamp_unix = 0.0;      // wall clock, seconds since epoch
  std::string status = "running";   // "running" | "done"
  std::uint64_t users_done = 0;
  std::uint64_t users_total = 0;
  std::uint64_t plays = 0;
  std::uint64_t last_fold_user = 0; // absolute user id the fold has reached
  double plays_per_sec = 0.0;
  std::int64_t rss_kb = 0;
  std::uint64_t seed = 0;
};

// DIR/heartbeat-<shard_index>.json
std::string heartbeat_path(const std::string& dir, std::uint64_t shard_index);

// JSON encode/decode. parse_heartbeat rejects anything that is not a
// complete heartbeat document (wrong schema, missing required fields,
// truncated text) — the property the atomic-rename torn-file test leans on.
std::string heartbeat_json(const Heartbeat& hb);
bool parse_heartbeat(std::string_view json, Heartbeat* out);

// Atomic publish: writes DIR/.heartbeat-<i>.json.tmp, then renames it over
// heartbeat-<i>.json. Returns false with *error set on I/O failure.
bool write_heartbeat(const std::string& dir, const Heartbeat& hb,
                     std::string* error);

// Reads and parses one heartbeat file.
bool load_heartbeat(const std::string& path, Heartbeat* out);

// All parseable heartbeat-*.json files under dir, sorted by shard index.
std::vector<Heartbeat> scan_heartbeats(const std::string& dir);

// Is the pid a live process on this machine (kill(pid, 0) semantics)?
bool pid_alive(std::int64_t pid);

// Campaign-wide status table: one row per shard with progress, rate, age
// and state (done / ok / STALE / DEAD). `now_unix` and `alive` are injected
// for testability; pass wall_clock_unix() and pid_alive in production.
// State rules: "done" when the shard reported done; otherwise STALE when
// the heartbeat is older than stale_after_sec, escalated to DEAD when the
// pid is also gone. Missing shard indices (count known from shard_count)
// are rendered as MISSING rows.
std::string render_status_table(
    const std::vector<Heartbeat>& heartbeats, double now_unix,
    double stale_after_sec,
    const std::function<bool(std::int64_t)>& alive = pid_alive);

// Wall clock in unix seconds (sub-second resolution).
double wall_clock_unix();

}  // namespace rv::obs
