// Embedded single-threaded HTTP status server for long-running tools.
//
// Serves three endpoints off the live MetricsRegistry:
//   GET /metrics   Prometheus text exposition (v0.0.4)
//   GET /progress  JSON progress snapshot (plays, rate, ETA, shard id)
//   GET /healthz   "ok"
//
// The request side reuses the rtsp/http HTTP/1.0 codec (extended to accept
// HTTP/1.1 request lines, which is what curl and Prometheus send); the
// response is a plain HTTP/1.0 close-delimited message. One background
// thread accepts and serves connections sequentially — a status page does
// not need concurrency, and a single thread cannot interfere with the
// deterministic simulation workers. Binds 127.0.0.1 only: this is a local
// observability port, not a public service.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <thread>

namespace rv::obs {

class MetricsRegistry;

class StatusServer {
 public:
  // The registry must outlive the server. progress_json is called per
  // /progress request from the server thread (must be thread-safe);
  // defaults to progress_json(snapshot_progress(*registry)).
  explicit StatusServer(MetricsRegistry* registry,
                        std::function<std::string()> progress = nullptr);
  ~StatusServer();

  StatusServer(const StatusServer&) = delete;
  StatusServer& operator=(const StatusServer&) = delete;

  // Binds 127.0.0.1:port (port 0 = kernel-assigned, see port()) and starts
  // the serving thread. Returns false with *error set on bind failure.
  bool start(int port, std::string* error);

  // The bound port (valid after a successful start()).
  int port() const { return port_; }

  // Stops accepting, joins the thread. Idempotent; also run by the dtor.
  void stop();

 private:
  void serve();
  std::string handle(const std::string& path, int* status,
                     std::string* content_type) const;

  MetricsRegistry* registry_;
  std::function<std::string()> progress_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

// Strict --status-port value: an integer in [0, 65535] (0 = ephemeral).
// Returns nullopt for malformed or out-of-range input.
std::optional<int> parse_status_port(const std::string& text);

}  // namespace rv::obs
