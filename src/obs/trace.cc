#include "obs/trace.h"

#include <iterator>

#include "util/args.h"
#include "util/strings.h"

namespace rv::obs {

namespace detail {
thread_local PlaySink* tl_sink = nullptr;
}  // namespace detail

namespace {

// One name per enum value, in declaration order. The static_asserts turn
// "added an enum value but no name" into a compile error instead of a
// silent "unknown" at runtime; obs_test additionally checks the names are
// unique and non-empty.
constexpr const char* kCodeNames[] = {
    "preroll_done",        // kPrerollDone
    "rebuffer",            // kRebufferStart
    "rebuffer_end",        // kRebufferStop
    "frame_drop",          // kFrameDrop
    "tcp_state",           // kTcpState
    "tcp_fast_retransmit", // kTcpFastRetransmit
    "tcp_timeout",         // kTcpTimeout
    "sack_retransmit",     // kSackRetransmit
    "udp_loss_burst",      // kUdpLossBurst
    "rtsp_retry",          // kRtspRetry
    "rtsp_fallback",       // kRtspFallback
    "fault_outage",        // kFaultOutage
    "fault_overload",      // kFaultOverload
    "fault_blackhole",     // kFaultBlackhole
    "fault_corruption",    // kFaultCorruption
    "cc_state",            // kCcState
};
static_assert(std::size(kCodeNames) ==
                  static_cast<std::size_t>(Code::kCodeCount),
              "kCodeNames must cover every Code enum value");

constexpr const char* kCounterNames[] = {
    "packets_enqueued",   // kPacketsEnqueued
    "packets_dropped",    // kPacketsDropped
    "packets_corrupted",  // kPacketsCorrupted
    "tcp_retransmits",    // kTcpRetransmits
    "sack_retransmits",   // kSackRetransmits
    "rtsp_retries",       // kRtspRetries
    "fallback_depth",     // kFallbackDepth
    "rebuffers",          // kRebuffers
    "frame_drops",        // kFrameDrops
    "udp_loss_gaps",      // kUdpLossGaps
    "sim_events",         // kSimEvents
    "cc_recovery_enters", // kCcRecoveryEnters
};
static_assert(std::size(kCounterNames) ==
                  static_cast<std::size_t>(Counter::kCount),
              "kCounterNames must cover every Counter enum value");

}  // namespace

Cat cat_of(Code code) {
  switch (code) {
    case Code::kPrerollDone:
    case Code::kRebufferStart:
    case Code::kRebufferStop:
    case Code::kFrameDrop:
      return Cat::kClient;
    case Code::kTcpState:
    case Code::kTcpFastRetransmit:
    case Code::kTcpTimeout:
    case Code::kSackRetransmit:
    case Code::kUdpLossBurst:
    case Code::kCcState:
      return Cat::kTransport;
    case Code::kRtspRetry:
    case Code::kRtspFallback:
      return Cat::kRtsp;
    case Code::kFaultOutage:
    case Code::kFaultOverload:
    case Code::kFaultBlackhole:
    case Code::kFaultCorruption:
      return Cat::kFault;
    case Code::kCodeCount:
      break;
  }
  return Cat::kClient;
}

const char* cat_name(Cat cat) {
  switch (cat) {
    case Cat::kClient:
      return "client";
    case Cat::kTransport:
      return "transport";
    case Cat::kRtsp:
      return "rtsp";
    case Cat::kFault:
      return "fault";
  }
  return "unknown";
}

const char* code_name(Code code) {
  const auto i = static_cast<std::size_t>(code);
  return i < std::size(kCodeNames) ? kCodeNames[i] : "unknown";
}

const char* counter_name(Counter c) {
  const auto i = static_cast<std::size_t>(c);
  return i < std::size(kCounterNames) ? kCounterNames[i] : "unknown";
}

std::optional<std::pair<std::int32_t, std::int32_t>> parse_trace_play(
    std::string_view text) {
  const auto parts = util::split(text, ',');
  if (parts.size() != 2) return std::nullopt;
  const auto user = util::parse_int(parts[0]);
  const auto play = util::parse_int(parts[1]);
  if (!user || !play || *user < 0 || *play < 0) return std::nullopt;
  if (*user > INT32_MAX || *play > INT32_MAX) return std::nullopt;
  return std::make_pair(static_cast<std::int32_t>(*user),
                        static_cast<std::int32_t>(*play));
}

void Counters::merge(const Counters& other) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i == static_cast<std::size_t>(Counter::kFallbackDepth)) {
      if (other.v[i] > v[i]) v[i] = other.v[i];
    } else {
      v[i] += other.v[i];
    }
  }
}

void TraceBuffer::reset(std::uint32_t capacity) {
  if (capacity == 0) capacity = 1;
  ring_.assign(capacity, TraceEvent{});
  emitted_ = 0;
}

void TraceBuffer::clear() {
  // Stale slots beyond emitted_ are never read back; no need to rezero.
  emitted_ = 0;
}

void TraceBuffer::emit(SimTime t, Code code, std::uint64_t a0,
                       std::uint64_t a1) {
  TraceEvent& slot = ring_[emitted_ % ring_.size()];
  slot.t = t;
  slot.cat = static_cast<std::uint16_t>(cat_of(code));
  slot.code = static_cast<std::uint16_t>(code);
  slot.pad = 0;
  slot.a0 = a0;
  slot.a1 = a1;
  ++emitted_;
}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  std::vector<TraceEvent> out;
  const std::uint64_t n = emitted_ < ring_.size() ? emitted_ : ring_.size();
  out.reserve(n);
  // Oldest surviving event first; when wrapped that is the slot after the
  // most recent write.
  const std::uint64_t start = emitted_ - n;
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

}  // namespace rv::obs
