#include "obs/trace.h"

namespace rv::obs {

namespace detail {
thread_local PlaySink* tl_sink = nullptr;
}  // namespace detail

Cat cat_of(Code code) {
  switch (code) {
    case Code::kPrerollDone:
    case Code::kRebufferStart:
    case Code::kRebufferStop:
    case Code::kFrameDrop:
      return Cat::kClient;
    case Code::kTcpState:
    case Code::kTcpFastRetransmit:
    case Code::kTcpTimeout:
    case Code::kSackRetransmit:
    case Code::kUdpLossBurst:
      return Cat::kTransport;
    case Code::kRtspRetry:
    case Code::kRtspFallback:
      return Cat::kRtsp;
    case Code::kFaultOutage:
    case Code::kFaultOverload:
    case Code::kFaultBlackhole:
    case Code::kFaultCorruption:
      return Cat::kFault;
    case Code::kCodeCount:
      break;
  }
  return Cat::kClient;
}

const char* cat_name(Cat cat) {
  switch (cat) {
    case Cat::kClient:
      return "client";
    case Cat::kTransport:
      return "transport";
    case Cat::kRtsp:
      return "rtsp";
    case Cat::kFault:
      return "fault";
  }
  return "unknown";
}

const char* code_name(Code code) {
  switch (code) {
    case Code::kPrerollDone:
      return "preroll_done";
    case Code::kRebufferStart:
      return "rebuffer";
    case Code::kRebufferStop:
      return "rebuffer_end";
    case Code::kFrameDrop:
      return "frame_drop";
    case Code::kTcpState:
      return "tcp_state";
    case Code::kTcpFastRetransmit:
      return "tcp_fast_retransmit";
    case Code::kTcpTimeout:
      return "tcp_timeout";
    case Code::kSackRetransmit:
      return "sack_retransmit";
    case Code::kUdpLossBurst:
      return "udp_loss_burst";
    case Code::kRtspRetry:
      return "rtsp_retry";
    case Code::kRtspFallback:
      return "rtsp_fallback";
    case Code::kFaultOutage:
      return "fault_outage";
    case Code::kFaultOverload:
      return "fault_overload";
    case Code::kFaultBlackhole:
      return "fault_blackhole";
    case Code::kFaultCorruption:
      return "fault_corruption";
    case Code::kCodeCount:
      break;
  }
  return "unknown";
}

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kPacketsEnqueued:
      return "packets_enqueued";
    case Counter::kPacketsDropped:
      return "packets_dropped";
    case Counter::kPacketsCorrupted:
      return "packets_corrupted";
    case Counter::kTcpRetransmits:
      return "tcp_retransmits";
    case Counter::kSackRetransmits:
      return "sack_retransmits";
    case Counter::kRtspRetries:
      return "rtsp_retries";
    case Counter::kFallbackDepth:
      return "fallback_depth";
    case Counter::kRebuffers:
      return "rebuffers";
    case Counter::kFrameDrops:
      return "frame_drops";
    case Counter::kUdpLossGaps:
      return "udp_loss_gaps";
    case Counter::kSimEvents:
      return "sim_events";
    case Counter::kCount:
      break;
  }
  return "unknown";
}

void Counters::merge(const Counters& other) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i == static_cast<std::size_t>(Counter::kFallbackDepth)) {
      if (other.v[i] > v[i]) v[i] = other.v[i];
    } else {
      v[i] += other.v[i];
    }
  }
}

void TraceBuffer::reset(std::uint32_t capacity) {
  if (capacity == 0) capacity = 1;
  ring_.assign(capacity, TraceEvent{});
  emitted_ = 0;
}

void TraceBuffer::clear() {
  // Stale slots beyond emitted_ are never read back; no need to rezero.
  emitted_ = 0;
}

void TraceBuffer::emit(SimTime t, Code code, std::uint64_t a0,
                       std::uint64_t a1) {
  TraceEvent& slot = ring_[emitted_ % ring_.size()];
  slot.t = t;
  slot.cat = static_cast<std::uint16_t>(cat_of(code));
  slot.code = static_cast<std::uint16_t>(code);
  slot.pad = 0;
  slot.a0 = a0;
  slot.a1 = a1;
  ++emitted_;
}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  std::vector<TraceEvent> out;
  const std::uint64_t n = emitted_ < ring_.size() ? emitted_ : ring_.size();
  out.reserve(n);
  // Oldest surviving event first; when wrapped that is the slot after the
  // most recent write.
  const std::uint64_t start = emitted_ - n;
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

}  // namespace rv::obs
