#include "obs/heartbeat.h"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>

#include "obs/metrics.h"
#include "util/args.h"
#include "util/strings.h"

namespace rv::obs {
namespace {

constexpr std::string_view kSchema = "rv-heartbeat-v1";

std::string json_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Minimal field extraction for the flat heartbeat document: finds
// `"key":` at top level and returns the raw value token after it. The
// schema is ours and flat (no nested objects), so a targeted scan is
// enough — no general JSON parser needed.
std::optional<std::string> raw_field(std::string_view json,
                                     std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const auto pos = json.find(needle);
  if (pos == std::string_view::npos) return std::nullopt;
  std::size_t start = pos + needle.size();
  while (start < json.size() && (json[start] == ' ')) ++start;
  if (start >= json.size()) return std::nullopt;
  if (json[start] == '"') {
    // String value: scan to the closing unescaped quote.
    std::string out;
    for (std::size_t i = start + 1; i < json.size(); ++i) {
      if (json[i] == '\\' && i + 1 < json.size()) {
        ++i;
        out += json[i];
      } else if (json[i] == '"') {
        return out;
      } else {
        out += json[i];
      }
    }
    return std::nullopt;  // unterminated string: torn/truncated document
  }
  std::size_t end = start;
  while (end < json.size() && json[end] != ',' && json[end] != '}') ++end;
  if (end >= json.size()) return std::nullopt;  // truncated document
  return std::string(json.substr(start, end - start));
}

std::optional<std::uint64_t> u64_field(std::string_view json,
                                       std::string_view key) {
  const auto raw = raw_field(json, key);
  if (!raw) return std::nullopt;
  const auto v = util::parse_int(*raw);
  if (!v || *v < 0) return std::nullopt;
  return static_cast<std::uint64_t>(*v);
}

std::optional<double> f64_field(std::string_view json, std::string_view key) {
  const auto raw = raw_field(json, key);
  if (!raw) return std::nullopt;
  return util::parse_double(*raw);
}

}  // namespace

std::string heartbeat_path(const std::string& dir,
                           std::uint64_t shard_index) {
  return dir + "/heartbeat-" + std::to_string(shard_index) + ".json";
}

std::string heartbeat_json(const Heartbeat& hb) {
  std::ostringstream os;
  std::string status;
  util::json_escape(status, hb.status);
  os << "{\"schema\":\"" << kSchema << "\""
     << ",\"shard_index\":" << hb.shard_index
     << ",\"shard_count\":" << hb.shard_count << ",\"pid\":" << hb.pid
     << ",\"timestamp_unix\":" << json_number(hb.timestamp_unix)
     << ",\"status\":\"" << status << "\""
     << ",\"users_done\":" << hb.users_done
     << ",\"users_total\":" << hb.users_total << ",\"plays\":" << hb.plays
     << ",\"last_fold_user\":" << hb.last_fold_user
     << ",\"plays_per_sec\":" << json_number(hb.plays_per_sec)
     << ",\"rss_kb\":" << hb.rss_kb << ",\"seed\":" << hb.seed << "}\n";
  return os.str();
}

bool parse_heartbeat(std::string_view json, Heartbeat* out) {
  const auto schema = raw_field(json, "schema");
  if (!schema || *schema != kSchema) return false;
  // A complete document ends in '}' — rejects any prefix of a larger write
  // (belt and braces: atomic rename means we should never see one).
  const auto close = json.find_last_not_of(" \n\r\t");
  if (close == std::string_view::npos || json[close] != '}') return false;

  Heartbeat hb;
  const auto shard_index = u64_field(json, "shard_index");
  const auto shard_count = u64_field(json, "shard_count");
  const auto pid = raw_field(json, "pid");
  const auto ts = f64_field(json, "timestamp_unix");
  const auto status = raw_field(json, "status");
  const auto users_done = u64_field(json, "users_done");
  const auto users_total = u64_field(json, "users_total");
  const auto plays = u64_field(json, "plays");
  const auto rate = f64_field(json, "plays_per_sec");
  if (!shard_index || !shard_count || *shard_count == 0 || !pid || !ts ||
      !status || !users_done || !users_total || !plays || !rate) {
    return false;
  }
  const auto pid_v = util::parse_int(*pid);
  if (!pid_v) return false;
  hb.shard_index = *shard_index;
  hb.shard_count = *shard_count;
  hb.pid = *pid_v;
  hb.timestamp_unix = *ts;
  hb.status = *status;
  hb.users_done = *users_done;
  hb.users_total = *users_total;
  hb.plays = *plays;
  hb.plays_per_sec = *rate;
  hb.last_fold_user = u64_field(json, "last_fold_user").value_or(0);
  if (const auto rss = raw_field(json, "rss_kb")) {
    if (const auto v = util::parse_int(*rss)) hb.rss_kb = *v;
  }
  hb.seed = u64_field(json, "seed").value_or(0);
  *out = hb;
  return true;
}

bool write_heartbeat(const std::string& dir, const Heartbeat& hb,
                     std::string* error) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    if (error != nullptr) *error = "cannot create heartbeat dir: " + dir;
    return false;
  }
  const std::string tmp =
      dir + "/.heartbeat-" + std::to_string(hb.shard_index) + ".json.tmp";
  {
    std::ofstream os(tmp, std::ios::trunc | std::ios::binary);
    os << heartbeat_json(hb);
    if (!os) {
      if (error != nullptr) *error = "cannot write heartbeat tmp: " + tmp;
      return false;
    }
  }
  // rename(2) within one directory is atomic: a concurrent reader sees the
  // old complete file or the new complete file, never a mix.
  std::filesystem::rename(tmp, heartbeat_path(dir, hb.shard_index), ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot rename heartbeat into place: " + ec.message();
    }
    return false;
  }
  metrics_add(Metric::kHeartbeatsWritten);
  return true;
}

bool load_heartbeat(const std::string& path, Heartbeat* out) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  std::ostringstream buf;
  buf << is.rdbuf();
  return parse_heartbeat(buf.str(), out);
}

std::vector<Heartbeat> scan_heartbeats(const std::string& dir) {
  std::vector<Heartbeat> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("heartbeat-", 0) != 0 ||
        name.find(".json") == std::string::npos ||
        name.find(".tmp") != std::string::npos) {
      continue;
    }
    Heartbeat hb;
    if (load_heartbeat(entry.path().string(), &hb)) out.push_back(hb);
  }
  std::sort(out.begin(), out.end(), [](const Heartbeat& a, const Heartbeat& b) {
    return a.shard_index < b.shard_index;
  });
  return out;
}

bool pid_alive(std::int64_t pid) {
  if (pid <= 0) return false;
  return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM;
}

std::string render_status_table(
    const std::vector<Heartbeat>& heartbeats, double now_unix,
    double stale_after_sec, const std::function<bool(std::int64_t)>& alive) {
  std::ostringstream os;
  os << "shard   pid       users               plays         rate/s   age     state\n";
  std::uint64_t shard_count = 0;
  std::uint64_t total_plays = 0, total_done = 0, total_users = 0;
  std::uint64_t done_shards = 0, bad_shards = 0;
  std::vector<bool> seen;
  for (const auto& hb : heartbeats) {
    shard_count = std::max(shard_count, hb.shard_count);
  }
  seen.resize(shard_count, false);
  for (const auto& hb : heartbeats) {
    if (hb.shard_index < seen.size()) seen[hb.shard_index] = true;
    const double age = now_unix - hb.timestamp_unix;
    std::string state;
    if (hb.status == "done") {
      state = "done";
      ++done_shards;
    } else if (age > stale_after_sec) {
      state = alive(hb.pid) ? "STALE" : "DEAD";
      ++bad_shards;
    } else {
      state = "ok";
    }
    const double pct =
        hb.users_total > 0
            ? 100.0 * static_cast<double>(hb.users_done) /
                  static_cast<double>(hb.users_total)
            : 0.0;
    char row[256];
    std::snprintf(row, sizeof(row),
                  "%-7s %-9lld %8llu/%-8llu %3.0f%%  %-13llu %8.1f   %-7s %s\n",
                  (std::to_string(hb.shard_index) + "/" +
                   std::to_string(hb.shard_count))
                      .c_str(),
                  static_cast<long long>(hb.pid),
                  static_cast<unsigned long long>(hb.users_done),
                  static_cast<unsigned long long>(hb.users_total), pct,
                  static_cast<unsigned long long>(hb.plays),
                  hb.plays_per_sec,
                  (util::format_double(age, 1) + "s").c_str(), state.c_str());
    os << row;
    total_plays += hb.plays;
    total_done += hb.users_done;
    total_users += hb.users_total;
  }
  for (std::uint64_t i = 0; i < seen.size(); ++i) {
    if (!seen[i]) {
      os << i << "/" << shard_count << "  (no heartbeat)"
         << std::string(46, ' ') << "MISSING\n";
      ++bad_shards;
    }
  }
  os << "campaign: " << total_done << "/" << total_users << " users, "
     << total_plays << " plays, " << done_shards << "/"
     << (shard_count == 0 ? heartbeats.size() : shard_count)
     << " shards done";
  if (bad_shards > 0) os << ", " << bad_shards << " shard(s) need attention";
  os << "\n";
  return os.str();
}

double wall_clock_unix() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace rv::obs
