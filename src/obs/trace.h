// Deterministic per-play tracing + counters.
//
// Each play records into a PlaySink: a fixed-capacity ring of POD trace
// events plus a small array of named counters. The sink is installed
// thread-locally for the duration of one simulated play (ScopedSink), so
// emit hooks scattered through the client/transport/fault layers need no
// plumbing — they consult one thread-local pointer. With no sink installed
// (tracing off, the default) a hook is a single predicted-untaken branch;
// bench_microbench gates the residual cost (<2% of the packet-forwarding
// and event-kernel hot paths, see scripts/run_bench.py --obs-overhead-check).
//
// Determinism: all event timestamps are simulated time and every hook fires
// from deterministic simulation code, so a play's event sequence depends
// only on its task inputs — never on wall clock or worker thread. Workers
// snapshot their sink into the play's preassigned TraceRecord slot; exports
// iterate records in slot (plan) order, making the merged output
// byte-identical at any thread count. See docs/OBSERVABILITY.md.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "util/units.h"

namespace rv::obs {

// Event category — one per instrumented subsystem.
enum class Cat : std::uint16_t {
  kClient = 0,
  kTransport = 1,
  kRtsp = 2,
  kFault = 3,
};

// Event code. The category is derived from the code (cat_of), so hooks pass
// just a code plus two u64 arguments; arg meanings are per-code and
// documented in docs/OBSERVABILITY.md.
enum class Code : std::uint16_t {
  // client / playout
  kPrerollDone = 0,    // a0 = preroll wait usec, a1 = buffered frames
  kRebufferStart = 1,  // a0 = rebuffer ordinal (1-based), a1 = frames played
  kRebufferStop = 2,   // a0 = stall duration usec, a1 = buffered frames
  kFrameDrop = 3,      // a0 = frame seq, a1 = lateness usec
  // transport
  kTcpState = 4,           // a0 = old state, a1 = new state
  kTcpFastRetransmit = 5,  // a0 = seq, a1 = dup acks
  kTcpTimeout = 6,         // a0 = seq, a1 = rto usec
  kSackRetransmit = 7,     // a0 = hole seq, a1 = highest sacked seq
  kUdpLossBurst = 8,       // a0 = gap length (pkts), a1 = first missing seq
  // rtsp
  kRtspRetry = 9,      // a0 = attempts used, a1 = backoff usec
  kRtspFallback = 10,  // a0 = ladder depth after fallback, a1 = reason code
  // faults
  kFaultOutage = 11,      // a0 = site index, a1 = 0
  kFaultOverload = 12,    // a0 = stall-until usec, a1 = 0
  kFaultBlackhole = 13,   // a0 = link index, a1 = duration usec
  kFaultCorruption = 14,  // a0 = link index, a1 = loss rate in ppm
  // transport (congestion control)
  kCcState = 15,  // a0 = old BBR state, a1 = new state (BbrCC::State)

  kCodeCount = 16,
};

Cat cat_of(Code code);
const char* cat_name(Cat cat);
const char* code_name(Code code);

// One trace record: 32 POD bytes.
struct TraceEvent {
  SimTime t = 0;            // simulated time, usec
  std::uint16_t cat = 0;    // Cat
  std::uint16_t code = 0;   // Code
  std::uint32_t pad = 0;    // keeps the layout explicit; always zero
  std::uint64_t a0 = 0;
  std::uint64_t a1 = 0;
};
static_assert(sizeof(TraceEvent) == 32);

// Monotonic per-play counters (kFallbackDepth is a high-water gauge).
enum class Counter : std::uint16_t {
  kPacketsEnqueued = 0,
  kPacketsDropped = 1,    // queue overflow + RED, any link
  kPacketsCorrupted = 2,  // eaten by an injected link fault
  kTcpRetransmits = 3,    // every retransmitted segment (RTO + fast + SACK)
  kSackRetransmits = 4,
  kRtspRetries = 5,
  kFallbackDepth = 6,  // gauge: 0 none, 1 TCP, 2 HTTP cloak
  kRebuffers = 7,
  kFrameDrops = 8,
  kUdpLossGaps = 9,
  kSimEvents = 10,  // simulator callbacks fired during the play
  kCcRecoveryEnters = 11,  // fast-recovery episodes entered by the sender

  kCount = 12,
};

const char* counter_name(Counter c);

struct Counters {
  std::array<std::uint64_t, static_cast<std::size_t>(Counter::kCount)> v{};

  std::uint64_t get(Counter c) const {
    return v[static_cast<std::size_t>(c)];
  }
  void add(Counter c, std::uint64_t n = 1) {
    v[static_cast<std::size_t>(c)] += n;
  }
  void set_max(Counter c, std::uint64_t value) {
    auto& cur = v[static_cast<std::size_t>(c)];
    if (value > cur) cur = value;
  }
  // Study-level aggregation: sums monotonic counters, maxes gauges.
  void merge(const Counters& other);
  void clear() { v.fill(0); }
};

// Fixed-capacity ring of trace events. When full, the oldest events are
// overwritten and dropped() grows — recent history wins, memory stays
// bounded (capacity * 32 bytes per play).
class TraceBuffer {
 public:
  static constexpr std::uint32_t kDefaultCapacity = 4096;

  explicit TraceBuffer(std::uint32_t capacity = kDefaultCapacity) {
    reset(capacity);
  }

  void reset(std::uint32_t capacity);
  void clear();

  void emit(SimTime t, Code code, std::uint64_t a0, std::uint64_t a1);

  std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(ring_.size());
  }
  std::uint64_t total_emitted() const { return emitted_; }
  std::uint64_t dropped() const {
    return emitted_ > ring_.size() ? emitted_ - ring_.size() : 0;
  }
  // Surviving events, oldest first.
  std::vector<TraceEvent> snapshot() const;

 private:
  std::vector<TraceEvent> ring_;
  std::uint64_t emitted_ = 0;
};

// The per-play observability state a worker records into.
struct PlaySink {
  TraceBuffer buffer;
  Counters counters;

  void reset(std::uint32_t capacity) {
    buffer.reset(capacity);
    counters.clear();
  }
};

namespace detail {
extern thread_local PlaySink* tl_sink;
}  // namespace detail

inline PlaySink* current_sink() { return detail::tl_sink; }

// Installs a sink for the current thread; restores the previous one on
// destruction. One instance wraps each observed play.
class ScopedSink {
 public:
  explicit ScopedSink(PlaySink* sink) : prev_(detail::tl_sink) {
    detail::tl_sink = sink;
  }
  ~ScopedSink() { detail::tl_sink = prev_; }
  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;

 private:
  PlaySink* prev_;
};

// Hot-path hooks. With no sink installed these are a thread-local load and
// a predicted-untaken branch.
inline void emit(SimTime t, Code code, std::uint64_t a0 = 0,
                 std::uint64_t a1 = 0) {
  PlaySink* sink = detail::tl_sink;
  if (__builtin_expect(sink != nullptr, 0)) {
    sink->buffer.emit(t, code, a0, a1);
  }
}

inline void count(Counter c, std::uint64_t n = 1) {
  PlaySink* sink = detail::tl_sink;
  if (__builtin_expect(sink != nullptr, 0)) sink->counters.add(c, n);
}

inline void gauge_max(Counter c, std::uint64_t value) {
  PlaySink* sink = detail::tl_sink;
  if (__builtin_expect(sink != nullptr, 0)) sink->counters.set_max(c, value);
}

// Snapshot of one observed play, carried in tracer::TraceRecord. In-memory
// only: never serialized into the study cache (the cache byte format and
// fingerprint are identical with tracing on or off).
struct PlayObs {
  bool enabled = false;
  std::vector<TraceEvent> events;  // slot-ordered merge key, oldest first
  std::uint64_t events_dropped = 0;
  Counters counters;
};

// Tracing configuration carried by TracerConfig. Deliberately excluded from
// the study-cache config fingerprint: observability must not change which
// cache file a study maps to, nor its bytes.
struct ObsConfig {
  bool enabled = false;
  std::uint32_t ring_capacity = TraceBuffer::kDefaultCapacity;
  // When >= 0, only the matching user id / per-user play index records.
  std::int32_t filter_user = -1;
  std::int32_t filter_play = -1;

  bool selects(std::uint32_t user_id, std::uint32_t play_index) const {
    if (!enabled) return false;
    if (filter_user >= 0 &&
        user_id != static_cast<std::uint32_t>(filter_user)) {
      return false;
    }
    if (filter_play >= 0 &&
        play_index != static_cast<std::uint32_t>(filter_play)) {
      return false;
    }
    return true;
  }
};

// Strict "--trace-play user,play" parser: exactly two comma-separated
// non-negative integers with no extra fields or trailing junk. Returns
// {user, play} or nullopt on any malformation (tools exit 2 with a
// diagnostic rather than silently ignoring the garbage).
std::optional<std::pair<std::int32_t, std::int32_t>> parse_trace_play(
    std::string_view text);

}  // namespace rv::obs
