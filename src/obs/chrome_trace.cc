#include "obs/chrome_trace.h"

#include <fstream>

#include "util/strings.h"

namespace rv::obs {
namespace {

void append_metadata(std::string& out, const char* name, std::uint32_t pid,
                     std::uint32_t tid, bool with_tid,
                     std::string_view value) {
  out += "{\"name\":\"";
  out += name;
  out += "\",\"ph\":\"M\",\"pid\":";
  out += std::to_string(pid);
  if (with_tid) {
    out += ",\"tid\":";
    out += std::to_string(tid);
  }
  out += ",\"args\":{\"name\":\"";
  util::json_escape(out, value);
  out += "\"}}";
}

void append_event(std::string& out, const PlayTrack& track,
                  const TraceEvent& ev) {
  const auto code = static_cast<Code>(ev.code);
  const char* ph = "i";
  if (code == Code::kRebufferStart) ph = "B";
  if (code == Code::kRebufferStop) ph = "E";
  out += "{\"name\":\"";
  // Pair the B/E span under one name so the viewer draws a single bar.
  out += (code == Code::kRebufferStop) ? code_name(Code::kRebufferStart)
                                       : code_name(code);
  out += "\",\"cat\":\"";
  out += cat_name(static_cast<Cat>(ev.cat));
  out += "\",\"ph\":\"";
  out += ph;
  out += "\",\"ts\":";
  out += std::to_string(ev.t);  // SimTime is already microseconds
  out += ",\"pid\":";
  out += std::to_string(track.pid);
  out += ",\"tid\":";
  out += std::to_string(track.tid);
  if (ph[0] == 'i') out += ",\"s\":\"t\"";
  out += ",\"args\":{\"a0\":";
  out += std::to_string(ev.a0);
  out += ",\"a1\":";
  out += std::to_string(ev.a1);
  out += "}}";
}

void append_counter_series(std::string& out, const PlayTrack& track,
                           const CounterSeries& series, bool& first) {
  // One "C" event per sample; the viewer connects them into an area track.
  for (std::size_t i = 0; i < series.t.size() && i < series.v.size(); ++i) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"";
    util::json_escape(out, series.name);
    out += "\",\"cat\":\"telemetry\",\"ph\":\"C\",\"ts\":";
    out += std::to_string(series.t[i]);
    out += ",\"pid\":";
    out += std::to_string(track.pid);
    out += ",\"tid\":";
    out += std::to_string(track.tid);
    out += ",\"args\":{\"v\":";
    out += util::format_double(series.v[i], 3);
    out += "}}";
  }
}

void append_counters(std::string& out, const PlayTrack& track,
                     const Counters& counters) {
  // One summary instant at ts 0 carrying the play's final counter values.
  out += "{\"name\":\"play_counters\",\"cat\":\"obs\",\"ph\":\"i\",\"ts\":0,"
         "\"pid\":";
  out += std::to_string(track.pid);
  out += ",\"tid\":";
  out += std::to_string(track.tid);
  out += ",\"s\":\"t\",\"args\":{";
  for (std::size_t i = 0; i < counters.v.size(); ++i) {
    if (i != 0) out += ',';
    out += '"';
    out += counter_name(static_cast<Counter>(i));
    out += "\":";
    out += std::to_string(counters.v[i]);
  }
  out += "}}";
}

}  // namespace

std::string chrome_trace_json(const std::vector<PlayTrack>& tracks) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&out, &first]() {
    if (!first) out += ",\n";
    first = false;
  };
  std::uint32_t last_pid = 0;
  bool any_pid = false;
  for (const PlayTrack& track : tracks) {
    if (track.obs == nullptr || !track.obs->enabled) continue;
    if (!any_pid || track.pid != last_pid) {
      sep();
      append_metadata(out, "process_name", track.pid, 0, false,
                      track.process_name);
      last_pid = track.pid;
      any_pid = true;
    }
    sep();
    append_metadata(out, "thread_name", track.pid, track.tid, true,
                    track.thread_name);
    for (const TraceEvent& ev : track.obs->events) {
      sep();
      append_event(out, track, ev);
    }
    for (const CounterSeries& series : track.counters) {
      append_counter_series(out, track, series, first);
    }
    sep();
    append_counters(out, track, track.obs->counters);
    if (track.obs->events_dropped > 0) {
      sep();
      out += "{\"name\":\"events_dropped\",\"cat\":\"obs\",\"ph\":\"i\","
             "\"ts\":0,\"pid\":";
      out += std::to_string(track.pid);
      out += ",\"tid\":";
      out += std::to_string(track.tid);
      out += ",\"s\":\"t\",\"args\":{\"dropped\":";
      out += std::to_string(track.obs->events_dropped);
      out += "}}";
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool write_chrome_trace(const std::string& path,
                        const std::vector<PlayTrack>& tracks) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const std::string json = chrome_trace_json(tracks);
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  return static_cast<bool>(out);
}

}  // namespace rv::obs
