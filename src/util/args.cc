#include "util/args.h"

#include <cstdlib>

#include "util/strings.h"

namespace rv::util {

Args::Args(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.size() < 3 || arg.substr(0, 2) != "--") {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--key value" when the next token isn't itself a flag.
    if (i + 1 < argc && std::string(argv[i + 1]).substr(0, 2) != "--") {
      values_[body] = argv[++i];
    } else {
      values_[body] = "";  // bare flag
    }
  }
}

std::optional<std::string> Args::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Args::get_or(const std::string& key,
                         const std::string& fallback) const {
  return get(key).value_or(fallback);
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v || v->empty()) return fallback;
  return std::atof(v->c_str());
}

std::int64_t Args::get_int(const std::string& key,
                           std::int64_t fallback) const {
  const auto v = get(key);
  if (!v || v->empty()) return fallback;
  return std::atoll(v->c_str());
}

bool Args::has(const std::string& key) const {
  return values_.count(key) > 0;
}

}  // namespace rv::util
