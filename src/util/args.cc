#include "util/args.h"

#include <charconv>

#include "util/strings.h"

namespace rv::util {

Args::Args(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  bool flags_done = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!flags_done && arg == "--") {  // end-of-flags marker
      flags_done = true;
      continue;
    }
    if (flags_done || arg.size() < 3 || arg.substr(0, 2) != "--") {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--key value" when the next token isn't itself a flag.
    if (i + 1 < argc && std::string(argv[i + 1]).substr(0, 2) != "--") {
      values_[body] = argv[++i];
    } else {
      values_[body] = "";  // bare flag
    }
  }
}

std::optional<std::string> Args::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Args::get_or(const std::string& key,
                         const std::string& fallback) const {
  return get(key).value_or(fallback);
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v || v->empty()) return fallback;
  const auto parsed = parse_double(*v);
  if (!parsed) {
    errors_.push_back("--" + key + ": invalid numeric value '" + *v + "'");
    return fallback;
  }
  return *parsed;
}

std::int64_t Args::get_int(const std::string& key,
                           std::int64_t fallback) const {
  const auto v = get(key);
  if (!v || v->empty()) return fallback;
  const auto parsed = parse_int(*v);
  if (!parsed) {
    errors_.push_back("--" + key + ": invalid integer value '" + *v + "'");
    return fallback;
  }
  return *parsed;
}

bool Args::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::optional<std::int64_t> parse_int(std::string_view text) {
  std::int64_t value = 0;
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view text) {
  double value = 0.0;
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

}  // namespace rv::util
