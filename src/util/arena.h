// Arena: a chunked bump allocator for per-play transient allocations.
//
// A play allocates thousands of short-lived packet-metadata blocks
// (media::MediaPacketMeta, RtspTextMeta, feedback/repair metas) whose
// lifetimes all end by the next play's context reset. Routing them through
// a per-PlayContext arena makes each allocation a pointer bump, makes
// deallocation free, and — because reset() rewinds instead of freeing —
// makes steady-state plays allocation-free: the slabs a context's first
// plays grew are reused by every later play on that worker.
//
// Lifetime contract: memory handed out stays valid until reset(); release
// (ArenaAllocator::deallocate) is a no-op, so shared_ptr control blocks may
// drop their last reference any time before the owning context resets —
// exactly the window run_session guarantees (everything from the previous
// play is destroyed by Simulator::reset + Network::reset before the arena
// rewinds).
//
// Not thread-safe: one arena per worker context, like the Simulator it
// rides with. ArenaScope binds "the current play's arena" thread-locally so
// deep call sites (packetizer, sender, player) need no plumbing; outside
// any scope arena_make_shared falls back to the global heap, which keeps
// unit tests and standalone tools working unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "util/check.h"

namespace rv::util {

class Arena {
 public:
  // Slab granularity. Big enough that a typical play stays in one or two
  // slabs, small enough that hundreds of idle worker contexts are cheap.
  static constexpr std::size_t kChunkBytes = std::size_t{64} * 1024;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* allocate(std::size_t bytes, std::size_t align) {
    RV_DCHECK((align & (align - 1)) == 0);
    std::uintptr_t p = (cursor_ + (align - 1)) & ~std::uintptr_t{align - 1};
    if (p + bytes > limit_) return allocate_slow(bytes, align);
    cursor_ = p + bytes;
    return reinterpret_cast<void*>(p);
  }

  // Rewinds to the first slab; keeps every slab for reuse. All memory the
  // arena ever handed out is dead after this.
  void reset() {
    if (chunks_.empty()) {
      chunk_index_ = kNoChunk;
      cursor_ = limit_ = 0;
    } else {
      chunk_index_ = 0;
      cursor_ = reinterpret_cast<std::uintptr_t>(chunks_.front().data.get());
      limit_ = cursor_ + chunks_.front().size;
    }
  }

  // Introspection for tests: slab count never shrinks, and a play replayed
  // on a warm arena must not grow it.
  std::size_t slab_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<unsigned char[]> data;
    std::size_t size;
  };

  void* allocate_slow(std::size_t bytes, std::size_t align);

  // "No slab yet": incrementing wraps to slab 0 (unsigned arithmetic), so
  // the slow path's advance-then-grow loop needs no empty-arena special
  // case.
  static constexpr std::size_t kNoChunk = static_cast<std::size_t>(-1);

  std::uintptr_t cursor_ = 0;
  std::uintptr_t limit_ = 0;
  std::size_t chunk_index_ = kNoChunk;  // slab backing [cursor_, limit_)
  std::vector<Chunk> chunks_;
};

// Binds `arena` as the thread's current play arena for the scope's
// lifetime. Nesting restores the previous binding, so a play that runs a
// nested mini-simulation keeps each context's allocations separate.
class ArenaScope {
 public:
  explicit ArenaScope(Arena* arena) : prev_(current_) { current_ = arena; }
  ~ArenaScope() { current_ = prev_; }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  static Arena* current() { return current_; }

 private:
  Arena* prev_;
  inline static thread_local Arena* current_ = nullptr;
};

// Minimal std allocator over the current arena. deallocate is a no-op by
// design (see the lifetime contract above).
template <typename T>
struct ArenaAllocator {
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) noexcept : arena(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept  // NOLINT
      : arena(other.arena) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) noexcept {}

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const noexcept {
    return arena == other.arena;
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& other) const noexcept {
    return arena != other.arena;
  }

  Arena* arena;
};

// make_shared that places the object *and* its control block in the
// current play's arena (one bump, zero frees); identical to
// std::make_shared when no ArenaScope is active.
template <typename T, typename... Args>
std::shared_ptr<T> arena_make_shared(Args&&... args) {
  if (Arena* a = ArenaScope::current(); a != nullptr) {
    return std::allocate_shared<T>(ArenaAllocator<T>(a),
                                   std::forward<Args>(args)...);
  }
  return std::make_shared<T>(std::forward<Args>(args)...);
}

}  // namespace rv::util
