#include "util/symbol.h"

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <ostream>
#include <shared_mutex>
#include <unordered_map>

#include "util/check.h"

namespace rv::util {
namespace {

// Append-only pool: fixed-size chunk table so a pooled string's address
// never changes after construction (index_ keys view into chunk storage,
// and str() returns references that must stay valid forever).
class SymbolPool {
 public:
  static constexpr std::size_t kChunkBits = 8;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;
  static constexpr std::size_t kMaxChunks = 1 << 12;  // 2^20 symbols cap

  static SymbolPool& instance() {
    static SymbolPool* pool = new SymbolPool();  // never destroyed
    return *pool;
  }

  std::uint32_t intern(std::string_view s) {
    {
      std::shared_lock lock(mu_);
      const auto it = index_.find(s);
      if (it != index_.end()) return it->second;
    }
    std::unique_lock lock(mu_);
    const auto it = index_.find(s);
    if (it != index_.end()) return it->second;
    const std::uint32_t id = count_.load(std::memory_order_relaxed);
    RV_CHECK_LT(id, kMaxChunks * kChunkSize) << "symbol pool exhausted";
    const std::size_t chunk = id >> kChunkBits;
    std::string* slab = chunks_[chunk].load(std::memory_order_relaxed);
    if (slab == nullptr) {
      slab = new std::string[kChunkSize];
      chunks_[chunk].store(slab, std::memory_order_release);
    }
    std::string& slot = slab[id & (kChunkSize - 1)];
    slot.assign(s);
    index_.emplace(std::string_view(slot), id);
    // Publish after the string is fully constructed: a reader that acquires
    // `count_` (or receives the id through any synchronizing channel) sees
    // the complete slot.
    count_.store(id + 1, std::memory_order_release);
    return id;
  }

  const std::string& str(std::uint32_t id) const {
    // Callers hold a Symbol whose creation happened-before this read (the
    // id crossed threads through some synchronizing edge, e.g. a joined
    // worker's record slot), so the slot is fully constructed. The acquire
    // load pairs with the release store of the chunk pointer.
    const std::string* slab =
        chunks_[id >> kChunkBits].load(std::memory_order_acquire);
    RV_CHECK(slab != nullptr) << "symbol id " << id << " not in pool";
    return slab[id & (kChunkSize - 1)];
  }

  std::uint32_t size() const {
    return count_.load(std::memory_order_acquire);
  }

 private:
  SymbolPool() {
    const std::uint32_t empty = intern(std::string_view());
    RV_CHECK_EQ(empty, 0u);
  }

  mutable std::shared_mutex mu_;
  std::unordered_map<std::string_view, std::uint32_t> index_;
  std::array<std::atomic<std::string*>, kMaxChunks> chunks_{};
  std::atomic<std::uint32_t> count_{0};
};

}  // namespace

Symbol::Symbol(std::string_view s) : id_(SymbolPool::instance().intern(s)) {}

const std::string& Symbol::str() const {
  return SymbolPool::instance().str(id_);
}

Symbol Symbol::from_id(std::uint32_t id) {
  RV_CHECK_LT(id, SymbolPool::instance().size())
      << "symbol id not interned in this process";
  Symbol s;
  s.id_ = id;
  return s;
}

std::uint32_t Symbol::pool_size() { return SymbolPool::instance().size(); }

std::ostream& operator<<(std::ostream& os, Symbol s) { return os << s.str(); }

}  // namespace rv::util
