#include "util/md5.h"

#include <cstring>
#include <fstream>

namespace rv::util {
namespace {

// Per-round shift amounts and the binary-radian sine table from RFC 1321.
constexpr std::uint32_t kShift[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

constexpr std::uint32_t kSine[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

std::uint32_t rotl(std::uint32_t x, std::uint32_t n) {
  return (x << n) | (x >> (32 - n));
}

}  // namespace

Md5::Md5() {
  state_[0] = 0x67452301;
  state_[1] = 0xefcdab89;
  state_[2] = 0x98badcfe;
  state_[3] = 0x10325476;
}

void Md5::process_block(const std::uint8_t* block) {
  std::uint32_t m[16];
  for (int i = 0; i < 16; ++i) {
    m[i] = static_cast<std::uint32_t>(block[i * 4]) |
           static_cast<std::uint32_t>(block[i * 4 + 1]) << 8 |
           static_cast<std::uint32_t>(block[i * 4 + 2]) << 16 |
           static_cast<std::uint32_t>(block[i * 4 + 3]) << 24;
  }
  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  for (int i = 0; i < 64; ++i) {
    std::uint32_t f;
    int g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) & 15;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) & 15;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) & 15;
    }
    const std::uint32_t tmp = d;
    d = c;
    c = b;
    b = b + rotl(a + f + kSine[i] + m[g], kShift[i]);
    a = tmp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

void Md5::update(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  total_bytes_ += len;
  if (buffered_ > 0) {
    const std::size_t take = std::min(len, sizeof(buffer_) - buffered_);
    std::memcpy(buffer_ + buffered_, p, take);
    buffered_ += take;
    p += take;
    len -= take;
    if (buffered_ < sizeof(buffer_)) return;
    process_block(buffer_);
    buffered_ = 0;
  }
  while (len >= 64) {
    process_block(p);
    p += 64;
    len -= 64;
  }
  if (len > 0) {
    std::memcpy(buffer_, p, len);
    buffered_ = len;
  }
}

std::string Md5::hex_digest() {
  const std::uint64_t bit_len = total_bytes_ * 8;
  const std::uint8_t pad_byte = 0x80;
  update(&pad_byte, 1);
  const std::uint8_t zero = 0;
  while (buffered_ != 56) update(&zero, 1);
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (8 * i));
  }
  update(len_bytes, 8);

  static const char* hex = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (const std::uint32_t word : state_) {
    for (int byte = 0; byte < 4; ++byte) {
      const std::uint8_t v = static_cast<std::uint8_t>(word >> (8 * byte));
      out.push_back(hex[v >> 4]);
      out.push_back(hex[v & 15]);
    }
  }
  return out;
}

std::string md5_hex(std::string_view data) {
  Md5 md5;
  md5.update(data);
  return md5.hex_digest();
}

std::string md5_file_hex(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return {};
  Md5 md5;
  char buf[1 << 16];
  while (is) {
    is.read(buf, sizeof(buf));
    md5.update(buf, static_cast<std::size_t>(is.gcount()));
  }
  return md5.hex_digest();
}

}  // namespace rv::util
