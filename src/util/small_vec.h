// SmallVec: a vector with inline storage for the first N elements.
//
// Packet headers carry short element lists (up to 3 SACK blocks, a couple of
// chunk-boundary records); std::vector heap-allocates for even one element,
// which on the packet path means several mallocs per segment. SmallVec keeps
// the common case entirely inline and only spills to the heap past N.
// Supports the subset of the vector API the simulator uses.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace rv::util {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(N > 0, "inline capacity must be positive");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVec() noexcept = default;
  SmallVec(const SmallVec& other) { append_copy(other.data(), other.size_); }
  SmallVec(SmallVec&& other) noexcept(
      std::is_nothrow_move_constructible_v<T>) {
    take_from(std::move(other));
  }
  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) {
      reset();
      append_copy(other.data(), other.size_);
    }
    return *this;
  }
  SmallVec& operator=(SmallVec&& other) noexcept(
      std::is_nothrow_move_constructible_v<T>) {
    if (this != &other) {
      reset();
      take_from(std::move(other));
    }
    return *this;
  }
  ~SmallVec() { reset(); }

  T* data() noexcept { return heap_ != nullptr ? heap_ : inline_data(); }
  const T* data() const noexcept {
    return heap_ != nullptr ? heap_ : inline_data();
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t capacity() const noexcept { return capacity_; }
  bool is_inline() const noexcept { return heap_ == nullptr; }

  T& operator[](std::size_t i) { return data()[i]; }
  const T& operator[](std::size_t i) const { return data()[i]; }
  T& front() { return data()[0]; }
  const T& front() const { return data()[0]; }
  T& back() { return data()[size_ - 1]; }
  const T& back() const { return data()[size_ - 1]; }

  iterator begin() noexcept { return data(); }
  iterator end() noexcept { return data() + size_; }
  const_iterator begin() const noexcept { return data(); }
  const_iterator end() const noexcept { return data() + size_; }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) grow();
    T* p = ::new (static_cast<void*>(data() + size_))
        T(std::forward<Args>(args)...);
    ++size_;
    return *p;
  }

  // Destroys all elements; heap capacity (if any) is kept for reuse.
  void clear() noexcept {
    std::destroy_n(data(), size_);
    size_ = 0;
  }

 private:
  T* inline_data() noexcept { return std::launder(reinterpret_cast<T*>(storage_)); }
  const T* inline_data() const noexcept {
    return std::launder(reinterpret_cast<const T*>(storage_));
  }

  void grow() {
    const std::size_t new_capacity = capacity_ * 2;
    T* fresh = std::allocator<T>().allocate(new_capacity);
    T* src = data();
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(src[i]));
      src[i].~T();
    }
    if (heap_ != nullptr) std::allocator<T>().deallocate(heap_, capacity_);
    heap_ = fresh;
    capacity_ = new_capacity;
  }

  void append_copy(const T* src, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) emplace_back(src[i]);
  }

  void take_from(SmallVec&& other) noexcept(
      std::is_nothrow_move_constructible_v<T>) {
    if (other.heap_ != nullptr) {
      heap_ = other.heap_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.heap_ = nullptr;
      other.capacity_ = N;
      other.size_ = 0;
      return;
    }
    for (std::size_t i = 0; i < other.size_; ++i) {
      ::new (static_cast<void*>(inline_data() + i))
          T(std::move(other.inline_data()[i]));
    }
    size_ = other.size_;
    other.clear();
  }

  // Destroys elements and returns to the inline-empty state.
  void reset() noexcept {
    clear();
    if (heap_ != nullptr) {
      std::allocator<T>().deallocate(heap_, capacity_);
      heap_ = nullptr;
      capacity_ = N;
    }
  }

  std::size_t size_ = 0;
  std::size_t capacity_ = N;
  T* heap_ = nullptr;  // null while inline
  alignas(T) unsigned char storage_[N * sizeof(T)];
};

}  // namespace rv::util
