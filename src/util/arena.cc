#include "util/arena.h"

#include <algorithm>

namespace rv::util {

void* Arena::allocate_slow(std::size_t bytes, std::size_t align) {
  // Move to the next retained slab that fits, growing only when none does.
  // Oversized requests get a dedicated right-sized slab, so one giant
  // allocation never forces every later slab to that size.
  const std::size_t need = bytes + align;  // worst-case alignment slack
  while (true) {
    ++chunk_index_;
    if (chunk_index_ >= chunks_.size()) {
      Chunk c;
      c.size = std::max(kChunkBytes, need);
      c.data = std::make_unique<unsigned char[]>(c.size);
      chunks_.push_back(std::move(c));
    }
    const Chunk& c = chunks_[chunk_index_];
    cursor_ = reinterpret_cast<std::uintptr_t>(c.data.get());
    limit_ = cursor_ + c.size;
    std::uintptr_t p = (cursor_ + (align - 1)) & ~std::uintptr_t{align - 1};
    if (p + bytes <= limit_) {
      cursor_ = p + bytes;
      return reinterpret_cast<void*>(p);
    }
  }
}

}  // namespace rv::util
