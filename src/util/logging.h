// Minimal leveled logging to stderr.
//
// The simulator is quiet by default (kWarn); tests and examples raise the
// level when diagnosing a scenario. Not thread-safe beyond the atomicity of
// the level itself — per-play simulations log from one thread at a time.
#pragma once

#include <sstream>
#include <string>

namespace rv::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global minimum level; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace internal {

void emit_log(LogLevel level, const std::string& msg);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { emit_log(level_, os_.str()); }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

// Swallows the streamed expression when the level is disabled.
struct LogSink {
  template <typename T>
  LogSink& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace rv::util

#define RV_LOG(level)                                              \
  if (::rv::util::LogLevel::level < ::rv::util::log_level()) {     \
  } else                                                           \
    ::rv::util::internal::LogMessage(::rv::util::LogLevel::level)
