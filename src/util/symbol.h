// Pooled interned strings for high-volume records.
//
// A campaign-scale study holds millions of TraceRecords whose five string
// fields draw from a vocabulary of a few dozen values (country names, PC
// classes, server names). Storing each as std::string costs ~160 bytes per
// record and a heap allocation per field; a Symbol is a 4-byte id into a
// global append-only pool, so records shrink and copies are trivial.
//
// The pool is process-global and append-only: interning the same text always
// yields the same id (equality is id equality), ids are dense from 0, and a
// pooled string's address never changes once published. Interning is
// thread-safe (shared-lock fast path for hits); lookup by id is lock-free.
// Id 0 is always the empty string, so a default Symbol behaves like a
// default std::string.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace rv::util {

class Symbol {
 public:
  // Default = the empty string (id 0).
  constexpr Symbol() = default;
  // Interning constructors are implicit on purpose: record fields assign
  // from std::string profile fields, and comparisons against string
  // literals intern the literal (canonical ids make that an id compare).
  Symbol(std::string_view s);                            // NOLINT
  Symbol(const std::string& s) : Symbol(std::string_view(s)) {}  // NOLINT
  Symbol(const char* s) : Symbol(std::string_view(s)) {}         // NOLINT

  // The pooled string. Valid for the life of the process.
  const std::string& str() const;
  // Implicit view so Symbols drop into std::string-shaped APIs (map keys,
  // CSV cells, put_string) without call-site churn.
  operator const std::string&() const { return str(); }  // NOLINT

  std::uint32_t id() const { return id_; }
  bool empty() const { return id_ == 0; }
  std::size_t size() const { return str().size(); }

  // Interning is canonical, so equality is id equality.
  friend bool operator==(Symbol a, Symbol b) { return a.id_ == b.id_; }
  friend bool operator!=(Symbol a, Symbol b) { return a.id_ != b.id_; }
  // Lexicographic, for ordered map keys.
  friend bool operator<(Symbol a, Symbol b) { return a.str() < b.str(); }

  // Rebuilds a Symbol from a pooled id (spill readers). Checks the id is
  // live in this process's pool.
  static Symbol from_id(std::uint32_t id);
  // Number of distinct strings interned so far (== smallest unused id).
  static std::uint32_t pool_size();

 private:
  std::uint32_t id_ = 0;
};

std::ostream& operator<<(std::ostream& os, Symbol s);

}  // namespace rv::util
