// Minimal command-line argument parser for the tools.
//
// Supports --flag, --key value and --key=value forms plus positional
// arguments. Unknown flags are collected so tools can report them.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rv::util {

class Args {
 public:
  Args(int argc, const char* const* argv);

  const std::string& program() const { return program_; }

  // --key value / --key=value lookup.
  std::optional<std::string> get(const std::string& key) const;
  std::string get_or(const std::string& key, const std::string& fallback)
      const;
  double get_double(const std::string& key, double fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  // --flag present (no value)?
  bool has(const std::string& key) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace rv::util
