// Minimal command-line argument parser for the tools.
//
// Supports --flag, --key value and --key=value forms plus positional
// arguments. A bare "--" ends flag parsing; everything after it is
// positional. Unknown flags are collected so tools can report them.
//
// Numeric accessors parse strictly (std::from_chars, full-token match).
// A malformed value returns the fallback and records a diagnostic
// retrievable via errors(); tools are expected to check errors() after
// parsing their flags and exit non-zero instead of running with a
// silently-wrong default.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rv::util {

class Args {
 public:
  Args(int argc, const char* const* argv);

  const std::string& program() const { return program_; }

  // --key value / --key=value lookup.
  std::optional<std::string> get(const std::string& key) const;
  std::string get_or(const std::string& key, const std::string& fallback)
      const;
  double get_double(const std::string& key, double fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  // --flag present (no value)?
  bool has(const std::string& key) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Diagnostics accumulated by the numeric accessors (one human-readable
  // line per malformed value). Empty when every queried flag parsed.
  const std::vector<std::string>& errors() const { return errors_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  // Numeric accessors are const; diagnostics are a side channel.
  mutable std::vector<std::string> errors_;
};

// Strict full-token numeric parses, also used for the tools' positional
// arguments. Return std::nullopt unless the entire token is a valid number.
std::optional<std::int64_t> parse_int(std::string_view text);
std::optional<double> parse_double(std::string_view text);

}  // namespace rv::util
