// Small string helpers used by the RTSP codec and report rendering.
#pragma once

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace rv::util {

// Splits on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

// Splits on the first occurrence of `sep`; returns {s, ""} when absent.
std::pair<std::string, std::string> split_first(std::string_view s, char sep);

// Strips ASCII whitespace from both ends.
std::string trim(std::string_view s);

std::string to_lower(std::string_view s);

bool iequals(std::string_view a, std::string_view b);

// Concatenates stream-formattable arguments.
template <typename... Args>
std::string str_cat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

// printf-style double formatting with fixed decimals.
std::string format_double(double v, int decimals);

// Appends `s` to `out` as JSON string *content* (no surrounding quotes):
// escapes quote, backslash, and every control character below 0x20 (\n, \t,
// \r get their short forms; the rest become \u00XX). Shared by the Chrome
// trace exporter and the telemetry flight-recorder dumps.
void json_escape(std::string& out, std::string_view s);

// `s` as a complete JSON string token, quotes included.
std::string json_quote(std::string_view s);

}  // namespace rv::util
