#include "util/rng.h"

#include <cmath>

namespace rv::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
  has_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits — uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  RV_CHECK_LE(lo, hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  RV_CHECK_LE(lo, hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - ~std::uint64_t{0} % range;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] so log() is finite.
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double mean) {
  RV_CHECK_GT(mean, 0.0);
  return -mean * std::log(1.0 - uniform());
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  RV_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    RV_CHECK_GE(w, 0.0);
    total += w;
  }
  RV_CHECK_GT(total, 0.0);
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: land on the last bucket
}

Rng Rng::fork(std::uint64_t label) {
  // Mix the current stream with the label through SplitMix64.
  std::uint64_t mixed = next_u64() ^ (label * 0x9E3779B97F4A7C15ULL + 1);
  return Rng(splitmix64(mixed));
}

Rng Rng::fork(std::string_view label) { return fork(stable_hash(label)); }

std::uint64_t stable_hash(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace rv::util
