// Invariant-checking macros.
//
// RV_CHECK fires in all build types and throws rv::util::CheckError so that
// tests can assert on violated invariants; RV_DCHECK compiles out in NDEBUG
// builds and is meant for hot paths.
#pragma once

#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>

namespace rv::util {

// Thrown when a RV_CHECK invariant is violated.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace internal {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

// Collects an optional streamed message for RV_CHECK(cond) << "context".
// The stream is heap-allocated on first use: the object itself is four
// pointers, so functions with RV_CHECKs on their hot path don't reserve an
// ostringstream-sized stack frame for the never-taken failure branch.
class CheckMessage {
 public:
  CheckMessage(const char* expr, const char* file, int line)
      : expr_(expr), file_(file), line_(line) {}
  [[noreturn]] ~CheckMessage() noexcept(false) {
    check_failed(expr_, file_, line_, os_ ? os_->str() : std::string());
  }
  template <typename T>
  CheckMessage& operator<<(const T& v) {
    if (!os_) os_ = std::make_unique<std::ostringstream>();
    *os_ << v;
    return *this;
  }

 private:
  const char* expr_;
  const char* file_;
  int line_;
  std::unique_ptr<std::ostringstream> os_;
};

}  // namespace internal
}  // namespace rv::util

#define RV_CHECK(cond)                                            \
  if (cond) {                                                     \
  } else                                                          \
    ::rv::util::internal::CheckMessage(#cond, __FILE__, __LINE__)

#define RV_CHECK_OP(lhs, op, rhs) RV_CHECK((lhs)op(rhs))
#define RV_CHECK_EQ(lhs, rhs) RV_CHECK_OP(lhs, ==, rhs)
#define RV_CHECK_NE(lhs, rhs) RV_CHECK_OP(lhs, !=, rhs)
#define RV_CHECK_LT(lhs, rhs) RV_CHECK_OP(lhs, <, rhs)
#define RV_CHECK_LE(lhs, rhs) RV_CHECK_OP(lhs, <=, rhs)
#define RV_CHECK_GT(lhs, rhs) RV_CHECK_OP(lhs, >, rhs)
#define RV_CHECK_GE(lhs, rhs) RV_CHECK_OP(lhs, >=, rhs)

#ifdef NDEBUG
#define RV_DCHECK(cond) \
  if (true) {           \
  } else                \
    ::rv::util::internal::CheckMessage(#cond, __FILE__, __LINE__)
#else
#define RV_DCHECK(cond) RV_CHECK(cond)
#endif
