#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

namespace rv::util {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::pair<std::string, std::string> split_first(std::string_view s, char sep) {
  const std::size_t pos = s.find(sep);
  if (pos == std::string_view::npos) return {std::string(s), std::string()};
  return {std::string(s.substr(0, pos)), std::string(s.substr(pos + 1))};
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return std::string(s.substr(b, e - b));
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string format_double(double v, int decimals) {
  if (std::isnan(v)) return "n/a";  // degenerate statistics render as n/a
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return std::string(buf);
}

void json_escape(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  json_escape(out, s);
  out += '"';
  return out;
}

}  // namespace rv::util
