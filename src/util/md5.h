// Self-contained MD5 (RFC 1321), for content fingerprints.
//
// The campaign tooling pins per-shard determinism by hashing rollup and
// spill files; the bench harness compares those hashes against the md5s
// run_bench.py computes with Python's hashlib, so the digest must be real
// MD5, not a homegrown hash. Not for security — for fingerprinting only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace rv::util {

class Md5 {
 public:
  Md5();

  void update(const void* data, std::size_t len);
  void update(std::string_view s) { update(s.data(), s.size()); }

  // Finalizes and returns the 32-char lowercase hex digest. The object is
  // consumed: further updates are invalid.
  std::string hex_digest();

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t state_[4];
  std::uint64_t total_bytes_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffered_ = 0;
};

// One-shot digest of a buffer.
std::string md5_hex(std::string_view data);

// Digest of a file's bytes (streamed). Empty string when the file cannot
// be opened.
std::string md5_file_hex(const std::string& path);

}  // namespace rv::util
