#include "util/logging.h"

#include <atomic>
#include <iostream>

namespace rv::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace internal {

void emit_log(LogLevel level, const std::string& msg) {
  std::cerr << "[" << level_name(level) << "] " << msg << "\n";
}

}  // namespace internal
}  // namespace rv::util
