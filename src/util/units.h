// Time and bandwidth units used throughout the simulator.
//
// Simulated time is an integer count of microseconds (SimTime) so that event
// ordering is exact and runs are bit-reproducible. Bandwidth is carried as
// double bits-per-second; helper constructors/readers keep call sites honest
// about units.
#pragma once

#include <cstdint>

namespace rv {

// Simulated time in microseconds since the start of a simulation.
using SimTime = std::int64_t;

inline constexpr SimTime kUsecPerMsec = 1'000;
inline constexpr SimTime kUsecPerSec = 1'000'000;

constexpr SimTime usec(std::int64_t n) { return n; }
constexpr SimTime msec(std::int64_t n) { return n * kUsecPerMsec; }
constexpr SimTime sec(std::int64_t n) { return n * kUsecPerSec; }
constexpr SimTime seconds_to_sim(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kUsecPerSec));
}

constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kUsecPerSec);
}
constexpr double to_msec(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kUsecPerMsec);
}

// Bandwidth in bits per second.
using BitsPerSec = double;

constexpr BitsPerSec kbps(double k) { return k * 1'000.0; }
constexpr BitsPerSec mbps(double m) { return m * 1'000'000.0; }
constexpr double to_kbps(BitsPerSec b) { return b / 1'000.0; }

// Serialization time for `bytes` at rate `rate` (rounded up to whole usec so
// that a non-empty packet never transmits in zero time).
constexpr SimTime transmission_time(std::int64_t bytes, BitsPerSec rate) {
  if (rate <= 0.0) return 0;
  const double usecs =
      static_cast<double>(bytes) * 8.0 * 1e6 / static_cast<double>(rate);
  const auto whole = static_cast<SimTime>(usecs);
  return (usecs > static_cast<double>(whole)) ? whole + 1 : whole;
}

}  // namespace rv
