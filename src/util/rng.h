// Deterministic random number generation.
//
// The whole study must be bit-reproducible from a single seed, so every
// stochastic component draws from an rv::util::Rng that was derived (via
// Rng::fork) from its parent's stream. xoshiro256** is used for speed and
// quality; seeding goes through SplitMix64 as its authors recommend.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "util/check.h"

namespace rv::util {

// xoshiro256** PRNG with convenience distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed);

  // Next raw 64-bit value.
  std::uint64_t next_u64();

  // Uniform double in [0, 1).
  double uniform();
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  // Standard normal via Box–Muller (cached second value).
  double normal();
  double normal(double mean, double stddev) { return mean + stddev * normal(); }
  // Lognormal with the given mean/stddev of the *underlying* normal.
  double lognormal(double mu, double sigma);
  // Exponential with the given mean (= 1/lambda).
  double exponential(double mean);
  bool bernoulli(double p) { return uniform() < p; }

  // Index drawn proportionally to non-negative weights (at least one > 0).
  std::size_t weighted_index(std::span<const double> weights);

  // Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // A new, statistically independent generator derived from this stream and a
  // label; forking with distinct labels yields distinct deterministic streams.
  Rng fork(std::uint64_t label);
  Rng fork(std::string_view label);

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

// Stable 64-bit FNV-1a hash of a string (for labelled forks / clip seeds).
std::uint64_t stable_hash(std::string_view s);

}  // namespace rv::util
