// End-user PC power classes (paper Fig 19).
//
// The paper buckets user machines by CPU chip and RAM; only the oldest
// generation (Pentium-MMX-class with 24 MB, which thrashes) is a streaming
// bottleneck. Decode cost per frame models that: a fixed per-frame cost plus
// a per-byte cost, both scaled by the class.
#pragma once

#include <string_view>
#include <vector>

#include "util/units.h"

namespace rv::client {

struct PcClass {
  std::string_view name;
  // Fixed decode cost per frame and marginal cost per encoded byte.
  SimTime per_frame_cost = 0;
  double per_byte_cost_usec = 0.0;

  SimTime decode_cost(std::int32_t frame_bytes) const {
    return per_frame_cost +
           static_cast<SimTime>(per_byte_cost_usec *
                                static_cast<double>(frame_bytes));
  }
};

// The six classes of Fig 19, ordered roughly by power.
const std::vector<PcClass>& pc_classes();

// Lookup by Fig 19 label; falls back to the mid-range class.
const PcClass& pc_class_by_name(std::string_view name);

}  // namespace rv::client
