// Per-clip playout statistics — the exact metric set RealTracer records
// (§III.A): encoded/measured bandwidth, transport protocol, encoded/measured
// frame rate, playout jitter, frames dropped and CPU utilisation, plus
// per-second samples for the Fig 1 style time series.
#pragma once

#include <cstdint>
#include <vector>

#include "net/address.h"
#include "util/units.h"

namespace rv::client {

struct SecondSample {
  double t_seconds = 0.0;           // since PLAY
  BitsPerSec bandwidth = 0.0;       // received over the last second
  double frame_rate = 0.0;          // frames played over the last second
};

struct ClipStats {
  bool session_established = false;
  bool played_any_frame = false;
  net::Protocol protocol = net::Protocol::kUdp;
  bool fell_back_to_tcp = false;
  bool fell_back_to_http = false;       // ladder reached the HTTP-cloak rung
  std::int32_t rtsp_retries = 0;        // timed-out connect/request attempts

  BitsPerSec encoded_bandwidth = 0.0;   // time-weighted active-level rate
  double encoded_fps = 0.0;             // time-weighted encoded frame rate

  BitsPerSec measured_bandwidth = 0.0;  // application goodput over the play
  double measured_fps = 0.0;            // frames played / playout wall time
  double jitter_ms = 0.0;               // stddev of inter-frame playout gaps

  std::int64_t frames_played = 0;
  std::int64_t frames_dropped = 0;      // lost/late frames skipped at deadline
  std::int64_t frames_cpu_scaled = 0;   // skipped by the CPU frame-rate scaler

  std::int32_t rebuffer_events = 0;
  double rebuffer_seconds = 0.0;
  double preroll_seconds = 0.0;         // initial buffering delay
  double play_seconds = 0.0;            // playout wall time (incl. stalls)

  double cpu_utilization = 0.0;         // decode busy / playout wall time

  std::int64_t bytes_received = 0;
  std::int64_t packets_received = 0;
  std::int64_t repairs_received = 0;

  std::vector<SecondSample> samples;    // 1 Hz time series (Fig 1)
};

}  // namespace rv::client
