// RealPlayer analog: RTSP session control, transport auto-configuration
// (UDP-first with TCP fallback), data reception/reassembly, loss feedback,
// NAK repair requests, and the playout engine — producing the per-clip
// statistics RealTracer records.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <set>

#include "client/clip_stats.h"
#include "client/playout.h"
#include "media/catalog.h"
#include "media/packetizer.h"
#include "media/stream_wire.h"
#include "net/network.h"
#include "rtsp/http.h"
#include "rtsp/message.h"
#include "rtsp/retry.h"
#include "transport/mux.h"
#include "transport/tcp.h"
#include "transport/udp.h"

namespace rv::client {

struct RealPlayerConfig {
  PlayoutConfig playout;
  transport::TcpConfig tcp;
  // The connection speed the user configured in RealPlayer (guides the
  // server's initial SureStream level).
  BitsPerSec reported_bandwidth = kbps(450);
  bool prefer_udp = true;   // RealPlayer's auto transport configuration
  bool udp_blocked = false; // NAT/firewall silently eats inbound UDP
  // Fetch the .ram metafile over HTTP first, as a browser click does
  // (§II.A); the rtsp:// URL inside it then drives the session.
  bool fetch_metafile = true;
  net::Port http_port = 80;
  SimTime udp_probe_timeout = sec(4);   // no data → reconnect over TCP
  SimTime feedback_interval = msec(500);
  SimTime watch_duration = sec(60);     // RealTracer plays 1 minute per clip
  SimTime session_timeout = sec(100);   // hard abort for dead sessions

  // --- Timeout/retry hardening (§II.A auto-configuration mechanics) -------
  // Deadline for a TCP handshake (HTTP metafile or RTSP control) before the
  // attempt is abandoned and retried.
  SimTime connect_timeout = sec(8);
  // Deadline for a DESCRIBE/SETUP/PLAY (or metafile GET) response.
  SimTime request_timeout = sec(10);
  // Attempts per transport plan; exhausting it falls down the
  // UDP → TCP → HTTP-cloak ladder, then gives up.
  rtsp::RetryPolicy retry;
  // Final ladder rung: speak RTSP on the server's HTTP port (RealPlayer's
  // "HTTP cloaking" for networks that block 554 outright).
  bool http_cloak_fallback = true;
};

class RealPlayerApp {
 public:
  RealPlayerApp(net::Network& network, net::NodeId node,
                net::Endpoint server, std::uint32_t clip_id,
                const media::Catalog& catalog, RealPlayerConfig config);
  ~RealPlayerApp();

  RealPlayerApp(const RealPlayerApp&) = delete;
  RealPlayerApp& operator=(const RealPlayerApp&) = delete;

  void start();
  void set_on_finished(std::function<void()> cb) {
    on_finished_ = std::move(cb);
  }
  bool finished() const { return finished_; }
  // Whether the server reported the clip as unavailable (404).
  bool clip_unavailable() const { return clip_unavailable_; }
  const ClipStats& stats() const { return stats_; }
  const PlayoutEngine& playout() const { return *playout_; }

  // Telemetry probes, safe to call at any point mid-session (the sampler
  // reads them on a fixed sim-time grid). All are cheap state reads.
  double buffered_media_seconds() const {
    return playout_ != nullptr ? playout_->buffered_span_sec() : 0.0;
  }
  std::int64_t frames_played_so_far() const {
    return playout_ != nullptr ? playout_->frames_played() : 0;
  }
  std::int64_t bytes_received_so_far() const { return stats_.bytes_received; }

 private:
  // The transport auto-configuration ladder (§II.A): try UDP data first,
  // fall back to TCP interleaving, then to RTSP cloaked on the HTTP port.
  enum class TransportPlan { kUdp, kTcp, kHttpCloak };

  void start_attempt();
  void on_attempt_failed();
  void advance_plan();
  void give_up();
  void arm_connect_timer();
  void arm_request_timer();
  void cancel_attempt_timers();
  void abort_attempt_connections();
  void fetch_metafile();
  void open_control();
  void send_request(rtsp::Method method);
  void on_control_chunk(std::shared_ptr<const net::PayloadMeta> meta,
                        std::int64_t bytes);
  void on_response(const rtsp::Response& resp);
  void handle_media(const std::shared_ptr<const media::MediaPacketMeta>& meta);
  void on_play_confirmed();
  void on_play_confirmed_poll();
  void send_feedback();
  void fall_back_to_tcp();
  void take_second_sample();
  void note_level(std::uint16_t level);
  void finish();

  net::Network& network_;
  transport::TransportMux mux_;
  net::Endpoint server_;
  std::uint32_t clip_id_;
  const media::Catalog& catalog_;
  const media::Clip* clip_ = nullptr;
  RealPlayerConfig config_;

  std::unique_ptr<transport::TcpConnection> control_;
  std::unique_ptr<transport::TcpConnection> http_conn_;
  std::unique_ptr<transport::UdpSocket> data_socket_;
  std::unique_ptr<PlayoutEngine> playout_;
  media::FrameAssembler assembler_;
  media::LossMonitor loss_monitor_;

  bool using_udp_ = true;
  bool fallback_done_ = false;
  bool playing_ = false;
  bool finished_ = false;
  bool clip_unavailable_ = false;
  bool metafile_ok_ = false;
  TransportPlan plan_ = TransportPlan::kUdp;
  rtsp::RetryState retry_;
  // Invalidates deferred failure events queued by an earlier attempt's
  // connection callbacks (bumped on every attempt start/abort).
  std::uint64_t attempt_epoch_ = 0;
  int cseq_ = 0;
  std::deque<rtsp::Method> pending_;
  net::Endpoint server_data_;

  // Repair tracking (UDP): sequence numbers seen missing, not yet NAKed.
  std::set<std::uint32_t> missing_seqs_;
  std::uint32_t next_expected_seq_ = 0;
  bool seen_any_seq_ = false;

  // RTT echo state.
  SimTime last_echo_ts_ = 0;
  SimTime last_echo_arrival_ = 0;

  // Level/bandwidth accounting (time-weighted encoded rate and fps).
  std::uint16_t current_level_ = 0;
  bool level_known_ = false;
  SimTime level_since_ = 0;
  double level_weight_sec_ = 0.0;
  double weighted_bw_ = 0.0;
  double weighted_fps_ = 0.0;
  double clip_action_avg_ = 1.0;

  // Per-second sampling.
  std::int64_t last_feedback_bytes_ = 0;
  std::int64_t last_sample_bytes_ = 0;
  std::int64_t last_sample_frames_ = 0;
  SimTime play_confirm_time_ = 0;

  sim::EventId feedback_event_ = sim::kInvalidEventId;
  sim::EventId probe_event_ = sim::kInvalidEventId;
  sim::EventId watch_event_ = sim::kInvalidEventId;
  sim::EventId watchdog_event_ = sim::kInvalidEventId;
  sim::EventId sample_event_ = sim::kInvalidEventId;
  sim::EventId poll_event_ = sim::kInvalidEventId;
  sim::EventId connect_timer_ = sim::kInvalidEventId;
  sim::EventId request_timer_ = sim::kInvalidEventId;
  sim::EventId retry_timer_ = sim::kInvalidEventId;

  ClipStats stats_;
  std::function<void()> on_finished_;
};

}  // namespace rv::client
