#include "client/real_player.h"

#include <algorithm>

#include "obs/trace.h"
#include "server/real_server.h"
#include "util/arena.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/strings.h"

namespace rv::client {
namespace {

constexpr net::Port kClientDataPort = 6970;  // RealPlayer's default

// Reason codes for kRtspFallback trace events (arg a1).
constexpr std::uint64_t kFallbackLadderExhausted = 0;  // retry budget spent
constexpr std::uint64_t kFallbackUdpProbeTimeout = 1;  // no UDP data arrived

}  // namespace

RealPlayerApp::RealPlayerApp(net::Network& network, net::NodeId node,
                             net::Endpoint server, std::uint32_t clip_id,
                             const media::Catalog& catalog,
                             RealPlayerConfig config)
    : network_(network),
      mux_(network, node),
      server_(server),
      clip_id_(clip_id),
      catalog_(catalog),
      config_(config) {
  for (const auto& clip : catalog_.clips()) {
    if (clip.id() == clip_id_) clip_ = &clip;
  }
  RV_CHECK(clip_ != nullptr) << "clip not in catalog: " << clip_id;
  // Mean scene-action factor: converts a level's fps cap into the clip's
  // expected encoded frame rate.
  double weighted = 0.0;
  for (const auto& scene : clip_->scenes()) {
    weighted += to_seconds(scene.duration) * scene.action;
  }
  clip_action_avg_ = weighted / to_seconds(clip_->duration());
}

RealPlayerApp::~RealPlayerApp() {
  auto& sim = network_.simulator();
  sim.cancel(feedback_event_);
  sim.cancel(probe_event_);
  sim.cancel(watch_event_);
  sim.cancel(watchdog_event_);
  sim.cancel(sample_event_);
  sim.cancel(poll_event_);
  sim.cancel(connect_timer_);
  sim.cancel(request_timer_);
  sim.cancel(retry_timer_);
}

void RealPlayerApp::start() {
  plan_ = config_.prefer_udp ? TransportPlan::kUdp : TransportPlan::kTcp;
  retry_ = rtsp::RetryState(config_.retry);
  playout_ = std::make_unique<PlayoutEngine>(network_.simulator(),
                                             config_.playout);
  watchdog_event_ = network_.simulator().schedule_in(
      config_.session_timeout, [this] {
        watchdog_event_ = sim::kInvalidEventId;
        finish();
      });
  start_attempt();
}

// --- Retry ladder ----------------------------------------------------------

void RealPlayerApp::start_attempt() {
  if (finished_) return;
  ++attempt_epoch_;
  using_udp_ = plan_ == TransportPlan::kUdp;
  stats_.protocol = using_udp_ ? net::Protocol::kUdp : net::Protocol::kTcp;
  if (!metafile_ok_ && config_.fetch_metafile && config_.http_port != 0) {
    fetch_metafile();
  } else {
    open_control();
  }
}

void RealPlayerApp::arm_connect_timer() {
  network_.simulator().cancel(connect_timer_);
  connect_timer_ = network_.simulator().schedule_in(
      config_.connect_timeout, [this] {
        connect_timer_ = sim::kInvalidEventId;
        on_attempt_failed();
      });
}

void RealPlayerApp::arm_request_timer() {
  network_.simulator().cancel(request_timer_);
  request_timer_ = network_.simulator().schedule_in(
      config_.request_timeout, [this] {
        request_timer_ = sim::kInvalidEventId;
        on_attempt_failed();
      });
}

void RealPlayerApp::cancel_attempt_timers() {
  auto& sim = network_.simulator();
  sim.cancel(connect_timer_);
  sim.cancel(request_timer_);
  connect_timer_ = sim::kInvalidEventId;
  request_timer_ = sim::kInvalidEventId;
}

void RealPlayerApp::abort_attempt_connections() {
  // Detach callbacks first: the closes below are intentional and must not
  // re-enter the failure path.
  if (http_conn_) {
    http_conn_->set_on_closed({});
    http_conn_->set_on_chunk({});
    http_conn_->close();
    http_conn_.reset();
  }
  if (control_) {
    control_->set_on_closed({});
    control_->set_on_chunk({});
    control_->close();
    control_.reset();
  }
  data_socket_.reset();
  pending_.clear();
}

// A connect or request attempt timed out (or its connection died early):
// back off and retry the current transport plan, or fall down the ladder.
void RealPlayerApp::on_attempt_failed() {
  if (finished_ || playing_) return;
  ++attempt_epoch_;
  cancel_attempt_timers();
  abort_attempt_connections();
  if (const auto backoff = retry_.next_backoff()) {
    ++stats_.rtsp_retries;
    obs::emit(network_.simulator().now(), obs::Code::kRtspRetry,
              static_cast<std::uint64_t>(stats_.rtsp_retries),
              static_cast<std::uint64_t>(*backoff));
    obs::count(obs::Counter::kRtspRetries);
    retry_timer_ = network_.simulator().schedule_in(*backoff, [this] {
      retry_timer_ = sim::kInvalidEventId;
      start_attempt();
    });
    return;
  }
  advance_plan();
}

void RealPlayerApp::advance_plan() {
  retry_.reset();
  if (plan_ == TransportPlan::kUdp) {
    plan_ = TransportPlan::kTcp;
    fallback_done_ = true;
    stats_.fell_back_to_tcp = true;
    obs::emit(network_.simulator().now(), obs::Code::kRtspFallback, 1,
              kFallbackLadderExhausted);
    obs::gauge_max(obs::Counter::kFallbackDepth, 1);
  } else if (plan_ == TransportPlan::kTcp && config_.http_cloak_fallback &&
             config_.http_port != 0) {
    plan_ = TransportPlan::kHttpCloak;
    stats_.fell_back_to_http = true;
    obs::emit(network_.simulator().now(), obs::Code::kRtspFallback, 2,
              kFallbackLadderExhausted);
    obs::gauge_max(obs::Counter::kFallbackDepth, 2);
  } else {
    give_up();
    return;
  }
  start_attempt();
}

void RealPlayerApp::give_up() {
  // The whole ladder failed before a session was ever established: as far
  // as RealTracer can tell, the clip is unavailable (Fig 10).
  if (!stats_.session_established) clip_unavailable_ = true;
  finish();
}

void RealPlayerApp::fetch_metafile() {
  // The browser step: GET the .ram metafile; its body names the rtsp:// URL.
  http_conn_ = std::make_unique<transport::TcpConnection>(mux_, config_.tcp);
  http_conn_->set_on_established([this] {
    cancel_attempt_timers();
    arm_request_timer();
    rtsp::HttpRequest req;
    req.path = server::RealServerApp::metafile_path(clip_id_);
    req.headers.set("User-Agent", "RealTracer/1.0");
    const std::string wire = req.serialize();
    http_conn_->send_chunk(static_cast<std::int64_t>(wire.size()),
                           util::arena_make_shared<media::RtspTextMeta>(wire));
  });
  http_conn_->set_on_chunk(
      [this](std::shared_ptr<const net::PayloadMeta> meta, std::int64_t) {
        const auto* text =
            dynamic_cast<const media::RtspTextMeta*>(meta.get());
        if (text == nullptr || finished_) return;
        cancel_attempt_timers();
        const auto resp = rtsp::parse_http_response(text->text);
        http_conn_->set_on_closed({});
        if (!resp || !resp->ok() ||
            rtsp::parse_ram_metafile(resp->body).empty()) {
          // A definitive "no such clip" from the web server: no retry.
          clip_unavailable_ = true;
          finish();
          return;
        }
        metafile_ok_ = true;
        // Hand off to the player proper. (Deferred: we are inside the HTTP
        // connection's callback.)
        network_.simulator().schedule_in(0, [this] {
          if (!finished_) open_control();
        });
      });
  http_conn_->set_on_closed([this] {
    // Closed before the metafile arrived: a failed attempt, not a verdict.
    if (!playing_ && !finished_ && !metafile_ok_) {
      const auto epoch = attempt_epoch_;
      network_.simulator().schedule_in(0, [this, epoch] {
        if (epoch == attempt_epoch_) on_attempt_failed();
      });
    }
  });
  arm_connect_timer();
  http_conn_->connect({server_.node, config_.http_port});
}

void RealPlayerApp::open_control() {
  control_ = std::make_unique<transport::TcpConnection>(mux_, config_.tcp);
  control_->set_on_established([this] {
    cancel_attempt_timers();
    send_request(rtsp::Method::kDescribe);
  });
  control_->set_on_chunk(
      [this](std::shared_ptr<const net::PayloadMeta> meta,
             std::int64_t bytes) { on_control_chunk(std::move(meta), bytes); });
  control_->set_on_closed([this] {
    // A dead control connection before playout: retry rather than declare
    // the session over.
    if (!playing_ && !finished_) {
      const auto epoch = attempt_epoch_;
      network_.simulator().schedule_in(0, [this, epoch] {
        if (epoch == attempt_epoch_) on_attempt_failed();
      });
    }
  });
  arm_connect_timer();
  // HTTP cloaking speaks RTSP on the web port (port 554 unreachable).
  const net::Port port = plan_ == TransportPlan::kHttpCloak
                             ? config_.http_port
                             : server_.port;
  control_->connect({server_.node, port});
}

void RealPlayerApp::send_request(rtsp::Method method) {
  rtsp::Request req;
  req.method = method;
  req.url = server::RealServerApp::clip_url(clip_id_);
  req.cseq = ++cseq_;
  if (method == rtsp::Method::kSetup) {
    rtsp::TransportSpec spec;
    spec.use_udp = using_udp_;
    spec.client_port = kClientDataPort;
    req.headers.set("Transport", spec.serialize());
    req.headers.set("Bandwidth",
                    util::format_double(config_.reported_bandwidth, 0));
  }
  const std::string wire = req.serialize();
  pending_.push_back(method);
  // The session's liveness timer: a silent server (outage, overload stall)
  // fails the attempt instead of hanging until the watchdog.
  if (method != rtsp::Method::kTeardown) arm_request_timer();
  control_->send_chunk(static_cast<std::int64_t>(wire.size()),
                       util::arena_make_shared<media::RtspTextMeta>(wire));
}

void RealPlayerApp::on_control_chunk(
    std::shared_ptr<const net::PayloadMeta> meta, std::int64_t /*bytes*/) {
  if (finished_) return;
  if (const auto* text = dynamic_cast<const media::RtspTextMeta*>(meta.get())) {
    const auto resp = rtsp::parse_response(text->text);
    if (resp) on_response(*resp);
    return;
  }
  // Interleaved media data on the control connection (TCP transport).
  if (auto media_meta =
          std::dynamic_pointer_cast<const media::MediaPacketMeta>(meta)) {
    handle_media(media_meta);
  }
}

void RealPlayerApp::on_response(const rtsp::Response& resp) {
  if (pending_.empty()) return;
  network_.simulator().cancel(request_timer_);
  request_timer_ = sim::kInvalidEventId;
  const rtsp::Method method = pending_.front();
  pending_.pop_front();

  if (!resp.ok()) {
    if (method == rtsp::Method::kDescribe &&
        resp.status == rtsp::StatusCode::kNotFound) {
      clip_unavailable_ = true;
    }
    finish();
    return;
  }

  switch (method) {
    case rtsp::Method::kDescribe: {
      stats_.session_established = true;
      if (using_udp_) {
        data_socket_ =
            std::make_unique<transport::UdpSocket>(mux_, kClientDataPort);
        data_socket_->set_on_datagram(
            [this](net::Endpoint, std::shared_ptr<const net::PayloadMeta> m,
                   std::int32_t) {
              if (config_.udp_blocked) return;  // firewall eats inbound UDP
              if (auto media_meta =
                      std::dynamic_pointer_cast<const media::MediaPacketMeta>(
                          m)) {
                handle_media(media_meta);
              }
            });
      }
      send_request(rtsp::Method::kSetup);
      break;
    }
    case rtsp::Method::kSetup: {
      if (using_udp_) {
        // Parse server_port from the Transport header.
        server_data_ = {server_.node, 0};
        if (const auto t = resp.headers.get("Transport")) {
          for (const auto& field : util::split(*t, ';')) {
            const auto [key, value] = util::split_first(field, '=');
            if (util::iequals(util::trim(key), "server_port")) {
              server_data_.port =
                  static_cast<net::Port>(std::atoi(value.c_str()));
            }
          }
        }
      }
      send_request(rtsp::Method::kPlay);
      break;
    }
    case rtsp::Method::kPlay:
      on_play_confirmed();
      break;
    case rtsp::Method::kTeardown:
    default:
      break;
  }
}

void RealPlayerApp::on_play_confirmed() {
  playing_ = true;
  play_confirm_time_ = network_.simulator().now();
  playout_->start();

  auto& sim = network_.simulator();
  if (using_udp_) {
    feedback_event_ =
        sim.schedule_in(config_.feedback_interval, [this] { send_feedback(); });
    probe_event_ = sim.schedule_in(config_.udp_probe_timeout, [this] {
      probe_event_ = sim::kInvalidEventId;
      if (stats_.packets_received == 0) fall_back_to_tcp();
    });
  }
  sample_event_ = sim.schedule_in(sec(1), [this] { take_second_sample(); });
  // Watch-window timer: RealTracer stops the clip after 1 minute of
  // *playout*; poll for playout start, then arm the stop timer.
  poll_event_ =
      sim.schedule_in(msec(250), [this] { on_play_confirmed_poll(); });
}

// Polls for playout start, then arms the 1-minute watch-window stop timer.
void RealPlayerApp::on_play_confirmed_poll() {
  poll_event_ = sim::kInvalidEventId;
  if (finished_) return;
  if (playout_->playout_started()) {
    watch_event_ = network_.simulator().schedule_in(
        config_.watch_duration, [this] {
          watch_event_ = sim::kInvalidEventId;
          finish();
        });
    return;
  }
  poll_event_ = network_.simulator().schedule_in(
      msec(250), [this] { on_play_confirmed_poll(); });
}

void RealPlayerApp::note_level(std::uint16_t level) {
  const SimTime now = network_.simulator().now();
  if (level_known_ && level == current_level_) return;
  if (level_known_) {
    const double span = to_seconds(now - level_since_);
    const auto& lvl = clip_->level(current_level_);
    level_weight_sec_ += span;
    weighted_bw_ += span * lvl.total_bandwidth;
    weighted_fps_ += span * lvl.encoded_fps * clip_action_avg_;
  }
  current_level_ = level;
  level_known_ = true;
  level_since_ = now;
}

void RealPlayerApp::handle_media(
    const std::shared_ptr<const media::MediaPacketMeta>& meta) {
  if (finished_) return;
  stats_.bytes_received += meta->payload_bytes;
  ++stats_.packets_received;
  last_echo_ts_ = meta->sent_at;
  last_echo_arrival_ = network_.simulator().now();

  if (using_udp_) {
    loss_monitor_.on_packet(meta->seq);
    // Gap tracking for NAK repair.
    if (!seen_any_seq_) {
      seen_any_seq_ = true;
      next_expected_seq_ = meta->seq + 1;
    } else if (meta->seq >= next_expected_seq_) {
      if (meta->seq > next_expected_seq_) {
        obs::emit(network_.simulator().now(), obs::Code::kUdpLossBurst,
                  meta->seq - next_expected_seq_, next_expected_seq_);
        obs::count(obs::Counter::kUdpLossGaps);
      }
      for (std::uint32_t s = next_expected_seq_;
           s < meta->seq && missing_seqs_.size() < 64; ++s) {
        missing_seqs_.insert(s);
      }
      next_expected_seq_ = meta->seq + 1;
    } else {
      missing_seqs_.erase(meta->seq);  // late or repaired packet arrived
    }
  }

  switch (meta->kind) {
    case media::MediaKind::kVideo:
    case media::MediaKind::kRepair: {
      if (meta->kind == media::MediaKind::kRepair) {
        ++stats_.repairs_received;
      }
      note_level(meta->level);
      if (auto frame = assembler_.add(*meta)) {
        playout_->on_frame(*frame);
      }
      // Partial frames whose playout slot passed are lost for good.
      if (playout_->playout_started()) {
        playout_->add_network_drops(static_cast<std::int64_t>(
            assembler_.discard_before(playout_->playout_position())));
      }
      break;
    }
    case media::MediaKind::kAudio:
      break;  // audio contributes to bandwidth only
    case media::MediaKind::kEndOfStream:
      playout_->on_end_of_stream();
      break;
  }
}

void RealPlayerApp::send_feedback() {
  feedback_event_ = sim::kInvalidEventId;
  if (finished_ || !using_udp_ || data_socket_ == nullptr) return;
  if (server_data_.port != 0 && !config_.udp_blocked) {
    const auto interval_sec = to_seconds(config_.feedback_interval);
    const auto report = loss_monitor_.take();
    auto fb = util::arena_make_shared<media::FeedbackMeta>();
    fb->loss_fraction = report.loss_fraction();
    // Goodput over the interval: count payload bytes via packets seen.
    fb->receive_rate =
        static_cast<double>(stats_.bytes_received - last_feedback_bytes_) *
        8.0 / interval_sec;
    last_feedback_bytes_ = stats_.bytes_received;
    fb->echo_sent_at = last_echo_ts_;
    fb->echo_hold = network_.simulator().now() - last_echo_arrival_;
    fb->total_received = loss_monitor_.total_received();
    data_socket_->send_to(server_data_, media::kFeedbackPayloadBytes, fb);

    if (!missing_seqs_.empty()) {
      auto nak = util::arena_make_shared<media::RepairRequestMeta>();
      nak->seqs.assign(missing_seqs_.begin(), missing_seqs_.end());
      missing_seqs_.clear();
      const auto bytes = static_cast<std::int32_t>(
          media::kRepairRequestBaseBytes +
          media::kRepairRequestBytesPerSeq *
              static_cast<std::int32_t>(nak->seqs.size()));
      data_socket_->send_to(server_data_, bytes, std::move(nak));
    }
  }
  feedback_event_ = network_.simulator().schedule_in(
      config_.feedback_interval, [this] { send_feedback(); });
}

void RealPlayerApp::fall_back_to_tcp() {
  if (fallback_done_ || finished_) return;
  fallback_done_ = true;
  stats_.fell_back_to_tcp = true;
  obs::emit(network_.simulator().now(), obs::Code::kRtspFallback, 1,
            kFallbackUdpProbeTimeout);
  obs::gauge_max(obs::Counter::kFallbackDepth, 1);
  stats_.protocol = net::Protocol::kTcp;
  plan_ = TransportPlan::kTcp;
  retry_.reset();       // fresh attempt budget for the TCP plan
  ++attempt_epoch_;     // invalidate the UDP attempt's deferred events
  using_udp_ = false;
  playing_ = false;
  // Tear down the old session and reconnect over TCP.
  auto& sim = network_.simulator();
  sim.cancel(feedback_event_);
  sim.cancel(sample_event_);
  sim.cancel(poll_event_);
  feedback_event_ = sim::kInvalidEventId;
  sample_event_ = sim::kInvalidEventId;
  poll_event_ = sim::kInvalidEventId;
  data_socket_.reset();
  pending_.clear();
  // Detach the old connection's close callback: this close is intentional
  // and must not end the whole session.
  control_->set_on_closed({});
  control_->close();
  // Fresh playout engine: nothing arrived on the dead UDP path.
  playout_ = std::make_unique<PlayoutEngine>(sim, config_.playout);
  // Defer the reconnect so the old connection unwinds.
  sim.schedule_in(msec(100), [this] {
    if (!finished_) open_control();
  });
}

void RealPlayerApp::take_second_sample() {
  sample_event_ = sim::kInvalidEventId;
  if (finished_) return;
  SecondSample sample;
  sample.t_seconds =
      to_seconds(network_.simulator().now() - play_confirm_time_);
  sample.bandwidth = static_cast<double>(
                         stats_.bytes_received - last_sample_bytes_) *
                     8.0;
  sample.frame_rate = static_cast<double>(playout_->frames_played() -
                                          last_sample_frames_);
  last_sample_bytes_ = stats_.bytes_received;
  last_sample_frames_ = playout_->frames_played();
  stats_.samples.push_back(sample);
  sample_event_ = network_.simulator().schedule_in(
      sec(1), [this] { take_second_sample(); });
}

void RealPlayerApp::finish() {
  if (finished_) return;
  finished_ = true;
  auto& sim = network_.simulator();
  sim.cancel(feedback_event_);
  sim.cancel(probe_event_);
  sim.cancel(watch_event_);
  sim.cancel(watchdog_event_);
  sim.cancel(sample_event_);
  sim.cancel(poll_event_);
  sim.cancel(connect_timer_);
  sim.cancel(request_timer_);
  sim.cancel(retry_timer_);

  if (playout_) {
    playout_->stop();
    const auto& r = playout_->result();
    stats_.played_any_frame = r.played_any;
    stats_.measured_fps = r.measured_fps;
    stats_.jitter_ms = r.jitter_ms;
    stats_.frames_played = r.frames_played;
    stats_.frames_dropped = r.frames_dropped;
    stats_.frames_cpu_scaled = r.frames_cpu_scaled;
    stats_.rebuffer_events = r.rebuffer_events;
    stats_.rebuffer_seconds = r.rebuffer_seconds;
    stats_.preroll_seconds = r.preroll_seconds;
    stats_.play_seconds = r.play_seconds;
    stats_.cpu_utilization = r.cpu_utilization;
  }
  if (playing_) {
    const double wall =
        to_seconds(network_.simulator().now() - play_confirm_time_);
    if (wall > 0.5) {
      stats_.measured_bandwidth =
          static_cast<double>(stats_.bytes_received) * 8.0 / wall;
    }
  }
  // Close out encoded-rate accounting.
  if (level_known_) note_level(current_level_ + 1);  // flush accumulator
  if (level_weight_sec_ > 0) {
    stats_.encoded_bandwidth = weighted_bw_ / level_weight_sec_;
    stats_.encoded_fps = weighted_fps_ / level_weight_sec_;
  }

  if (control_ && !control_->closed() && control_->established()) {
    send_request(rtsp::Method::kTeardown);
    control_->close();
  }
  if (on_finished_) on_finished_();
}

}  // namespace rv::client
