// Client playout engine: pre-roll buffer, playout clock, rebuffering and the
// CPU decode model (§II.B, §II.C of the paper).
//
// Frames enter via on_frame() as they are reassembled from the network and
// leave at their presentation deadlines against a wall-clock playout timer.
// If the buffer drains, playout halts (up to 20 s, per RealPlayer) while the
// buffer refills. A decode-cost model (per PC class) delays or — via the
// Scalable Video Technology scaler — skips frames on underpowered machines.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "client/clip_stats.h"
#include "client/pc_class.h"
#include "media/packetizer.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/units.h"

namespace rv::client {

struct PlayoutConfig {
  double preroll_target_sec = 8.0;      // media buffered before playout
  SimTime preroll_timeout = sec(25);    // start with whatever has arrived
  double rebuffer_target_sec = 4.0;     // media needed to resume
  SimTime rebuffer_max_wait = sec(20);  // RealPlayer halts at most this long
  PcClass pc = pc_class_by_name("Pentium II / 128-256");
  double cpu_headroom = 0.85;  // SVT scaler keeps decode duty below this
  // Host playout-timing wobble: 2001 desktop OSes display frames late by an
  // (exponentially distributed) delay with this mean, from timer granularity
  // and background processes. Affects measured jitter only, not throughput.
  double host_timing_noise_ms = 0.0;
  std::uint64_t noise_seed = 1;
};

class PlayoutEngine {
 public:
  enum class State { kPreroll, kPlaying, kRebuffering, kDone };

  PlayoutEngine(sim::Simulator& sim, const PlayoutConfig& config);
  // Pending frame/preroll events capture `this`; cancel them so the engine
  // can be replaced mid-session (TCP fallback discards the UDP engine).
  ~PlayoutEngine();

  // Playout lifecycle -----------------------------------------------------
  void start();  // called at PLAY time; pre-roll begins
  // A fully reassembled frame arrived from the network.
  void on_frame(const media::FrameAssembler::CompleteFrame& frame);
  void on_end_of_stream();
  // External stop (RealTracer's 1-minute watch window). Finalises stats.
  void stop();

  State state() const { return state_; }
  bool done() const { return state_ == State::kDone; }
  // Media position below which frames are useless (feeds assembler discard
  // and late-arrival handling).
  SimTime playout_position() const { return play_pos_; }
  std::int64_t frames_played() const { return frames_played_; }
  SimTime playout_wall_start() const { return wall_start_; }
  bool playout_started() const { return playout_started_; }
  // Media seconds currently buffered ahead of the playout position
  // (telemetry's buffer-depth probe; also feeds preroll/rebuffer decisions).
  double buffered_span_sec() const;

  // Network-level frame losses detected outside the engine (incomplete
  // frames discarded by the assembler) are folded into the stats here.
  void add_network_drops(std::int64_t n) { network_drops_ += n; }

  void set_on_done(std::function<void()> cb) { on_done_ = std::move(cb); }

  // Valid after stop(): playout portions of the RealTracer record.
  struct Result {
    bool played_any = false;
    double preroll_seconds = 0.0;
    double play_seconds = 0.0;
    double measured_fps = 0.0;
    double jitter_ms = 0.0;
    std::int64_t frames_played = 0;
    std::int64_t frames_dropped = 0;
    std::int64_t frames_cpu_scaled = 0;
    std::int32_t rebuffer_events = 0;
    double rebuffer_seconds = 0.0;
    double cpu_utilization = 0.0;
  };
  const Result& result() const { return result_; }

 private:
  void maybe_begin_playout();
  void begin_playout();
  void schedule_next_frame();
  void play_due_frames();
  void enter_rebuffer();
  void resume_from_rebuffer();
  void finish();
  SimTime deadline_of(SimTime pts) const {
    return wall_start_ + (pts - media_start_) + stall_accum_;
  }

  sim::Simulator& sim_;
  PlayoutConfig config_;
  util::Rng noise_rng_;
  State state_ = State::kPreroll;

  std::map<SimTime, media::FrameAssembler::CompleteFrame> buffer_;
  SimTime play_pos_ = 0;     // next expected media time
  SimTime wall_start_ = 0;   // wall time playout began
  SimTime media_start_ = 0;  // media time of the first played frame
  SimTime stall_accum_ = 0;  // total rebuffering stall inserted so far
  SimTime start_time_ = 0;   // when start() was called (preroll timing)
  SimTime stall_start_ = 0;
  bool playout_started_ = false;
  bool eos_ = false;
  bool started_ = false;

  // Decode model.
  SimTime decoder_free_at_ = 0;
  SimTime decode_busy_total_ = 0;
  SimTime last_play_time_ = -1;
  double decode_cost_ewma_sec_ = 0.0;

  std::vector<SimTime> play_times_;
  std::int64_t frames_played_ = 0;
  std::int64_t late_drops_ = 0;
  std::int64_t network_drops_ = 0;
  std::int64_t cpu_scaled_ = 0;
  std::int32_t rebuffer_events_ = 0;
  SimTime rebuffer_total_ = 0;

  sim::EventId frame_event_ = sim::kInvalidEventId;
  sim::EventId timer_event_ = sim::kInvalidEventId;

  std::function<void()> on_done_;
  Result result_;
};

}  // namespace rv::client
