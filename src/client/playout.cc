#include "client/playout.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"
#include "stats/summary.h"
#include "util/check.h"

namespace rv::client {

PlayoutEngine::PlayoutEngine(sim::Simulator& sim, const PlayoutConfig& config)
    : sim_(sim), config_(config), noise_rng_(config.noise_seed) {}

PlayoutEngine::~PlayoutEngine() {
  sim_.cancel(frame_event_);
  sim_.cancel(timer_event_);
}

void PlayoutEngine::start() {
  RV_CHECK(!started_);
  started_ = true;
  start_time_ = sim_.now();
  // If pre-roll never fills (dead connection), start with whatever arrived.
  timer_event_ = sim_.schedule_in(config_.preroll_timeout, [this] {
    timer_event_ = sim::kInvalidEventId;
    if (state_ == State::kPreroll && !buffer_.empty()) begin_playout();
  });
}

double PlayoutEngine::buffered_span_sec() const {
  if (buffer_.empty()) return 0.0;
  const SimTime from = playout_started_ ? play_pos_ : buffer_.begin()->first;
  return to_seconds(std::max<SimTime>(0, buffer_.rbegin()->first - from));
}

void PlayoutEngine::on_frame(
    const media::FrameAssembler::CompleteFrame& frame) {
  if (state_ == State::kDone) return;
  if (playout_started_ && frame.pts < play_pos_) {
    ++late_drops_;  // arrived after its slot passed
    obs::emit(sim_.now(), obs::Code::kFrameDrop,
              static_cast<std::uint64_t>(frame.pts),
              static_cast<std::uint64_t>(play_pos_ - frame.pts));
    obs::count(obs::Counter::kFrameDrops);
    return;
  }
  buffer_.emplace(frame.pts, frame);
  switch (state_) {
    case State::kPreroll:
      maybe_begin_playout();
      break;
    case State::kRebuffering:
      if (buffered_span_sec() >= config_.rebuffer_target_sec) {
        resume_from_rebuffer();
      }
      break;
    case State::kPlaying:
      if (frame_event_ == sim::kInvalidEventId) schedule_next_frame();
      break;
    case State::kDone:
      break;
  }
}

void PlayoutEngine::on_end_of_stream() {
  eos_ = true;
  if (state_ == State::kRebuffering && buffer_.empty()) {
    finish();
  } else if (state_ == State::kPreroll) {
    if (buffer_.empty()) {
      finish();
    } else {
      begin_playout();
    }
  }
}

void PlayoutEngine::maybe_begin_playout() {
  if (state_ != State::kPreroll) return;
  if (buffered_span_sec() >= config_.preroll_target_sec) begin_playout();
}

void PlayoutEngine::begin_playout() {
  RV_CHECK(state_ == State::kPreroll);
  RV_CHECK(!buffer_.empty());
  state_ = State::kPlaying;
  playout_started_ = true;
  wall_start_ = sim_.now();
  obs::emit(sim_.now(), obs::Code::kPrerollDone,
            static_cast<std::uint64_t>(sim_.now() - start_time_),
            buffer_.size());
  media_start_ = buffer_.begin()->first;
  play_pos_ = media_start_;
  // The decoder starts idle: place its "busy until" well in the past so the
  // SVT scaler never skips the very first frame.
  decoder_free_at_ = sim_.now() > sec(1) ? sim_.now() - sec(1) : 0;
  if (timer_event_ != sim::kInvalidEventId) {
    sim_.cancel(timer_event_);
    timer_event_ = sim::kInvalidEventId;
  }
  schedule_next_frame();
}

void PlayoutEngine::schedule_next_frame() {
  if (state_ != State::kPlaying) return;
  if (frame_event_ != sim::kInvalidEventId) return;
  // Everything below play_pos_ has already played or expired.
  const auto it = buffer_.lower_bound(play_pos_);
  if (it == buffer_.end()) {
    if (eos_) {
      finish();
    } else {
      enter_rebuffer();
    }
    return;
  }
  const SimTime due = std::max(sim_.now(), deadline_of(it->first));
  frame_event_ = sim_.schedule_at(due, [this] {
    frame_event_ = sim::kInvalidEventId;
    play_due_frames();
  });
}

void PlayoutEngine::play_due_frames() {
  if (state_ != State::kPlaying) return;
  const SimTime now = sim_.now();
  auto it = buffer_.lower_bound(play_pos_);
  while (it != buffer_.end() && deadline_of(it->first) <= now) {
    const auto& frame = it->second;
    // SVT CPU scaler: if the decoder cannot sustain the incoming frame rate
    // (§II.C "it will gradually reduce the frame rate in a controlled
    // fashion"), skip delta frames so decode duty stays under the headroom:
    // a frame is skipped when the decoder would still be busy (plus the
    // idle slack the headroom requires) at its due time.
    const SimTime this_cost = config_.pc.decode_cost(frame.bytes);
    const double idle_ratio =
        (1.0 - config_.cpu_headroom) / config_.cpu_headroom;
    const bool scaler_skip =
        !frame.keyframe &&
        now < decoder_free_at_ +
                  static_cast<SimTime>(static_cast<double>(this_cost) *
                                       idle_ratio);
    if (scaler_skip) {
      ++cpu_scaled_;
      play_pos_ = frame.pts + 1;
      it = buffer_.erase(it);
      continue;
    }
    // Decode: frames queue on the (single) decoder.
    const SimTime cost = this_cost;
    const SimTime play_time = std::max(now, decoder_free_at_) + cost;
    decoder_free_at_ = play_time;
    decode_busy_total_ += cost;
    decode_cost_ewma_sec_ =
        0.9 * decode_cost_ewma_sec_ + 0.1 * to_seconds(cost);
    // Host display wobble: the frame reaches the screen a little late.
    SimTime displayed_at = play_time;
    if (config_.host_timing_noise_ms > 0.0) {
      displayed_at += static_cast<SimTime>(
          noise_rng_.exponential(config_.host_timing_noise_ms) * 1000.0);
    }
    play_times_.push_back(displayed_at);
    last_play_time_ = play_time;
    ++frames_played_;
    play_pos_ = frame.pts + 1;
    it = buffer_.erase(it);
  }
  schedule_next_frame();
}

void PlayoutEngine::enter_rebuffer() {
  RV_CHECK(state_ == State::kPlaying);
  state_ = State::kRebuffering;
  stall_start_ = sim_.now();
  ++rebuffer_events_;
  obs::emit(sim_.now(), obs::Code::kRebufferStart,
            static_cast<std::uint64_t>(rebuffer_events_),
            static_cast<std::uint64_t>(frames_played_));
  obs::count(obs::Counter::kRebuffers);
  // RealPlayer halts at most ~20 s, then plays whatever it has (or keeps
  // waiting if it has nothing at all — the tracer's stop bounds the wait).
  timer_event_ = sim_.schedule_in(config_.rebuffer_max_wait, [this] {
    timer_event_ = sim::kInvalidEventId;
    if (state_ != State::kRebuffering) return;
    if (!buffer_.empty()) {
      resume_from_rebuffer();
    } else if (eos_) {
      finish();
    }
    // else: keep stalling; an arriving frame or stop() breaks the wait.
  });
}

void PlayoutEngine::resume_from_rebuffer() {
  RV_CHECK(state_ == State::kRebuffering);
  if (timer_event_ != sim::kInvalidEventId) {
    sim_.cancel(timer_event_);
    timer_event_ = sim::kInvalidEventId;
  }
  const SimTime stall = sim_.now() - stall_start_;
  stall_accum_ += stall;
  rebuffer_total_ += stall;
  state_ = State::kPlaying;
  obs::emit(sim_.now(), obs::Code::kRebufferStop,
            static_cast<std::uint64_t>(stall), buffer_.size());
  // Jump the playout position to the first buffered frame: everything the
  // stall skipped over is gone.
  if (!buffer_.empty()) {
    play_pos_ = std::min(play_pos_, buffer_.begin()->first);
  }
  schedule_next_frame();
}

void PlayoutEngine::finish() {
  if (state_ == State::kDone) return;
  if (state_ == State::kRebuffering) {
    rebuffer_total_ += sim_.now() - stall_start_;
    // Close the open rebuffer span so trace viewers don't draw it forever.
    obs::emit(sim_.now(), obs::Code::kRebufferStop,
              static_cast<std::uint64_t>(sim_.now() - stall_start_),
              buffer_.size());
  }
  state_ = State::kDone;
  sim_.cancel(frame_event_);
  sim_.cancel(timer_event_);
  frame_event_ = sim::kInvalidEventId;
  timer_event_ = sim::kInvalidEventId;

  result_.played_any = frames_played_ > 0;
  result_.frames_played = frames_played_;
  result_.frames_dropped = late_drops_ + network_drops_;
  result_.frames_cpu_scaled = cpu_scaled_;
  result_.rebuffer_events = rebuffer_events_;
  result_.rebuffer_seconds = to_seconds(rebuffer_total_);
  if (playout_started_) {
    result_.preroll_seconds = to_seconds(wall_start_ - start_time_);
    const double play_sec = to_seconds(sim_.now() - wall_start_);
    result_.play_seconds = play_sec;
    if (play_sec > 0) {
      result_.measured_fps =
          static_cast<double>(frames_played_) / play_sec;
      result_.cpu_utilization =
          std::min(1.0, to_seconds(decode_busy_total_) / play_sec);
    }
    if (play_times_.size() >= 3) {
      stats::Summary gaps;
      for (std::size_t i = 1; i < play_times_.size(); ++i) {
        gaps.add(to_msec(play_times_[i] - play_times_[i - 1]));
      }
      result_.jitter_ms = gaps.stddev();
    }
  } else {
    result_.preroll_seconds = to_seconds(sim_.now() - start_time_);
  }
  if (on_done_) on_done_();
}

void PlayoutEngine::stop() {
  if (!started_ || state_ == State::kDone) return;
  finish();
}

}  // namespace rv::client
