#include "client/pc_class.h"

namespace rv::client {

const std::vector<PcClass>& pc_classes() {
  // Calibrated so that only the Pentium-MMX/24MB class caps playout below
  // the paper's 3 fps threshold (decode ≈ 300 ms/frame with thrashing),
  // while every other class sustains 15+ fps on typical clip sizes.
  static const std::vector<PcClass> kClasses = {
      {"Intel Pentium MMX / 24MB", msec(228), 40.0},
      {"Pentium II / 32MB", msec(20), 6.0},
      {"Intel Celeron / 64-96MB", msec(13), 4.0},
      {"Pentium II / 128-256", msec(11), 3.0},
      {"AMD / 320-512MB", msec(8), 2.5},
      {"Pentium III / 256-512MB", msec(6), 2.0},
  };
  return kClasses;
}

const PcClass& pc_class_by_name(std::string_view name) {
  for (const auto& cls : pc_classes()) {
    if (cls.name == name) return cls;
  }
  return pc_classes()[3];
}

}  // namespace rv::client
