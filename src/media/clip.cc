#include "media/clip.h"

#include <algorithm>

#include "util/check.h"

namespace rv::media {

std::string_view clip_kind_name(ClipKind kind) {
  switch (kind) {
    case ClipKind::kNews:
      return "news";
    case ClipKind::kSports:
      return "sports";
    case ClipKind::kMusicVideo:
      return "music-video";
    case ClipKind::kMovieTrailer:
      return "movie-trailer";
  }
  return "?";
}

Clip::Clip(std::uint32_t id, std::string title, ClipKind kind,
           SimTime duration, std::vector<EncodingLevel> levels,
           std::uint64_t seed)
    : id_(id),
      title_(std::move(title)),
      kind_(kind),
      duration_(duration),
      levels_(std::move(levels)),
      seed_(seed) {
  RV_CHECK(!levels_.empty());
  RV_CHECK_GT(duration_, 0);
  std::sort(levels_.begin(), levels_.end(),
            [](const EncodingLevel& a, const EncodingLevel& b) {
              return a.total_bandwidth < b.total_bandwidth;
            });
  for (const auto& l : levels_) {
    RV_CHECK_GT(l.video_bandwidth(), 0.0)
        << "audio codec exceeds clip bandwidth";
    RV_CHECK_GT(l.encoded_fps, 0.0);
  }
  generate_scenes();
}

std::size_t Clip::best_level_for(BitsPerSec rate) const {
  std::size_t best = 0;
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (levels_[i].total_bandwidth <= rate) best = i;
  }
  return best;
}

double Clip::action_at(SimTime t) const {
  for (const auto& scene : scenes_) {
    if (t >= scene.start && t < scene.start + scene.duration) {
      return scene.action;
    }
  }
  return scenes_.empty() ? 1.0 : scenes_.back().action;
}

void Clip::generate_scenes() {
  // Deterministic from the clip seed: scene structure is a property of the
  // content, identical for every viewer and level.
  util::Rng rng(seed_ ^ 0x5CE9E5u);
  // Higher-action content (sports, music videos) has shorter scenes and a
  // higher action floor.
  double action_lo = 0.75;
  double action_hi = 1.0;
  double mean_scene_sec = 10.0;
  switch (kind_) {
    case ClipKind::kNews:
      action_lo = 0.70;
      mean_scene_sec = 14.0;
      break;
    case ClipKind::kSports:
      action_lo = 0.85;
      mean_scene_sec = 7.0;
      break;
    case ClipKind::kMusicVideo:
      action_lo = 0.80;
      mean_scene_sec = 5.0;
      break;
    case ClipKind::kMovieTrailer:
      action_lo = 0.75;
      mean_scene_sec = 8.0;
      break;
  }
  SimTime t = 0;
  while (t < duration_) {
    Scene scene;
    scene.start = t;
    const double len_sec =
        std::clamp(rng.exponential(mean_scene_sec), 2.0, 40.0);
    scene.duration =
        std::min(seconds_to_sim(len_sec), duration_ - t);
    scene.action = rng.uniform(action_lo, action_hi);
    scenes_.push_back(scene);
    t += scene.duration;
  }
}

}  // namespace rv::media
