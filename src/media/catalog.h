// The study playlist: a deterministic catalog of clips per server site.
//
// The paper's playlist had 98 clips spread over 11 RealServers in 8
// countries, with "a variety of video content" per site (§III.B). We
// generate a content mix per site profile, deterministically from a master
// seed, so every component of the study sees the same catalog.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "media/clip.h"

namespace rv::media {

// What kind of content a site mostly serves (shapes clip kind, duration and
// encoding ladder choices).
enum class SiteProfile { kNewsBroadcaster, kSportsNetwork, kEntertainment };

struct CatalogSpec {
  std::uint64_t seed = 2001;
  int clips_per_site = 9;  // 11 sites → 99; trimmed to playlist_size
  int playlist_size = 98;  // the paper's playlist length
};

class Catalog {
 public:
  // `site_profiles[i]` is site i's profile; clip ids encode the site as
  // id / 100 (site) and id % 100 (slot).
  Catalog(const CatalogSpec& spec,
          const std::vector<SiteProfile>& site_profiles);

  const std::vector<Clip>& clips() const { return clips_; }
  const Clip& clip(std::size_t i) const { return clips_.at(i); }
  std::size_t size() const { return clips_.size(); }

  static std::size_t site_of(std::uint32_t clip_id) { return clip_id / 100; }

  // All playlist indices served by `site`.
  std::vector<std::size_t> clips_of_site(std::size_t site) const;

 private:
  std::vector<Clip> clips_;
};

}  // namespace rv::media
