// A RealVideo clip: SureStream encoding ladder + scene structure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "media/codec.h"
#include "util/rng.h"
#include "util/units.h"

namespace rv::media {

enum class ClipKind { kNews, kSports, kMusicVideo, kMovieTrailer };

std::string_view clip_kind_name(ClipKind kind);

// A contiguous run of similar "action" within the clip. §V of the paper:
// "During encoding, RealVideo adjusts the frame rate by keeping the frame
// rate up in high-action scenes, and reducing it in low-action scenes" — the
// action factor scales the encoded frame rate within the scene.
struct Scene {
  SimTime start = 0;
  SimTime duration = 0;
  double action = 1.0;  // in (0, 1]: multiplier on the level's encoded fps
};

class Clip {
 public:
  // Levels must be non-empty; they are sorted ascending by total bandwidth.
  Clip(std::uint32_t id, std::string title, ClipKind kind, SimTime duration,
       std::vector<EncodingLevel> levels, std::uint64_t seed);

  std::uint32_t id() const { return id_; }
  const std::string& title() const { return title_; }
  ClipKind kind() const { return kind_; }
  SimTime duration() const { return duration_; }
  std::uint64_t seed() const { return seed_; }

  const std::vector<EncodingLevel>& levels() const { return levels_; }
  const EncodingLevel& level(std::size_t i) const { return levels_.at(i); }
  bool is_surestream() const { return levels_.size() > 1; }

  // Highest level whose bandwidth fits within `rate`; falls back to the
  // lowest level when even that does not fit (a stream must always flow).
  std::size_t best_level_for(BitsPerSec rate) const;

  const std::vector<Scene>& scenes() const { return scenes_; }
  // Action factor at media time `t`.
  double action_at(SimTime t) const;

 private:
  void generate_scenes();

  std::uint32_t id_;
  std::string title_;
  ClipKind kind_;
  SimTime duration_;
  std::vector<EncodingLevel> levels_;
  std::uint64_t seed_;
  std::vector<Scene> scenes_;
};

}  // namespace rv::media
