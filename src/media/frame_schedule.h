// Per-level frame schedules: the exact frames (timestamps, sizes, keyframes)
// the encoder produced for one SureStream level of a clip.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "media/clip.h"
#include "util/units.h"

namespace rv::media {

struct VideoFrame {
  std::int32_t index = 0;
  SimTime pts = 0;          // presentation timestamp within the clip
  std::int32_t bytes = 0;   // encoded size
  bool keyframe = false;
};

class FrameSchedule {
 public:
  // Generates the frame sequence for `level_index` of `clip`. Deterministic:
  // the same (clip, level) always yields the same schedule.
  static FrameSchedule generate(const Clip& clip, std::size_t level_index);

  std::span<const VideoFrame> frames() const { return frames_; }
  std::size_t size() const { return frames_.size(); }
  const VideoFrame& frame(std::size_t i) const { return frames_.at(i); }
  std::int64_t total_bytes() const { return total_bytes_; }
  SimTime duration() const { return duration_; }

  // Average encoded frame rate over the whole clip (frames / duration) —
  // what RealTracer reports as the clip's "encoded frame rate".
  double average_fps() const;
  // Average encoded video bandwidth (bits/sec).
  BitsPerSec average_video_bandwidth() const;

  // Index of the first frame with pts >= t (== size() when past the end).
  std::size_t first_frame_at(SimTime t) const;

 private:
  std::vector<VideoFrame> frames_;
  std::int64_t total_bytes_ = 0;
  SimTime duration_ = 0;
};

}  // namespace rv::media
