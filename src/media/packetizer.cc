#include "media/packetizer.h"

#include <algorithm>

#include "util/arena.h"
#include "util/check.h"

namespace rv::media {

std::vector<std::shared_ptr<MediaPacketMeta>> packetize_frame(
    const VideoFrame& frame, std::uint32_t clip_id, std::uint16_t level,
    std::int32_t max_payload, std::uint32_t& seq) {
  RV_CHECK_GT(max_payload, 0);
  RV_CHECK_GT(frame.bytes, 0);
  const std::int32_t frag_count =
      (frame.bytes + max_payload - 1) / max_payload;
  std::vector<std::shared_ptr<MediaPacketMeta>> out;
  out.reserve(static_cast<std::size_t>(frag_count));
  std::int32_t remaining = frame.bytes;
  for (std::int32_t i = 0; i < frag_count; ++i) {
    auto meta = util::arena_make_shared<MediaPacketMeta>();
    meta->clip_id = clip_id;
    meta->level = level;
    meta->kind = MediaKind::kVideo;
    meta->frame_index = frame.index;
    meta->pts = frame.pts;
    meta->keyframe = frame.keyframe;
    meta->frag_index = i;
    meta->frag_count = frag_count;
    meta->frame_bytes = frame.bytes;
    meta->payload_bytes = std::min(remaining, max_payload);
    meta->seq = seq++;
    remaining -= meta->payload_bytes;
    out.push_back(std::move(meta));
  }
  RV_CHECK_EQ(remaining, 0);
  return out;
}

std::optional<FrameAssembler::CompleteFrame> FrameAssembler::add(
    const MediaPacketMeta& meta) {
  if (meta.kind != MediaKind::kVideo && meta.kind != MediaKind::kRepair) {
    return std::nullopt;
  }
  RV_CHECK_GT(meta.frag_count, 0);
  RV_CHECK_LT(meta.frag_index, meta.frag_count);
  auto& partial = partial_[key_of(meta.level, meta.frame_index)];
  if (partial.got.empty()) {
    partial.got.assign(static_cast<std::size_t>(meta.frag_count), false);
    partial.pts = meta.pts;
    partial.frame_bytes = meta.frame_bytes;
    partial.keyframe = meta.keyframe;
    partial.level = meta.level;
  }
  const auto idx = static_cast<std::size_t>(meta.frag_index);
  if (idx >= partial.got.size() || partial.got[idx]) {
    return std::nullopt;  // duplicate or mismatched fragmentation
  }
  partial.got[idx] = true;
  ++partial.received;
  if (partial.received < static_cast<std::int32_t>(partial.got.size())) {
    return std::nullopt;
  }
  CompleteFrame done{meta.frame_index, partial.pts, partial.frame_bytes,
                     partial.keyframe, partial.level};
  partial_.erase(key_of(meta.level, meta.frame_index));
  return done;
}

std::size_t FrameAssembler::discard_before(SimTime horizon) {
  std::size_t dropped = 0;
  for (auto it = partial_.begin(); it != partial_.end();) {
    if (it->second.pts < horizon) {
      it = partial_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

void LossMonitor::on_packet(std::uint32_t seq) {
  ++interval_received_;
  ++total_received_;
  if (!have_any_) {
    have_any_ = true;
    highest_seq_ = seq;
    // Treat everything before the first packet as outside the window.
    interval_start_seq_ = seq > 0 ? seq - 1 : 0;
    return;
  }
  highest_seq_ = std::max(highest_seq_, seq);
}

LossMonitor::IntervalReport LossMonitor::take() {
  IntervalReport report;
  report.received = interval_received_;
  if (have_any_) {
    report.expected = static_cast<std::int64_t>(highest_seq_) -
                      static_cast<std::int64_t>(interval_start_seq_);
    interval_start_seq_ = highest_seq_;
  }
  // A reordering tail can make received exceed expected; clamp.
  report.expected = std::max(report.expected, report.received);
  interval_received_ = 0;
  return report;
}

}  // namespace rv::media
