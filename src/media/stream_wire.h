// Wire-level application payloads shared by the streaming server and client:
// RTSP text messages (over the control TCP connection), receiver feedback
// reports and NAK repair requests (over the data path).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.h"
#include "util/units.h"

namespace rv::media {

// One serialized RTSP message carried as a TCP chunk.
struct RtspTextMeta : net::PayloadMeta {
  explicit RtspTextMeta(std::string text) : text(std::move(text)) {}
  std::string text;
};

// Receiver report for the server's application-layer rate controller
// (RealSystem sends these on the RDT back-channel; §II.C).
struct FeedbackMeta : net::PayloadMeta {
  double loss_fraction = 0.0;
  BitsPerSec receive_rate = 0.0;   // goodput over the report interval
  SimTime echo_sent_at = 0;        // server timestamp being echoed
  SimTime echo_hold = 0;           // time the client held the echo
  std::int64_t total_received = 0;
};

inline constexpr std::int32_t kFeedbackPayloadBytes = 32;

// NAK: the client asks for specific media packets to be re-sent ("special
// packets that correct errors", §II.C).
struct RepairRequestMeta : net::PayloadMeta {
  std::vector<std::uint32_t> seqs;
};

inline constexpr std::int32_t kRepairRequestBytesPerSeq = 4;
inline constexpr std::int32_t kRepairRequestBaseBytes = 8;

}  // namespace rv::media
