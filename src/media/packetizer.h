// Media packetisation: frames → transport payloads, and reassembly.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "media/frame_schedule.h"
#include "net/packet.h"
#include "util/units.h"

namespace rv::media {

enum class MediaKind : std::uint8_t { kVideo, kAudio, kRepair, kEndOfStream };

// Application metadata carried by every media packet (over UDP datagrams or
// as TCP chunks).
struct MediaPacketMeta : net::PayloadMeta {
  std::uint32_t clip_id = 0;
  std::uint16_t level = 0;
  MediaKind kind = MediaKind::kVideo;
  std::int32_t frame_index = 0;
  SimTime pts = 0;
  bool keyframe = false;
  std::int32_t frag_index = 0;
  std::int32_t frag_count = 1;
  std::int32_t frame_bytes = 0;    // whole-frame size
  std::int32_t payload_bytes = 0;  // this fragment's size
  std::uint32_t seq = 0;           // per-session media packet sequence
  SimTime sent_at = 0;             // server clock at send (RTT echo)
};

// Fragments a frame into payloads of at most `max_payload` bytes. `seq` is
// the session-wide media packet counter, advanced per fragment.
std::vector<std::shared_ptr<MediaPacketMeta>> packetize_frame(
    const VideoFrame& frame, std::uint32_t clip_id, std::uint16_t level,
    std::int32_t max_payload, std::uint32_t& seq);

// Reassembles frames from (possibly lost, reordered or duplicated)
// fragments. One per streaming session, client side.
class FrameAssembler {
 public:
  struct CompleteFrame {
    std::int32_t frame_index;
    SimTime pts;
    std::int32_t bytes;
    bool keyframe;
    std::uint16_t level;
  };

  // Feeds one received fragment; returns the completed frame when this
  // fragment was the last missing piece (duplicates are ignored).
  std::optional<CompleteFrame> add(const MediaPacketMeta& meta);

  // Frames with pts below `horizon` can no longer play; drop partial state
  // and return how many incomplete frames were discarded.
  std::size_t discard_before(SimTime horizon);

  std::size_t partial_frames() const { return partial_.size(); }

 private:
  struct Partial {
    std::vector<bool> got;
    std::int32_t received = 0;
    SimTime pts = 0;
    std::int32_t frame_bytes = 0;
    bool keyframe = false;
    std::uint16_t level = 0;
  };
  // Keyed by (level, frame_index): frame indices restart per SureStream
  // level, so fragments from different levels must never be mixed.
  using Key = std::uint64_t;
  static Key key_of(std::uint16_t level, std::int32_t frame_index) {
    return (static_cast<Key>(level) << 32) |
           static_cast<Key>(static_cast<std::uint32_t>(frame_index));
  }
  std::map<Key, Partial> partial_;
};

// Watches the media packet sequence numbers to report loss per feedback
// interval (client side, feeds the server's rate controller).
class LossMonitor {
 public:
  // Records an arriving packet's sequence number.
  void on_packet(std::uint32_t seq);

  struct IntervalReport {
    std::int64_t received = 0;
    std::int64_t expected = 0;  // from sequence-number span
    double loss_fraction() const {
      return expected <= 0
                 ? 0.0
                 : static_cast<double>(expected - received) /
                       static_cast<double>(expected);
    }
  };
  // Returns counters since the previous take() and resets the interval.
  IntervalReport take();

  std::int64_t total_received() const { return total_received_; }

 private:
  bool have_any_ = false;
  std::uint32_t highest_seq_ = 0;
  std::uint32_t interval_start_seq_ = 0;  // highest seq at last take()
  std::int64_t interval_received_ = 0;
  std::int64_t total_received_ = 0;
};

}  // namespace rv::media
