#include "media/codec.h"

namespace rv::media {

AudioCodec audio_codec_for(AudioContent content, BitsPerSec total_bandwidth) {
  switch (content) {
    case AudioContent::kVoice:
      if (total_bandwidth < kbps(32)) return {"voice-5k", kbps(5)};
      if (total_bandwidth < kbps(100)) return {"voice-8.5k", kbps(8.5)};
      return {"voice-16k", kbps(16)};
    case AudioContent::kMusic:
      if (total_bandwidth < kbps(32)) return {"music-11k", kbps(11)};
      if (total_bandwidth < kbps(100)) return {"music-16k", kbps(16)};
      return {"music-32k", kbps(32)};
    case AudioContent::kStereoMusic:
      // Below ~32 Kbps total there is no room for stereo; RealProducer
      // falls back to mono music codecs.
      if (total_bandwidth < kbps(32)) return {"music-11k", kbps(11)};
      if (total_bandwidth < kbps(45)) return {"stereo-20k", kbps(20)};
      if (total_bandwidth < kbps(150)) return {"stereo-32k", kbps(32)};
      return {"stereo-44k", kbps(44)};
  }
  return {"voice-5k", kbps(5)};
}

const std::vector<TargetAudience>& target_audiences() {
  static const std::vector<TargetAudience> kTargets = {
      {"28k-modem", kbps(20), 8.0},
      {"56k-modem", kbps(34), 12.0},
      {"single-isdn", kbps(45), 15.0},
      {"dual-isdn", kbps(80), 15.0},
      {"corporate-lan", kbps(150), 20.0},
      {"dsl-256k", kbps(225), 22.0},
      {"dsl-384k", kbps(350), 26.0},
      {"dsl-512k", kbps(450), 30.0},
  };
  return kTargets;
}

EncodingLevel make_level(const TargetAudience& target, AudioContent content) {
  EncodingLevel level;
  level.total_bandwidth = target.total_bandwidth;
  level.audio_bandwidth = audio_codec_for(content, target.total_bandwidth).rate;
  level.encoded_fps = target.encoded_fps;
  // Keyframe roughly every 4 seconds of video.
  level.keyframe_interval =
      static_cast<int>(target.encoded_fps * 4.0);
  if (level.keyframe_interval < 4) level.keyframe_interval = 4;
  return level;
}

}  // namespace rv::media
