#include "media/catalog.h"

#include <algorithm>

#include "util/check.h"
#include "util/rng.h"
#include "util/strings.h"

namespace rv::media {
namespace {

struct KindWeights {
  double news;
  double sports;
  double music;
  double trailer;
};

KindWeights weights_for(SiteProfile profile) {
  switch (profile) {
    case SiteProfile::kNewsBroadcaster:
      return {0.70, 0.10, 0.05, 0.15};
    case SiteProfile::kSportsNetwork:
      return {0.15, 0.65, 0.05, 0.15};
    case SiteProfile::kEntertainment:
      return {0.10, 0.10, 0.45, 0.35};
  }
  return {0.25, 0.25, 0.25, 0.25};
}

ClipKind pick_kind(util::Rng& rng, SiteProfile profile) {
  const KindWeights w = weights_for(profile);
  const double weights[] = {w.news, w.sports, w.music, w.trailer};
  switch (rng.weighted_index(weights)) {
    case 0:
      return ClipKind::kNews;
    case 1:
      return ClipKind::kSports;
    case 2:
      return ClipKind::kMusicVideo;
    default:
      return ClipKind::kMovieTrailer;
  }
}

AudioContent audio_for(ClipKind kind) {
  switch (kind) {
    case ClipKind::kNews:
      return AudioContent::kVoice;
    case ClipKind::kSports:
      return AudioContent::kVoice;
    case ClipKind::kMusicVideo:
      return AudioContent::kStereoMusic;
    case ClipKind::kMovieTrailer:
      return AudioContent::kMusic;
  }
  return AudioContent::kVoice;
}

// Builds the SureStream ladder for one clip. In 2001 most content was
// encoded for modem audiences, with SureStream adding broadband levels on
// better-funded sites.
std::vector<EncodingLevel> pick_levels(util::Rng& rng, ClipKind kind) {
  const auto& targets = target_audiences();
  const AudioContent audio = audio_for(kind);
  std::vector<EncodingLevel> levels;
  const double r = rng.uniform();
  if (r < 0.10) {
    // Single-rate modem clip (20K or 34K).
    levels.push_back(make_level(targets[rng.bernoulli(0.5) ? 0 : 1], audio));
  } else if (r < 0.35) {
    // Modem SureStream: 20/34/45/80.
    for (std::size_t i = 0; i < 4; ++i) {
      levels.push_back(make_level(targets[i], audio));
    }
  } else if (r < 0.75) {
    // Broadband SureStream: 34/80/150/225 — providers targeting broadband
    // audiences set the "56k modem" stream as the floor.
    for (const std::size_t i : {1u, 3u, 4u, 5u}) {
      levels.push_back(make_level(targets[i], audio));
    }
  } else {
    // Full ladder, 34K floor, up to 450K.
    for (std::size_t i = 1; i < targets.size(); ++i) {
      levels.push_back(make_level(targets[i], audio));
    }
  }
  return levels;
}

SimTime pick_duration(util::Rng& rng, ClipKind kind) {
  // Clip lengths of the period: trailers ~1-2.5 min, news items 1-5 min,
  // music videos 3-5 min. (RealTracer plays 1 minute by default.)
  double lo = 60.0;
  double hi = 240.0;
  switch (kind) {
    case ClipKind::kMovieTrailer:
      lo = 60.0;
      hi = 150.0;
      break;
    case ClipKind::kMusicVideo:
      lo = 180.0;
      hi = 300.0;
      break;
    case ClipKind::kNews:
      lo = 60.0;
      hi = 300.0;
      break;
    case ClipKind::kSports:
      lo = 90.0;
      hi = 300.0;
      break;
  }
  return seconds_to_sim(rng.uniform(lo, hi));
}

}  // namespace

Catalog::Catalog(const CatalogSpec& spec,
                 const std::vector<SiteProfile>& site_profiles) {
  RV_CHECK(!site_profiles.empty());
  RV_CHECK_GT(spec.clips_per_site, 0);
  util::Rng rng(spec.seed ^ 0xCA7A106ull);
  std::vector<util::Rng> site_rngs;
  for (std::size_t site = 0; site < site_profiles.size(); ++site) {
    site_rngs.push_back(rng.fork(site));
  }
  // Interleave the playlist across sites (slot 0 of every site, then slot 1,
  // ...) so a user who plays only a playlist prefix still samples every
  // server — as the study's playlist mixed sites for variety.
  for (int slot = 0; slot < spec.clips_per_site; ++slot) {
    for (std::size_t site = 0; site < site_profiles.size(); ++site) {
      if (clips_.size() >= static_cast<std::size_t>(spec.playlist_size)) {
        break;
      }
      util::Rng& site_rng = site_rngs[site];
      const ClipKind kind = pick_kind(site_rng, site_profiles[site]);
      const auto id = static_cast<std::uint32_t>(
          site * 100 + static_cast<std::size_t>(slot));
      clips_.emplace_back(
          id,
          util::str_cat("site", site, "/", clip_kind_name(kind), "-", slot),
          kind, pick_duration(site_rng, kind), pick_levels(site_rng, kind),
          site_rng.next_u64());
    }
  }
}

std::vector<std::size_t> Catalog::clips_of_site(std::size_t site) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < clips_.size(); ++i) {
    if (site_of(clips_[i].id()) == site) out.push_back(i);
  }
  return out;
}

}  // namespace rv::media
