// Audio codecs and SureStream encoding levels.
//
// §II.C of the paper: "A portion of a RealVideo clip's bandwidth first goes
// toward the audio, leaving the remainder of the track for the video" — e.g.
// a 20 Kbps clip with a 5 Kbps voice codec leaves 15 Kbps for video. The
// codec table and the per-target-bandwidth presets follow the RealProducer 8
// user's guide the paper cites [Rea00a].
#pragma once

#include <string_view>
#include <vector>

#include "util/units.h"

namespace rv::media {

enum class AudioContent { kVoice, kMusic, kStereoMusic };

struct AudioCodec {
  std::string_view name;
  BitsPerSec rate;
};

// The codec RealProducer would pick for the given content type within a
// total clip bandwidth budget.
AudioCodec audio_codec_for(AudioContent content, BitsPerSec total_bandwidth);

// One SureStream encoding of a clip.
struct EncodingLevel {
  BitsPerSec total_bandwidth = 0;  // audio + video
  BitsPerSec audio_bandwidth = 0;
  double encoded_fps = 15.0;       // max frame rate at this level
  int keyframe_interval = 60;      // frames between keyframes

  BitsPerSec video_bandwidth() const {
    return total_bandwidth - audio_bandwidth;
  }
};

// RealProducer 8 target-audience presets (Kbps): 20 (28.8 modem), 34 (56k
// modem), 45 (single ISDN), 80 (dual ISDN), 150 (corporate LAN), 225
// (256k DSL/cable), 350 (384k DSL/cable), 450 (512k DSL/cable).
struct TargetAudience {
  std::string_view name;
  BitsPerSec total_bandwidth;
  double encoded_fps;
};

const std::vector<TargetAudience>& target_audiences();

// Builds an encoding level for a target audience and audio content type.
EncodingLevel make_level(const TargetAudience& target, AudioContent content);

}  // namespace rv::media
