#include "media/frame_schedule.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace rv::media {
namespace {

// Keyframes carry several times the bits of a delta frame.
constexpr double kKeyframeFactor = 3.0;
// Lognormal sigma for frame-size variation.
constexpr double kSizeSigma = 0.30;

}  // namespace

FrameSchedule FrameSchedule::generate(const Clip& clip,
                                      std::size_t level_index) {
  const EncodingLevel& level = clip.level(level_index);
  FrameSchedule sched;
  sched.duration_ = clip.duration();

  util::Rng rng(clip.seed() ^ (0xF00Du + level_index));
  // Compensate the lognormal mean so the noise is rate-neutral.
  const double lognormal_mean_fix = std::exp(-kSizeSigma * kSizeSigma / 2.0);
  const int kf_interval = std::max(level.keyframe_interval, 2);
  // Scale all frames down so keyframes don't push the level over its rate:
  // with one keyframe (factor K) every N frames, mean factor = (N-1+K)/N.
  const double kf_mean =
      (static_cast<double>(kf_interval - 1) + kKeyframeFactor) /
      static_cast<double>(kf_interval);

  SimTime t = 0;
  std::int32_t index = 0;
  while (t < clip.duration()) {
    const double action = clip.action_at(t);
    const double fps = std::max(2.0, level.encoded_fps * action);
    const SimTime interval = seconds_to_sim(1.0 / fps);
    VideoFrame frame;
    frame.index = index;
    frame.pts = t;
    frame.keyframe = (index % kf_interval) == 0;
    // Bits for this frame: the video track's share of the inter-frame gap.
    const double base_bytes =
        level.video_bandwidth() * to_seconds(interval) / 8.0 / kf_mean;
    const double factor = (frame.keyframe ? kKeyframeFactor : 1.0) *
                          rng.lognormal(0.0, kSizeSigma) * lognormal_mean_fix;
    frame.bytes =
        std::max<std::int32_t>(32, static_cast<std::int32_t>(
                                       std::round(base_bytes * factor)));
    sched.frames_.push_back(frame);
    sched.total_bytes_ += frame.bytes;
    t += interval;
    ++index;
  }
  RV_CHECK(!sched.frames_.empty());
  return sched;
}

double FrameSchedule::average_fps() const {
  RV_CHECK(!frames_.empty());
  return static_cast<double>(frames_.size()) / to_seconds(duration_);
}

BitsPerSec FrameSchedule::average_video_bandwidth() const {
  return static_cast<double>(total_bytes_) * 8.0 / to_seconds(duration_);
}

std::size_t FrameSchedule::first_frame_at(SimTime t) const {
  const auto it = std::lower_bound(
      frames_.begin(), frames_.end(), t,
      [](const VideoFrame& f, SimTime value) { return f.pts < value; });
  return static_cast<std::size_t>(it - frames_.begin());
}

}  // namespace rv::media
