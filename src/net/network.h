// The network: a graph of nodes and links with static shortest-path routing.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/link.h"
#include "net/node.h"
#include "net/packet.h"
#include "net/packet_pool.h"
#include "sim/simulator.h"

namespace rv::net {

class Network {
 public:
  explicit Network(sim::Simulator& sim) : sim_(sim) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  sim::Simulator& simulator() { return sim_; }

  NodeId add_node(std::string name);
  // Adds a symmetric full-duplex link. Queue capacity defaults to roughly a
  // bandwidth-delay product floor of 32 KiB if not given.
  Link& add_link(NodeId a, NodeId b, BitsPerSec rate, SimTime prop_delay,
                 std::int64_t queue_capacity_bytes = 0);
  // Full control over the queue policy (drop-tail or RED).
  Link& add_link(NodeId a, NodeId b, BitsPerSec rate, SimTime prop_delay,
                 QueueConfig queue);

  Node& node(NodeId id);
  const Node& node(NodeId id) const;
  std::size_t node_count() const { return nodes_.size(); }
  std::size_t link_count() const { return links_.size(); }
  Link& link(std::size_t index) { return *links_[index]; }
  const Link& link(std::size_t index) const { return *links_[index]; }

  // Recomputes all routing tables (Dijkstra, cost = propagation delay plus
  // MTU serialisation time). Must be called after topology changes and
  // before traffic flows.
  void compute_routes();

  // Tears the topology down (nodes, links, tap, routes) for rebuilding in
  // place while keeping the packet pool's slot storage warm. Packets still
  // queued on links are released back to the pool as the links are
  // destroyed. Reset the owning Simulator first: pending delivery events
  // hold pool handles, and destroying them while the pool core is alive
  // returns those slots for the next topology to reuse.
  void reset();

  // Injects a packet at its source node (local stack "transmit"). The
  // packet moves into a recycled pool slot and travels the forwarding path
  // (queues, delivery events) without further copies.
  void send(Packet packet);

  // Forwarding-path slot recycler; exposed for pool-behaviour tests.
  const PacketPool& packet_pool() const { return pool_; }

  // Observation tap (mmdump-style [MCCS00]): called for every packet as it
  // is delivered off a link, with the receiving node. Passive — the packet
  // continues unmodified. One tap at a time; pass nullptr to clear.
  using DeliveryTap =
      std::function<void(const Packet& packet, NodeId at_node, SimTime when)>;
  void set_delivery_tap(DeliveryTap tap) { tap_ = std::move(tap); }

 private:
  sim::Simulator& sim_;
  PacketPool pool_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  DeliveryTap tap_;
  bool routes_ready_ = false;
};

}  // namespace rv::net
