#include "net/network.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <utility>

#include "util/check.h"

namespace rv::net {
namespace {

constexpr std::int64_t kMtuBytes = 1500;

}  // namespace

NodeId Network::add_node(std::string name) {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(id, std::move(name)));
  routes_ready_ = false;
  return id;
}

Link& Network::add_link(NodeId a, NodeId b, BitsPerSec rate,
                        SimTime prop_delay,
                        std::int64_t queue_capacity_bytes) {
  QueueConfig queue;
  queue.capacity_bytes = queue_capacity_bytes;
  return add_link(a, b, rate, prop_delay, queue);
}

Link& Network::add_link(NodeId a, NodeId b, BitsPerSec rate,
                        SimTime prop_delay, QueueConfig queue) {
  RV_CHECK_LT(a, nodes_.size());
  RV_CHECK_LT(b, nodes_.size());
  RV_CHECK_NE(a, b);
  if (queue.capacity_bytes <= 0) {
    // Default: max(BDP over a 200 ms horizon, 32 KiB) — a plausible
    // router-buffer sizing rule for the period.
    const auto bdp =
        static_cast<std::int64_t>(rate * 0.200 / 8.0);
    queue.capacity_bytes = std::max<std::int64_t>(bdp, 32 * 1024);
  }
  links_.push_back(
      std::make_unique<Link>(sim_, a, b, rate, prop_delay, queue));
  Link& link = *links_.back();
  // Arriving packets are handled by the receiving node (after the optional
  // observation tap sees them).
  const auto deliver_at = [this](NodeId id, PooledPacket p) {
    if (tap_) tap_(*p, id, sim_.now());
    nodes_[id]->handle(std::move(p));
  };
  link.direction_from(a).set_deliver(
      [deliver_at, id = b](PooledPacket p) { deliver_at(id, std::move(p)); });
  link.direction_from(b).set_deliver(
      [deliver_at, id = a](PooledPacket p) { deliver_at(id, std::move(p)); });
  routes_ready_ = false;
  return link;
}

Node& Network::node(NodeId id) {
  RV_CHECK_LT(id, nodes_.size());
  return *nodes_[id];
}

const Node& Network::node(NodeId id) const {
  RV_CHECK_LT(id, nodes_.size());
  return *nodes_[id];
}

void Network::compute_routes() {
  // Adjacency: node -> (neighbor, link index, cost).
  struct Edge {
    NodeId to;
    std::size_t link;
    SimTime cost;
  };
  std::vector<std::vector<Edge>> adj(nodes_.size());
  for (std::size_t li = 0; li < links_.size(); ++li) {
    const Link& l = *links_[li];
    const auto cost_from = [&](NodeId from) {
      const LinkDirection& d = l.direction_from(from);
      return d.prop_delay() + transmission_time(kMtuBytes, d.rate());
    };
    adj[l.a()].push_back({l.b(), li, cost_from(l.a())});
    adj[l.b()].push_back({l.a(), li, cost_from(l.b())});
  }

  constexpr SimTime kInf = std::numeric_limits<SimTime>::max();
  for (NodeId src = 0; src < nodes_.size(); ++src) {
    std::vector<SimTime> dist(nodes_.size(), kInf);
    // first_hop[v] = link to take out of src on the shortest path to v.
    std::vector<std::size_t> first_hop(nodes_.size(),
                                       std::numeric_limits<std::size_t>::max());
    using HeapItem = std::pair<SimTime, NodeId>;
    std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
    dist[src] = 0;
    heap.push({0, src});
    while (!heap.empty()) {
      const auto [d, u] = heap.top();
      heap.pop();
      if (d > dist[u]) continue;
      for (const Edge& e : adj[u]) {
        const SimTime nd = d + e.cost;
        if (nd < dist[e.to]) {
          dist[e.to] = nd;
          first_hop[e.to] = (u == src) ? e.link : first_hop[u];
          heap.push({nd, e.to});
        }
      }
    }
    for (NodeId dst = 0; dst < nodes_.size(); ++dst) {
      if (dst == src || dist[dst] == kInf) continue;
      Link& l = *links_[first_hop[dst]];
      nodes_[src]->set_route(dst, &l.direction_from(src));
    }
  }
  routes_ready_ = true;
}

void Network::reset() {
  links_.clear();
  nodes_.clear();
  tap_ = nullptr;
  routes_ready_ = false;
}

void Network::send(Packet packet) {
  RV_CHECK(routes_ready_) << "compute_routes() before sending";
  RV_CHECK_LT(packet.src, nodes_.size());
  RV_CHECK_LT(packet.dst, nodes_.size());
  const NodeId src = packet.src;
  nodes_[src]->handle(pool_.acquire(std::move(packet)));
}

}  // namespace rv::net
