// The simulated packet.
//
// Packets are value types: cheap to copy (application payload is carried as a
// shared_ptr to immutable metadata rather than as bytes — this is a
// simulator, so only sizes travel the wire, not content). The short header
// lists (SACK blocks, chunk records) use inline SmallVec storage, so a
// typical packet owns no heap memory and moves by plain member copy.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "net/address.h"
#include "util/small_vec.h"
#include "util/units.h"

namespace rv::net {

// Base for application-level payload metadata attached to packets (media
// packet descriptors, receiver feedback reports, RTSP messages, ...).
struct PayloadMeta {
  virtual ~PayloadMeta() = default;
};

// TCP header fields used by the simulation.
struct TcpHeader {
  std::uint64_t seq = 0;  // first byte carried by this segment
  std::uint64_t ack = 0;  // next byte expected by the sender of this packet
  bool syn = false;
  bool ack_flag = false;
  bool fin = false;
  std::int64_t window_bytes = 0;  // advertised receive window
  // SACK option (RFC 2018): up to 3 [start, end) blocks of received
  // out-of-order data. Empty when the option is off or nothing is queued.
  // Inline capacity matches the RFC's 3-block cap, so building the option
  // never allocates.
  util::SmallVec<std::pair<std::uint64_t, std::uint64_t>, 3> sack_blocks;
};

// Marks an application chunk (e.g. a video frame fragment handed to TCP as
// one write) that *ends* within this segment; the receiver uses these to
// re-frame the byte stream.
struct TcpChunkRecord {
  std::uint64_t end_offset = 0;  // stream offset one past the chunk's last byte
  std::shared_ptr<const PayloadMeta> meta;
};

inline constexpr std::int32_t kTcpHeaderBytes = 40;  // IP + TCP
inline constexpr std::int32_t kUdpHeaderBytes = 28;  // IP + UDP

struct Packet {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Port src_port = 0;
  Port dst_port = 0;
  Protocol proto = Protocol::kUdp;
  std::int32_t size_bytes = 0;  // total on-wire size, headers included

  TcpHeader tcp;  // valid when proto == kTcp
  // Chunk boundaries in this segment. MSS-sized writes end at most one chunk
  // per segment; inline room for 2 also covers a trailing sub-MSS chunk.
  util::SmallVec<TcpChunkRecord, 2> chunks;
  std::shared_ptr<const PayloadMeta> meta;  // app payload descriptor

  std::int32_t payload_bytes() const {
    const std::int32_t hdr =
        proto == Protocol::kTcp ? kTcpHeaderBytes : kUdpHeaderBytes;
    return size_bytes > hdr ? size_bytes - hdr : 0;
  }
};

}  // namespace rv::net
