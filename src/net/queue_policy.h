// Queue management policies for link transmission queues.
//
// Drop-tail is the 2001 Internet default and what the study's paths use;
// RED (Floyd & Jacobson) is the active-queue-management alternative that the
// paper's congestion-collapse references [FF98] advocate — provided here so
// the ablation benches can ask "would RED have changed the findings?".
#pragma once

#include <cstdint>

#include "util/units.h"

namespace rv::net {

enum class QueuePolicy : std::uint8_t { kDropTail, kRed };

struct QueueConfig {
  QueuePolicy policy = QueuePolicy::kDropTail;
  std::int64_t capacity_bytes = 0;  // 0 = Network default sizing
  // Batched drain: when the transmitter goes idle it schedules the entire
  // queued burst analytically (one delivery event per packet plus a single
  // batch-end event) instead of a tx-done event per packet. Timing and drop
  // decisions are exactly the per-packet path's (differential-tested under
  // drop-tail and RED); links with a delay-jitter hook fall back to
  // per-packet transparently, since jitter draws must happen at each tx
  // start. Default-off because batching is not *fingerprint*-exact:
  // pre-scheduling assigns the kernel's {time, seq} tie-break sequence
  // numbers at batch start instead of incrementally between other actors'
  // schedules, so an unrelated event landing on the exact timestamp of a
  // delivery executes in a different order — same times, same drops,
  // different same-tick interleaving, and the committed study md5 moves.
  // Opt in for throughput-oriented runs; BM_LinkBurstForward/{0,1} is the
  // ablation.
  bool batch = false;
  // RED parameters (used when policy == kRed), as fractions of capacity.
  double red_min_threshold = 0.25;
  double red_max_threshold = 0.75;
  double red_max_drop_probability = 0.10;
  double red_weight = 0.002;  // EWMA weight for the average queue size
  std::uint64_t red_seed = 0x9E3779B97F4A7C15ULL;
};

// Random Early Detection state for one link direction.
class RedState {
 public:
  RedState(const QueueConfig& config, std::int64_t capacity_bytes);

  // Decides whether to drop an arriving packet given the instantaneous
  // queue occupancy (bytes). Updates the averaged queue size.
  bool should_drop(std::int64_t queued_bytes, std::int32_t packet_bytes);

  double average_queue_bytes() const { return avg_; }

 private:
  double min_bytes_;
  double max_bytes_;
  double max_p_;
  double weight_;
  double avg_ = 0.0;
  int count_since_drop_ = -1;
  std::uint64_t rng_state_;

  double next_uniform();
};

}  // namespace rv::net
