// Network nodes: routers and hosts.
//
// A node forwards packets via its static routing table; packets addressed to
// the node itself are handed to the registered local sink (the transport
// mux). Packets with no route or no sink are dropped and counted.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "net/link.h"
#include "net/packet.h"
#include "net/packet_pool.h"

namespace rv::net {

class Node {
 public:
  Node(NodeId id, std::string name) : id_(id), name_(std::move(name)) {}

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }

  // Routing: the outgoing link direction that reaches `dst`.
  void set_route(NodeId dst, LinkDirection* out);
  LinkDirection* route_to(NodeId dst) const;

  // Local delivery sink for packets addressed to this node.
  void set_local_sink(std::function<void(Packet)> sink) {
    local_sink_ = std::move(sink);
  }

  // Entry point for packets arriving at (or originated by) this node. The
  // pool slot is forwarded onward, or released after the payload moves into
  // the local sink.
  void handle(PooledPacket packet);

  std::uint64_t no_route_drops() const { return no_route_drops_; }
  std::uint64_t sink_drops() const { return sink_drops_; }

 private:
  NodeId id_;
  std::string name_;
  std::unordered_map<NodeId, LinkDirection*> routes_;
  std::function<void(Packet)> local_sink_;
  std::uint64_t no_route_drops_ = 0;
  std::uint64_t sink_drops_ = 0;
};

}  // namespace rv::net
