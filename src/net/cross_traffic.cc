#include "net/cross_traffic.h"

#include <cmath>
#include <utility>

#include "util/check.h"

namespace rv::net {

CrossTrafficSource::CrossTrafficSource(Network& network, NodeId src,
                                       NodeId dst,
                                       const CrossTrafficConfig& config,
                                       util::Rng rng)
    : network_(network),
      src_(src),
      dst_(dst),
      config_(config),
      rng_(std::move(rng)) {
  RV_CHECK_GT(config.packet_bytes, 0);
}

void CrossTrafficSource::start() {
  if (config_.burst_rate <= 0.0) return;  // silent source
  auto& sim = network_.simulator();
  // Start at a random point in the idle period so sources don't synchronise.
  const auto first_delay = static_cast<SimTime>(
      rng_.exponential(to_seconds(config_.mean_off) * 1e6));
  sim.schedule_in(first_delay, [this] { begin_burst(); });
}

void CrossTrafficSource::begin_burst() {
  auto& sim = network_.simulator();
  SimTime on_usec = 0;
  const double mean_usec = to_seconds(config_.mean_on) * 1e6;
  if (config_.pareto_on_shape > 1.0) {
    // Pareto with shape a and mean m has scale x_m = m (a-1)/a;
    // sample x_m * U^(-1/a).
    const double a = config_.pareto_on_shape;
    const double scale = mean_usec * (a - 1.0) / a;
    const double u = 1.0 - rng_.uniform();  // (0, 1]
    on_usec = static_cast<SimTime>(scale * std::pow(u, -1.0 / a));
  } else {
    on_usec = static_cast<SimTime>(rng_.exponential(mean_usec));
  }
  burst_end_ = sim.now() + on_usec;
  emit_packet();
}

void CrossTrafficSource::emit_packet() {
  auto& sim = network_.simulator();
  if (sim.now() >= burst_end_) {
    const auto off_usec = static_cast<SimTime>(
        rng_.exponential(to_seconds(config_.mean_off) * 1e6));
    sim.schedule_in(off_usec, [this] { begin_burst(); });
    return;
  }
  Packet p;
  p.src = src_;
  p.dst = dst_;
  p.proto = Protocol::kUdp;
  p.size_bytes = config_.packet_bytes;
  network_.send(std::move(p));
  ++packets_emitted_;

  // Next packet after the serialisation interval at burst_rate, jittered a
  // little so packet trains don't phase-lock with the foreground flow.
  const SimTime gap =
      transmission_time(config_.packet_bytes, config_.burst_rate);
  const auto jitter = static_cast<SimTime>(
      rng_.uniform(0.0, 0.2 * static_cast<double>(gap)));
  sim.schedule_in(gap + jitter, [this] { emit_packet(); });
}

}  // namespace rv::net
