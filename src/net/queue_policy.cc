#include "net/queue_policy.h"

#include "util/check.h"

namespace rv::net {

RedState::RedState(const QueueConfig& config, std::int64_t capacity_bytes)
    : min_bytes_(config.red_min_threshold *
                 static_cast<double>(capacity_bytes)),
      max_bytes_(config.red_max_threshold *
                 static_cast<double>(capacity_bytes)),
      max_p_(config.red_max_drop_probability),
      weight_(config.red_weight),
      rng_state_(config.red_seed) {
  RV_CHECK_GT(capacity_bytes, 0);
  RV_CHECK_LT(min_bytes_, max_bytes_);
  RV_CHECK_GT(max_p_, 0.0);
}

double RedState::next_uniform() {
  // SplitMix64 — cheap, state-local, deterministic.
  rng_state_ += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = rng_state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z = z ^ (z >> 31);
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

bool RedState::should_drop(std::int64_t queued_bytes,
                           std::int32_t /*packet_bytes*/) {
  // EWMA of the queue size (classic RED, sampled at arrivals).
  avg_ = (1.0 - weight_) * avg_ +
         weight_ * static_cast<double>(queued_bytes);
  if (avg_ < min_bytes_) {
    count_since_drop_ = -1;
    return false;
  }
  if (avg_ >= max_bytes_) {
    count_since_drop_ = 0;
    return true;
  }
  // Between thresholds: drop with probability growing linearly, spread out
  // by the inter-drop count (Floyd & Jacobson's p_a correction).
  ++count_since_drop_;
  const double p_b =
      max_p_ * (avg_ - min_bytes_) / (max_bytes_ - min_bytes_);
  const double denom = 1.0 - static_cast<double>(count_since_drop_) * p_b;
  const double p_a = denom <= 0.0 ? 1.0 : p_b / denom;
  if (next_uniform() < p_a) {
    count_since_drop_ = 0;
    return true;
  }
  return false;
}

}  // namespace rv::net
