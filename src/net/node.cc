#include "net/node.h"

#include <utility>

#include "util/check.h"

namespace rv::net {

void Node::set_route(NodeId dst, LinkDirection* out) {
  RV_CHECK(out != nullptr);
  routes_[dst] = out;
}

LinkDirection* Node::route_to(NodeId dst) const {
  const auto it = routes_.find(dst);
  return it == routes_.end() ? nullptr : it->second;
}

void Node::handle(PooledPacket packet) {
  if (packet->dst == id_) {
    if (local_sink_) {
      // The payload moves out of the slot; the slot itself returns to the
      // pool when `packet` goes out of scope.
      local_sink_(std::move(*packet));
    } else {
      // Cross-traffic sinks and closed ports land here by design.
      ++sink_drops_;
    }
    return;
  }
  LinkDirection* out = route_to(packet->dst);
  if (out == nullptr) {
    ++no_route_drops_;
    return;
  }
  out->send(std::move(packet));
}

}  // namespace rv::net
