// Background cross-traffic: exponential on/off UDP packet trains between two
// adjacent nodes, loading the shared link so foreground flows see realistic
// queueing delay and loss.
//
// During an ON burst the source emits fixed-size packets at `burst_rate`;
// burst and idle durations are exponentially distributed. The long-run
// offered load is burst_rate * mean_on / (mean_on + mean_off).
#pragma once

#include <cstdint>

#include "net/network.h"
#include "util/rng.h"
#include "util/units.h"

namespace rv::net {

struct CrossTrafficConfig {
  BitsPerSec burst_rate = 0;      // send rate while ON
  SimTime mean_on = msec(500);    // mean burst duration
  SimTime mean_off = msec(500);   // mean idle duration
  std::int32_t packet_bytes = 1000;
  // 0 = exponential ON durations (Markovian). > 1 = Pareto-distributed ON
  // durations with this shape (heavy-tailed bursts, the self-similar
  // traffic shape of the period's measurement literature); the mean stays
  // mean_on.
  double pareto_on_shape = 0.0;
};

class CrossTrafficSource {
 public:
  // Traffic flows src -> dst (they should be adjacent so that exactly the
  // link between them is loaded). The sink node drops the packets.
  CrossTrafficSource(Network& network, NodeId src, NodeId dst,
                     const CrossTrafficConfig& config, util::Rng rng);

  // Starts the on/off process; runs until the simulation ends.
  void start();

  std::uint64_t packets_emitted() const { return packets_emitted_; }

 private:
  void begin_burst();
  void emit_packet();

  Network& network_;
  NodeId src_;
  NodeId dst_;
  CrossTrafficConfig config_;
  util::Rng rng_;
  SimTime burst_end_ = 0;
  std::uint64_t packets_emitted_ = 0;
};

}  // namespace rv::net
