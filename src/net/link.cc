#include "net/link.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"
#include "util/check.h"

namespace rv::net {

LinkDirection::LinkDirection(sim::Simulator& sim, BitsPerSec rate,
                             SimTime prop_delay, const QueueConfig& queue)
    : sim_(sim),
      rate_(rate),
      prop_delay_(prop_delay),
      queue_capacity_bytes_(queue.capacity_bytes),
      batch_enabled_(queue.batch) {
  RV_CHECK_GT(rate, 0.0);
  RV_CHECK_GE(prop_delay, 0);
  RV_CHECK_GT(queue.capacity_bytes, 0);
  if (queue.policy == QueuePolicy::kRed) {
    red_ = std::make_unique<RedState>(queue, queue.capacity_bytes);
  }
}

std::int64_t LinkDirection::queued_bytes() const {
  // Advance the drain cursor over batched packets whose transmission has
  // started by now — the moment the per-packet kernel would have popped
  // them from the queue.
  const SimTime now = sim_.now();
  while (drain_cursor_ < drain_start_.size() &&
         drain_start_[drain_cursor_] <= now) {
    drain_bytes_ -= drain_size_[drain_cursor_];
    ++drain_cursor_;
  }
  return queued_bytes_ + drain_bytes_;
}

void LinkDirection::send(PooledPacket packet) {
  RV_CHECK_GT(packet->size_bytes, 0);
  obs::count(obs::Counter::kPacketsEnqueued);
  if (fault_ != nullptr && fault_(*packet, sim_.now())) {
    ++stats_.packets_faulted;
    ++stats_.packets_dropped;
    obs::count(obs::Counter::kPacketsCorrupted);
    return;
  }
  if (busy_) {
    // RED drops probabilistically before the queue is full; drop-tail (and
    // RED's hard limit) drop on overflow. Occupancy counts batched
    // not-yet-started packets, so decisions match the per-packet kernel.
    const std::int64_t occupancy = queued_bytes();
    if (red_ != nullptr &&
        red_->should_drop(occupancy, packet->size_bytes)) {
      ++stats_.packets_dropped;
      obs::count(obs::Counter::kPacketsDropped);
      return;
    }
    if (occupancy + packet->size_bytes > queue_capacity_bytes_) {
      ++stats_.packets_dropped;
      obs::count(obs::Counter::kPacketsDropped);
      return;
    }
    queued_bytes_ += packet->size_bytes;
    queue_.push_back(std::move(packet));
    return;
  }
  // Jitter draws happen at each transmission start, so jittered links keep
  // the per-packet path (the draw times — and thus the RNG stream — must
  // not move).
  if (!batch_enabled_ || jitter_ != nullptr) {
    start_transmission(std::move(packet));
    return;
  }
  busy_ = true;
  drain_batch(std::move(packet));
}

void LinkDirection::drain_batch(PooledPacket first) {
  // Schedule the whole backlog analytically: packet i starts when packet
  // i-1 finishes serialising, and delivers prop_delay later. One delivery
  // event per packet (times strictly ordered by cumulative tx) plus a
  // single batch-end event replace the per-packet tx-done chain. `first`
  // is the packet that found the link idle; with it in flight the drain
  // entries cover only the queued remainder, whose starts lie in the
  // future.
  drain_start_.clear();
  drain_size_.clear();
  drain_cursor_ = 0;
  drain_bytes_ = 0;
  SimTime t = sim_.now();
  const auto transmit = [&](PooledPacket p, bool record) {
    const SimTime tx = transmission_time(p->size_bytes, rate_);
    stats_.busy_time += tx;
    ++stats_.packets_sent;
    stats_.bytes_sent += static_cast<std::uint64_t>(p->size_bytes);
    if (record) {
      drain_start_.push_back(t);
      drain_bytes_ += p->size_bytes;
      drain_size_.push_back(p->size_bytes);
    }
    const SimTime deliver_at = t + tx + prop_delay_;
    sim_.schedule_at(deliver_at, [this, p = std::move(p)]() mutable {
      if (deliver_) deliver_(std::move(p));
    });
    t += tx;
  };
  transmit(std::move(first), false);
  while (!queue_.empty()) {
    PooledPacket next = std::move(queue_.front());
    queue_.pop_front();
    queued_bytes_ -= next->size_bytes;
    transmit(std::move(next), true);
  }
  RV_CHECK_GE(queued_bytes_, 0);
  sim_.schedule_at(t, [this] { batch_done(); });
}

void LinkDirection::batch_done() {
  // Every drain entry has started by now; settle the lazy accounting.
  drain_start_.clear();
  drain_size_.clear();
  drain_cursor_ = 0;
  drain_bytes_ = 0;
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  // Arrivals queued during the batch: drain them as the next batch,
  // starting exactly when the per-packet kernel would have popped the
  // first of them.
  PooledPacket next = std::move(queue_.front());
  queue_.pop_front();
  queued_bytes_ -= next->size_bytes;
  RV_CHECK_GE(queued_bytes_, 0);
  drain_batch(std::move(next));
}

void LinkDirection::start_transmission(PooledPacket packet) {
  busy_ = true;
  const SimTime tx = transmission_time(packet->size_bytes, rate_);
  stats_.busy_time += tx;
  ++stats_.packets_sent;
  stats_.bytes_sent += static_cast<std::uint64_t>(packet->size_bytes);
  // Delivery happens tx + propagation later; the transmitter frees after tx.
  // The pool handle moves into the event's inline storage — no allocation,
  // no packet copy.
  const SimTime extra =
      jitter_ ? std::max<SimTime>(0, jitter_(sim_.now())) : 0;
  sim_.schedule_in(tx + prop_delay_ + extra,
                   [this, p = std::move(packet)]() mutable {
                     if (deliver_) deliver_(std::move(p));
                   });
  sim_.schedule_in(tx, [this] { transmission_done(); });
}

void LinkDirection::transmission_done() {
  busy_ = false;
  if (queue_.empty()) return;
  PooledPacket next = std::move(queue_.front());
  queue_.pop_front();
  queued_bytes_ -= next->size_bytes;
  RV_CHECK_GE(queued_bytes_, 0);
  start_transmission(std::move(next));
}

LinkDirection& Link::direction_from(NodeId from) {
  RV_CHECK(from == a_ || from == b_);
  return from == a_ ? a_to_b_ : b_to_a_;
}

const LinkDirection& Link::direction_from(NodeId from) const {
  RV_CHECK(from == a_ || from == b_);
  return from == a_ ? a_to_b_ : b_to_a_;
}

NodeId Link::peer_of(NodeId n) const {
  RV_CHECK(n == a_ || n == b_);
  return n == a_ ? b_ : a_;
}

double Link::max_queue_fill() const {
  const auto fill = [](const LinkDirection& d) {
    const auto cap = d.queue_capacity_bytes();
    if (cap <= 0) return 0.0;
    return static_cast<double>(d.queued_bytes()) / static_cast<double>(cap);
  };
  return std::max(fill(a_to_b_), fill(b_to_a_));
}

std::uint64_t Link::total_dropped() const {
  return a_to_b_.stats().packets_dropped + b_to_a_.stats().packets_dropped;
}

}  // namespace rv::net
