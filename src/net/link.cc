#include "net/link.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"
#include "util/check.h"

namespace rv::net {

LinkDirection::LinkDirection(sim::Simulator& sim, BitsPerSec rate,
                             SimTime prop_delay, const QueueConfig& queue)
    : sim_(sim),
      rate_(rate),
      prop_delay_(prop_delay),
      queue_capacity_bytes_(queue.capacity_bytes) {
  RV_CHECK_GT(rate, 0.0);
  RV_CHECK_GE(prop_delay, 0);
  RV_CHECK_GT(queue.capacity_bytes, 0);
  if (queue.policy == QueuePolicy::kRed) {
    red_ = std::make_unique<RedState>(queue, queue.capacity_bytes);
  }
}

void LinkDirection::send(PooledPacket packet) {
  RV_CHECK_GT(packet->size_bytes, 0);
  obs::count(obs::Counter::kPacketsEnqueued);
  if (fault_ != nullptr && fault_(*packet, sim_.now())) {
    ++stats_.packets_faulted;
    ++stats_.packets_dropped;
    obs::count(obs::Counter::kPacketsCorrupted);
    return;
  }
  if (busy_) {
    // RED drops probabilistically before the queue is full; drop-tail (and
    // RED's hard limit) drop on overflow.
    if (red_ != nullptr &&
        red_->should_drop(queued_bytes_, packet->size_bytes)) {
      ++stats_.packets_dropped;
      obs::count(obs::Counter::kPacketsDropped);
      return;
    }
    if (queued_bytes_ + packet->size_bytes > queue_capacity_bytes_) {
      ++stats_.packets_dropped;
      obs::count(obs::Counter::kPacketsDropped);
      return;
    }
    queued_bytes_ += packet->size_bytes;
    queue_.push_back(std::move(packet));
    return;
  }
  start_transmission(std::move(packet));
}

void LinkDirection::start_transmission(PooledPacket packet) {
  busy_ = true;
  const SimTime tx = transmission_time(packet->size_bytes, rate_);
  stats_.busy_time += tx;
  ++stats_.packets_sent;
  stats_.bytes_sent += static_cast<std::uint64_t>(packet->size_bytes);
  // Delivery happens tx + propagation later; the transmitter frees after tx.
  // The pool handle moves into the event's inline storage — no allocation,
  // no packet copy.
  const SimTime extra =
      jitter_ ? std::max<SimTime>(0, jitter_(sim_.now())) : 0;
  sim_.schedule_in(tx + prop_delay_ + extra,
                   [this, p = std::move(packet)]() mutable {
                     if (deliver_) deliver_(std::move(p));
                   });
  sim_.schedule_in(tx, [this] { transmission_done(); });
}

void LinkDirection::transmission_done() {
  busy_ = false;
  if (queue_.empty()) return;
  PooledPacket next = std::move(queue_.front());
  queue_.pop_front();
  queued_bytes_ -= next->size_bytes;
  RV_CHECK_GE(queued_bytes_, 0);
  start_transmission(std::move(next));
}

LinkDirection& Link::direction_from(NodeId from) {
  RV_CHECK(from == a_ || from == b_);
  return from == a_ ? a_to_b_ : b_to_a_;
}

const LinkDirection& Link::direction_from(NodeId from) const {
  RV_CHECK(from == a_ || from == b_);
  return from == a_ ? a_to_b_ : b_to_a_;
}

NodeId Link::peer_of(NodeId n) const {
  RV_CHECK(n == a_ || n == b_);
  return n == a_ ? b_ : a_;
}

double Link::max_queue_fill() const {
  const auto fill = [](const LinkDirection& d) {
    const auto cap = d.queue_capacity_bytes();
    if (cap <= 0) return 0.0;
    return static_cast<double>(d.queued_bytes()) / static_cast<double>(cap);
  };
  return std::max(fill(a_to_b_), fill(b_to_a_));
}

std::uint64_t Link::total_dropped() const {
  return a_to_b_.stats().packets_dropped + b_to_a_.stats().packets_dropped;
}

}  // namespace rv::net
