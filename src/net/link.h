// Full-duplex point-to-point links with drop-tail queues.
//
// Each direction serialises packets at the link rate, holds at most
// `queue_capacity_bytes` of backlog, and delivers after the propagation
// delay. Overflowing packets are dropped (the only loss source in the
// simulator, as in a real router).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/packet.h"
#include "net/packet_pool.h"
#include "net/queue_policy.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace rv::net {

struct LinkStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t packets_faulted = 0;  // dropped by an injected fault
  SimTime busy_time = 0;  // total serialisation time
};

// Decides whether an injected fault eats this packet *now* (link down,
// corruption burst). Returns true to drop. Installed per direction by
// faults::LinkFaultInjector; null means the link is healthy.
using FaultFilter = std::function<bool(const Packet& packet, SimTime now)>;

// Extra per-packet propagation delay (>= 0), drawn by the caller-installed
// hook at transmission time — delay jitter for the congestion-control
// robustness scenarios. Null (the default) adds exactly nothing, so the
// delivery schedule — and every pinned study byte — is unchanged. Jittered
// packets may overtake each other; that reordering is the point (spurious
// dupACKs are what break loss-based CC).
using DelayJitter = std::function<SimTime(SimTime now)>;

// One direction of a link. Owned by Link.
class LinkDirection {
 public:
  LinkDirection(sim::Simulator& sim, BitsPerSec rate, SimTime prop_delay,
                const QueueConfig& queue);

  // Accepts a packet for transmission; drops it if the queue is full.
  // Pool-slot handles move through queueing and delivery without copying.
  void send(PooledPacket packet);

  // Called with each packet after serialisation + propagation.
  void set_deliver(std::function<void(PooledPacket)> deliver) {
    deliver_ = std::move(deliver);
  }

  // Fault-injection hook, consulted before queueing/transmission.
  void set_fault_filter(FaultFilter filter) { fault_ = std::move(filter); }

  // Delay-jitter hook, consulted once per packet at transmission start.
  void set_delay_jitter(DelayJitter jitter) { jitter_ = std::move(jitter); }

  BitsPerSec rate() const { return rate_; }
  SimTime prop_delay() const { return prop_delay_; }
  // Bytes waiting behind the transmitting packet, exactly as the per-packet
  // kernel would report at the current sim time: packets in the arrival
  // queue plus batched packets whose transmission has not yet started (the
  // drain cursor advances lazily against now()).
  std::int64_t queued_bytes() const;
  std::int64_t queue_capacity_bytes() const { return queue_capacity_bytes_; }
  const LinkStats& stats() const { return stats_; }

 private:
  void start_transmission(PooledPacket packet);
  void transmission_done();
  // Batched path: schedules every packet in the queue snapshot (delivery
  // times computed analytically from cumulative serialisation) with one
  // batch-end event, instead of one tx-done event per packet.
  void drain_batch(PooledPacket first);
  void batch_done();

  sim::Simulator& sim_;
  BitsPerSec rate_;
  SimTime prop_delay_;
  std::int64_t queue_capacity_bytes_;
  bool batch_enabled_;
  std::unique_ptr<RedState> red_;  // null for drop-tail
  std::deque<PooledPacket> queue_;
  std::int64_t queued_bytes_ = 0;
  bool busy_ = false;
  // Drain schedule of the in-flight batch, SoA (parallel start/size arrays,
  // reused across batches — allocation-free in steady state). Entries before
  // drain_cursor_ have started transmitting; drain_bytes_ sums the rest.
  std::vector<SimTime> drain_start_;
  std::vector<std::int32_t> drain_size_;
  mutable std::size_t drain_cursor_ = 0;
  mutable std::int64_t drain_bytes_ = 0;
  std::function<void(PooledPacket)> deliver_;
  FaultFilter fault_;
  DelayJitter jitter_;
  LinkStats stats_;
};

// A full-duplex link between two nodes (identified by the Network).
class Link {
 public:
  Link(sim::Simulator& sim, NodeId a, NodeId b, BitsPerSec rate,
       SimTime prop_delay, const QueueConfig& queue)
      : a_(a),
        b_(b),
        a_to_b_(sim, rate, prop_delay, queue),
        b_to_a_(sim, rate, prop_delay, queue) {}

  NodeId a() const { return a_; }
  NodeId b() const { return b_; }

  // The direction that transmits *out of* `from`.
  LinkDirection& direction_from(NodeId from);
  const LinkDirection& direction_from(NodeId from) const;
  // The node at the other end.
  NodeId peer_of(NodeId n) const;

  // Telemetry probes (read-only; sampled by telemetry::PlaySampler).
  // Queue-fill fraction of the fuller direction, in [0, 1].
  double max_queue_fill() const;
  // Packets dropped across both directions (overflow + RED + faults;
  // faulted packets also count as dropped in LinkStats).
  std::uint64_t total_dropped() const;

 private:
  NodeId a_;
  NodeId b_;
  LinkDirection a_to_b_;
  LinkDirection b_to_a_;
};

}  // namespace rv::net
