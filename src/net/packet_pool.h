// Per-Network packet recycling.
//
// A forwarded packet changes hands several times (source node, link queue,
// delivery event, destination node); constructing a fresh Packet at each
// injection and destroying it at delivery keeps the allocator on the hottest
// path. The pool hands out stable Packet slots on a free list: Network::send
// moves the caller's packet into a slot, the slot's handle then moves through
// the forwarding pipeline (link queues, delivery closures), and delivery
// moves the payload out and returns the slot. Steady-state forwarding
// therefore allocates nothing — with SmallVec-inline header fields, a
// recycled Packet touches no heap at all.
//
// The slot store is a shared core kept alive by outstanding handles, so a
// Network (and its pool) may be destroyed while undelivered packets still
// sit in simulator events — the core outlives the last handle. Handles move
// without touching the refcount; only acquire/final-release pay one atomic.
//
// Slot recycling order depends only on the (deterministic) event order, and
// no simulation result ever reads a Packet's address, so pooling cannot
// perturb study output.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "net/packet.h"

namespace rv::net {

namespace internal {
struct PacketPoolCore {
  std::vector<std::unique_ptr<Packet>> storage;  // stable addresses
  std::vector<Packet*> free_list;

  void release(Packet* p) {
    *p = Packet{};  // drop payload-metadata refs promptly
    free_list.push_back(p);
  }
};
}  // namespace internal

// Move-only owning handle to a pool slot; returns the slot on destruction.
class PooledPacket {
 public:
  PooledPacket() noexcept = default;
  PooledPacket(PooledPacket&& other) noexcept
      : packet_(std::exchange(other.packet_, nullptr)),
        core_(std::move(other.core_)) {}
  PooledPacket& operator=(PooledPacket&& other) noexcept {
    if (this != &other) {
      release();
      packet_ = other.packet_;
      core_ = std::move(other.core_);
      other.packet_ = nullptr;
    }
    return *this;
  }
  PooledPacket(const PooledPacket&) = delete;
  PooledPacket& operator=(const PooledPacket&) = delete;
  ~PooledPacket() { release(); }

  Packet& operator*() const noexcept { return *packet_; }
  Packet* operator->() const noexcept { return packet_; }
  explicit operator bool() const noexcept { return packet_ != nullptr; }

 private:
  friend class PacketPool;
  PooledPacket(Packet* packet,
               std::shared_ptr<internal::PacketPoolCore> core) noexcept
      : packet_(packet), core_(std::move(core)) {}

  void release() noexcept {
    if (packet_ != nullptr) {
      core_->release(packet_);
      packet_ = nullptr;
      core_.reset();
    }
  }

  Packet* packet_ = nullptr;
  std::shared_ptr<internal::PacketPoolCore> core_;
};

class PacketPool {
 public:
  PacketPool() : core_(std::make_shared<internal::PacketPoolCore>()) {}
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  // Moves `init` into a recycled (or newly allocated) slot.
  PooledPacket acquire(Packet&& init) {
    Packet* p;
    if (!core_->free_list.empty()) {
      p = core_->free_list.back();
      core_->free_list.pop_back();
    } else {
      core_->storage.push_back(std::make_unique<Packet>());
      p = core_->storage.back().get();
    }
    *p = std::move(init);
    return PooledPacket(p, core_);
  }

  // Pool growth is bounded by the peak number of in-flight packets.
  std::size_t allocated() const { return core_->storage.size(); }
  std::size_t available() const { return core_->free_list.size(); }

 private:
  std::shared_ptr<internal::PacketPoolCore> core_;
};

}  // namespace rv::net
