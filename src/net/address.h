// Node/port addressing shared by the network and transport layers.
#pragma once

#include <cstdint>

namespace rv::net {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = ~NodeId{0};

using Port = std::uint16_t;

// Well-known ports in the simulated world.
inline constexpr Port kRtspPort = 554;

enum class Protocol : std::uint8_t { kTcp, kUdp };

constexpr const char* protocol_name(Protocol p) {
  return p == Protocol::kTcp ? "TCP" : "UDP";
}

// A transport endpoint.
struct Endpoint {
  NodeId node = kInvalidNode;
  Port port = 0;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

}  // namespace rv::net
