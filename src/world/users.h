// The study's user population: 63 volunteers in 12 countries (paper §IV,
// Figs 4, 7, 9), with per-user connection class, PC class, firewall status
// and playlist behaviour.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"
#include "world/types.h"

namespace rv::world {

struct UserProfile {
  int id = 0;
  std::string country;
  std::string us_state;  // empty for non-U.S. users
  Region region = Region::kUsEast;       // backbone attach point
  UserRegionGroup group = UserRegionGroup::kUsCanada;
  ConnectionClass connection = ConnectionClass::kDslCable;
  std::string pc_class;                  // Fig 19 label
  bool udp_blocked = false;              // NAT/firewall eats inbound UDP
  bool rtsp_blocked = false;             // firewall blocks RTSP entirely
  int clips_to_play = 0;                 // playlist prefix this user plays
  int clips_to_rate = 0;
  // User-side ISP congestion (background load on the ISP uplink).
  double isp_load_lo = 0.3;
  double isp_load_hi = 0.7;
  std::uint64_t seed = 0;                // per-user deterministic stream
};

struct PopulationConfig {
  std::uint64_t seed = 2001;
  // Probability that a user's environment silently blocks inbound UDP,
  // by connection class (corporate networks were the worst offenders).
  double udp_blocked_t1 = 0.45;
  double udp_blocked_dsl = 0.18;
  double udp_blocked_modem = 0.10;
  // Fraction of would-be participants whose firewall blocks RTSP outright;
  // the paper gathered and then *excluded* them (§IV). They still appear in
  // the population with rtsp_blocked set.
  double rtsp_blocked_rate = 0.05;
};

// Generates the 63-user population (plus any rtsp-blocked extras),
// deterministically from the config seed. Country/state quotas follow
// Figs 7 and 9.
std::vector<UserProfile> generate_population(const PopulationConfig& config);

// Per-user access link parameters (modem sync rates vary per user).
AccessSpec access_spec_for(ConnectionClass c, util::Rng& rng);

// The RealPlayer "connection speed" setting a user of this class picks.
BitsPerSec reported_bandwidth_for(ConnectionClass c);

}  // namespace rv::world
