// The study's user population: 63 volunteers in 12 countries (paper §IV,
// Figs 4, 7, 9), with per-user connection class, PC class, firewall status
// and playlist behaviour.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"
#include "world/types.h"

namespace rv::world {

struct UserProfile {
  int id = 0;
  std::string country;
  std::string us_state;  // empty for non-U.S. users
  Region region = Region::kUsEast;       // backbone attach point
  UserRegionGroup group = UserRegionGroup::kUsCanada;
  ConnectionClass connection = ConnectionClass::kDslCable;
  std::string pc_class;                  // Fig 19 label
  bool udp_blocked = false;              // NAT/firewall eats inbound UDP
  bool rtsp_blocked = false;             // firewall blocks RTSP entirely
  int clips_to_play = 0;                 // playlist prefix this user plays
  int clips_to_rate = 0;
  // User-side ISP congestion (background load on the ISP uplink).
  double isp_load_lo = 0.3;
  double isp_load_hi = 0.7;
  std::uint64_t seed = 0;                // per-user deterministic stream
};

struct PopulationConfig {
  std::uint64_t seed = 2001;
  // Probability that a user's environment silently blocks inbound UDP,
  // by connection class (corporate networks were the worst offenders).
  double udp_blocked_t1 = 0.45;
  double udp_blocked_dsl = 0.18;
  double udp_blocked_modem = 0.10;
  // Fraction of would-be participants whose firewall blocks RTSP outright;
  // the paper gathered and then *excluded* them (§IV). They still appear in
  // the population with rtsp_blocked set.
  double rtsp_blocked_rate = 0.05;
};

// Generates the 63-user population (plus any rtsp-blocked extras),
// deterministically from the config seed. Country/state quotas follow
// Figs 7 and 9.
std::vector<UserProfile> generate_population(const PopulationConfig& config);

// Campaign-scale population synthesizer: streams `scale` replicas of the
// paper's 63-user population (user ids replica-major: replica r owns ids
// [63r, 63r+63), each replica re-walking the country/state quota tables).
// Every user draws from the same single parent rng stream the baseline
// generator uses — one parent draw per user — so replica 0 is
// byte-identical to generate_population(), and skipping to user `first`
// costs one cheap rng step per skipped user. This is what makes a shard
// (a contiguous user range) independently generable yet byte-reproducible.
class PopulationStream {
 public:
  PopulationStream(const PopulationConfig& config, std::uint64_t scale);

  // Total users across all replicas (63 * scale).
  std::uint64_t size() const { return total_; }
  // Users generated or skipped so far (the id the next call will produce).
  std::uint64_t position() const { return next_id_; }

  // Advances past `n` users without materializing their profiles.
  void skip(std::uint64_t n);
  // Generates the next user (id == position()). Requires position() < size().
  UserProfile next();

 private:
  std::uint64_t total_;
  std::uint64_t next_id_ = 0;
  util::Rng rng_;
  PopulationConfig config_;
};

// Convenience wrapper: users [first, first+count) of the scaled population.
std::vector<UserProfile> generate_population_range(
    const PopulationConfig& config, std::uint64_t scale, std::uint64_t first,
    std::uint64_t count);

// Per-user access link parameters (modem sync rates vary per user).
AccessSpec access_spec_for(ConnectionClass c, util::Rng& rng);

// The RealPlayer "connection speed" setting a user of this class picks.
BitsPerSec reported_bandwidth_for(ConnectionClass c);

}  // namespace rv::world
