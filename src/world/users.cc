#include "world/users.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "client/pc_class.h"
#include "util/check.h"

namespace rv::world {
namespace {

struct CountrySpec {
  const char* name;
  int users;
  double mean_plays;  // tuned so country totals approximate Fig 7
  Region region;
  UserRegionGroup group;
  // Connection-class mix: modem / dsl-cable / t1-lan.
  double modem;
  double dsl;
  double t1;
  double isp_lo;
  double isp_hi;
};

// Country rows reproduce Fig 7's played-clip totals (users × mean plays):
// US 2100, China 142, Germany 131, France 115, Australia 98, Canada 84,
// UK 59, UAE 55, Romania 47, NZ 32, India 16, Egypt 8 — and the user mixes
// encode the paper's user-side regional findings (Fig 15): Australia/NZ
// worst (modem-dominated, congested ISPs), Europe best.
const CountrySpec kCountries[] = {
    {"US", 41, 59.4, Region::kUsEast, UserRegionGroup::kUsCanada, 0.28, 0.36,
     0.36, 0.25, 0.70},
    {"China", 3, 54.9, Region::kAsia, UserRegionGroup::kAsia, 0.35, 0.05,
     0.60, 0.60, 0.95},
    {"Germany", 3, 50.7, Region::kEurope, UserRegionGroup::kEurope, 0.30,
     0.35, 0.35, 0.30, 0.70},
    {"France", 3, 44.4, Region::kEurope, UserRegionGroup::kEurope, 0.30,
     0.35, 0.35, 0.30, 0.70},
    {"Australia", 3, 37.9, Region::kAustralia, UserRegionGroup::kAustraliaNz,
     0.85, 0.05, 0.10, 0.50, 0.92},
    {"Canada", 2, 48.7, Region::kUsEast, UserRegionGroup::kUsCanada, 0.30,
     0.35, 0.35, 0.25, 0.70},
    {"UK", 2, 34.2, Region::kEurope, UserRegionGroup::kEurope, 0.30, 0.35,
     0.35, 0.30, 0.70},
    {"UAE", 2, 31.9, Region::kMiddleEast, UserRegionGroup::kAsia, 0.50, 0.00,
     0.50, 0.55, 0.95},
    {"Romania", 1, 54.5, Region::kEurope, UserRegionGroup::kEurope, 0.50,
     0.00, 0.50, 0.45, 0.85},
    {"New Zealand", 1, 37.1, Region::kAustralia,
     UserRegionGroup::kAustraliaNz, 1.00, 0.00, 0.00, 0.55, 0.95},
    {"India", 1, 18.6, Region::kAsia, UserRegionGroup::kAsia, 0.70, 0.00,
     0.30, 0.60, 0.95},
    {"Egypt", 1, 9.3, Region::kMiddleEast, UserRegionGroup::kAsia, 1.00,
     0.00, 0.00, 0.60, 0.95},
};

// U.S. users per state (Fig 9; Massachusetts dominates, near the authors).
struct StateQuota {
  const char* state;
  int users;
};
const StateQuota kUsStates[] = {
    {"MA", 18}, {"FL", 3}, {"NC", 2}, {"MN", 2}, {"MD", 2}, {"WI", 2},
    {"CA", 2},  {"DE", 1}, {"TX", 1}, {"IL", 1}, {"CO", 1}, {"NH", 1},
    {"CT", 1},  {"TN", 1}, {"ME", 1}, {"WA", 1}, {"VA", 1},
};

// Fig 19's PC classes with a plausible 2001 installed-base mix.
struct PcMix {
  const char* name;
  double weight;
};
const PcMix kPcMix[] = {
    {"Intel Pentium MMX / 24MB", 0.07}, {"Pentium II / 32MB", 0.12},
    {"Intel Celeron / 64-96MB", 0.16},  {"Pentium II / 128-256", 0.30},
    {"AMD / 320-512MB", 0.10},          {"Pentium III / 256-512MB", 0.25},
};

ConnectionClass pick_connection(util::Rng& rng, const CountrySpec& spec) {
  const double w[] = {spec.modem, spec.dsl, spec.t1};
  switch (rng.weighted_index(w)) {
    case 0:
      return ConnectionClass::kModem56k;
    case 1:
      return ConnectionClass::kDslCable;
    default:
      return ConnectionClass::kT1Lan;
  }
}

std::string pick_pc(util::Rng& rng) {
  std::vector<double> weights;
  for (const auto& m : kPcMix) weights.push_back(m.weight);
  return kPcMix[rng.weighted_index(weights)].name;
}

int pick_plays(util::Rng& rng, double mean) {
  const double draw = rng.normal(mean, mean * 0.45);
  return static_cast<int>(std::clamp(std::round(draw), 3.0, 98.0));
}

int pick_rated(util::Rng& rng, int plays) {
  // Fig 6: some users rated nothing, half rated ~3, a few rated 30+.
  const double r = rng.uniform();
  int rated = 0;
  if (r < 0.20) {
    rated = 0;
  } else if (r < 0.65) {
    rated = static_cast<int>(rng.uniform_int(3, 5));
  } else if (r < 0.90) {
    rated = static_cast<int>(rng.uniform_int(6, 12));
  } else {
    rated = static_cast<int>(rng.uniform_int(15, 35));
  }
  return std::min(rated, plays);
}

// Per-replica slot table: the country/state each of the 63 base-population
// slots maps to, precomputed once by replaying the quota walk. A scaled
// population assigns user id u the attributes of slot u % 63, so slot
// lookup is O(1) no matter how far a shard starts into the population.
struct Slot {
  const CountrySpec* country;
  const char* us_state;  // nullptr for non-U.S. slots
  Region region;
};

constexpr std::size_t kBaseUsers = 63;

const std::array<Slot, kBaseUsers>& slot_table() {
  static const std::array<Slot, kBaseUsers> table = [] {
    std::array<Slot, kBaseUsers> t{};
    std::size_t slot = 0;
    for (const auto& country : kCountries) {
      int state_cursor = 0;
      int state_used = 0;
      for (int i = 0; i < country.users; ++i) {
        RV_CHECK_LT(slot, kBaseUsers);
        Slot s{&country, nullptr, country.region};
        if (std::string_view(country.name) == "US") {
          // Walk the state quota table (Fig 9), exactly as the baseline
          // generator does.
          while (state_used >=
                 kUsStates[static_cast<std::size_t>(state_cursor)].users) {
            ++state_cursor;
            state_used = 0;
          }
          s.us_state = kUsStates[static_cast<std::size_t>(state_cursor)].state;
          ++state_used;
          if (std::string_view(s.us_state) == "CA" ||
              std::string_view(s.us_state) == "WA") {
            s.region = Region::kUsWest;
          }
        }
        t[slot++] = s;
      }
    }
    RV_CHECK_EQ(slot, kBaseUsers);
    return t;
  }();
  return table;
}

}  // namespace

PopulationStream::PopulationStream(const PopulationConfig& config,
                                   std::uint64_t scale)
    : total_(kBaseUsers * scale), rng_(config.seed ^ 0xB0B5ull) {
  RV_CHECK_GE(scale, 1u) << "population scale must be >= 1";
  // The per-user draws need the config's firewall knobs; keep a copy.
  config_ = config;
}

void PopulationStream::skip(std::uint64_t n) {
  RV_CHECK_LE(n, total_ - next_id_);
  // Each generated user consumes exactly one parent draw (the fork), so a
  // skipped user is one rng step — seeking a shard to user 10^6 is
  // milliseconds, not a replay of every profile.
  for (std::uint64_t i = 0; i < n; ++i) rng_.next_u64();
  next_id_ += n;
}

UserProfile PopulationStream::next() {
  RV_CHECK_LT(next_id_, total_);
  const std::uint64_t id = next_id_++;
  util::Rng user_rng = rng_.fork(id * 31 + 7);
  const Slot& slot = slot_table()[id % kBaseUsers];
  const CountrySpec& country = *slot.country;
  UserProfile u;
  u.id = static_cast<int>(id);
  u.country = country.name;
  u.region = slot.region;
  u.group = country.group;
  if (slot.us_state != nullptr) u.us_state = slot.us_state;
  u.connection = pick_connection(user_rng, country);
  u.pc_class = pick_pc(user_rng);
  double blocked_p = config_.udp_blocked_dsl;
  if (u.connection == ConnectionClass::kT1Lan) {
    blocked_p = config_.udp_blocked_t1;
  } else if (u.connection == ConnectionClass::kModem56k) {
    blocked_p = config_.udp_blocked_modem;
  }
  u.udp_blocked = user_rng.bernoulli(blocked_p);
  u.rtsp_blocked = user_rng.bernoulli(config_.rtsp_blocked_rate);
  u.clips_to_play = pick_plays(user_rng, country.mean_plays);
  u.clips_to_rate = pick_rated(user_rng, u.clips_to_play);
  u.isp_load_lo = country.isp_lo;
  u.isp_load_hi = country.isp_hi;
  u.seed = user_rng.next_u64();
  return u;
}

std::vector<UserProfile> generate_population_range(
    const PopulationConfig& config, std::uint64_t scale, std::uint64_t first,
    std::uint64_t count) {
  PopulationStream stream(config, scale);
  RV_CHECK_LE(first, stream.size());
  RV_CHECK_LE(count, stream.size() - first);
  stream.skip(first);
  std::vector<UserProfile> users;
  users.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) users.push_back(stream.next());
  return users;
}

std::vector<UserProfile> generate_population(const PopulationConfig& config) {
  // The baseline 63-user study population is replica 0 of the scaled
  // generator — one code path, so the scaled campaign can never drift from
  // the paper reproduction.
  std::vector<UserProfile> users =
      generate_population_range(config, 1, 0, kBaseUsers);
  RV_CHECK_EQ(users.size(), 63u);
  return users;
}

AccessSpec access_spec_for(ConnectionClass c, util::Rng& rng) {
  AccessSpec spec;
  switch (c) {
    case ConnectionClass::kModem56k:
      // V.90 sync rates vary by line quality; modems add real latency and
      // ISPs gave them deep (bloated) buffers.
      spec.rate = kbps(rng.uniform(21.6, 42.0));
      spec.delay = msec(55);
      spec.queue_bytes = 10 * 1024;
      // ISP modem banks were heavily oversubscribed; the effective share of
      // the nominal sync rate varied a lot.
      spec.cross_load_lo = 0.60;
      spec.cross_load_hi = 1.02;
      break;
    case ConnectionClass::kDslCable:
      spec.rate = kbps(rng.uniform(256.0, 512.0));
      spec.delay = msec(8);
      spec.queue_bytes = 24 * 1024;
      break;
    case ConnectionClass::kT1Lan:
      spec.rate = mbps(rng.uniform(1.5, 10.0));
      spec.delay = msec(2);
      spec.queue_bytes = 32 * 1024;
      // Corporate uplinks are shared with coworkers (the paper's
      // explanation for T1 jitter exceeding DSL's).
      spec.cross_load_lo = 0.20;
      spec.cross_load_hi = 0.65;
      break;
  }
  return spec;
}

BitsPerSec reported_bandwidth_for(ConnectionClass c) {
  switch (c) {
    case ConnectionClass::kModem56k:
      return kbps(56);
    case ConnectionClass::kDslCable:
      return kbps(450);
    case ConnectionClass::kT1Lan:
      return kbps(600);
  }
  return kbps(450);
}

}  // namespace rv::world
