// The 11 RealServer sites of the study (Figs 3, 8, 10).
//
// Fig 10 names ten sites; the paper's §IV says 11 servers in 8 countries, so
// we add a third U.S. site (labelled US/FOX) and note the substitution in
// EXPERIMENTS.md. Unavailability rates are read off Fig 10.
#pragma once

#include <string>
#include <vector>

#include "media/catalog.h"
#include "world/types.h"

namespace rv::world {

struct ServerSite {
  std::string name;       // the paper's label, e.g. "US/CNN"
  std::string country;
  Region region;
  ServerRegionGroup group;
  media::SiteProfile profile;
  double unavailability;  // per-access clip-unavailable probability (Fig 10)
  BitsPerSec access_rate; // server access capacity
  // Server-side load: cross traffic on the access link, as a fraction of its
  // capacity, sampled uniformly per play.
  double load_lo;
  double load_hi;
  // Probability that the server is overloaded for the whole play (its access
  // segment saturates) — the paper's "bottleneck moving closer to the
  // server" for broadband users.
  double overload_probability;
};

// All 11 sites, index == site id used by the catalog.
const std::vector<ServerSite>& server_sites();

}  // namespace rv::world
