// Core world-model vocabulary: regions, connection classes, countries.
#pragma once

#include <string>
#include <string_view>

#include "util/units.h"

namespace rv::world {

// Backbone regions (topology nodes). Analysis groupings (Figs 14/15) are
// coarser and derived from these.
enum class Region {
  kUsEast,
  kUsWest,
  kEurope,
  kAsia,
  kJapan,
  kAustralia,
  kSouthAmerica,
  kMiddleEast,
};
inline constexpr int kRegionCount = 8;

std::string_view region_name(Region r);

// The paper's server-side grouping (Fig 14): Asia, Brazil, US/Canada,
// Australia, Europe.
enum class ServerRegionGroup { kAsia, kBrazil, kUsCanada, kAustralia, kEurope };
std::string_view server_region_group_name(ServerRegionGroup g);

// The paper's user-side grouping (Fig 15): Australia/NZ, US/Canada, Asia,
// Europe.
enum class UserRegionGroup { kAustraliaNz, kUsCanada, kAsia, kEurope };
std::string_view user_region_group_name(UserRegionGroup g);

// End-host network configurations (Figs 12/13/21/27).
enum class ConnectionClass { kModem56k, kDslCable, kT1Lan };
std::string_view connection_class_name(ConnectionClass c);

struct AccessSpec {
  BitsPerSec rate = 0;
  SimTime delay = 0;        // access one-way latency (modems are slow)
  std::int64_t queue_bytes = 0;
  // Contention on the access segment (corporate LANs share the uplink).
  double cross_load_lo = 0.0;
  double cross_load_hi = 0.0;
};

}  // namespace rv::world
