#include "world/region_graph.h"

#include <limits>
#include <queue>

#include "util/check.h"

namespace rv::world {
namespace {

constexpr Region kAllRegions[] = {
    Region::kUsEast,       Region::kUsWest, Region::kEurope,
    Region::kAsia,         Region::kJapan,  Region::kAustralia,
    Region::kSouthAmerica, Region::kMiddleEast,
};

int idx(Region r) { return static_cast<int>(r); }

}  // namespace

RegionGraph::RegionGraph() {
  // Transoceanic and transcontinental links of the period. Loads encode how
  // congested each corridor typically was: trans-Pacific and developing-
  // world links ran hot, intra-US and US–Europe had more headroom.
  links_ = {
      {Region::kUsEast, Region::kUsWest, mbps(100), msec(32), 0.30, 0.75},
      {Region::kUsEast, Region::kEurope, mbps(60), msec(44), 0.35, 0.80},
      {Region::kUsWest, Region::kJapan, mbps(30), msec(58), 0.45, 0.90},
      {Region::kJapan, Region::kAsia, mbps(15), msec(24), 0.50, 0.92},
      {Region::kEurope, Region::kAsia, mbps(10), msec(88), 0.55, 0.92},
      {Region::kUsWest, Region::kAustralia, mbps(20), msec(74), 0.40, 0.85},
      {Region::kUsEast, Region::kSouthAmerica, mbps(12), msec(56), 0.45,
       0.88},
      {Region::kEurope, Region::kMiddleEast, mbps(10), msec(36), 0.45, 0.90},
  };

  // All-pairs shortest paths by propagation delay (tiny graph: Dijkstra per
  // source).
  for (auto& row : next_hop_) row.fill(-1);
  for (const Region src : kAllRegions) {
    std::array<SimTime, kRegionCount> dist{};
    dist.fill(std::numeric_limits<SimTime>::max());
    std::array<int, kRegionCount> first_link{};
    first_link.fill(-1);
    using Item = std::pair<SimTime, int>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    dist[idx(src)] = 0;
    heap.push({0, idx(src)});
    while (!heap.empty()) {
      const auto [d, u] = heap.top();
      heap.pop();
      if (d > dist[u]) continue;
      for (std::size_t li = 0; li < links_.size(); ++li) {
        const auto& l = links_[li];
        int v = -1;
        if (idx(l.a) == u) v = idx(l.b);
        if (idx(l.b) == u) v = idx(l.a);
        if (v < 0) continue;
        const SimTime nd = d + l.delay;
        if (nd < dist[v]) {
          dist[v] = nd;
          first_link[v] =
              (u == idx(src)) ? static_cast<int>(li) : first_link[u];
          heap.push({nd, v});
        }
      }
    }
    for (const Region dst : kAllRegions) {
      next_hop_[idx(src)][idx(dst)] = first_link[idx(dst)];
    }
  }
}

std::vector<std::size_t> RegionGraph::path(Region a, Region b) const {
  std::vector<std::size_t> out;
  Region cur = a;
  int guard = 0;
  while (cur != b) {
    const int li = next_hop_[idx(cur)][idx(b)];
    RV_CHECK_GE(li, 0) << "disconnected regions";
    out.push_back(static_cast<std::size_t>(li));
    const auto& l = links_[static_cast<std::size_t>(li)];
    cur = (l.a == cur) ? l.b : l.a;
    RV_CHECK_LT(++guard, kRegionCount) << "routing loop";
  }
  return out;
}

SimTime RegionGraph::path_delay(Region a, Region b) const {
  SimTime total = 0;
  for (const auto li : path(a, b)) total += links_[li].delay;
  return total;
}

}  // namespace rv::world
