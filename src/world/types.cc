#include "world/types.h"

namespace rv::world {

std::string_view region_name(Region r) {
  switch (r) {
    case Region::kUsEast:
      return "us-east";
    case Region::kUsWest:
      return "us-west";
    case Region::kEurope:
      return "europe";
    case Region::kAsia:
      return "asia";
    case Region::kJapan:
      return "japan";
    case Region::kAustralia:
      return "australia";
    case Region::kSouthAmerica:
      return "s-america";
    case Region::kMiddleEast:
      return "middle-east";
  }
  return "?";
}

std::string_view server_region_group_name(ServerRegionGroup g) {
  switch (g) {
    case ServerRegionGroup::kAsia:
      return "Asia";
    case ServerRegionGroup::kBrazil:
      return "Brazil";
    case ServerRegionGroup::kUsCanada:
      return "US/Canada";
    case ServerRegionGroup::kAustralia:
      return "Australia";
    case ServerRegionGroup::kEurope:
      return "Europe";
  }
  return "?";
}

std::string_view user_region_group_name(UserRegionGroup g) {
  switch (g) {
    case UserRegionGroup::kAustraliaNz:
      return "Australia/NZ";
    case UserRegionGroup::kUsCanada:
      return "US/Canada";
    case UserRegionGroup::kAsia:
      return "Asia";
    case UserRegionGroup::kEurope:
      return "Europe";
  }
  return "?";
}

std::string_view connection_class_name(ConnectionClass c) {
  switch (c) {
    case ConnectionClass::kModem56k:
      return "56k Modem";
    case ConnectionClass::kDslCable:
      return "DSL/Cable";
    case ConnectionClass::kT1Lan:
      return "T1/LAN";
  }
  return "?";
}

}  // namespace rv::world
