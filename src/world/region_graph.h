// The 2001-calibre inter-region backbone: capacities, propagation delays and
// background-load ranges, plus shortest-path lookup between regions.
#pragma once

#include <array>
#include <vector>

#include "world/types.h"

namespace rv::world {

struct BackboneLink {
  Region a;
  Region b;
  BitsPerSec capacity;
  SimTime delay;       // one-way propagation
  double load_lo;      // background utilisation range, sampled per play
  double load_hi;
};

class RegionGraph {
 public:
  RegionGraph();

  const std::vector<BackboneLink>& links() const { return links_; }

  // Indices into links() along the delay-shortest path a → b (empty when
  // a == b).
  std::vector<std::size_t> path(Region a, Region b) const;

  // Total propagation delay along path(a, b).
  SimTime path_delay(Region a, Region b) const;

 private:
  std::vector<BackboneLink> links_;
  // next_hop_[from][to] = link index of the first hop, or -1.
  std::array<std::array<int, kRegionCount>, kRegionCount> next_hop_{};
};

}  // namespace rv::world
