// Builds the per-play network path between one user and one server site.
//
// Scale note (documented in DESIGN.md): backbone corridors are modelled at
// per-flow effective capacity (capped at a few Mbps) rather than full OC-x
// rates — a single video flow cannot use more, and it keeps the packet event
// rate tractable across ~2855 simulated plays. Queueing dynamics, cross
// traffic bursts and loss episodes are preserved, which is what the
// foreground flow actually experiences.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/cross_traffic.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "world/region_graph.h"
#include "world/servers.h"
#include "world/users.h"

namespace rv::world {

struct PlayPath {
  // PathBuilder's fixed link layout: index into network->link(). The fault
  // injector addresses segments through these (checked in build()).
  enum LinkIndex : std::size_t {
    kAccessLink = 0,    // client ↔ ISP POP
    kIspUplink = 1,     // ISP ↔ regional WAN
    kWanCorridor = 2,   // wide-area corridor
    kServerAccess = 3,  // WAN ↔ server site
    kLinkCount = 4,
  };

  std::unique_ptr<net::Network> network;
  net::NodeId client_node = 0;
  net::NodeId server_node = 0;
  std::vector<std::unique_ptr<net::CrossTrafficSource>> cross_traffic;

  // Arms every cross-traffic source (call before the session starts).
  void start_cross_traffic() {
    for (auto& src : cross_traffic) src->start();
  }
};

// Canonical name of a PlayPath::LinkIndex ("access", "isp-uplink",
// "wan-corridor", "server-access"); "link<i>" for anything beyond the fixed
// layout. Used by the telemetry bottleneck-attribution table and series CSV.
std::string path_link_name(std::size_t index);

struct PathBuilderConfig {
  // Per-flow effective capacity cap for wide-area segments.
  BitsPerSec wan_capacity_cap = kbps(2500);
  BitsPerSec isp_uplink_capacity = kbps(2000);
  // Per-flow share of a busy RealServer's uplink (a T3 serving hundreds of
  // concurrent streams leaves each flow far less than the line rate).
  BitsPerSec server_access_cap = kbps(1500);
  std::int32_t cross_packet_bytes = 1500;
  // Load below which a segment gets no cross-traffic source at all (the
  // foreground flow wouldn't notice it; saves events).
  double negligible_load = 0.05;
  // Queue discipline for wide-area segments (the 2001 default is drop-tail;
  // kRed enables the AQM ablation).
  net::QueuePolicy queue_policy = net::QueuePolicy::kDropTail;
  // Probability that a wide-area/ISP/server segment is in a sustained
  // congestion episode for this play (load pushed to ~capacity): the heavy
  // tail behind the paper's rebuffering and >=300 ms jitter population.
  double episode_probability = 0.035;
};

class PathBuilder {
 public:
  PathBuilder(const RegionGraph& graph, PathBuilderConfig config = {})
      : graph_(graph), config_(config) {}

  // Builds the client↔server path for one play. `rng` drives this play's
  // load samples; `access` is the user's (per-play) access spec.
  PlayPath build(sim::Simulator& sim, const UserProfile& user,
                 const AccessSpec& access, const ServerSite& site,
                 util::Rng& rng) const;

  // In-place variant for reusable per-worker contexts: rebuilds `path` for
  // a new play, retaining the Network object (and its warmed packet pool)
  // plus the cross-traffic vector capacity across calls. A reused
  // path.network must have been built against the same Simulator object —
  // it holds a reference — and that simulator must already be reset (its
  // pending events, which may hold pooled packets and point at the old
  // topology, destroyed). Identical rng draws to build().
  void build_into(PlayPath& path, sim::Simulator& sim,
                  const UserProfile& user, const AccessSpec& access,
                  const ServerSite& site, util::Rng& rng) const;

 private:
  const RegionGraph& graph_;
  PathBuilderConfig config_;
};

}  // namespace rv::world
