#include "world/path_builder.h"

#include <algorithm>

#include "util/check.h"

namespace rv::world {
namespace {

// Queue sizing for wide-area segments: ~80 ms of the link rate, bounded.
std::int64_t wan_queue_bytes(BitsPerSec rate) {
  const auto bytes = static_cast<std::int64_t>(rate * 0.080 / 8.0);
  return std::clamp<std::int64_t>(bytes, 16 * 1024, 96 * 1024);
}

net::QueueConfig wan_queue(BitsPerSec rate, net::QueuePolicy policy) {
  net::QueueConfig q;
  q.policy = policy;
  q.capacity_bytes = wan_queue_bytes(rate);
  return q;
}

// Converts a long-run load fraction into an on/off burst process. Bursts are
// capped near link capacity: real cross traffic is mostly TCP, which backs
// off rather than blasting 25% over the line rate indefinitely — so a
// low-rate foreground flow rides out ON periods in the queue (delay spikes)
// while a high-rate one loses packets and must adapt.
net::CrossTrafficConfig cross_config(BitsPerSec capacity, double load,
                                     std::int32_t packet_bytes,
                                     util::Rng& rng) {
  net::CrossTrafficConfig cfg;
  cfg.packet_bytes = packet_bytes;
  if (load > 1.0) {
    // Saturation episode: a flash crowd offers far more than the line rate,
    // nearly continuously. Drop-tail sheds a third or more of *everyone's*
    // packets for seconds at a time — lethal to a streaming session, as a
    // 2001 server overload was.
    cfg.burst_rate = capacity * rng.uniform(1.5, 2.0);
    cfg.mean_on = msec(static_cast<std::int64_t>(rng.uniform(2000.0, 3500.0)));
    cfg.mean_off = static_cast<SimTime>(
        static_cast<double>(cfg.mean_on) * 0.25);
    return cfg;
  }
  // Normal regime: bursts capped near capacity, so a low-rate foreground
  // flow rides out ON periods in the queue while a high-rate one adapts.
  const double burst = std::clamp(2.0 * load, 0.10, 1.05);
  cfg.burst_rate = capacity * burst;
  const double duty = std::clamp(load / burst, 0.05, 0.95);
  cfg.mean_on = msec(static_cast<std::int64_t>(rng.uniform(300.0, 500.0)));
  cfg.mean_off = static_cast<SimTime>(
      static_cast<double>(cfg.mean_on) * (1.0 - duty) / duty);
  return cfg;
}

}  // namespace

PlayPath PathBuilder::build(sim::Simulator& sim, const UserProfile& user,
                            const AccessSpec& access, const ServerSite& site,
                            util::Rng& rng) const {
  PlayPath path;
  build_into(path, sim, user, access, site, rng);
  return path;
}

void PathBuilder::build_into(PlayPath& path, sim::Simulator& sim,
                             const UserProfile& user, const AccessSpec& access,
                             const ServerSite& site, util::Rng& rng) const {
  if (path.network == nullptr) {
    path.network = std::make_unique<net::Network>(sim);
  } else {
    RV_CHECK(&path.network->simulator() == &sim)
        << "a reused PlayPath is bound to its original Simulator";
    path.network->reset();
  }
  // The old sources scheduled into a simulator that has since been reset,
  // so destroying them here cannot race a pending emit event.
  path.cross_traffic.clear();
  net::Network& net = *path.network;

  const net::NodeId client = net.add_node("client");
  const net::NodeId isp = net.add_node("isp");
  const net::NodeId wan_a = net.add_node("wan-a");
  const net::NodeId wan_b = net.add_node("wan-b");
  const net::NodeId server = net.add_node("server");
  path.client_node = client;
  path.server_node = server;

  auto add_cross = [&](net::NodeId from, net::NodeId to, BitsPerSec capacity,
                       double load, bool episodes = true) {
    // Occasionally a segment spends the whole play saturated (an outage-
    // grade congestion episode).
    if (episodes && rng.bernoulli(config_.episode_probability)) {
      load = rng.uniform(1.00, 1.15);
    }
    if (load < config_.negligible_load) return;
    path.cross_traffic.push_back(std::make_unique<net::CrossTrafficSource>(
        net, from, to,
        cross_config(capacity, load, config_.cross_packet_bytes, rng),
        rng.fork(path.cross_traffic.size() + 1)));
  };

  // 1. Client access link.
  net.add_link(client, isp, access.rate, access.delay, access.queue_bytes);
  if (access.cross_load_hi > 0.0) {
    // Shared corporate segment: contention in the download direction.
    add_cross(isp, client, access.rate,
              rng.uniform(access.cross_load_lo, access.cross_load_hi));
  }

  // 2. ISP uplink (user-side wiredness).
  const double isp_load = rng.uniform(user.isp_load_lo, user.isp_load_hi);
  net.add_link(isp, wan_a, config_.isp_uplink_capacity, msec(3),
               wan_queue(config_.isp_uplink_capacity, config_.queue_policy));
  add_cross(wan_a, isp, config_.isp_uplink_capacity, isp_load);

  // 3. Wide-area corridor: collapse the backbone path to its bottleneck leg
  // (per-flow effective capacity), keeping the full propagation delay.
  BitsPerSec wan_capacity = config_.wan_capacity_cap;
  double wan_load = rng.uniform(0.15, 0.45);  // intra-region floor
  SimTime wan_delay = msec(2);
  if (user.region != site.region) {
    wan_delay = graph_.path_delay(user.region, site.region) + msec(3);
    double min_available = 1e18;
    for (const auto li : graph_.path(user.region, site.region)) {
      const auto& leg = graph_.links()[li];
      const BitsPerSec eff = std::min(leg.capacity, config_.wan_capacity_cap);
      const double load = rng.uniform(leg.load_lo, leg.load_hi);
      const double available = eff * (1.0 - load);
      if (available < min_available) {
        min_available = available;
        wan_capacity = eff;
        wan_load = load;
      }
    }
  }
  net.add_link(wan_a, wan_b, wan_capacity, wan_delay,
               wan_queue(wan_capacity, config_.queue_policy));
  // Media flows server -> wan_b -> wan_a: load that direction.
  add_cross(wan_b, wan_a, wan_capacity, wan_load);

  // 4. Server access link (where broadband bottlenecks increasingly live,
  // §V.A). The popular sites saturate outright with per-site probability.
  const BitsPerSec srv_capacity =
      std::min(site.access_rate, config_.server_access_cap);
  double srv_load = rng.uniform(site.load_lo, site.load_hi);
  if (rng.bernoulli(site.overload_probability)) {
    srv_load = rng.uniform(1.00, 1.15);
  }
  net.add_link(wan_b, server, srv_capacity, msec(2),
               wan_queue(srv_capacity, config_.queue_policy));
  // Overload already sampled above; no double episode here.
  add_cross(server, wan_b, srv_capacity, srv_load, /*episodes=*/false);

  net.compute_routes();
  RV_CHECK_EQ(net.link_count(), PlayPath::kLinkCount)
      << "PlayPath link layout changed; update PlayPath::LinkIndex";
}

std::string path_link_name(std::size_t index) {
  switch (index) {
    case PlayPath::kAccessLink:
      return "access";
    case PlayPath::kIspUplink:
      return "isp-uplink";
    case PlayPath::kWanCorridor:
      return "wan-corridor";
    case PlayPath::kServerAccess:
      return "server-access";
    default:
      return "link" + std::to_string(index);
  }
}

}  // namespace rv::world
