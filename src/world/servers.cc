#include "world/servers.h"

namespace rv::world {

const std::vector<ServerSite>& server_sites() {
  using media::SiteProfile;
  // Server access capacities reflect 2001 hosting: major U.S./U.K. sites on
  // T3-class links, smaller national sites narrower; load ranges set how
  // often the "bottleneck moves to the server" (§V.A of the paper). The
  // site order groups Fig 10's labels by site id.
  static const std::vector<ServerSite> kSites = {
      {"US/ABC", "US", Region::kUsEast, ServerRegionGroup::kUsCanada,
       SiteProfile::kNewsBroadcaster, 0.02, mbps(45), 0.30, 0.80, 0.08},
      {"US/CNN", "US", Region::kUsEast, ServerRegionGroup::kUsCanada,
       SiteProfile::kNewsBroadcaster, 0.10, mbps(45), 0.45, 0.95, 0.14},
      {"US/FOX", "US", Region::kUsWest, ServerRegionGroup::kUsCanada,
       SiteProfile::kEntertainment, 0.07, mbps(34), 0.35, 0.85, 0.10},
      {"CAN/CBC", "Canada", Region::kUsEast, ServerRegionGroup::kUsCanada,
       SiteProfile::kNewsBroadcaster, 0.05, mbps(20), 0.30, 0.80, 0.09},
      {"UK/BBC", "UK", Region::kEurope, ServerRegionGroup::kEurope,
       SiteProfile::kNewsBroadcaster, 0.04, mbps(45), 0.30, 0.75, 0.06},
      {"UK/ITN", "UK", Region::kEurope, ServerRegionGroup::kEurope,
       SiteProfile::kNewsBroadcaster, 0.08, mbps(20), 0.35, 0.85, 0.12},
      {"ITA/Kwvideo", "Italy", Region::kEurope, ServerRegionGroup::kEurope,
       SiteProfile::kEntertainment, 0.20, mbps(10), 0.40, 0.90, 0.18},
      {"JAP/FUJITV", "Japan", Region::kJapan, ServerRegionGroup::kAsia,
       SiteProfile::kEntertainment, 0.05, mbps(20), 0.40, 0.90, 0.18},
      {"CHI/CCTV", "China", Region::kAsia, ServerRegionGroup::kAsia,
       SiteProfile::kNewsBroadcaster, 0.22, mbps(8), 0.50, 0.95, 0.26},
      {"AUS/BBC", "Australia", Region::kAustralia,
       ServerRegionGroup::kAustralia, SiteProfile::kNewsBroadcaster, 0.06,
       mbps(20), 0.30, 0.75, 0.06},
      {"BRZ/UOL", "Brazil", Region::kSouthAmerica, ServerRegionGroup::kBrazil,
       SiteProfile::kEntertainment, 0.13, mbps(10), 0.40, 0.85, 0.14},
  };
  return kSites;
}

}  // namespace rv::world
