#include "study/analysis.h"

#include <algorithm>

#include "world/types.h"

namespace rv::study {

obs::Counters counter_totals(
    const std::vector<tracer::TraceRecord>& records) {
  obs::Counters totals;
  for (const auto& rec : records) {
    if (rec.obs.enabled) totals.merge(rec.obs.counters);
  }
  return totals;
}

std::vector<double> frame_rates(const Records& records) {
  std::vector<double> out;
  out.reserve(records.size());
  for (const auto* r : records) out.push_back(r->stats.measured_fps);
  return out;
}

std::vector<double> jitters_ms(const Records& records) {
  std::vector<double> out;
  out.reserve(records.size());
  for (const auto* r : records) out.push_back(r->stats.jitter_ms);
  return out;
}

std::vector<double> bandwidths_kbps(const Records& records) {
  std::vector<double> out;
  out.reserve(records.size());
  for (const auto* r : records) {
    out.push_back(to_kbps(r->stats.measured_bandwidth));
  }
  return out;
}

std::vector<double> ratings(const Records& records) {
  std::vector<double> out;
  for (const auto* r : records) {
    if (r->rated()) out.push_back(r->rating);
  }
  return out;
}

Records filter(const Records& records,
               const std::function<bool(const tracer::TraceRecord&)>& pred) {
  Records out;
  for (const auto* r : records) {
    if (pred(*r)) out.push_back(r);
  }
  return out;
}

namespace {

template <typename KeyFn>
std::map<std::string, Records> group_by(const Records& records, KeyFn key) {
  std::map<std::string, Records> out;
  for (const auto* r : records) out[std::string(key(*r))].push_back(r);
  return out;
}

}  // namespace

std::map<std::string, Records> by_connection(const Records& records) {
  return group_by(records, [](const tracer::TraceRecord& r) {
    return world::connection_class_name(r.connection);
  });
}

std::map<std::string, Records> by_protocol(const Records& records) {
  return group_by(records, [](const tracer::TraceRecord& r) {
    return net::protocol_name(r.stats.protocol);
  });
}

std::map<std::string, Records> by_server_group(const Records& records) {
  return group_by(records, [](const tracer::TraceRecord& r) {
    return world::server_region_group_name(r.server_group);
  });
}

std::map<std::string, Records> by_user_group(const Records& records) {
  return group_by(records, [](const tracer::TraceRecord& r) {
    return world::user_region_group_name(r.user_group);
  });
}

std::map<std::string, Records> by_pc_class(const Records& records) {
  return group_by(records,
                  [](const tracer::TraceRecord& r) { return r.pc_class; });
}

std::map<std::string, Records> by_bandwidth_bucket(const Records& records) {
  return group_by(records, [](const tracer::TraceRecord& r) {
    const double k = to_kbps(r.stats.measured_bandwidth);
    if (k < 10.0) return "< 10K";
    if (k <= 100.0) return "10K - 100K";
    return "> 100K";
  });
}

stats::CountTable clips_played_by_country(const Records& played) {
  stats::CountTable t;
  for (const auto* r : played) t.add(r->country);
  return t;
}

stats::CountTable clips_served_by_country(const Records& played) {
  stats::CountTable t;
  for (const auto* r : played) t.add(r->server_country);
  return t;
}

stats::CountTable clips_played_by_us_state(const Records& played) {
  stats::CountTable t;
  for (const auto* r : played) {
    if (!r->us_state.empty()) t.add(r->us_state);
  }
  return t;
}

std::map<std::string, double> unavailability_by_server(
    const Records& accesses) {
  std::map<std::string, std::pair<std::size_t, std::size_t>> counts;
  for (const auto* r : accesses) {
    auto& [total, unavailable] = counts[r->server_name];
    ++total;
    if (!r->available) ++unavailable;
  }
  std::map<std::string, double> out;
  for (const auto& [name, c] : counts) {
    out[name] = c.first == 0
                    ? 0.0
                    : static_cast<double>(c.second) /
                          static_cast<double>(c.first);
  }
  return out;
}

std::vector<double> plays_per_user(const Records& accesses) {
  std::map<int, double> per_user;
  for (const auto* r : accesses) per_user[r->user_id] += 1.0;
  std::vector<double> out;
  for (const auto& [_, n] : per_user) out.push_back(n);
  return out;
}

std::vector<double> ratings_per_user(const Records& accesses) {
  std::map<int, double> per_user;
  for (const auto* r : accesses) {
    per_user[r->user_id] += r->rated() ? 1.0 : 0.0;
  }
  std::vector<double> out;
  for (const auto& [_, n] : per_user) out.push_back(n);
  return out;
}

std::vector<stats::LabeledCdf> group_cdfs(
    const std::map<std::string, Records>& groups,
    const std::function<std::vector<double>(const Records&)>& metric) {
  std::vector<stats::LabeledCdf> out;
  for (const auto& [label, records] : groups) {
    const auto values = metric(records);
    if (values.empty()) continue;
    out.push_back({label, stats::Cdf(values)});
  }
  return out;
}

}  // namespace rv::study
