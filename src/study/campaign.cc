#include "study/campaign.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "obs/metrics.h"
#include "study/spill.h"
#include "util/check.h"
#include "util/strings.h"
#include "world/path_builder.h"
#include "world/types.h"

namespace rv::study {
namespace {

constexpr std::uint32_t kRollupMagic = 0x55525652;  // "RVRU" little-endian
constexpr std::uint32_t kRollupVersion = 1;

std::int64_t micro(double v) {
  return static_cast<std::int64_t>(std::llround(v * 1e6));
}

double from_micro(std::int64_t u) { return static_cast<double>(u) / 1e6; }

void put_u32(std::string& out, std::uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out.append(b, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out.append(b, 8);
}

void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  put_u64(out, bits);
}

void put_string(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

void put_histogram(std::string& out, const stats::MergeableHistogram& h) {
  put_f64(out, h.lo());
  put_f64(out, h.hi());
  put_u32(out, static_cast<std::uint32_t>(h.bins()));
  std::uint32_t nonzero = 0;
  for (std::size_t b = 0; b < h.bins(); ++b) {
    if (h.bin_count(b) != 0) ++nonzero;
  }
  put_u32(out, nonzero);
  for (std::size_t b = 0; b < h.bins(); ++b) {
    if (h.bin_count(b) == 0) continue;
    put_u32(out, static_cast<std::uint32_t>(b));
    put_u64(out, h.bin_count(b));
  }
}

// Bounds-checked parse cursor.
class Reader {
 public:
  explicit Reader(const std::string& bytes) : p_(bytes.data()), end_(p_ + bytes.size()) {}

  bool ok() const { return ok_; }

  std::uint32_t u32() {
    std::uint32_t v = 0;
    take(&v, 4);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    take(&v, 8);
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (!ok_ || static_cast<std::size_t>(end_ - p_) < n) {
      ok_ = false;
      return {};
    }
    std::string s(p_, n);
    p_ += n;
    return s;
  }

 private:
  void take(void* out, std::size_t n) {
    if (!ok_ || static_cast<std::size_t>(end_ - p_) < n) {
      ok_ = false;
      return;
    }
    std::memcpy(out, p_, n);
    p_ += n;
  }

  const char* p_;
  const char* end_;
  bool ok_ = true;
};

bool read_histogram(Reader& r, stats::MergeableHistogram* out) {
  const double lo = r.f64();
  const double hi = r.f64();
  const std::uint32_t bins = r.u32();
  const std::uint32_t nonzero = r.u32();
  if (!r.ok() || bins == 0 || bins > (1u << 20) || nonzero > bins ||
      !(lo < hi)) {
    return false;
  }
  stats::MergeableHistogram h(lo, hi, bins);
  for (std::uint32_t i = 0; i < nonzero; ++i) {
    const std::uint32_t bin = r.u32();
    const std::uint64_t weight = r.u64();
    if (!r.ok() || bin >= bins) return false;
    h.add_bin(bin, weight);
  }
  *out = h;
  return true;
}

void put_sketch_map(std::string& out,
                    const std::map<std::string, GroupSketch>& m) {
  put_u32(out, static_cast<std::uint32_t>(m.size()));
  for (const auto& [label, sketch] : m) {
    put_string(out, label);
    put_histogram(out, sketch.fps);
    put_histogram(out, sketch.bw);
  }
}

bool read_sketch_map(Reader& r, std::map<std::string, GroupSketch>* out) {
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > (1u << 20)) return false;
  out->clear();
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string label = r.str();
    GroupSketch sketch;
    if (!r.ok() || !read_histogram(r, &sketch.fps) ||
        !read_histogram(r, &sketch.bw)) {
      return false;
    }
    out->emplace(std::move(label), std::move(sketch));
  }
  return true;
}

void put_group_map(std::string& out,
                   const std::map<std::string, CampaignGroup>& m) {
  put_u32(out, static_cast<std::uint32_t>(m.size()));
  for (const auto& [label, group] : m) {
    put_string(out, label);
    put_u64(out, group.plays);
    put_histogram(out, group.fps);
    put_histogram(out, group.bw);
  }
}

bool read_group_map(Reader& r, std::map<std::string, CampaignGroup>* out) {
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > (1u << 20)) return false;
  out->clear();
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string label = r.str();
    CampaignGroup group;
    group.plays = r.u64();
    if (!r.ok() || !read_histogram(r, &group.fps) ||
        !read_histogram(r, &group.bw)) {
      return false;
    }
    out->emplace(std::move(label), std::move(group));
  }
  return true;
}

std::string pad_left(const std::string& s, std::size_t width) {
  return s.size() >= width ? s : std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  return s.size() >= width ? s : s + std::string(width - s.size(), ' ');
}

std::string quantile_triplet(const stats::MergeableHistogram& h,
                             int decimals) {
  if (h.total() == 0) return "-";
  return util::str_cat(util::format_double(h.quantile(0.50), decimals), "/",
                       util::format_double(h.quantile(0.95), decimals), "/",
                       util::format_double(h.quantile(0.99), decimals));
}

std::string mean_of(std::int64_t sum_u, std::uint64_t n, int decimals) {
  if (n == 0) return "-";
  return util::format_double(from_micro(sum_u) / static_cast<double>(n),
                             decimals);
}

std::string percent_of(std::uint64_t part, std::uint64_t whole) {
  if (whole == 0) return "-";
  return util::format_double(
      100.0 * static_cast<double>(part) / static_cast<double>(whole), 1);
}

void append_group_table(std::string& out, const std::string& title,
                        const std::map<std::string, CampaignGroup>& groups) {
  out += "  by ";
  out += title;
  out += ":\n";
  for (const auto& [label, g] : groups) {
    out += util::str_cat("    ", pad_right(label, 18),
                         pad_left(std::to_string(g.plays), 10),
                         pad_left(quantile_triplet(g.fps, 1), 18),
                         pad_left(quantile_triplet(g.bw, 0), 18), "\n");
  }
}

}  // namespace

void CampaignGroup::fold(const tracer::TraceRecord& rec) {
  ++plays;
  fps.add(rec.stats.measured_fps);
  bw.add(to_kbps(rec.stats.measured_bandwidth));
}

void CampaignGroup::merge(const CampaignGroup& other) {
  plays += other.plays;
  fps.merge(other.fps);
  bw.merge(other.bw);
}

void CampaignRollup::fold(const tracer::TraceRecord& rec) {
  ++records;
  telemetry.fold(rec);
  if (rec.rtsp_blocked_user) return;  // excluded from analysis, as in §IV
  ++accesses;
  if (!rec.available) {
    ++unavailable;
    return;
  }
  if (!rec.stats.played_any_frame) return;
  const auto& st = rec.stats;
  ++played;
  if (st.protocol == net::Protocol::kUdp) {
    ++udp_plays;
  } else {
    ++tcp_plays;
  }
  if (st.fell_back_to_tcp) ++tcp_fallbacks;
  if (st.fell_back_to_http) ++http_fallbacks;
  rtsp_retries += static_cast<std::uint64_t>(st.rtsp_retries);
  rebuffer_events += static_cast<std::uint64_t>(st.rebuffer_events);
  frames_played += static_cast<std::uint64_t>(st.frames_played);
  frames_dropped += static_cast<std::uint64_t>(st.frames_dropped);
  frames_cpu_scaled += static_cast<std::uint64_t>(st.frames_cpu_scaled);
  bytes_received += static_cast<std::uint64_t>(st.bytes_received);
  packets_received += static_cast<std::uint64_t>(st.packets_received);
  repairs_received += static_cast<std::uint64_t>(st.repairs_received);
  const double bw_kbps = to_kbps(st.measured_bandwidth);
  sum_fps_u += micro(st.measured_fps);
  sum_bw_kbps_u += micro(bw_kbps);
  sum_jitter_ms_u += micro(st.jitter_ms);
  sum_preroll_s_u += micro(st.preroll_seconds);
  sum_rebuffer_s_u += micro(st.rebuffer_seconds);
  sum_play_s_u += micro(st.play_seconds);
  h_fps.add(st.measured_fps);
  h_bw.add(bw_kbps);
  h_jitter.add(st.jitter_ms);
  h_preroll.add(st.preroll_seconds);
  if (rec.rated()) {
    ++rated;
    sum_rating_u += micro(rec.rating);
    h_rating.add(rec.rating);
  }
  by_class[std::string(world::connection_class_name(rec.connection))].fold(
      rec);
  by_region[std::string(world::user_region_group_name(rec.user_group))].fold(
      rec);
  by_server[rec.server_name].fold(rec);
}

bool CampaignRollup::merge(const CampaignRollup& other, std::string* error) {
  if (other.user_first != user_first + user_count) {
    if (error != nullptr) {
      *error = util::str_cat("shard rollups are not contiguous: have users [",
                             user_first, ", ", user_first + user_count,
                             "), next shard starts at ", other.user_first);
    }
    return false;
  }
  user_count += other.user_count;
  records += other.records;
  accesses += other.accesses;
  unavailable += other.unavailable;
  played += other.played;
  rated += other.rated;
  udp_plays += other.udp_plays;
  tcp_plays += other.tcp_plays;
  tcp_fallbacks += other.tcp_fallbacks;
  http_fallbacks += other.http_fallbacks;
  rtsp_retries += other.rtsp_retries;
  rebuffer_events += other.rebuffer_events;
  frames_played += other.frames_played;
  frames_dropped += other.frames_dropped;
  frames_cpu_scaled += other.frames_cpu_scaled;
  bytes_received += other.bytes_received;
  packets_received += other.packets_received;
  repairs_received += other.repairs_received;
  sum_fps_u += other.sum_fps_u;
  sum_bw_kbps_u += other.sum_bw_kbps_u;
  sum_jitter_ms_u += other.sum_jitter_ms_u;
  sum_preroll_s_u += other.sum_preroll_s_u;
  sum_rebuffer_s_u += other.sum_rebuffer_s_u;
  sum_play_s_u += other.sum_play_s_u;
  sum_rating_u += other.sum_rating_u;
  h_fps.merge(other.h_fps);
  h_bw.merge(other.h_bw);
  h_jitter.merge(other.h_jitter);
  h_preroll.merge(other.h_preroll);
  h_rating.merge(other.h_rating);
  const auto merge_groups = [](std::map<std::string, CampaignGroup>& into,
                               const std::map<std::string, CampaignGroup>&
                                   from) {
    for (const auto& [label, group] : from) {
      into.try_emplace(label).first->second.merge(group);
    }
  };
  merge_groups(by_class, other.by_class);
  merge_groups(by_region, other.by_region);
  merge_groups(by_server, other.by_server);
  telemetry.merge(other.telemetry);
  return true;
}

std::string CampaignRollup::render() const {
  std::string out = util::str_cat(
      "Campaign rollup: users [", user_first, ", ", user_first + user_count,
      "), ", records, " records\n");
  out += util::str_cat("  accesses ", accesses, " (unavailable ", unavailable,
                       ", ", percent_of(unavailable, accesses),
                       "%), played ", played, ", rated ", rated, "\n");
  out += util::str_cat("  transport: udp ", udp_plays, " / tcp ", tcp_plays,
                       " (fell back to tcp ", tcp_fallbacks, ", http ",
                       http_fallbacks, ")\n");
  out += util::str_cat("  frames: ", frames_played, " played, ",
                       frames_dropped, " dropped, ", frames_cpu_scaled,
                       " cpu-scaled; ", rebuffer_events, " rebuffers, ",
                       rtsp_retries, " rtsp retries\n");
  out += util::str_cat("  volume: ", bytes_received, " bytes, ",
                       packets_received, " packets, ", repairs_received,
                       " repairs\n");
  out += util::str_cat("  means: ", mean_of(sum_fps_u, played, 2), " fps, ",
                       mean_of(sum_bw_kbps_u, played, 1), " kbps, jitter ",
                       mean_of(sum_jitter_ms_u, played, 2),
                       " ms, preroll ", mean_of(sum_preroll_s_u, played, 2),
                       " s, rebuffer ", mean_of(sum_rebuffer_s_u, played, 3),
                       " s, rating ", mean_of(sum_rating_u, rated, 2), "\n");
  out += util::str_cat("  p50/p95/p99: fps ", quantile_triplet(h_fps, 1),
                       ", kbps ", quantile_triplet(h_bw, 0), ", jitter ms ",
                       quantile_triplet(h_jitter, 1), ", preroll s ",
                       quantile_triplet(h_preroll, 1), ", rating ",
                       quantile_triplet(h_rating, 1), "\n");
  out += util::str_cat("    ", pad_right("group", 18), pad_left("plays", 10),
                       pad_left("fps p50/p95/p99", 18),
                       pad_left("kbps p50/p95/p99", 18), "\n");
  append_group_table(out, "connection class", by_class);
  append_group_table(out, "user region", by_region);
  append_group_table(out, "server", by_server);
  const std::string tel = telemetry.render();
  if (!tel.empty()) {
    out += tel;
  }
  return out;
}

std::string CampaignRollup::serialize() const {
  std::string out;
  put_u32(out, kRollupMagic);
  put_u32(out, kRollupVersion);
  put_u64(out, user_first);
  put_u64(out, user_count);
  put_u64(out, records);
  put_u64(out, accesses);
  put_u64(out, unavailable);
  put_u64(out, played);
  put_u64(out, rated);
  put_u64(out, udp_plays);
  put_u64(out, tcp_plays);
  put_u64(out, tcp_fallbacks);
  put_u64(out, http_fallbacks);
  put_u64(out, rtsp_retries);
  put_u64(out, rebuffer_events);
  put_u64(out, frames_played);
  put_u64(out, frames_dropped);
  put_u64(out, frames_cpu_scaled);
  put_u64(out, bytes_received);
  put_u64(out, packets_received);
  put_u64(out, repairs_received);
  put_i64(out, sum_fps_u);
  put_i64(out, sum_bw_kbps_u);
  put_i64(out, sum_jitter_ms_u);
  put_i64(out, sum_preroll_s_u);
  put_i64(out, sum_rebuffer_s_u);
  put_i64(out, sum_play_s_u);
  put_i64(out, sum_rating_u);
  put_histogram(out, h_fps);
  put_histogram(out, h_bw);
  put_histogram(out, h_jitter);
  put_histogram(out, h_preroll);
  put_histogram(out, h_rating);
  put_group_map(out, by_class);
  put_group_map(out, by_region);
  put_group_map(out, by_server);
  put_u64(out, telemetry.plays);
  put_u64(out, telemetry.samples);
  put_sketch_map(out, telemetry.by_class);
  put_sketch_map(out, telemetry.by_region);
  put_sketch_map(out, telemetry.by_server);
  put_u32(out, static_cast<std::uint32_t>(telemetry.bottleneck.size()));
  for (const auto& [label, row] : telemetry.bottleneck) {
    put_string(out, label);
    put_u32(out, static_cast<std::uint32_t>(row.size()));
    for (const int n : row) put_i64(out, n);
  }
  put_u32(out, kRollupMagic);
  return out;
}

bool CampaignRollup::parse(const std::string& bytes, CampaignRollup* out,
                           std::string* error) {
  const auto fail = [error](const char* what) {
    if (error != nullptr) *error = what;
    return false;
  };
  Reader r(bytes);
  if (r.u32() != kRollupMagic) return fail("not a campaign rollup (bad magic)");
  if (r.u32() != kRollupVersion) return fail("unsupported rollup version");
  CampaignRollup v;
  v.user_first = r.u64();
  v.user_count = r.u64();
  v.records = r.u64();
  v.accesses = r.u64();
  v.unavailable = r.u64();
  v.played = r.u64();
  v.rated = r.u64();
  v.udp_plays = r.u64();
  v.tcp_plays = r.u64();
  v.tcp_fallbacks = r.u64();
  v.http_fallbacks = r.u64();
  v.rtsp_retries = r.u64();
  v.rebuffer_events = r.u64();
  v.frames_played = r.u64();
  v.frames_dropped = r.u64();
  v.frames_cpu_scaled = r.u64();
  v.bytes_received = r.u64();
  v.packets_received = r.u64();
  v.repairs_received = r.u64();
  v.sum_fps_u = r.i64();
  v.sum_bw_kbps_u = r.i64();
  v.sum_jitter_ms_u = r.i64();
  v.sum_preroll_s_u = r.i64();
  v.sum_rebuffer_s_u = r.i64();
  v.sum_play_s_u = r.i64();
  v.sum_rating_u = r.i64();
  if (!r.ok()) return fail("truncated rollup header");
  if (!read_histogram(r, &v.h_fps) || !read_histogram(r, &v.h_bw) ||
      !read_histogram(r, &v.h_jitter) || !read_histogram(r, &v.h_preroll) ||
      !read_histogram(r, &v.h_rating)) {
    return fail("corrupt rollup histogram");
  }
  if (!read_group_map(r, &v.by_class) || !read_group_map(r, &v.by_region) ||
      !read_group_map(r, &v.by_server)) {
    return fail("corrupt rollup group table");
  }
  v.telemetry.plays = r.u64();
  v.telemetry.samples = r.u64();
  if (!r.ok() || !read_sketch_map(r, &v.telemetry.by_class) ||
      !read_sketch_map(r, &v.telemetry.by_region) ||
      !read_sketch_map(r, &v.telemetry.by_server)) {
    return fail("corrupt rollup telemetry section");
  }
  const std::uint32_t n_rows = r.u32();
  if (!r.ok() || n_rows > (1u << 20)) {
    return fail("corrupt rollup bottleneck table");
  }
  for (std::uint32_t i = 0; i < n_rows; ++i) {
    std::string label = r.str();
    const std::uint32_t len = r.u32();
    if (!r.ok() || len > (1u << 10)) {
      return fail("corrupt rollup bottleneck table");
    }
    std::vector<int> row(len);
    for (auto& n : row) n = static_cast<int>(r.i64());
    v.telemetry.bottleneck.emplace(std::move(label), std::move(row));
  }
  if (!r.ok() || r.u32() != kRollupMagic) {
    return fail("corrupt rollup trailer");
  }
  *out = std::move(v);
  return true;
}

bool CampaignRollup::save(const std::string& path) const {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os.good()) return false;
  const std::string bytes = serialize();
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  os.flush();
  return os.good();
}

bool CampaignRollup::load(const std::string& path, CampaignRollup* out,
                          std::string* error) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) {
    if (error != nullptr) *error = "cannot open rollup file: " + path;
    return false;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  return parse(buf.str(), out, error);
}

std::uint64_t peak_rss_kb() {
  std::ifstream is("/proc/self/status");
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return static_cast<std::uint64_t>(
          std::strtoull(line.c_str() + 6, nullptr, 10));
    }
  }
  return 0;
}

CampaignResult run_campaign(const CampaignConfig& config) {
  RV_CHECK_GE(config.plays_scale, 1u) << "plays_scale must be >= 1";
  RV_CHECK_GE(config.shard_count, 1u) << "shard_count must be >= 1";
  RV_CHECK_LT(config.shard_index, config.shard_count)
      << "shard_index must be < shard_count";
  RV_CHECK_GE(config.chunk_users, 1u) << "chunk_users must be >= 1";
  const StudyConfig& study = config.study;
  RV_CHECK(study.play_scale > 0.0 && study.play_scale <= 1.0)
      << "play_scale must be in (0, 1], got " << study.play_scale;

  const auto scale_plays = [&study](world::UserProfile& u) {
    if (study.play_scale < 1.0) {
      u.clips_to_play = std::max(
          1,
          static_cast<int>(std::lround(u.clips_to_play * study.play_scale)));
      u.clips_to_rate = std::min(u.clips_to_rate, u.clips_to_play);
    }
  };

  world::PopulationStream sizing(study.population, config.plays_scale);
  const std::uint64_t total_users = sizing.size();
  const std::uint64_t first =
      total_users * config.shard_index / config.shard_count;
  const std::uint64_t last =
      total_users * (config.shard_index + 1) / config.shard_count;

  const media::Catalog catalog = make_catalog(study);
  const world::RegionGraph graph;
  tracer::TracerConfig tracer_cfg = study.tracer;
  if (tracer_cfg.faults.seed == 0) tracer_cfg.faults.seed = study.seed;
  tracer::RealTracer tracer(catalog, graph, tracer_cfg);

  if (tracer_cfg.faults.enabled &&
      tracer_cfg.faults.mechanistic_unavailability) {
    // Mechanistic unavailability grids each site's accesses over the whole
    // campaign, so a shard needs the full population's per-site totals and
    // its own users' starting ranks. Profile generation is ~1000× cheaper
    // than play execution, so one streaming prefix pass is affordable; only
    // this shard's users keep a per-user base, bounding memory.
    tracer.access_plan_begin();
    world::PopulationStream all(study.population, config.plays_scale);
    for (std::uint64_t id = 0; id < total_users; ++id) {
      world::UserProfile u = all.next();
      scale_plays(u);
      tracer.access_plan_add(u, /*keep_base=*/id >= first && id < last);
    }
  }

  CampaignResult res;
  res.rollup.user_first = first;
  res.rollup.user_count = last - first;
  res.users = last - first;

  // Wall-clock-side liveness metrics (no-ops unless a registry is
  // installed; never feeds back into sim state or the RNG tree).
  obs::metrics_gauge_set(obs::MetricGauge::kUsersPlanned,
                         static_cast<std::int64_t>(last - first));
  obs::metrics_gauge_set(obs::MetricGauge::kShardIndex, config.shard_index);
  obs::metrics_gauge_set(obs::MetricGauge::kShardCount, config.shard_count);
  obs::metrics_gauge_set(obs::MetricGauge::kLastFoldUser,
                         static_cast<std::int64_t>(first));

  std::unique_ptr<SpillWriter> writer;
  if (!config.spill_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config.spill_dir, ec);
    if (ec) {
      throw std::runtime_error("cannot create spill dir: " + config.spill_dir);
    }
    res.spill_path = config.spill_dir + "/records.spill";
    res.rollup_path = config.spill_dir + "/rollup.bin";
    writer = std::make_unique<SpillWriter>(res.spill_path);
    if (!writer->ok()) {
      throw std::runtime_error("cannot write spill file: " + res.spill_path);
    }
  }

  int n_threads = study.threads > 0
                      ? study.threads
                      : static_cast<int>(std::thread::hardware_concurrency());
  n_threads = std::clamp(n_threads, 1, 64);
  res.threads = n_threads;
  obs::metrics_gauge_set(obs::MetricGauge::kWorkers, n_threads);
  // Contexts persist across chunks (deque: PlayContext is pinned, not
  // movable), so steady-state chunks allocate ~nothing.
  std::deque<tracer::PlayContext> contexts;
  for (int i = 0; i < n_threads; ++i) contexts.emplace_back();

  world::PopulationStream stream(study.population, config.plays_scale);
  stream.skip(first);
  std::vector<world::UserProfile> users;
  std::vector<tracer::TraceRecord> records;

  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t pos = first;
  std::uint64_t spill_bytes_fed = 0, spill_frames_fed = 0;
  while (pos < last) {
    const std::uint64_t count = std::min(config.chunk_users, last - pos);
    users.clear();
    users.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      users.push_back(stream.next());
      scale_plays(users.back());
    }
    const tracer::StudyPlan plan = tracer.build_plan(users, study.seed);
    records.resize(plan.tasks.size());
    alignas(64) std::atomic<std::size_t> next{0};
    auto worker = [&](int worker_index) {
      tracer::PlayContext& ctx =
          contexts[static_cast<std::size_t>(worker_index)];
      while (true) {
        const std::size_t k = next.fetch_add(1, std::memory_order_relaxed);
        if (k >= plan.order.size()) return;
        const tracer::PlayTask& task = plan.tasks[plan.order[k]];
        records[task.record_slot] =
            tracer.run_play(task, users[task.user_index], ctx);
      }
    };
    if (n_threads == 1 || plan.tasks.size() < 2) {
      worker(0);
    } else {
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(n_threads));
      for (int i = 0; i < n_threads; ++i) pool.emplace_back(worker, i);
      for (auto& t : pool) t.join();
    }
    // Fold + spill in slot (user-major, play-minor) order: the global record
    // sequence across chunks and shards is the user-id order, which is what
    // makes the merged spill byte-identical to a single-process run.
    for (const auto& rec : records) {
      res.rollup.fold(rec);
      if (writer != nullptr) writer->append(rec);
      if (rec.analyzable()) {
        obs::metrics_observe(obs::MetricHist::kPlayFps,
                             rec.stats.measured_fps);
        obs::metrics_observe(obs::MetricHist::kPlayBandwidthKbps,
                             to_kbps(rec.stats.measured_bandwidth));
      }
    }
    res.plays += records.size();
    pos += count;
    obs::metrics_add(obs::Metric::kPlaysCompleted, records.size());
    obs::metrics_add(obs::Metric::kUsersCompleted, count);
    obs::metrics_add(obs::Metric::kChunksCompleted);
    obs::metrics_gauge_set(obs::MetricGauge::kLastFoldUser,
                           static_cast<std::int64_t>(pos));
    if (writer != nullptr) {
      obs::metrics_add(obs::Metric::kSpillBytesWritten,
                       writer->bytes_written() - spill_bytes_fed);
      obs::metrics_add(obs::Metric::kSpillFramesWritten,
                       writer->frames_written() - spill_frames_fed);
      spill_bytes_fed = writer->bytes_written();
      spill_frames_fed = writer->frames_written();
    }
    obs::metrics_gauge_set(obs::MetricGauge::kRssKb, obs::current_rss_kb());
    if (config.progress) config.progress(res.plays, pos - first, last - first);
  }
  res.execute_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  if (writer != nullptr) {
    if (!writer->finish()) {
      throw std::runtime_error("cannot finalize spill file: " +
                               res.spill_path);
    }
    // The footer written by finish() is part of the spill byte count.
    obs::metrics_add(obs::Metric::kSpillBytesWritten,
                     writer->bytes_written() - spill_bytes_fed);
    obs::metrics_add(obs::Metric::kSpillFramesWritten,
                     writer->frames_written() - spill_frames_fed);
  }
  if (!res.rollup_path.empty() && !res.rollup.save(res.rollup_path)) {
    throw std::runtime_error("cannot write rollup file: " + res.rollup_path);
  }
  res.peak_rss_kb = peak_rss_kb();
  return res;
}

}  // namespace rv::study
