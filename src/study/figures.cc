#include "study/figures.h"

#include <cmath>
#include <filesystem>
#include <sstream>

#include "stats/correlation.h"
#include "stats/csv.h"
#include "stats/render.h"
#include "stats/summary.h"
#include "study/analysis.h"
#include "tracer/real_tracer.h"
#include "util/strings.h"
#include "world/servers.h"

namespace rv::study {
namespace {

std::string g_csv_dir;

using stats::Cdf;
using stats::ComparisonRow;
using stats::LabeledCdf;
using stats::RenderOptions;
using util::format_double;
using util::str_cat;

std::string pct(double fraction) {
  return str_cat(format_double(fraction * 100.0, 1), "%");
}

void export_cdfs(const std::string& stem,
                 const std::vector<LabeledCdf>& series) {
  if (g_csv_dir.empty()) return;
  std::filesystem::create_directories(g_csv_dir);
  stats::CsvWriter csv(g_csv_dir + "/" + stem + ".csv");
  csv.write_row({"series", "x", "cdf"});
  for (const auto& s : series) {
    for (const auto& pt : s.cdf.sample(120)) {
      csv.write_row({s.label, format_double(pt.x, 4),
                     format_double(pt.f, 5)});
    }
  }
}

void export_counts(const std::string& stem, const stats::CountTable& table) {
  if (g_csv_dir.empty()) return;
  std::filesystem::create_directories(g_csv_dir);
  stats::CsvWriter csv(g_csv_dir + "/" + stem + ".csv");
  csv.write_row({"label", "count"});
  for (const auto& [label, n] : table.sorted_by_count()) {
    csv.write_row({label, std::to_string(n)});
  }
}

RenderOptions fps_options(const std::string& title) {
  RenderOptions opts;
  opts.title = title;
  opts.x_label = "Frame Rate (fps)";
  opts.x_min = 0.0;
  opts.x_max = 30.0;
  return opts;
}

RenderOptions jitter_options(const std::string& title) {
  RenderOptions opts;
  opts.title = title;
  opts.x_label = "Jitter (ms)";
  opts.x_min = 0.0;
  opts.x_max = 3050.0;
  return opts;
}

RenderOptions bw_options(const std::string& title, double x_max) {
  RenderOptions opts;
  opts.title = title;
  opts.x_label = "Average Bandwidth (Kbps)";
  opts.x_min = 0.0;
  opts.x_max = x_max;
  return opts;
}

std::string render_one_cdf(const std::string& title,
                           const std::vector<double>& values,
                           RenderOptions opts, const std::string& stem) {
  std::vector<LabeledCdf> series;
  series.push_back({"all", Cdf(values)});
  export_cdfs(stem, series);
  opts.title = title;
  return stats::render_cdfs(series, opts);
}

}  // namespace

void set_csv_export_dir(const std::string& dir) { g_csv_dir = dir; }

std::string fig01_buffering(const StudyConfig& config) {
  // One instrumented playout: a DSL/Cable user in Massachusetts streaming a
  // broadband SureStream clip from a U.S. server (the paper's Figure 1
  // setting: 13 s of buffering, then steady playout).
  const media::Catalog catalog = make_catalog(config);
  const world::RegionGraph graph;
  tracer::TracerConfig tcfg = config.tracer;
  tcfg.watch_duration = sec(70);
  const tracer::RealTracer tracer(catalog, graph, tcfg);

  world::UserProfile user;
  user.id = 0;
  user.country = "US";
  user.us_state = "MA";
  user.region = world::Region::kUsEast;
  user.group = world::UserRegionGroup::kUsCanada;
  user.connection = world::ConnectionClass::kDslCable;
  user.pc_class = "Pentium III / 256-512MB";
  user.isp_load_lo = 0.3;
  user.isp_load_hi = 0.5;
  user.seed = config.seed;

  // Pick a SureStream clip from a US site (site 0 or 1).
  std::size_t playlist_index = 0;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (media::Catalog::site_of(catalog.clip(i).id()) <= 1 &&
        catalog.clip(i).is_surestream()) {
      playlist_index = i;
      break;
    }
  }
  const auto rec =
      tracer.run_single(user, playlist_index, config.seed ^ 0xF161ull);

  std::ostringstream os;
  os << "Figure 1: Buffering and Playout of a RealVideo Clip\n";
  os << "  clip " << rec.clip_id << " from " << rec.server_name
     << ", encoded " << format_double(to_kbps(rec.stats.encoded_bandwidth), 0)
     << " Kbps / " << format_double(rec.stats.encoded_fps, 1)
     << " fps; preroll " << format_double(rec.stats.preroll_seconds, 1)
     << " s\n";
  os << "  t(s)  bandwidth(Kbps)  frame-rate(fps)\n";
  for (const auto& s : rec.stats.samples) {
    os << "  " << format_double(s.t_seconds, 0) << "\t"
       << format_double(to_kbps(s.bandwidth), 1) << "\t"
       << format_double(s.frame_rate, 1) << "\n";
  }
  if (!g_csv_dir.empty()) {
    std::filesystem::create_directories(g_csv_dir);
    stats::CsvWriter csv(g_csv_dir + "/fig01_buffering.csv");
    csv.write_row({"t_seconds", "bandwidth_kbps", "frame_rate_fps",
                   "coded_bandwidth_kbps", "coded_fps"});
    for (const auto& s : rec.stats.samples) {
      csv.write_row({format_double(s.t_seconds, 1),
                     format_double(to_kbps(s.bandwidth), 2),
                     format_double(s.frame_rate, 2),
                     format_double(to_kbps(rec.stats.encoded_bandwidth), 1),
                     format_double(rec.stats.encoded_fps, 2)});
    }
  }
  const std::vector<ComparisonRow> rows = {
      {"initial buffering", "~13 s",
       str_cat(format_double(rec.stats.preroll_seconds, 1), " s")},
      {"frame rate steadier than bandwidth", "yes (buffer smooths playout)",
       rec.stats.jitter_ms < 100 ? "yes" : "partially"},
  };
  os << stats::render_comparison("paper vs measured", rows);
  return os.str();
}

std::string fig05_clips_per_user(const StudyResult& result) {
  const auto values = plays_per_user(result.accesses());
  std::ostringstream os;
  RenderOptions opts;
  opts.x_label = "Clips Per User";
  opts.x_min = 0.0;
  opts.x_max = 100.0;
  os << render_one_cdf("Figure 5: CDF of video clips played per user", values,
                       opts, "fig05_clips_per_user");
  const Cdf cdf(values);
  const std::vector<ComparisonRow> rows = {
      {"users", "63", std::to_string(values.size())},
      {"median clips/user", ">= 40", format_double(cdf.median(), 0)},
      {"max clips/user", "98", format_double(cdf.max(), 0)},
  };
  os << stats::render_comparison("paper vs measured", rows);
  return os.str();
}

std::string fig06_rated_per_user(const StudyResult& result) {
  const auto values = ratings_per_user(result.accesses());
  std::ostringstream os;
  RenderOptions opts;
  opts.x_label = "Rated Clips Per User";
  opts.x_min = 0.0;
  opts.x_max = 36.0;
  os << render_one_cdf("Figure 6: CDF of video clips rated per user", values,
                       opts, "fig06_rated_per_user");
  const Cdf cdf(values);
  const std::vector<ComparisonRow> rows = {
      {"median rated/user", "3", format_double(cdf.median(), 0)},
      {"users rating 0 clips", "some",
       pct(stats::fraction_below(values, 1.0))},
  };
  os << stats::render_comparison("paper vs measured", rows);
  return os.str();
}

std::string fig07_user_countries(const StudyResult& result) {
  const auto table = clips_played_by_country(result.played());
  export_counts("fig07_user_countries", table);
  std::ostringstream os;
  os << stats::render_bars(table,
                           "Figure 7: video clips played by users from each "
                           "country");
  const std::vector<ComparisonRow> rows = {
      {"countries", "12", std::to_string(table.entries().size())},
      {"US clips", "2100 of 2855", str_cat(table.count("US"), " of ",
                                           table.total())},
      {"largest non-US", "China (142)",
       str_cat("China (", table.count("China"), ")")},
  };
  os << stats::render_comparison("paper vs measured", rows);
  return os.str();
}

std::string fig08_server_countries(const StudyResult& result) {
  const auto table = clips_served_by_country(result.played());
  export_counts("fig08_server_countries", table);
  std::ostringstream os;
  os << stats::render_bars(table,
                           "Figure 8: video clips served by RealServers from "
                           "each country");
  const std::vector<ComparisonRow> rows = {
      {"countries", "8", std::to_string(table.entries().size())},
      {"US share", "1075 of 2892 (~37%)",
       str_cat(table.count("US"), " of ", table.total())},
  };
  os << stats::render_comparison("paper vs measured", rows);
  return os.str();
}

std::string fig09_us_states(const StudyResult& result) {
  const auto table = clips_played_by_us_state(result.played());
  export_counts("fig09_us_states", table);
  std::ostringstream os;
  os << stats::render_bars(
      table, "Figure 9: video clips played by U.S. users from each state");
  const std::vector<ComparisonRow> rows = {
      {"dominant state", "MA (~1100)",
       str_cat("MA (", table.count("MA"), ")")},
      {"states", "17", std::to_string(table.entries().size())},
  };
  os << stats::render_comparison("paper vs measured", rows);
  return os.str();
}

std::string fig10_availability(const StudyResult& result) {
  const auto by_server = unavailability_by_server(result.accesses());
  std::ostringstream os;
  os << "Figure 10: fraction of unavailable clips per server\n";
  double total = 0.0;
  for (const auto& [name, frac] : by_server) {
    os << "  " << name << std::string(name.size() < 14 ? 14 - name.size() : 1,
                                      ' ')
       << format_double(frac, 3) << "\n";
    total += frac;
  }
  const double mean =
      by_server.empty() ? 0.0 : total / static_cast<double>(by_server.size());
  if (!g_csv_dir.empty()) {
    std::filesystem::create_directories(g_csv_dir);
    stats::CsvWriter csv(g_csv_dir + "/fig10_availability.csv");
    csv.write_row({"server", "fraction_unavailable"});
    for (const auto& [name, frac] : by_server) {
      csv.write_row({name, format_double(frac, 4)});
    }
  }
  const std::vector<ComparisonRow> rows = {
      {"average unavailability", "~10%", pct(mean)},
      {"worst server", "CHI/CCTV (~22%)",
       str_cat("CHI/CCTV (",
               pct(by_server.count("CHI/CCTV") != 0u
                       ? by_server.at("CHI/CCTV")
                       : 0.0),
               ")")},
  };
  os << stats::render_comparison("paper vs measured", rows);
  return os.str();
}

std::string fig11_framerate_all(const StudyResult& result) {
  const auto values = frame_rates(result.played());
  std::ostringstream os;
  os << render_one_cdf("Figure 11: CDF of frame rate for all video clips",
                       values, fps_options(""), "fig11_framerate_all");
  const std::vector<ComparisonRow> rows = {
      {"mean frame rate", "10 fps",
       str_cat(format_double(stats::mean_of(values), 1), " fps")},
      {"% below 3 fps", "~25%", pct(stats::fraction_below(values, 3.0))},
      {"% at/above 15 fps", "~25%",
       pct(stats::fraction_at_or_above(values, 15.0))},
      {"% at/above 24 fps", "< 1%",
       pct(stats::fraction_at_or_above(values, 24.0))},
  };
  os << stats::render_comparison("paper vs measured", rows);
  return os.str();
}

std::string fig12_framerate_by_net(const StudyResult& result) {
  const auto groups = by_connection(result.played());
  const auto series = group_cdfs(groups, frame_rates);
  export_cdfs("fig12_framerate_by_net", series);
  std::ostringstream os;
  os << stats::render_cdfs(
      series,
      fps_options(
          "Figure 12: CDF of frame rate by end-host network configuration"));
  std::vector<ComparisonRow> rows;
  for (const auto& [label, records] : groups) {
    const auto values = frame_rates(records);
    rows.push_back({str_cat(label, " % < 3 fps"),
                    label == "56k Modem" ? "> 50%" : "~20%",
                    pct(stats::fraction_below(values, 3.0))});
    rows.push_back({str_cat(label, " % >= 15 fps"),
                    label == "56k Modem" ? "< 10%" : "~30%",
                    pct(stats::fraction_at_or_above(values, 15.0))});
  }
  os << stats::render_comparison("paper vs measured", rows);
  return os.str();
}

std::string fig13_bandwidth_by_net(const StudyResult& result) {
  const auto groups = by_connection(result.played());
  const auto series = group_cdfs(groups, bandwidths_kbps);
  export_cdfs("fig13_bandwidth_by_net", series);
  std::ostringstream os;
  os << stats::render_cdfs(
      series, bw_options("Figure 13: CDF of bandwidth by end-host network "
                         "configuration",
                         500.0));
  std::vector<ComparisonRow> rows;
  if (groups.count("DSL/Cable") != 0u) {
    const auto dsl = bandwidths_kbps(groups.at("DSL/Cable"));
    rows.push_back({"DSL/Cable near capacity (>= 256 Kbps)", "< 10%",
                    pct(stats::fraction_at_or_above(dsl, 256.0))});
  }
  if (groups.count("56k Modem") != 0u) {
    const auto modem = bandwidths_kbps(groups.at("56k Modem"));
    rows.push_back({"modem median bandwidth", "~30 Kbps",
                    str_cat(format_double(stats::quantile(modem, 0.5), 0),
                            " Kbps")});
  }
  os << stats::render_comparison("paper vs measured", rows);
  return os.str();
}

std::string fig14_framerate_by_server_region(const StudyResult& result) {
  const auto groups = by_server_group(result.played());
  const auto series = group_cdfs(groups, frame_rates);
  export_cdfs("fig14_framerate_by_server_region", series);
  std::ostringstream os;
  os << stats::render_cdfs(
      series, fps_options("Figure 14: CDF of frame rate for RealServers in "
                          "different geographic regions"));
  std::vector<ComparisonRow> rows;
  double best = 0.0;
  double worst = 100.0;
  for (const auto& [label, records] : groups) {
    const double mean = stats::mean_of(frame_rates(records));
    best = std::max(best, mean);
    worst = std::min(worst, mean);
    rows.push_back({str_cat(label, " mean fps"), "8-13 fps",
                    format_double(mean, 1)});
  }
  rows.push_back({"spread of means", "~5 fps (regions similar)",
                  format_double(best - worst, 1)});
  os << stats::render_comparison("paper vs measured", rows);
  return os.str();
}

std::string fig15_framerate_by_user_region(const StudyResult& result) {
  const auto groups = by_user_group(result.played());
  const auto series = group_cdfs(groups, frame_rates);
  export_cdfs("fig15_framerate_by_user_region", series);
  std::ostringstream os;
  os << stats::render_cdfs(
      series, fps_options("Figure 15: CDF of frame rate for users in "
                          "different geographic regions"));
  std::vector<ComparisonRow> rows;
  for (const auto& [label, records] : groups) {
    const auto values = frame_rates(records);
    const char* paper = "-";
    if (label == "Australia/NZ") paper = "75% < 3 fps (worst)";
    if (label == "Europe") paper = "15% < 3 fps (best)";
    rows.push_back({str_cat(label, " % < 3 fps"), paper,
                    pct(stats::fraction_below(values, 3.0))});
  }
  os << stats::render_comparison("paper vs measured", rows);
  return os.str();
}

std::string fig16_protocol_mix(const StudyResult& result) {
  const auto played = result.played();
  std::size_t udp = 0;
  for (const auto* r : played) {
    if (r->stats.protocol == net::Protocol::kUdp) ++udp;
  }
  const double udp_frac =
      played.empty() ? 0.0
                     : static_cast<double>(udp) /
                           static_cast<double>(played.size());
  std::ostringstream os;
  os << "Figure 16: fraction of transport protocols observed\n";
  os << "  UDP " << pct(udp_frac) << "   TCP " << pct(1.0 - udp_frac)
     << "\n";
  if (!g_csv_dir.empty()) {
    std::filesystem::create_directories(g_csv_dir);
    stats::CsvWriter csv(g_csv_dir + "/fig16_protocol_mix.csv");
    csv.write_row({"protocol", "fraction"});
    csv.write_row({"UDP", format_double(udp_frac, 4)});
    csv.write_row({"TCP", format_double(1.0 - udp_frac, 4)});
  }
  const std::vector<ComparisonRow> rows = {
      {"UDP share", "~56%", pct(udp_frac)},
      {"TCP share", "~44%", pct(1.0 - udp_frac)},
  };
  os << stats::render_comparison("paper vs measured", rows);
  return os.str();
}

std::string fig17_framerate_by_protocol(const StudyResult& result) {
  const auto groups = by_protocol(result.played());
  const auto series = group_cdfs(groups, frame_rates);
  export_cdfs("fig17_framerate_by_protocol", series);
  std::ostringstream os;
  os << stats::render_cdfs(
      series, fps_options("Figure 17: CDF of frame rate by transport "
                          "protocol"));
  std::vector<ComparisonRow> rows;
  for (const auto& [label, records] : groups) {
    rows.push_back({str_cat(label, " % < 3 fps"),
                    label == "TCP" ? "~28%" : "~22%",
                    pct(stats::fraction_below(frame_rates(records), 3.0))});
  }
  os << stats::render_comparison(
      "paper vs measured (distributions nearly identical)", rows);
  return os.str();
}

std::string fig18_bandwidth_by_protocol(const StudyResult& result) {
  const auto groups = by_protocol(result.played());
  const auto series = group_cdfs(groups, bandwidths_kbps);
  export_cdfs("fig18_bandwidth_by_protocol", series);
  std::ostringstream os;
  os << stats::render_cdfs(
      series, bw_options("Figure 18: CDF of bandwidth by transport protocol",
                         600.0));
  std::vector<ComparisonRow> rows;
  for (const auto& [label, records] : groups) {
    const auto values = bandwidths_kbps(records);
    rows.push_back({str_cat(label, " median Kbps"),
                    "comparable (UDP slightly above)",
                    format_double(stats::quantile(values, 0.5), 0)});
  }
  os << stats::render_comparison("paper vs measured", rows);
  return os.str();
}

std::string fig19_framerate_by_pc(const StudyResult& result) {
  const auto groups = by_pc_class(result.played());
  const auto series = group_cdfs(groups, frame_rates);
  export_cdfs("fig19_framerate_by_pc", series);
  std::ostringstream os;
  os << stats::render_cdfs(
      series,
      fps_options("Figure 19: CDF of frame rate for classes of user PCs"));
  std::vector<ComparisonRow> rows;
  for (const auto& [label, records] : groups) {
    const auto values = frame_rates(records);
    const bool ancient = label == "Intel Pentium MMX / 24MB";
    rows.push_back(
        {str_cat(label, " % > 3 fps"), ancient ? "10-20%" : "mixed, high",
         pct(stats::fraction_at_or_above(values, 3.0))});
  }
  os << stats::render_comparison("paper vs measured", rows);
  return os.str();
}

std::string fig20_jitter_all(const StudyResult& result) {
  const auto values = jitters_ms(result.played());
  std::ostringstream os;
  os << render_one_cdf("Figure 20: CDF of overall jitter", values,
                       jitter_options(""), "fig20_jitter_all");
  const std::vector<ComparisonRow> rows = {
      {"% below 50 ms (imperceptible)", "~50%",
       pct(stats::fraction_below(values, 50.0))},
      {"% at/above 300 ms (unacceptable)", "~15%",
       pct(stats::fraction_at_or_above(values, 300.0))},
  };
  os << stats::render_comparison("paper vs measured", rows);
  return os.str();
}

std::string fig21_jitter_by_net(const StudyResult& result) {
  const auto groups = by_connection(result.played());
  const auto series = group_cdfs(groups, jitters_ms);
  export_cdfs("fig21_jitter_by_net", series);
  std::ostringstream os;
  os << stats::render_cdfs(
      series, jitter_options("Figure 21: CDF of jitter by network "
                             "configuration"));
  std::vector<ComparisonRow> rows;
  for (const auto& [label, records] : groups) {
    const auto values = jitters_ms(records);
    const char* below = "-";
    const char* above = "-";
    if (label == "56k Modem") {
      below = "~10%";
      above = "~45%";
    } else if (label == "DSL/Cable") {
      below = "~55%";
      above = "~15%";
    } else if (label == "T1/LAN") {
      below = "~55%";
      above = "~20%";
    }
    rows.push_back({str_cat(label, " % < 50 ms"), below,
                    pct(stats::fraction_below(values, 50.0))});
    rows.push_back({str_cat(label, " % >= 300 ms"), above,
                    pct(stats::fraction_at_or_above(values, 300.0))});
  }
  os << stats::render_comparison("paper vs measured", rows);
  return os.str();
}

std::string fig22_jitter_by_server_region(const StudyResult& result) {
  const auto groups = by_server_group(result.played());
  const auto series = group_cdfs(groups, jitters_ms);
  export_cdfs("fig22_jitter_by_server_region", series);
  std::ostringstream os;
  os << stats::render_cdfs(
      series, jitter_options("Figure 22: CDF of jitter for RealServers in "
                             "different geographic regions"));
  std::vector<ComparisonRow> rows;
  for (const auto& [label, records] : groups) {
    rows.push_back({str_cat(label, " % < 50 ms"),
                    label == "Asia" ? "~45% (worst)" : "~55%",
                    pct(stats::fraction_below(jitters_ms(records), 50.0))});
  }
  os << stats::render_comparison("paper vs measured", rows);
  return os.str();
}

std::string fig23_jitter_by_user_region(const StudyResult& result) {
  const auto groups = by_user_group(result.played());
  const auto series = group_cdfs(groups, jitters_ms);
  export_cdfs("fig23_jitter_by_user_region", series);
  std::ostringstream os;
  os << stats::render_cdfs(
      series, jitter_options("Figure 23: CDF of jitter for users in "
                             "different geographic regions"));
  std::vector<ComparisonRow> rows;
  for (const auto& [label, records] : groups) {
    const char* paper = "-";
    if (label == "Australia/NZ") paper = "worst";
    if (label == "Asia") paper = "second worst";
    if (label == "Europe" || label == "US/Canada") paper = "comparable, best";
    rows.push_back({str_cat(label, " % >= 300 ms"), paper,
                    pct(stats::fraction_at_or_above(jitters_ms(records),
                                                    300.0))});
  }
  os << stats::render_comparison("paper vs measured", rows);
  return os.str();
}

std::string fig24_jitter_by_protocol(const StudyResult& result) {
  const auto groups = by_protocol(result.played());
  const auto series = group_cdfs(groups, jitters_ms);
  export_cdfs("fig24_jitter_by_protocol", series);
  std::ostringstream os;
  os << stats::render_cdfs(
      series, jitter_options("Figure 24: CDF of jitter by transport "
                             "protocol"));
  std::vector<ComparisonRow> rows;
  for (const auto& [label, records] : groups) {
    rows.push_back({str_cat(label, " % < 50 ms"), "nearly identical",
                    pct(stats::fraction_below(jitters_ms(records), 50.0))});
  }
  os << stats::render_comparison("paper vs measured", rows);
  return os.str();
}

std::string fig25_jitter_by_bandwidth(const StudyResult& result) {
  const auto groups = by_bandwidth_bucket(result.played());
  const auto series = group_cdfs(groups, jitters_ms);
  export_cdfs("fig25_jitter_by_bandwidth", series);
  std::ostringstream os;
  os << stats::render_cdfs(
      series,
      jitter_options("Figure 25: CDF of jitter for observed bandwidth"));
  std::vector<ComparisonRow> rows;
  for (const auto& [label, records] : groups) {
    const auto values = jitters_ms(records);
    const char* free_paper = "-";
    const char* ok_paper = "-";
    if (label == "< 10K") {
      free_paper = "~10%";
      ok_paper = "~20%";
    } else if (label == "> 100K") {
      free_paper = "~80%";
      ok_paper = "~95%";
    }
    rows.push_back({str_cat(label, " % jitter-free (<50ms)"), free_paper,
                    pct(stats::fraction_below(values, 50.0))});
    rows.push_back({str_cat(label, " % acceptable (<300ms)"), ok_paper,
                    pct(stats::fraction_below(values, 300.0))});
  }
  os << stats::render_comparison("paper vs measured", rows);
  return os.str();
}

std::string fig26_quality_all(const StudyResult& result) {
  const auto values = ratings(result.rated());
  std::ostringstream os;
  RenderOptions opts;
  opts.x_label = "Quality Rating";
  opts.x_min = 0.0;
  opts.x_max = 10.0;
  os << render_one_cdf("Figure 26: CDF of overall quality", values, opts,
                       "fig26_quality_all");
  const std::vector<ComparisonRow> rows = {
      {"mean rating", "~5", format_double(stats::mean_of(values), 2)},
      {"25th percentile", "~2.5 (uniform-ish)",
       format_double(stats::quantile(values, 0.25), 2)},
      {"75th percentile", "~7.5 (uniform-ish)",
       format_double(stats::quantile(values, 0.75), 2)},
  };
  os << stats::render_comparison("paper vs measured", rows);
  return os.str();
}

std::string fig27_quality_by_net(const StudyResult& result) {
  const auto groups = by_connection(result.rated());
  const auto series = group_cdfs(groups, ratings);
  export_cdfs("fig27_quality_by_net", series);
  std::ostringstream os;
  RenderOptions opts;
  opts.title =
      "Figure 27: CDF of quality by end-host network configuration";
  opts.x_label = "Quality Rating";
  opts.x_min = 0.0;
  opts.x_max = 10.0;
  os << stats::render_cdfs(series, opts);
  std::vector<ComparisonRow> rows;
  double modem_mean = 0.0;
  double dsl_mean = 0.0;
  for (const auto& [label, records] : groups) {
    const auto values = ratings(records);
    if (values.empty()) continue;
    const double mean = stats::mean_of(values);
    if (label == "56k Modem") modem_mean = mean;
    if (label == "DSL/Cable") dsl_mean = mean;
    rows.push_back({str_cat(label, " mean rating"), "-",
                    format_double(mean, 2)});
  }
  if (dsl_mean > 0) {
    rows.push_back({"modem mean / DSL mean", "~0.5",
                    format_double(modem_mean / dsl_mean, 2)});
  }
  os << stats::render_comparison("paper vs measured", rows);
  return os.str();
}

std::string fig28_quality_vs_bandwidth(const StudyResult& result) {
  const auto rated = result.rated();
  std::vector<double> xs;
  std::vector<double> ys;
  for (const auto* r : rated) {
    xs.push_back(to_kbps(r->stats.measured_bandwidth));
    ys.push_back(r->rating);
  }
  std::ostringstream os;
  RenderOptions opts;
  opts.title = "Figure 28: quality rating vs network bandwidth";
  opts.x_label = "Average Bandwidth (Kbps)";
  opts.x_min = 0.0;
  opts.x_max = 600.0;
  os << stats::render_scatter(xs, ys, opts, "Quality Rating");
  if (!g_csv_dir.empty()) {
    std::filesystem::create_directories(g_csv_dir);
    stats::CsvWriter csv(g_csv_dir + "/fig28_quality_vs_bandwidth.csv");
    csv.write_row({"bandwidth_kbps", "rating"});
    for (std::size_t i = 0; i < xs.size(); ++i) {
      csv.write_row({format_double(xs[i], 1), format_double(ys[i], 2)});
    }
  }
  double min_high_bw_rating = 10.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] >= 200.0) min_high_bw_rating = std::min(min_high_bw_rating,
                                                      ys[i]);
  }
  const double r = xs.size() > 2 ? stats::pearson(xs, ys) : 0.0;
  const std::vector<ComparisonRow> rows = {
      {"correlation", "weak positive trend", format_double(r, 2)},
      {"lowest rating at >= 200 Kbps", "no low ratings at high bandwidth",
       format_double(min_high_bw_rating, 1)},
  };
  os << stats::render_comparison("paper vs measured", rows);
  return os.str();
}

std::string study_summary(const StudyResult& result) {
  const auto accesses = result.accesses();
  const auto played = result.played();
  const auto rated = result.rated();
  std::size_t unavailable = 0;
  for (const auto* r : accesses) {
    if (!r->available) ++unavailable;
  }
  std::ostringstream os;
  const std::vector<ComparisonRow> rows = {
      {"participating users", "63", std::to_string(result.users.size())},
      {"clips played", "2855", std::to_string(played.size())},
      {"clips watched & rated", "388", std::to_string(rated.size())},
      {"accesses finding clip unavailable", "~10%",
       pct(accesses.empty() ? 0.0
                            : static_cast<double>(unavailable) /
                                  static_cast<double>(accesses.size()))},
  };
  os << stats::render_comparison("Study totals (paper section IV)", rows);
  return os.str();
}

}  // namespace rv::study
