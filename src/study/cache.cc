#include "study/cache.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/strings.h"

namespace rv::study {
namespace {

constexpr std::uint32_t kMagic = 0x52565354;  // "RVST"
constexpr std::uint32_t kVersion = 7;

// Where cache files live unless the caller overrides (--cache-dir).
constexpr const char* kDefaultCacheDir = "./.rv_cache";

// --- primitive IO ---------------------------------------------------------

template <typename T>
void put(std::ostream& os, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool get(std::istream& is, T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return static_cast<bool>(is);
}

void put_string(std::ostream& os, const std::string& s) {
  put<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool get_string(std::istream& is, std::string& s) {
  std::uint32_t n = 0;
  if (!get(is, n) || n > (1u << 20)) return false;
  s.resize(n);
  is.read(s.data(), n);
  return static_cast<bool>(is);
}

void put_stats(std::ostream& os, const client::ClipStats& s) {
  put(os, s.session_established);
  put(os, s.played_any_frame);
  put(os, s.protocol);
  put(os, s.fell_back_to_tcp);
  put(os, s.fell_back_to_http);
  put(os, s.rtsp_retries);
  put(os, s.encoded_bandwidth);
  put(os, s.encoded_fps);
  put(os, s.measured_bandwidth);
  put(os, s.measured_fps);
  put(os, s.jitter_ms);
  put(os, s.frames_played);
  put(os, s.frames_dropped);
  put(os, s.frames_cpu_scaled);
  put(os, s.rebuffer_events);
  put(os, s.rebuffer_seconds);
  put(os, s.preroll_seconds);
  put(os, s.play_seconds);
  put(os, s.cpu_utilization);
  put(os, s.bytes_received);
  put(os, s.packets_received);
  put(os, s.repairs_received);
  put<std::uint32_t>(os, static_cast<std::uint32_t>(s.samples.size()));
  for (const auto& sample : s.samples) put(os, sample);
}

bool get_stats(std::istream& is, client::ClipStats& s) {
  bool ok = get(is, s.session_established) && get(is, s.played_any_frame) &&
            get(is, s.protocol) && get(is, s.fell_back_to_tcp) &&
            get(is, s.fell_back_to_http) && get(is, s.rtsp_retries) &&
            get(is, s.encoded_bandwidth) && get(is, s.encoded_fps) &&
            get(is, s.measured_bandwidth) && get(is, s.measured_fps) &&
            get(is, s.jitter_ms) && get(is, s.frames_played) &&
            get(is, s.frames_dropped) && get(is, s.frames_cpu_scaled) &&
            get(is, s.rebuffer_events) && get(is, s.rebuffer_seconds) &&
            get(is, s.preroll_seconds) && get(is, s.play_seconds) &&
            get(is, s.cpu_utilization) && get(is, s.bytes_received) &&
            get(is, s.packets_received) && get(is, s.repairs_received);
  if (!ok) return false;
  std::uint32_t n = 0;
  if (!get(is, n) || n > (1u << 20)) return false;
  s.samples.resize(n);
  for (auto& sample : s.samples) {
    if (!get(is, sample)) return false;
  }
  return true;
}

}  // namespace

std::uint64_t config_fingerprint(const StudyConfig& config) {
  // Hash the textual dump of every behavioural knob.
  const std::string dump = util::str_cat(
      "v", kVersion, "|", config.seed, "|", config.play_scale, "|",
      config.catalog.clips_per_site, "|", config.catalog.playlist_size, "|",
      config.population.seed, "|", config.population.udp_blocked_t1, "|",
      config.population.udp_blocked_dsl, "|",
      config.population.udp_blocked_modem, "|",
      config.population.rtsp_blocked_rate, "|",
      to_seconds(config.tracer.watch_duration), "|",
      config.tracer.direct_tcp_probability, "|",
      static_cast<int>(config.tracer.udp_control), "|",
      config.tracer.surestream_enabled, "|", config.tracer.svt_enabled, "|",
      config.tracer.preroll_media_seconds, "|",
      config.tracer.path.episode_probability, "|",
      config.tracer.path.wan_capacity_cap, "|",
      config.tracer.path.server_access_cap, "|",
      static_cast<int>(config.tracer.path.queue_policy), "|",
      config.tracer.adaptive_packet_size, "|", config.tracer.live_content,
      "|", config.tracer.tcp_sack, "|", config.tracer.faults.enabled, "|",
      config.tracer.faults.seed, "|",
      config.tracer.faults.mechanistic_unavailability, "|",
      to_seconds(config.tracer.faults.campaign_duration), "|",
      to_seconds(config.tracer.faults.mean_outage_duration), "|",
      config.tracer.faults.outage_scale, "|",
      config.tracer.faults.overload_probability, "|",
      config.tracer.faults.overload_stall_lo_sec, "|",
      config.tracer.faults.overload_stall_hi_sec, "|",
      config.tracer.faults.link_down_probability, "|",
      config.tracer.faults.mean_link_down_sec, "|",
      config.tracer.faults.corruption_probability, "|",
      config.tracer.faults.corruption_loss_rate);
  // The congestion-control knob postdates the pinned cache format: it joins
  // the dump only for non-default algorithms, so every existing reno cache
  // keeps its exact filename and bytes (the study md5 gate depends on it).
  if (config.tracer.tcp_cc != transport::CcAlgorithm::kReno) {
    return util::stable_hash(util::str_cat(
        dump, "|cc=", static_cast<int>(config.tracer.tcp_cc)));
  }
  return util::stable_hash(dump);
}

std::string default_cache_path(const StudyConfig& config,
                               const std::string& cache_dir) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "rv_study_%016llx.cache",
                static_cast<unsigned long long>(config_fingerprint(config)));
  const std::string& dir = cache_dir.empty() ? kDefaultCacheDir : cache_dir;
  return dir + "/" + buf;
}

bool save_result(const std::string& path, const StudyConfig& config,
                 const StudyResult& result) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  put(os, kMagic);
  put(os, kVersion);
  put(os, config_fingerprint(config));

  put<std::uint32_t>(os, static_cast<std::uint32_t>(result.users.size()));
  for (const auto& u : result.users) {
    put(os, u.id);
    put_string(os, u.country);
    put_string(os, u.us_state);
    put(os, u.region);
    put(os, u.group);
    put(os, u.connection);
    put_string(os, u.pc_class);
    put(os, u.udp_blocked);
    put(os, u.rtsp_blocked);
    put(os, u.clips_to_play);
    put(os, u.clips_to_rate);
    put(os, u.isp_load_lo);
    put(os, u.isp_load_hi);
    put(os, u.seed);
  }

  put<std::uint32_t>(os, static_cast<std::uint32_t>(result.records.size()));
  for (const auto& r : result.records) {
    put(os, r.user_id);
    put_string(os, r.country);
    put_string(os, r.us_state);
    put(os, r.user_group);
    put(os, r.connection);
    put_string(os, r.pc_class);
    put(os, r.rtsp_blocked_user);
    put(os, r.clip_id);
    put<std::uint64_t>(os, r.site);
    put_string(os, r.server_name);
    put_string(os, r.server_country);
    put(os, r.server_group);
    put(os, r.available);
    put_stats(os, r.stats);
    put(os, r.rating);
  }
  return static_cast<bool>(os);
}

std::optional<StudyResult> load_result(const std::string& path,
                                       const StudyConfig& config) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t fingerprint = 0;
  if (!get(is, magic) || magic != kMagic) return std::nullopt;
  if (!get(is, version) || version != kVersion) return std::nullopt;
  if (!get(is, fingerprint) || fingerprint != config_fingerprint(config)) {
    return std::nullopt;
  }

  StudyResult result;
  std::uint32_t n_users = 0;
  if (!get(is, n_users) || n_users > 10'000) return std::nullopt;
  result.users.resize(n_users);
  for (auto& u : result.users) {
    if (!(get(is, u.id) && get_string(is, u.country) &&
          get_string(is, u.us_state) && get(is, u.region) &&
          get(is, u.group) && get(is, u.connection) &&
          get_string(is, u.pc_class) && get(is, u.udp_blocked) &&
          get(is, u.rtsp_blocked) && get(is, u.clips_to_play) &&
          get(is, u.clips_to_rate) && get(is, u.isp_load_lo) &&
          get(is, u.isp_load_hi) && get(is, u.seed))) {
      return std::nullopt;
    }
  }

  std::uint32_t n_records = 0;
  if (!get(is, n_records) || n_records > 1'000'000) return std::nullopt;
  result.records.resize(n_records);
  // Record naming fields are pooled Symbols: decode into scratch strings,
  // then intern. The serialized bytes are unchanged from the std::string
  // era, so pinned cache md5s survive the interning.
  std::string country, us_state, pc_class, server_name, server_country;
  for (auto& r : result.records) {
    std::uint64_t site = 0;
    if (!(get(is, r.user_id) && get_string(is, country) &&
          get_string(is, us_state) && get(is, r.user_group) &&
          get(is, r.connection) && get_string(is, pc_class) &&
          get(is, r.rtsp_blocked_user) && get(is, r.clip_id) &&
          get(is, site) && get_string(is, server_name) &&
          get_string(is, server_country) && get(is, r.server_group) &&
          get(is, r.available) && get_stats(is, r.stats) &&
          get(is, r.rating))) {
      return std::nullopt;
    }
    r.country = country;
    r.us_state = us_state;
    r.pc_class = pc_class;
    r.server_name = server_name;
    r.server_country = server_country;
    r.site = site;
  }
  return result;
}

StudyResult run_study_cached(const StudyConfig& config, bool force_run,
                             const std::string& cache_dir) {
  const std::string path = default_cache_path(config, cache_dir);
  if (!force_run) {
    if (auto cached = load_result(path, config)) {
      obs::metrics_add(obs::Metric::kCacheHits);
      return std::move(*cached);
    }
  }
  obs::metrics_add(obs::Metric::kCacheMisses);
  StudyResult result = run_study(config);
  // Cache files live in a dedicated directory (never the repo root); create
  // it on demand so a fresh checkout works without setup.
  std::error_code ec;
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path(), ec);
  save_result(path, config, result);
  return result;
}

}  // namespace rv::study
