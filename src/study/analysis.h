// Analysis helpers: extract the metric vectors and groupings each paper
// figure plots from a set of trace records.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "stats/cdf.h"
#include "stats/histogram.h"
#include "tracer/record.h"

namespace rv::study {

using Records = std::vector<const tracer::TraceRecord*>;

// Study-level observability rollup: sums each observed play's counters
// (gauges take the max). Zero when tracing was off.
obs::Counters counter_totals(const std::vector<tracer::TraceRecord>& records);

// Metric extractors ---------------------------------------------------------
std::vector<double> frame_rates(const Records& records);
std::vector<double> jitters_ms(const Records& records);
std::vector<double> bandwidths_kbps(const Records& records);
std::vector<double> ratings(const Records& records);

// Group-by helpers ----------------------------------------------------------
Records filter(const Records& records,
               const std::function<bool(const tracer::TraceRecord&)>& pred);

// Label → subset, for the paper's standard splits.
std::map<std::string, Records> by_connection(const Records& records);
std::map<std::string, Records> by_protocol(const Records& records);
std::map<std::string, Records> by_server_group(const Records& records);
std::map<std::string, Records> by_user_group(const Records& records);
std::map<std::string, Records> by_pc_class(const Records& records);
// Fig 25's bandwidth buckets: < 10K, 10K-100K, > 100K.
std::map<std::string, Records> by_bandwidth_bucket(const Records& records);

// Count tables for the bar-chart figures ------------------------------------
stats::CountTable clips_played_by_country(const Records& played);
stats::CountTable clips_served_by_country(const Records& played);
stats::CountTable clips_played_by_us_state(const Records& played);
// Fig 10: fraction of accesses that found the clip unavailable, per server.
std::map<std::string, double> unavailability_by_server(
    const Records& accesses);

// Per-user counts (Figs 5 and 6): one value per user who contributed.
std::vector<double> plays_per_user(const Records& accesses);
std::vector<double> ratings_per_user(const Records& accesses);

// Builds a CDF per group, ordered by label, for render_cdfs.
std::vector<stats::LabeledCdf> group_cdfs(
    const std::map<std::string, Records>& groups,
    const std::function<std::vector<double>(const Records&)>& metric);

}  // namespace rv::study
