#include "study/study.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>

#include "util/check.h"
#include "world/servers.h"

namespace rv::study {

media::Catalog make_catalog(const StudyConfig& config) {
  std::vector<media::SiteProfile> profiles;
  for (const auto& site : world::server_sites()) {
    profiles.push_back(site.profile);
  }
  media::CatalogSpec spec = config.catalog;
  spec.seed = config.seed;
  return media::Catalog(spec, profiles);
}

StudyResult run_study(const StudyConfig& config) {
  RV_CHECK(config.play_scale > 0.0 && config.play_scale <= 1.0)
      << "play_scale must be in (0, 1], got " << config.play_scale;
  RV_CHECK_GE(config.threads, 0)
      << "threads must be >= 0 (0 = hardware concurrency)";

  StudyResult result;
  result.users = world::generate_population(config.population);
  if (config.play_scale < 1.0) {
    for (auto& u : result.users) {
      u.clips_to_play = std::max(
          1, static_cast<int>(std::lround(u.clips_to_play *
                                          config.play_scale)));
      u.clips_to_rate = std::min(u.clips_to_rate, u.clips_to_play);
    }
  }

  const media::Catalog catalog = make_catalog(config);
  const world::RegionGraph graph;
  tracer::TracerConfig tracer_cfg = config.tracer;
  if (tracer_cfg.faults.seed == 0) {
    // Tie the fault universe to the study seed unless pinned explicitly.
    tracer_cfg.faults.seed = config.seed;
  }
  tracer::RealTracer tracer(catalog, graph, tracer_cfg);
  tracer.plan_access_times(result.users);

  // One slot per user keeps the output order (and thus the result)
  // independent of thread scheduling.
  std::vector<std::vector<tracer::TraceRecord>> per_user(result.users.size());
  std::atomic<std::size_t> next{0};
  int n_threads = config.threads > 0
                      ? config.threads
                      : static_cast<int>(std::thread::hardware_concurrency());
  n_threads = std::clamp(n_threads, 1, 64);

  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= result.users.size()) return;
      per_user[i] = tracer.run_user(result.users[i], config.seed);
    }
  };
  if (n_threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(n_threads));
    for (int i = 0; i < n_threads; ++i) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  for (auto& records : per_user) {
    for (auto& rec : records) result.records.push_back(std::move(rec));
  }
  return result;
}

std::vector<const tracer::TraceRecord*> StudyResult::accesses() const {
  std::vector<const tracer::TraceRecord*> out;
  for (const auto& r : records) {
    if (!r.rtsp_blocked_user) out.push_back(&r);
  }
  return out;
}

std::vector<const tracer::TraceRecord*> StudyResult::played() const {
  std::vector<const tracer::TraceRecord*> out;
  for (const auto& r : records) {
    if (r.analyzable()) out.push_back(&r);
  }
  return out;
}

std::vector<const tracer::TraceRecord*> StudyResult::rated() const {
  std::vector<const tracer::TraceRecord*> out;
  for (const auto& r : records) {
    if (r.analyzable() && r.rated()) out.push_back(&r);
  }
  return out;
}

}  // namespace rv::study
