#include "study/study.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "util/check.h"
#include "world/servers.h"

namespace rv::study {

media::Catalog make_catalog(const StudyConfig& config) {
  std::vector<media::SiteProfile> profiles;
  for (const auto& site : world::server_sites()) {
    profiles.push_back(site.profile);
  }
  media::CatalogSpec spec = config.catalog;
  spec.seed = config.seed;
  return media::Catalog(spec, profiles);
}

StudyResult run_study(const StudyConfig& config) {
  RV_CHECK(config.play_scale > 0.0 && config.play_scale <= 1.0)
      << "play_scale must be in (0, 1], got " << config.play_scale;
  RV_CHECK_GE(config.threads, 0)
      << "threads must be >= 0 (0 = hardware concurrency)";

  StudyResult result;
  result.users = world::generate_population(config.population);
  if (config.play_scale < 1.0) {
    for (auto& u : result.users) {
      u.clips_to_play = std::max(
          1, static_cast<int>(std::lround(u.clips_to_play *
                                          config.play_scale)));
      u.clips_to_rate = std::min(u.clips_to_rate, u.clips_to_play);
    }
  }

  const media::Catalog catalog = make_catalog(config);
  const world::RegionGraph graph;
  tracer::TracerConfig tracer_cfg = config.tracer;
  if (tracer_cfg.faults.seed == 0) {
    // Tie the fault universe to the study seed unless pinned explicitly.
    tracer_cfg.faults.seed = config.seed;
  }
  tracer::RealTracer tracer(catalog, graph, tracer_cfg);

  // Self-profiling is wall-clock-only and gated so the default path takes
  // zero clock reads; it can never feed back into simulation state.
  const bool profiling = config.profile;
  using Clock = std::chrono::steady_clock;
  const auto wall_since = [](Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };
  Clock::time_point plan_start{};
  if (profiling) plan_start = Clock::now();
  tracer.plan_access_times(result.users);

  // Plan/execute split: the serial planning pass precomputes everything
  // coupled across a user's plays and emits one self-contained task per
  // play; workers then drain the ~2855 tasks cost-descending off a shared
  // index queue. Each task writes its preassigned (user-major, play-minor)
  // record slot, so the output is byte-identical for any thread count and
  // any interleaving — per-user sharding's straggler wall (one heavy-tailed
  // user bounding the tail) is gone.
  const tracer::StudyPlan plan = tracer.build_plan(result.users, config.seed);
  if (profiling) {
    result.profile.enabled = true;
    result.profile.plan_seconds = wall_since(plan_start);
  }
  result.records.resize(plan.tasks.size());
  // Slots are written by exactly one worker each, with no flag or counter
  // beside them; a TraceRecord spans multiple cache lines, so neighbouring
  // writers cannot ping-pong a line for the whole record either.
  static_assert(sizeof(tracer::TraceRecord) >= 64,
                "result slots narrower than a cache line: give the executor "
                "per-worker spans or align the slots");

  int n_threads = config.threads > 0
                      ? config.threads
                      : static_cast<int>(std::thread::hardware_concurrency());
  n_threads = std::clamp(n_threads, 1, 64);

  // Claims need no ordering: workers only read plan/tracer state published
  // before the pool started (thread creation happens-before) and publish
  // records via join. fetch_add(relaxed) is still a total order on the
  // counter itself, so every task is claimed exactly once.
  // The one genuinely contended word in the execute phase. Line-aligned so
  // the neighbouring stack slots (profiling clocks, the pool vector) never
  // ride the claim counter's cache line.
  alignas(64) std::atomic<std::size_t> next{0};
  if (profiling) {
    result.profile.workers.resize(static_cast<std::size_t>(n_threads));
  }
  auto worker = [&](int worker_index) {
    tracer::PlayContext ctx;
    // Preassigned slot — no sharing, no synchronization (published by join).
    WorkerProfile* wp =
        profiling ? &result.profile.workers[static_cast<std::size_t>(
                        worker_index)]
                  : nullptr;
    while (true) {
      const std::size_t k = next.fetch_add(1, std::memory_order_relaxed);
      if (k >= plan.order.size()) return;
      const tracer::PlayTask& task = plan.tasks[plan.order[k]];
      if (wp != nullptr) {
        const auto play_start = Clock::now();
        result.records[task.record_slot] =
            tracer.run_play(task, result.users[task.user_index], ctx);
        const double dt = wall_since(play_start);
        ++wp->plays;
        wp->busy_seconds += dt;
        if (dt > wp->max_play_seconds) wp->max_play_seconds = dt;
      } else {
        result.records[task.record_slot] =
            tracer.run_play(task, result.users[task.user_index], ctx);
      }
    }
  };
  Clock::time_point exec_start{};
  if (profiling) exec_start = Clock::now();
  if (n_threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(n_threads));
    for (int i = 0; i < n_threads; ++i) pool.emplace_back(worker, i);
    for (auto& t : pool) t.join();
  }
  if (profiling) {
    result.profile.execute_seconds = wall_since(exec_start);
    // Idle = starvation: wall this worker spent off-task while the phase was
    // still running (queue drained, or waiting on the last straggler play).
    for (auto& wp : result.profile.workers) {
      wp.idle_seconds =
          std::max(0.0, result.profile.execute_seconds - wp.busy_seconds);
    }
  }
  return result;
}

std::vector<const tracer::TraceRecord*> StudyResult::accesses() const {
  std::vector<const tracer::TraceRecord*> out;
  out.reserve(records.size());
  for (const auto& r : records) {
    if (!r.rtsp_blocked_user) out.push_back(&r);
  }
  return out;
}

std::vector<const tracer::TraceRecord*> StudyResult::played() const {
  std::vector<const tracer::TraceRecord*> out;
  out.reserve(records.size());
  for (const auto& r : records) {
    if (r.analyzable()) out.push_back(&r);
  }
  return out;
}

std::vector<const tracer::TraceRecord*> StudyResult::rated() const {
  std::vector<const tracer::TraceRecord*> out;
  out.reserve(records.size());
  for (const auto& r : records) {
    if (r.analyzable() && r.rated()) out.push_back(&r);
  }
  return out;
}

}  // namespace rv::study
