// Campaign driver: runs the study at population scales the in-memory
// StudyResult cannot hold (1e3–1e6 × the paper's 2855 plays) in bounded
// memory, optionally as one shard of a multi-process run.
//
// Three coordinated pieces:
//   - PopulationStream (src/world) synthesizes the scaled population off the
//     paper's fitted distributions; a shard is a contiguous user-id range,
//     generable independently yet byte-reproducible.
//   - run_campaign materializes only `chunk_users` profiles at a time,
//     plans/executes each chunk with the existing plan/execute split, folds
//     every finished record into a CampaignRollup, optionally appends it to
//     a columnar spill (study/spill.h), and discards it. Peak RSS is set by
//     the chunk working set, not the play count.
//   - CampaignRollup is pure mergeable state: u64/i64 counters, fixed-point
//     (micro-unit) sums, bin-exact stats::MergeableHistograms and ordered
//     group tables. merge() of N contiguous shard rollups reproduces the
//     single-process rollup exactly — render() output and serialized bytes
//     included — which is what the shard-merge CI gate pins.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "stats/histogram.h"
#include "study/study.h"
#include "study/telemetry_report.h"

namespace rv::study {

// Rollup histogram geometries (fixed so every shard's sketches merge).
constexpr double kCampaignJitterLoMs = 0.0, kCampaignJitterHiMs = 200.0;
constexpr std::size_t kCampaignJitterBins = 200;
constexpr double kCampaignRatingLo = 0.0, kCampaignRatingHi = 10.0;
constexpr std::size_t kCampaignRatingBins = 100;
constexpr double kCampaignPrerollLoS = 0.0, kCampaignPrerollHiS = 30.0;
constexpr std::size_t kCampaignPrerollBins = 120;

struct CampaignConfig {
  StudyConfig study;
  // Population replicas: the campaign runs plays_scale copies of the
  // paper's 63-user population (~2855 plays each), so 1M plays ≈ scale 350.
  std::uint64_t plays_scale = 1;
  // This process's shard of the user-id space ([index*U/N, (index+1)*U/N)).
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  // When non-empty, raw records spill to <spill_dir>/records.spill and the
  // rollup is saved to <spill_dir>/rollup.bin (directory created if needed).
  std::string spill_dir;
  // Users materialized per chunk — the bounded working set.
  std::uint64_t chunk_users = 63;
  // Progress hook, called after each chunk (plays folded so far, users done,
  // users in this shard). Null = silent.
  std::function<void(std::uint64_t, std::uint64_t, std::uint64_t)> progress;
};

// Per-group mergeable aggregate over finished plays (ClipStats level, not
// telemetry samples): analyzable-play count plus measured fps/bandwidth
// sketches.
struct CampaignGroup {
  std::uint64_t plays = 0;
  stats::MergeableHistogram fps{kTelemetryFpsLo, kTelemetryFpsHi,
                                kTelemetryFpsBins};
  stats::MergeableHistogram bw{kTelemetryBwLo, kTelemetryBwHi,
                               kTelemetryBwBins};
  void fold(const tracer::TraceRecord& rec);
  void merge(const CampaignGroup& other);
};

struct CampaignRollup {
  // Shard coverage (user-id range). merge() requires `other` to start
  // exactly where this rollup ends, so a merged rollup always describes one
  // contiguous range and N-shard merges cannot silently drop or reorder a
  // shard.
  std::uint64_t user_first = 0;
  std::uint64_t user_count = 0;

  // Record counters.
  std::uint64_t records = 0;        // every folded record
  std::uint64_t accesses = 0;       // non-firewalled users' records
  std::uint64_t unavailable = 0;    // accesses that found the clip down
  std::uint64_t played = 0;         // analyzable plays
  std::uint64_t rated = 0;          // analyzable + rated
  std::uint64_t udp_plays = 0;      // analyzable, by final transport
  std::uint64_t tcp_plays = 0;
  std::uint64_t tcp_fallbacks = 0;  // UDP → TCP ladder steps
  std::uint64_t http_fallbacks = 0;

  // Exact event/frame/byte totals over analyzable plays.
  std::uint64_t rtsp_retries = 0;
  std::uint64_t rebuffer_events = 0;
  std::uint64_t frames_played = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t frames_cpu_scaled = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t packets_received = 0;
  std::uint64_t repairs_received = 0;

  // Fixed-point micro-unit sums over analyzable plays (llround(v * 1e6)):
  // integer adds are associative, so shard merges reproduce single-process
  // means to the last bit — double accumulators would not.
  std::int64_t sum_fps_u = 0;
  std::int64_t sum_bw_kbps_u = 0;
  std::int64_t sum_jitter_ms_u = 0;
  std::int64_t sum_preroll_s_u = 0;
  std::int64_t sum_rebuffer_s_u = 0;
  std::int64_t sum_play_s_u = 0;
  std::int64_t sum_rating_u = 0;  // over rated plays only

  // Distribution sketches over analyzable plays.
  stats::MergeableHistogram h_fps{kTelemetryFpsLo, kTelemetryFpsHi,
                                  kTelemetryFpsBins};
  stats::MergeableHistogram h_bw{kTelemetryBwLo, kTelemetryBwHi,
                                 kTelemetryBwBins};
  stats::MergeableHistogram h_jitter{kCampaignJitterLoMs, kCampaignJitterHiMs,
                                     kCampaignJitterBins};
  stats::MergeableHistogram h_preroll{kCampaignPrerollLoS, kCampaignPrerollHiS,
                                      kCampaignPrerollBins};
  stats::MergeableHistogram h_rating{kCampaignRatingLo, kCampaignRatingHi,
                                     kCampaignRatingBins};

  // Group tables (ordered maps: canonical render/serialize order).
  std::map<std::string, CampaignGroup> by_class;
  std::map<std::string, CampaignGroup> by_region;
  std::map<std::string, CampaignGroup> by_server;

  // Sample-level telemetry rollup (empty unless the study ran telemetry).
  TelemetryRollup telemetry;

  void fold(const tracer::TraceRecord& rec);
  // Merges a contiguous successor shard (other.user_first must equal
  // user_first + user_count). Returns false with *error set otherwise.
  bool merge(const CampaignRollup& other, std::string* error);

  // Human-readable campaign report. Deterministic in the rollup values, so
  // merged == single-process byte-for-byte.
  std::string render() const;

  // Binary serialization ("RVRU"). parse() rejects bad magic/version or
  // truncated input. save/load wrap them with file I/O.
  std::string serialize() const;
  static bool parse(const std::string& bytes, CampaignRollup* out,
                    std::string* error);
  bool save(const std::string& path) const;
  static bool load(const std::string& path, CampaignRollup* out,
                   std::string* error);
};

struct CampaignResult {
  CampaignRollup rollup;
  std::uint64_t users = 0;         // users this shard ran
  std::uint64_t plays = 0;         // records folded (== rollup.records)
  int threads = 1;                 // resolved worker count
  double execute_seconds = 0.0;    // wall time of the chunk loop
  std::uint64_t peak_rss_kb = 0;   // VmHWM at completion (0 if unreadable)
  std::string spill_path;          // set when spill_dir was given
  std::string rollup_path;
};

// Runs one shard of the campaign (the whole campaign when shard_count == 1).
// Deterministic in the config; thread count and chunk size never change the
// rollup or the spilled bytes. Throws util::CheckError on invalid config,
// std::runtime_error on I/O failure.
CampaignResult run_campaign(const CampaignConfig& config);

// Peak resident set (VmHWM) of this process in KiB, from
// /proc/self/status; 0 when unavailable.
std::uint64_t peak_rss_kb();

}  // namespace rv::study
