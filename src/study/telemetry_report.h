// Study-level telemetry rollups, bottleneck attribution, the anomaly flight
// recorder, series CSV export, and the worker self-profile report.
// Everything here renders from slot-ordered in-memory records, so all
// outputs are byte-identical at any worker-thread count.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "obs/chrome_trace.h"
#include "study/study.h"

namespace rv::study {

// Flight-recorder anomaly predicates: a play trips when its total rebuffer
// time exceeds `rebuffer_seconds`, its transport ladder fell all the way to
// the HTTP cloak, or it played frames at under `min_fps`.
struct FlightPredicates {
  double rebuffer_seconds = 10.0;
  double min_fps = 3.0;
  bool http_cloak = true;
};

// Names of the predicates `rec` trips, in fixed order ("rebuffer",
// "http-cloak", "low-fps"). Empty for healthy (or non-analyzable) plays.
std::vector<std::string> flight_reasons(const tracer::TraceRecord& rec,
                                        const FlightPredicates& pred);

// Dumps one JSON document per anomalous play into `dir` (created if
// missing), named flight_u<user>_s<record slot>.json, slot order. Each dump
// carries the play's metadata, tripped predicates, full event ring +
// counters (when obs ran) and sampled series (when telemetry ran). Returns
// the number of files written, or -1 on any I/O failure.
int write_flight_records(const std::string& dir, const StudyResult& result,
                         const FlightPredicates& pred = {});

// Bottleneck attribution: connection-class label -> play count per path
// link (layout order, world::PlayPath::kLinkCount wide). A play is
// attributed to telemetry::bottleneck_link of its series; plays without a
// series are skipped.
std::map<std::string, std::vector<int>> bottleneck_table(
    const StudyResult& result);

// Renders the telemetry rollup: sample-level fps/bandwidth p50/p95/p99 per
// connection class, user region, and server (merged per-play
// stats::MergeableHistogram sketches), plus the bottleneck attribution
// table. Empty string when no record carries a series.
std::string telemetry_report(const StudyResult& result);

// Exports every play's series as CSV, one row per sample:
//   user_id,record_slot,clip_id,server,t_usec,buffer_sec,fps,bandwidth_kbps,
//   cwnd_bytes,retx_per_sec,<link>_occupancy,<link>_drops,...
// Throws (via CsvWriter) when the file cannot be opened.
void write_series_csv(const std::string& path,
                      const std::vector<tracer::TraceRecord>& records);

// Converts a play's sampled series into Chrome trace "C"-phase counter
// tracks (obs::PlayTrack::counters), link columns named via
// world::path_link_name. Empty when the series is disabled or empty.
std::vector<obs::CounterSeries> chrome_counter_series(
    const telemetry::PlaySeries& series);

// Renders the worker self-profile (--profile): plan/execute phase walls and
// the per-worker plays/busy/idle/max-play breakdown.
std::string profile_report(const StudyProfile& profile);

}  // namespace rv::study
