// Study-level telemetry rollups, bottleneck attribution, the anomaly flight
// recorder, series CSV export, and the worker self-profile report.
// Everything here renders from slot-ordered in-memory records, so all
// outputs are byte-identical at any worker-thread count.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/chrome_trace.h"
#include "stats/histogram.h"
#include "study/study.h"

namespace rv::study {

// Sketch geometries for the sample-level rollups. Fixed bins keep every
// per-play sketch mergeable with every other (stats::MergeableHistogram
// requires identical geometry) and bound memory regardless of play count.
constexpr double kTelemetryFpsLo = 0.0, kTelemetryFpsHi = 60.0;
constexpr std::size_t kTelemetryFpsBins = 120;
constexpr double kTelemetryBwLo = 0.0, kTelemetryBwHi = 2000.0;  // kbps
constexpr std::size_t kTelemetryBwBins = 200;

// One group's sample-level fps/bandwidth sketches.
struct GroupSketch {
  stats::MergeableHistogram fps{kTelemetryFpsLo, kTelemetryFpsHi,
                                kTelemetryFpsBins};
  stats::MergeableHistogram bw{kTelemetryBwLo, kTelemetryBwHi,
                               kTelemetryBwBins};
  void merge(const GroupSketch& other) {
    fps.merge(other.fps);
    bw.merge(other.bw);
  }
};

// Streaming telemetry rollup: fold() each record as its play finishes,
// merge() shard rollups, render() at the end. Everything inside is a
// counter, an ordered map, or a bin-exact MergeableHistogram, so
// fold-then-merge in any grouping reproduces the single-pass rollup
// exactly — the property the sharded campaign's byte-identity gate rests
// on. telemetry_report() is now a thin wrapper over this.
struct TelemetryRollup {
  std::uint64_t plays = 0;    // plays that carried a sampled series
  std::uint64_t samples = 0;  // total samples folded
  std::map<std::string, GroupSketch> by_class;
  std::map<std::string, GroupSketch> by_region;
  std::map<std::string, GroupSketch> by_server;
  // Bottleneck attribution: connection-class label -> play count per path
  // link (layout order, world::PlayPath::kLinkCount wide).
  std::map<std::string, std::vector<int>> bottleneck;

  // Folds one finished play. Records without an enabled, non-empty series
  // are ignored (telemetry off, or the play never started).
  void fold(const tracer::TraceRecord& rec);
  void merge(const TelemetryRollup& other);
  // Renders the rollup text; empty string when no play carried a series.
  std::string render() const;
};

// Flight-recorder anomaly predicates: a play trips when its total rebuffer
// time exceeds `rebuffer_seconds`, its transport ladder fell all the way to
// the HTTP cloak, or it played frames at under `min_fps`.
struct FlightPredicates {
  double rebuffer_seconds = 10.0;
  double min_fps = 3.0;
  bool http_cloak = true;
};

// Names of the predicates `rec` trips, in fixed order ("rebuffer",
// "http-cloak", "low-fps"). Empty for healthy (or non-analyzable) plays.
std::vector<std::string> flight_reasons(const tracer::TraceRecord& rec,
                                        const FlightPredicates& pred);

// Dumps one JSON document per anomalous play into `dir` (created if
// missing), named flight_u<user>_s<record slot>.json, slot order. Each dump
// carries the play's metadata, tripped predicates, full event ring +
// counters (when obs ran) and sampled series (when telemetry ran). Returns
// the number of files written, or -1 on any I/O failure.
int write_flight_records(const std::string& dir, const StudyResult& result,
                         const FlightPredicates& pred = {});

// Bottleneck attribution over a whole in-memory result (folds every record
// into a TelemetryRollup and returns its bottleneck table). A play is
// attributed to telemetry::bottleneck_link of its series; plays without a
// series are skipped.
std::map<std::string, std::vector<int>> bottleneck_table(
    const StudyResult& result);

// Renders the telemetry rollup: sample-level fps/bandwidth p50/p95/p99 per
// connection class, user region, and server (merged per-play
// stats::MergeableHistogram sketches), plus the bottleneck attribution
// table. Empty string when no record carries a series. Equivalent to
// folding every record into a TelemetryRollup and rendering it.
std::string telemetry_report(const StudyResult& result);

// Exports every play's series as CSV, one row per sample:
//   user_id,record_slot,clip_id,server,t_usec,buffer_sec,fps,bandwidth_kbps,
//   cwnd_bytes,retx_per_sec,<link>_occupancy,<link>_drops,...
// Throws (via CsvWriter) when the file cannot be opened.
void write_series_csv(const std::string& path,
                      const std::vector<tracer::TraceRecord>& records);

// Converts a play's sampled series into Chrome trace "C"-phase counter
// tracks (obs::PlayTrack::counters), link columns named via
// world::path_link_name. Empty when the series is disabled or empty.
std::vector<obs::CounterSeries> chrome_counter_series(
    const telemetry::PlaySeries& series);

// Renders the worker self-profile (--profile): plan/execute phase walls and
// the per-worker plays/busy/idle/max-play breakdown.
std::string profile_report(const StudyProfile& profile);

}  // namespace rv::study
