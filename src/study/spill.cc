#include "study/spill.h"

#include <cstring>

#include "util/check.h"

namespace rv::study {
namespace {

// File layout:
//   header:  u32 magic "RVSP", u32 version
//   frames:  repeated { u32 record_count, u32 column_count,
//                       column_count × u32 byte-length, payloads }
//   footer:  u32 string_count, { u32 len, bytes }...,
//            u32 frame_count, { u64 offset, u64 first, u32 count }...
//   trailer: u64 footer_offset, u32 magic "RVSE"
constexpr std::uint32_t kMagic = 0x50535652;     // "RVSP" little-endian
constexpr std::uint32_t kEndMagic = 0x45535652;  // "RVSE"
constexpr std::uint32_t kVersion = 1;

// Column order within a frame. Fixed by the version: readers decode
// positionally, and determinism of the file bytes depends on it.
enum Column : std::size_t {
  kColUserId = 0,
  kColClipId,
  kColSite,
  kColRtspRetries,
  kColRebufferEvents,
  kColFramesPlayed,
  kColFramesDropped,
  kColFramesCpuScaled,
  kColBytesReceived,
  kColPacketsReceived,
  kColRepairsReceived,
  kColSampleCount,
  kColEnums,   // user_group, connection, server_group, protocol (u8 each)
  kColBools,   // bit-packed flags
  kColSymbols, // country, us_state, pc_class, server_name, server_country
  kColRating,
  kColEncodedBandwidth,
  kColEncodedFps,
  kColMeasuredBandwidth,
  kColMeasuredFps,
  kColJitterMs,
  kColRebufferSeconds,
  kColPrerollSeconds,
  kColPlaySeconds,
  kColCpuUtilization,
  kColSampleT,
  kColSampleBandwidth,
  kColSampleFps,
  kColumnCount,
};

void put_u32(std::string& out, std::uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out.append(b, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out.append(b, 8);
}

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

std::uint64_t double_bits(double d) {
  std::uint64_t b;
  std::memcpy(&b, &d, 8);
  return b;
}

double bits_double(std::uint64_t b) {
  double d;
  std::memcpy(&d, &b, 8);
  return d;
}

// Delta-of-previous zigzag varints: monotone-ish columns (user_id, clip_id)
// collapse to one byte per record.
class IntColumn {
 public:
  void add(std::int64_t v) {
    put_varint(buf_, zigzag(v - prev_));
    prev_ = v;
  }
  std::string take() {
    prev_ = 0;
    return std::move(buf_);
  }

 private:
  std::int64_t prev_ = 0;
  std::string buf_;
};

// XOR-with-previous varints: repeated doubles (all-zero columns for plays
// that never established) encode as one byte; slowly-varying mantissas
// share their high bytes.
class DoubleColumn {
 public:
  void add(double d) {
    const std::uint64_t bits = double_bits(d);
    put_varint(buf_, bits ^ prev_);
    prev_ = bits;
  }
  std::string take() {
    prev_ = 0;
    return std::move(buf_);
  }

 private:
  std::uint64_t prev_ = 0;
  std::string buf_;
};

class BoolColumn {
 public:
  void add(bool b) {
    if (fill_ == 0) buf_.push_back(0);
    if (b) buf_.back() = static_cast<char>(buf_.back() | (1 << fill_));
    fill_ = (fill_ + 1) % 8;
  }
  std::string take() {
    fill_ = 0;
    return std::move(buf_);
  }

 private:
  int fill_ = 0;
  std::string buf_;
};

// Bounds-checked cursor over an encoded column payload.
class Cursor {
 public:
  Cursor(const char* p, std::size_t n) : p_(p), end_(p + n) {}

  bool varint(std::uint64_t& out) {
    std::uint64_t v = 0;
    int shift = 0;
    while (p_ < end_) {
      const std::uint8_t byte = static_cast<std::uint8_t>(*p_++);
      if (shift >= 64) return false;
      v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        out = v;
        return true;
      }
      shift += 7;
    }
    return false;
  }

  bool bit(bool& out) {
    if (fill_ == 0) {
      if (p_ >= end_) return false;
      byte_ = static_cast<std::uint8_t>(*p_++);
    }
    out = (byte_ >> fill_) & 1;
    fill_ = (fill_ + 1) % 8;
    return true;
  }

  bool u8(std::uint8_t& out) {
    if (p_ >= end_) return false;
    out = static_cast<std::uint8_t>(*p_++);
    return true;
  }

 private:
  const char* p_;
  const char* end_;
  std::uint8_t byte_ = 0;
  int fill_ = 0;
};

class IntCursor {
 public:
  IntCursor(const char* p, std::size_t n) : cur_(p, n) {}
  bool next(std::int64_t& out) {
    std::uint64_t raw;
    if (!cur_.varint(raw)) return false;
    prev_ += unzigzag(raw);
    out = prev_;
    return true;
  }

 private:
  Cursor cur_;
  std::int64_t prev_ = 0;
};

class DoubleCursor {
 public:
  DoubleCursor(const char* p, std::size_t n) : cur_(p, n) {}
  bool next(double& out) {
    std::uint64_t raw;
    if (!cur_.varint(raw)) return false;
    prev_ ^= raw;
    out = bits_double(prev_);
    return true;
  }

 private:
  Cursor cur_;
  std::uint64_t prev_ = 0;
};

bool read_exact(std::ifstream& is, char* buf, std::streamsize n) {
  is.read(buf, n);
  return is.gcount() == n && is.good();
}

bool read_u32(std::ifstream& is, std::uint32_t& v) {
  char b[4];
  if (!read_exact(is, b, 4)) return false;
  std::memcpy(&v, b, 4);
  return true;
}

bool read_u64(std::ifstream& is, std::uint64_t& v) {
  char b[8];
  if (!read_exact(is, b, 8)) return false;
  std::memcpy(&v, b, 8);
  return true;
}

}  // namespace

SpillWriter::SpillWriter(const std::string& path)
    : os_(path, std::ios::binary | std::ios::trunc) {
  ok_ = os_.good();
  if (!ok_) return;
  std::string header;
  put_u32(header, kMagic);
  put_u32(header, kVersion);
  os_.write(header.data(), static_cast<std::streamsize>(header.size()));
  ok_ = os_.good();
  bytes_written_ = header.size();
  frame_.reserve(kSpillFrameRecords);
}

SpillWriter::~SpillWriter() { finish(); }

std::uint32_t SpillWriter::local_id(util::Symbol s) {
  const auto [it, inserted] =
      symbol_to_local_.emplace(s.id(), static_cast<std::uint32_t>(strings_.size()));
  if (inserted) strings_.push_back(s.str());
  return it->second;
}

void SpillWriter::append(const tracer::TraceRecord& rec) {
  if (!ok_ || finished_) return;
  frame_.push_back(rec);
  // obs/telemetry payloads are in-memory only; drop them so a buffered frame
  // costs what the columns cost, not what tracing costs.
  frame_.back().obs = obs::PlayObs{};
  frame_.back().series = telemetry::PlaySeries{};
  ++records_;
  if (frame_.size() >= kSpillFrameRecords) flush_frame();
}

void SpillWriter::flush_frame() {
  if (frame_.empty()) return;
  IntColumn ints[12];
  DoubleColumn doubles[10];
  DoubleColumn sample_cols[3];
  BoolColumn bools;
  std::string enums;
  std::string symbols;
  for (const auto& rec : frame_) {
    const auto& st = rec.stats;
    ints[0].add(rec.user_id);
    ints[1].add(rec.clip_id);
    ints[2].add(static_cast<std::int64_t>(rec.site));
    ints[3].add(st.rtsp_retries);
    ints[4].add(st.rebuffer_events);
    ints[5].add(st.frames_played);
    ints[6].add(st.frames_dropped);
    ints[7].add(st.frames_cpu_scaled);
    ints[8].add(st.bytes_received);
    ints[9].add(st.packets_received);
    ints[10].add(st.repairs_received);
    ints[11].add(static_cast<std::int64_t>(st.samples.size()));
    enums.push_back(static_cast<char>(rec.user_group));
    enums.push_back(static_cast<char>(rec.connection));
    enums.push_back(static_cast<char>(rec.server_group));
    enums.push_back(static_cast<char>(st.protocol));
    bools.add(rec.rtsp_blocked_user);
    bools.add(rec.available);
    bools.add(st.session_established);
    bools.add(st.played_any_frame);
    bools.add(st.fell_back_to_tcp);
    bools.add(st.fell_back_to_http);
    put_varint(symbols, local_id(rec.country));
    put_varint(symbols, local_id(rec.us_state));
    put_varint(symbols, local_id(rec.pc_class));
    put_varint(symbols, local_id(rec.server_name));
    put_varint(symbols, local_id(rec.server_country));
    doubles[0].add(rec.rating);
    doubles[1].add(st.encoded_bandwidth);
    doubles[2].add(st.encoded_fps);
    doubles[3].add(st.measured_bandwidth);
    doubles[4].add(st.measured_fps);
    doubles[5].add(st.jitter_ms);
    doubles[6].add(st.rebuffer_seconds);
    doubles[7].add(st.preroll_seconds);
    doubles[8].add(st.play_seconds);
    doubles[9].add(st.cpu_utilization);
    for (const auto& s : st.samples) {
      sample_cols[0].add(s.t_seconds);
      sample_cols[1].add(s.bandwidth);
      sample_cols[2].add(s.frame_rate);
    }
  }

  std::string payloads[kColumnCount];
  payloads[kColUserId] = ints[0].take();
  payloads[kColClipId] = ints[1].take();
  payloads[kColSite] = ints[2].take();
  payloads[kColRtspRetries] = ints[3].take();
  payloads[kColRebufferEvents] = ints[4].take();
  payloads[kColFramesPlayed] = ints[5].take();
  payloads[kColFramesDropped] = ints[6].take();
  payloads[kColFramesCpuScaled] = ints[7].take();
  payloads[kColBytesReceived] = ints[8].take();
  payloads[kColPacketsReceived] = ints[9].take();
  payloads[kColRepairsReceived] = ints[10].take();
  payloads[kColSampleCount] = ints[11].take();
  payloads[kColEnums] = std::move(enums);
  payloads[kColBools] = bools.take();
  payloads[kColSymbols] = std::move(symbols);
  for (int i = 0; i < 10; ++i) {
    payloads[kColRating + static_cast<std::size_t>(i)] = doubles[i].take();
  }
  payloads[kColSampleT] = sample_cols[0].take();
  payloads[kColSampleBandwidth] = sample_cols[1].take();
  payloads[kColSampleFps] = sample_cols[2].take();

  std::string out;
  put_u32(out, static_cast<std::uint32_t>(frame_.size()));
  put_u32(out, kColumnCount);
  for (const auto& p : payloads) {
    put_u32(out, static_cast<std::uint32_t>(p.size()));
  }
  for (const auto& p : payloads) out.append(p);

  FrameEntry entry;
  entry.offset = static_cast<std::uint64_t>(os_.tellp());
  entry.first_record = records_ - frame_.size();
  entry.record_count = static_cast<std::uint32_t>(frame_.size());
  os_.write(out.data(), static_cast<std::streamsize>(out.size()));
  ok_ = ok_ && os_.good();
  bytes_written_ = entry.offset + out.size();
  index_.push_back(entry);
  frame_.clear();
}

bool SpillWriter::finish() {
  if (finished_) return ok_;
  if (!ok_) {
    finished_ = true;
    return false;
  }
  flush_frame();
  const auto footer_offset = static_cast<std::uint64_t>(os_.tellp());
  std::string footer;
  put_u32(footer, static_cast<std::uint32_t>(strings_.size()));
  for (const auto& s : strings_) {
    put_u32(footer, static_cast<std::uint32_t>(s.size()));
    footer.append(s);
  }
  put_u32(footer, static_cast<std::uint32_t>(index_.size()));
  for (const auto& e : index_) {
    put_u64(footer, e.offset);
    put_u64(footer, e.first_record);
    put_u32(footer, e.record_count);
  }
  put_u64(footer, footer_offset);
  put_u32(footer, kEndMagic);
  os_.write(footer.data(), static_cast<std::streamsize>(footer.size()));
  os_.flush();
  ok_ = ok_ && os_.good();
  bytes_written_ = footer_offset + footer.size();
  finished_ = true;
  os_.close();
  return ok_;
}

bool SpillReader::open(const std::string& path) {
  ok_ = false;
  error_.clear();
  records_ = 0;
  strings_.clear();
  index_.clear();
  is_.close();
  is_.clear();
  is_.open(path, std::ios::binary);
  if (!is_.good()) {
    error_ = "cannot open spill file: " + path;
    return false;
  }
  std::uint32_t magic = 0, version = 0;
  if (!read_u32(is_, magic) || magic != kMagic) {
    error_ = "not a spill file (bad magic): " + path;
    return false;
  }
  if (!read_u32(is_, version) || version != kVersion) {
    error_ = "unsupported spill version in " + path;
    return false;
  }
  is_.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(is_.tellg());
  if (file_size < 8 + 12) {
    error_ = "truncated spill file: " + path;
    return false;
  }
  is_.seekg(static_cast<std::streamoff>(file_size - 12));
  std::uint64_t footer_offset = 0;
  std::uint32_t end_magic = 0;
  if (!read_u64(is_, footer_offset) || !read_u32(is_, end_magic) ||
      end_magic != kEndMagic || footer_offset >= file_size) {
    error_ = "corrupt spill trailer in " + path;
    return false;
  }
  is_.clear();
  is_.seekg(static_cast<std::streamoff>(footer_offset));
  std::uint32_t string_count = 0;
  if (!read_u32(is_, string_count) || string_count > (1u << 20)) {
    error_ = "corrupt spill string table in " + path;
    return false;
  }
  strings_.reserve(string_count);
  for (std::uint32_t i = 0; i < string_count; ++i) {
    std::uint32_t len = 0;
    if (!read_u32(is_, len) || len > file_size) {
      error_ = "corrupt spill string table in " + path;
      return false;
    }
    std::string s(len, '\0');
    if (len > 0 && !read_exact(is_, s.data(), len)) {
      error_ = "corrupt spill string table in " + path;
      return false;
    }
    strings_.push_back(std::move(s));
  }
  std::uint32_t frame_count = 0;
  if (!read_u32(is_, frame_count) || frame_count > file_size) {
    error_ = "corrupt spill frame index in " + path;
    return false;
  }
  index_.reserve(frame_count);
  for (std::uint32_t i = 0; i < frame_count; ++i) {
    FrameEntry e;
    if (!read_u64(is_, e.offset) || !read_u64(is_, e.first_record) ||
        !read_u32(is_, e.record_count) || e.offset >= footer_offset ||
        e.first_record != records_) {
      error_ = "corrupt spill frame index in " + path;
      return false;
    }
    records_ += e.record_count;
    index_.push_back(e);
  }
  ok_ = true;
  return true;
}

std::uint64_t SpillReader::frame_first_record(std::size_t frame) const {
  RV_CHECK_LT(frame, index_.size());
  return index_[frame].first_record;
}

bool SpillReader::read_frame(std::size_t frame,
                             std::vector<tracer::TraceRecord>& out) const {
  out.clear();
  if (!ok_ || frame >= index_.size()) return false;
  const FrameEntry& entry = index_[frame];
  is_.clear();
  is_.seekg(static_cast<std::streamoff>(entry.offset));
  std::uint32_t record_count = 0, column_count = 0;
  if (!read_u32(is_, record_count) || record_count != entry.record_count ||
      !read_u32(is_, column_count) || column_count != kColumnCount) {
    return false;
  }
  std::uint32_t lengths[kColumnCount];
  std::uint64_t total = 0;
  for (auto& len : lengths) {
    if (!read_u32(is_, len)) return false;
    total += len;
  }
  std::string blob(total, '\0');
  if (total > 0 &&
      !read_exact(is_, blob.data(), static_cast<std::streamsize>(total))) {
    return false;
  }
  const char* col[kColumnCount];
  {
    const char* p = blob.data();
    for (std::size_t c = 0; c < kColumnCount; ++c) {
      col[c] = p;
      p += lengths[c];
    }
  }
  auto int_cursor = [&](std::size_t c) { return IntCursor(col[c], lengths[c]); };
  auto dbl_cursor = [&](std::size_t c) {
    return DoubleCursor(col[c], lengths[c]);
  };
  IntCursor user_id = int_cursor(kColUserId), clip_id = int_cursor(kColClipId),
            site = int_cursor(kColSite),
            rtsp_retries = int_cursor(kColRtspRetries),
            rebuffer_events = int_cursor(kColRebufferEvents),
            frames_played = int_cursor(kColFramesPlayed),
            frames_dropped = int_cursor(kColFramesDropped),
            frames_cpu_scaled = int_cursor(kColFramesCpuScaled),
            bytes_received = int_cursor(kColBytesReceived),
            packets_received = int_cursor(kColPacketsReceived),
            repairs_received = int_cursor(kColRepairsReceived),
            sample_count = int_cursor(kColSampleCount);
  Cursor enums(col[kColEnums], lengths[kColEnums]);
  Cursor bools(col[kColBools], lengths[kColBools]);
  Cursor symbols(col[kColSymbols], lengths[kColSymbols]);
  DoubleCursor rating = dbl_cursor(kColRating),
               encoded_bandwidth = dbl_cursor(kColEncodedBandwidth),
               encoded_fps = dbl_cursor(kColEncodedFps),
               measured_bandwidth = dbl_cursor(kColMeasuredBandwidth),
               measured_fps = dbl_cursor(kColMeasuredFps),
               jitter_ms = dbl_cursor(kColJitterMs),
               rebuffer_seconds = dbl_cursor(kColRebufferSeconds),
               preroll_seconds = dbl_cursor(kColPrerollSeconds),
               play_seconds = dbl_cursor(kColPlaySeconds),
               cpu_utilization = dbl_cursor(kColCpuUtilization),
               sample_t = dbl_cursor(kColSampleT),
               sample_bw = dbl_cursor(kColSampleBandwidth),
               sample_fps = dbl_cursor(kColSampleFps);

  auto symbol = [&](util::Symbol& out_sym) {
    std::uint64_t local = 0;
    if (!symbols.varint(local) || local >= strings_.size()) return false;
    out_sym = util::Symbol(strings_[static_cast<std::size_t>(local)]);
    return true;
  };

  out.reserve(record_count);
  for (std::uint32_t i = 0; i < record_count; ++i) {
    tracer::TraceRecord rec;
    auto& st = rec.stats;
    std::int64_t v = 0;
    if (!user_id.next(v)) return false;
    rec.user_id = static_cast<int>(v);
    if (!clip_id.next(v)) return false;
    rec.clip_id = static_cast<std::uint32_t>(v);
    if (!site.next(v)) return false;
    rec.site = static_cast<std::size_t>(v);
    if (!rtsp_retries.next(v)) return false;
    st.rtsp_retries = static_cast<std::int32_t>(v);
    if (!rebuffer_events.next(v)) return false;
    st.rebuffer_events = static_cast<std::int32_t>(v);
    if (!frames_played.next(st.frames_played)) return false;
    if (!frames_dropped.next(st.frames_dropped)) return false;
    if (!frames_cpu_scaled.next(st.frames_cpu_scaled)) return false;
    if (!bytes_received.next(st.bytes_received)) return false;
    if (!packets_received.next(st.packets_received)) return false;
    if (!repairs_received.next(st.repairs_received)) return false;
    std::int64_t n_samples = 0;
    if (!sample_count.next(n_samples) || n_samples < 0) return false;
    std::uint8_t e = 0;
    if (!enums.u8(e)) return false;
    rec.user_group = static_cast<world::UserRegionGroup>(e);
    if (!enums.u8(e)) return false;
    rec.connection = static_cast<world::ConnectionClass>(e);
    if (!enums.u8(e)) return false;
    rec.server_group = static_cast<world::ServerRegionGroup>(e);
    if (!enums.u8(e)) return false;
    st.protocol = static_cast<net::Protocol>(e);
    bool b = false;
    if (!bools.bit(b)) return false;
    rec.rtsp_blocked_user = b;
    if (!bools.bit(b)) return false;
    rec.available = b;
    if (!bools.bit(b)) return false;
    st.session_established = b;
    if (!bools.bit(b)) return false;
    st.played_any_frame = b;
    if (!bools.bit(b)) return false;
    st.fell_back_to_tcp = b;
    if (!bools.bit(b)) return false;
    st.fell_back_to_http = b;
    if (!symbol(rec.country) || !symbol(rec.us_state) ||
        !symbol(rec.pc_class) || !symbol(rec.server_name) ||
        !symbol(rec.server_country)) {
      return false;
    }
    if (!rating.next(rec.rating)) return false;
    if (!encoded_bandwidth.next(st.encoded_bandwidth)) return false;
    if (!encoded_fps.next(st.encoded_fps)) return false;
    if (!measured_bandwidth.next(st.measured_bandwidth)) return false;
    if (!measured_fps.next(st.measured_fps)) return false;
    if (!jitter_ms.next(st.jitter_ms)) return false;
    if (!rebuffer_seconds.next(st.rebuffer_seconds)) return false;
    if (!preroll_seconds.next(st.preroll_seconds)) return false;
    if (!play_seconds.next(st.play_seconds)) return false;
    if (!cpu_utilization.next(st.cpu_utilization)) return false;
    st.samples.resize(static_cast<std::size_t>(n_samples));
    for (auto& s : st.samples) {
      if (!sample_t.next(s.t_seconds) || !sample_bw.next(s.bandwidth) ||
          !sample_fps.next(s.frame_rate)) {
        return false;
      }
    }
    out.push_back(std::move(rec));
  }
  return true;
}

bool SpillReader::read_record(std::uint64_t index,
                              tracer::TraceRecord& out) const {
  if (!ok_ || index >= records_) return false;
  // Binary search the frame index for the frame containing `index`.
  std::size_t lo = 0, hi = index_.size();
  while (lo + 1 < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (index_[mid].first_record <= index) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  std::vector<tracer::TraceRecord> frame;
  if (!read_frame(lo, frame)) return false;
  const std::uint64_t off = index - index_[lo].first_record;
  if (off >= frame.size()) return false;
  out = std::move(frame[off]);
  return true;
}

bool concat_spills(const std::vector<std::string>& inputs,
                   const std::string& out_path, std::string* error) {
  SpillWriter writer(out_path);
  if (!writer.ok()) {
    if (error != nullptr) *error = "cannot write spill file: " + out_path;
    return false;
  }
  std::vector<tracer::TraceRecord> frame;
  for (const auto& path : inputs) {
    SpillReader reader;
    if (!reader.open(path)) {
      if (error != nullptr) *error = reader.error();
      return false;
    }
    for (std::size_t f = 0; f < reader.frames(); ++f) {
      if (!reader.read_frame(f, frame)) {
        if (error != nullptr) *error = "corrupt spill frame in " + path;
        return false;
      }
      for (const auto& rec : frame) writer.append(rec);
    }
  }
  if (!writer.finish()) {
    if (error != nullptr) *error = "cannot finalize spill file: " + out_path;
    return false;
  }
  return true;
}

}  // namespace rv::study
