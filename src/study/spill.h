// Columnar, compressed, seekable on-disk spill for bulk TraceRecords.
//
// A campaign-scale study cannot keep millions of records resident; it folds
// each finished play into mergeable rollups and spills the raw record to
// disk. The spill format is DataSeries-flavoured: records are grouped into
// frames (extents) of up to kFrameRecords; within a frame every field is a
// column with its own encoding — zigzag-delta varints for integers,
// XOR-with-previous varints for doubles, bit-packed booleans, and pooled
// string ids (util::Symbol) mapped through a file-local string table. A
// footer carries the string table plus a frame index, so a reader can seek
// to any record by number without scanning the file.
//
// The layout is deterministic: appending the same record sequence always
// produces the same bytes, and frame boundaries depend only on record
// ordinals. Concatenating N shard spills through SpillWriter (decode →
// re-append) therefore reproduces the single-process file byte-for-byte —
// the property the shard-merge CI gate pins.
//
// Like the study cache, obs and telemetry payloads are never spilled.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "tracer/record.h"

namespace rv::study {

// Records per frame. Bounds writer memory (one frame of records plus its
// encoded columns) and is the unit of seek granularity.
constexpr std::size_t kSpillFrameRecords = 4096;

class SpillWriter {
 public:
  // Creates/truncates `path`. ok() reports whether the stream is healthy;
  // append/finish on a failed writer are no-ops.
  explicit SpillWriter(const std::string& path);
  ~SpillWriter();

  SpillWriter(const SpillWriter&) = delete;
  SpillWriter& operator=(const SpillWriter&) = delete;

  void append(const tracer::TraceRecord& rec);
  // Flushes the open frame and writes the footer. Idempotent; returns
  // overall success.
  bool finish();

  bool ok() const { return ok_; }
  std::uint64_t records() const { return records_; }
  // Live file-size / frame counters (observable mid-campaign without
  // touching the stream): bytes flushed so far and frames written.
  std::uint64_t bytes_written() const { return bytes_written_; }
  std::uint64_t frames_written() const { return index_.size(); }

 private:
  void flush_frame();
  std::uint32_t local_id(util::Symbol s);

  std::ofstream os_;
  bool ok_ = false;
  bool finished_ = false;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::vector<tracer::TraceRecord> frame_;
  // File-local string table in first-appearance order.
  std::unordered_map<std::uint32_t, std::uint32_t> symbol_to_local_;
  std::vector<std::string> strings_;
  struct FrameEntry {
    std::uint64_t offset = 0;
    std::uint64_t first_record = 0;
    std::uint32_t record_count = 0;
  };
  std::vector<FrameEntry> index_;
};

class SpillReader {
 public:
  SpillReader() = default;

  // Opens and validates the footer. Returns false (with error() set) on a
  // missing file, bad magic/version, or a truncated/corrupt footer.
  bool open(const std::string& path);

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  std::uint64_t records() const { return records_; }
  std::size_t frames() const { return index_.size(); }
  std::uint64_t frame_first_record(std::size_t frame) const;

  // Decodes one whole frame. Returns false on a corrupt frame.
  bool read_frame(std::size_t frame,
                  std::vector<tracer::TraceRecord>& out) const;
  // Random access by record ordinal: seeks to the containing frame and
  // decodes it. Returns false when `index` is out of range or the frame is
  // corrupt.
  bool read_record(std::uint64_t index, tracer::TraceRecord& out) const;

 private:
  mutable std::ifstream is_;
  bool ok_ = false;
  std::string error_;
  std::uint64_t records_ = 0;
  std::vector<std::string> strings_;
  struct FrameEntry {
    std::uint64_t offset = 0;
    std::uint64_t first_record = 0;
    std::uint32_t record_count = 0;
  };
  std::vector<FrameEntry> index_;
};

// Streams every record of `inputs` (in order) into a fresh spill at
// `out_path` — the shard-merge concat. Because the format is deterministic,
// the output is byte-identical to a single-process spill of the same record
// sequence. Returns false on any read or write failure.
bool concat_spills(const std::vector<std::string>& inputs,
                   const std::string& out_path, std::string* error);

}  // namespace rv::study
