// Regenerates every figure of the paper's evaluation from a StudyResult:
// an ASCII rendering of the plot plus a paper-vs-measured comparison block.
// CSV series are exported alongside when `csv_dir` is non-empty.
#pragma once

#include <string>

#include "study/study.h"

namespace rv::study {

// Figure 1 needs a single instrumented playout, not the whole study.
std::string fig01_buffering(const StudyConfig& config);

std::string fig05_clips_per_user(const StudyResult& result);
std::string fig06_rated_per_user(const StudyResult& result);
std::string fig07_user_countries(const StudyResult& result);
std::string fig08_server_countries(const StudyResult& result);
std::string fig09_us_states(const StudyResult& result);
std::string fig10_availability(const StudyResult& result);
std::string fig11_framerate_all(const StudyResult& result);
std::string fig12_framerate_by_net(const StudyResult& result);
std::string fig13_bandwidth_by_net(const StudyResult& result);
std::string fig14_framerate_by_server_region(const StudyResult& result);
std::string fig15_framerate_by_user_region(const StudyResult& result);
std::string fig16_protocol_mix(const StudyResult& result);
std::string fig17_framerate_by_protocol(const StudyResult& result);
std::string fig18_bandwidth_by_protocol(const StudyResult& result);
std::string fig19_framerate_by_pc(const StudyResult& result);
std::string fig20_jitter_all(const StudyResult& result);
std::string fig21_jitter_by_net(const StudyResult& result);
std::string fig22_jitter_by_server_region(const StudyResult& result);
std::string fig23_jitter_by_user_region(const StudyResult& result);
std::string fig24_jitter_by_protocol(const StudyResult& result);
std::string fig25_jitter_by_bandwidth(const StudyResult& result);
std::string fig26_quality_all(const StudyResult& result);
std::string fig27_quality_by_net(const StudyResult& result);
std::string fig28_quality_vs_bandwidth(const StudyResult& result);

// §IV totals: users, clips played, clips rated, unavailability.
std::string study_summary(const StudyResult& result);

// Optional CSV export directory for all figure series ("" disables).
void set_csv_export_dir(const std::string& dir);

}  // namespace rv::study
