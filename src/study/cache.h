// Binary (de)serialisation of a StudyResult, so the ~25 bench binaries can
// share one full study run instead of each re-simulating 2855 plays.
//
// The cache file is keyed by a hash of the study configuration; a stale or
// mismatched file is ignored and the study re-runs.
#pragma once

#include <optional>
#include <string>

#include "study/study.h"

namespace rv::study {

// A stable hash of every config field that affects the records.
std::uint64_t config_fingerprint(const StudyConfig& config);

// Cache path for a config inside `cache_dir` (empty = the default
// `./.rv_cache`). The file name is keyed by the config fingerprint; only
// the directory moved — cache bytes are unchanged, so pinned md5s survive.
std::string default_cache_path(const StudyConfig& config,
                               const std::string& cache_dir = std::string());

bool save_result(const std::string& path, const StudyConfig& config,
                 const StudyResult& result);

std::optional<StudyResult> load_result(const std::string& path,
                                       const StudyConfig& config);

// Loads from the default path when fresh, otherwise runs the study and
// saves. Benches call this. `force_run` skips the load (but still saves):
// needed when callers want fresh in-memory-only state — e.g. per-play
// traces, which a cache hit cannot supply because they are never
// serialized. The saved bytes are identical either way. `cache_dir`
// overrides where cache files live (empty = `./.rv_cache`, created on
// demand).
StudyResult run_study_cached(const StudyConfig& config, bool force_run = false,
                             const std::string& cache_dir = std::string());

}  // namespace rv::study
