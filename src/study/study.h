// The study driver: re-runs the paper's whole June-2001 measurement
// campaign inside the simulator — 63 users, 98-clip playlist, 11 servers —
// and returns every TraceRecord for analysis.
#pragma once

#include <cstdint>
#include <vector>

#include "media/catalog.h"
#include "tracer/real_tracer.h"
#include "world/region_graph.h"
#include "world/users.h"

namespace rv::study {

struct StudyConfig {
  std::uint64_t seed = 2001;
  media::CatalogSpec catalog;
  world::PopulationConfig population;
  tracer::TracerConfig tracer;
  int threads = 0;  // 0 = hardware concurrency
  // Scale factor on per-user play counts (quick test runs set < 1).
  double play_scale = 1.0;
  // Worker self-profiling (--profile): wall-clock phase timings and per-play
  // costs. Off by default — the execute loop then takes no clock reads at
  // all. Wall-clock data never feeds back into simulation state, so results
  // are identical either way; like obs/telemetry it is excluded from the
  // study-cache config fingerprint and never serialized.
  bool profile = false;
};

// One worker thread's execution-phase accounting. Each worker owns exactly
// one slot and bumps it after every play; at 32 payload bytes two unpadded
// slots would share a cache line and profiled runs would ping-pong it
// between cores, so the slot is padded out to a full line.
struct alignas(64) WorkerProfile {
  std::uint64_t plays = 0;          // tasks this worker executed
  double busy_seconds = 0.0;        // wall time inside run_play
  double idle_seconds = 0.0;        // execute wall minus busy (starvation)
  double max_play_seconds = 0.0;    // costliest single play
};
static_assert(sizeof(WorkerProfile) == 64 && alignof(WorkerProfile) == 64,
              "WorkerProfile slots must each own a whole cache line; "
              "re-pad after adding fields");

// Study-level profile: plan/execute phase walls plus per-worker breakdown.
struct StudyProfile {
  bool enabled = false;
  double plan_seconds = 0.0;     // serial planning pass (incl. access plan)
  double execute_seconds = 0.0;  // parallel execution phase wall
  std::vector<WorkerProfile> workers;  // one per worker thread
};

struct StudyResult {
  std::vector<world::UserProfile> users;
  std::vector<tracer::TraceRecord> records;
  StudyProfile profile;  // populated only when config.profile

  // Records from non-firewalled users (the paper's analysis set,
  // availability included — Fig 10 uses these).
  std::vector<const tracer::TraceRecord*> accesses() const;
  // Played, reachable records: the performance analysis set.
  std::vector<const tracer::TraceRecord*> played() const;
  // Played and rated records (Figs 26-28).
  std::vector<const tracer::TraceRecord*> rated() const;
};

// Runs the full study. Deterministic in config.seed (thread count does not
// affect results).
StudyResult run_study(const StudyConfig& config);

// The catalog a study config implies (shared by benches needing clip info).
media::Catalog make_catalog(const StudyConfig& config);

}  // namespace rv::study
