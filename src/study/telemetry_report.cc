#include "study/telemetry_report.h"

#include <algorithm>
#include <filesystem>
#include <map>

#include "stats/csv.h"
#include "stats/histogram.h"
#include "telemetry/flight.h"
#include "util/strings.h"
#include "world/path_builder.h"
#include "world/types.h"

namespace rv::study {
namespace {

std::string pad_left(const std::string& s, std::size_t width) {
  return s.size() >= width ? s : std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  return s.size() >= width ? s : s + std::string(width - s.size(), ' ');
}

std::string quantile_triplet(const stats::MergeableHistogram& h,
                             int decimals) {
  if (h.total() == 0) return "-";
  return util::str_cat(util::format_double(h.quantile(0.50), decimals), "/",
                       util::format_double(h.quantile(0.95), decimals), "/",
                       util::format_double(h.quantile(0.99), decimals));
}

void append_group_section(std::string& out, const std::string& title,
                          const std::map<std::string, GroupSketch>& groups) {
  out += "  by ";
  out += title;
  out += ":\n";
  for (const auto& [label, sketch] : groups) {
    out += "    ";
    out += pad_right(label, 18);
    out += pad_left(quantile_triplet(sketch.fps, 1), 16);
    out += "  ";
    out += pad_left(quantile_triplet(sketch.bw, 0), 16);
    out += '\n';
  }
}

const char* protocol_name(const tracer::TraceRecord& rec) {
  return rec.stats.protocol == net::Protocol::kUdp ? "udp" : "tcp";
}

}  // namespace

std::vector<std::string> flight_reasons(const tracer::TraceRecord& rec,
                                        const FlightPredicates& pred) {
  std::vector<std::string> reasons;
  if (!rec.analyzable()) return reasons;
  if (rec.stats.rebuffer_seconds > pred.rebuffer_seconds) {
    reasons.push_back("rebuffer");
  }
  if (pred.http_cloak && rec.stats.fell_back_to_http) {
    reasons.push_back("http-cloak");
  }
  if (rec.stats.measured_fps < pred.min_fps) reasons.push_back("low-fps");
  return reasons;
}

int write_flight_records(const std::string& dir, const StudyResult& result,
                         const FlightPredicates& pred) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return -1;
  int written = 0;
  for (std::size_t slot = 0; slot < result.records.size(); ++slot) {
    const tracer::TraceRecord& rec = result.records[slot];
    telemetry::FlightInfo info;
    info.reasons = flight_reasons(rec, pred);
    if (info.reasons.empty()) continue;
    info.meta.emplace_back("user_id", std::to_string(rec.user_id));
    info.meta.emplace_back("record_slot", std::to_string(slot));
    info.meta.emplace_back("clip_id", std::to_string(rec.clip_id));
    info.meta.emplace_back("server", util::json_quote(rec.server_name.str()));
    info.meta.emplace_back(
        "connection",
        util::json_quote(world::connection_class_name(rec.connection)));
    info.meta.emplace_back("user_region",
                           util::json_quote(world::user_region_group_name(
                               rec.user_group)));
    info.meta.emplace_back("protocol", util::json_quote(protocol_name(rec)));
    info.meta.emplace_back("measured_fps",
                           util::format_double(rec.stats.measured_fps, 3));
    info.meta.emplace_back(
        "rebuffer_seconds",
        util::format_double(rec.stats.rebuffer_seconds, 3));
    info.obs = &rec.obs;
    info.series = &rec.series;
    const std::string path =
        util::str_cat(dir, "/flight_u", rec.user_id, "_s", slot, ".json");
    if (!telemetry::write_flight_json(path, info)) return -1;
    ++written;
  }
  return written;
}

void TelemetryRollup::fold(const tracer::TraceRecord& rec) {
  if (!rec.series.enabled || rec.series.data.empty()) return;
  const telemetry::Series& s = rec.series.data;
  // Per-play sketches merged upward — the mergeable path the sharded
  // campaign uses, and the one stats_test pins associativity for.
  GroupSketch play;
  for (const double v : s.fps) play.fps.add(v);
  for (const double v : s.bandwidth_kbps) play.bw.add(v);
  const std::string cls(world::connection_class_name(rec.connection));
  by_class.try_emplace(cls).first->second.merge(play);
  by_region
      .try_emplace(std::string(world::user_region_group_name(rec.user_group)))
      .first->second.merge(play);
  by_server.try_emplace(rec.server_name).first->second.merge(play);
  ++plays;
  samples += s.size();

  const int link = telemetry::bottleneck_link(s);
  if (link >= 0) {
    auto& row = bottleneck[cls];
    if (row.empty()) row.assign(world::PlayPath::kLinkCount, 0);
    if (static_cast<std::size_t>(link) < row.size()) ++row[link];
  }
}

void TelemetryRollup::merge(const TelemetryRollup& other) {
  plays += other.plays;
  samples += other.samples;
  const auto merge_groups = [](std::map<std::string, GroupSketch>& into,
                               const std::map<std::string, GroupSketch>& from) {
    for (const auto& [label, sketch] : from) {
      into.try_emplace(label).first->second.merge(sketch);
    }
  };
  merge_groups(by_class, other.by_class);
  merge_groups(by_region, other.by_region);
  merge_groups(by_server, other.by_server);
  for (const auto& [label, row] : other.bottleneck) {
    auto& into = bottleneck[label];
    if (into.empty()) into.assign(row.size(), 0);
    for (std::size_t l = 0; l < row.size() && l < into.size(); ++l) {
      into[l] += row[l];
    }
  }
}

std::string TelemetryRollup::render() const {
  if (plays == 0) return {};
  std::string out = util::str_cat("Telemetry rollup: ", plays,
                                  " plays sampled, ", samples, " samples\n");
  out += util::str_cat("    ", pad_right("group", 18),
                       pad_left("fps p50/p95/p99", 16), "  ",
                       pad_left("kbps p50/p95/p99", 16), "\n");
  append_group_section(out, "connection class", by_class);
  append_group_section(out, "user region", by_region);
  append_group_section(out, "server", by_server);

  if (!bottleneck.empty()) {
    out += "  bottleneck attribution (plays per constraining link):\n";
    out += util::str_cat("    ", pad_right("", 18));
    for (std::size_t l = 0; l < world::PlayPath::kLinkCount; ++l) {
      out += pad_left(world::path_link_name(l), 14);
    }
    out += '\n';
    for (const auto& [label, row] : bottleneck) {
      out += util::str_cat("    ", pad_right(label, 18));
      for (const int n : row) out += pad_left(std::to_string(n), 14);
      out += '\n';
    }
  }
  return out;
}

std::map<std::string, std::vector<int>> bottleneck_table(
    const StudyResult& result) {
  TelemetryRollup rollup;
  for (const auto& rec : result.records) rollup.fold(rec);
  return rollup.bottleneck;
}

std::string telemetry_report(const StudyResult& result) {
  TelemetryRollup rollup;
  for (const auto& rec : result.records) rollup.fold(rec);
  return rollup.render();
}

void write_series_csv(const std::string& path,
                      const std::vector<tracer::TraceRecord>& records) {
  stats::CsvWriter csv(path);
  std::vector<std::string> row = {
      "user_id",    "record_slot",  "clip_id",     "server",
      "t_usec",     "buffer_sec",   "fps",         "bandwidth_kbps",
      "cwnd_bytes", "retx_per_sec", "pacing_kbps", "cc_state"};
  for (std::size_t l = 0; l < world::PlayPath::kLinkCount; ++l) {
    row.push_back(world::path_link_name(l) + "_occupancy");
    row.push_back(world::path_link_name(l) + "_drops");
  }
  csv.write_row(row);
  for (std::size_t slot = 0; slot < records.size(); ++slot) {
    const tracer::TraceRecord& rec = records[slot];
    if (!rec.series.enabled) continue;
    const telemetry::Series& s = rec.series.data;
    for (std::size_t i = 0; i < s.size(); ++i) {
      row.clear();
      row.push_back(std::to_string(rec.user_id));
      row.push_back(std::to_string(slot));
      row.push_back(std::to_string(rec.clip_id));
      row.push_back(rec.server_name);
      row.push_back(std::to_string(s.t[i]));
      row.push_back(util::format_double(s.buffer_sec[i], 6));
      row.push_back(util::format_double(s.fps[i], 6));
      row.push_back(util::format_double(s.bandwidth_kbps[i], 6));
      row.push_back(util::format_double(s.cwnd_bytes[i], 6));
      row.push_back(util::format_double(s.retx_per_sec[i], 6));
      row.push_back(util::format_double(s.pacing_kbps[i], 6));
      row.push_back(util::format_double(s.cc_state[i], 6));
      for (std::size_t l = 0; l < world::PlayPath::kLinkCount; ++l) {
        if (l < s.links.size() && i < s.links[l].occupancy.size()) {
          row.push_back(util::format_double(s.links[l].occupancy[i], 6));
          row.push_back(std::to_string(s.links[l].drops[i]));
        } else {
          row.push_back("0");
          row.push_back("0");
        }
      }
      csv.write_row(row);
    }
  }
}

std::vector<obs::CounterSeries> chrome_counter_series(
    const telemetry::PlaySeries& series) {
  std::vector<obs::CounterSeries> out;
  if (!series.enabled || series.data.empty()) return out;
  const telemetry::Series& s = series.data;
  const auto add = [&](std::string name, const std::vector<double>& v) {
    obs::CounterSeries cs;
    cs.name = std::move(name);
    cs.t = s.t;
    cs.v = v;
    out.push_back(std::move(cs));
  };
  add("buffer_sec", s.buffer_sec);
  add("fps", s.fps);
  add("bandwidth_kbps", s.bandwidth_kbps);
  add("cwnd_bytes", s.cwnd_bytes);
  add("retx_per_sec", s.retx_per_sec);
  add("pacing_kbps", s.pacing_kbps);
  add("cc_state", s.cc_state);
  for (std::size_t l = 0; l < s.links.size(); ++l) {
    add(world::path_link_name(l) + "_occupancy", s.links[l].occupancy);
    obs::CounterSeries drops;
    drops.name = world::path_link_name(l) + "_drops";
    drops.t = s.t;
    drops.v.assign(s.links[l].drops.begin(), s.links[l].drops.end());
    out.push_back(std::move(drops));
  }
  return out;
}

std::string profile_report(const StudyProfile& profile) {
  if (!profile.enabled) return "Study profile: disabled\n";
  std::string out = util::str_cat(
      "Study profile: plan ", util::format_double(profile.plan_seconds, 3),
      " s, execute ", util::format_double(profile.execute_seconds, 3), " s, ",
      profile.workers.size(), " worker(s)\n");
  out += util::str_cat("  ", pad_left("worker", 8), pad_left("plays", 8),
                       pad_left("busy_s", 10), pad_left("idle_s", 10),
                       pad_left("max_play_ms", 13), "\n");
  std::uint64_t total_plays = 0;
  double total_busy = 0.0, total_idle = 0.0;
  for (std::size_t w = 0; w < profile.workers.size(); ++w) {
    const WorkerProfile& wp = profile.workers[w];
    out += util::str_cat(
        "  ", pad_left(std::to_string(w), 8),
        pad_left(std::to_string(wp.plays), 8),
        pad_left(util::format_double(wp.busy_seconds, 3), 10),
        pad_left(util::format_double(wp.idle_seconds, 3), 10),
        pad_left(util::format_double(wp.max_play_seconds * 1e3, 1), 13),
        "\n");
    total_plays += wp.plays;
    total_busy += wp.busy_seconds;
    total_idle += wp.idle_seconds;
  }
  out += util::str_cat("  ", pad_left("total", 8),
                       pad_left(std::to_string(total_plays), 8),
                       pad_left(util::format_double(total_busy, 3), 10),
                       pad_left(util::format_double(total_idle, 3), 10),
                       "\n");
  return out;
}

}  // namespace rv::study
