// RealServer analog: accepts RTSP control connections, negotiates transport,
// and streams clips through per-session StreamSenders.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "media/catalog.h"
#include "media/stream_wire.h"
#include "net/network.h"
#include "rtsp/message.h"
#include "rtsp/session.h"
#include "server/stream_sender.h"
#include "transport/mux.h"
#include "transport/tcp.h"
#include "transport/udp.h"
#include "util/rng.h"

namespace rv::server {

enum class CongestionControlKind { kAimd, kTfrc, kNone };

struct RealServerConfig {
  StreamSenderConfig sender;
  transport::TcpConfig tcp;
  CongestionControlKind udp_control = CongestionControlKind::kAimd;
  net::Port rtsp_port = net::kRtspPort;
  net::Port http_port = 80;  // .ram metafiles (§II.A); 0 disables
  // Overload (accept-but-stall) fault: RTSP responses are held back until
  // this sim time — connections are accepted, the daemon just doesn't get to
  // them. 0 means healthy.
  SimTime response_stall_until = 0;
};

class RealServerApp {
 public:
  RealServerApp(net::Network& network, net::NodeId node,
                const media::Catalog& catalog, RealServerConfig config,
                util::Rng rng);
  ~RealServerApp();

  RealServerApp(const RealServerApp&) = delete;
  RealServerApp& operator=(const RealServerApp&) = delete;

  // Clips currently un-servable (the paper's ~10% availability gaps);
  // DESCRIBE returns 404 for them.
  void set_unavailable(std::set<std::uint32_t> clip_ids) {
    unavailable_ = std::move(clip_ids);
  }

  net::NodeId node_id() const { return mux_.node_id(); }
  std::size_t active_sessions() const { return sessions_.size(); }

  // Introspection for tests/benches: the most recently created session's
  // sender (nullptr when none).
  const StreamSender* last_sender() const;
  // Telemetry probes: congestion state of the most recent session's control
  // TCP connection. Interleaved-TCP media rides the control connection, so
  // its cwnd/retransmit counts describe the media path; UDP sessions report
  // 0 (their loss shows up in the per-link drop series instead).
  double last_session_cwnd_bytes() const;
  std::uint64_t last_session_tcp_retransmits() const;
  // Effective TCP pacing rate (bytes/sec) and congestion-control backend
  // state (BbrCC::State as an int; 0 for Reno/CUBIC) — telemetry probes,
  // 0 for UDP sessions like cwnd above.
  double last_session_pacing_bps() const;
  int last_session_cc_state() const;
  // Aggregate SureStream switches across all sessions, including finished
  // ones.
  std::uint64_t total_level_switches() const;
  std::uint64_t total_frames_thinned() const;

  // URL for a clip on this server.
  static std::string clip_url(std::uint32_t clip_id);
  // Parses "/clip/<id>" (or full rtsp:// URL); returns false on mismatch.
  static bool parse_clip_url(const std::string& url, std::uint32_t& clip_id);
  // The web path of a clip's .ram metafile.
  static std::string metafile_path(std::uint32_t clip_id);

 private:
  struct SessionCtx;

  void accept_control(std::unique_ptr<transport::TcpConnection> conn);
  void accept_http(std::unique_ptr<transport::TcpConnection> conn);
  void on_http_chunk(std::uint64_t id,
                     std::shared_ptr<const net::PayloadMeta> meta);
  // RTSP arrived on the web port (client-side HTTP cloaking): upgrade the
  // HTTP connection into a full RTSP session.
  void promote_http_to_rtsp(std::uint64_t http_id, const rtsp::Request& req);
  void on_control_chunk(SessionCtx& ctx,
                        std::shared_ptr<const net::PayloadMeta> meta);
  SessionCtx& adopt_control(std::unique_ptr<transport::TcpConnection> conn);
  rtsp::Response handle_request(SessionCtx& ctx, const rtsp::Request& req);
  void send_response(SessionCtx& ctx, const rtsp::Response& resp);
  void on_data_datagram(SessionCtx& ctx, net::Endpoint from,
                        std::shared_ptr<const net::PayloadMeta> meta);
  const media::Clip* find_clip(std::uint32_t clip_id) const;
  void destroy_session(std::uint64_t id);

  net::Network& network_;
  transport::TransportMux mux_;
  const media::Catalog& catalog_;
  RealServerConfig config_;
  util::Rng rng_;
  std::unique_ptr<transport::TcpListener> listener_;
  std::unique_ptr<transport::TcpListener> http_listener_;
  std::map<std::uint64_t, std::unique_ptr<transport::TcpConnection>>
      http_conns_;
  std::uint64_t next_http_id_ = 1;
  std::map<std::uint64_t, std::unique_ptr<SessionCtx>> sessions_;
  std::uint64_t next_session_id_ = 1;
  std::uint64_t last_session_id_ = 0;
  std::uint64_t finished_level_switches_ = 0;
  std::uint64_t finished_frames_thinned_ = 0;
  std::set<std::uint32_t> unavailable_;
};

}  // namespace rv::server
