#include "server/stream_sender.h"

#include <algorithm>

#include "util/arena.h"
#include "util/check.h"

namespace rv::server {
namespace {

// Audio is sent as fixed-interval packets covering this much media time.
constexpr SimTime kAudioPacketSpan = msec(250);

}  // namespace

StreamSender::StreamSender(sim::Simulator& sim, const media::Clip& clip,
                           std::size_t initial_level, MediaChannel& channel,
                           std::unique_ptr<transport::RateController>
                               controller,
                           const StreamSenderConfig& config, util::Rng rng)
    : sim_(sim),
      clip_(clip),
      channel_(channel),
      controller_(std::move(controller)),
      config_(config),
      rng_(std::move(rng)),
      level_(std::min(initial_level, clip.levels().size() - 1)),
      schedule_(media::FrameSchedule::generate(clip, level_)) {
  RV_CHECK_GT(config_.max_payload, 0);
}

void StreamSender::start() {
  RV_CHECK(!started_);
  started_ = true;
  start_wall_ = sim_.now();
  last_pump_ = sim_.now();
  pump();
  if (!channel_.reliable() || config_.surestream_enabled) {
    level_event_ = sim_.schedule_in(config_.level_check_interval,
                                    [this] { check_level(); });
  }
}

void StreamSender::stop() {
  if (stopped_) return;
  stopped_ = true;
  sim_.cancel(pump_event_);
  sim_.cancel(level_event_);
  pump_event_ = sim::kInvalidEventId;
  level_event_ = sim::kInvalidEventId;
}

BitsPerSec StreamSender::current_send_rate() const {
  const auto& level = clip_.level(level_);
  // Live content cannot be sent faster than it is produced.
  const bool prerolling =
      !config_.live &&
      to_seconds(media_pos_) < config_.preroll_media_seconds;
  double rate = level.total_bandwidth *
                (prerolling ? config_.preroll_burst_factor
                            : config_.steady_factor);
  if (controller_ != nullptr) {
    rate = std::min(rate, controller_->allowed_rate());
  }
  return std::max(rate, kbps(4));  // never fully stall the stream
}

void StreamSender::pump() {
  pump_event_ = sim::kInvalidEventId;
  if (stopped_) return;

  // Refill the token bucket for the elapsed time.
  const SimTime now = sim_.now();
  const BitsPerSec rate = current_send_rate();
  send_credit_bytes_ += rate / 8.0 * to_seconds(now - last_pump_);
  // Cap accumulated credit at one second of budget (bounds burst size).
  send_credit_bytes_ = std::min(send_credit_bytes_, rate / 8.0);
  last_pump_ = now;

  // TCP: do not stuff the transport far beyond its delivery rate — pause
  // pumping while the backlog is deep (the level logic watches it too).
  const double backlog_cap_sec = config_.backlog_switch_down_sec * 2.0;
  const auto backlog_cap = static_cast<std::int64_t>(
      clip_.level(level_).total_bandwidth / 8.0 * backlog_cap_sec);

  // The live edge: media that exists yet (plus a small encoder delay).
  const SimTime live_edge = now - start_wall_ - msec(200);

  while (next_frame_ < schedule_.size()) {
    if (channel_.backlog_bytes() > backlog_cap) break;
    const media::VideoFrame& frame = schedule_.frame(next_frame_);
    if (config_.live && frame.pts > live_edge) break;
    if (static_cast<double>(frame.bytes) > send_credit_bytes_) break;
    send_audio_up_to(frame.pts);
    if (should_thin(frame)) {
      ++frames_thinned_;
    } else {
      send_frame_packets(frame);
    }
    send_credit_bytes_ -= static_cast<double>(frame.bytes);
    media_pos_ = frame.pts;
    ++next_frame_;
  }

  if (next_frame_ >= schedule_.size()) {
    send_audio_up_to(clip_.duration());
    send_end_of_stream();
    return;
  }

  // Sleep until there is credit for the next frame (or a backlog re-check).
  const auto& frame = schedule_.frame(next_frame_);
  const double deficit =
      static_cast<double>(frame.bytes) - send_credit_bytes_;
  SimTime delay = msec(20);
  if (deficit > 0 && channel_.backlog_bytes() <= backlog_cap) {
    delay = std::max<SimTime>(
        usec(500), seconds_to_sim(deficit / (current_send_rate() / 8.0)));
  }
  pump_event_ = sim_.schedule_in(delay, [this] { pump(); });
}

void StreamSender::send_frame_packets(const media::VideoFrame& frame) {
  auto packets = media::packetize_frame(
      frame, clip_.id(), static_cast<std::uint16_t>(level_),
      config_.max_payload, seq_);
  for (auto& meta : packets) {
    meta->sent_at = sim_.now();
    const std::int32_t bytes = meta->payload_bytes;
    std::shared_ptr<const media::MediaPacketMeta> shared = std::move(meta);
    // Remember for NAK repair.
    repair_ring_.emplace(shared->seq, shared);
    repair_order_.push_back(shared->seq);
    while (repair_order_.size() > config_.repair_window) {
      repair_ring_.erase(repair_order_.front());
      repair_order_.pop_front();
    }
    channel_.send_media(shared, bytes);
    ++packets_sent_;
  }
}

void StreamSender::send_audio_up_to(SimTime media_pos) {
  const auto& level = clip_.level(level_);
  while (audio_pos_ < media_pos) {
    auto meta = util::arena_make_shared<media::MediaPacketMeta>();
    meta->clip_id = clip_.id();
    meta->level = static_cast<std::uint16_t>(level_);
    meta->kind = media::MediaKind::kAudio;
    meta->pts = audio_pos_;
    meta->frag_count = 1;
    meta->payload_bytes = std::max<std::int32_t>(
        16, static_cast<std::int32_t>(level.audio_bandwidth / 8.0 *
                                      to_seconds(kAudioPacketSpan)));
    meta->frame_bytes = meta->payload_bytes;
    meta->seq = seq_++;
    meta->sent_at = sim_.now();
    channel_.send_media(meta, meta->payload_bytes);
    ++packets_sent_;
    audio_pos_ += kAudioPacketSpan;
    // Audio bytes consume send credit as well.
    send_credit_bytes_ -= meta->payload_bytes;
  }
}

void StreamSender::send_end_of_stream() {
  if (eos_sent_) return;
  eos_sent_ = true;
  // Over UDP the EOS may be lost; send a small burst.
  const int copies = channel_.reliable() ? 1 : 3;
  for (int i = 0; i < copies; ++i) {
    auto meta = util::arena_make_shared<media::MediaPacketMeta>();
    meta->clip_id = clip_.id();
    meta->kind = media::MediaKind::kEndOfStream;
    meta->pts = clip_.duration();
    meta->frag_count = 1;
    meta->payload_bytes = 16;
    meta->frame_bytes = 16;
    meta->seq = seq_++;
    meta->sent_at = sim_.now();
    channel_.send_media(meta, meta->payload_bytes);
  }
  stop();
}

bool StreamSender::should_thin(const media::VideoFrame& frame) {
  if (!config_.svt_enabled || frame.keyframe) return false;
  if (controller_ == nullptr) {
    // TCP: thin when the backlog is deep and we're already at the floor.
    if (level_ != 0) return false;
    const auto backlog_sec =
        static_cast<double>(channel_.backlog_bytes()) /
        (clip_.level(0).total_bandwidth / 8.0);
    if (backlog_sec < config_.backlog_switch_down_sec) return false;
    return rng_.bernoulli(0.5);
  }
  const double allowed = controller_->allowed_rate();
  const double needed = clip_.level(level_).total_bandwidth;
  if (allowed >= needed || level_ != 0) return false;
  // Keep probability proportional to the usable share of the level's rate.
  const double keep = std::clamp(allowed / needed, 0.1, 1.0);
  return !rng_.bernoulli(keep);
}

void StreamSender::on_feedback(const media::FeedbackMeta& feedback) {
  if (stopped_) return;
  const SimTime rtt_sample =
      sim_.now() - feedback.echo_sent_at - feedback.echo_hold;
  if (rtt_sample > 0 && feedback.echo_sent_at > 0) {
    rtt_sec_ = 0.8 * rtt_sec_ + 0.2 * to_seconds(rtt_sample);
  }
  if (controller_ != nullptr) {
    transport::FeedbackReport report;
    report.loss_fraction = feedback.loss_fraction;
    report.receive_rate = feedback.receive_rate;
    report.rtt_seconds = rtt_sec_;
    controller_->on_feedback(report);
    if (config_.surestream_enabled) {
      // Pick the best level for the allowed rate, with hysteresis: switch up
      // only when there is 15% headroom.
      const BitsPerSec allowed = controller_->allowed_rate();
      std::size_t target = clip_.best_level_for(allowed / 1.15);
      if (clip_.level(target).total_bandwidth > allowed) target = 0;
      if (target != level_) switch_level(target);
    }
  }
}

void StreamSender::on_repair_request(const media::RepairRequestMeta& request) {
  if (stopped_) return;
  for (const std::uint32_t seq : request.seqs) {
    const auto it = repair_ring_.find(seq);
    if (it == repair_ring_.end()) continue;
    auto repair = util::arena_make_shared<media::MediaPacketMeta>(*it->second);
    repair->kind = media::MediaKind::kRepair;
    repair->sent_at = sim_.now();
    channel_.send_media(repair, repair->payload_bytes);
    ++repairs_sent_;
  }
}

void StreamSender::check_level() {
  level_event_ = sim::kInvalidEventId;
  if (stopped_) return;
  if (controller_ == nullptr && config_.surestream_enabled &&
      clip_.is_surestream()) {
    // TCP path: backlog pressure decides.
    const auto& level = clip_.level(level_);
    const double backlog_sec =
        static_cast<double>(channel_.backlog_bytes()) /
        (level.total_bandwidth / 8.0);
    if (backlog_sec > config_.backlog_switch_down_sec && level_ > 0) {
      switch_level(level_ - 1);
    } else if (backlog_sec < config_.backlog_switch_up_sec &&
               level_ + 1 < clip_.levels().size()) {
      // Probe upward cautiously once the pipe is clearly keeping up.
      if (to_seconds(media_pos_) > config_.preroll_media_seconds) {
        switch_level(level_ + 1);
      }
    }
  }
  level_event_ = sim_.schedule_in(config_.level_check_interval,
                                  [this] { check_level(); });
}

void StreamSender::switch_level(std::size_t new_level) {
  RV_CHECK_LT(new_level, clip_.levels().size());
  if (new_level == level_) return;
  level_ = new_level;
  ++level_switches_;
  // Continue in the new level's schedule from the current media position.
  schedule_ = media::FrameSchedule::generate(clip_, level_);
  next_frame_ = schedule_.first_frame_at(media_pos_ + 1);
}

}  // namespace rv::server
