#include "server/real_server.h"

#include <algorithm>
#include <charconv>

#include "rtsp/http.h"

#include "util/arena.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/strings.h"

namespace rv::server {
namespace {

// Media packet payload sizing: roughly 0.2 s of the client's connection rate
// per packet, as RealServer does for modem audiences, bounded to sane MTUs.
std::int32_t payload_for_bandwidth(BitsPerSec client_bw) {
  const double bytes = client_bw / 8.0 * 0.2;
  return static_cast<std::int32_t>(std::clamp(bytes, 400.0, 1400.0));
}

std::unique_ptr<transport::RateController> make_controller(
    CongestionControlKind kind, BitsPerSec initial, BitsPerSec max_rate) {
  switch (kind) {
    case CongestionControlKind::kAimd: {
      transport::AimdConfig cfg;
      cfg.initial_rate = initial;
      cfg.max_rate = max_rate;
      return std::make_unique<transport::AimdRateController>(cfg);
    }
    case CongestionControlKind::kTfrc: {
      transport::TfrcConfig cfg;
      cfg.initial_rate = initial;
      cfg.max_rate = max_rate;
      return std::make_unique<transport::TfrcController>(cfg);
    }
    case CongestionControlKind::kNone:
      return std::make_unique<transport::FixedRateController>(max_rate);
  }
  return nullptr;
}

class TcpMediaChannel final : public MediaChannel {
 public:
  explicit TcpMediaChannel(transport::TcpConnection& conn) : conn_(conn) {}
  void send_media(std::shared_ptr<const media::MediaPacketMeta> meta,
                  std::int32_t payload_bytes) override {
    conn_.send_chunk(payload_bytes, std::move(meta));
  }
  std::int64_t backlog_bytes() const override {
    return conn_.backlog_bytes();
  }
  bool reliable() const override { return true; }

 private:
  transport::TcpConnection& conn_;
};

class UdpMediaChannel final : public MediaChannel {
 public:
  UdpMediaChannel(transport::UdpSocket& socket, net::Endpoint client)
      : socket_(socket), client_(client) {}
  void send_media(std::shared_ptr<const media::MediaPacketMeta> meta,
                  std::int32_t payload_bytes) override {
    socket_.send_to(client_, payload_bytes, std::move(meta));
  }
  std::int64_t backlog_bytes() const override { return 0; }
  bool reliable() const override { return false; }

 private:
  transport::UdpSocket& socket_;
  net::Endpoint client_;
};

}  // namespace

struct RealServerApp::SessionCtx {
  std::uint64_t id = 0;
  std::unique_ptr<transport::TcpConnection> control;
  rtsp::Session rtsp{0};
  const media::Clip* clip = nullptr;
  BitsPerSec client_bandwidth = kbps(450);
  bool use_udp = false;
  std::unique_ptr<transport::UdpSocket> data_socket;
  std::unique_ptr<MediaChannel> channel;
  std::unique_ptr<StreamSender> sender;
};

RealServerApp::RealServerApp(net::Network& network, net::NodeId node,
                             const media::Catalog& catalog,
                             RealServerConfig config, util::Rng rng)
    : network_(network),
      mux_(network, node),
      catalog_(catalog),
      config_(config),
      rng_(std::move(rng)) {
  listener_ = std::make_unique<transport::TcpListener>(
      mux_, config_.rtsp_port, config_.tcp,
      [this](std::unique_ptr<transport::TcpConnection> conn) {
        accept_control(std::move(conn));
      });
  if (config_.http_port != 0) {
    http_listener_ = std::make_unique<transport::TcpListener>(
        mux_, config_.http_port, config_.tcp,
        [this](std::unique_ptr<transport::TcpConnection> conn) {
          accept_http(std::move(conn));
        });
  }
}

std::string RealServerApp::metafile_path(std::uint32_t clip_id) {
  return util::str_cat("/clip/", clip_id, ".ram");
}

void RealServerApp::accept_http(
    std::unique_ptr<transport::TcpConnection> conn) {
  const std::uint64_t id = next_http_id_++;
  transport::TcpConnection* raw = conn.get();
  raw->set_on_chunk(
      [this, id](std::shared_ptr<const net::PayloadMeta> meta, std::int64_t) {
        on_http_chunk(id, std::move(meta));
      });
  raw->set_on_closed([this, id] {
    // Linger (TIME_WAIT-style) so a peer FIN still in flight gets ACKed by
    // the connection rather than vanishing into an unbound port.
    network_.simulator().schedule_in(sec(30),
                                     [this, id] { http_conns_.erase(id); });
  });
  http_conns_[id] = std::move(conn);
}

void RealServerApp::on_http_chunk(
    std::uint64_t id, std::shared_ptr<const net::PayloadMeta> meta) {
  const auto it = http_conns_.find(id);
  if (it == http_conns_.end()) return;
  transport::TcpConnection& conn = *it->second;
  const auto* text = dynamic_cast<const media::RtspTextMeta*>(meta.get());
  if (text == nullptr) return;
  // HTTP cloaking: a client behind a blocked RTSP port speaks RTSP on the
  // web port. An RTSP request line never parses as HTTP (and vice versa).
  if (const auto rtsp_req = rtsp::parse_request(text->text)) {
    promote_http_to_rtsp(id, *rtsp_req);
    return;
  }
  const auto request = rtsp::parse_http_request(text->text);
  rtsp::HttpResponse resp;
  std::uint32_t clip_id = 0;
  std::string path = request ? request->path : "";
  if (path.size() > 4 && path.substr(path.size() - 4) == ".ram") {
    path.resize(path.size() - 4);
  }
  // The web server knows clips, not availability: a clip that exists gets a
  // metafile even when the RealServer can't stream it right now (that
  // failure surfaces at DESCRIBE, as the paper's Fig 10 measured it).
  if (!request || !parse_clip_url(path, clip_id) ||
      find_clip(clip_id) == nullptr) {
    resp.status = 404;
  } else {
    resp.headers.set("Content-Type", "audio/x-pn-realaudio");
    resp.body = rtsp::make_ram_metafile(clip_url(clip_id));
  }
  const std::string wire = resp.serialize();
  conn.send_chunk(static_cast<std::int64_t>(wire.size()),
                  util::arena_make_shared<media::RtspTextMeta>(wire));
  conn.close();  // HTTP/1.0: one request per connection
}

RealServerApp::~RealServerApp() = default;

std::string RealServerApp::clip_url(std::uint32_t clip_id) {
  return util::str_cat("rtsp://server/clip/", clip_id);
}

bool RealServerApp::parse_clip_url(const std::string& url,
                                   std::uint32_t& clip_id) {
  const auto pos = url.rfind("/clip/");
  if (pos == std::string::npos) return false;
  const std::string tail = url.substr(pos + 6);
  std::uint32_t value = 0;
  const auto* begin = tail.data();
  const auto* end = tail.data() + tail.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return false;
  clip_id = value;
  return true;
}

const media::Clip* RealServerApp::find_clip(std::uint32_t clip_id) const {
  for (const auto& clip : catalog_.clips()) {
    if (clip.id() == clip_id) return &clip;
  }
  return nullptr;
}

const StreamSender* RealServerApp::last_sender() const {
  const auto it = sessions_.find(last_session_id_);
  if (it == sessions_.end()) return nullptr;
  return it->second->sender.get();
}

double RealServerApp::last_session_cwnd_bytes() const {
  const auto it = sessions_.find(last_session_id_);
  if (it == sessions_.end()) return 0.0;
  const SessionCtx& ctx = *it->second;
  if (ctx.use_udp || ctx.control == nullptr) return 0.0;
  return ctx.control->cwnd_bytes();
}

double RealServerApp::last_session_pacing_bps() const {
  const auto it = sessions_.find(last_session_id_);
  if (it == sessions_.end()) return 0.0;
  const SessionCtx& ctx = *it->second;
  if (ctx.use_udp || ctx.control == nullptr) return 0.0;
  return ctx.control->pacing_rate_bps();
}

int RealServerApp::last_session_cc_state() const {
  const auto it = sessions_.find(last_session_id_);
  if (it == sessions_.end()) return 0;
  const SessionCtx& ctx = *it->second;
  if (ctx.use_udp || ctx.control == nullptr) return 0;
  return ctx.control->cc_state();
}

std::uint64_t RealServerApp::last_session_tcp_retransmits() const {
  const auto it = sessions_.find(last_session_id_);
  if (it == sessions_.end()) return 0;
  const SessionCtx& ctx = *it->second;
  if (ctx.use_udp || ctx.control == nullptr) return 0;
  return ctx.control->stats().retransmits;
}

RealServerApp::SessionCtx& RealServerApp::adopt_control(
    std::unique_ptr<transport::TcpConnection> conn) {
  auto ctx = std::make_unique<SessionCtx>();
  ctx->id = next_session_id_++;
  ctx->rtsp = rtsp::Session(ctx->id);
  ctx->control = std::move(conn);
  SessionCtx* raw = ctx.get();
  raw->control->set_on_chunk(
      [this, raw](std::shared_ptr<const net::PayloadMeta> meta,
                  std::int64_t) { on_control_chunk(*raw, std::move(meta)); });
  // Deferred with a linger: the close callback runs inside the TcpConnection
  // itself, and a peer FIN may still be in flight (TIME_WAIT semantics).
  // The sender is stopped immediately so no media flows while lingering.
  raw->control->set_on_closed([this, id = raw->id] {
    const auto it = sessions_.find(id);
    if (it != sessions_.end() && it->second->sender) {
      it->second->sender->stop();
    }
    network_.simulator().schedule_in(sec(30),
                                     [this, id] { destroy_session(id); });
  });
  last_session_id_ = ctx->id;
  sessions_[ctx->id] = std::move(ctx);
  return *raw;
}

void RealServerApp::accept_control(
    std::unique_ptr<transport::TcpConnection> conn) {
  adopt_control(std::move(conn));
}

void RealServerApp::promote_http_to_rtsp(std::uint64_t http_id,
                                         const rtsp::Request& req) {
  const auto it = http_conns_.find(http_id);
  if (it == http_conns_.end()) return;
  auto conn = std::move(it->second);
  http_conns_.erase(it);
  conn->set_on_chunk({});
  conn->set_on_closed({});
  SessionCtx& ctx = adopt_control(std::move(conn));
  send_response(ctx, handle_request(ctx, req));
}

void RealServerApp::destroy_session(std::uint64_t id) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  if (it->second->sender) {
    it->second->sender->stop();
    finished_level_switches_ += it->second->sender->level_switches();
    finished_frames_thinned_ += it->second->sender->frames_thinned();
  }
  sessions_.erase(it);
}

std::uint64_t RealServerApp::total_level_switches() const {
  std::uint64_t total = finished_level_switches_;
  for (const auto& [_, ctx] : sessions_) {
    if (ctx->sender) total += ctx->sender->level_switches();
  }
  return total;
}

std::uint64_t RealServerApp::total_frames_thinned() const {
  std::uint64_t total = finished_frames_thinned_;
  for (const auto& [_, ctx] : sessions_) {
    if (ctx->sender) total += ctx->sender->frames_thinned();
  }
  return total;
}

void RealServerApp::on_control_chunk(
    SessionCtx& ctx, std::shared_ptr<const net::PayloadMeta> meta) {
  const auto* text = dynamic_cast<const media::RtspTextMeta*>(meta.get());
  if (text == nullptr) return;  // not a control message
  const auto request = rtsp::parse_request(text->text);
  if (!request) {
    rtsp::Response resp;
    resp.status = rtsp::StatusCode::kBadRequest;
    send_response(ctx, resp);
    return;
  }
  send_response(ctx, handle_request(ctx, *request));
}

void RealServerApp::send_response(SessionCtx& ctx,
                                  const rtsp::Response& resp) {
  // Overloaded daemon: the request was read, but the reply waits in the
  // admission backlog until the stall window passes.
  if (network_.simulator().now() < config_.response_stall_until) {
    const std::uint64_t id = ctx.id;
    network_.simulator().schedule_at(
        config_.response_stall_until, [this, id, resp] {
          const auto it = sessions_.find(id);
          if (it == sessions_.end() || !it->second->control->established() ||
              it->second->control->closing()) {
            return;  // the client gave up waiting
          }
          send_response(*it->second, resp);
        });
    return;
  }
  const std::string wire = resp.serialize();
  ctx.control->send_chunk(
      static_cast<std::int64_t>(wire.size()),
      util::arena_make_shared<media::RtspTextMeta>(wire));
}

rtsp::Response RealServerApp::handle_request(SessionCtx& ctx,
                                             const rtsp::Request& req) {
  rtsp::Response resp;
  resp.cseq = req.cseq;
  resp.headers.set("Session", ctx.rtsp.id_string());

  if (!ctx.rtsp.apply(req.method)) {
    resp.status = rtsp::StatusCode::kBadRequest;
    return resp;
  }

  switch (req.method) {
    case rtsp::Method::kOptions:
      resp.headers.set("Public",
                       "OPTIONS, DESCRIBE, SETUP, PLAY, PAUSE, TEARDOWN");
      return resp;

    case rtsp::Method::kDescribe: {
      std::uint32_t clip_id = 0;
      if (!parse_clip_url(req.url, clip_id)) {
        resp.status = rtsp::StatusCode::kBadRequest;
        return resp;
      }
      const media::Clip* clip = find_clip(clip_id);
      if (clip == nullptr || unavailable_.count(clip_id) > 0) {
        resp.status = rtsp::StatusCode::kNotFound;
        return resp;
      }
      ctx.clip = clip;
      std::string body = util::str_cat(
          "clip=", clip->id(), "\nduration=", to_seconds(clip->duration()),
          "\nlevels=");
      for (std::size_t i = 0; i < clip->levels().size(); ++i) {
        if (i > 0) body += ',';
        body += util::format_double(
            to_kbps(clip->level(i).total_bandwidth), 0);
      }
      body += '\n';
      resp.body = std::move(body);
      return resp;
    }

    case rtsp::Method::kSetup: {
      if (ctx.clip == nullptr) {
        resp.status = rtsp::StatusCode::kBadRequest;
        return resp;
      }
      const auto transport_hdr = req.headers.get("Transport");
      const auto spec = transport_hdr
                            ? rtsp::parse_transport(*transport_hdr)
                            : std::nullopt;
      if (!spec) {
        resp.status = rtsp::StatusCode::kUnsupportedTransport;
        return resp;
      }
      if (const auto bw = req.headers.get("Bandwidth")) {
        ctx.client_bandwidth = std::max(8000.0, std::atof(bw->c_str()));
      }
      ctx.use_udp = spec->use_udp;
      if (ctx.use_udp) {
        ctx.data_socket = std::make_unique<transport::UdpSocket>(mux_);
        SessionCtx* raw = &ctx;
        ctx.data_socket->set_on_datagram(
            [this, raw](net::Endpoint from,
                        std::shared_ptr<const net::PayloadMeta> meta,
                        std::int32_t) {
              on_data_datagram(*raw, from, std::move(meta));
            });
        ctx.channel = std::make_unique<UdpMediaChannel>(
            *ctx.data_socket,
            net::Endpoint{ctx.control->remote_endpoint().node,
                          static_cast<net::Port>(spec->client_port)});
        resp.headers.set(
            "Transport",
            util::str_cat(spec->serialize(), ";server_port=",
                          ctx.data_socket->local_port()));
      } else {
        ctx.channel = std::make_unique<TcpMediaChannel>(*ctx.control);
        resp.headers.set("Transport", spec->serialize());
      }
      return resp;
    }

    case rtsp::Method::kPlay: {
      if (ctx.clip == nullptr || ctx.channel == nullptr) {
        resp.status = rtsp::StatusCode::kBadRequest;
        return resp;
      }
      if (ctx.sender == nullptr) {
        const std::size_t level =
            ctx.clip->best_level_for(ctx.client_bandwidth);
        StreamSenderConfig sender_cfg = config_.sender;
        if (sender_cfg.adaptive_packet_size) {
          sender_cfg.max_payload = payload_for_bandwidth(ctx.client_bandwidth);
        }
        std::unique_ptr<transport::RateController> controller;
        if (ctx.use_udp) {
          controller = make_controller(
              config_.udp_control,
              ctx.clip->level(level).total_bandwidth * 1.2,
              std::min(ctx.client_bandwidth * 1.25,
                       ctx.clip->levels().back().total_bandwidth * 1.5));
        }
        ctx.sender = std::make_unique<StreamSender>(
            network_.simulator(), *ctx.clip, level, *ctx.channel,
            std::move(controller), sender_cfg, rng_.fork(ctx.id));
        ctx.sender->start();
      }
      return resp;
    }

    case rtsp::Method::kPause: {
      if (ctx.sender) ctx.sender->stop();
      return resp;
    }

    case rtsp::Method::kTeardown: {
      if (ctx.sender) ctx.sender->stop();
      // The control connection closes from the client side; the session is
      // reaped in the close callback.
      return resp;
    }

    case rtsp::Method::kSetParameter:
      return resp;
  }
  resp.status = rtsp::StatusCode::kInternalError;
  return resp;
}

void RealServerApp::on_data_datagram(
    SessionCtx& ctx, net::Endpoint /*from*/,
    std::shared_ptr<const net::PayloadMeta> meta) {
  if (ctx.sender == nullptr) return;
  if (const auto* feedback =
          dynamic_cast<const media::FeedbackMeta*>(meta.get())) {
    ctx.sender->on_feedback(*feedback);
    return;
  }
  if (const auto* repair =
          dynamic_cast<const media::RepairRequestMeta*>(meta.get())) {
    ctx.sender->on_repair_request(*repair);
  }
}

}  // namespace rv::server
