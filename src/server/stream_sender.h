// The server-side streaming engine for one session.
//
// Implements the RealServer behaviours the paper describes in §II:
//  - paced sending at the active encoding level's rate, with a
//    faster-than-realtime burst while the client pre-buffers
//  - SureStream mid-stream level switching, driven by the application-layer
//    rate controller (UDP) or by send-backlog pressure (TCP)
//  - Scalable Video Technology frame thinning when even the lowest level
//    exceeds the usable rate
//  - answering NAK repair requests with error-correction packets
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "media/clip.h"
#include "media/frame_schedule.h"
#include "media/packetizer.h"
#include "media/stream_wire.h"
#include "sim/simulator.h"
#include "transport/rate_control.h"
#include "util/rng.h"
#include "util/units.h"

namespace rv::server {

// How the sender pushes packets toward the client; implemented over UDP
// datagrams or TCP chunks by the server app.
class MediaChannel {
 public:
  virtual ~MediaChannel() = default;
  virtual void send_media(std::shared_ptr<const media::MediaPacketMeta> meta,
                          std::int32_t payload_bytes) = 0;
  // Bytes accepted but not yet delivered (TCP backlog); 0 for UDP.
  virtual std::int64_t backlog_bytes() const = 0;
  virtual bool reliable() const = 0;
};

struct StreamSenderConfig {
  std::int32_t max_payload = 1000;      // media packet payload cap
  double preroll_media_seconds = 8.0;   // media sent at burst rate first
  double preroll_burst_factor = 1.8;    // rate multiplier during preroll
  double steady_factor = 1.08;          // slight overspeed in steady state
  // TCP backlog thresholds (in seconds of the active level's bandwidth).
  double backlog_switch_down_sec = 2.0;
  double backlog_switch_up_sec = 0.3;
  SimTime level_check_interval = msec(1000);
  // Repair ring: how many recent packets can be re-sent on NAK.
  std::size_t repair_window = 512;
  bool surestream_enabled = true;
  bool svt_enabled = true;
  // RealServer sizes media packets to the client's connection speed; turn
  // off to always use MTU-sized packets (ablation).
  bool adaptive_packet_size = true;
  // Live content (paper §VIII / [LH01]): frames come off a camera in real
  // time, so the sender can never run ahead of the live edge — no pre-roll
  // burst, and a stalled client rejoins at the edge instead of catching up.
  bool live = false;
};

class StreamSender {
 public:
  // `controller` may be null (TCP sessions: the transport adapts). `rng`
  // drives SVT thinning decisions.
  StreamSender(sim::Simulator& sim, const media::Clip& clip,
               std::size_t initial_level, MediaChannel& channel,
               std::unique_ptr<transport::RateController> controller,
               const StreamSenderConfig& config, util::Rng rng);

  // Begins streaming (PLAY).
  void start();
  // Stops streaming (TEARDOWN); outstanding events are disarmed.
  void stop();
  bool stopped() const { return stopped_; }

  // Receiver feedback from the data back-channel (UDP sessions).
  void on_feedback(const media::FeedbackMeta& feedback);
  // NAK: re-send the requested packets if still in the repair window.
  void on_repair_request(const media::RepairRequestMeta& request);

  std::size_t active_level() const { return level_; }
  std::uint64_t level_switches() const { return level_switches_; }
  std::uint64_t frames_thinned() const { return frames_thinned_; }
  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t repairs_sent() const { return repairs_sent_; }
  double estimated_rtt_seconds() const { return rtt_sec_; }

 private:
  void pump();                 // paced send loop
  void send_frame_packets(const media::VideoFrame& frame);
  void send_audio_up_to(SimTime media_pos);
  void send_end_of_stream();
  void check_level();          // periodic SureStream decision (TCP path)
  void switch_level(std::size_t new_level);
  BitsPerSec current_send_rate() const;
  bool should_thin(const media::VideoFrame& frame);

  sim::Simulator& sim_;
  const media::Clip& clip_;
  MediaChannel& channel_;
  std::unique_ptr<transport::RateController> controller_;
  StreamSenderConfig config_;
  util::Rng rng_;

  std::size_t level_;
  media::FrameSchedule schedule_;
  std::size_t next_frame_ = 0;
  SimTime media_pos_ = 0;        // media time up to which we have sent
  SimTime audio_pos_ = 0;        // audio sent up to this media time
  std::uint32_t seq_ = 0;
  double send_credit_bytes_ = 0; // token bucket
  SimTime last_pump_ = 0;
  SimTime start_wall_ = 0;       // when streaming began (live-edge anchor)
  bool started_ = false;
  bool stopped_ = false;
  bool eos_sent_ = false;
  sim::EventId pump_event_ = sim::kInvalidEventId;
  sim::EventId level_event_ = sim::kInvalidEventId;

  double rtt_sec_ = 0.25;        // EWMA from feedback echoes
  std::uint64_t level_switches_ = 0;
  std::uint64_t frames_thinned_ = 0;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t repairs_sent_ = 0;

  // Repair ring buffer: seq → packet meta.
  std::map<std::uint32_t, std::shared_ptr<const media::MediaPacketMeta>>
      repair_ring_;
  std::deque<std::uint32_t> repair_order_;
};

}  // namespace rv::server
