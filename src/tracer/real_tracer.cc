#include "tracer/real_tracer.h"
#include <cmath>

#include <algorithm>

#include "client/real_player.h"
#include "tracer/rating.h"
#include "util/check.h"

namespace rv::tracer {
namespace {

TraceRecord base_record(const world::UserProfile& user,
                        const media::Catalog& catalog,
                        std::size_t playlist_index) {
  const media::Clip& clip = catalog.clip(playlist_index);
  const std::size_t site_idx = media::Catalog::site_of(clip.id());
  const auto& site = world::server_sites().at(site_idx);
  TraceRecord rec;
  rec.user_id = user.id;
  rec.country = user.country;
  rec.us_state = user.us_state;
  rec.user_group = user.group;
  rec.connection = user.connection;
  rec.pc_class = user.pc_class;
  rec.rtsp_blocked_user = user.rtsp_blocked;
  rec.clip_id = clip.id();
  rec.site = site_idx;
  rec.server_name = site.name;
  rec.server_country = site.country;
  rec.server_group = site.group;
  return rec;
}

}  // namespace

TraceRecord RealTracer::run_single(const world::UserProfile& user,
                                   std::size_t playlist_index,
                                   std::uint64_t play_seed,
                                   bool force_tcp) const {
  TraceRecord rec = base_record(user, catalog_, playlist_index);
  const auto& site = world::server_sites().at(rec.site);
  util::Rng rng(play_seed);

  sim::Simulator sim;
  world::PathBuilder builder(graph_, config_.path);
  const world::AccessSpec access =
      world::access_spec_for(user.connection, rng);
  world::PlayPath path = builder.build(sim, user, access, site, rng);
  path.start_cross_traffic();

  server::RealServerConfig server_cfg;
  server_cfg.udp_control = config_.udp_control;
  server_cfg.sender.surestream_enabled = config_.surestream_enabled;
  server_cfg.sender.svt_enabled = config_.svt_enabled;
  server_cfg.sender.adaptive_packet_size = config_.adaptive_packet_size;
  server_cfg.sender.live = config_.live_content;
  server_cfg.tcp.sack_enabled = config_.tcp_sack;
  server_cfg.sender.preroll_media_seconds = config_.preroll_media_seconds;
  server::RealServerApp server(*path.network, path.server_node, catalog_,
                               server_cfg, rng.fork("server"));

  client::RealPlayerConfig player_cfg;
  player_cfg.playout.pc = client::pc_class_by_name(user.pc_class);
  player_cfg.playout.preroll_target_sec = config_.preroll_media_seconds;
  // Desktop playout wobble varies widely across machines and sessions.
  player_cfg.playout.host_timing_noise_ms =
      std::clamp(rng.lognormal(std::log(20.0), 0.8), 2.0, 120.0);
  player_cfg.playout.noise_seed = rng.next_u64();
  player_cfg.reported_bandwidth =
      world::reported_bandwidth_for(user.connection);
  player_cfg.watch_duration = config_.watch_duration;
  player_cfg.tcp.sack_enabled = config_.tcp_sack;
  player_cfg.udp_blocked = user.udp_blocked;
  player_cfg.prefer_udp = !force_tcp;
  client::RealPlayerApp player(*path.network, path.client_node,
                               {path.server_node, net::kRtspPort},
                               catalog_.clip(playlist_index).id(), catalog_,
                               player_cfg);
  player.start();
  sim.run_until(config_.play_horizon);

  rec.available = !player.clip_unavailable();
  rec.stats = player.stats();
  return rec;
}

std::vector<TraceRecord> RealTracer::run_user(
    const world::UserProfile& user, std::uint64_t study_seed) const {
  util::Rng user_rng(user.seed ^ study_seed);
  std::vector<TraceRecord> records;
  const int plays =
      std::min<int>(user.clips_to_play, static_cast<int>(catalog_.size()));

  // Which of the played clips this user rates (spread over the session).
  std::vector<std::size_t> order(static_cast<std::size_t>(plays));
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<std::size_t> to_rate = order;
  user_rng.shuffle(to_rate);
  to_rate.resize(std::min<std::size_t>(
      static_cast<std::size_t>(user.clips_to_rate), to_rate.size()));
  std::sort(to_rate.begin(), to_rate.end());

  RaterProfile rater = make_rater(user_rng);

  for (int i = 0; i < plays; ++i) {
    const auto playlist_index =
        static_cast<std::size_t>(i) % catalog_.size();
    util::Rng play_rng = user_rng.fork(static_cast<std::uint64_t>(i));

    TraceRecord rec = base_record(user, catalog_, playlist_index);
    if (user.rtsp_blocked) {
      // Firewalled participant: RTSP never gets through; the paper removed
      // these users from all analysis (§IV).
      rec.available = false;
      records.push_back(std::move(rec));
      continue;
    }

    const auto& site = world::server_sites().at(rec.site);
    if (play_rng.bernoulli(site.unavailability)) {
      rec.available = false;  // Fig 10: clip unreachable this time
      records.push_back(std::move(rec));
      continue;
    }

    const bool force_tcp =
        play_rng.bernoulli(config_.direct_tcp_probability);
    rec = run_single(user, playlist_index, play_rng.next_u64(), force_tcp);

    const bool rate_this =
        std::binary_search(to_rate.begin(), to_rate.end(),
                           static_cast<std::size_t>(i));
    if (rate_this && rec.analyzable()) {
      rec.rating = rate_clip(rater, rec.stats, play_rng);
    }
    records.push_back(std::move(rec));
  }
  return records;
}

}  // namespace rv::tracer
