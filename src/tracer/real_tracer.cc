#include "tracer/real_tracer.h"
#include <cmath>

#include <algorithm>
#include <optional>

#include "client/real_player.h"
#include "telemetry/sampler.h"
#include "tracer/rating.h"
#include "util/check.h"

namespace rv::tracer {
namespace {

TraceRecord base_record(const world::UserProfile& user,
                        const media::Catalog& catalog,
                        std::size_t playlist_index) {
  const media::Clip& clip = catalog.clip(playlist_index);
  const std::size_t site_idx = media::Catalog::site_of(clip.id());
  const auto& site = world::server_sites().at(site_idx);
  TraceRecord rec;
  rec.user_id = user.id;
  rec.country = user.country;
  rec.us_state = user.us_state;
  rec.user_group = user.group;
  rec.connection = user.connection;
  rec.pc_class = user.pc_class;
  rec.rtsp_blocked_user = user.rtsp_blocked;
  rec.clip_id = clip.id();
  rec.site = site_idx;
  rec.server_name = site.name;
  rec.server_country = site.country;
  rec.server_group = site.group;
  return rec;
}

// Relative session cost for the cost-descending schedule. Event volume
// scales with the watch window and, roughly, with the connection's line rate
// (a T1 play moves ~20x the packets of a modem play); an unreachable-server
// play only exercises the retry ladder. Only the *ordering* matters, and
// only for tail latency — a wrong estimate can never change results.
double estimate_cost(const TracerConfig& config,
                     const world::UserProfile& user, bool server_unreachable) {
  const double bw_kbps = to_kbps(world::reported_bandwidth_for(user.connection));
  double est = to_seconds(config.watch_duration) * (0.2 + bw_kbps / 500.0);
  if (server_unreachable) est *= 0.1;
  return est;
}

}  // namespace

RealTracer::RealTracer(const media::Catalog& catalog,
                       const world::RegionGraph& graph,
                       const TracerConfig& config)
    : catalog_(catalog), graph_(graph), config_(config) {
  if (config_.faults.enabled && config_.faults.mechanistic_unavailability) {
    // Calibrate each site's outage time budget to its Fig 10 rate; the
    // per-access unavailable fraction then *emerges* from where accesses
    // land on the campaign timeline.
    std::vector<double> targets;
    for (const auto& site : world::server_sites()) {
      targets.push_back(site.unavailability);
    }
    outages_ = faults::SiteOutageTable(config_.faults, targets);
  }
}

void RealTracer::plan_access_times(
    const std::vector<world::UserProfile>& users) {
  access_plan_begin();
  for (const auto& user : users) access_plan_add(user, /*keep_base=*/true);
}

void RealTracer::access_plan_begin() {
  if (!config_.faults.enabled || !config_.faults.mechanistic_unavailability) {
    return;
  }
  site_access_total_.assign(world::server_sites().size(), 0);
  user_site_base_.clear();
}

void RealTracer::access_plan_add(const world::UserProfile& user,
                                 bool keep_base) {
  if (!config_.faults.enabled || !config_.faults.mechanistic_unavailability) {
    return;
  }
  if (user.rtsp_blocked) return;
  const int plays =
      std::min<int>(user.clips_to_play, static_cast<int>(catalog_.size()));
  if (keep_base) user_site_base_[user.id] = site_access_total_;
  for (int i = 0; i < plays; ++i) {
    const auto idx = static_cast<std::size_t>(i) % catalog_.size();
    ++site_access_total_[media::Catalog::site_of(catalog_.clip(idx).id())];
  }
}

TraceRecord RealTracer::run_session(
    PlayContext& ctx, const world::UserProfile& user,
    std::size_t playlist_index, std::uint64_t play_seed, bool force_tcp,
    const faults::PlayFaults* play_faults, bool observe) const {
  TraceRecord rec = base_record(user, catalog_, playlist_index);
  // Install the context's sink for the whole session so every hook below
  // (path, server, client, faults) records into this play. Purely
  // observational: no rng draw or event order depends on it.
  std::optional<obs::ScopedSink> obs_scope;
  if (observe) {
    ctx.sink.reset(config_.obs.ring_capacity);
    obs_scope.emplace(&ctx.sink);
  }
  const auto& site = world::server_sites().at(rec.site);
  util::Rng rng(play_seed);

  // Clear the previous play out of the context *before* the path rebuild:
  // destroying the old pending events returns their pooled packets while the
  // old network (and pool core) is still alive. After reset the simulator is
  // observationally a fresh one, so reuse cannot perturb results.
  sim::Simulator& sim = ctx.sim;
  sim.reset();
  world::PathBuilder builder(graph_, config_.path);
  const world::AccessSpec access =
      world::access_spec_for(user.connection, rng);
  builder.build_into(ctx.path, sim, user, access, site, rng);
  world::PlayPath& path = ctx.path;
  path.start_cross_traffic();

  // Every metadata block from the previous play died in the resets above
  // (pending events with sim.reset(), queued packets with the network
  // rebuild), so the arena can rewind. The scope routes this play's
  // arena_make_shared calls — packetizer, sender, player, RTSP wire metas —
  // into ctx's slabs. Declared before server/player so their destructors
  // (which release the last meta references) run inside the scope; release
  // is a no-op either way, the ordering just keeps the contract obvious.
  ctx.arena.reset();
  util::ArenaScope arena_scope(&ctx.arena);

  server::RealServerConfig server_cfg;
  server_cfg.udp_control = config_.udp_control;
  server_cfg.sender.surestream_enabled = config_.surestream_enabled;
  server_cfg.sender.svt_enabled = config_.svt_enabled;
  server_cfg.sender.adaptive_packet_size = config_.adaptive_packet_size;
  server_cfg.sender.live = config_.live_content;
  server_cfg.tcp.sack_enabled = config_.tcp_sack;
  server_cfg.tcp.cc = config_.tcp_cc;
  server_cfg.sender.preroll_media_seconds = config_.preroll_media_seconds;
  if (play_faults != nullptr && play_faults->overload_stall_until > 0) {
    server_cfg.response_stall_until = play_faults->overload_stall_until;
    obs::emit(0, obs::Code::kFaultOverload,
              static_cast<std::uint64_t>(play_faults->overload_stall_until));
  }
  server::RealServerApp server(*path.network, path.server_node, catalog_,
                               server_cfg, rng.fork("server"));

  client::RealPlayerConfig player_cfg;
  player_cfg.playout.pc = client::pc_class_by_name(user.pc_class);
  player_cfg.playout.preroll_target_sec = config_.preroll_media_seconds;
  // Desktop playout wobble varies widely across machines and sessions.
  player_cfg.playout.host_timing_noise_ms =
      std::clamp(rng.lognormal(std::log(20.0), 0.8), 2.0, 120.0);
  player_cfg.playout.noise_seed = rng.next_u64();
  player_cfg.reported_bandwidth =
      world::reported_bandwidth_for(user.connection);
  player_cfg.watch_duration = config_.watch_duration;
  player_cfg.tcp.sack_enabled = config_.tcp_sack;
  player_cfg.tcp.cc = config_.tcp_cc;
  player_cfg.udp_blocked = user.udp_blocked;
  player_cfg.prefer_udp = !force_tcp;
  client::RealPlayerApp player(*path.network, path.client_node,
                               {path.server_node, net::kRtspPort},
                               catalog_.clip(playlist_index).id(), catalog_,
                               player_cfg);

  // Link faults last, so legacy plays consume an identical rng stream.
  std::unique_ptr<faults::LinkFaultInjector> injector;
  if (play_faults != nullptr) {
    std::vector<faults::LinkFaultSpec> specs = play_faults->link_faults;
    if (play_faults->server_unreachable) {
      // Site outage: its access segment blackholes for the whole play; the
      // client's retry ladder exhausts and reports the clip unavailable.
      obs::emit(0, obs::Code::kFaultOutage, rec.site);
      faults::LinkFaultSpec down;
      down.link_index = world::PlayPath::kServerAccess;
      down.kind = faults::LinkFaultKind::kDown;
      down.start = 0;
      down.duration = config_.play_horizon + sec(1);
      specs.push_back(down);
    }
    if (!specs.empty()) {
      injector = std::make_unique<faults::LinkFaultInjector>(
          *path.network, std::move(specs), rng.fork("link-faults"));
    }
  }

  // The sampler only *reads* player/server/link state on a fixed sim-time
  // grid — no rng draws, no observable mutation — so enabling it cannot
  // change the play's outcome (its timer events renumber later event seqs,
  // which never reorders existing ties; see telemetry/series.h).
  std::optional<telemetry::PlaySampler> sampler;
  if (config_.telemetry.enabled) {
    ctx.series.reset(world::PlayPath::kLinkCount);
    telemetry::Probe probe;
    probe.buffer_sec = [&player] { return player.buffered_media_seconds(); };
    probe.frames_played = [&player] { return player.frames_played_so_far(); };
    probe.bytes_received = [&player] {
      return player.bytes_received_so_far();
    };
    probe.cwnd_bytes = [&server] { return server.last_session_cwnd_bytes(); };
    probe.tcp_retransmits = [&server] {
      return server.last_session_tcp_retransmits();
    };
    probe.pacing_bps = [&server] { return server.last_session_pacing_bps(); };
    probe.cc_state = [&server] { return server.last_session_cc_state(); };
    probe.finished = [&player] { return player.finished(); };
    sampler.emplace(sim, path.network.get(), world::PlayPath::kLinkCount,
                    std::move(probe), &ctx.series, config_.telemetry.interval);
    sampler->start();
  }

  player.start();
  sim.run_until(config_.play_horizon);

  rec.available = !player.clip_unavailable();
  rec.stats = player.stats();
  if (config_.telemetry.enabled) {
    rec.series.enabled = true;
    rec.series.interval = config_.telemetry.interval;
    rec.series.data = ctx.series;
  }
  if (observe) {
    obs_scope.reset();  // stop recording before the snapshot
    ctx.sink.counters.add(obs::Counter::kSimEvents, sim.events_executed());
    rec.obs.enabled = true;
    rec.obs.events = ctx.sink.buffer.snapshot();
    rec.obs.events_dropped = ctx.sink.buffer.dropped();
    rec.obs.counters = ctx.sink.counters;
  }
  return rec;
}

TraceRecord RealTracer::run_single(const world::UserProfile& user,
                                   std::size_t playlist_index,
                                   std::uint64_t play_seed,
                                   bool force_tcp,
                                   const faults::PlayFaults* play_faults) const {
  PlayContext ctx;
  // Standalone plays have no per-user play index; the playlist index
  // doubles as the --trace-play match key.
  const bool observe = config_.obs.selects(
      static_cast<std::uint32_t>(user.id),
      static_cast<std::uint32_t>(playlist_index));
  return run_session(ctx, user, playlist_index, play_seed, force_tcp,
                     play_faults, observe);
}

void RealTracer::plan_user(const world::UserProfile& user,
                           std::uint64_t study_seed, std::uint32_t user_index,
                           StudyPlan& plan) const {
  // The draws below replay the pre-split run_user loop verbatim — same
  // streams, same order — so a planned play's seed, faults and rating state
  // are bit-identical to what the serial code would have used.
  util::Rng user_rng(user.seed ^ study_seed);
  const int plays =
      std::min<int>(user.clips_to_play, static_cast<int>(catalog_.size()));

  // Which of the played clips this user rates (spread over the session).
  std::vector<std::size_t> order(static_cast<std::size_t>(plays));
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<std::size_t> to_rate = order;
  user_rng.shuffle(to_rate);
  to_rate.resize(std::min<std::size_t>(
      static_cast<std::size_t>(user.clips_to_rate), to_rate.size()));
  std::sort(to_rate.begin(), to_rate.end());

  RaterProfile rater = make_rater(user_rng);

  // Mechanistic unavailability: this user's running access count per site
  // (their rank within a site advances with each visit).
  const bool mechanistic =
      config_.faults.enabled && config_.faults.mechanistic_unavailability;
  std::vector<int> site_seen;
  std::vector<int> site_mine;
  const std::vector<int>* site_base = nullptr;
  if (mechanistic) {
    site_seen.assign(world::server_sites().size(), 0);
    const auto it = user_site_base_.find(user.id);
    if (it != user_site_base_.end()) {
      site_base = &it->second;
    } else {
      // No population plan: fall back to systematic sampling over this
      // user's own accesses to each site.
      site_mine.assign(world::server_sites().size(), 0);
      for (int i = 0; i < plays; ++i) {
        const auto idx = static_cast<std::size_t>(i) % catalog_.size();
        ++site_mine[media::Catalog::site_of(catalog_.clip(idx).id())];
      }
    }
  }

  plan.tasks.reserve(plan.tasks.size() + static_cast<std::size_t>(plays));
  for (int i = 0; i < plays; ++i) {
    const auto playlist_index =
        static_cast<std::size_t>(i) % catalog_.size();
    util::Rng play_rng = user_rng.fork(static_cast<std::uint64_t>(i));

    PlayTask task;
    task.user_index = user_index;
    task.play_index = static_cast<std::uint32_t>(i);
    task.record_slot = plan.tasks.size();
    task.playlist_index = playlist_index;
    task.record = base_record(user, catalog_, playlist_index);

    if (user.rtsp_blocked) {
      // Firewalled participant: RTSP never gets through; the paper removed
      // these users from all analysis (§IV).
      task.record.available = false;
      plan.tasks.push_back(std::move(task));
      continue;
    }

    const auto& site = world::server_sites().at(task.record.site);
    faults::PlayFaults pf;
    if (mechanistic) {
      // Access time over the measurement campaign. With a population plan,
      // the k-th access to a site (across all users, population order)
      // lands at grid point (k + 1/2)/n of the campaign: the site's
      // accesses sample its timeline uniformly, so the empirical
      // unavailable fraction tracks the schedule's outage fraction to well
      // under a point. Without a plan, each user spreads their own m
      // accesses to the site systematically, offset by a golden-ratio
      // slot — noisier, but still far tighter than independent draws.
      double pos;
      if (site_base != nullptr) {
        const int rank = (*site_base)[task.record.site] +
                         site_seen[task.record.site];
        pos = (rank + 0.5) / site_access_total_[task.record.site];
      } else {
        constexpr double kGolden = 0.6180339887498949;
        const double slot = std::fmod(
            static_cast<double>(user.id + 1) * kGolden, 1.0);
        pos = (site_seen[task.record.site] + slot) /
              site_mine[task.record.site];
      }
      ++site_seen[task.record.site];
      const SimTime access_time = seconds_to_sim(
          to_seconds(config_.faults.campaign_duration) * pos);
      pf.server_unreachable =
          outages_.unavailable_at(task.record.site, access_time);
    } else if (play_rng.bernoulli(site.unavailability)) {
      task.record.available = false;  // Fig 10: clip unreachable this time
      plan.tasks.push_back(std::move(task));
      continue;
    }
    if (config_.faults.enabled) {
      const faults::PlayFaults drawn = faults::draw_play_faults(
          config_.faults, world::PlayPath::kLinkCount, play_rng);
      pf.overload_stall_until = drawn.overload_stall_until;
      pf.link_faults = drawn.link_faults;
    }

    task.force_tcp = play_rng.bernoulli(config_.direct_tcp_probability);
    task.play_seed = play_rng.next_u64();
    task.needs_sim = true;
    task.has_faults = config_.faults.enabled;
    task.faults = std::move(pf);
    task.rate = std::binary_search(to_rate.begin(), to_rate.end(),
                                   static_cast<std::size_t>(i));
    task.rater = rater;
    task.post_rng = play_rng;
    task.est_cost = estimate_cost(config_, user, task.faults.server_unreachable);
    plan.tasks.push_back(std::move(task));
  }
}

StudyPlan RealTracer::build_plan(const std::vector<world::UserProfile>& users,
                                 std::uint64_t study_seed) const {
  StudyPlan plan;
  for (std::size_t u = 0; u < users.size(); ++u) {
    plan_user(users[u], study_seed, static_cast<std::uint32_t>(u), plan);
  }
  finalize_order(plan);
  return plan;
}

TraceRecord RealTracer::run_play(const PlayTask& task,
                                 const world::UserProfile& user,
                                 PlayContext& ctx) const {
  if (!task.needs_sim) return task.record;
  const bool observe = config_.obs.selects(
      static_cast<std::uint32_t>(user.id), task.play_index);
  TraceRecord rec =
      run_session(ctx, user, task.playlist_index, task.play_seed,
                  task.force_tcp, task.has_faults ? &task.faults : nullptr,
                  observe);
  if (task.rate && rec.analyzable()) {
    util::Rng rng = task.post_rng;
    rec.rating = rate_clip(task.rater, rec.stats, rng);
  }
  return rec;
}

std::vector<TraceRecord> RealTracer::run_user(
    const world::UserProfile& user, std::uint64_t study_seed) const {
  StudyPlan plan;
  plan_user(user, study_seed, 0, plan);
  PlayContext ctx;
  std::vector<TraceRecord> records;
  records.reserve(plan.tasks.size());
  for (const PlayTask& task : plan.tasks) {
    records.push_back(run_play(task, user, ctx));
  }
  return records;
}

}  // namespace rv::tracer
