// One RealTracer trace record: everything the study logs per clip access.
#pragma once

#include <cstdint>

#include "client/clip_stats.h"
#include "obs/trace.h"
#include "telemetry/series.h"
#include "util/symbol.h"
#include "world/types.h"

namespace rv::tracer {

struct TraceRecord {
  // Who played it. The five naming fields draw from a vocabulary of a few
  // dozen values, so they are pooled util::Symbols: a campaign-scale record
  // stream carries 4-byte ids instead of five heap strings per record.
  int user_id = 0;
  util::Symbol country;
  util::Symbol us_state;
  world::UserRegionGroup user_group = world::UserRegionGroup::kUsCanada;
  world::ConnectionClass connection = world::ConnectionClass::kDslCable;
  util::Symbol pc_class;
  bool rtsp_blocked_user = false;  // excluded from analysis, as in §IV

  // What was played, from where.
  std::uint32_t clip_id = 0;
  std::size_t site = 0;
  util::Symbol server_name;
  util::Symbol server_country;
  world::ServerRegionGroup server_group = world::ServerRegionGroup::kUsCanada;

  // Outcome.
  bool available = true;           // clip reachable (Fig 10)
  client::ClipStats stats;
  double rating = -1.0;            // 0..10; -1 = not rated

  // Per-play trace + counters when tracing is enabled. In-memory only:
  // deliberately never serialized into the study cache, so cache bytes (and
  // the md5 the bench gate pins) are identical with tracing on or off.
  obs::PlayObs obs;

  // Sampled time-series telemetry when --telemetry is enabled. Same cache
  // contract as obs: in-memory only.
  telemetry::PlaySeries series;

  bool rated() const { return rating >= 0.0; }
  // A record that contributes to the performance analysis (played,
  // reachable, not from an excluded firewalled user).
  bool analyzable() const {
    return available && !rtsp_blocked_user && stats.played_any_frame;
  }
};

}  // namespace rv::tracer
