// Synthetic perceptual-quality rating model.
//
// §V.C of the paper explains the observed near-uniform rating CDF by (a)
// per-user normalisation — "users came up with a set of quality rating
// criteria of their own"; (b) confusion over whether to rate video alone or
// audio+video (audio survives low bandwidth, so audio-inclusive raters score
// low-bandwidth clips high — the "clustering in the upper left corner" of
// Fig 28); and (c) content interest bleeding into scores. We model exactly
// those three mechanisms on top of an intrinsic quality derived from frame
// rate, jitter and rebuffering (per the authors' prior work [CT99]).
#pragma once

#include "client/clip_stats.h"
#include "util/rng.h"

namespace rv::tracer {

// A user's personal rating function parameters.
struct RaterProfile {
  double center = 5.0;        // where this user's "average" sits
  double gain = 0.6;          // how strongly quality moves their score
  bool rates_video_only = true;
  double content_noise = 1.5; // +/- interest-driven noise amplitude
};

// Draws a user's personal rating style.
RaterProfile make_rater(util::Rng& rng);

// Intrinsic 0..10 quality of a playout from its system measurements.
double intrinsic_quality(const client::ClipStats& stats);

// The 0..10 rating this user gives this playout.
double rate_clip(const RaterProfile& rater, const client::ClipStats& stats,
                 util::Rng& rng);

}  // namespace rv::tracer
