#include "tracer/rating.h"

#include <algorithm>
#include <cmath>

namespace rv::tracer {
namespace {

// Piecewise-linear frame-rate score hitting the paper's perceptual
// thresholds (§V): 3 fps = barely acceptable, 15 fps = smooth, 25 = full
// motion.
double frame_rate_score(double fps) {
  if (fps <= 0.0) return 0.0;
  if (fps < 3.0) return 0.12 * fps;                      // up to 0.36
  if (fps < 15.0) return 0.36 + (fps - 3.0) * (0.39 / 12.0);  // to 0.75
  if (fps < 25.0) return 0.75 + (fps - 15.0) * (0.25 / 10.0);
  return 1.0;
}

// Jitter penalty: imperceptible below 50 ms, strong past 300 ms (§V).
double jitter_penalty(double jitter_ms) {
  if (jitter_ms <= 50.0) return 0.0;
  if (jitter_ms >= 1000.0) return 0.75;
  if (jitter_ms <= 300.0) return (jitter_ms - 50.0) * (0.45 / 250.0);
  return 0.45 + (jitter_ms - 300.0) * (0.30 / 700.0);
}

}  // namespace

RaterProfile make_rater(util::Rng& rng) {
  RaterProfile r;
  r.center = std::clamp(rng.normal(5.0, 1.2), 2.0, 8.0);
  r.gain = rng.uniform(0.30, 0.85);
  // §V.C: users were split on whether audio counts.
  r.rates_video_only = rng.bernoulli(0.55);
  r.content_noise = rng.uniform(1.3, 2.5);
  return r;
}

double intrinsic_quality(const client::ClipStats& stats) {
  const double fr = frame_rate_score(stats.measured_fps);
  const double jp = jitter_penalty(stats.jitter_ms);
  double q = 10.0 * (0.55 * fr + 0.45 * (1.0 - jp));
  // Rebuffering halts are memorable events.
  q -= 0.6 * static_cast<double>(stats.rebuffer_events);
  if (stats.play_seconds > 1.0) {
    q -= 4.0 * std::min(0.5, stats.rebuffer_seconds / stats.play_seconds);
  }
  return std::clamp(q, 0.0, 10.0);
}

double rate_clip(const RaterProfile& rater, const client::ClipStats& stats,
                 util::Rng& rng) {
  double q = intrinsic_quality(stats);
  // Audio-inclusive raters forgive low-bandwidth clips: the audio track
  // still sounds fine at modem rates (Fig 28's upper-left cluster).
  if (!rater.rates_video_only && stats.measured_bandwidth < kbps(50)) {
    q += rng.uniform(1.0, 3.0);
  }
  // Centering on 6 (not the scale midpoint) keeps the population mean near
  // 5: most playouts are decent, and raters normalise around their own
  // typical experience (§V.C).
  const double centered =
      rater.center + rater.gain * (q - 6.0) +
      rng.uniform(-rater.content_noise, rater.content_noise);
  return std::clamp(centered, 0.0, 10.0);
}

}  // namespace rv::tracer
