// Plan/execute split of the study campaign.
//
// RealTracer::run_user used to be the unit of parallelism, but the paper's
// clips-per-user distribution (Fig 5) is heavy-tailed: 63 uneven user tasks
// end in a single straggler and scaling stops far below hardware
// concurrency. The split moves the serial coupling *between* a user's plays
// — the user rng stream (per-play forks, the rate-this-clip shuffle, the
// rater profile), the mechanistic-unavailability site ranks, per-play fault
// draws and force-TCP decisions — into a cheap serial planning pass that
// emits one self-contained PlayTask per play. The ~2855 tasks then execute
// in any order on any worker, each writing its record into a preassigned
// slot, so the output is byte-identical for every thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "faults/injector.h"
#include "tracer/rating.h"
#include "tracer/record.h"
#include "util/rng.h"

namespace rv::tracer {

// Everything one play needs to execute independently of every other play.
struct PlayTask {
  std::uint32_t user_index = 0;  // index into the planned population
  std::uint32_t play_index = 0;  // position in the user's playlist
  std::size_t record_slot = 0;   // flat output slot (user-major, play-minor)
  std::size_t playlist_index = 0;
  std::uint64_t play_seed = 0;

  // false: `record` below is already final (firewalled user, or the legacy
  // Bernoulli model drew this access unavailable) — no session to simulate.
  bool needs_sim = false;
  bool force_tcp = false;
  bool has_faults = false;  // feed `faults` into the session
  faults::PlayFaults faults;

  // Rating inputs, applied only when the finished record is analyzable: the
  // user's rater profile and the play rng stream exactly as the serial code
  // left it after drawing play_seed (run_single never touches the play rng,
  // so resuming from this state reproduces the serial rating draws).
  bool rate = false;
  RaterProfile rater;
  util::Rng post_rng{0};

  // Identity fields prefilled by the planner; the complete record for
  // !needs_sim tasks.
  TraceRecord record;

  // Relative execution-cost estimate (arbitrary units) driving the
  // cost-descending schedule.
  double est_cost = 0.0;
};

struct StudyPlan {
  // One task per (user, play), in record order: tasks[k].record_slot == k.
  std::vector<PlayTask> tasks;
  // Task indices in execution order: est_cost descending, ties broken by
  // ascending task index — a pure function of the plan, so the schedule is
  // deterministic (though execution order never affects results).
  std::vector<std::uint32_t> order;
  std::size_t sim_tasks = 0;  // tasks with needs_sim set
  double total_cost = 0.0;    // sum of est_cost over all tasks
};

// Fills `plan.order` (cost-descending) and the summary fields.
void finalize_order(StudyPlan& plan);

}  // namespace rv::tracer
