// RealTracer analog: drives one user through their playlist, one simulated
// streaming session per clip, producing TraceRecords (§III.A of the paper).
#pragma once

#include <cstdint>
#include <vector>

#include "media/catalog.h"
#include "server/real_server.h"
#include "tracer/record.h"
#include "world/path_builder.h"
#include "world/region_graph.h"
#include "world/servers.h"
#include "world/users.h"

namespace rv::tracer {

struct TracerConfig {
  SimTime watch_duration = sec(60);   // RealTracer's per-clip play window
  SimTime play_horizon = sec(220);    // hard cap per simulated session
  // Probability a play uses TCP straight away (user/ISP auto-config state),
  // on top of firewalled-UDP fallbacks. Calibrates the Fig 16 protocol mix.
  double direct_tcp_probability = 0.22;
  server::CongestionControlKind udp_control =
      server::CongestionControlKind::kAimd;
  world::PathBuilderConfig path;
  // Overrides for ablation benches.
  bool surestream_enabled = true;
  bool svt_enabled = true;
  bool adaptive_packet_size = true;
  // Live content (paper §VIII): the sender is pinned to the live edge.
  bool live_content = false;
  // RFC 2018 SACK on both TCP endpoints (ablation; 2001 stacks were mixed).
  bool tcp_sack = false;
  double preroll_media_seconds = 8.0;
};

class RealTracer {
 public:
  RealTracer(const media::Catalog& catalog, const world::RegionGraph& graph,
             const TracerConfig& config)
      : catalog_(catalog), graph_(graph), config_(config) {}

  // Runs the user's whole playlist; deterministic in (user, study_seed).
  std::vector<TraceRecord> run_user(const world::UserProfile& user,
                                    std::uint64_t study_seed) const;

  // Runs a single play and returns its record (used by Fig 1 and the
  // ablation benches). `udp_blocked`/`force_tcp` override the user profile.
  TraceRecord run_single(const world::UserProfile& user,
                         std::size_t playlist_index, std::uint64_t play_seed,
                         bool force_tcp = false) const;

 private:
  const media::Catalog& catalog_;
  const world::RegionGraph& graph_;
  TracerConfig config_;
};

}  // namespace rv::tracer
