// RealTracer analog: drives one user through their playlist, one simulated
// streaming session per clip, producing TraceRecords (§III.A of the paper).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "faults/config.h"
#include "util/arena.h"
#include "faults/injector.h"
#include "faults/schedule.h"
#include "media/catalog.h"
#include "server/real_server.h"
#include "telemetry/series.h"
#include "tracer/play_plan.h"
#include "transport/congestion_control.h"
#include "tracer/record.h"
#include "world/path_builder.h"
#include "world/region_graph.h"
#include "world/servers.h"
#include "world/users.h"

namespace rv::tracer {

struct TracerConfig {
  SimTime watch_duration = sec(60);   // RealTracer's per-clip play window
  SimTime play_horizon = sec(220);    // hard cap per simulated session
  // Probability a play uses TCP straight away (user/ISP auto-config state),
  // on top of firewalled-UDP fallbacks. Calibrates the Fig 16 protocol mix.
  double direct_tcp_probability = 0.22;
  server::CongestionControlKind udp_control =
      server::CongestionControlKind::kAimd;
  world::PathBuilderConfig path;
  // Overrides for ablation benches.
  bool surestream_enabled = true;
  bool svt_enabled = true;
  bool adaptive_packet_size = true;
  // Live content (paper §VIII): the sender is pinned to the live edge.
  bool live_content = false;
  // RFC 2018 SACK on both TCP endpoints (ablation; 2001 stacks were mixed).
  bool tcp_sack = false;
  // TCP congestion-control backend on both endpoints (--cc reno|cubic|bbr).
  // kReno is the paper-era default and keeps the pinned cache bytes; the
  // others re-run the TCP comparisons under modern congestion control.
  transport::CcAlgorithm tcp_cc = transport::CcAlgorithm::kReno;
  double preroll_media_seconds = 8.0;
  // Deterministic fault injection (outage schedules, overload stalls, link
  // faults). Off by default: the legacy Bernoulli availability model runs.
  faults::FaultConfig faults;
  // Per-play tracing + counters (docs/OBSERVABILITY.md). Excluded from the
  // study-cache fingerprint: purely observational, never changes results.
  obs::ObsConfig obs;
  // Per-play time-series sampling (src/telemetry). Same fingerprint
  // exclusion and determinism contract as obs.
  telemetry::TelemetryConfig telemetry;
};

// Reusable per-worker execution state. The Simulator and the path scratch
// outlive individual plays: event-slot chunks, the heap buffer, the packet
// pool's slot storage, the cross-traffic vector capacity and the metadata
// arena's slabs are all retained across sessions, so steady-state plays
// allocate ~nothing. One context per worker thread; contexts must never be
// shared concurrently.
struct PlayContext {
  sim::Simulator sim;
  world::PlayPath path;  // path.network, when reused, schedules into `sim`
  obs::PlaySink sink;    // reused ring + counters for observed plays
  telemetry::Series series;  // reused sample columns for telemetry plays
  util::Arena arena;  // per-play packet-metadata slabs, rewound each play

  PlayContext() = default;
  PlayContext(const PlayContext&) = delete;
  PlayContext& operator=(const PlayContext&) = delete;
};

class RealTracer {
 public:
  RealTracer(const media::Catalog& catalog, const world::RegionGraph& graph,
             const TracerConfig& config);

  // Runs the user's whole playlist; deterministic in (user, study_seed).
  // Implemented as plan_user + run_play over one context, so it is the
  // serial reference for the parallel executor by construction.
  std::vector<TraceRecord> run_user(const world::UserProfile& user,
                                    std::uint64_t study_seed) const;

  // Planning pass: serially precomputes everything coupled across this
  // user's plays (per-play rng forks, the rate-this-clip set, the rater
  // profile, mechanistic-unavailability site ranks, fault draws, force-TCP
  // decisions) and appends one self-contained PlayTask per play to
  // `plan.tasks` (record_slot = position in plan.tasks). Pure: consumes no
  // state shared with other users beyond the access-time plan.
  void plan_user(const world::UserProfile& user, std::uint64_t study_seed,
                 std::uint32_t user_index, StudyPlan& plan) const;

  // Plans the whole population (tasks in user-major, play-minor record
  // order) and finalizes the cost-descending execution order.
  StudyPlan build_plan(const std::vector<world::UserProfile>& users,
                       std::uint64_t study_seed) const;

  // Execution pass: runs one planned play in `ctx` and returns its record.
  // `user` must be the profile plan_user saw for task.user_index. Safe to
  // call from multiple threads with distinct contexts; tasks may execute in
  // any order — the result depends only on the task.
  TraceRecord run_play(const PlayTask& task, const world::UserProfile& user,
                       PlayContext& ctx) const;

  // Mechanistic unavailability samples each play's access time on the
  // campaign timeline. Given the (already play-scaled) population, this
  // precomputes each site's total access count and each user's starting
  // rank into it, so the site's accesses land on a uniform grid over the
  // campaign — the per-site empirical unavailable fraction then matches
  // the schedule's outage fraction to well under a point. Call before
  // run_user (the study driver does); without a plan, run_user falls back
  // to per-user systematic sampling, which is noisier. No-op unless
  // mechanistic unavailability is enabled.
  void plan_access_times(const std::vector<world::UserProfile>& users);

  // Streaming equivalent of plan_access_times for sharded campaigns: call
  // access_plan_begin(), feed every user of the (already play-scaled)
  // population in id order, then plan/run as usual. Only users added with
  // `keep_base` set get a per-user starting rank — a shard marks just its
  // own range, so its memory stays bounded by the shard while the site
  // totals still cover the whole campaign. Both calls are no-ops unless
  // mechanistic unavailability is enabled.
  void access_plan_begin();
  void access_plan_add(const world::UserProfile& user, bool keep_base);

  // Runs a single play and returns its record (used by Fig 1 and the
  // ablation benches). `udp_blocked`/`force_tcp` override the user profile;
  // `play_faults` (optional) injects this play's faults.
  TraceRecord run_single(const world::UserProfile& user,
                         std::size_t playlist_index, std::uint64_t play_seed,
                         bool force_tcp = false,
                         const faults::PlayFaults* play_faults = nullptr) const;

  // The per-site outage schedules (empty unless mechanistic unavailability
  // is enabled). Exposed for calibration tests and benches.
  const faults::SiteOutageTable& outages() const { return outages_; }

 private:
  // The streaming-session core shared by run_single and run_play: resets
  // `ctx`, rebuilds the path in place, and simulates one play.
  // `observe` installs ctx.sink for the play and snapshots it into the
  // record's obs member.
  TraceRecord run_session(PlayContext& ctx, const world::UserProfile& user,
                          std::size_t playlist_index, std::uint64_t play_seed,
                          bool force_tcp,
                          const faults::PlayFaults* play_faults,
                          bool observe) const;

  const media::Catalog& catalog_;
  const world::RegionGraph& graph_;
  TracerConfig config_;
  faults::SiteOutageTable outages_;
  // Access-time plan: per-site campaign access totals, and each user's
  // per-site starting rank (population order). Empty until
  // plan_access_times runs.
  std::vector<int> site_access_total_;
  std::unordered_map<int, std::vector<int>> user_site_base_;
};

}  // namespace rv::tracer
