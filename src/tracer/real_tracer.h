// RealTracer analog: drives one user through their playlist, one simulated
// streaming session per clip, producing TraceRecords (§III.A of the paper).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "faults/config.h"
#include "faults/injector.h"
#include "faults/schedule.h"
#include "media/catalog.h"
#include "server/real_server.h"
#include "tracer/record.h"
#include "world/path_builder.h"
#include "world/region_graph.h"
#include "world/servers.h"
#include "world/users.h"

namespace rv::tracer {

struct TracerConfig {
  SimTime watch_duration = sec(60);   // RealTracer's per-clip play window
  SimTime play_horizon = sec(220);    // hard cap per simulated session
  // Probability a play uses TCP straight away (user/ISP auto-config state),
  // on top of firewalled-UDP fallbacks. Calibrates the Fig 16 protocol mix.
  double direct_tcp_probability = 0.22;
  server::CongestionControlKind udp_control =
      server::CongestionControlKind::kAimd;
  world::PathBuilderConfig path;
  // Overrides for ablation benches.
  bool surestream_enabled = true;
  bool svt_enabled = true;
  bool adaptive_packet_size = true;
  // Live content (paper §VIII): the sender is pinned to the live edge.
  bool live_content = false;
  // RFC 2018 SACK on both TCP endpoints (ablation; 2001 stacks were mixed).
  bool tcp_sack = false;
  double preroll_media_seconds = 8.0;
  // Deterministic fault injection (outage schedules, overload stalls, link
  // faults). Off by default: the legacy Bernoulli availability model runs.
  faults::FaultConfig faults;
};

class RealTracer {
 public:
  RealTracer(const media::Catalog& catalog, const world::RegionGraph& graph,
             const TracerConfig& config);

  // Runs the user's whole playlist; deterministic in (user, study_seed).
  std::vector<TraceRecord> run_user(const world::UserProfile& user,
                                    std::uint64_t study_seed) const;

  // Mechanistic unavailability samples each play's access time on the
  // campaign timeline. Given the (already play-scaled) population, this
  // precomputes each site's total access count and each user's starting
  // rank into it, so the site's accesses land on a uniform grid over the
  // campaign — the per-site empirical unavailable fraction then matches
  // the schedule's outage fraction to well under a point. Call before
  // run_user (the study driver does); without a plan, run_user falls back
  // to per-user systematic sampling, which is noisier. No-op unless
  // mechanistic unavailability is enabled.
  void plan_access_times(const std::vector<world::UserProfile>& users);

  // Runs a single play and returns its record (used by Fig 1 and the
  // ablation benches). `udp_blocked`/`force_tcp` override the user profile;
  // `play_faults` (optional) injects this play's faults.
  TraceRecord run_single(const world::UserProfile& user,
                         std::size_t playlist_index, std::uint64_t play_seed,
                         bool force_tcp = false,
                         const faults::PlayFaults* play_faults = nullptr) const;

  // The per-site outage schedules (empty unless mechanistic unavailability
  // is enabled). Exposed for calibration tests and benches.
  const faults::SiteOutageTable& outages() const { return outages_; }

 private:
  const media::Catalog& catalog_;
  const world::RegionGraph& graph_;
  TracerConfig config_;
  faults::SiteOutageTable outages_;
  // Access-time plan: per-site campaign access totals, and each user's
  // per-site starting rank (population order). Empty until
  // plan_access_times runs.
  std::vector<int> site_access_total_;
  std::unordered_map<int, std::vector<int>> user_site_base_;
};

}  // namespace rv::tracer
