#include "tracer/play_plan.h"

#include <algorithm>
#include <numeric>

namespace rv::tracer {

void finalize_order(StudyPlan& plan) {
  plan.order.resize(plan.tasks.size());
  std::iota(plan.order.begin(), plan.order.end(), 0u);
  const auto& tasks = plan.tasks;
  std::sort(plan.order.begin(), plan.order.end(),
            [&tasks](std::uint32_t a, std::uint32_t b) {
              if (tasks[a].est_cost != tasks[b].est_cost) {
                return tasks[a].est_cost > tasks[b].est_cost;
              }
              return a < b;
            });
  plan.sim_tasks = 0;
  plan.total_cost = 0.0;
  for (const auto& t : tasks) {
    plan.sim_tasks += t.needs_sim;
    plan.total_cost += t.est_cost;
  }
}

}  // namespace rv::tracer
