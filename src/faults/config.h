// Knobs for the deterministic fault-injection subsystem.
//
// Everything here is seed-driven: a FaultConfig plus a study seed fully
// determines every outage window, overload stall and link fault of a
// campaign, independent of thread count. The tracer consumes this via
// TracerConfig::faults; the study derives `seed` from StudyConfig::seed when
// left at 0.
#pragma once

#include <cstdint>

#include "util/units.h"

namespace rv::faults {

struct FaultConfig {
  // Master switch. When off, nothing below is consulted and the tracer's
  // legacy per-access Bernoulli availability model is used unchanged.
  bool enabled = false;

  // Seed for campaign-level schedules (per-site outages). 0 means "derive
  // from the study seed" — run_study fills it in.
  std::uint64_t seed = 0;

  // --- Mechanistic unavailability (paper Fig 10) ---------------------------
  // Instead of a per-access coin flip, each server site gets a schedule of
  // outage windows over the measurement campaign; an access that lands in a
  // window finds the server unreachable and the player's retry ladder gives
  // up. The per-site outage time fraction is calibrated to the Fig 10 rate.
  bool mechanistic_unavailability = true;
  SimTime campaign_duration = sec(14 * 24 * 3600);  // the June 2001 fortnight
  SimTime mean_outage_duration = sec(4 * 3600);
  // Scales every site's outage target (ablation knob; 1.0 = Fig 10 rates).
  double outage_scale = 1.0;

  // --- Per-play stochastic faults -----------------------------------------
  // Server overload: the RTSP daemon accepts connections but stalls its
  // responses for the first part of the play (admission backlog).
  double overload_probability = 0.0;
  double overload_stall_lo_sec = 4.0;
  double overload_stall_hi_sec = 18.0;
  // Link flap: one path segment goes fully down for a while mid-play.
  double link_down_probability = 0.0;
  double mean_link_down_sec = 5.0;
  // Corruption burst: one segment drops a fraction of packets for a while.
  double corruption_probability = 0.0;
  double corruption_loss_rate = 0.08;
};

}  // namespace rv::faults
