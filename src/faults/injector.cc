#include "faults/injector.h"

#include <algorithm>
#include <map>
#include <utility>

#include "obs/trace.h"
#include "util/check.h"

namespace rv::faults {

PlayFaults draw_play_faults(const FaultConfig& cfg, std::size_t link_count,
                            util::Rng& rng) {
  PlayFaults pf;
  if (!cfg.enabled || link_count == 0) return pf;
  if (cfg.overload_probability > 0 &&
      rng.bernoulli(cfg.overload_probability)) {
    pf.overload_stall_until = seconds_to_sim(
        rng.uniform(cfg.overload_stall_lo_sec, cfg.overload_stall_hi_sec));
  }
  const auto max_link = static_cast<std::int64_t>(link_count) - 1;
  if (cfg.link_down_probability > 0 &&
      rng.bernoulli(cfg.link_down_probability)) {
    LinkFaultSpec s;
    s.link_index = static_cast<std::size_t>(rng.uniform_int(0, max_link));
    s.kind = LinkFaultKind::kDown;
    s.start = seconds_to_sim(rng.uniform(4.0, 50.0));
    s.duration = seconds_to_sim(
        std::clamp(rng.exponential(cfg.mean_link_down_sec), 0.5, 25.0));
    pf.link_faults.push_back(s);
  }
  if (cfg.corruption_probability > 0 &&
      rng.bernoulli(cfg.corruption_probability)) {
    LinkFaultSpec s;
    s.link_index = static_cast<std::size_t>(rng.uniform_int(0, max_link));
    s.kind = LinkFaultKind::kCorrupt;
    s.loss_rate = cfg.corruption_loss_rate;
    s.start = seconds_to_sim(rng.uniform(0.0, 30.0));
    s.duration = seconds_to_sim(rng.uniform(5.0, 40.0));
    pf.link_faults.push_back(s);
  }
  return pf;
}

LinkFaultInjector::LinkFaultInjector(net::Network& network,
                                     std::vector<LinkFaultSpec> specs,
                                     util::Rng rng)
    : rng_(std::make_shared<util::Rng>(std::move(rng))),
      dropped_(std::make_shared<std::uint64_t>(0)) {
  std::map<std::size_t, std::vector<LinkFaultSpec>> by_link;
  for (auto& spec : specs) {
    RV_CHECK_LT(spec.link_index, network.link_count());
    RV_CHECK_GE(spec.start, 0);
    RV_CHECK_GT(spec.duration, 0);
    // Activation record, stamped with the window's start time so the trace
    // shows the fault where it bites, not at play setup.
    if (spec.kind == LinkFaultKind::kDown) {
      obs::emit(spec.start, obs::Code::kFaultBlackhole, spec.link_index,
                static_cast<std::uint64_t>(spec.duration));
    } else {
      obs::emit(spec.start, obs::Code::kFaultCorruption, spec.link_index,
                static_cast<std::uint64_t>(spec.loss_rate * 1e6));
    }
    by_link[spec.link_index].push_back(spec);
  }
  for (auto& [index, link_specs] : by_link) {
    net::Link& link = network.link(index);
    auto filter = [rng = rng_, dropped = dropped_,
                   specs = std::move(link_specs)](const net::Packet&,
                                                  SimTime now) {
      for (const auto& s : specs) {
        if (now < s.start || now >= s.start + s.duration) continue;
        if (s.kind == LinkFaultKind::kDown ||
            rng->bernoulli(s.loss_rate)) {
          ++*dropped;
          return true;
        }
      }
      return false;
    };
    link.direction_from(link.a()).set_fault_filter(filter);
    link.direction_from(link.b()).set_fault_filter(filter);
  }
}

}  // namespace rv::faults
