#include "faults/schedule.h"

#include <algorithm>

#include "util/check.h"

namespace rv::faults {

OutageSchedule::OutageSchedule(std::vector<OutageWindow> windows,
                               SimTime horizon)
    : windows_(std::move(windows)), horizon_(horizon) {
  RV_CHECK_GT(horizon_, 0);
  SimTime prev_end = 0;
  for (const auto& w : windows_) {
    RV_CHECK_GE(w.start, prev_end);
    RV_CHECK_GT(w.end, w.start);
    RV_CHECK_LE(w.end, horizon_);
    prev_end = w.end;
  }
}

bool OutageSchedule::active_at(SimTime t) const {
  // First window starting after t; the one before it is the only candidate.
  auto it = std::upper_bound(
      windows_.begin(), windows_.end(), t,
      [](SimTime value, const OutageWindow& w) { return value < w.start; });
  if (it == windows_.begin()) return false;
  --it;
  return t < it->end;
}

double OutageSchedule::outage_fraction() const {
  if (horizon_ <= 0) return 0.0;
  SimTime total = 0;
  for (const auto& w : windows_) total += w.duration();
  return static_cast<double>(total) / static_cast<double>(horizon_);
}

OutageSchedule make_outage_schedule(util::Rng& rng, SimTime horizon,
                                    double target_fraction,
                                    SimTime mean_outage) {
  RV_CHECK_GT(horizon, 0);
  RV_CHECK_GT(mean_outage, 0);
  const double fraction = std::clamp(target_fraction, 0.0, 0.95);
  const SimTime down_budget = seconds_to_sim(fraction * to_seconds(horizon));
  if (down_budget <= 0) return OutageSchedule({}, horizon);

  // Draw window durations until the budget is spent; trim the last so the
  // total is exact. A floor keeps degenerate slivers out of the schedule.
  const SimTime min_window = std::max<SimTime>(sec(1), down_budget / 1000);
  std::vector<SimTime> durations;
  SimTime total = 0;
  while (total < down_budget) {
    SimTime d = seconds_to_sim(rng.exponential(to_seconds(mean_outage)));
    d = std::max(d, min_window);
    if (total + d >= down_budget) {
      d = down_budget - total;
      if (d > 0) durations.push_back(d);
      total = down_budget;
      break;
    }
    durations.push_back(d);
    total += d;
  }
  if (durations.empty()) return OutageSchedule({}, horizon);

  // Distribute the up-time as k+1 gaps with exponential proportions
  // (memoryless placement), then lay windows down in order.
  std::vector<double> gap_weights(durations.size() + 1);
  double weight_sum = 0.0;
  for (auto& g : gap_weights) {
    g = rng.exponential(1.0) + 1e-9;
    weight_sum += g;
  }
  const SimTime up_budget = horizon - down_budget;
  std::vector<OutageWindow> windows;
  windows.reserve(durations.size());
  SimTime cursor = 0;
  for (std::size_t i = 0; i < durations.size(); ++i) {
    cursor += seconds_to_sim(to_seconds(up_budget) * gap_weights[i] /
                             weight_sum);
    OutageWindow w;
    w.start = std::min(cursor, horizon - durations[i]);
    w.end = w.start + durations[i];
    cursor = w.end;
    windows.push_back(w);
  }
  return OutageSchedule(std::move(windows), horizon);
}

SiteOutageTable::SiteOutageTable(const FaultConfig& cfg,
                                 std::span<const double> site_targets) {
  util::Rng table_rng(cfg.seed ^ util::stable_hash("site-outage-table"));
  sites_.reserve(site_targets.size());
  for (std::size_t i = 0; i < site_targets.size(); ++i) {
    util::Rng site_rng = table_rng.fork(static_cast<std::uint64_t>(i));
    sites_.push_back(make_outage_schedule(
        site_rng, cfg.campaign_duration,
        site_targets[i] * cfg.outage_scale, cfg.mean_outage_duration));
  }
}

}  // namespace rv::faults
