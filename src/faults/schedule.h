// Outage schedules: when a server site is down over the campaign.
//
// A schedule is a sorted list of non-overlapping [start, end) windows inside
// [0, horizon). Construction is exact-fraction: the summed window time equals
// the calibration target to within integer rounding, so the empirical
// unavailability of a study that samples access times evenly across the
// campaign converges on the Fig 10 rate without Bernoulli noise.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "faults/config.h"
#include "util/rng.h"
#include "util/units.h"

namespace rv::faults {

struct OutageWindow {
  SimTime start = 0;
  SimTime end = 0;  // exclusive

  SimTime duration() const { return end - start; }
};

class OutageSchedule {
 public:
  OutageSchedule() = default;
  // Windows must be sorted by start and pairwise disjoint (checked).
  OutageSchedule(std::vector<OutageWindow> windows, SimTime horizon);

  bool active_at(SimTime t) const;
  const std::vector<OutageWindow>& windows() const { return windows_; }
  SimTime horizon() const { return horizon_; }
  // Fraction of the horizon covered by outage windows.
  double outage_fraction() const;

 private:
  std::vector<OutageWindow> windows_;
  SimTime horizon_ = 0;
};

// Builds a schedule whose windows cover exactly `target_fraction` of
// [0, horizon). Window durations are drawn exponentially around
// `mean_outage` (the last one trimmed to hit the target exactly); the gaps
// between windows are drawn as normalised exponentials so placement is
// memoryless. Deterministic in `rng`. target_fraction is clamped to
// [0, 0.95].
OutageSchedule make_outage_schedule(util::Rng& rng, SimTime horizon,
                                    double target_fraction,
                                    SimTime mean_outage);

// Per-site outage schedules for a whole campaign, calibrated so site i is
// down for `site_targets[i] * cfg.outage_scale` of the campaign.
class SiteOutageTable {
 public:
  SiteOutageTable() = default;
  SiteOutageTable(const FaultConfig& cfg, std::span<const double> site_targets);

  std::size_t size() const { return sites_.size(); }
  const OutageSchedule& site(std::size_t i) const { return sites_.at(i); }
  bool unavailable_at(std::size_t site, SimTime campaign_time) const {
    return sites_.at(site).active_at(campaign_time);
  }

 private:
  std::vector<OutageSchedule> sites_;
};

}  // namespace rv::faults
