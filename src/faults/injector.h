// Link-level fault injection: blackhole (down) and corruption-burst faults
// installed on a Network's links via LinkDirection::set_fault_filter.
//
// Faults are specified as time windows against the play's simulation clock.
// All stochastic decisions (corruption coin flips) come from the Rng handed
// in, so a play's fault behaviour is bit-reproducible from its seed.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "faults/config.h"
#include "net/network.h"
#include "util/rng.h"

namespace rv::faults {

enum class LinkFaultKind {
  kDown,     // blackhole: every packet on the link is dropped
  kCorrupt,  // corruption burst: packets dropped with `loss_rate`
};

struct LinkFaultSpec {
  std::size_t link_index = 0;  // index into net::Network::link()
  LinkFaultKind kind = LinkFaultKind::kDown;
  SimTime start = 0;
  SimTime duration = 0;
  double loss_rate = 0.0;  // kCorrupt only
};

// The faults drawn for one play: fed to the tracer's run_single.
struct PlayFaults {
  // Server site inside an outage window: its access link is blackholed for
  // the whole play, so the client's retry ladder fails mechanistically.
  bool server_unreachable = false;
  // RTSP daemon overloaded: responses stall until this sim time (0 = none).
  SimTime overload_stall_until = 0;
  std::vector<LinkFaultSpec> link_faults;

  bool any() const {
    return server_unreachable || overload_stall_until > 0 ||
           !link_faults.empty();
  }
};

// Draws the per-play stochastic faults (overload, link flap, corruption
// burst) from `cfg`'s probabilities. Consumes rng draws only when called, so
// disabled fault configs leave a play's random stream untouched.
PlayFaults draw_play_faults(const FaultConfig& cfg, std::size_t link_count,
                            util::Rng& rng);

// Installs fault filters for `specs` on both directions of the referenced
// links. The filters share state owned through shared_ptrs, so they stay
// valid for the network's lifetime even if the injector dies first.
class LinkFaultInjector {
 public:
  LinkFaultInjector(net::Network& network, std::vector<LinkFaultSpec> specs,
                    util::Rng rng);

  // Packets eaten by injected faults so far (all links, both directions).
  std::uint64_t packets_dropped() const { return *dropped_; }

 private:
  std::shared_ptr<util::Rng> rng_;
  std::shared_ptr<std::uint64_t> dropped_;
};

}  // namespace rv::faults
