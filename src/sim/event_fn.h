// EventFn: the kernel's callback type.
//
// A move-only `void()` callable with inline storage for typical event
// captures (a `this` pointer plus a few ids fits comfortably), so scheduling
// an event does not heap-allocate. Closures larger than the inline buffer
// fall back to a single heap allocation, and — unlike `std::function` —
// move-only captures (e.g. a pooled packet handle) are supported, which is
// what lets the packet pipeline move packets into delivery events instead of
// copying them.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace rv::sim {

class EventFn {
 public:
  EventFn() noexcept = default;
  EventFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    construct(std::forward<F>(f));
  }

  // In-place assignment from a callable: destroys the current target and
  // constructs the new one directly in the inline buffer — no temporary
  // EventFn, no move. This is the schedule fast path (Simulator forwards
  // the caller's lambda straight into its slot).
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        !std::is_same_v<D, std::nullptr_t> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn& operator=(F&& f) {
    destroy();
    construct(std::forward<F>(f));
    return *this;
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      destroy();
      move_from(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { destroy(); }

  void operator()() { ops_->invoke(target()); }

  // Fused invoke + clear for the kernel's fire path: one Ops fetch covers
  // both the call and the (usually no-op) destruction, and the EventFn is
  // empty afterwards without a second assignment. Equivalent to
  // `(*this)(); *this = EventFn();` — the target is destroyed only after it
  // returns, so self-referential captures stay valid during the call.
  void invoke_and_clear() {
    const Ops* o = ops_;
    void* t = o->inline_storage ? static_cast<void*>(buf_) : heap_;
    o->invoke(t);
    if (o->destroy != nullptr) o->destroy(t);
    ops_ = nullptr;
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }
  friend bool operator==(const EventFn& f, std::nullptr_t) { return !f; }
  friend bool operator!=(const EventFn& f, std::nullptr_t) {
    return static_cast<bool>(f);
  }

  // Introspection for tests: true when the callable lives in the inline
  // buffer (no allocation happened).
  bool is_inline() const noexcept {
    return ops_ != nullptr && ops_->inline_storage;
  }
  static constexpr std::size_t inline_capacity() { return kInlineCapacity; }

 private:
  struct Ops {
    void (*invoke)(void* obj);
    // Null when destruction is a no-op (trivially destructible inline
    // capture) — the common `this` + ids closure skips the indirect call.
    void (*destroy)(void* obj);
    // Move-constructs *from into to and destroys *from. Null when the
    // capture is trivially copyable (moved with one fixed-size memcpy — the
    // hot schedule path never takes an indirect call) and for heap-held
    // callables (moving the EventFn just steals the pointer).
    void (*relocate)(void* from, void* to);
    bool inline_storage;
  };

  // Sized so an EventFn occupies one cache line (48 inline + ops + tag).
  static constexpr std::size_t kInlineCapacity = 48;

  template <typename D>
  static constexpr bool kFitsInline =
      sizeof(D) <= kInlineCapacity &&
      alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* obj) { (*static_cast<D*>(obj))(); },
      std::is_trivially_destructible_v<D>
          ? nullptr
          : +[](void* obj) { static_cast<D*>(obj)->~D(); },
      std::is_trivially_copyable_v<D>
          ? nullptr
          : +[](void* from, void* to) {
              ::new (to) D(std::move(*static_cast<D*>(from)));
              static_cast<D*>(from)->~D();
            },
      true};

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* obj) { (*static_cast<D*>(obj))(); },
      [](void* obj) { delete static_cast<D*>(obj); },
      nullptr, false};

  template <typename F, typename D = std::decay_t<F>>
  void construct(F&& f) {
    if constexpr (kFitsInline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      heap_ = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  void* target() noexcept {
    return ops_ != nullptr && ops_->inline_storage ? static_cast<void*>(buf_)
                                                   : heap_;
  }

  void move_from(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ == nullptr) return;
    if (!ops_->inline_storage) {
      heap_ = other.heap_;
    } else if (ops_->relocate != nullptr) {
      ops_->relocate(other.buf_, buf_);
    } else {
      // Trivially copyable capture: whole-buffer copy beats a per-type
      // indirect call (the tail bytes are dead but in cache).
      std::memcpy(buf_, other.buf_, kInlineCapacity);
    }
    other.ops_ = nullptr;
  }

  void destroy() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(target());
      ops_ = nullptr;
    }
  }

  union {
    void* heap_ = nullptr;
    alignas(std::max_align_t) unsigned char buf_[kInlineCapacity];
  };
  const Ops* ops_ = nullptr;
};

}  // namespace rv::sim
