// Discrete-event simulation kernel.
//
// A Simulator owns a priority queue of timestamped events. Events at equal
// timestamps fire in scheduling order (a monotonically increasing sequence
// number breaks ties), which makes runs deterministic. Events can be
// cancelled in O(1) through the EventId returned at scheduling time.
//
// The queue is a hybrid: a hierarchical timer wheel (4 levels x 256
// byte-indexed slots, covering 2^32 us ~ 71 minutes past the wheel cursor)
// absorbs the churn-heavy near-horizon timer population in O(1) per insert,
// and the original 4-ary min-heap remains as an always-correct overflow for
// entries beyond the wheel horizon or behind the cursor. An entry's level is
// the highest byte in which its time differs from the cursor; buckets are
// FIFO vectors of the same 16-byte keys the heap uses. Level-0 buckets hold
// entries of a single exact microsecond, so bucket order == seq order and
// the front is the minimum; higher-level buckets cascade one level down,
// lazily, only when the pop reaches their slot. Because cascades happen
// exactly when every earlier slot has drained, per-bucket FIFO order is
// schedule order at every level, and the pop sequence is byte-identical to
// the pure heap's {time, seq} order (differential-tested against the seed
// kernel in tests/sim_kernel_test.cc).
//
// Layout: callbacks live in pooled slots (recycled via a free list) and the
// wheel/heap hold only 16-byte {time, seq|slot} keys, so sifting never moves
// a closure and events fire in place — the callback is invoked inside its
// slot, never copied or moved out. Slots are stored in fixed-size chunks
// with stable addresses, so pool growth never relocates a pending callback
// (even when the callback itself schedules and grows the pool). An EventId
// encodes
// {generation, slot}; cancellation bumps the slot's generation, instantly
// invalidating the queue entry, which is skipped as a tombstone when it
// surfaces. Cancelling an already-fired or stale id compares generations and
// is a true no-op — no per-cancel state accumulates (the old kernel leaked
// an unordered_set entry per stale cancel).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_fn.h"
#include "util/check.h"
#include "util/units.h"

namespace rv::sim {

// Encodes {generation (high 32), slot (low 32)}. Generations start at 1, so
// no valid id is ever 0.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class Simulator {
 public:
  Simulator() = default;
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` to run at absolute time `at` (>= now).
  EventId schedule_at(SimTime at, EventFn&& fn);
  // Schedules `fn` to run `delay` from now.
  EventId schedule_in(SimTime delay, EventFn&& fn);

  // Fast-path overloads: a raw callable is forwarded and constructed
  // directly inside its event slot — no temporary EventFn, no move of the
  // closure. Call sites passing lambdas bind here; passing an EventFn
  // rvalue still takes the overloads above.
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        !std::is_same_v<D, std::nullptr_t> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventId schedule_at(SimTime at, F&& f) {
    RV_CHECK_GE(at, now_) << "cannot schedule into the past";
    RV_CHECK_LT(next_seq_, kSeqLimit) << "sequence space exhausted";
    const std::uint32_t slot = acquire_slot();
    Slot& s = slot_ref(slot);
    s.fn = std::forward<F>(f);
    return arm_slot(at, slot, s);
  }
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        !std::is_same_v<D, std::nullptr_t> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventId schedule_in(SimTime delay, F&& f) {
    RV_CHECK_GE(delay, 0);
    return schedule_at(now_ + delay, std::forward<F>(f));
  }

  // Cancels a pending event; cancelling an already-fired or invalid id is a
  // harmless no-op (timers race with the events that disarm them).
  void cancel(EventId id);

  // Returns the simulator to its just-constructed state — clock at zero, no
  // pending events, sequence counter and slot generations back at their
  // initial values — while keeping the slot chunks and the heap buffer
  // allocated. Pending callbacks are destroyed (their captures released)
  // exactly as the destructor would. After reset the simulator is
  // observationally indistinguishable from a fresh one, so per-worker
  // contexts can reuse it across plays without perturbing results; only the
  // warm allocations differ.
  void reset();

  // Runs until the queue empties.
  void run();
  // Runs events with time <= deadline; the clock ends at the deadline even if
  // the queue drained earlier.
  void run_until(SimTime deadline);
  // Runs at most one event; returns false when the queue is empty.
  bool step();

  // Live (scheduled, not yet fired or cancelled) events.
  std::size_t pending_events() const { return live_; }
  // Callbacks fired since construction or the last reset(). Cheap run-size
  // telemetry for the observability layer (per-play sim_events counter).
  std::uint64_t events_executed() const { return executed_; }

  // Introspection for tests and benches: total slots ever allocated (bounded
  // by the peak number of simultaneously pending events, regardless of how
  // many events are scheduled or cancelled over a run) and raw queue entries
  // across both structures (live events plus not-yet-surfaced cancellation
  // tombstones).
  std::size_t slot_capacity() const { return slot_count_; }
  std::size_t heap_size() const { return queue_size_; }
  // Raw entries currently parked in the overflow heap (beyond the wheel
  // horizon); exposed so tests can pin the wheel/heap split.
  std::size_t overflow_size() const { return heap_size_; }

 private:
  // 16-byte heap entry, a single 128-bit key: timestamp in the high 64 bits,
  // then the sequence number (tie-break: schedule order, high 40 bits of the
  // low word) and the slot index (low 24 bits). Ordering two entries is one
  // unsigned 128-bit compare — cmp/sbb, branch-free — instead of a
  // compare-time-then-compare-seq branch that the sift loops would
  // mispredict on near-tied timestamps. Times are non-negative (schedule_at
  // checks at >= now), so the unsigned compare is order-preserving, and seq
  // is unique per event so no two keys are ever equal. The packing is
  // checked at schedule time: 2^40 events or 2^24 concurrently pending
  // slots per simulator trips an RV_CHECK rather than corrupting order.
  struct HeapEntry {
    unsigned __int128 key;
    SimTime at() const { return static_cast<SimTime>(key >> 64); }
    std::uint64_t seq_slot() const { return static_cast<std::uint64_t>(key); }
  };
  static HeapEntry make_entry(SimTime at, std::uint64_t seq_slot) {
    return HeapEntry{
        (static_cast<unsigned __int128>(static_cast<std::uint64_t>(at))
         << 64) |
        seq_slot};
  }
  struct Slot {
    EventFn fn;
    std::uint64_t seq_slot = 0;  // key of the live occupant, 0 when free
    std::uint32_t gen = 1;
    bool live = false;
  };

  static constexpr std::uint64_t kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (std::uint64_t{1} << kSlotBits) - 1;
  static constexpr std::uint64_t kSeqLimit = std::uint64_t{1}
                                             << (64 - kSlotBits);

  static EventId make_id(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }
  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    return a.key < b.key;
  }

  // Slot storage: fixed-size chunks of raw memory, never relocated, with
  // Slots placement-constructed one at a time as the pool's high-water mark
  // rises. Stable addresses let events fire in place and callbacks grow the
  // pool mid-fire; constructing lazily means a fresh Simulator costs two
  // small allocations, not an 80 KB chunk initialisation.
  static constexpr std::size_t kChunkShift = 10;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
  static constexpr std::size_t kChunkMask = kChunkSize - 1;

  Slot& slot_ref(std::uint32_t slot) const {
    if (__builtin_expect(slot < kChunkSize, 1)) {
      return *(reinterpret_cast<Slot*>(chunk0_) + slot);
    }
    return *(reinterpret_cast<Slot*>(chunks_[slot >> kChunkShift].get()) +
             (slot & kChunkMask));
  }

  // Hierarchical timer wheel. Each level indexes one byte of the timestamp;
  // level L slot ranges span 256^L microseconds. Entries live in the wheel
  // iff their time is >= wheel_cursor_ and within 2^32 us of it; everything
  // else (including times behind a rewound cursor — run_until can roll the
  // clock back) goes to the overflow heap, which is always correct, just
  // slower. The cursor only advances during cascades, which only happen when
  // every earlier wheel slot has fully drained — the invariant that makes
  // per-bucket FIFO order equal seq order.
  static constexpr std::size_t kWheelLevels = 4;
  static constexpr std::size_t kWheelSlots = 256;
  static constexpr std::size_t kWheelWords = kWheelSlots / 64;
  static constexpr std::uint32_t kNilNode = 0xffffffffu;
  // Bucket contents live as {key, next} nodes in one pooled, grow-only
  // array (wheel_nodes_), recycled through an intrusive freelist — pushing
  // an entry never allocates in steady state and never scatters across
  // per-bucket heap blocks. A bucket is just {head, tail} node indices, so
  // the whole 1024-bucket table is 8 KB of contiguous memory.
  struct WheelNode {
    HeapEntry e;
    std::uint32_t next;
  };
  struct Bucket {
    std::uint32_t head = kNilNode;
    std::uint32_t tail = kNilNode;
  };

  // Insert fast path, inlined into arm_slot: wheel placement is a couple of
  // bit operations plus a freelist pop and a tail link. Only the overflow
  // heap push and pool growth go out of line.
  void queue_push(HeapEntry entry) {
    const auto at = static_cast<std::uint64_t>(entry.at());
    const std::uint64_t diff = at ^ static_cast<std::uint64_t>(wheel_cursor_);
    if (__builtin_expect(
            entry.at() < wheel_cursor_ || (diff >> (8 * kWheelLevels)) != 0,
            0)) {
      // Behind the cursor (run_until can rewind the clock) or beyond the
      // 2^32 us wheel horizon: the heap handles both exactly.
      heap_push(entry);
      ++queue_size_;
      return;
    }
    const std::size_t level =
        diff ? static_cast<std::size_t>(63 - __builtin_clzll(diff)) >> 3 : 0;
    const std::size_t slot = (at >> (8 * level)) & 0xff;
    // An entry earlier than the cached raw wheel minimum displaces it (a
    // later entry cannot land scan-order-before the cached slot, so the
    // cache survives the common fire-then-reschedule-later pattern).
    if (peek_valid_ && entry.at() < peek_time_) peek_valid_ = false;
    // One-deep cache in front of the node freelist: the node released by
    // the pop that is firing right now is typically re-acquired by the
    // reschedule it performs — same index, warm line, no freelist loads.
    std::uint32_t n = hot_node_;
    if (__builtin_expect(n != kNilNode, 1)) {
      hot_node_ = kNilNode;
    } else if ((n = wheel_free_) != kNilNode) {
      wheel_free_ = wheel_nodes_[n].next;
    } else {
      n = grow_node();
    }
    WheelNode& node = wheel_nodes_[n];
    node.e = entry;
    node.next = kNilNode;
    Bucket& b = wheel_[level][slot];
    if (b.head == kNilNode) {
      b.head = n;
    } else {
      wheel_nodes_[b.tail].next = n;
    }
    b.tail = n;
    wheel_bitmap_[level][slot >> 6] |= std::uint64_t{1} << (slot & 63);
    wheel_summary_ |= std::uint32_t{1}
                      << (level * kWheelWords + (slot >> 6));
    ++queue_size_;
  }
  std::uint32_t grow_node();
  // Pop fast path, inlined into step(): the peek-cached (or bitmap-located)
  // lowest slot is level 0 and the overflow heap is empty — pop the bucket
  // front. Cascades, heap arbitration and heap-only pops go out of line.
  __attribute__((always_inline)) HeapEntry queue_pop_earliest() {
    if (__builtin_expect(wheel_summary_ != 0 && heap_size_ == 0, 1)) {
      std::size_t level;
      std::size_t slot;
      if (peek_valid_) {
        level = peek_level_;
        slot = peek_slot_;
      } else {
        wheel_lowest(&level, &slot);
      }
      if (__builtin_expect(level == 0, 1)) return wheel_pop_front(slot);
    }
    return queue_pop_slow();
  }
  __attribute__((always_inline)) HeapEntry wheel_pop_front(std::size_t slot) {
    // All entries in a level-0 bucket share one exact microsecond, so the
    // FIFO front is the bucket minimum (seq order).
    Bucket& b = wheel_[0][slot];
    const std::uint32_t n = b.head;
    WheelNode& node = wheel_nodes_[n];
    const HeapEntry front = node.e;
    b.head = node.next;
    if (__builtin_expect(hot_node_ == kNilNode, 1)) {
      hot_node_ = n;
    } else {
      node.next = wheel_free_;
      wheel_free_ = n;
    }
    --queue_size_;
    if (b.head == kNilNode) {
      // Bucket drained; head is already kNilNode from the pop itself.
      peek_valid_ = false;
      b.tail = kNilNode;
      std::uint64_t& word = wheel_bitmap_[0][slot >> 6];
      word &= ~(std::uint64_t{1} << (slot & 63));
      if (word == 0) wheel_summary_ &= ~(std::uint32_t{1} << (slot >> 6));
    } else {
      // The bucket still holds same-microsecond entries: it remains the
      // lowest occupied slot and its raw minimum time is unchanged, so the
      // next pop (or peek) skips the scan entirely.
      peek_valid_ = true;
      peek_level_ = 0;
      peek_slot_ = static_cast<std::uint8_t>(slot);
      peek_time_ = front.at();
    }
    return front;
  }
  HeapEntry queue_pop_slow();
  // Raw earliest pending time, tombstones included, without cascading.
  // Returns false when both structures are empty. Caches the located wheel
  // slot so the pop that typically follows skips the scan.
  bool queue_peek_earliest(SimTime* out) const;
  void wheel_cascade(std::size_t level, std::size_t slot);
  void bucket_clear(std::size_t level, std::size_t slot) {
    Bucket& b = wheel_[level][slot];
    b.head = kNilNode;
    b.tail = kNilNode;
    std::uint64_t& word = wheel_bitmap_[level][slot >> 6];
    word &= ~(std::uint64_t{1} << (slot & 63));
    if (word == 0) {
      wheel_summary_ &=
          ~(std::uint32_t{1} << (level * kWheelWords + (slot >> 6)));
    }
  }
  // Lowest occupied (level, slot): one ctz on the 32-bit summary (bit
  // level*4+word set iff that bitmap word is nonzero), one ctz on the word.
  // Precondition: wheel nonempty.
  void wheel_lowest(std::size_t* level, std::size_t* slot) const {
    const auto bit =
        static_cast<std::size_t>(__builtin_ctz(wheel_summary_));
    *level = bit >> 2;
    const std::size_t word = bit & 3;
    *slot = word * 64 +
            static_cast<std::size_t>(
                __builtin_ctzll(wheel_bitmap_[*level][word]));
  }
  SimTime wheel_slot_start(std::size_t level, std::size_t slot) const {
    const std::uint64_t hi =
        static_cast<std::uint64_t>(wheel_cursor_) &
        (~std::uint64_t{0} << (8 * (level + 1)));
    return static_cast<SimTime>(hi |
                                (static_cast<std::uint64_t>(slot)
                                 << (8 * level)));
  }

  void heap_push(HeapEntry entry);
  HeapEntry heap_pop_root();
  void heap_reserve(std::size_t cap);
  void release_slot(std::uint32_t slot);

  // Slot acquisition: the free-list pop (steady state) and the high-water
  // bump within an existing chunk (pool warm-up) stay inline; only a new
  // chunk allocation goes out of line.
  std::uint32_t acquire_slot() {
    // One-deep cache in front of the free list: the slot freed by the event
    // that is firing right now is typically re-acquired by the reschedule it
    // performs, skipping the vector round trip entirely.
    if (hot_slot_ != kNilNode) {
      const std::uint32_t slot = hot_slot_;
      hot_slot_ = kNilNode;
      return slot;
    }
    if (!free_slots_.empty()) {
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      return slot;
    }
    if (__builtin_expect(slot_count_ < chunks_.size() * kChunkSize, 1)) {
      const auto slot = static_cast<std::uint32_t>(slot_count_++);
      ::new (static_cast<void*>(&slot_ref(slot))) Slot();
      return slot;
    }
    return grow_chunk();
  }
  std::uint32_t grow_chunk();

  // Second half of scheduling, after the callable is in the slot: assign the
  // sequence key, push the heap entry, hand back the {generation, slot} id.
  EventId arm_slot(SimTime at, std::uint32_t slot, Slot& s) {
    s.seq_slot = (next_seq_++ << kSlotBits) | slot;
    s.live = true;
    queue_push(make_entry(at, s.seq_slot));
    ++live_;
    return make_id(s.gen, slot);
  }

  // Hot scalars first, packed into the leading cache lines: every event
  // touches most of these, and keeping them in front of the 8 KB bucket
  // table stops the per-event working set from spanning the whole object.
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  // Total pending entries across wheel and overflow heap, tombstones
  // included — the only counter the run loop touches per event.
  std::size_t queue_size_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  // First slot chunk, cached raw: slot_ref resolves slots < kChunkSize (the
  // steady state of every real play) with one load instead of two.
  unsigned char* chunk0_ = nullptr;
  std::uint32_t hot_slot_ = kNilNode;  // one-deep slot free-list cache
  std::uint32_t hot_node_ = kNilNode;  // one-deep wheel-node freelist cache
  std::uint32_t wheel_free_ = kNilNode;  // freelist threaded through .next
  std::uint32_t wheel_summary_ = 0;  // bit level*4+word set iff word nonzero
  SimTime wheel_cursor_ = 0;
  // Peek cache: run_until peeks the raw minimum before every step; the pop
  // inside that step reuses the located wheel slot instead of re-scanning.
  // A push invalidates only when it beats the cached minimum; pops always
  // invalidate.
  mutable bool peek_valid_ = false;
  mutable std::uint8_t peek_level_ = 0;
  mutable std::uint8_t peek_slot_ = 0;
  mutable SimTime peek_time_ = 0;
  // The overflow heap is a flat 64-byte-aligned buffer managed by hand (push
  // keeps the capacity check off the hot path as an expect-false branch;
  // growth is a plain memcpy since HeapEntry is trivially copyable).
  HeapEntry* heap_ = nullptr;
  std::size_t heap_size_ = 0;
  std::size_t heap_cap_ = 0;
  std::size_t slot_count_ = 0;  // constructed slots (pool high-water mark)
  std::uint64_t wheel_bitmap_[kWheelLevels][kWheelWords] = {};
  // Wheel state. The node pool keeps its capacity across plays (reset()
  // clears, never frees), so the steady-state wheel is allocation-free.
  Bucket wheel_[kWheelLevels][kWheelSlots];
  std::vector<WheelNode> wheel_nodes_;
  std::vector<std::unique_ptr<unsigned char[]>> chunks_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace rv::sim
