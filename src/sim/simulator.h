// Discrete-event simulation kernel.
//
// A Simulator owns a 4-ary min-heap of timestamped events. Events at equal
// timestamps fire in scheduling order (a monotonically increasing sequence
// number breaks ties), which makes runs deterministic. Events can be
// cancelled in O(1) through the EventId returned at scheduling time.
//
// Layout: callbacks live in pooled slots (recycled via a free list) and the
// heap holds only 16-byte {time, seq|slot} keys, so sifting never moves a
// closure and events fire in place — the callback is invoked inside its
// slot, never copied or moved out. Slots are stored in fixed-size chunks
// with stable addresses, so pool growth never relocates a pending callback
// (even when the callback itself schedules and grows the pool). An EventId
// encodes
// {generation, slot}; cancellation bumps the slot's generation, instantly
// invalidating the heap entry, which is skipped as a tombstone when it
// surfaces. Cancelling an already-fired or stale id compares generations and
// is a true no-op — no per-cancel state accumulates (the old kernel leaked
// an unordered_set entry per stale cancel).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_fn.h"
#include "util/check.h"
#include "util/units.h"

namespace rv::sim {

// Encodes {generation (high 32), slot (low 32)}. Generations start at 1, so
// no valid id is ever 0.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class Simulator {
 public:
  Simulator() = default;
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` to run at absolute time `at` (>= now).
  EventId schedule_at(SimTime at, EventFn&& fn);
  // Schedules `fn` to run `delay` from now.
  EventId schedule_in(SimTime delay, EventFn&& fn);

  // Fast-path overloads: a raw callable is forwarded and constructed
  // directly inside its event slot — no temporary EventFn, no move of the
  // closure. Call sites passing lambdas bind here; passing an EventFn
  // rvalue still takes the overloads above.
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        !std::is_same_v<D, std::nullptr_t> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventId schedule_at(SimTime at, F&& f) {
    RV_CHECK_GE(at, now_) << "cannot schedule into the past";
    RV_CHECK_LT(next_seq_, kSeqLimit) << "sequence space exhausted";
    const std::uint32_t slot = acquire_slot();
    Slot& s = slot_ref(slot);
    s.fn = std::forward<F>(f);
    return arm_slot(at, slot, s);
  }
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        !std::is_same_v<D, std::nullptr_t> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventId schedule_in(SimTime delay, F&& f) {
    RV_CHECK_GE(delay, 0);
    return schedule_at(now_ + delay, std::forward<F>(f));
  }

  // Cancels a pending event; cancelling an already-fired or invalid id is a
  // harmless no-op (timers race with the events that disarm them).
  void cancel(EventId id);

  // Returns the simulator to its just-constructed state — clock at zero, no
  // pending events, sequence counter and slot generations back at their
  // initial values — while keeping the slot chunks and the heap buffer
  // allocated. Pending callbacks are destroyed (their captures released)
  // exactly as the destructor would. After reset the simulator is
  // observationally indistinguishable from a fresh one, so per-worker
  // contexts can reuse it across plays without perturbing results; only the
  // warm allocations differ.
  void reset();

  // Runs until the queue empties.
  void run();
  // Runs events with time <= deadline; the clock ends at the deadline even if
  // the queue drained earlier.
  void run_until(SimTime deadline);
  // Runs at most one event; returns false when the queue is empty.
  bool step();

  // Live (scheduled, not yet fired or cancelled) events.
  std::size_t pending_events() const { return live_; }
  // Callbacks fired since construction or the last reset(). Cheap run-size
  // telemetry for the observability layer (per-play sim_events counter).
  std::uint64_t events_executed() const { return executed_; }

  // Introspection for tests and benches: total slots ever allocated (bounded
  // by the peak number of simultaneously pending events, regardless of how
  // many events are scheduled or cancelled over a run) and raw heap entries
  // (live events plus not-yet-surfaced cancellation tombstones).
  std::size_t slot_capacity() const { return slot_count_; }
  std::size_t heap_size() const { return heap_size_; }

 private:
  // 16-byte heap entry, a single 128-bit key: timestamp in the high 64 bits,
  // then the sequence number (tie-break: schedule order, high 40 bits of the
  // low word) and the slot index (low 24 bits). Ordering two entries is one
  // unsigned 128-bit compare — cmp/sbb, branch-free — instead of a
  // compare-time-then-compare-seq branch that the sift loops would
  // mispredict on near-tied timestamps. Times are non-negative (schedule_at
  // checks at >= now), so the unsigned compare is order-preserving, and seq
  // is unique per event so no two keys are ever equal. The packing is
  // checked at schedule time: 2^40 events or 2^24 concurrently pending
  // slots per simulator trips an RV_CHECK rather than corrupting order.
  struct HeapEntry {
    unsigned __int128 key;
    SimTime at() const { return static_cast<SimTime>(key >> 64); }
    std::uint64_t seq_slot() const { return static_cast<std::uint64_t>(key); }
  };
  static HeapEntry make_entry(SimTime at, std::uint64_t seq_slot) {
    return HeapEntry{
        (static_cast<unsigned __int128>(static_cast<std::uint64_t>(at))
         << 64) |
        seq_slot};
  }
  struct Slot {
    EventFn fn;
    std::uint64_t seq_slot = 0;  // key of the live occupant, 0 when free
    std::uint32_t gen = 1;
    bool live = false;
  };

  static constexpr std::uint64_t kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (std::uint64_t{1} << kSlotBits) - 1;
  static constexpr std::uint64_t kSeqLimit = std::uint64_t{1}
                                             << (64 - kSlotBits);

  static EventId make_id(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }
  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    return a.key < b.key;
  }

  // Slot storage: fixed-size chunks of raw memory, never relocated, with
  // Slots placement-constructed one at a time as the pool's high-water mark
  // rises. Stable addresses let events fire in place and callbacks grow the
  // pool mid-fire; constructing lazily means a fresh Simulator costs two
  // small allocations, not an 80 KB chunk initialisation.
  static constexpr std::size_t kChunkShift = 10;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
  static constexpr std::size_t kChunkMask = kChunkSize - 1;

  Slot& slot_ref(std::uint32_t slot) const {
    return *(reinterpret_cast<Slot*>(chunks_[slot >> kChunkShift].get()) +
             (slot & kChunkMask));
  }

  void heap_push(HeapEntry entry);
  HeapEntry heap_pop_root();
  void heap_reserve(std::size_t cap);
  void release_slot(std::uint32_t slot);

  // Slot acquisition: the free-list pop (steady state) and the high-water
  // bump within an existing chunk (pool warm-up) stay inline; only a new
  // chunk allocation goes out of line.
  std::uint32_t acquire_slot() {
    if (!free_slots_.empty()) {
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      return slot;
    }
    if (__builtin_expect(slot_count_ < chunks_.size() * kChunkSize, 1)) {
      const auto slot = static_cast<std::uint32_t>(slot_count_++);
      ::new (static_cast<void*>(&slot_ref(slot))) Slot();
      return slot;
    }
    return grow_chunk();
  }
  std::uint32_t grow_chunk();

  // Second half of scheduling, after the callable is in the slot: assign the
  // sequence key, push the heap entry, hand back the {generation, slot} id.
  EventId arm_slot(SimTime at, std::uint32_t slot, Slot& s) {
    s.seq_slot = (next_seq_++ << kSlotBits) | slot;
    s.live = true;
    heap_push(make_entry(at, s.seq_slot));
    ++live_;
    return make_id(s.gen, slot);
  }

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  // The heap is a flat 64-byte-aligned buffer managed by hand (push keeps
  // the capacity check off the hot path as an expect-false branch; growth
  // is a plain memcpy since HeapEntry is trivially copyable).
  HeapEntry* heap_ = nullptr;
  std::size_t heap_size_ = 0;
  std::size_t heap_cap_ = 0;
  std::vector<std::unique_ptr<unsigned char[]>> chunks_;
  std::size_t slot_count_ = 0;  // constructed slots (pool high-water mark)
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace rv::sim
