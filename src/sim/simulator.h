// Discrete-event simulation kernel.
//
// A Simulator owns a priority queue of timestamped callbacks. Events at equal
// timestamps fire in scheduling order (a monotonically increasing sequence
// number breaks ties), which makes runs deterministic. Events can be
// cancelled through the EventId returned at scheduling time; cancellation is
// lazy (the heap entry is skipped when popped).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/units.h"

namespace rv::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` to run at absolute time `at` (>= now).
  EventId schedule_at(SimTime at, std::function<void()> fn);
  // Schedules `fn` to run `delay` from now.
  EventId schedule_in(SimTime delay, std::function<void()> fn);

  // Cancels a pending event; cancelling an already-fired or invalid id is a
  // harmless no-op (timers race with the events that disarm them).
  void cancel(EventId id);

  // Runs until the queue empties.
  void run();
  // Runs events with time <= deadline; the clock ends at the deadline even if
  // the queue drained earlier.
  void run_until(SimTime deadline);
  // Runs at most one event; returns false when the queue is empty.
  bool step();

  std::size_t pending_events() const;

 private:
  struct Event {
    SimTime at;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };

  SimTime now_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace rv::sim
