#include "sim/simulator.h"

#include <algorithm>
#include <cstring>
#include <new>
#include <utility>

#include "util/check.h"

namespace rv::sim {
namespace {

// 4-ary heap: shallower than binary (log4 vs log2 levels) and the four
// 16-byte keys of a sibling group share a cache line, which is what makes
// sift-down cheap on the timer-churn workloads that dominate the study.
// (8-ary was measured and lost: the wider scan costs more than the saved
// level.)
constexpr std::size_t kArity = 4;

}  // namespace

Simulator::~Simulator() {
  ::operator delete[](heap_, std::align_val_t{64});
  // A freed slot always holds a null EventFn (cleared on fire / cancel), so
  // with no events pending every slot destructor is a no-op and the sweep —
  // a read per slot across the whole pool — can be skipped outright. Only a
  // simulator torn down with timers still armed pays for the walk.
  if (live_ == 0) return;
  for (std::size_t i = 0; i < slot_count_; ++i) {
    slot_ref(static_cast<std::uint32_t>(i)).~Slot();
  }
}

void Simulator::heap_reserve(std::size_t cap) {
  if (cap <= heap_cap_) return;
  std::size_t ncap = heap_cap_ ? heap_cap_ : 64;
  while (ncap < cap) ncap *= 2;
  auto* nbuf = static_cast<HeapEntry*>(
      ::operator new[](ncap * sizeof(HeapEntry), std::align_val_t{64}));
  if (heap_size_ > 0) {
    std::memcpy(nbuf, heap_, heap_size_ * sizeof(HeapEntry));
  }
  ::operator delete[](heap_, std::align_val_t{64});
  heap_ = nbuf;
  heap_cap_ = ncap;
}

void Simulator::heap_push(HeapEntry entry) {
  if (__builtin_expect(heap_size_ >= heap_cap_, 0)) {
    heap_reserve(heap_size_ + 1);
  }
  // Hole-based sift-up: parents slide down into the hole; the new entry is
  // written exactly once.
  std::size_t i = heap_size_++;
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!earlier(entry, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

Simulator::HeapEntry Simulator::heap_pop_root() {
  const HeapEntry root = heap_[0];
  const HeapEntry last = heap_[heap_size_ - 1];
  --heap_size_;
  const std::size_t n = heap_size_;
  if (n == 0) return root;
  // Hole-based sift-down of `last` from the root.
  std::size_t i = 0;
  while (true) {
    const std::size_t first_child = i * kArity + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    if (first_child + kArity <= n) {
      // Full sibling group: tournament min-of-4. The pair comparisons are
      // independent (better ILP than a sequential scan) and the index
      // selects compile branch-free, which matters because the winning
      // child is data-dependent and unpredictable.
      const std::size_t b0 =
          first_child + (earlier(heap_[first_child + 1], heap_[first_child])
                             ? std::size_t{1}
                             : std::size_t{0});
      const std::size_t b1 =
          first_child + 2 +
          (earlier(heap_[first_child + 3], heap_[first_child + 2])
               ? std::size_t{1}
               : std::size_t{0});
      best = earlier(heap_[b1], heap_[b0]) ? b1 : b0;
    } else {
      for (std::size_t c = first_child + 1; c < n; ++c) {
        if (earlier(heap_[c], heap_[best])) best = c;
      }
    }
    if (!earlier(heap_[best], last)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
  return root;
}

std::uint32_t Simulator::grow_node() {
  const auto n = static_cast<std::uint32_t>(wheel_nodes_.size());
  wheel_nodes_.push_back(WheelNode{});
  return n;
}

void Simulator::wheel_cascade(std::size_t level, std::size_t slot) {
  // Redistribute the slot one level down. Every earlier slot has drained
  // (this slot is the lowest occupied at the lowest occupied level), so the
  // cursor may jump to the slot's start; each entry re-inserts strictly
  // below `level` because its bytes above `level` now match the cursor and
  // byte `level` equals the cursor's. Walking the chain head-to-tail and
  // re-pushing preserves bucket order, and no direct insert can have
  // targeted the child slots before this cascade ran, so per-bucket FIFO
  // remains global seq order. Each node is freed just before the re-push
  // re-acquires it (LIFO freelist), so a cascade never grows the pool.
  Bucket& b = wheel_[level][slot];
  wheel_cursor_ = wheel_slot_start(level, slot);
  std::uint32_t n = b.head;
  bucket_clear(level, slot);
  while (n != kNilNode) {
    WheelNode& node = wheel_nodes_[n];
    const std::uint32_t next = node.next;
    const HeapEntry e = node.e;
    node.next = wheel_free_;
    wheel_free_ = n;
    --queue_size_;  // the re-push below restores it; net zero per entry
    queue_push(e);
    n = next;
  }
}

Simulator::HeapEntry Simulator::queue_pop_slow() {
  while (true) {
    if (wheel_summary_ == 0) {
      --queue_size_;
      return heap_pop_root();
    }
    std::size_t level;
    std::size_t slot;
    if (peek_valid_) {
      level = peek_level_;
      slot = peek_slot_;
    } else {
      wheel_lowest(&level, &slot);
    }
    if (level == 0) {
      // Level-0 bucket front vs overflow-heap root: whichever key is
      // earlier wins. A heap pop leaves the wheel untouched, so the peek
      // cache survives it.
      const HeapEntry front = wheel_nodes_[wheel_[0][slot].head].e;
      if (heap_size_ > 0 && earlier(heap_[0], front)) {
        --queue_size_;
        return heap_pop_root();
      }
      return wheel_pop_front(slot);
    }
    // A higher-level slot spans a time range; if the heap root fires before
    // that range even starts, it wins outright. Otherwise cascade the slot
    // down and re-decide at the finer level (at most kWheelLevels-1 hops).
    if (heap_size_ > 0 && heap_[0].at() < wheel_slot_start(level, slot)) {
      --queue_size_;
      return heap_pop_root();
    }
    peek_valid_ = false;
    wheel_cascade(level, slot);
  }
}

bool Simulator::queue_peek_earliest(SimTime* out) const {
  bool have = false;
  SimTime best = 0;
  if (wheel_summary_ != 0) {
    if (!peek_valid_) {
      std::size_t level;
      std::size_t slot;
      wheel_lowest(&level, &slot);
      const Bucket& b = wheel_[level][slot];
      SimTime t = wheel_nodes_[b.head].e.at();
      if (level > 0) {
        // Higher-level buckets are not time-sorted; scan for the raw minimum
        // (rare: once per cascade-sized stretch of the run).
        for (std::uint32_t n = wheel_nodes_[b.head].next; n != kNilNode;
             n = wheel_nodes_[n].next) {
          t = std::min(t, wheel_nodes_[n].e.at());
        }
      }
      peek_level_ = static_cast<std::uint8_t>(level);
      peek_slot_ = static_cast<std::uint8_t>(slot);
      peek_time_ = t;
      peek_valid_ = true;
    }
    best = peek_time_;
    have = true;
  }
  if (heap_size_ > 0 && (!have || heap_[0].at() < best)) {
    best = heap_[0].at();
    have = true;
  }
  *out = best;
  return have;
}

void Simulator::release_slot(std::uint32_t slot) {
  Slot& s = slot_ref(slot);
  s.fn = EventFn();
  s.seq_slot = 0;
  s.live = false;
  if (++s.gen == 0) s.gen = 1;  // generation 0 is reserved for invalid ids
  if (hot_slot_ == kNilNode) {
    hot_slot_ = slot;
  } else {
    free_slots_.push_back(slot);
  }
  --live_;
}

std::uint32_t Simulator::grow_chunk() {
  RV_CHECK_LT(slot_count_, kSlotMask) << "slot space exhausted";
  // Raw (uninitialised) chunk; slots are placement-constructed as first
  // used (in acquire_slot), so a mostly-idle simulator never touches the
  // tail.
  chunks_.emplace_back(new unsigned char[kChunkSize * sizeof(Slot)]);
  chunk0_ = chunks_.front().get();
  free_slots_.reserve(chunks_.size() * kChunkSize);
  heap_reserve(chunks_.size() * kChunkSize);
  const auto slot = static_cast<std::uint32_t>(slot_count_++);
  ::new (static_cast<void*>(&slot_ref(slot))) Slot();
  return slot;
}

EventId Simulator::schedule_at(SimTime at, EventFn&& fn) {
  RV_CHECK_GE(at, now_) << "cannot schedule into the past";
  RV_CHECK(fn != nullptr);
  RV_CHECK_LT(next_seq_, kSeqLimit) << "sequence space exhausted";
  const std::uint32_t slot = acquire_slot();
  Slot& s = slot_ref(slot);
  s.fn = std::move(fn);
  return arm_slot(at, slot, s);
}

EventId Simulator::schedule_in(SimTime delay, EventFn&& fn) {
  RV_CHECK_GE(delay, 0);
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::cancel(EventId id) {
  if (id == kInvalidEventId) return;
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slot_count_) return;
  const Slot& s = slot_ref(slot);
  if (!s.live || s.gen != gen) return;  // already fired or cancelled
  // The heap entry stays behind as a tombstone (generation mismatch) and is
  // skipped when it surfaces — exactly when the old kernel would have
  // dropped it, so event order is bit-identical to the lazy-delete design.
  release_slot(slot);
}

void Simulator::reset() {
  // Destroy every constructed slot (releasing any pending callbacks and
  // their captures) and let acquire_slot placement-construct them again on
  // demand: generations restart at 1 and the free list restarts empty,
  // matching a fresh simulator exactly. Chunks and the heap buffer stay
  // allocated, so the next play schedules into warm memory.
  for (std::size_t i = 0; i < slot_count_; ++i) {
    slot_ref(static_cast<std::uint32_t>(i)).~Slot();
  }
  slot_count_ = 0;
  free_slots_.clear();
  heap_size_ = 0;
  // Sweep only occupied wheel buckets (found via the bitmaps); the node
  // pool keeps its capacity so the next play's wheel is warm.
  for (std::size_t level = 0; level < kWheelLevels; ++level) {
    for (std::size_t w = 0; w < kWheelWords; ++w) {
      std::uint64_t bits = wheel_bitmap_[level][w];
      while (bits != 0) {
        const auto bit = static_cast<std::size_t>(__builtin_ctzll(bits));
        bits &= bits - 1;
        Bucket& b = wheel_[level][w * 64 + bit];
        b.head = kNilNode;
        b.tail = kNilNode;
      }
      wheel_bitmap_[level][w] = 0;
    }
  }
  wheel_nodes_.clear();
  wheel_free_ = kNilNode;
  hot_node_ = kNilNode;
  wheel_summary_ = 0;
  queue_size_ = 0;
  wheel_cursor_ = 0;
  peek_valid_ = false;
  hot_slot_ = kNilNode;
  live_ = 0;
  now_ = 0;
  next_seq_ = 1;
  executed_ = 0;
}

bool Simulator::step() {
  while (queue_size_ > 0) {
    const HeapEntry e = queue_pop_earliest();
    const auto slot = static_cast<std::uint32_t>(e.seq_slot() & kSlotMask);
    Slot& s = slot_ref(slot);
    if (s.seq_slot != e.seq_slot()) continue;  // cancellation tombstone
    // Retire the id first — a self-cancel from inside the callback is stale,
    // matching the original pop-then-fire kernel — then fire in place:
    // chunked slots never move, even when the callback schedules new events
    // and grows the pool. The slot joins the free list only after the
    // callback returns, so nested scheduling cannot reuse it mid-flight.
    // (s.seq_slot keeps its stale value: sequence numbers are unique and
    // this entry was just popped, so no pending entry can match it.)
    s.live = false;
    if (++s.gen == 0) s.gen = 1;
    --live_;
    ++executed_;
    now_ = e.at();
    s.fn.invoke_and_clear();
    if (hot_slot_ == kNilNode) {
      hot_slot_ = slot;
    } else {
      free_slots_.push_back(slot);
    }
    return true;
  }
  return false;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(SimTime deadline) {
  RV_CHECK_GE(deadline, now_);
  // Deliberately checks the raw earliest entry (tombstones included) before
  // each step, matching the seed kernel's loop exactly: a cancelled entry at
  // or before the deadline admits one step() that may fire the next live
  // event even if it lies past the deadline. Byte-identical study output
  // across the kernel rewrite depends on preserving this quirk, so the peek
  // reports the exact raw minimum across wheel and heap without cascading.
  SimTime head = 0;
  while (queue_peek_earliest(&head) && head <= deadline) {
    if (!step()) break;
  }
  now_ = deadline;
}

}  // namespace rv::sim
