#include "sim/simulator.h"

#include <utility>

#include "util/check.h"

namespace rv::sim {

EventId Simulator::schedule_at(SimTime at, std::function<void()> fn) {
  RV_CHECK_GE(at, now_) << "cannot schedule into the past";
  RV_CHECK(fn != nullptr);
  const EventId id = next_id_++;
  queue_.push(Event{at, id, std::move(fn)});
  return id;
}

EventId Simulator::schedule_in(SimTime delay, std::function<void()> fn) {
  RV_CHECK_GE(delay, 0);
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::cancel(EventId id) {
  if (id == kInvalidEventId) return;
  cancelled_.insert(id);
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (const auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.at;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(SimTime deadline) {
  RV_CHECK_GE(deadline, now_);
  while (!queue_.empty() && queue_.top().at <= deadline) {
    if (!step()) break;
  }
  now_ = deadline;
}

std::size_t Simulator::pending_events() const {
  // Cancelled-but-unpopped events still sit in the heap; report live ones.
  return queue_.size() >= cancelled_.size() ? queue_.size() - cancelled_.size()
                                            : 0;
}

}  // namespace rv::sim
