#include "sim/simulator.h"

#include <algorithm>
#include <cstring>
#include <new>
#include <utility>

#include "util/check.h"

namespace rv::sim {
namespace {

// 4-ary heap: shallower than binary (log4 vs log2 levels) and the four
// 16-byte keys of a sibling group share a cache line, which is what makes
// sift-down cheap on the timer-churn workloads that dominate the study.
// (8-ary was measured and lost: the wider scan costs more than the saved
// level.)
constexpr std::size_t kArity = 4;

}  // namespace

Simulator::~Simulator() {
  ::operator delete[](heap_, std::align_val_t{64});
  // A freed slot always holds a null EventFn (cleared on fire / cancel), so
  // with no events pending every slot destructor is a no-op and the sweep —
  // a read per slot across the whole pool — can be skipped outright. Only a
  // simulator torn down with timers still armed pays for the walk.
  if (live_ == 0) return;
  for (std::size_t i = 0; i < slot_count_; ++i) {
    slot_ref(static_cast<std::uint32_t>(i)).~Slot();
  }
}

void Simulator::heap_reserve(std::size_t cap) {
  if (cap <= heap_cap_) return;
  std::size_t ncap = heap_cap_ ? heap_cap_ : 64;
  while (ncap < cap) ncap *= 2;
  auto* nbuf = static_cast<HeapEntry*>(
      ::operator new[](ncap * sizeof(HeapEntry), std::align_val_t{64}));
  if (heap_size_ > 0) {
    std::memcpy(nbuf, heap_, heap_size_ * sizeof(HeapEntry));
  }
  ::operator delete[](heap_, std::align_val_t{64});
  heap_ = nbuf;
  heap_cap_ = ncap;
}

void Simulator::heap_push(HeapEntry entry) {
  if (__builtin_expect(heap_size_ >= heap_cap_, 0)) {
    heap_reserve(heap_size_ + 1);
  }
  // Hole-based sift-up: parents slide down into the hole; the new entry is
  // written exactly once.
  std::size_t i = heap_size_++;
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!earlier(entry, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

Simulator::HeapEntry Simulator::heap_pop_root() {
  const HeapEntry root = heap_[0];
  const HeapEntry last = heap_[heap_size_ - 1];
  --heap_size_;
  const std::size_t n = heap_size_;
  if (n == 0) return root;
  // Hole-based sift-down of `last` from the root.
  std::size_t i = 0;
  while (true) {
    const std::size_t first_child = i * kArity + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    if (first_child + kArity <= n) {
      // Full sibling group: tournament min-of-4. The pair comparisons are
      // independent (better ILP than a sequential scan) and the index
      // selects compile branch-free, which matters because the winning
      // child is data-dependent and unpredictable.
      const std::size_t b0 =
          first_child + (earlier(heap_[first_child + 1], heap_[first_child])
                             ? std::size_t{1}
                             : std::size_t{0});
      const std::size_t b1 =
          first_child + 2 +
          (earlier(heap_[first_child + 3], heap_[first_child + 2])
               ? std::size_t{1}
               : std::size_t{0});
      best = earlier(heap_[b1], heap_[b0]) ? b1 : b0;
    } else {
      for (std::size_t c = first_child + 1; c < n; ++c) {
        if (earlier(heap_[c], heap_[best])) best = c;
      }
    }
    if (!earlier(heap_[best], last)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
  return root;
}

void Simulator::release_slot(std::uint32_t slot) {
  Slot& s = slot_ref(slot);
  s.fn = EventFn();
  s.seq_slot = 0;
  s.live = false;
  if (++s.gen == 0) s.gen = 1;  // generation 0 is reserved for invalid ids
  free_slots_.push_back(slot);
  --live_;
}

std::uint32_t Simulator::grow_chunk() {
  RV_CHECK_LT(slot_count_, kSlotMask) << "slot space exhausted";
  // Raw (uninitialised) chunk; slots are placement-constructed as first
  // used (in acquire_slot), so a mostly-idle simulator never touches the
  // tail.
  chunks_.emplace_back(new unsigned char[kChunkSize * sizeof(Slot)]);
  free_slots_.reserve(chunks_.size() * kChunkSize);
  heap_reserve(chunks_.size() * kChunkSize);
  const auto slot = static_cast<std::uint32_t>(slot_count_++);
  ::new (static_cast<void*>(&slot_ref(slot))) Slot();
  return slot;
}

EventId Simulator::schedule_at(SimTime at, EventFn&& fn) {
  RV_CHECK_GE(at, now_) << "cannot schedule into the past";
  RV_CHECK(fn != nullptr);
  RV_CHECK_LT(next_seq_, kSeqLimit) << "sequence space exhausted";
  const std::uint32_t slot = acquire_slot();
  Slot& s = slot_ref(slot);
  s.fn = std::move(fn);
  return arm_slot(at, slot, s);
}

EventId Simulator::schedule_in(SimTime delay, EventFn&& fn) {
  RV_CHECK_GE(delay, 0);
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::cancel(EventId id) {
  if (id == kInvalidEventId) return;
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slot_count_) return;
  const Slot& s = slot_ref(slot);
  if (!s.live || s.gen != gen) return;  // already fired or cancelled
  // The heap entry stays behind as a tombstone (generation mismatch) and is
  // skipped when it surfaces — exactly when the old kernel would have
  // dropped it, so event order is bit-identical to the lazy-delete design.
  release_slot(slot);
}

void Simulator::reset() {
  // Destroy every constructed slot (releasing any pending callbacks and
  // their captures) and let acquire_slot placement-construct them again on
  // demand: generations restart at 1 and the free list restarts empty,
  // matching a fresh simulator exactly. Chunks and the heap buffer stay
  // allocated, so the next play schedules into warm memory.
  for (std::size_t i = 0; i < slot_count_; ++i) {
    slot_ref(static_cast<std::uint32_t>(i)).~Slot();
  }
  slot_count_ = 0;
  free_slots_.clear();
  heap_size_ = 0;
  live_ = 0;
  now_ = 0;
  next_seq_ = 1;
  executed_ = 0;
}

bool Simulator::step() {
  while (heap_size_ > 0) {
    const HeapEntry e = heap_pop_root();
    Slot& s = slot_ref(static_cast<std::uint32_t>(e.seq_slot() & kSlotMask));
    if (s.seq_slot != e.seq_slot()) continue;  // cancellation tombstone
    // Retire the id first — a self-cancel from inside the callback is stale,
    // matching the original pop-then-fire kernel — then fire in place:
    // chunked slots never move, even when the callback schedules new events
    // and grows the pool. The slot joins the free list only after the
    // callback returns, so nested scheduling cannot reuse it mid-flight.
    s.live = false;
    s.seq_slot = 0;
    if (++s.gen == 0) s.gen = 1;
    --live_;
    ++executed_;
    now_ = e.at();
    s.fn();
    s.fn = EventFn();
    free_slots_.push_back(static_cast<std::uint32_t>(e.seq_slot() & kSlotMask));
    return true;
  }
  return false;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(SimTime deadline) {
  RV_CHECK_GE(deadline, now_);
  // Deliberately checks the raw heap root (tombstones included) before each
  // step, matching the seed kernel's loop exactly: a cancelled entry at or
  // before the deadline admits one step() that may fire the next live event
  // even if it lies past the deadline. Byte-identical study output across
  // the kernel rewrite depends on preserving this quirk.
  while (heap_size_ > 0 && heap_[0].at() <= deadline) {
    if (!step()) break;
  }
  now_ = deadline;
}

}  // namespace rv::sim
