#include "transport/congestion_control.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"

namespace rv::transport {
namespace {

// BBR probe-bw pacing-gain cycle: one probing phase, one draining phase,
// six cruise phases (BBRv1's 8-phase cycle).
constexpr double kPacingGainCycle[BbrCC::kGainCycleLen] = {
    1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};

}  // namespace

std::optional<CcAlgorithm> parse_cc_algorithm(std::string_view text) {
  if (text == "reno") return CcAlgorithm::kReno;
  if (text == "cubic") return CcAlgorithm::kCubic;
  if (text == "bbr") return CcAlgorithm::kBbr;
  return std::nullopt;
}

const char* cc_algorithm_name(CcAlgorithm algorithm) {
  switch (algorithm) {
    case CcAlgorithm::kReno: return "reno";
    case CcAlgorithm::kCubic: return "cubic";
    case CcAlgorithm::kBbr: return "bbr";
  }
  return "?";
}

// --- Reno -----------------------------------------------------------------
// Every expression below is copied verbatim from the historical inline code
// in tcp.cc; the study-cache md5 gate and tcp_differential_test depend on
// bit-identical double arithmetic.

RenoCC::RenoCC(std::int32_t mss, std::int32_t initial_cwnd_segments,
               std::int64_t initial_ssthresh)
    : mss_(mss) {
  cwnd_ = static_cast<double>(initial_cwnd_segments) *
          static_cast<double>(mss_);
  ssthresh_ = static_cast<double>(initial_ssthresh);
}

void RenoCC::on_ack(const CcAck& ack) {
  // During fast recovery cwnd holds at ssthresh; growth resumes only after
  // the recovery point is fully acknowledged.
  if (ack.in_recovery) return;
  if (cwnd_ < ssthresh_) {
    // Slow start: one MSS per MSS acked.
    cwnd_ += static_cast<double>(
        std::min<std::uint64_t>(static_cast<std::uint64_t>(ack.newly_acked),
                                static_cast<std::uint64_t>(mss_)));
  } else {
    // Congestion avoidance: MSS^2 / cwnd per ACK.
    cwnd_ += static_cast<double>(mss_) * static_cast<double>(mss_) / cwnd_;
  }
}

void RenoCC::on_recovery_enter(std::int64_t flight, SimTime /*now*/) {
  ssthresh_ = std::max(static_cast<double>(flight) / 2.0,
                       2.0 * static_cast<double>(mss_));
  cwnd_ = ssthresh_;
}

void RenoCC::on_recovery_exit(SimTime /*now*/) { cwnd_ = ssthresh_; }

void RenoCC::on_rto(std::int64_t flight, SimTime /*now*/) {
  ssthresh_ = std::max(static_cast<double>(flight) / 2.0,
                       2.0 * static_cast<double>(mss_));
  cwnd_ = static_cast<double>(mss_);
}

// --- CUBIC (RFC 8312) -----------------------------------------------------

CubicCC::CubicCC(std::int32_t mss, std::int32_t initial_cwnd_segments,
                 std::int64_t initial_ssthresh)
    : mss_(mss) {
  cwnd_ = static_cast<double>(initial_cwnd_segments) *
          static_cast<double>(mss_);
  ssthresh_ = static_cast<double>(initial_ssthresh);
}

void CubicCC::on_rtt_sample(double rtt_sec, SimTime /*now*/) {
  srtt_sec_ = rtt_sec;
}

double CubicCC::w_cubic(double t_sec) const {
  const double d = t_sec - k_;
  return kC * d * d * d + w_max_;
}

double CubicCC::w_est(double t_sec) const {
  // RFC 8312 §4.2: the window standard TCP would reach t seconds into the
  // epoch — CUBIC never operates below it (the TCP-friendly region).
  const double rtt = srtt_sec_ > 0.0 ? srtt_sec_ : 0.1;
  return w_max_ * kBeta +
         (3.0 * (1.0 - kBeta) / (1.0 + kBeta)) * (t_sec / rtt);
}

void CubicCC::start_epoch(SimTime now) {
  epoch_start_ = now;
  const double w = cwnd_ / static_cast<double>(mss_);
  if (w_max_ <= 0.0) {
    // First congestion-avoidance epoch with no loss yet: anchor the plateau
    // at the current window so growth starts in the convex tail.
    w_max_ = w;
    k_ = 0.0;
  } else {
    // Time for the cubic to climb from the post-loss window back to W_max.
    k_ = std::cbrt(std::max(0.0, w_max_ - w) / kC);
  }
}

void CubicCC::on_ack(const CcAck& ack) {
  if (ack.in_recovery) return;
  if (cwnd_ < ssthresh_) {
    // Standard slow start below ssthresh (RFC 8312 §4.8).
    cwnd_ += static_cast<double>(
        std::min<std::uint64_t>(static_cast<std::uint64_t>(ack.newly_acked),
                                static_cast<std::uint64_t>(mss_)));
    return;
  }
  if (epoch_start_ < 0) start_epoch(ack.now);
  const double t = to_seconds(ack.now - epoch_start_);
  const double rtt = srtt_sec_ > 0.0 ? srtt_sec_ : 0.1;
  // Aim one RTT ahead on the curve, but never below the TCP-friendly floor.
  const double target = std::max(w_cubic(t + rtt), w_est(t));
  const double w = cwnd_ / static_cast<double>(mss_);
  if (target > w) {
    cwnd_ += static_cast<double>(mss_) * (target - w) / w;
  }
}

void CubicCC::on_loss_event(SimTime /*now*/) {
  const double w = cwnd_ / static_cast<double>(mss_);
  if (w < w_max_) {
    // Fast convergence: a flow losing before regaining W_max is yielding
    // bandwidth to a newcomer; release its slot faster.
    w_max_ = w * (2.0 - kBeta) / 2.0;
  } else {
    w_max_ = w;
  }
  ssthresh_ = std::max(cwnd_ * kBeta, 2.0 * static_cast<double>(mss_));
  epoch_start_ = -1;
}

void CubicCC::on_recovery_enter(std::int64_t /*flight*/, SimTime now) {
  on_loss_event(now);
  cwnd_ = ssthresh_;
}

void CubicCC::on_recovery_exit(SimTime /*now*/) { cwnd_ = ssthresh_; }

void CubicCC::on_rto(std::int64_t /*flight*/, SimTime now) {
  on_loss_event(now);
  cwnd_ = static_cast<double>(mss_);
}

// --- BBR ------------------------------------------------------------------

BbrCC::BbrCC(std::int32_t mss, std::int32_t initial_cwnd_segments)
    : mss_(mss) {
  cwnd_ = static_cast<double>(initial_cwnd_segments) *
          static_cast<double>(mss_);
}

double BbrCC::max_bw() const {
  double best = 0.0;
  for (const double bw : bw_window_) best = std::max(best, bw);
  return best;
}

double BbrCC::bdp_bytes() const {
  if (!have_min_rtt_) return 0.0;
  return max_bw() * min_rtt_sec_;
}

double BbrCC::pacing_rate(double /*srtt_sec*/) const {
  const double bw = max_bw();
  if (bw <= 0.0) return 0.0;  // no model yet: legacy cwnd/srtt pacing
  return pacing_gain_ * bw;
}

void BbrCC::on_rtt_sample(double rtt_sec, SimTime now) {
  if (!have_min_rtt_ || rtt_sec <= min_rtt_sec_ ||
      now - min_rtt_stamp_ > kMinRttWindow) {
    min_rtt_sec_ = rtt_sec;
    min_rtt_stamp_ = now;
    have_min_rtt_ = true;
  }
}

void BbrCC::set_state(State next, SimTime now) {
  if (next == state_) return;
  obs::emit(now, obs::Code::kCcState, static_cast<std::uint64_t>(state_),
            static_cast<std::uint64_t>(next));
  state_ = next;
}

void BbrCC::on_delivery_rate_sample(double bytes_per_sec, bool app_limited,
                                    std::uint64_t delivered_at_send,
                                    std::uint64_t delivered_now,
                                    SimTime /*now*/) {
  // Packet-timed round clock: the sampled segment left the sender when
  // `delivered_at_send` bytes stood delivered. Once that level reaches the
  // marker recorded at the last round close, a full flight has turned over
  // — close the round, age the filter by one slot and re-check the startup
  // plateau. Doing this on samples (not on snd_una progress) means rounds
  // track real data RTTs even when deep recovery lets snd_nxt balloon.
  if (delivered_at_send >= next_round_delivered_) {
    next_round_delivered_ = delivered_now;
    ++round_count_;
    bw_window_[round_count_ % static_cast<std::uint64_t>(kBwWindowRounds)] =
        0.0;
    check_full_pipe();
  }
  // App-limited samples measure the application, not the path: BBRv1's
  // rule is that they may only raise the filter, never age capacity out.
  if (app_limited && bytes_per_sec <= max_bw()) return;
  double& slot =
      bw_window_[round_count_ % static_cast<std::uint64_t>(kBwWindowRounds)];
  slot = std::max(slot, bytes_per_sec);
}

void BbrCC::check_full_pipe() {
  if (filled_pipe_) return;
  const double bw = max_bw();
  if (bw <= 0.0) return;  // no completed-round estimate yet: nothing to judge
  if (bw > full_bw_ * 1.25) {
    full_bw_ = bw;
    full_bw_count_ = 0;
    return;
  }
  if (++full_bw_count_ >= 3) filled_pipe_ = true;
}

void BbrCC::update_state(const CcAck& ack) {
  const SimTime now = ack.now;
  // Any state may yield to probe-rtt once the min-RTT sample goes stale.
  if (state_ != State::kProbeRtt && have_min_rtt_ &&
      now - min_rtt_stamp_ > kMinRttWindow) {
    prior_cwnd_ = cwnd_;
    probe_rtt_done_ = now + kProbeRttDuration;
    set_state(State::kProbeRtt, now);
    return;
  }
  switch (state_) {
    case State::kStartup:
      if (filled_pipe_) set_state(State::kDrain, now);
      break;
    case State::kDrain:
      if (static_cast<double>(ack.flight) <= bdp_bytes()) {
        cycle_index_ = 0;
        cycle_stamp_ = now;
        set_state(State::kProbeBw, now);
      }
      break;
    case State::kProbeBw: {
      const SimTime phase = std::max<SimTime>(
          msec(1), seconds_to_sim(min_rtt_sec_));
      if (now - cycle_stamp_ >= phase) {
        cycle_index_ = (cycle_index_ + 1) % kGainCycleLen;
        cycle_stamp_ = now;
      }
      break;
    }
    case State::kProbeRtt:
      if (now >= probe_rtt_done_) {
        // The window sat at 4 segments for a full probe interval, so the
        // queue drained and fresh samples re-grounded the min-RTT filter.
        min_rtt_stamp_ = now;
        cwnd_ = std::max(cwnd_, prior_cwnd_);
        cycle_index_ = 0;
        cycle_stamp_ = now;
        set_state(filled_pipe_ ? State::kProbeBw : State::kStartup, now);
      }
      break;
  }
}

void BbrCC::update_gains() {
  switch (state_) {
    case State::kStartup:
      pacing_gain_ = kHighGain;
      cwnd_gain_ = kHighGain;
      break;
    case State::kDrain:
      pacing_gain_ = 1.0 / kHighGain;
      cwnd_gain_ = kHighGain;
      break;
    case State::kProbeBw:
      pacing_gain_ = kPacingGainCycle[cycle_index_];
      cwnd_gain_ = 2.0;
      break;
    case State::kProbeRtt:
      pacing_gain_ = 1.0;
      cwnd_gain_ = 1.0;
      break;
  }
}

void BbrCC::update_cwnd(const CcAck& ack) {
  const double floor = 4.0 * static_cast<double>(mss_);
  if (state_ == State::kProbeRtt) {
    cwnd_ = std::min(cwnd_, floor);
    return;
  }
  const double bdp = bdp_bytes();
  const double target = cwnd_gain_ * bdp;
  if (filled_pipe_) {
    // Post-startup the window tracks the BDP target. If the model starves
    // (every filter slot aged out before a fresh sample landed), hold the
    // window rather than growing blindly — fresh samples re-anchor it.
    if (bdp > 0.0) {
      cwnd_ = std::min(cwnd_ + static_cast<double>(ack.newly_acked), target);
    }
  } else if (bdp <= 0.0 || cwnd_ < target) {
    // Startup: grow by the delivered bytes — doubles the window every round
    // like slow start — but never past cwnd_gain * BDP once the model has a
    // bandwidth estimate, so an undetected full pipe cannot bloat the queue
    // without bound while the plateau detector is still counting rounds.
    cwnd_ += static_cast<double>(ack.newly_acked);
  }
  cwnd_ = std::max(cwnd_, floor);
}

void BbrCC::on_ack(const CcAck& ack) {
  update_state(ack);
  update_gains();
  update_cwnd(ack);
}

void BbrCC::on_recovery_enter(std::int64_t /*flight*/, SimTime /*now*/) {
  // Loss is not a congestion signal in the model: cwnd stays at the BDP
  // target. (The connection still performs NewReno/SACK retransmission and
  // withholds *new* data while recovering; see tcp.cc.)
}

void BbrCC::on_recovery_exit(SimTime /*now*/) {}

void BbrCC::on_rto(std::int64_t /*flight*/, SimTime /*now*/) {
  // Timeout implies the pipe actually collapsed: restart conservatively,
  // keeping the bw/RTT model so cwnd re-inflates within about a round.
  prior_cwnd_ = std::max(prior_cwnd_, cwnd_);
  cwnd_ = static_cast<double>(mss_);
}

std::unique_ptr<CongestionControl> make_congestion_control(
    CcAlgorithm algorithm, std::int32_t mss,
    std::int32_t initial_cwnd_segments, std::int64_t initial_ssthresh) {
  switch (algorithm) {
    case CcAlgorithm::kCubic:
      return std::make_unique<CubicCC>(mss, initial_cwnd_segments,
                                       initial_ssthresh);
    case CcAlgorithm::kBbr:
      return std::make_unique<BbrCC>(mss, initial_cwnd_segments);
    case CcAlgorithm::kReno:
      break;
  }
  return std::make_unique<RenoCC>(mss, initial_cwnd_segments,
                                  initial_ssthresh);
}

}  // namespace rv::transport
