// Per-host transport demultiplexer.
//
// One TransportMux is installed as a host node's local packet sink. Sockets
// bind either a full 4-tuple (connected TCP) or a wildcard local port (UDP
// sockets, TCP listeners); delivery prefers the most specific match.
#pragma once

#include <functional>
#include <map>
#include <tuple>

#include "net/address.h"
#include "net/network.h"
#include "net/packet.h"

namespace rv::transport {

// Receives packets delivered by the mux.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void on_packet(net::Packet packet) = 0;
};

class TransportMux {
 public:
  // Installs itself as `node`'s local sink; must outlive all traffic to it.
  TransportMux(net::Network& network, net::NodeId node);

  net::NodeId node_id() const { return node_; }
  net::Network& network() { return network_; }
  sim::Simulator& simulator() { return network_.simulator(); }

  // Wildcard binding: all packets to (proto, local port).
  void bind(net::Protocol proto, net::Port local_port, PacketSink* sink);
  void unbind(net::Protocol proto, net::Port local_port);

  // Connected binding: packets to (proto, local port) from a specific remote
  // endpoint. Takes precedence over a wildcard on the same port.
  void bind_connected(net::Protocol proto, net::Port local_port,
                      net::Endpoint remote, PacketSink* sink);
  void unbind_connected(net::Protocol proto, net::Port local_port,
                        net::Endpoint remote);

  // Next unused ephemeral port.
  net::Port allocate_port();

  // Stamps the source node and transmits.
  void send(net::Packet packet);

  std::uint64_t unmatched_packets() const { return unmatched_; }

 private:
  void deliver(net::Packet packet);

  using WildcardKey = std::pair<net::Protocol, net::Port>;
  using ConnectedKey =
      std::tuple<net::Protocol, net::Port, net::NodeId, net::Port>;

  net::Network& network_;
  net::NodeId node_;
  std::map<WildcardKey, PacketSink*> wildcard_;
  std::map<ConnectedKey, PacketSink*> connected_;
  net::Port next_ephemeral_ = 49152;
  std::uint64_t unmatched_ = 0;
};

}  // namespace rv::transport
