// Application-layer congestion control for UDP streaming.
//
// RealSystem's RDT transport is proprietary; the paper infers from Fig 18
// that RealVideo-over-UDP adapts its rate to congestion "comparable to TCP"
// though "perhaps not quite TCP-friendly". We implement the two standard
// mechanisms of the period:
//  - AimdRateController: additive-increase / multiplicative-decrease driven
//    by receiver loss reports (the RealSystem-style adaptation).
//  - TfrcController: TCP-throughput-equation control [FHPW00], the
//    "TCP-friendly" comparator the paper cites.
#pragma once

#include <cstdint>
#include <memory>

#include "util/units.h"

namespace rv::transport {

// Receiver report for one feedback interval.
struct FeedbackReport {
  double loss_fraction = 0.0;     // lost / expected over the interval
  BitsPerSec receive_rate = 0.0;  // application goodput over the interval
  double rtt_seconds = 0.0;       // estimated round-trip time
  SimTime interval = 0;           // report interval length
};

class RateController {
 public:
  virtual ~RateController() = default;
  virtual void on_feedback(const FeedbackReport& report) = 0;
  // The rate the sender may currently use.
  virtual BitsPerSec allowed_rate() const = 0;
  virtual const char* name() const = 0;
};

struct AimdConfig {
  BitsPerSec initial_rate = kbps(100);
  BitsPerSec min_rate = kbps(8);
  BitsPerSec max_rate = mbps(2);
  double loss_threshold = 0.02;   // reports above this count as congestion
  double decrease_factor = 0.55;
  BitsPerSec increase_per_report = kbps(6);
};

class AimdRateController final : public RateController {
 public:
  explicit AimdRateController(const AimdConfig& config);
  void on_feedback(const FeedbackReport& report) override;
  BitsPerSec allowed_rate() const override { return rate_; }
  const char* name() const override { return "aimd"; }

 private:
  AimdConfig config_;
  BitsPerSec rate_;
};

struct TfrcConfig {
  BitsPerSec initial_rate = kbps(100);
  BitsPerSec min_rate = kbps(8);
  BitsPerSec max_rate = mbps(2);
  std::int32_t segment_bytes = 1000;
  double loss_ewma = 0.25;  // weight of the newest loss sample
};

class TfrcController final : public RateController {
 public:
  explicit TfrcController(const TfrcConfig& config);
  void on_feedback(const FeedbackReport& report) override;
  BitsPerSec allowed_rate() const override { return rate_; }
  const char* name() const override { return "tfrc"; }

  double smoothed_loss() const { return loss_; }

 private:
  TfrcConfig config_;
  BitsPerSec rate_;
  double loss_ = 0.0;
  bool seen_loss_ = false;
};

// The TCP throughput equation of Padhye et al., as used by TFRC [FHPW00]:
// X = s / (R*sqrt(2p/3) + t_RTO * (3*sqrt(3p/8)) * p * (1 + 32 p^2))
// with t_RTO = 4R. Returns bits/sec.
BitsPerSec tcp_friendly_rate(std::int32_t segment_bytes, double rtt_seconds,
                             double loss_rate);

// A fixed-rate "controller": the unresponsive-UDP baseline the paper worries
// about (useful for the ablation benches).
class FixedRateController final : public RateController {
 public:
  explicit FixedRateController(BitsPerSec rate) : rate_(rate) {}
  void on_feedback(const FeedbackReport&) override {}
  BitsPerSec allowed_rate() const override { return rate_; }
  const char* name() const override { return "fixed"; }

 private:
  BitsPerSec rate_;
};

}  // namespace rv::transport
