#include "transport/mux.h"

#include <utility>

#include "util/check.h"

namespace rv::transport {

TransportMux::TransportMux(net::Network& network, net::NodeId node)
    : network_(network), node_(node) {
  network_.node(node_).set_local_sink(
      [this](net::Packet p) { deliver(std::move(p)); });
}

void TransportMux::bind(net::Protocol proto, net::Port local_port,
                        PacketSink* sink) {
  RV_CHECK(sink != nullptr);
  const auto [it, inserted] =
      wildcard_.insert({{proto, local_port}, sink});
  RV_CHECK(inserted) << "port already bound: " << local_port;
  (void)it;
}

void TransportMux::unbind(net::Protocol proto, net::Port local_port) {
  wildcard_.erase({proto, local_port});
}

void TransportMux::bind_connected(net::Protocol proto, net::Port local_port,
                                  net::Endpoint remote, PacketSink* sink) {
  RV_CHECK(sink != nullptr);
  const auto [it, inserted] = connected_.insert(
      {{proto, local_port, remote.node, remote.port}, sink});
  RV_CHECK(inserted) << "connected tuple already bound";
  (void)it;
}

void TransportMux::unbind_connected(net::Protocol proto,
                                    net::Port local_port,
                                    net::Endpoint remote) {
  connected_.erase({proto, local_port, remote.node, remote.port});
}

net::Port TransportMux::allocate_port() {
  for (int attempts = 0; attempts < 16384; ++attempts) {
    const net::Port p = next_ephemeral_++;
    if (next_ephemeral_ == 0) next_ephemeral_ = 49152;
    if (wildcard_.count({net::Protocol::kTcp, p}) == 0 &&
        wildcard_.count({net::Protocol::kUdp, p}) == 0) {
      return p;
    }
  }
  RV_CHECK(false) << "ephemeral ports exhausted";
  return 0;
}

void TransportMux::send(net::Packet packet) {
  packet.src = node_;
  network_.send(std::move(packet));
}

void TransportMux::deliver(net::Packet packet) {
  const auto cit = connected_.find(
      {packet.proto, packet.dst_port, packet.src, packet.src_port});
  if (cit != connected_.end()) {
    cit->second->on_packet(std::move(packet));
    return;
  }
  const auto wit = wildcard_.find({packet.proto, packet.dst_port});
  if (wit != wildcard_.end()) {
    wit->second->on_packet(std::move(packet));
    return;
  }
  ++unmatched_;  // cross-traffic sinks and closed ports
}

}  // namespace rv::transport
