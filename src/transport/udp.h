// UDP datagram socket over the simulated network.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "net/packet.h"
#include "transport/mux.h"

namespace rv::transport {

class UdpSocket : public PacketSink {
 public:
  // Binds `port`, or an ephemeral port when 0.
  UdpSocket(TransportMux& mux, net::Port port = 0);
  ~UdpSocket() override;

  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  net::Port local_port() const { return port_; }
  net::Endpoint local_endpoint() const { return {mux_.node_id(), port_}; }

  using DatagramCallback = std::function<void(
      net::Endpoint from, std::shared_ptr<const net::PayloadMeta> meta,
      std::int32_t payload_bytes)>;
  void set_on_datagram(DatagramCallback cb) { on_datagram_ = std::move(cb); }

  // Sends `payload_bytes` of application data (+ UDP/IP header overhead).
  void send_to(net::Endpoint to, std::int32_t payload_bytes,
               std::shared_ptr<const net::PayloadMeta> meta);

  std::uint64_t datagrams_sent() const { return sent_; }
  std::uint64_t datagrams_received() const { return received_; }

  // PacketSink:
  void on_packet(net::Packet packet) override;

 private:
  TransportMux& mux_;
  net::Port port_;
  DatagramCallback on_datagram_;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
};

}  // namespace rv::transport
