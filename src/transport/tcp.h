// TCP over the simulated network.
//
// Full-duplex byte-stream connection with:
//  - three-way handshake (SYN / SYN-ACK / ACK) with retry timers
//  - MSS segmentation, cumulative ACKs, out-of-order reassembly
//  - 3-dupACK fast retransmit and NewReno fast recovery with partial-ACK
//    retransmission; the congestion window itself is owned by a pluggable
//    CongestionControl backend (Reno / CUBIC / BBR, congestion_control.h)
//  - Jacobson/Karn RTT estimation and exponential RTO backoff
//  - receiver-advertised-window flow control
//  - FIN-based close
//
// Applications write *chunks* (e.g. a packetised video frame per write); the
// receiver re-frames the byte stream and fires one callback per chunk, in
// order, exactly once — the framing survives loss, reordering and
// retransmission because chunk boundaries ride on the segments that carry
// the chunk's final byte.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "net/packet.h"
#include "transport/congestion_control.h"
#include "transport/mux.h"
#include "util/units.h"

namespace rv::transport {

struct TcpConfig {
  std::int32_t mss = 1000;                    // max payload per segment
  std::int64_t recv_window = 256 * 1024;      // advertised window (bytes)
  std::int32_t initial_cwnd_segments = 2;
  // Cap on the slow-start phase (RFC 2581 allows an arbitrary initial
  // ssthresh; 64 KB is what most 2001-era stacks used). Prevents a massive
  // burst-loss overshoot on the first bandwidth probe.
  std::int64_t initial_ssthresh = 64 * 1024;
  SimTime min_rto = msec(200);
  SimTime initial_rto = sec(3);
  SimTime max_rto = sec(60);
  // Max segments emitted back-to-back per send opportunity; a window
  // opening wider than this is drained via short pacing timers instead of
  // one line-rate burst (NS-2 Reno's "maxburst", prevents post-recovery
  // bursts from overflowing small queues).
  int max_burst_segments = 6;
  // RFC 2018 selective acknowledgements: the receiver reports out-of-order
  // blocks and the sender runs scoreboard-based loss recovery (retransmits
  // every hole, one per ACK, instead of NewReno's one-hole-per-RTT). Off by
  // default: the study models RealSystem-era stacks conservatively.
  bool sack_enabled = false;
  // Congestion-control backend (see congestion_control.h). kReno reproduces
  // the historical inline NewReno logic byte-for-byte and is the study
  // default; kCubic / kBbr re-run the paper's comparisons under modern CC.
  CcAlgorithm cc = CcAlgorithm::kReno;
};

struct TcpStats {
  std::uint64_t segments_sent = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t bytes_acked = 0;      // sender side
  std::uint64_t bytes_delivered = 0;  // receiver side, in-order app bytes
  std::uint64_t chunks_delivered = 0;
  std::uint64_t recovery_enters = 0;  // fast-recovery episodes entered
};

class TcpConnection : public PacketSink {
 public:
  using ChunkCallback =
      std::function<void(std::shared_ptr<const net::PayloadMeta>,
                         std::int64_t chunk_bytes)>;

  TcpConnection(TransportMux& mux, TcpConfig config);
  ~TcpConnection() override;

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  // Active open: binds an ephemeral local port and starts the handshake.
  void connect(net::Endpoint remote);

  void set_on_established(std::function<void()> cb) {
    on_established_ = std::move(cb);
  }
  void set_on_chunk(ChunkCallback cb) { on_chunk_ = std::move(cb); }
  void set_on_closed(std::function<void()> cb) { on_closed_ = std::move(cb); }

  // Queues an application chunk of `bytes` (sent as soon as the window
  // allows). `meta` is delivered to the peer with the chunk.
  void send_chunk(std::int64_t bytes,
                  std::shared_ptr<const net::PayloadMeta> meta);

  // Graceful close: FIN is sent after all queued data.
  void close();

  bool established() const { return state_ == State::kEstablished; }
  bool closed() const { return state_ == State::kClosed; }
  // True once a close is underway (FIN pending/sent) or done: writes are no
  // longer legal even though the state may still read as established.
  bool closing() const {
    return fin_pending_ || fin_sent_ || state_ == State::kClosed;
  }
  // Application bytes accepted but not yet cumulatively acknowledged.
  std::int64_t backlog_bytes() const {
    return static_cast<std::int64_t>(app_write_offset_ - snd_una_);
  }
  double smoothed_rtt_seconds() const { return srtt_sec_; }
  double cwnd_bytes() const { return cc_->cwnd(); }
  double ssthresh_bytes() const { return cc_->ssthresh(); }
  // Effective pacing rate in bytes/sec: the backend's hint when it has one,
  // else the historical cwnd-per-srtt rate the burst pacer uses.
  double pacing_rate_bps() const {
    const double hint = cc_->pacing_rate(srtt_sec_);
    return hint > 0.0 ? hint : cc_->cwnd() / std::max(srtt_sec_, 0.010);
  }
  // Backend state as a small integer (BbrCC::State; 0 for Reno/CUBIC).
  int cc_state() const { return cc_->state_code(); }
  const char* cc_name() const { return cc_->name(); }
  std::int64_t flight_bytes() const { return flight_size(); }
  bool in_fast_recovery() const { return in_recovery_; }
  SimTime current_rto() const { return rto_; }
  const TcpStats& stats() const { return stats_; }
  net::Endpoint local_endpoint() const { return {mux_.node_id(), local_port_}; }
  net::Endpoint remote_endpoint() const { return remote_; }

  // PacketSink:
  void on_packet(net::Packet packet) override;

 private:
  friend class TcpListener;

  enum class State {
    kIdle,
    kSynSent,
    kSynReceived,
    kEstablished,
    kFinWait,    // our FIN sent, awaiting its ACK
    kClosed,
  };

  struct Segment {
    std::int32_t len = 0;
    SimTime sent_at = 0;
    // Connection-wide delivered_bytes_ when first sent: anchors BBR-style
    // delivery-rate samples (delivered-since-send over time-since-send) so
    // recovery catch-up ACKs cannot fabricate bandwidth.
    std::uint64_t delivered_at_send = 0;
    bool retransmitted = false;
    bool fin = false;
    bool sacked = false;            // SACK scoreboard
    bool retx_this_recovery = false;
    bool app_limited = false;       // send drained the app backlog
  };

  // Passive-open construction used by TcpListener.
  void accept_from(net::Port local_port, net::Endpoint remote,
                   const net::TcpHeader& syn);

  void send_segment(std::uint64_t seq, const Segment& seg, bool is_retx);
  void send_control(bool syn, bool fin_unused = false);
  void send_pure_ack();
  void try_send();
  void maybe_send_fin();

  void retry_syn();
  void handle_handshake(const net::Packet& packet);
  void handle_ack(const net::Packet& packet);
  void handle_data(const net::Packet& packet);

  void enter_established();
  // Every state change funnels through here so the transition lands in the
  // play's trace (obs::Code::kTcpState).
  void set_state(State next);
  void apply_sack_blocks(const net::TcpHeader& header);
  // SACK pipe estimate and hole retransmission during recovery.
  std::int64_t sack_pipe() const;
  bool retransmit_next_sack_hole();
  void rescue_lost_retransmission();
  // RFC 6675 DupThresh-style reordering margin: a segment is deemed lost
  // only once the SACK frontier is this many bytes past its end.
  std::uint64_t sack_reorder_margin() const {
    return 2 * static_cast<std::uint64_t>(config_.mss);
  }
  void sack_recovery_send();
  void on_rto();
  void arm_rto();
  void disarm_rto();
  // Feeds the Jacobson/Karn estimator (always) and the congestion-control
  // backend (only when `feed_cc`: samples re-measured after an RTO go-back
  // are ambiguous — an ACK elicited by a pre-timeout copy still in flight
  // can look like a ~one-way-delay RTT and would poison a model-based
  // backend's min-RTT filter for a full window).
  void update_rtt(SimTime sample, bool feed_cc);
  // Feeds the backend one delivery-rate sample for a segment the receiver
  // just reported (cumulative ACK or first SACK): delivered-since-send over
  // time-since-send. Skips retransmitted segments (ambiguous send time) and
  // Karn-ambiguous sequence ranges. Sampling at SACK time keeps the bw
  // filter fed through recovery episodes, which is what lets a model-based
  // backend hold its estimate while loss recovery is in progress.
  void sample_delivery_rate(const Segment& seg, std::uint64_t seg_end);
  std::int64_t flight_size() const {
    return static_cast<std::int64_t>(snd_nxt_ - snd_una_);
  }
  void finish_close();

  TransportMux& mux_;
  TcpConfig config_;
  State state_ = State::kIdle;
  net::Port local_port_ = 0;
  net::Endpoint remote_;
  bool bound_connected_ = false;

  // --- sender ---
  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;
  std::uint64_t app_write_offset_ = 0;
  std::map<std::uint64_t, Segment> unacked_;           // seq -> segment
  std::map<std::uint64_t, std::shared_ptr<const net::PayloadMeta>>
      outgoing_chunks_;                                // end offset -> meta
  std::unique_ptr<CongestionControl> cc_;              // owns cwnd/ssthresh
  std::int64_t peer_window_ = 64 * 1024;
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recovery_point_ = 0;
  // Bytes below this were in flight at an RTO go-back; their re-sends carry
  // Karn-ambiguous timing (see update_rtt).
  std::uint64_t karn_ambiguous_until_ = 0;
  // Bytes known to have reached the receiver: cumulative ACK advances plus
  // bytes first reported via SACK. Unlike bytes_acked this grows smoothly
  // through a recovery episode — a healing cumulative jump releases bytes
  // that were already credited when SACKed — which is what makes it the
  // right numerator for delivery-rate samples.
  std::uint64_t delivered_bytes_ = 0;
  std::uint64_t highest_sacked_ = 0;  // SACK/FACK frontier
  bool fin_pending_ = false;
  bool fin_sent_ = false;

  // --- RTT / RTO ---
  double srtt_sec_ = 0.0;
  double rttvar_sec_ = 0.0;
  bool have_rtt_ = false;
  SimTime rto_ = 0;
  sim::EventId rto_event_ = sim::kInvalidEventId;
  sim::EventId pacing_event_ = sim::kInvalidEventId;

  // --- receiver ---
  std::uint64_t rcv_nxt_ = 0;
  std::map<std::uint64_t, std::int32_t> out_of_order_;  // seq -> len
  std::map<std::uint64_t, std::shared_ptr<const net::PayloadMeta>>
      pending_chunks_;                                  // end offset -> meta
  std::uint64_t last_chunk_delivered_end_ = 0;
  // Recent out-of-order arrivals, most recent first (RFC 2018 recency rule:
  // the SACK option leads with the block containing the newest segment and
  // repeats the most recently reported blocks — see send_pure_ack).
  std::vector<std::uint64_t> recent_oob_seqs_;
  bool peer_fin_received_ = false;

  // --- handshake ---
  sim::EventId handshake_event_ = sim::kInvalidEventId;
  int handshake_tries_ = 0;

  TcpStats stats_;
  std::function<void()> on_established_;
  ChunkCallback on_chunk_;
  std::function<void()> on_closed_;
};

// Accepts incoming connections on a local port; one TcpConnection is created
// per remote endpoint's SYN.
class TcpListener : public PacketSink {
 public:
  using AcceptCallback =
      std::function<void(std::unique_ptr<TcpConnection>)>;

  TcpListener(TransportMux& mux, net::Port port, TcpConfig config,
              AcceptCallback on_accept);
  ~TcpListener() override;

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  void on_packet(net::Packet packet) override;

 private:
  TransportMux& mux_;
  net::Port port_;
  TcpConfig config_;
  AcceptCallback on_accept_;
};

}  // namespace rv::transport
