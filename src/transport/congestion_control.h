// Pluggable congestion control for the simulated TCP sender.
//
// TcpConnection owns the connection machinery (sequencing, SACK scoreboard,
// retransmission, RTO timers) and forwards congestion-relevant events to a
// CongestionControl object, which owns the window: cwnd, ssthresh and an
// optional pacing-rate hint. Three backends:
//
//  - RenoCC:  verbatim extraction of the historical inline NewReno logic.
//    Every arithmetic expression and its evaluation order is preserved, so a
//    study run with the Reno backend is byte-identical to the pre-refactor
//    code (pinned by the study-cache md5 gate and tcp_differential_test).
//  - CubicCC: RFC 8312. Window growth follows the cubic curve
//    W(t) = C*(t-K)^3 + W_max anchored at the last loss event, with the
//    TCP-friendly region (never below the Reno-equivalent estimate) and
//    fast convergence on consecutive losses.
//  - BbrCC:   model-based, after BBRv1. Windowed max-bandwidth and min-RTT
//    filters feed a BDP estimate; a startup/drain/probe-bw/probe-rtt state
//    machine driven off the sim clock sets cwnd and pacing gains. Loss does
//    not collapse the model: recovery episodes leave cwnd at the BDP target,
//    which is what produces BBR's measured robustness under random loss.
//
// The interface is transport-agnostic on purpose (events in, window out) so
// a later QUIC-flavored stream transport can reuse the backends unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "util/units.h"

namespace rv::transport {

enum class CcAlgorithm : std::uint8_t {
  kReno = 0,
  kCubic = 1,
  kBbr = 2,
};

// Strict parser for the --cc flag: exact lowercase names only.
std::optional<CcAlgorithm> parse_cc_algorithm(std::string_view text);
const char* cc_algorithm_name(CcAlgorithm algorithm);

// One cumulative ACK that advanced snd_una, as seen by the sender.
struct CcAck {
  SimTime now = 0;
  std::int64_t newly_acked = 0;   // bytes this ACK newly covered
  std::uint64_t snd_una = 0;      // after the advance
  std::uint64_t snd_nxt = 0;
  std::int64_t flight = 0;        // snd_nxt - snd_una after the advance
  bool in_recovery = false;       // recovery state when the ACK arrived
};

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  // A cumulative ACK advanced snd_una (fires for every such ACK, including
  // those that end or fall inside fast recovery — ack.in_recovery tells the
  // backend whether loss-based growth is suppressed).
  virtual void on_ack(const CcAck& ack) = 0;
  // A valid RTT sample (Karn-filtered by the caller).
  virtual void on_rtt_sample(double rtt_sec, SimTime now) = 0;
  // A delivery-rate sample: bytes cumulatively acked between a segment's
  // send and its ACK, divided by that interval (BBR-style, anchored at
  // send time so recovery catch-up ACKs cannot inflate it; Karn-filtered
  // like on_rtt_sample). `app_limited` marks samples taken while the
  // sender had no backlog — they measure the application, not the path.
  // `delivered_at_send` / `delivered_now` are the connection's cumulative
  // delivered-byte counter at the segment's send and at this sample: they
  // carry BBR's packet-timed round clock, which keeps counting real data
  // round trips even when snd_nxt runs far ahead of delivery.
  virtual void on_delivery_rate_sample(double /*bytes_per_sec*/,
                                       bool /*app_limited*/,
                                       std::uint64_t /*delivered_at_send*/,
                                       std::uint64_t /*delivered_now*/,
                                       SimTime /*now*/) {}
  // Third duplicate ACK: the connection enters fast recovery. `flight` is
  // the in-flight byte count at detection time.
  virtual void on_recovery_enter(std::int64_t flight, SimTime now) = 0;
  // A full ACK covered the recovery point; recovery is over.
  virtual void on_recovery_exit(SimTime now) = 0;
  // Retransmission timeout: everything in flight is presumed lost.
  virtual void on_rto(std::int64_t flight, SimTime now) = 0;

  // Current congestion window / slow-start threshold in bytes.
  virtual double cwnd() const = 0;
  virtual double ssthresh() const = 0;
  // Pacing hint in bytes/sec. <= 0 means "no opinion": the connection falls
  // back to its historical cwnd-per-srtt pacing (keeps Reno byte-identical).
  virtual double pacing_rate(double /*srtt_sec*/) const { return 0.0; }
  // Small integer describing the backend's internal state (BBR phase; 0 for
  // window-based backends). Exported as a telemetry column.
  virtual int state_code() const { return 0; }
  virtual const char* name() const = 0;
};

// --- Reno -----------------------------------------------------------------

class RenoCC : public CongestionControl {
 public:
  RenoCC(std::int32_t mss, std::int32_t initial_cwnd_segments,
         std::int64_t initial_ssthresh);

  void on_ack(const CcAck& ack) override;
  void on_rtt_sample(double /*rtt_sec*/, SimTime /*now*/) override {}
  void on_recovery_enter(std::int64_t flight, SimTime now) override;
  void on_recovery_exit(SimTime now) override;
  void on_rto(std::int64_t flight, SimTime now) override;

  double cwnd() const override { return cwnd_; }
  double ssthresh() const override { return ssthresh_; }
  const char* name() const override { return "reno"; }

 private:
  const std::int32_t mss_;
  double cwnd_ = 0.0;
  double ssthresh_ = 1e12;
};

// --- CUBIC (RFC 8312) -----------------------------------------------------

class CubicCC : public CongestionControl {
 public:
  CubicCC(std::int32_t mss, std::int32_t initial_cwnd_segments,
          std::int64_t initial_ssthresh);

  void on_ack(const CcAck& ack) override;
  void on_rtt_sample(double rtt_sec, SimTime now) override;
  void on_recovery_enter(std::int64_t flight, SimTime now) override;
  void on_recovery_exit(SimTime now) override;
  void on_rto(std::int64_t flight, SimTime now) override;

  double cwnd() const override { return cwnd_; }
  double ssthresh() const override { return ssthresh_; }
  const char* name() const override { return "cubic"; }

  // RFC 8312 constants, exposed for the closed-form property tests.
  static constexpr double kC = 0.4;       // cubic scaling (segments/sec^3)
  static constexpr double kBeta = 0.7;    // multiplicative decrease factor
  double w_max_segments() const { return w_max_; }
  double k_seconds() const { return k_; }
  // Closed-form curve and TCP-friendly estimate (in segments) at elapsed
  // time t since the current epoch started.
  double w_cubic(double t_sec) const;
  double w_est(double t_sec) const;

 private:
  void on_loss_event(SimTime now);
  void start_epoch(SimTime now);

  const std::int32_t mss_;
  double cwnd_ = 0.0;
  double ssthresh_ = 1e12;
  double srtt_sec_ = 0.0;      // latest smoothed-ish sample for w_est
  double w_max_ = 0.0;         // segments at the last loss event
  double k_ = 0.0;             // seconds from epoch start to the plateau
  SimTime epoch_start_ = -1;   // -1: no congestion-avoidance epoch active
};

// --- BBR (model-based, after BBRv1) ---------------------------------------

class BbrCC : public CongestionControl {
 public:
  enum class State : std::uint8_t {
    kStartup = 0,
    kDrain = 1,
    kProbeBw = 2,
    kProbeRtt = 3,
  };

  BbrCC(std::int32_t mss, std::int32_t initial_cwnd_segments);

  void on_ack(const CcAck& ack) override;
  void on_rtt_sample(double rtt_sec, SimTime now) override;
  void on_delivery_rate_sample(double bytes_per_sec, bool app_limited,
                               std::uint64_t delivered_at_send,
                               std::uint64_t delivered_now,
                               SimTime now) override;
  void on_recovery_enter(std::int64_t flight, SimTime now) override;
  void on_recovery_exit(SimTime now) override;
  void on_rto(std::int64_t flight, SimTime now) override;

  double cwnd() const override { return cwnd_; }
  double ssthresh() const override { return ssthresh_; }
  double pacing_rate(double srtt_sec) const override;
  int state_code() const override { return static_cast<int>(state_); }
  const char* name() const override { return "bbr"; }

  // Introspection for the state-machine property tests.
  State state() const { return state_; }
  double pacing_gain() const { return pacing_gain_; }
  double max_bw_bytes_per_sec() const { return max_bw(); }
  double min_rtt_sec() const { return min_rtt_sec_; }
  bool filled_pipe() const { return filled_pipe_; }
  double bdp_bytes() const;

  static constexpr double kHighGain = 2.885;  // 2/ln(2): startup gain
  static constexpr int kGainCycleLen = 8;
  static constexpr SimTime kMinRttWindow = sec(10);
  static constexpr SimTime kProbeRttDuration = msec(200);
  static constexpr int kBwWindowRounds = 10;

 private:
  double max_bw() const;
  void check_full_pipe();
  void update_state(const CcAck& ack);
  void update_gains();
  void update_cwnd(const CcAck& ack);
  void set_state(State next, SimTime now);

  const std::int32_t mss_;
  double cwnd_ = 0.0;
  double ssthresh_ = 1e12;  // BBR ignores it; kept for telemetry symmetry

  State state_ = State::kStartup;
  double pacing_gain_ = kHighGain;
  double cwnd_gain_ = kHighGain;

  // Packet-timed round trips (BBR's delivered-counter clock): a round ends
  // when a sample's segment was sent at or after the delivered level marked
  // when the current round opened. Rounds therefore advance only while data
  // is actually being delivered and sampled — sequence bloat during deep
  // recovery cannot stretch them, and Karn-gated droughts cannot age the
  // bandwidth filter through silence.
  std::uint64_t next_round_delivered_ = 0;
  std::uint64_t round_count_ = 0;

  // Windowed max filter over per-ACK delivery-rate samples, aged by round:
  // slot r%N holds the best sample seen during round r (bytes/sec).
  double bw_window_[kBwWindowRounds] = {};
  double min_rtt_sec_ = 0.0;
  SimTime min_rtt_stamp_ = 0;
  bool have_min_rtt_ = false;

  // Startup full-pipe detection: bandwidth plateau over 3 rounds.
  double full_bw_ = 0.0;
  int full_bw_count_ = 0;
  bool filled_pipe_ = false;

  // probe-bw pacing-gain cycle.
  int cycle_index_ = 0;
  SimTime cycle_stamp_ = 0;

  // probe-rtt bookkeeping.
  SimTime probe_rtt_done_ = 0;
  double prior_cwnd_ = 0.0;
};

// Builds the backend selected by `algorithm`.
std::unique_ptr<CongestionControl> make_congestion_control(
    CcAlgorithm algorithm, std::int32_t mss,
    std::int32_t initial_cwnd_segments, std::int64_t initial_ssthresh);

}  // namespace rv::transport
