#include "transport/udp.h"

#include <utility>

#include "util/check.h"

namespace rv::transport {

UdpSocket::UdpSocket(TransportMux& mux, net::Port port)
    : mux_(mux), port_(port == 0 ? mux.allocate_port() : port) {
  mux_.bind(net::Protocol::kUdp, port_, this);
}

UdpSocket::~UdpSocket() { mux_.unbind(net::Protocol::kUdp, port_); }

void UdpSocket::send_to(net::Endpoint to, std::int32_t payload_bytes,
                        std::shared_ptr<const net::PayloadMeta> meta) {
  RV_CHECK_GE(payload_bytes, 0);
  net::Packet p;
  p.dst = to.node;
  p.dst_port = to.port;
  p.src_port = port_;
  p.proto = net::Protocol::kUdp;
  p.size_bytes = net::kUdpHeaderBytes + payload_bytes;
  p.meta = std::move(meta);
  ++sent_;
  mux_.send(std::move(p));
}

void UdpSocket::on_packet(net::Packet packet) {
  ++received_;
  if (on_datagram_) {
    on_datagram_({packet.src, packet.src_port}, packet.meta,
                 packet.payload_bytes());
  }
}

}  // namespace rv::transport
