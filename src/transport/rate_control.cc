#include "transport/rate_control.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace rv::transport {

AimdRateController::AimdRateController(const AimdConfig& config)
    : config_(config), rate_(config.initial_rate) {
  RV_CHECK_GT(config.min_rate, 0.0);
  RV_CHECK_GE(config.max_rate, config.min_rate);
}

void AimdRateController::on_feedback(const FeedbackReport& report) {
  if (report.loss_fraction > config_.loss_threshold) {
    rate_ = std::max(rate_ * config_.decrease_factor, config_.min_rate);
  } else {
    rate_ = std::min(rate_ + config_.increase_per_report, config_.max_rate);
  }
}

TfrcController::TfrcController(const TfrcConfig& config)
    : config_(config), rate_(config.initial_rate) {
  RV_CHECK_GT(config.segment_bytes, 0);
}

void TfrcController::on_feedback(const FeedbackReport& report) {
  if (report.loss_fraction > 0.0) seen_loss_ = true;
  loss_ = seen_loss_
              ? (1.0 - config_.loss_ewma) * loss_ +
                    config_.loss_ewma * report.loss_fraction
              : 0.0;
  const double rtt = std::max(report.rtt_seconds, 1e-3);
  if (loss_ < 1e-6) {
    // No loss observed yet: probe upward, bounded by twice the rate the
    // receiver actually saw (standard TFRC slow-start bound).
    const BitsPerSec bound =
        report.receive_rate > 0 ? 2.0 * report.receive_rate : rate_ * 2.0;
    rate_ = std::min({rate_ * 1.5, bound, config_.max_rate});
    rate_ = std::max(rate_, config_.min_rate);
    return;
  }
  const BitsPerSec x = tcp_friendly_rate(config_.segment_bytes, rtt, loss_);
  // TFRC also bounds the send rate by twice the receive rate.
  const BitsPerSec bound =
      report.receive_rate > 0 ? 2.0 * report.receive_rate : x;
  rate_ = std::clamp(std::min(x, bound), config_.min_rate, config_.max_rate);
}

BitsPerSec tcp_friendly_rate(std::int32_t segment_bytes, double rtt_seconds,
                             double loss_rate) {
  RV_CHECK_GT(segment_bytes, 0);
  RV_CHECK_GT(rtt_seconds, 0.0);
  const double p = std::clamp(loss_rate, 1e-8, 1.0);
  const double r = rtt_seconds;
  const double t_rto = 4.0 * r;
  const double denom =
      r * std::sqrt(2.0 * p / 3.0) +
      t_rto * (3.0 * std::sqrt(3.0 * p / 8.0)) * p * (1.0 + 32.0 * p * p);
  const double bytes_per_sec = static_cast<double>(segment_bytes) / denom;
  return bytes_per_sec * 8.0;
}

}  // namespace rv::transport
