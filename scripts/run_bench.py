#!/usr/bin/env python3
"""Benchmark harness for the simulation fast path.

Runs the Google-benchmark microbench binary several times, keeps the
per-benchmark minimum (the least-noise estimator on shared/virtualised
hardware), derives the headline metrics (ns/event, packets/sec), and
optionally times a full `realdata summary` study run at a fixed seed,
fingerprinting the result cache so byte-identity across kernel changes is
checked, not assumed.

Modes:
  --update   rewrite the `after` numbers in BENCH_sim.json (preserving the
             committed `before` seed-kernel numbers and study fingerprint)
  --check    re-measure and fail (exit 1) if any tracked benchmark regressed
             more than --tolerance (default 20%) versus the committed
             `after` numbers, after rescaling by the calibration benchmark
             (BM_CdfBuildAndQuery — pure arithmetic, untouched by kernel
             work) so a slower CI machine does not read as a regression.
  --study    also run the full study (slow: minutes) and record wall time,
             peak RSS (the child's ru_maxrss), and the cache fingerprint;
             --check gates the RSS against the committed number under
             --rss-tolerance.
  --threads-sweep 1,2,4,8
             with --study: run the full study once per thread count, record
             the scaling curve under study.scaling in BENCH_sim.json, and
             fail if the cache md5 differs across thread counts (the
             per-play executor must be byte-identical at any width).
  --determinism-smoke
             cheap CI gate: run a --smoke-scale mini-study at 1 and 2
             threads and fail if the cache md5s differ. Needs only the
             realdata binary; skips the microbenches entirely.
  --scaling-smoke
             cheap CI gate for multicore scaling: run a --scaling-scale
             mini-study at 1 and 2 threads (min-of-N walls), fail if the
             md5s differ, and on machines with >= 2 cores fail unless 2
             threads actually beat 1 (--scaling-speedup). Single-core
             runners skip the wall gate explicitly — a scaling number
             measured there would be noise, not signal.
  --obs-overhead-check
             cheap CI gate for the tracing hooks: measure the disabled-hook
             cost (BM_ObsHookDisabled) and fail if the worst-case hook tax
             on the packet-forwarding hot path exceeds --obs-tolerance
             (default 2%). Runs only the three benchmarks it needs.
  --trace-smoke
             cheap CI gate for --trace: run a mini-study with and without
             --trace, validate the emitted Chrome trace JSON, check the
             cache md5 is identical either way, and check that malformed
             numeric flags exit non-zero. Needs only the realdata binary.
  --telemetry-smoke
             cheap CI gate for the time-series sampler: run a mini-study
             with --telemetry --series-csv --trace --profile, validate the
             CSV schema, check the series bytes are identical at 1 and 2
             threads, check the Chrome trace carries "C" counter tracks,
             check the cache md5 is identical with telemetry off/on, and
             check strict telemetry-flag parsing exits non-zero. Needs only
             the realdata binary.
  --cc-smoke
             cheap CI gate for pluggable congestion control: check that
             malformed --cc values exit non-zero, that an explicit
             `--cc reno` mini-study is byte-identical to the default (the
             plug-in seam must not perturb the committed study), and run
             the single-cell bench_ablation_cc --quick grid, asserting BBR
             out-delivers Reno under 5% random loss (the paper-facing
             ordering). Needs the realdata and bench_ablation_cc binaries.
  --cc-grid
             run the full bench_ablation_cc loss x jitter grid (minutes)
             and rewrite the `cc_grid` section of BENCH_sim.json with the
             per-backend goodput/CV cells and tracer rebuffer rates.
  --shard-smoke
             cheap CI gate for multi-process sharding: run a smoke-scale
             campaign once single-process and once as 4 shards, merge the
             shards with rvmerge, and fail unless the merged rollup.bin and
             records.spill are byte-identical to the single-process files.
             Also checks that a gap in the shard sequence is a hard merge
             error, that strict --plays-scale/--shard/--spill-dir/
             --cache-dir parsing exits 2, and that --cache-dir actually
             redirects the study cache. Needs realdata and rvmerge.
  --status-smoke
             cheap CI gate for live observability: check strict
             --status-port/--status-hold-ms/--heartbeat-dir parsing exits 2
             (including an unwritable heartbeat dir), start a smoke-scale
             campaign with --status-port 0, poll /progress until done=true,
             validate /metrics parses as Prometheus text exposition and
             /healthz answers, check the final heartbeat reports done and
             `rvmerge --status` renders it, check a synthesized dead shard
             is reported DEAD with exit 1, and fail unless the campaign
             rollup/spill and the study cache are byte-identical with the
             exporter on and off. Needs realdata and rvmerge.
  --campaign
             run a full campaign (hours at the default --campaign-scale 350
             ~= 1M plays, --campaign-watch 5) and rewrite the `campaign`
             section of BENCH_sim.json with plays/s/core and the campaign
             process's peak RSS — the bounded-memory headline numbers.

With no mode flag it measures and prints, changing nothing.

The --check perf gates only ever compare like with like: microbench numbers
against the committed numbers (calibration-rescaled), and study wall time
against the committed scaling-curve entry for the *same thread count* — a
4-thread run is never judged against an 8-thread baseline. The cache md5 is
thread-invariant by design, so it is compared unconditionally.
"""

import argparse
import hashlib
import json
import os
import re
import shutil
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BENCH = os.path.join(REPO_ROOT, "build", "bench", "bench_microbench")
DEFAULT_CC_BENCH = os.path.join(REPO_ROOT, "build", "bench",
                                "bench_ablation_cc")
DEFAULT_REALDATA = os.path.join(REPO_ROOT, "build", "tools", "realdata")
DEFAULT_RVMERGE = os.path.join(REPO_ROOT, "build", "tools", "rvmerge")
DEFAULT_JSON = os.path.join(REPO_ROOT, "BENCH_sim.json")

# Benchmarks tracked for regressions. BM_CdfBuildAndQuery is the calibration
# reference and is exempt from the regression gate itself.
TRACKED = [
    "BM_SimulatorScheduleRun",
    "BM_SimulatorCancelHeavy",
    "BM_SimulatorTimerChurn",
    "BM_SimulatorTimerChurn/64k",
    "BM_SimulatorWheelCascade",
    "BM_PacketForwardingChain/2",
    "BM_PacketForwardingChain/8",
    "BM_LinkBurstForward/0",
    "BM_LinkBurstForward/1",
    "BM_TcpBulkTransfer",
    "BM_TcpChunkedSegments",
    "BM_FrameScheduleGenerate",
    "BM_PacketizeReassemble",
]
CALIBRATION = "BM_CdfBuildAndQuery"

# Derived headline metrics: benchmark name -> (work items per iteration).
EVENTS_PER_SCHEDULE_RUN = 1000  # events per BM_SimulatorScheduleRun iteration
PACKETS_PER_FORWARD_ITER = 100  # packets per BM_PacketForwardingChain iteration

# Observability-hook accounting for --obs-overhead-check.
# BM_ObsHookDisabled runs this many emit+count pairs per iteration:
HOOK_PAIRS_PER_OBS_ITER = 1000
# BM_PacketForwardingChain/8 forwards 100 packets over 8 hops; each hop-send
# hits one obs::count() hook in net::Link::send. Pricing each call at the
# full emit+count *pair* cost overstates the tax, making the gate an upper
# bound:
HOOK_CALLS_PER_FORWARD_ITER_8 = 800
# The event kernel itself (BM_SimulatorScheduleRun) contains no obs hooks by
# construction — per-play sim_events are counted once per play from the
# simulator's own executed-events tally, not per event.
#
# Telemetry-sampler accounting, same shape: BM_SeriesSampleDisabled runs this
# many sample_if_active guards per iteration against an inactive sampler:
GUARDS_PER_SERIES_ITER = 1000
# The sampler is timer-driven, so hot paths never call it per packet; pricing
# one guard per hop anyway folds the telemetry-off tax into the same upper
# bound the obs hooks are held to:
GUARD_CALLS_PER_FORWARD_ITER_8 = 800
# Process-metrics accounting, same shape again: BM_MetricsDisabled runs this
# many metrics_add hooks per iteration with no registry installed:
METRIC_CALLS_PER_METRICS_ITER = 1000
# Real metrics hooks live in the campaign chunk loop (per chunk, not per
# packet); pricing one call per hop anyway folds the metrics-off tax into
# the same combined <2% upper bound:
METRIC_CALLS_PER_FORWARD_ITER_8 = 800


def run_microbench(binary, repetitions, min_time, bench_filter=None):
    """Runs the bench binary `repetitions` times; returns {name: min_ns}."""
    best = {}
    for rep in range(repetitions):
        with tempfile.NamedTemporaryFile(mode="r", suffix=".json") as out:
            cmd = [
                binary,
                "--benchmark_format=console",
                "--benchmark_out_format=json",
                "--benchmark_out=%s" % out.name,
                "--benchmark_min_time=%g" % min_time,
            ]
            if bench_filter:
                cmd.append("--benchmark_filter=%s" % bench_filter)
            subprocess.run(
                cmd, check=True, stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL)
            data = json.load(open(out.name))
        for b in data.get("benchmarks", []):
            name = b["name"]
            # JSON reports real_time in the benchmark's display unit.
            unit = b.get("time_unit", "ns")
            to_ns = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
            assert unit in to_ns, "%s: unknown time unit %r" % (name, unit)
            ns = float(b["real_time"]) * to_ns[unit]
            if name not in best or ns < best[name]:
                best[name] = ns
        print("  rep %d/%d done" % (rep + 1, repetitions), file=sys.stderr)
    return best


def derive(results):
    d = {}
    if "BM_SimulatorScheduleRun" in results:
        d["event_ns"] = results["BM_SimulatorScheduleRun"] / EVENTS_PER_SCHEDULE_RUN
    if "BM_PacketForwardingChain/8" in results:
        per_packet_ns = results["BM_PacketForwardingChain/8"] / PACKETS_PER_FORWARD_ITER
        d["packets_per_sec"] = 1e9 / per_packet_ns
    return d


def run_traced(cmd, cwd=None, capture=False):
    """Runs cmd to completion; returns (returncode, stdout, peak_rss_kb).

    Peak RSS is the child's ru_maxrss from wait4 — the same number the
    kernel reports in /proc/<pid>/status as VmHWM, in KiB on Linux — so the
    bench harness measures memory the same way the campaign driver does.
    """
    proc = subprocess.Popen(
        cmd, cwd=cwd,
        stdout=subprocess.PIPE if capture else subprocess.DEVNULL,
        stderr=subprocess.DEVNULL)
    out = proc.stdout.read().decode() if capture else ""
    _, status, rusage = os.wait4(proc.pid, 0)
    # Record the exit status on the Popen so its finalizer does not try to
    # reap the already-waited child.
    proc.returncode = os.waitstatus_to_exitcode(status)
    return proc.returncode, out, rusage.ru_maxrss


def run_study(realdata, seed, threads, scale=None):
    """Runs the full study in a scratch dir.

    Returns (wall_s, cache_md5, peak_rss_kb). The study cache lands in
    ./.rv_cache/ under the scratch cwd.
    """
    scratch = tempfile.mkdtemp(prefix="rv_bench_study_")
    try:
        cmd = [realdata, "summary", "--seed", str(seed), "--threads",
               str(threads)]
        if scale is not None:
            cmd += ["--scale", "%g" % scale]
        t0 = time.monotonic()
        rc, _, peak_rss_kb = run_traced(cmd, cwd=scratch)
        if rc != 0:
            raise RuntimeError("realdata summary exited %d" % rc)
        wall = time.monotonic() - t0
        cache_dir = os.path.join(scratch, ".rv_cache")
        caches = sorted(
            f for f in os.listdir(cache_dir) if f.endswith(".cache")
        ) if os.path.isdir(cache_dir) else []
        if len(caches) != 1:
            raise RuntimeError("expected one .cache file, got %r" % caches)
        digest = hashlib.md5(
            open(os.path.join(cache_dir, caches[0]), "rb").read()).hexdigest()
        return wall, digest, peak_rss_kb
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def md5_file(path):
    return hashlib.md5(open(path, "rb").read()).hexdigest()


def study_cache_md5(cwd):
    """md5 of the single study cache file under cwd's default ./.rv_cache."""
    cache_dir = os.path.join(cwd, ".rv_cache")
    caches = (sorted(f for f in os.listdir(cache_dir)
                     if f.endswith(".cache"))
              if os.path.isdir(cache_dir) else [])
    if len(caches) != 1:
        raise RuntimeError("expected one .cache file under %s, got %r" %
                           (cache_dir, caches))
    return md5_file(os.path.join(cache_dir, caches[0]))


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench-binary", default=DEFAULT_BENCH)
    ap.add_argument("--realdata-binary", default=DEFAULT_REALDATA)
    ap.add_argument("--baseline", default=DEFAULT_JSON,
                    help="path to BENCH_sim.json")
    ap.add_argument("--repetitions", type=int, default=5,
                    help="external repetitions; per-benchmark minimum is kept")
    ap.add_argument("--min-time", type=float, default=0.25,
                    help="--benchmark_min_time per repetition (seconds)")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="--check fails on regressions beyond this fraction")
    ap.add_argument("--check", action="store_true")
    ap.add_argument("--update", action="store_true")
    ap.add_argument("--study", action="store_true",
                    help="also run the full study (minutes)")
    ap.add_argument("--threads-sweep", default=None,
                    help="with --study: comma-separated thread counts for "
                         "the scaling curve, e.g. 1,2,4,8")
    ap.add_argument("--determinism-smoke", action="store_true",
                    help="run a mini-study at 1 and 2 threads; fail if the "
                         "cache md5s differ (cheap CI determinism gate)")
    ap.add_argument("--smoke-scale", type=float, default=0.02,
                    help="play_scale for --determinism-smoke/--trace-smoke")
    ap.add_argument("--scaling-smoke", action="store_true",
                    help="run a mini-study at 1 and 2 threads (min of "
                         "--scaling-runs each); fail if the md5s differ, "
                         "and — on multi-core machines only — fail unless "
                         "2 threads beat 1 by --scaling-speedup. On a "
                         "single-core runner the wall gate is skipped (and "
                         "says so): there is nothing to scale onto")
    ap.add_argument("--scaling-scale", type=float, default=0.05,
                    help="play_scale for --scaling-smoke (bigger than "
                         "--smoke-scale so the speedup is measurable)")
    ap.add_argument("--scaling-runs", type=int, default=2,
                    help="runs per thread count for --scaling-smoke and "
                         "--threads-sweep; the minimum wall is kept")
    ap.add_argument("--scaling-speedup", type=float, default=1.15,
                    help="minimum 2-thread speedup --scaling-smoke demands "
                         "when the machine has >= 2 cores")
    ap.add_argument("--obs-overhead-check", action="store_true",
                    help="fail if the disabled tracing hooks cost more than "
                         "--obs-tolerance of the packet-forwarding hot path")
    ap.add_argument("--obs-tolerance", type=float, default=0.02,
                    help="max allowed disabled-hook overhead fraction")
    ap.add_argument("--trace-smoke", action="store_true",
                    help="run a mini-study with --trace; validate the JSON, "
                         "cache-md5 invariance, and strict flag parsing")
    ap.add_argument("--telemetry-smoke", action="store_true",
                    help="run a mini-study with the time-series sampler on; "
                         "validate the series CSV, thread-count byte-"
                         "identity, Chrome counter tracks, cache-md5 "
                         "invariance, and strict flag parsing")
    ap.add_argument("--cc-bench-binary", default=DEFAULT_CC_BENCH)
    ap.add_argument("--cc-smoke", action="store_true",
                    help="validate strict --cc parsing, the --cc reno "
                         "byte-identity invariant, and the quick CC-grid "
                         "ordering (BBR > Reno under random loss)")
    ap.add_argument("--cc-grid", action="store_true",
                    help="run the full CC loss x jitter grid (minutes) and "
                         "rewrite the cc_grid section of BENCH_sim.json")
    ap.add_argument("--rss-tolerance", type=float, default=0.30,
                    help="--check fails if the study's peak RSS exceeds the "
                         "committed number by more than this fraction")
    ap.add_argument("--rvmerge-binary", default=DEFAULT_RVMERGE)
    ap.add_argument("--status-smoke", action="store_true",
                    help="strict status-flag parsing, live /metrics and "
                         "/progress endpoints, heartbeats + rvmerge "
                         "--status, and exporter-on/off byte identity")
    ap.add_argument("--shard-smoke", action="store_true",
                    help="run a smoke-scale campaign single-process and as "
                         "4 merged shards; fail unless the merged rollup "
                         "and spill are byte-identical to the single-"
                         "process files, and check strict campaign/cache "
                         "flag parsing exits 2")
    ap.add_argument("--campaign", action="store_true",
                    help="run a full campaign (hours at --campaign-scale "
                         "350 ~= 1M plays) and rewrite the `campaign` "
                         "section of BENCH_sim.json with plays/s/core and "
                         "peak RSS")
    ap.add_argument("--campaign-scale", type=int, default=350,
                    help="--plays-scale for --campaign (350 ~= 1M plays)")
    ap.add_argument("--campaign-watch", type=float, default=5.0,
                    help="per-play watch duration (seconds) for --campaign")
    ap.add_argument("--seed", type=int, default=2001)
    ap.add_argument("--threads", type=int, default=4)
    args = ap.parse_args()

    if args.determinism_smoke:
        # Needs only the realdata binary: catches per-play executor
        # determinism regressions without the full campaign or the benches.
        if not os.path.exists(args.realdata_binary):
            sys.exit("realdata binary not found: %s (build Release first)" %
                     args.realdata_binary)
        digests = {}
        for threads in (1, 2):
            wall, digest, _ = run_study(args.realdata_binary, args.seed,
                                        threads, scale=args.smoke_scale)
            digests[threads] = digest
            print("smoke threads=%d wall=%.1fs md5=%s" %
                  (threads, wall, digest), file=sys.stderr)
        if digests[1] != digests[2]:
            sys.exit("determinism smoke FAILED: 1-thread md5 %s != 2-thread "
                     "md5 %s (scale=%g seed=%d)" %
                     (digests[1], digests[2], args.smoke_scale, args.seed))
        print("determinism smoke passed: 1- and 2-thread mini-studies are "
              "byte-identical (md5 %s)" % digests[1])
        return

    if args.scaling_smoke:
        if not os.path.exists(args.realdata_binary):
            sys.exit("realdata binary not found: %s (build Release first)" %
                     args.realdata_binary)
        cores = os.cpu_count() or 1
        walls = {}
        digests = {}
        for threads in (1, 2):
            best = None
            for rep in range(max(1, args.scaling_runs)):
                wall, digest, _ = run_study(args.realdata_binary, args.seed,
                                            threads, scale=args.scaling_scale)
                if threads in digests and digests[threads] != digest:
                    sys.exit("scaling smoke FAILED: md5 differs between "
                             "repeat runs at threads=%d (%s vs %s)" %
                             (threads, digests[threads], digest))
                digests[threads] = digest
                best = wall if best is None else min(best, wall)
            walls[threads] = best
            print("scaling smoke threads=%d wall=%.1fs (min of %d) md5=%s" %
                  (threads, walls[threads], max(1, args.scaling_runs),
                   digests[threads]), file=sys.stderr)
        if digests[1] != digests[2]:
            sys.exit("scaling smoke FAILED: 1-thread md5 %s != 2-thread "
                     "md5 %s (scale=%g seed=%d)" %
                     (digests[1], digests[2], args.scaling_scale, args.seed))
        if cores < 2:
            print("scaling smoke passed: md5 invariant (md5 %s); wall gate "
                  "SKIPPED — single-core runner (cores=%d), 2 workers have "
                  "nothing to scale onto (walls 1t=%.1fs 2t=%.1fs)" %
                  (digests[1], cores, walls[1], walls[2]))
            return
        speedup = walls[1] / walls[2] if walls[2] > 0 else 0.0
        if speedup < args.scaling_speedup:
            sys.exit("scaling smoke FAILED: 2-thread speedup %.2fx < "
                     "required %.2fx on a %d-core machine "
                     "(walls 1t=%.1fs 2t=%.1fs)" %
                     (speedup, args.scaling_speedup, cores,
                      walls[1], walls[2]))
        print("scaling smoke passed: md5 invariant (md5 %s), 2-thread "
              "speedup %.2fx >= %.2fx on %d cores" %
              (digests[1], speedup, args.scaling_speedup, cores))
        return

    if args.trace_smoke:
        if not os.path.exists(args.realdata_binary):
            sys.exit("realdata binary not found: %s (build Release first)" %
                     args.realdata_binary)
        # Malformed numeric flags must exit non-zero, not silently truncate.
        for bad in (["summary", "--seed=20o1"],
                    ["summary", "--scale=0.5x"],
                    ["summary", "--trace"]):  # --trace needs a path
            proc = subprocess.run(
                [args.realdata_binary] + bad, stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL)
            if proc.returncode == 0:
                sys.exit("trace smoke FAILED: %r exited 0, expected a "
                         "non-zero strict-parsing failure" % bad)
        scratch = tempfile.mkdtemp(prefix="rv_trace_smoke_")
        try:
            digests = {}
            trace_doc = None
            for traced in (False, True):
                cmd = [args.realdata_binary, "summary",
                       "--seed", str(args.seed), "--threads", "2",
                       "--scale", "%g" % args.smoke_scale]
                if traced:
                    cmd += ["--trace", "trace.json"]
                subprocess.run(cmd, check=True, cwd=scratch,
                               stdout=subprocess.DEVNULL,
                               stderr=subprocess.DEVNULL)
                digests[traced] = study_cache_md5(scratch)
                if traced:
                    trace_doc = json.load(
                        open(os.path.join(scratch, "trace.json")))
            if digests[False] != digests[True]:
                sys.exit("trace smoke FAILED: cache md5 with tracing on %s "
                         "!= off %s — observation perturbed the study" %
                         (digests[True], digests[False]))
            events = trace_doc.get("traceEvents")
            if not isinstance(events, list) or not events:
                sys.exit("trace smoke FAILED: trace.json has no traceEvents")
            phases = {e.get("ph") for e in events}
            if not phases & {"B", "i", "X"}:
                sys.exit("trace smoke FAILED: no span/instant events in "
                         "trace.json (phases seen: %r)" % sorted(phases))
            print("trace smoke passed: %d trace events, cache md5 invariant "
                  "under tracing (md5 %s), strict flags exit non-zero" %
                  (len(events), digests[False]))
        finally:
            shutil.rmtree(scratch, ignore_errors=True)
        return

    if args.telemetry_smoke:
        if not os.path.exists(args.realdata_binary):
            sys.exit("realdata binary not found: %s (build Release first)" %
                     args.realdata_binary)
        # Strictly validated telemetry flags must exit non-zero.
        for bad in (["summary", "--telemetry-interval-ms=0"],
                    ["summary", "--telemetry-interval-ms=5o0"],
                    ["summary", "--trace", "t.json", "--trace-play=1,2,3"],
                    ["summary", "--trace", "t.json", "--trace-play=-1,2"],
                    ["summary", "--series-csv"],   # needs a path
                    ["summary", "--flight-dir"]):  # needs a path
            proc = subprocess.run(
                [args.realdata_binary] + bad, stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL)
            if proc.returncode == 0:
                sys.exit("telemetry smoke FAILED: %r exited 0, expected a "
                         "non-zero strict-parsing failure" % bad)
        expected_header = ("user_id,record_slot,clip_id,server,t_usec,"
                           "buffer_sec,fps,bandwidth_kbps,cwnd_bytes,"
                           "retx_per_sec,pacing_kbps,cc_state,"
                           "access_occupancy,access_drops,"
                           "isp-uplink_occupancy,isp-uplink_drops,"
                           "wan-corridor_occupancy,wan-corridor_drops,"
                           "server-access_occupancy,server-access_drops")
        scratch = tempfile.mkdtemp(prefix="rv_telemetry_smoke_")
        try:
            digests = {}
            series_bytes = {}
            for mode in ("off", "t1", "t2"):
                cmd = [args.realdata_binary, "summary",
                       "--seed", str(args.seed),
                       "--threads", "1" if mode == "t1" else "2",
                       "--scale", "%g" % args.smoke_scale]
                if mode != "off":
                    cmd += ["--telemetry",
                            "--series-csv", "series_%s.csv" % mode,
                            "--trace", "trace_%s.json" % mode, "--profile"]
                out = subprocess.run(
                    cmd, check=True, cwd=scratch, stdout=subprocess.PIPE,
                    stderr=subprocess.DEVNULL).stdout.decode()
                digests[mode] = study_cache_md5(scratch)
                if mode != "off":
                    series_bytes[mode] = open(
                        os.path.join(scratch, "series_%s.csv" % mode),
                        "rb").read()
                    for marker in ("Telemetry rollup", "bottleneck",
                                   "Study profile", "worker"):
                        if marker not in out:
                            sys.exit("telemetry smoke FAILED: %r missing "
                                     "from summary output (mode %s)" %
                                     (marker, mode))
            if len(set(digests.values())) != 1:
                sys.exit("telemetry smoke FAILED: cache md5 not invariant "
                         "under telemetry/threads: %r — sampling perturbed "
                         "the study" % digests)
            header = series_bytes["t2"].split(b"\n", 1)[0].decode()
            if header != expected_header:
                sys.exit("telemetry smoke FAILED: series CSV header\n  %s\n"
                         "!= expected\n  %s" % (header, expected_header))
            if len(series_bytes["t2"].splitlines()) < 2:
                sys.exit("telemetry smoke FAILED: series CSV has no samples")
            if series_bytes["t1"] != series_bytes["t2"]:
                sys.exit("telemetry smoke FAILED: series CSV differs "
                         "between 1 and 2 threads")
            trace_doc = json.load(
                open(os.path.join(scratch, "trace_t2.json")))
            events = trace_doc.get("traceEvents")
            if not isinstance(events, list) or not events:
                sys.exit("telemetry smoke FAILED: trace_t2.json has no "
                         "traceEvents")
            counter_names = {e.get("name") for e in events
                             if e.get("ph") == "C"}
            for want in ("buffer_sec", "fps", "bandwidth_kbps",
                         "access_occupancy"):
                if want not in counter_names:
                    sys.exit("telemetry smoke FAILED: no %r counter track "
                             "in trace (C-phase names: %r)" %
                             (want, sorted(counter_names)))
            print("telemetry smoke passed: cache md5 invariant (md5 %s), "
                  "series CSV byte-identical at 1/2 threads (%d bytes), "
                  "%d counter tracks in the Chrome trace, strict flags "
                  "exit non-zero" %
                  (digests["off"], len(series_bytes["t2"]),
                   len(counter_names)))
        finally:
            shutil.rmtree(scratch, ignore_errors=True)
        return

    if args.cc_smoke:
        if not os.path.exists(args.realdata_binary):
            sys.exit("realdata binary not found: %s (build Release first)" %
                     args.realdata_binary)
        if not os.path.exists(args.cc_bench_binary):
            sys.exit("cc bench binary not found: %s (build Release first)" %
                     args.cc_bench_binary)
        # Strict --cc parsing: unknown algorithms, wrong case, and a
        # missing value must all exit non-zero rather than fall back.
        for bad in (["summary", "--cc", "newreno"],
                    ["summary", "--cc", "Reno"],
                    ["summary", "--cc"]):
            proc = subprocess.run(
                [args.realdata_binary] + bad, stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL)
            if proc.returncode == 0:
                sys.exit("cc smoke FAILED: %r exited 0, expected a "
                         "non-zero strict-parsing failure" % bad)
        # The CC seam must be invisible when it selects the incumbent:
        # an explicit `--cc reno` study must be byte-identical to the
        # default-configured one.
        scratch = tempfile.mkdtemp(prefix="rv_cc_smoke_")
        try:
            digests = {}
            for cc in (None, "reno"):
                for f in os.listdir(scratch):
                    path = os.path.join(scratch, f)
                    if os.path.isdir(path):
                        shutil.rmtree(path)
                    else:
                        os.unlink(path)
                cmd = [args.realdata_binary, "summary",
                       "--seed", str(args.seed), "--threads", "2",
                       "--scale", "%g" % args.smoke_scale]
                if cc:
                    cmd += ["--cc", cc]
                subprocess.run(cmd, check=True, cwd=scratch,
                               stdout=subprocess.DEVNULL,
                               stderr=subprocess.DEVNULL)
                digests[cc] = study_cache_md5(scratch)
            if digests[None] != digests["reno"]:
                sys.exit("cc smoke FAILED: --cc reno cache md5 %s != "
                         "default %s — the CC seam perturbed the study" %
                         (digests["reno"], digests[None]))
            # Single-cell grid: under 5% random (non-congestive) loss the
            # model-based controller must clearly out-deliver the
            # loss-based one — the ordering the whole ablation exists to
            # demonstrate. The quick cell is deterministic (one seed).
            grid_path = os.path.join(scratch, "cc_quick.json")
            subprocess.run(
                [args.cc_bench_binary, "--quick",
                 "--grid-json=" + grid_path,
                 "--benchmark_filter=nonexistent"],
                check=True, stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL)
            grid = json.load(open(grid_path))["grid"]
            cell = "loss05_jitter00"
            goodput = {cc: grid[cc][cell]["goodput"]
                       for cc in ("reno", "cubic", "bbr")}
            for cc, v in goodput.items():
                if v <= 0:
                    sys.exit("cc smoke FAILED: %s goodput %r at %s — "
                             "transfer did not run" % (cc, v, cell))
            if goodput["bbr"] < 2.0 * goodput["reno"]:
                sys.exit("cc smoke FAILED: bbr goodput %.0f < 2x reno "
                         "%.0f at 5%% random loss — the model-based "
                         "controller lost its headroom" %
                         (goodput["bbr"], goodput["reno"]))
            print("cc smoke passed: strict --cc flags exit non-zero, "
                  "--cc reno study byte-identical to default (md5 %s), "
                  "quick grid bbr/reno = %.1fx at 5%% loss" %
                  (digests[None], goodput["bbr"] / goodput["reno"]))
        finally:
            shutil.rmtree(scratch, ignore_errors=True)
        return

    if args.shard_smoke:
        for binary in (args.realdata_binary, args.rvmerge_binary):
            if not os.path.exists(binary):
                sys.exit("binary not found: %s (build Release first)" %
                         binary)
        # Strict campaign/cache flag parsing: each of these must exit 2
        # (the CLI-validation convention), not 0 and not a crash.
        for bad in (["campaign", "--plays-scale", "0"],
                    ["campaign", "--plays-scale", "3x"],
                    ["campaign", "--shard", "4/4"],
                    ["campaign", "--shard", "1-4"],
                    ["campaign", "--shard", "0/0"],
                    ["campaign", "--spill-dir"],   # needs a directory
                    ["campaign", "--chunk-users", "0"],
                    ["campaign", "--watch", "0"],
                    ["summary", "--cache-dir"]):   # needs a directory
            proc = subprocess.run(
                [args.realdata_binary] + bad, stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL)
            if proc.returncode != 2:
                sys.exit("shard smoke FAILED: %r exited %d, expected the "
                         "strict-parsing exit code 2" %
                         (bad, proc.returncode))
        scratch = tempfile.mkdtemp(prefix="rv_shard_smoke_")
        try:
            # --cache-dir must redirect the study cache (and only that).
            cache_dir = os.path.join(scratch, "alt_cache")
            subprocess.run(
                [args.realdata_binary, "summary", "--seed", str(args.seed),
                 "--threads", "2", "--scale", "%g" % args.smoke_scale,
                 "--cache-dir", cache_dir],
                check=True, cwd=scratch, stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL)
            if not [f for f in os.listdir(cache_dir)
                    if f.endswith(".cache")]:
                sys.exit("shard smoke FAILED: --cache-dir %s holds no "
                         ".cache file" % cache_dir)
            if os.path.isdir(os.path.join(scratch, ".rv_cache")):
                sys.exit("shard smoke FAILED: --cache-dir run also wrote "
                         "the default ./.rv_cache/")

            # Smoke campaign: single process vs 4 merged shards must agree
            # byte-for-byte on both the rollup and the spill.
            shards = 4
            base_cmd = [args.realdata_binary, "campaign",
                        "--seed", str(args.seed), "--threads", "2",
                        "--scale", "%g" % args.smoke_scale,
                        "--plays-scale", "2", "--watch", "2"]
            whole_dir = os.path.join(scratch, "whole")
            subprocess.run(base_cmd + ["--spill-dir", whole_dir],
                           check=True, cwd=scratch,
                           stdout=subprocess.DEVNULL,
                           stderr=subprocess.DEVNULL)
            shard_dirs = []
            for i in range(shards):
                shard_dir = os.path.join(scratch, "shard%d" % i)
                subprocess.run(
                    base_cmd + ["--shard", "%d/%d" % (i, shards),
                                "--spill-dir", shard_dir],
                    check=True, cwd=scratch, stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL)
                shard_dirs.append(shard_dir)
            merged_dir = os.path.join(scratch, "merged")
            merge = subprocess.run(
                [args.rvmerge_binary] + shard_dirs +
                ["--out", merged_dir, "--report"],
                cwd=scratch, stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT)
            if merge.returncode != 0:
                sys.exit("shard smoke FAILED: rvmerge exited %d:\n%s" %
                         (merge.returncode, merge.stdout.decode()))
            for name in ("rollup.bin", "records.spill"):
                want = md5_file(os.path.join(whole_dir, name))
                got = md5_file(os.path.join(merged_dir, name))
                if want != got:
                    sys.exit("shard smoke FAILED: merged %s md5 %s != "
                             "single-process %s — the %d-shard merge is "
                             "not byte-identical" % (name, got, want,
                                                     shards))
            # A missing middle shard must be a hard merge error.
            gap = subprocess.run(
                [args.rvmerge_binary, shard_dirs[0], shard_dirs[2],
                 "--out", os.path.join(scratch, "gap")],
                cwd=scratch, stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL)
            if gap.returncode == 0:
                sys.exit("shard smoke FAILED: merging shards 0 and 2 "
                         "without 1 exited 0; contiguity is not enforced")
            print("shard smoke passed: %d-shard merge byte-identical to "
                  "single process (rollup md5 %s, spill md5 %s), gap "
                  "merge rejected, strict flags exit 2" %
                  (shards, md5_file(os.path.join(merged_dir, "rollup.bin")),
                   md5_file(os.path.join(merged_dir, "records.spill"))))
        finally:
            shutil.rmtree(scratch, ignore_errors=True)
        return

    if args.status_smoke:
        for binary in (args.realdata_binary, args.rvmerge_binary):
            if not os.path.exists(binary):
                sys.exit("binary not found: %s (build Release first)" %
                         binary)
        # Strict observability-flag parsing: exit 2, the CLI convention.
        for bad in (["summary", "--status-port", "70000"],
                    ["summary", "--status-port", "abc"],
                    ["summary", "--status-port"],      # needs a value
                    ["summary", "--status-port=0", "--status-hold-ms=-5"],
                    ["campaign", "--heartbeat-dir"],   # needs a directory
                    ["--status"]):                     # rvmerge: needs a dir
            binary = (args.rvmerge_binary if bad[0].startswith("--status")
                      else args.realdata_binary)
            proc = subprocess.run(
                [binary] + bad, stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL)
            if proc.returncode != 2:
                sys.exit("status smoke FAILED: %r exited %d, expected the "
                         "strict-parsing exit code 2" %
                         (bad, proc.returncode))
        scratch = tempfile.mkdtemp(prefix="rv_status_smoke_")
        try:
            # An unwritable --heartbeat-dir must fail fast with exit 2.
            blocker = os.path.join(scratch, "blocker")
            with open(blocker, "w") as f:
                f.write("not a directory\n")
            proc = subprocess.run(
                [args.realdata_binary, "campaign", "--scale", "0.01",
                 "--heartbeat-dir", os.path.join(blocker, "hb")],
                cwd=scratch, stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL)
            if proc.returncode != 2:
                sys.exit("status smoke FAILED: unwritable --heartbeat-dir "
                         "exited %d, expected 2" % proc.returncode)

            # Live campaign with the exporter: poll /progress to completion,
            # then validate /metrics and /healthz during --status-hold-ms.
            base_cmd = [args.realdata_binary, "campaign",
                        "--seed", str(args.seed), "--threads", "2",
                        "--scale", "%g" % args.smoke_scale,
                        "--plays-scale", "2", "--watch", "2"]
            hb_dir = os.path.join(scratch, "hb")
            spill_on = os.path.join(scratch, "spill_on")
            child = subprocess.Popen(
                base_cmd + ["--spill-dir", spill_on, "--status-port", "0",
                            "--status-hold-ms", "4000",
                            "--heartbeat-dir", hb_dir],
                cwd=scratch, stdout=subprocess.DEVNULL,
                stderr=subprocess.PIPE, text=True)
            stderr_lines = []
            port_box = {}
            port_seen = threading.Event()

            def drain():
                for line in child.stderr:
                    stderr_lines.append(line)
                    m = re.search(r"http://127\.0\.0\.1:(\d+)/", line)
                    if m and "port" not in port_box:
                        port_box["port"] = int(m.group(1))
                        port_seen.set()
                port_seen.set()

            drainer = threading.Thread(target=drain)
            drainer.start()
            port_seen.wait(30)
            if "port" not in port_box:
                child.kill()
                drainer.join()
                sys.exit("status smoke FAILED: realdata never announced a "
                         "status port on stderr:\n%s" % "".join(stderr_lines))
            port = port_box["port"]

            def fetch(path):
                url = "http://127.0.0.1:%d%s" % (port, path)
                with urllib.request.urlopen(url, timeout=5) as resp:
                    return (resp.status,
                            resp.headers.get("Content-Type", ""),
                            resp.read().decode())

            progress = None
            ctype = ""
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                try:
                    _, ctype, body = fetch("/progress")
                except (urllib.error.URLError, OSError, ConnectionError):
                    time.sleep(0.1)
                    continue
                progress = json.loads(body)
                if progress.get("done"):
                    break
                time.sleep(0.2)
            if not progress or not progress.get("done"):
                child.kill()
                drainer.join()
                sys.exit("status smoke FAILED: /progress never reported "
                         "done=true (last: %r)" % (progress,))
            if "application/json" not in ctype:
                sys.exit("status smoke FAILED: /progress content-type %r" %
                         ctype)
            for key in ("plays", "users_done", "users_total",
                        "plays_per_sec", "eta_seconds", "shard_index",
                        "rss_kb"):
                if key not in progress:
                    sys.exit("status smoke FAILED: /progress is missing "
                             "%r: %r" % (key, progress))

            _, ctype, metrics_text = fetch("/metrics")
            if "text/plain" not in ctype or "version=0.0.4" not in ctype:
                sys.exit("status smoke FAILED: /metrics content-type %r" %
                         ctype)
            # Every non-comment line must be `name[{labels}] value` — the
            # Prometheus text exposition sample shape.
            sample_re = re.compile(
                r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? "
                r"(NaN|[+-]?Inf|[-+0-9.eE]+)$")
            for i, line in enumerate(metrics_text.splitlines()):
                if not line or line.startswith("#"):
                    continue
                if not sample_re.match(line):
                    sys.exit("status smoke FAILED: /metrics line %d does "
                             "not parse: %r" % (i + 1, line))
            for family in ("rv_plays_completed_total",
                           "rv_users_completed_total",
                           "rv_spill_bytes_written_total",
                           "rv_play_fps_bucket",
                           "rv_resident_memory_kilobytes"):
                if family not in metrics_text:
                    sys.exit("status smoke FAILED: /metrics is missing the "
                             "%s family" % family)
            _, _, health = fetch("/healthz")
            if "ok" not in health:
                sys.exit("status smoke FAILED: /healthz answered %r" %
                         health)

            child.wait(timeout=120)
            drainer.join()
            if child.returncode != 0:
                sys.exit("status smoke FAILED: campaign exited %d:\n%s" %
                         (child.returncode, "".join(stderr_lines)))
            # The stderr progress line must carry the same rate/ETA feed.
            if not any("plays/s" in line for line in stderr_lines):
                sys.exit("status smoke FAILED: stderr progress line has no "
                         "plays/s rate:\n%s" % "".join(stderr_lines))

            # Final heartbeat says done; rvmerge --status agrees (exit 0).
            hb_doc = json.load(open(os.path.join(hb_dir,
                                                 "heartbeat-0.json")))
            if hb_doc.get("status") != "done":
                sys.exit("status smoke FAILED: final heartbeat status %r" %
                         hb_doc.get("status"))
            status_run = subprocess.run(
                [args.rvmerge_binary, "--status", hb_dir],
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
            if status_run.returncode != 0 or "done" not in status_run.stdout:
                sys.exit("status smoke FAILED: rvmerge --status exited %d:"
                         "\n%s" % (status_run.returncode, status_run.stdout))

            # A deliberately dead shard (ancient heartbeat, no such pid)
            # must render DEAD / need-attention with exit 1.
            dead_dir = os.path.join(scratch, "hb_dead")
            os.makedirs(dead_dir)

            def hb_json(i, n, pid, ts, status):
                return ('{"schema":"rv-heartbeat-v1","shard_index":%d,'
                        '"shard_count":%d,"pid":%d,"timestamp_unix":%.1f,'
                        '"status":"%s","users_done":5,"users_total":10,'
                        '"plays":50,"last_fold_user":5,"plays_per_sec":1.5,'
                        '"rss_kb":1000,"seed":%d}\n' %
                        (i, n, pid, ts, status, args.seed))

            now = time.time()
            with open(os.path.join(dead_dir, "heartbeat-0.json"), "w") as f:
                f.write(hb_json(0, 2, os.getpid(), now, "running"))
            with open(os.path.join(dead_dir, "heartbeat-1.json"), "w") as f:
                f.write(hb_json(1, 2, 2 ** 22 + 12345, now - 3600,
                                "running"))
            dead_run = subprocess.run(
                [args.rvmerge_binary, "--status", dead_dir,
                 "--stale-after", "15"],
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
            if (dead_run.returncode != 1 or "DEAD" not in dead_run.stdout or
                    "need attention" not in dead_run.stdout):
                sys.exit("status smoke FAILED: dead shard not reported "
                         "(exit %d):\n%s" % (dead_run.returncode,
                                             dead_run.stdout))

            # Byte identity: the same campaign without any status flags must
            # produce identical rollup and spill bytes.
            spill_off = os.path.join(scratch, "spill_off")
            subprocess.run(base_cmd + ["--spill-dir", spill_off],
                           check=True, cwd=scratch,
                           stdout=subprocess.DEVNULL,
                           stderr=subprocess.DEVNULL)
            for name in ("rollup.bin", "records.spill"):
                want = md5_file(os.path.join(spill_off, name))
                got = md5_file(os.path.join(spill_on, name))
                if want != got:
                    sys.exit("status smoke FAILED: %s md5 %s with exporter "
                             "!= %s without — the exporter leaked into the "
                             "deterministic output" % (name, got, want))

            # Same for the study cache, at 1 and 2 threads.
            digests = {}
            for mode, extra in (("off", []),
                                ("on", ["--status-port", "0"])):
                for threads in ("1", "2"):
                    cache_dir = os.path.join(scratch,
                                             "cache_%s_t%s" % (mode,
                                                               threads))
                    subprocess.run(
                        [args.realdata_binary, "summary",
                         "--seed", str(args.seed), "--threads", threads,
                         "--scale", "%g" % args.smoke_scale,
                         "--cache-dir", cache_dir] + extra,
                        check=True, cwd=scratch, stdout=subprocess.DEVNULL,
                        stderr=subprocess.DEVNULL)
                    caches = [f for f in os.listdir(cache_dir)
                              if f.endswith(".cache")]
                    if len(caches) != 1:
                        sys.exit("status smoke FAILED: expected one cache "
                                 "file in %s, found %r" % (cache_dir,
                                                           caches))
                    digests[(mode, threads)] = md5_file(
                        os.path.join(cache_dir, caches[0]))
            if len(set(digests.values())) != 1:
                sys.exit("status smoke FAILED: study cache md5 differs "
                         "with the exporter on/off: %r" % digests)
            print("status smoke passed: /metrics + /progress + /healthz "
                  "live on an ephemeral port, heartbeat done + rvmerge "
                  "--status ok, dead shard reported, exporter on/off "
                  "byte-identical (cache md5 %s)" %
                  next(iter(digests.values())))
        finally:
            shutil.rmtree(scratch, ignore_errors=True)
        return

    if args.campaign:
        if not os.path.exists(args.realdata_binary):
            sys.exit("realdata binary not found: %s (build Release first)" %
                     args.realdata_binary)
        scratch = tempfile.mkdtemp(prefix="rv_campaign_")
        try:
            cmd = [args.realdata_binary, "campaign",
                   "--seed", str(args.seed),
                   "--threads", str(args.threads),
                   "--plays-scale", str(args.campaign_scale),
                   "--watch", "%g" % args.campaign_watch]
            print("running campaign (plays-scale=%d, watch=%gs, "
                  "threads=%d)..." % (args.campaign_scale,
                                      args.campaign_watch, args.threads),
                  file=sys.stderr)
            t0 = time.monotonic()
            rc, out, peak_rss_kb = run_traced(cmd, cwd=scratch, capture=True)
            wall = time.monotonic() - t0
            if rc != 0:
                sys.exit("campaign FAILED: realdata campaign exited %d:\n%s"
                         % (rc, out))
            plays = threads = None
            plays_per_sec_per_core = None
            for line in out.splitlines():
                if line.startswith("campaign:") and " plays over " in line:
                    tail = line.split(": ", 2)[-1]
                    plays = int(tail.split(" plays over ")[0])
                if line.startswith("throughput:"):
                    plays_per_sec_per_core = float(line.split()[1])
                    threads = int(line.split("(")[1].split("s wall, ")[1]
                                  .split(" thread")[0])
            if plays is None or plays_per_sec_per_core is None:
                sys.exit("campaign FAILED: could not parse realdata "
                         "campaign output:\n%s" % out)
            print(out)
            print("campaign: %d plays in %.0fs wall, %.1f plays/s/core, "
                  "peak rss %d KiB" % (plays, wall,
                                       plays_per_sec_per_core, peak_rss_kb))
            doc = json.load(open(args.baseline)) if os.path.exists(
                args.baseline) else {}
            doc["campaign"] = {
                "seed": args.seed,
                "plays_scale": args.campaign_scale,
                "watch_seconds": args.campaign_watch,
                "threads": threads,
                "plays": plays,
                "wall_seconds": round(wall, 1),
                "plays_per_sec_per_core": plays_per_sec_per_core,
                "peak_rss_kb": peak_rss_kb,
            }
            with open(args.baseline, "w") as f:
                json.dump(doc, f, indent=2, sort_keys=True)
                f.write("\n")
            print("wrote campaign section to %s" % args.baseline)
        finally:
            shutil.rmtree(scratch, ignore_errors=True)
        return

    if args.cc_grid:
        if not os.path.exists(args.cc_bench_binary):
            sys.exit("cc bench binary not found: %s (build Release first)" %
                     args.cc_bench_binary)
        scratch = tempfile.mkdtemp(prefix="rv_cc_grid_")
        try:
            grid_path = os.path.join(scratch, "cc_grid.json")
            print("running full CC loss x jitter grid (minutes)...",
                  file=sys.stderr)
            subprocess.run(
                [args.cc_bench_binary, "--grid-json=" + grid_path,
                 "--benchmark_filter=nonexistent"],
                check=True, stderr=subprocess.DEVNULL)
            cc_grid = json.load(open(grid_path))
        finally:
            shutil.rmtree(scratch, ignore_errors=True)
        doc = json.load(open(args.baseline)) if os.path.exists(
            args.baseline) else {}
        doc["cc_grid"] = cc_grid
        with open(args.baseline, "w") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")
        print("wrote cc_grid section (%d backends x %d cells) to %s" %
              (len(cc_grid["grid"]),
               len(next(iter(cc_grid["grid"].values()))), args.baseline))
        return

    if args.obs_overhead_check:
        if not os.path.exists(args.bench_binary):
            sys.exit("bench binary not found: %s (build Release first)" %
                     args.bench_binary)
        wanted = ("^(BM_ObsHookDisabled|BM_SeriesSampleDisabled|"
                  "BM_MetricsDisabled|BM_PacketForwardingChain/8)$")
        print("measuring disabled-hook overhead (x%d reps)..." %
              args.repetitions, file=sys.stderr)
        results = run_microbench(args.bench_binary, args.repetitions,
                                 args.min_time, bench_filter=wanted)
        try:
            pair_ns = results["BM_ObsHookDisabled"] / HOOK_PAIRS_PER_OBS_ITER
            guard_ns = (results["BM_SeriesSampleDisabled"] /
                        GUARDS_PER_SERIES_ITER)
            metric_ns = (results["BM_MetricsDisabled"] /
                         METRIC_CALLS_PER_METRICS_ITER)
            forward_ns = results["BM_PacketForwardingChain/8"]
        except KeyError as missing:
            sys.exit("obs overhead check FAILED: benchmark %s not found "
                     "(stale bench binary?)" % missing)
        tax_ns = (pair_ns * HOOK_CALLS_PER_FORWARD_ITER_8 +
                  guard_ns * GUARD_CALLS_PER_FORWARD_ITER_8 +
                  metric_ns * METRIC_CALLS_PER_FORWARD_ITER_8)
        ratio = tax_ns / forward_ns
        print("disabled hook pair %.3f ns + sampler guard %.3f ns + "
              "metrics hook %.3f ns; forwarding-chain tax upper bound "
              "%.0f ns / %.0f ns = %.2f%% "
              "(event kernel: 0 hooks, 0.00%%)" %
              (pair_ns, guard_ns, metric_ns, tax_ns, forward_ns,
               ratio * 100.0))
        if ratio > args.obs_tolerance:
            sys.exit("obs overhead check FAILED: %.2f%% > %.0f%% budget" %
                     (ratio * 100.0, args.obs_tolerance * 100.0))
        print("obs overhead check passed: %.2f%% <= %.0f%% budget" %
              (ratio * 100.0, args.obs_tolerance * 100.0))
        return

    if not os.path.exists(args.bench_binary):
        sys.exit("bench binary not found: %s (build Release first)" %
                 args.bench_binary)

    print("running %s x%d (min_time=%gs each)..." %
          (args.bench_binary, args.repetitions, args.min_time),
          file=sys.stderr)
    results = run_microbench(args.bench_binary, args.repetitions,
                             args.min_time)
    derived = derive(results)

    study = None
    scaling = None
    if args.study:
        sweep = [args.threads]
        if args.threads_sweep:
            sweep = [int(t) for t in args.threads_sweep.split(",") if t]
        scaling = {}
        digests = {}
        peak_rss_kb = 0
        runs = max(1, args.scaling_runs) if args.threads_sweep else 1
        for threads in sweep:
            best = None
            for rep in range(runs):
                print("running full study (seed=%d, threads=%d, run %d/%d)"
                      "..." % (args.seed, threads, rep + 1, runs),
                      file=sys.stderr)
                wall, digest, rss_kb = run_study(args.realdata_binary,
                                                 args.seed, threads)
                peak_rss_kb = max(peak_rss_kb, rss_kb)
                if threads in digests and digests[threads] != digest:
                    sys.exit("FATAL: cache md5 differs between repeat runs "
                             "at threads=%d" % threads)
                digests[threads] = digest
                best = wall if best is None else min(best, wall)
            scaling[threads] = round(best, 1)
            print("  threads=%d wall=%.1fs (min of %d) md5=%s" %
                  (threads, scaling[threads], runs, digests[threads]),
                  file=sys.stderr)
        if len(set(digests.values())) != 1:
            sys.exit("FATAL: cache md5 differs across thread counts: %r" %
                     digests)
        study = {"seed": args.seed, "threads": args.threads,
                 "wall_seconds": scaling.get(args.threads,
                                             scaling[sweep[0]]),
                 "cache_md5": digests[sweep[0]],
                 "cache_md5s": {str(t): digests[t] for t in sweep},
                 "peak_rss_kb": peak_rss_kb,
                 "runs_per_point": runs}

    for name in TRACKED + [CALIBRATION]:
        if name in results:
            print("%-32s %12.0f ns" % (name, results[name]))
    for k, v in sorted(derived.items()):
        print("%-32s %12.1f" % (k, v))
    if study:
        print("study wall %.1fs  peak rss %d KiB  cache md5 %s" %
              (study["wall_seconds"], study["peak_rss_kb"],
               study["cache_md5"]))
        if scaling and len(scaling) > 1:
            base = scaling[max(scaling)]
            for t in sorted(scaling):
                print("  scaling threads=%-2d wall %6.1fs  (%.2fx vs widest)"
                      % (t, scaling[t], scaling[t] / base))

    if args.check:
        committed = json.load(open(args.baseline))
        cal_committed = committed["benchmarks"][CALIBRATION]["after_ns"]
        cal_measured = results[CALIBRATION]
        scale = cal_measured / cal_committed
        print("calibration scale %.2fx (machine vs committed baseline)" %
              scale, file=sys.stderr)
        failures = []
        for name in TRACKED:
            entry = committed["benchmarks"].get(name)
            if entry is None or name not in results:
                continue
            allowed = entry["after_ns"] * scale * (1.0 + args.tolerance)
            if results[name] > allowed:
                failures.append(
                    "%s: %.0f ns > allowed %.0f ns (committed %.0f ns x "
                    "%.2f scale x %.0f%% tolerance)" %
                    (name, results[name], allowed, entry["after_ns"], scale,
                     (1.0 + args.tolerance) * 100))
        if args.study and study is not None:
            committed_study = committed.get("study", {})
            # The md5 is thread-invariant by design: compare unconditionally.
            want = committed_study.get("cache_md5")
            if want and study["cache_md5"] != want:
                failures.append(
                    "study output changed: cache md5 %s != committed %s" %
                    (study["cache_md5"], want))
            # Peak RSS does not scale with CPU speed, so it is compared
            # without the calibration rescale, under its own (looser)
            # tolerance: a memory regression on a study run means the
            # streaming/arena discipline broke somewhere.
            want_rss = committed_study.get("peak_rss_kb")
            if want_rss and study["peak_rss_kb"] > 0:
                allowed_rss = want_rss * (1.0 + args.rss_tolerance)
                if study["peak_rss_kb"] > allowed_rss:
                    failures.append(
                        "study peak RSS: %d KiB > allowed %.0f KiB "
                        "(committed %d KiB x %.0f%% tolerance)" %
                        (study["peak_rss_kb"], allowed_rss, want_rss,
                         (1.0 + args.rss_tolerance) * 100))
            # Wall time is NOT thread-invariant: only gate a measured run
            # against the committed number for the same thread count.
            committed_scaling = committed_study.get("scaling", {})
            # New schema nests walls under "walls" (beside "cores"); the
            # pre-rework flat {threads: wall} map is still accepted.
            committed_walls = committed_scaling.get("walls",
                                                    committed_scaling)
            for threads, wall in (scaling or {}).items():
                want_wall = committed_walls.get(str(threads))
                if want_wall is None:
                    continue
                allowed = want_wall * scale * (1.0 + args.tolerance)
                if wall > allowed:
                    failures.append(
                        "study wall (threads=%d): %.1fs > allowed %.1fs "
                        "(committed %.1fs x %.2f scale x %.0f%% tolerance)" %
                        (threads, wall, allowed, want_wall, scale,
                         (1.0 + args.tolerance) * 100))
        if failures:
            print("REGRESSION:", file=sys.stderr)
            for f in failures:
                print("  " + f, file=sys.stderr)
            sys.exit(1)
        print("check passed: no benchmark regressed beyond %.0f%%" %
              (args.tolerance * 100))

    if args.update:
        doc = json.load(open(args.baseline)) if os.path.exists(
            args.baseline) else {"benchmarks": {}}
        for name, ns in results.items():
            entry = doc["benchmarks"].setdefault(name, {})
            entry["after_ns"] = round(ns, 1)
            if "before_ns" in entry:
                entry["speedup"] = round(entry["before_ns"] / ns, 2)
        doc["derived_after"] = {k: round(v, 1) for k, v in derived.items()}
        if study is not None:
            doc.setdefault("study", {}).update({
                "seed": study["seed"], "threads": study["threads"],
                "after_wall_seconds": study["wall_seconds"],
                "cache_md5": study["cache_md5"],
                "peak_rss_kb": study["peak_rss_kb"],
            })
            if "before_wall_seconds" in doc["study"]:
                before = doc["study"]["before_wall_seconds"]
                doc["study"]["wall_reduction_percent"] = round(
                    100.0 * (before - study["wall_seconds"]) / before, 1)
            if scaling:
                # The curve is only interpretable next to the machine that
                # produced it: record the runner's core count and the
                # min-of-N methodology beside the walls. Per-thread md5s
                # are redundant (the sweep fails if they diverge) but make
                # the determinism claim auditable from the JSON alone.
                doc["study"]["scaling"] = {
                    "cores": os.cpu_count() or 1,
                    "runs_per_point": study.get("runs_per_point", 1),
                    "walls": {str(t): w for t, w in sorted(scaling.items())},
                    "cache_md5s": study.get("cache_md5s", {}),
                }
        json.dump(doc, open(args.baseline, "w"), indent=2, sort_keys=True)
        open(args.baseline, "a").write("\n")
        print("updated %s" % args.baseline)


if __name__ == "__main__":
    main()
