#!/usr/bin/env python3
"""Benchmark harness for the simulation fast path.

Runs the Google-benchmark microbench binary several times, keeps the
per-benchmark minimum (the least-noise estimator on shared/virtualised
hardware), derives the headline metrics (ns/event, packets/sec), and
optionally times a full `realdata summary` study run at a fixed seed,
fingerprinting the result cache so byte-identity across kernel changes is
checked, not assumed.

Modes:
  --update   rewrite the `after` numbers in BENCH_sim.json (preserving the
             committed `before` seed-kernel numbers and study fingerprint)
  --check    re-measure and fail (exit 1) if any tracked benchmark regressed
             more than --tolerance (default 20%) versus the committed
             `after` numbers, after rescaling by the calibration benchmark
             (BM_CdfBuildAndQuery — pure arithmetic, untouched by kernel
             work) so a slower CI machine does not read as a regression.
  --study    also run the full study (slow: minutes) and record wall time
             and the cache fingerprint.

With no mode flag it measures and prints, changing nothing.
"""

import argparse
import hashlib
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BENCH = os.path.join(REPO_ROOT, "build", "bench", "bench_microbench")
DEFAULT_REALDATA = os.path.join(REPO_ROOT, "build", "tools", "realdata")
DEFAULT_JSON = os.path.join(REPO_ROOT, "BENCH_sim.json")

# Benchmarks tracked for regressions. BM_CdfBuildAndQuery is the calibration
# reference and is exempt from the regression gate itself.
TRACKED = [
    "BM_SimulatorScheduleRun",
    "BM_SimulatorCancelHeavy",
    "BM_SimulatorTimerChurn",
    "BM_PacketForwardingChain/2",
    "BM_PacketForwardingChain/8",
    "BM_TcpBulkTransfer",
    "BM_TcpChunkedSegments",
    "BM_FrameScheduleGenerate",
    "BM_PacketizeReassemble",
]
CALIBRATION = "BM_CdfBuildAndQuery"

# Derived headline metrics: benchmark name -> (work items per iteration).
EVENTS_PER_SCHEDULE_RUN = 1000  # events per BM_SimulatorScheduleRun iteration
PACKETS_PER_FORWARD_ITER = 100  # packets per BM_PacketForwardingChain iteration


def run_microbench(binary, repetitions, min_time):
    """Runs the bench binary `repetitions` times; returns {name: min_ns}."""
    best = {}
    for rep in range(repetitions):
        with tempfile.NamedTemporaryFile(mode="r", suffix=".json") as out:
            cmd = [
                binary,
                "--benchmark_format=console",
                "--benchmark_out_format=json",
                "--benchmark_out=%s" % out.name,
                "--benchmark_min_time=%g" % min_time,
            ]
            subprocess.run(
                cmd, check=True, stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL)
            data = json.load(open(out.name))
        for b in data.get("benchmarks", []):
            name = b["name"]
            ns = float(b["real_time"])  # time_unit is ns for all our benches
            assert b.get("time_unit", "ns") == "ns", name
            if name not in best or ns < best[name]:
                best[name] = ns
        print("  rep %d/%d done" % (rep + 1, repetitions), file=sys.stderr)
    return best


def derive(results):
    d = {}
    if "BM_SimulatorScheduleRun" in results:
        d["event_ns"] = results["BM_SimulatorScheduleRun"] / EVENTS_PER_SCHEDULE_RUN
    if "BM_PacketForwardingChain/8" in results:
        per_packet_ns = results["BM_PacketForwardingChain/8"] / PACKETS_PER_FORWARD_ITER
        d["packets_per_sec"] = 1e9 / per_packet_ns
    return d


def run_study(realdata, seed, threads):
    """Runs the full study in a scratch dir; returns (wall_s, cache_md5)."""
    scratch = tempfile.mkdtemp(prefix="rv_bench_study_")
    try:
        t0 = time.monotonic()
        subprocess.run(
            [realdata, "summary", "--seed", str(seed), "--threads",
             str(threads)],
            check=True, cwd=scratch, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)
        wall = time.monotonic() - t0
        caches = sorted(
            f for f in os.listdir(scratch) if f.endswith(".cache"))
        if len(caches) != 1:
            raise RuntimeError("expected one .cache file, got %r" % caches)
        digest = hashlib.md5(
            open(os.path.join(scratch, caches[0]), "rb").read()).hexdigest()
        return wall, digest
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench-binary", default=DEFAULT_BENCH)
    ap.add_argument("--realdata-binary", default=DEFAULT_REALDATA)
    ap.add_argument("--baseline", default=DEFAULT_JSON,
                    help="path to BENCH_sim.json")
    ap.add_argument("--repetitions", type=int, default=5,
                    help="external repetitions; per-benchmark minimum is kept")
    ap.add_argument("--min-time", type=float, default=0.25,
                    help="--benchmark_min_time per repetition (seconds)")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="--check fails on regressions beyond this fraction")
    ap.add_argument("--check", action="store_true")
    ap.add_argument("--update", action="store_true")
    ap.add_argument("--study", action="store_true",
                    help="also run the full study (minutes)")
    ap.add_argument("--seed", type=int, default=2001)
    ap.add_argument("--threads", type=int, default=4)
    args = ap.parse_args()

    if not os.path.exists(args.bench_binary):
        sys.exit("bench binary not found: %s (build Release first)" %
                 args.bench_binary)

    print("running %s x%d (min_time=%gs each)..." %
          (args.bench_binary, args.repetitions, args.min_time),
          file=sys.stderr)
    results = run_microbench(args.bench_binary, args.repetitions,
                             args.min_time)
    derived = derive(results)

    study = None
    if args.study:
        print("running full study (seed=%d, threads=%d)..." %
              (args.seed, args.threads), file=sys.stderr)
        wall, digest = run_study(args.realdata_binary, args.seed,
                                 args.threads)
        study = {"seed": args.seed, "threads": args.threads,
                 "wall_seconds": round(wall, 1), "cache_md5": digest}

    for name in TRACKED + [CALIBRATION]:
        if name in results:
            print("%-32s %12.0f ns" % (name, results[name]))
    for k, v in sorted(derived.items()):
        print("%-32s %12.1f" % (k, v))
    if study:
        print("study wall %.1fs  cache md5 %s" %
              (study["wall_seconds"], study["cache_md5"]))

    if args.check:
        committed = json.load(open(args.baseline))
        cal_committed = committed["benchmarks"][CALIBRATION]["after_ns"]
        cal_measured = results[CALIBRATION]
        scale = cal_measured / cal_committed
        print("calibration scale %.2fx (machine vs committed baseline)" %
              scale, file=sys.stderr)
        failures = []
        for name in TRACKED:
            entry = committed["benchmarks"].get(name)
            if entry is None or name not in results:
                continue
            allowed = entry["after_ns"] * scale * (1.0 + args.tolerance)
            if results[name] > allowed:
                failures.append(
                    "%s: %.0f ns > allowed %.0f ns (committed %.0f ns x "
                    "%.2f scale x %.0f%% tolerance)" %
                    (name, results[name], allowed, entry["after_ns"], scale,
                     (1.0 + args.tolerance) * 100))
        if args.study and study is not None:
            want = committed.get("study", {}).get("cache_md5")
            if want and study["cache_md5"] != want:
                failures.append(
                    "study output changed: cache md5 %s != committed %s" %
                    (study["cache_md5"], want))
        if failures:
            print("REGRESSION:", file=sys.stderr)
            for f in failures:
                print("  " + f, file=sys.stderr)
            sys.exit(1)
        print("check passed: no benchmark regressed beyond %.0f%%" %
              (args.tolerance * 100))

    if args.update:
        doc = json.load(open(args.baseline)) if os.path.exists(
            args.baseline) else {"benchmarks": {}}
        for name, ns in results.items():
            entry = doc["benchmarks"].setdefault(name, {})
            entry["after_ns"] = round(ns, 1)
            if "before_ns" in entry:
                entry["speedup"] = round(entry["before_ns"] / ns, 2)
        doc["derived_after"] = {k: round(v, 1) for k, v in derived.items()}
        if study is not None:
            doc.setdefault("study", {}).update({
                "seed": study["seed"], "threads": study["threads"],
                "after_wall_seconds": study["wall_seconds"],
                "cache_md5": study["cache_md5"],
            })
        json.dump(doc, open(args.baseline, "w"), indent=2, sort_keys=True)
        open(args.baseline, "a").write("\n")
        print("updated %s" % args.baseline)


if __name__ == "__main__":
    main()
