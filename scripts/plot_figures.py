#!/usr/bin/env python3
"""Plot the regenerated paper figures from the CSV series in fig_data/.

The bench binaries render every figure as ASCII and also export the series as
CSV; this optional helper turns those CSVs into PNGs that can be laid side by
side with the paper's plots.

Usage:
    python3 scripts/plot_figures.py [--data fig_data] [--out fig_png]

Requires matplotlib (not needed by the build, tests or benches).
"""

import argparse
import csv
import os
import sys
from collections import defaultdict


def load_series(path):
    """Returns {series_label: ([x...], [y...])} for a CDF-style CSV."""
    series = defaultdict(lambda: ([], []))
    with open(path) as f:
        reader = csv.DictReader(f)
        fields = reader.fieldnames or []
        for row in reader:
            if "series" in fields and "x" in fields:
                xs, ys = series[row["series"]]
                xs.append(float(row["x"]))
                ys.append(float(row["cdf"]))
            elif "label" in fields and "count" in fields:
                xs, ys = series["counts"]
                xs.append(row["label"])
                ys.append(float(row["count"]))
            else:
                # Generic two-or-more-column numeric CSV (fig01, fig28, ...).
                xs, ys = series["data"]
                xs.append(float(row[fields[0]]))
                ys.append(float(row[fields[1]]))
    return dict(series), (reader.fieldnames or [])


def plot_file(plt, path, out_dir):
    name = os.path.splitext(os.path.basename(path))[0]
    series, fields = load_series(path)
    if not series:
        return False
    fig, ax = plt.subplots(figsize=(6, 4))
    bar_chart = "counts" in series
    if bar_chart:
        labels, values = series["counts"]
        ax.barh(labels, values)
        ax.set_xlabel("count")
    else:
        for label, (xs, ys) in sorted(series.items()):
            ax.plot(xs, ys, label=label, linewidth=1.4)
        if len(series) > 1:
            ax.legend(fontsize=8)
        ax.set_xlabel(fields[1] if fields and fields[0] == "series"
                      else (fields[0] if fields else "x"))
        if "cdf" in (fields or []):
            ax.set_ylabel("Cumulative Density Function")
            ax.set_ylim(0, 1.02)
    ax.set_title(name.replace("_", " "))
    ax.grid(True, alpha=0.3)
    fig.tight_layout()
    fig.savefig(os.path.join(out_dir, name + ".png"), dpi=130)
    plt.close(fig)
    return True


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--data", default="fig_data")
    parser.add_argument("--out", default="fig_png")
    args = parser.parse_args()

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    if not os.path.isdir(args.data):
        sys.exit(f"{args.data}/ not found — run the bench binaries first "
                 "(e.g. ./build/bench/bench_fig_all)")
    os.makedirs(args.out, exist_ok=True)
    plotted = 0
    for entry in sorted(os.listdir(args.data)):
        if entry.endswith(".csv"):
            if plot_file(plt, os.path.join(args.data, entry), args.out):
                plotted += 1
    print(f"wrote {plotted} figures to {args.out}/")


if __name__ == "__main__":
    main()
