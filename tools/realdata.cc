// realdata — the study analysis tool (the paper's Notes section promises
// "an accompanying analysis tool called RealData"): query a study's trace
// records from the shared cache, slice them by any dimension, and export.
//
// Usage:
//   realdata summary                       study totals (§IV)
//   realdata fig <5..28>                   regenerate one paper figure
//   realdata slice [--country US] [--connection modem|dsl|t1]
//                  [--protocol TCP|UDP] [--server US/CNN]
//                  [--metric fps|jitter|bandwidth|rating]
//   realdata users                         per-user play/rate counts
//   realdata servers                       per-server stats
//   realdata export <dir>                  all records as CSV
//
// Flags: --scale <0..1> (fraction of the study to simulate if no cache),
//        --seed <n>, --threads <n>.
//        --trace <path> (Chrome trace_event JSON of every play; forces a
//        fresh run since traces are never cached) and
//        --trace-play <user,play> (restrict tracing to one play).
//        --telemetry (per-play time-series sampling),
//        --telemetry-interval-ms <n> (sim-time sample spacing, default 500),
//        --series-csv <path> (export every sampled series as CSV),
//        --flight-dir <dir> (anomaly flight-recorder JSON dumps; implies
//        --telemetry and event tracing), --profile (worker self-profile).
//        Like --trace, these force a fresh run: series live only in memory.
//        Malformed numeric flag values are an error (exit 2), not a
//        silent fallback to the default.
//        --status-port <0..65535> (embedded HTTP status exporter on
//        127.0.0.1: GET /metrics Prometheus text, /progress JSON, /healthz;
//        0 picks an ephemeral port, announced on stderr),
//        --status-hold-ms <n> (keep serving n ms after the command
//        finishes, for scrapers), --heartbeat-dir <dir> (campaign only:
//        atomic-rename shard heartbeat JSON refreshed per chunk; see
//        `rvmerge --status`). All wall-clock-side: the study cache bytes
//        are identical with the exporter on or off.
#include <unistd.h>

#include <chrono>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <thread>

#include "obs/chrome_trace.h"
#include "obs/heartbeat.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "stats/csv.h"
#include "stats/summary.h"
#include "study/analysis.h"
#include "study/cache.h"
#include "study/campaign.h"
#include "study/figures.h"
#include "study/telemetry_report.h"
#include "transport/congestion_control.h"
#include "util/args.h"
#include "util/strings.h"

namespace {

using namespace rv;
using study::Records;
using util::format_double;

int cmd_summary(const study::StudyResult& result) {
  std::cout << study::study_summary(result);
  return 0;
}

int cmd_fig(const study::StudyResult& result, const study::StudyConfig& cfg,
            int fig) {
  using F = std::string (*)(const study::StudyResult&);
  static const std::map<int, F> table = {
      {5, &study::fig05_clips_per_user},
      {6, &study::fig06_rated_per_user},
      {7, &study::fig07_user_countries},
      {8, &study::fig08_server_countries},
      {9, &study::fig09_us_states},
      {10, &study::fig10_availability},
      {11, &study::fig11_framerate_all},
      {12, &study::fig12_framerate_by_net},
      {13, &study::fig13_bandwidth_by_net},
      {14, &study::fig14_framerate_by_server_region},
      {15, &study::fig15_framerate_by_user_region},
      {16, &study::fig16_protocol_mix},
      {17, &study::fig17_framerate_by_protocol},
      {18, &study::fig18_bandwidth_by_protocol},
      {19, &study::fig19_framerate_by_pc},
      {20, &study::fig20_jitter_all},
      {21, &study::fig21_jitter_by_net},
      {22, &study::fig22_jitter_by_server_region},
      {23, &study::fig23_jitter_by_user_region},
      {24, &study::fig24_jitter_by_protocol},
      {25, &study::fig25_jitter_by_bandwidth},
      {26, &study::fig26_quality_all},
      {27, &study::fig27_quality_by_net},
      {28, &study::fig28_quality_vs_bandwidth},
  };
  if (fig == 1) {
    std::cout << study::fig01_buffering(cfg);
    return 0;
  }
  const auto it = table.find(fig);
  if (it == table.end()) {
    std::cerr << "no such figure: " << fig << " (1, 5..28)\n";
    return 1;
  }
  std::cout << it->second(result);
  return 0;
}

int cmd_slice(const study::StudyResult& result, const util::Args& args) {
  Records records = result.played();
  if (const auto v = args.get("country")) {
    records = study::filter(records, [&](const tracer::TraceRecord& r) {
      return r.country == *v;
    });
  }
  if (const auto v = args.get("connection")) {
    records = study::filter(records, [&](const tracer::TraceRecord& r) {
      const auto name = world::connection_class_name(r.connection);
      return (*v == "modem" && name == "56k Modem") ||
             (*v == "dsl" && name == "DSL/Cable") ||
             (*v == "t1" && name == "T1/LAN") || name == *v;
    });
  }
  if (const auto v = args.get("protocol")) {
    records = study::filter(records, [&](const tracer::TraceRecord& r) {
      return util::iequals(net::protocol_name(r.stats.protocol), *v);
    });
  }
  if (const auto v = args.get("server")) {
    records = study::filter(records, [&](const tracer::TraceRecord& r) {
      return r.server_name == *v;
    });
  }
  if (records.empty()) {
    std::cout << "no records match\n";
    return 1;
  }
  const std::string metric = args.get_or("metric", "fps");
  std::vector<double> values;
  if (metric == "jitter") {
    values = study::jitters_ms(records);
  } else if (metric == "bandwidth") {
    values = study::bandwidths_kbps(records);
  } else if (metric == "rating") {
    values = study::ratings(records);
  } else {
    values = study::frame_rates(records);
  }
  if (values.empty()) {
    std::cout << "no values (rating requires rated records)\n";
    return 1;
  }
  stats::Summary summary;
  summary.add_all(values);
  std::cout << records.size() << " records, metric=" << metric << "\n";
  std::cout << "  mean   " << format_double(summary.mean(), 2) << "\n";
  std::cout << "  stddev " << format_double(summary.stddev(), 2) << "\n";
  std::cout << "  min    " << format_double(summary.min(), 2) << "\n";
  std::cout << "  p25    " << format_double(stats::quantile(values, 0.25), 2)
            << "\n";
  std::cout << "  median " << format_double(stats::quantile(values, 0.50), 2)
            << "\n";
  std::cout << "  p75    " << format_double(stats::quantile(values, 0.75), 2)
            << "\n";
  std::cout << "  max    " << format_double(summary.max(), 2) << "\n";
  return 0;
}

int cmd_users(const study::StudyResult& result) {
  std::map<int, std::pair<int, int>> counts;  // id -> (played, rated)
  for (const auto& r : result.records) {
    if (r.analyzable()) ++counts[r.user_id].first;
    if (r.rated()) ++counts[r.user_id].second;
  }
  std::cout << "id  country        state conn        plays rated\n";
  for (const auto& u : result.users) {
    const auto it = counts.find(u.id);
    std::cout << "  " << u.id << "\t" << u.country << "\t" << u.us_state
              << "\t" << world::connection_class_name(u.connection) << "\t"
              << (it == counts.end() ? 0 : it->second.first) << "\t"
              << (it == counts.end() ? 0 : it->second.second)
              << (u.rtsp_blocked ? "\t(rtsp blocked, excluded)" : "")
              << "\n";
  }
  return 0;
}

int cmd_servers(const study::StudyResult& result) {
  const auto played = result.played();
  const auto unavailable = study::unavailability_by_server(result.accesses());
  std::map<std::string, Records> by_server;
  for (const auto* r : played) by_server[r->server_name].push_back(r);
  std::cout << "server        plays  mean-fps  mean-jitter  unavailable\n";
  for (const auto& [name, records] : by_server) {
    std::cout << "  " << name
              << std::string(name.size() < 13 ? 13 - name.size() : 1, ' ')
              << records.size() << "\t"
              << format_double(stats::mean_of(study::frame_rates(records)), 1)
              << "\t"
              << format_double(stats::mean_of(study::jitters_ms(records)), 0)
              << "ms\t"
              << format_double(
                     (unavailable.count(name) != 0u ? unavailable.at(name)
                                                    : 0.0) * 100.0, 1)
              << "%\n";
  }
  return 0;
}

int cmd_export(const study::StudyResult& result, const std::string& dir) {
  std::filesystem::create_directories(dir);
  stats::CsvWriter csv(dir + "/records.csv");
  csv.write_row({"user_id", "country", "state", "user_region", "connection",
                 "pc_class", "server", "server_country", "clip_id",
                 "available", "protocol", "encoded_kbps", "measured_kbps",
                 "encoded_fps", "measured_fps", "jitter_ms", "frames_played",
                 "frames_dropped", "rebuffer_events", "preroll_sec",
                 "cpu_utilization", "rating"});
  for (const auto& r : result.records) {
    if (r.rtsp_blocked_user) continue;
    csv.write_row(
        {std::to_string(r.user_id), r.country, r.us_state,
         std::string(world::user_region_group_name(r.user_group)),
         std::string(world::connection_class_name(r.connection)), r.pc_class,
         r.server_name, r.server_country, std::to_string(r.clip_id),
         r.available ? "1" : "0",
         std::string(net::protocol_name(r.stats.protocol)),
         format_double(to_kbps(r.stats.encoded_bandwidth), 1),
         format_double(to_kbps(r.stats.measured_bandwidth), 1),
         format_double(r.stats.encoded_fps, 2),
         format_double(r.stats.measured_fps, 2),
         format_double(r.stats.jitter_ms, 1),
         std::to_string(r.stats.frames_played),
         std::to_string(r.stats.frames_dropped),
         std::to_string(r.stats.rebuffer_events),
         format_double(r.stats.preroll_seconds, 2),
         format_double(r.stats.cpu_utilization, 3),
         r.rated() ? format_double(r.rating, 2) : "-"});
  }
  std::cout << "wrote " << dir << "/records.csv\n";
  return 0;
}

int cmd_write_trace(const study::StudyResult& result,
                    const std::string& path) {
  std::vector<obs::PlayTrack> tracks;
  int last_user = -1;
  std::uint32_t tid = 0;
  for (const auto& r : result.records) {
    // Records are in plan order (user-major, play-minor), so the running
    // index within a user is the play index --trace-play filters on.
    if (r.user_id != last_user) {
      last_user = r.user_id;
      tid = 0;
    } else {
      ++tid;
    }
    if (!r.obs.enabled) continue;
    obs::PlayTrack t;
    t.pid = static_cast<std::uint32_t>(r.user_id);
    t.tid = tid;
    t.process_name =
        "user " + std::to_string(r.user_id) + " (" +
        std::string(world::connection_class_name(r.connection)) + ", " +
        r.country.str() + ")";
    t.thread_name = "play " + std::to_string(tid) + " clip " +
                    std::to_string(r.clip_id) + " " + r.server_name.str();
    t.obs = &r.obs;
    t.counters = study::chrome_counter_series(r.series);
    tracks.push_back(t);
  }
  if (!obs::write_chrome_trace(path, tracks)) {
    std::cerr << "cannot write trace file: " << path << "\n";
    return 1;
  }
  const obs::Counters totals = study::counter_totals(result.records);
  std::cout << "wrote " << path << " (" << tracks.size()
            << " traced plays)\n";
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(obs::Counter::kCount); ++i) {
    std::cout << "  " << obs::counter_name(static_cast<obs::Counter>(i))
              << " = " << totals.v[i] << "\n";
  }
  return 0;
}

// Parses a strict "i/N" shard spec into (index, count). Returns false on
// anything else (missing slash, non-integers, i >= N, N < 1).
bool parse_shard(const std::string& spec, std::uint32_t* index,
                 std::uint32_t* count) {
  const auto slash = spec.find('/');
  if (slash == std::string::npos) return false;
  const auto i = util::parse_int(spec.substr(0, slash));
  const auto n = util::parse_int(spec.substr(slash + 1));
  if (!i || !n || *n < 1 || *i < 0 || *i >= *n) return false;
  *index = static_cast<std::uint32_t>(*i);
  *count = static_cast<std::uint32_t>(*n);
  return true;
}

// realdata campaign: a bounded-memory scaled study shard (see
// study/campaign.h). Unlike the other commands it never touches the study
// cache — its output is the mergeable rollup (and optional spill), not an
// in-memory StudyResult.
int cmd_campaign(const study::StudyConfig& study_cfg, const util::Args& args,
                 const std::string& heartbeat_dir) {
  study::CampaignConfig cc;
  cc.study = study_cfg;
  const auto plays_scale = args.get_int("plays-scale", 1);
  if (plays_scale < 1) {
    std::cerr << "--plays-scale must be a positive integer (got "
              << plays_scale << ")\n";
    return 2;
  }
  cc.plays_scale = static_cast<std::uint64_t>(plays_scale);
  if (const auto shard = args.get("shard")) {
    if (!parse_shard(*shard, &cc.shard_index, &cc.shard_count)) {
      std::cerr << "--shard expects i/N with 0 <= i < N (got '" << *shard
                << "')\n";
      return 2;
    }
  }
  if (args.has("spill-dir")) {
    cc.spill_dir = args.get_or("spill-dir", "");
    if (cc.spill_dir.empty()) {
      std::cerr << "--spill-dir requires a directory\n";
      return 2;
    }
  }
  const auto chunk_users = args.get_int("chunk-users", 63);
  if (chunk_users < 1) {
    std::cerr << "--chunk-users must be a positive integer (got "
              << chunk_users << ")\n";
    return 2;
  }
  cc.chunk_users = static_cast<std::uint64_t>(chunk_users);
  const double watch = args.get_double("watch", 60.0);
  if (args.has("watch") && !(watch > 0.0)) {
    std::cerr << "--watch must be a positive number of seconds\n";
    return 2;
  }
  cc.study.tracer.watch_duration = seconds_to_sim(watch);
  const std::string rollup_out = args.get_or("rollup-out", "");
  if (args.has("rollup-out") && rollup_out.empty()) {
    std::cerr << "--rollup-out requires a file path\n";
    return 2;
  }
  if (!args.errors().empty()) {
    for (const auto& err : args.errors()) std::cerr << err << "\n";
    return 2;
  }

  // Shard label on every exported series, so a Prometheus scrape of N
  // shards stays distinguishable.
  if (obs::MetricsRegistry* reg = obs::installed_metrics()) {
    if (cc.shard_count > 1) {
      reg->set_common_label("shard", std::to_string(cc.shard_index));
    }
  }

  // Refreshes DIR/heartbeat-<i>.json (atomic rename) from the same registry
  // snapshot the /progress endpoint serves. Best-effort: a failing disk
  // must not kill the campaign, so failures only warn.
  const auto emit_heartbeat = [&](const char* status) {
    if (heartbeat_dir.empty()) return;
    obs::MetricsRegistry* reg = obs::installed_metrics();
    if (reg == nullptr) return;
    const obs::ProgressSnapshot snap = obs::snapshot_progress(*reg);
    obs::Heartbeat hb;
    hb.shard_index = cc.shard_index;
    hb.shard_count = cc.shard_count;
    hb.pid = static_cast<std::int64_t>(::getpid());
    hb.timestamp_unix = obs::wall_clock_unix();
    hb.status = status;
    hb.users_done = snap.users_done;
    hb.users_total = snap.users_total;
    hb.plays = snap.plays;
    hb.last_fold_user = static_cast<std::uint64_t>(
        reg->gauge(obs::MetricGauge::kLastFoldUser));
    hb.plays_per_sec = snap.plays_per_sec;
    hb.rss_kb = snap.rss_kb;
    hb.seed = cc.study.seed;
    std::string err;
    if (!obs::write_heartbeat(heartbeat_dir, hb, &err)) {
      std::cerr << "heartbeat: " << err << "\n";
    }
  };

  // Coarse progress to stderr (~every 5%), so multi-hour campaigns are
  // observable without flooding the log. Rate and ETA come from the same
  // registry snapshot the /progress endpoint serves — one source of truth,
  // no second clock path. The heartbeat refreshes on every chunk.
  std::uint64_t last_decile = 0;
  cc.progress = [&](std::uint64_t plays, std::uint64_t done,
                    std::uint64_t total) {
    const std::uint64_t pct = total == 0 ? 100 : 100 * done / total;
    if (pct / 5 > last_decile || done == total) {
      last_decile = pct / 5;
      std::cerr << "campaign: " << done << "/" << total << " users, " << plays
                << " plays";
      if (obs::MetricsRegistry* reg = obs::installed_metrics()) {
        const obs::ProgressSnapshot snap = obs::snapshot_progress(*reg);
        std::cerr << ", " << format_double(snap.plays_per_sec, 1)
                  << " plays/s";
        if (snap.eta_seconds >= 0.0) {
          std::cerr << ", ETA " << format_double(snap.eta_seconds, 0) << "s";
        }
      }
      std::cerr << "\n";
    }
    emit_heartbeat("running");
  };

  const study::CampaignResult res = study::run_campaign(cc);
  emit_heartbeat("done");
  const double per_core =
      res.execute_seconds > 0.0
          ? static_cast<double>(res.plays) /
                (res.execute_seconds * res.threads)
          : 0.0;
  std::cout << "campaign: shard " << cc.shard_index << "/" << cc.shard_count
            << ", scale " << cc.plays_scale << ": " << res.plays
            << " plays over " << res.users << " users\n";
  std::cout << "throughput: " << format_double(per_core, 1)
            << " plays/s/core (" << format_double(res.execute_seconds, 1)
            << " s wall, " << res.threads << " thread(s))\n";
  std::cout << "peak rss: " << res.peak_rss_kb << " KiB\n";
  if (!res.spill_path.empty()) {
    std::error_code ec;
    const auto bytes = std::filesystem::file_size(res.spill_path, ec);
    std::cout << "spill: " << res.spill_path << " ("
              << (ec ? 0 : static_cast<std::uintmax_t>(bytes))
              << " bytes)\nrollup: " << res.rollup_path << "\n";
  }
  if (!rollup_out.empty()) {
    if (!res.rollup.save(rollup_out)) {
      std::cerr << "cannot write rollup file: " << rollup_out << "\n";
      return 1;
    }
    std::cout << "rollup: " << rollup_out << "\n";
  }
  std::cout << "\n" << res.rollup.render();
  return 0;
}

// Keeps the status exporter serving a little longer after the command
// finishes (so a scraper polling /progress can observe the final state),
// simply by delaying the StatusServer destructor.
struct StatusHold {
  std::int64_t ms = 0;
  ~StatusHold() {
    if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
};

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  if (args.positional().empty() || args.has("help")) {
    std::cout << "usage: realdata <summary|fig N|slice|users|servers|"
                 "export DIR|campaign> [--scale X] [--seed N] [--threads N] "
                 "[--cc reno|cubic|bbr] [--cache-dir DIR] "
                 "[--faults [--outage-scale X]] [--trace PATH "
                 "[--trace-play U,P]] [--telemetry] "
                 "[--telemetry-interval-ms N] [--series-csv PATH] "
                 "[--flight-dir DIR] [--profile] [--status-port P "
                 "[--status-hold-ms N]] [slice flags]\n"
                 "       realdata campaign [--plays-scale N] [--shard i/N] "
                 "[--spill-dir DIR] [--rollup-out PATH] [--chunk-users N] "
                 "[--watch SEC] [--heartbeat-dir DIR]\n";
    return args.has("help") ? 0 : 1;
  }

  study::StudyConfig config;
  config.play_scale = args.get_double("scale", 1.0);
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 2001));
  config.threads = static_cast<int>(args.get_int("threads", 0));
  if (const auto cc = args.get("cc")) {
    const auto parsed = transport::parse_cc_algorithm(*cc);
    if (!parsed) {
      std::cerr << "--cc expects one of reno|cubic|bbr (got '" << *cc
                << "')\n";
      return 2;
    }
    config.tracer.tcp_cc = *parsed;
  }
  if (args.has("faults")) {
    // Mechanistic fault injection: per-site outage schedules instead of the
    // Bernoulli availability model (plus any FaultConfig defaults).
    config.tracer.faults.enabled = true;
    config.tracer.faults.outage_scale =
        args.get_double("outage-scale", 1.0);
  }
  const bool want_trace = args.has("trace");
  const std::string trace_path = args.get_or("trace", "");
  if (want_trace) {
    if (trace_path.empty()) {
      std::cerr << "--trace requires a file path\n";
      return 2;
    }
    config.tracer.obs.enabled = true;
    if (const auto tp = args.get("trace-play")) {
      const auto parsed = obs::parse_trace_play(*tp);
      if (!parsed) {
        std::cerr << "--trace-play expects exactly <user,play> with "
                     "non-negative integers (got '" << *tp << "')\n";
        return 2;
      }
      config.tracer.obs.filter_user = parsed->first;
      config.tracer.obs.filter_play = parsed->second;
    }
  }

  // Telemetry / flight-recorder / profiling flags, validated strictly.
  const bool want_series_csv = args.has("series-csv");
  const std::string series_csv = args.get_or("series-csv", "");
  if (want_series_csv && series_csv.empty()) {
    std::cerr << "--series-csv requires a file path\n";
    return 2;
  }
  const bool want_flight = args.has("flight-dir");
  const std::string flight_dir = args.get_or("flight-dir", "");
  if (want_flight && flight_dir.empty()) {
    std::cerr << "--flight-dir requires a directory\n";
    return 2;
  }
  const bool want_telemetry =
      args.has("telemetry") || want_series_csv || want_flight;
  const auto interval_ms = args.get_int("telemetry-interval-ms", 500);
  if (args.has("telemetry-interval-ms") && interval_ms <= 0) {
    std::cerr << "--telemetry-interval-ms must be a positive integer (got "
              << interval_ms << ")\n";
    return 2;
  }
  if (want_telemetry) {
    config.tracer.telemetry.enabled = true;
    config.tracer.telemetry.interval = msec(interval_ms);
  }
  // Flight dumps carry the full event ring, so anomaly capture turns the
  // obs layer on too.
  if (want_flight) config.tracer.obs.enabled = true;
  const bool want_profile = args.has("profile");
  config.profile = want_profile;

  const std::string cache_dir = args.get_or("cache-dir", "");
  if (args.has("cache-dir") && cache_dir.empty()) {
    std::cerr << "--cache-dir requires a directory\n";
    return 2;
  }

  // Live observability flags (strict: anything malformed is exit 2). All
  // wall-clock-side — none of these feed the sim or the cache fingerprint,
  // so the study cache bytes are identical with them on or off.
  int status_port = -1;
  if (args.has("status-port")) {
    const std::string raw = args.get_or("status-port", "");
    const auto parsed = obs::parse_status_port(raw);
    if (!parsed) {
      std::cerr << "--status-port expects an integer in [0, 65535] (got '"
                << raw << "')\n";
      return 2;
    }
    status_port = *parsed;
  }
  const auto status_hold_ms = args.get_int("status-hold-ms", 0);
  if (args.has("status-hold-ms") && status_hold_ms < 0) {
    std::cerr << "--status-hold-ms must be a non-negative integer (got "
              << status_hold_ms << ")\n";
    return 2;
  }
  std::string heartbeat_dir;
  if (args.has("heartbeat-dir")) {
    heartbeat_dir = args.get_or("heartbeat-dir", "");
    if (heartbeat_dir.empty()) {
      std::cerr << "--heartbeat-dir requires a directory\n";
      return 2;
    }
    // Fail fast on an unwritable directory rather than warning once per
    // chunk for the whole campaign.
    std::error_code ec;
    std::filesystem::create_directories(heartbeat_dir, ec);
    const std::string probe = heartbeat_dir + "/.rv-heartbeat-probe";
    if (std::ofstream os(probe); !os || !(os << "probe\n")) {
      std::cerr << "--heartbeat-dir is not writable: " << heartbeat_dir
                << "\n";
      return 2;
    }
    std::filesystem::remove(probe, ec);
  }

  // The registry is always installed (the hooks are near-free and the
  // stderr progress line reads it); the HTTP exporter only with
  // --status-port. Declaration order matters: the hold sleeps first, then
  // the server stops, then the registry dies.
  obs::MetricsRegistry metrics;
  obs::install_metrics(&metrics);
  std::unique_ptr<obs::StatusServer> status_server;
  StatusHold status_hold;
  if (status_port >= 0) {
    status_server = std::make_unique<obs::StatusServer>(&metrics);
    std::string err;
    if (!status_server->start(status_port, &err)) {
      std::cerr << "--status-port: " << err << "\n";
      return 2;
    }
    status_hold.ms = status_hold_ms;
    std::cerr << "status: serving http://127.0.0.1:" << status_server->port()
              << "/{metrics,progress,healthz}\n";
  }

  if (args.positional()[0] == "campaign") {
    try {
      return cmd_campaign(config, args, heartbeat_dir);
    } catch (const std::exception& e) {
      std::cerr << "campaign failed: " << e.what() << "\n";
      return 1;
    }
  }

  if (!args.errors().empty()) {
    for (const auto& err : args.errors()) std::cerr << err << "\n";
    return 2;
  }
  // Traces, series and profiles live only in memory, so such a run cannot be
  // satisfied from the cache; it re-runs and re-saves byte-identical cache
  // contents.
  const bool force_run = want_trace || want_telemetry || want_profile ||
                         config.tracer.obs.enabled;
  const study::StudyResult result =
      study::run_study_cached(config, force_run, cache_dir);
  // Feed the registry for the study path too (run_campaign feeds itself):
  // /metrics after a study command reports what was analyzed, whether it
  // came from the cache or a fresh run.
  obs::metrics_gauge_set(obs::MetricGauge::kUsersPlanned,
                         static_cast<std::int64_t>(result.users.size()));
  obs::metrics_add(obs::Metric::kUsersCompleted, result.users.size());
  obs::metrics_add(obs::Metric::kPlaysCompleted, result.records.size());
  for (const auto& r : result.records) {
    if (!r.analyzable()) continue;
    obs::metrics_observe(obs::MetricHist::kPlayFps, r.stats.measured_fps);
    obs::metrics_observe(obs::MetricHist::kPlayBandwidthKbps,
                         to_kbps(r.stats.measured_bandwidth));
  }
  obs::metrics_gauge_set(obs::MetricGauge::kRssKb, obs::current_rss_kb());
  if (want_trace) {
    const int rc = cmd_write_trace(result, trace_path);
    if (rc != 0) return rc;
  }
  if (want_series_csv) {
    try {
      study::write_series_csv(series_csv, result.records);
    } catch (const std::exception& e) {
      std::cerr << "cannot write series CSV: " << e.what() << "\n";
      return 1;
    }
    std::cout << "wrote " << series_csv << "\n";
  }
  if (want_flight) {
    const int n = study::write_flight_records(flight_dir, result);
    if (n < 0) {
      std::cerr << "cannot write flight records under " << flight_dir << "\n";
      return 1;
    }
    std::cout << "wrote " << n << " flight record(s) under " << flight_dir
              << "\n";
  }

  int rc = 1;
  const std::string& command = args.positional()[0];
  if (command == "summary") {
    rc = cmd_summary(result);
  } else if (command == "fig") {
    if (args.positional().size() < 2) {
      std::cerr << "fig requires a figure number\n";
      return 1;
    }
    const auto fig = util::parse_int(args.positional()[1]);
    if (!fig) {
      std::cerr << "fig requires a figure number, got '"
                << args.positional()[1] << "'\n";
      return 2;
    }
    rc = cmd_fig(result, config, static_cast<int>(*fig));
  } else if (command == "slice") {
    rc = cmd_slice(result, args);
  } else if (command == "users") {
    rc = cmd_users(result);
  } else if (command == "servers") {
    rc = cmd_servers(result);
  } else if (command == "export") {
    rc = cmd_export(result, args.positional().size() > 1
                                ? args.positional()[1]
                                : "realdata_export");
  } else {
    std::cerr << "unknown command: " << command << "\n";
    return 1;
  }
  // The bottleneck/rollup table and the worker profile ride along after
  // whichever command ran.
  if (want_telemetry) {
    const std::string report = study::telemetry_report(result);
    if (!report.empty()) std::cout << "\n" << report;
  }
  if (want_profile) std::cout << "\n" << study::profile_report(result.profile);
  return rc;
}
