// rvmerge — merge campaign shard outputs into one rollup (and one spill).
//
// Usage:
//   rvmerge <shard-dir>... --out <dir> [--report]
//
// Each shard dir is a `realdata campaign --spill-dir` output: rollup.bin
// (mergeable aggregate) plus records.spill (columnar raw records). Shards
// must be given in shard order; contiguity of their user-id ranges is
// validated, so a missing or duplicated shard is an error, not a silently
// wrong merge. The merged rollup and spill are byte-identical to what a
// single-process run over the same user range writes — per-shard and merged
// md5s are printed so drift is visible at a glance.
//
// --report additionally prints the merged rollup's human-readable report.
//
// Status mode (no merge):
//   rvmerge --status <heartbeat-dir> [--stale-after SEC]
//
// Renders a campaign-wide table from the shard heartbeat files written by
// `realdata campaign --heartbeat-dir` (one row per shard: progress, rate,
// heartbeat age, state). A heartbeat older than --stale-after (default 15 s)
// is STALE while its pid is still alive and DEAD once the process is gone;
// shards that never wrote a heartbeat show as MISSING. Exit status: 0 when
// every shard is done or ok, 1 when any shard needs attention.
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "obs/heartbeat.h"
#include "study/campaign.h"
#include "study/spill.h"
#include "util/args.h"
#include "util/md5.h"

namespace {

int cmd_status(const rv::util::Args& args) {
  using namespace rv;
  const std::string dir = args.get_or("status", "");
  if (dir.empty()) {
    std::cerr << "--status requires a heartbeat directory\n";
    return 2;
  }
  const double stale_after = args.get_double("stale-after", 15.0);
  if (args.has("stale-after") && !(stale_after > 0.0)) {
    std::cerr << "--stale-after must be a positive number of seconds\n";
    return 2;
  }
  if (!args.errors().empty()) {
    for (const auto& err : args.errors()) std::cerr << err << "\n";
    return 2;
  }
  const auto heartbeats = obs::scan_heartbeats(dir);
  if (heartbeats.empty()) {
    std::cerr << "no heartbeat files under " << dir << "\n";
    return 1;
  }
  const std::string table = obs::render_status_table(
      heartbeats, obs::wall_clock_unix(), stale_after);
  std::cout << table;
  // "need attention" is rendered exactly when some shard is STALE, DEAD or
  // MISSING — surface that in the exit status for scripting.
  return table.find("need attention") == std::string::npos ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rv;
  const util::Args args(argc, argv);
  if (args.has("status")) return cmd_status(args);
  if (args.has("help") || args.positional().empty()) {
    std::cout << "usage: rvmerge <shard-dir>... --out <dir> [--report]\n"
                 "       rvmerge --status <heartbeat-dir> "
                 "[--stale-after SEC]\n";
    return args.has("help") ? 0 : 2;
  }
  const std::string out_dir = args.get_or("out", "");
  if (out_dir.empty()) {
    std::cerr << "--out requires a directory\n";
    return 2;
  }
  if (!args.errors().empty()) {
    for (const auto& err : args.errors()) std::cerr << err << "\n";
    return 2;
  }

  study::CampaignRollup merged;
  bool have_first = false;
  std::vector<std::string> spills;
  bool all_spills = true;
  for (const auto& dir : args.positional()) {
    const std::string rollup_path = dir + "/rollup.bin";
    const std::string spill_path = dir + "/records.spill";
    study::CampaignRollup shard;
    std::string error;
    if (!study::CampaignRollup::load(rollup_path, &shard, &error)) {
      std::cerr << error << "\n";
      return 1;
    }
    std::cout << "shard " << dir << ": users [" << shard.user_first << ", "
              << shard.user_first + shard.user_count << "), " << shard.records
              << " records, rollup md5 " << util::md5_file_hex(rollup_path);
    if (std::filesystem::exists(spill_path)) {
      std::cout << ", spill md5 " << util::md5_file_hex(spill_path);
      spills.push_back(spill_path);
    } else {
      all_spills = false;
    }
    std::cout << "\n";
    if (!have_first) {
      merged = std::move(shard);
      have_first = true;
    } else if (!merged.merge(shard, &error)) {
      std::cerr << error << "\n";
      return 1;
    }
  }

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::cerr << "cannot create output dir: " << out_dir << "\n";
    return 1;
  }
  const std::string merged_rollup = out_dir + "/rollup.bin";
  if (!merged.save(merged_rollup)) {
    std::cerr << "cannot write rollup file: " << merged_rollup << "\n";
    return 1;
  }
  std::cout << "merged: users [" << merged.user_first << ", "
            << merged.user_first + merged.user_count << "), " << merged.records
            << " records\n";
  std::cout << "merged rollup: " << merged_rollup << " md5 "
            << util::md5_file_hex(merged_rollup) << "\n";

  if (all_spills && !spills.empty()) {
    const std::string merged_spill = out_dir + "/records.spill";
    std::string error;
    if (!study::concat_spills(spills, merged_spill, &error)) {
      std::cerr << error << "\n";
      return 1;
    }
    std::cout << "merged spill: " << merged_spill << " md5 "
              << util::md5_file_hex(merged_spill) << "\n";
  } else if (!all_spills && !spills.empty()) {
    std::cerr << "warning: not every shard has records.spill; skipping spill "
                 "merge\n";
  }

  if (args.has("report")) std::cout << "\n" << merged.render();
  return 0;
}
