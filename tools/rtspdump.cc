// rtspdump — an mmdump-style monitor ([MCCS00], the paper's related work):
// attaches a passive tap to the simulated network, runs one streaming
// session, and dumps the control-protocol conversation plus per-second data
// flow totals, as a monitoring box on the path would see them.
//
// Usage:
//   rtspdump [--connection modem|dsl|t1] [--clip <0..97>] [--protocol auto|tcp]
//            [--seed <n>] [--packets]   (--packets: every data packet too)
#include <iostream>
#include <map>

#include "client/real_player.h"
#include "media/stream_wire.h"
#include "server/real_server.h"
#include "study/study.h"
#include "tracer/real_tracer.h"
#include "util/args.h"
#include "util/strings.h"
#include "world/path_builder.h"
#include "world/region_graph.h"
#include "world/servers.h"

namespace {

using namespace rv;

// Re-implements the session wiring of RealTracer::run_single with a tap in
// the middle (the tracer's entry point doesn't expose the network).
int run(const util::Args& args) {
  study::StudyConfig study_cfg;
  study_cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 2001));
  const media::Catalog catalog = study::make_catalog(study_cfg);
  const world::RegionGraph graph;

  world::UserProfile user;
  user.country = "US";
  user.us_state = "MA";
  user.region = world::Region::kUsEast;
  user.group = world::UserRegionGroup::kUsCanada;
  const std::string conn = args.get_or("connection", "dsl");
  user.connection = conn == "modem" ? world::ConnectionClass::kModem56k
                    : conn == "t1"  ? world::ConnectionClass::kT1Lan
                                    : world::ConnectionClass::kDslCable;
  user.pc_class = "Pentium II / 128-256";
  user.isp_load_lo = 0.3;
  user.isp_load_hi = 0.5;
  user.seed = study_cfg.seed;

  const auto playlist_index =
      static_cast<std::size_t>(args.get_int("clip", 0)) % catalog.size();
  const auto& site =
      world::server_sites()[media::Catalog::site_of(
          catalog.clip(playlist_index).id())];

  sim::Simulator sim;
  util::Rng rng(user.seed ^ 0xD0D0ull);
  world::PathBuilderConfig path_cfg;
  path_cfg.episode_probability = 0.0;
  world::PathBuilder builder(graph, path_cfg);
  const auto access = world::access_spec_for(user.connection, rng);
  world::PlayPath path = builder.build(sim, user, access, site, rng);
  path.start_cross_traffic();

  // The tap: control messages verbatim; data flow as per-second counters.
  const bool dump_packets = args.has("packets");
  std::map<std::pair<net::NodeId, net::NodeId>, std::int64_t> second_bytes;
  SimTime current_second = 0;
  auto flush_second = [&](SimTime now) {
    if (now / kUsecPerSec == current_second / kUsecPerSec) return;
    for (const auto& [flow, bytes] : second_bytes) {
      if (bytes > 0) {
        std::cout << util::format_double(to_seconds(current_second), 0)
                  << "s  data " << flow.first << "->" << flow.second << "  "
                  << util::format_double(bytes * 8.0 / 1000.0, 1)
                  << " Kbit\n";
      }
    }
    second_bytes.clear();
    current_second = now;
  };
  path.network->set_delivery_tap([&](const net::Packet& p,
                                     net::NodeId at_node, SimTime when) {
    // Report each packet once, at its final hop into either endpoint (like
    // a monitor on the access links).
    if (at_node != p.dst ||
        (p.dst != path.client_node && p.dst != path.server_node)) {
      return;
    }
    flush_second(when);
    // Control messages (RTSP/HTTP text) in the clear.
    for (const auto& chunk : p.chunks) {
      if (const auto* text = dynamic_cast<const media::RtspTextMeta*>(
              chunk.meta.get())) {
        const auto first_line = util::split(text->text, '\r')[0];
        std::cout << util::format_double(to_seconds(when), 3) << "s  "
                  << net::protocol_name(p.proto) << " " << p.src << "->"
                  << p.dst << "  " << first_line << "\n";
      }
    }
    if (p.meta != nullptr &&
        dynamic_cast<const media::MediaPacketMeta*>(p.meta.get()) !=
            nullptr &&
        at_node == path.client_node) {
      second_bytes[{p.src, p.dst}] += p.payload_bytes();
      if (dump_packets) {
        const auto& m =
            static_cast<const media::MediaPacketMeta&>(*p.meta);
        std::cout << util::format_double(to_seconds(when), 3) << "s  UDP "
                  << p.src << "->" << p.dst << "  seq=" << m.seq
                  << " frame=" << m.frame_index << " level=" << m.level
                  << " bytes=" << m.payload_bytes << "\n";
      }
    }
  });

  server::RealServerApp server(*path.network, path.server_node, catalog,
                               server::RealServerConfig{}, rng.fork("srv"));
  client::RealPlayerConfig player_cfg;
  player_cfg.reported_bandwidth =
      world::reported_bandwidth_for(user.connection);
  player_cfg.prefer_udp = args.get_or("protocol", "auto") != "tcp";
  player_cfg.watch_duration = sec(20);
  client::RealPlayerApp player(*path.network, path.client_node,
                               {path.server_node, net::kRtspPort},
                               catalog.clip(playlist_index).id(), catalog,
                               player_cfg);
  player.start();
  sim.run_until(sec(60));
  flush_second(sim.now());
  std::cout << "\nsession: "
            << (player.stats().played_any_frame ? "played" : "did not play")
            << ", " << player.stats().packets_received
            << " media packets received\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  if (args.has("help")) {
    std::cout << "usage: rtspdump [--connection modem|dsl|t1] [--clip N]"
                 " [--protocol auto|tcp] [--seed N] [--packets]\n";
    return 0;
  }
  return run(args);
}
