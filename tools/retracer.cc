// retracer — play one clip through the simulator and print the RealTracer
// record, like running the paper's instrumented player once.
//
// Usage:
//   retracer [--connection modem|dsl|t1] [--pc <fig19-class>]
//            [--region us-east|us-west|europe|asia|japan|australia|
//                      s-america|middle-east]
//            [--clip <playlist-index 0..97>] [--protocol auto|tcp]
//            [--cc reno|cubic|bbr]
//            [--live] [--watch <seconds>] [--seed <n>] [--samples]
//            [--trace <path>] [--telemetry] [--telemetry-interval-ms <n>]
//            [--series-csv <path>]
//   retracer --spill-read <path> [--spill-record <k>]
//
// --spill-read seeks record k out of a campaign spill file (see
// docs/DESIGN.md on the columnar format) and prints it — the random-access
// path over spilled records.
//
// --trace writes the play's event trace as Chrome trace_event JSON (load in
// chrome://tracing or ui.perfetto.dev; see docs/OBSERVABILITY.md).
// --telemetry samples the play's time series (default every 500 ms of
// sim-time); with --trace the series also becomes "C"-phase counter tracks,
// and --series-csv exports it as CSV. Malformed numeric flag values exit 2
// instead of silently using the default.
//
// Examples:
//   retracer --connection modem --clip 8
//   retracer --connection dsl --region australia --protocol tcp --samples
// --status-port <0..65535> serves GET /metrics, /progress and /healthz on
// 127.0.0.1 while the play runs (0 = ephemeral, announced on stderr);
// --status-hold-ms keeps serving after the play finishes so a scraper can
// observe the final counters.
#include <chrono>
#include <exception>
#include <iostream>
#include <memory>
#include <thread>

#include "obs/chrome_trace.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "study/spill.h"
#include "study/study.h"
#include "study/telemetry_report.h"
#include "tracer/real_tracer.h"
#include "transport/congestion_control.h"
#include "util/args.h"
#include "util/strings.h"
#include "world/region_graph.h"

namespace {

using namespace rv;

world::ConnectionClass parse_connection(const std::string& s) {
  if (s == "modem") return world::ConnectionClass::kModem56k;
  if (s == "t1" || s == "lan") return world::ConnectionClass::kT1Lan;
  return world::ConnectionClass::kDslCable;
}

world::Region parse_region(const std::string& s) {
  const std::pair<const char*, world::Region> table[] = {
      {"us-east", world::Region::kUsEast},
      {"us-west", world::Region::kUsWest},
      {"europe", world::Region::kEurope},
      {"asia", world::Region::kAsia},
      {"japan", world::Region::kJapan},
      {"australia", world::Region::kAustralia},
      {"s-america", world::Region::kSouthAmerica},
      {"middle-east", world::Region::kMiddleEast},
  };
  for (const auto& [name, region] : table) {
    if (s == name) return region;
  }
  return world::Region::kUsEast;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  if (args.has("help")) {
    std::cout << "usage: retracer [--connection modem|dsl|t1] [--pc <class>]"
                 " [--region <name>] [--clip <0..97>] [--protocol auto|tcp]"
                 " [--cc reno|cubic|bbr]"
                 " [--live] [--watch <sec>] [--seed <n>] [--samples]"
                 " [--trace <path>] [--telemetry]"
                 " [--telemetry-interval-ms <n>] [--series-csv <path>]"
                 " [--status-port <p> [--status-hold-ms <n>]]\n"
                 "       retracer --spill-read <path> [--spill-record <k>]\n";
    return 0;
  }

  if (args.has("spill-read")) {
    const std::string spill_path = args.get_or("spill-read", "");
    if (spill_path.empty()) {
      std::cerr << "--spill-read requires a file path\n";
      return 2;
    }
    const auto record_index = args.get_int("spill-record", 0);
    if (record_index < 0) {
      std::cerr << "--spill-record must be a non-negative integer (got "
                << record_index << ")\n";
      return 2;
    }
    if (!args.errors().empty()) {
      for (const auto& err : args.errors()) std::cerr << err << "\n";
      return 2;
    }
    study::SpillReader reader;
    if (!reader.open(spill_path)) {
      std::cerr << reader.error() << "\n";
      return 1;
    }
    if (static_cast<std::uint64_t>(record_index) >= reader.records()) {
      std::cerr << "--spill-record " << record_index << " out of range ("
                << reader.records() << " records in " << spill_path << ")\n";
      return 2;
    }
    tracer::TraceRecord rec;
    if (!reader.read_record(static_cast<std::uint64_t>(record_index), rec)) {
      std::cerr << "corrupt spill frame in " << spill_path << "\n";
      return 1;
    }
    using util::format_double;
    std::cout << "spill:       " << spill_path << " (" << reader.records()
              << " records, " << reader.frames() << " frames)\n";
    std::cout << "record:      #" << record_index << " user " << rec.user_id
              << " clip " << rec.clip_id << " via " << rec.server_name << " ("
              << rec.server_country << ")\n";
    std::cout << "user:        " << rec.country
              << (rec.us_state.empty() ? "" : "/") << rec.us_state << ", "
              << world::connection_class_name(rec.connection) << ", "
              << rec.pc_class << "\n";
    if (!rec.available) {
      std::cout << "result:      clip unavailable\n";
      return 0;
    }
    std::cout << "transport:   " << net::protocol_name(rec.stats.protocol)
              << (rec.stats.fell_back_to_tcp ? " (fell back from UDP)" : "")
              << "\n";
    std::cout << "measured:    "
              << format_double(to_kbps(rec.stats.measured_bandwidth), 0)
              << " Kbps @ " << format_double(rec.stats.measured_fps, 1)
              << " fps, jitter " << format_double(rec.stats.jitter_ms, 1)
              << " ms\n";
    std::cout << "frames:      " << rec.stats.frames_played << " played, "
              << rec.stats.frames_dropped << " dropped; rebuffers "
              << rec.stats.rebuffer_events << " ("
              << format_double(rec.stats.rebuffer_seconds, 1) << " s); "
              << rec.stats.samples.size() << " samples\n";
    if (rec.rated()) {
      std::cout << "rating:      " << format_double(rec.rating, 1) << "\n";
    }
    return 0;
  }

  study::StudyConfig study_cfg;
  study_cfg.seed =
      static_cast<std::uint64_t>(args.get_int("seed", 2001));
  const media::Catalog catalog = study::make_catalog(study_cfg);
  const world::RegionGraph graph;

  tracer::TracerConfig tracer_cfg;
  tracer_cfg.live_content = args.has("live");
  if (const auto cc = args.get("cc")) {
    const auto parsed = transport::parse_cc_algorithm(*cc);
    if (!parsed) {
      std::cerr << "--cc expects one of reno|cubic|bbr (got '" << *cc
                << "')\n";
      return 2;
    }
    tracer_cfg.tcp_cc = *parsed;
  }
  tracer_cfg.watch_duration =
      seconds_to_sim(args.get_double("watch", 60.0));
  const std::string trace_path = args.get_or("trace", "");
  if (args.has("trace")) {
    if (trace_path.empty()) {
      std::cerr << "--trace requires a file path\n";
      return 2;
    }
    tracer_cfg.obs.enabled = true;
  }
  const bool want_series_csv = args.has("series-csv");
  const std::string series_csv = args.get_or("series-csv", "");
  if (want_series_csv && series_csv.empty()) {
    std::cerr << "--series-csv requires a file path\n";
    return 2;
  }
  const auto interval_ms = args.get_int("telemetry-interval-ms", 500);
  if (args.has("telemetry-interval-ms") && interval_ms <= 0) {
    std::cerr << "--telemetry-interval-ms must be a positive integer (got "
              << interval_ms << ")\n";
    return 2;
  }
  if (args.has("telemetry") || want_series_csv) {
    tracer_cfg.telemetry.enabled = true;
    tracer_cfg.telemetry.interval = msec(interval_ms);
  }
  const tracer::RealTracer tracer(catalog, graph, tracer_cfg);

  world::UserProfile user;
  user.country = "US";
  user.us_state = "MA";
  user.region = parse_region(args.get_or("region", "us-east"));
  user.group = world::UserRegionGroup::kUsCanada;
  user.connection = parse_connection(args.get_or("connection", "dsl"));
  user.pc_class = args.get_or("pc", "Pentium II / 128-256");
  user.isp_load_lo = 0.3;
  user.isp_load_hi = 0.6;
  user.seed = static_cast<std::uint64_t>(args.get_int("seed", 2001));

  const auto playlist_index = static_cast<std::size_t>(
      args.get_int("clip", 0)) % catalog.size();
  const bool force_tcp = args.get_or("protocol", "auto") == "tcp";

  int status_port = -1;
  if (args.has("status-port")) {
    const std::string raw = args.get_or("status-port", "");
    const auto parsed = obs::parse_status_port(raw);
    if (!parsed) {
      std::cerr << "--status-port expects an integer in [0, 65535] (got '"
                << raw << "')\n";
      return 2;
    }
    status_port = *parsed;
  }
  const auto status_hold_ms = args.get_int("status-hold-ms", 0);
  if (args.has("status-hold-ms") && status_hold_ms < 0) {
    std::cerr << "--status-hold-ms must be a non-negative integer (got "
              << status_hold_ms << ")\n";
    return 2;
  }

  if (!args.errors().empty()) {
    for (const auto& err : args.errors()) std::cerr << err << "\n";
    return 2;
  }

  obs::MetricsRegistry metrics;
  obs::install_metrics(&metrics);
  std::unique_ptr<obs::StatusServer> status_server;
  if (status_port >= 0) {
    status_server = std::make_unique<obs::StatusServer>(&metrics);
    std::string err;
    if (!status_server->start(status_port, &err)) {
      std::cerr << "--status-port: " << err << "\n";
      return 2;
    }
    std::cerr << "status: serving http://127.0.0.1:" << status_server->port()
              << "/{metrics,progress,healthz}\n";
  }
  obs::metrics_gauge_set(obs::MetricGauge::kUsersPlanned, 1);

  const auto rec = tracer.run_single(
      user, playlist_index,
      user.seed * 7919 + playlist_index, force_tcp);
  obs::metrics_add(obs::Metric::kPlaysCompleted);
  obs::metrics_add(obs::Metric::kUsersCompleted);
  if (rec.analyzable()) {
    obs::metrics_observe(obs::MetricHist::kPlayFps, rec.stats.measured_fps);
    obs::metrics_observe(obs::MetricHist::kPlayBandwidthKbps,
                         to_kbps(rec.stats.measured_bandwidth));
  }
  obs::metrics_gauge_set(obs::MetricGauge::kRssKb, obs::current_rss_kb());
  if (status_server && status_hold_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(status_hold_ms));
  }

  if (!trace_path.empty() && rec.obs.enabled) {
    obs::PlayTrack track;
    track.pid = static_cast<std::uint32_t>(user.id);
    track.tid = static_cast<std::uint32_t>(playlist_index);
    track.process_name =
        "user " + std::to_string(user.id) + " (" +
        std::string(world::connection_class_name(user.connection)) + ")";
    track.thread_name = "clip " + std::to_string(rec.clip_id) + " " +
                        rec.server_name.str();
    track.obs = &rec.obs;
    track.counters = study::chrome_counter_series(rec.series);
    if (!obs::write_chrome_trace(trace_path, {track})) {
      std::cerr << "cannot write trace file: " << trace_path << "\n";
      return 2;
    }
    std::cout << "trace:       " << trace_path << " ("
              << rec.obs.events.size() << " events)\n";
  }
  if (want_series_csv) {
    try {
      study::write_series_csv(series_csv, {rec});
    } catch (const std::exception& e) {
      std::cerr << "cannot write series CSV: " << e.what() << "\n";
      return 2;
    }
    std::cout << "series:      " << series_csv << " ("
              << rec.series.data.size() << " samples)\n";
  }
  if (rec.series.enabled) {
    std::cout << "telemetry:   " << rec.series.data.size()
              << " samples every "
              << util::format_double(to_seconds(rec.series.interval) * 1e3, 0)
              << " ms\n";
  }

  const auto& clip = catalog.clip(playlist_index);
  const auto& stats = rec.stats;
  using util::format_double;
  std::cout << "clip:        " << clip.title() << " ("
            << to_seconds(clip.duration()) << " s, "
            << clip.levels().size() << " levels, served by "
            << rec.server_name << ")\n";
  std::cout << "connection:  "
            << world::connection_class_name(user.connection) << " / "
            << user.pc_class << " / "
            << world::region_name(user.region) << "\n";
  if (!rec.available) {
    std::cout << "result:      clip unavailable (the Fig 10 case)\n";
    return 1;
  }
  std::cout << "transport:   " << net::protocol_name(stats.protocol)
            << (stats.fell_back_to_tcp ? " (fell back from UDP)" : "")
            << (tracer_cfg.live_content ? ", live" : "") << "\n";
  std::cout << "encoded:     "
            << format_double(to_kbps(stats.encoded_bandwidth), 0) << " Kbps @ "
            << format_double(stats.encoded_fps, 1) << " fps\n";
  std::cout << "measured:    "
            << format_double(to_kbps(stats.measured_bandwidth), 0)
            << " Kbps @ " << format_double(stats.measured_fps, 1)
            << " fps\n";
  std::cout << "jitter:      " << format_double(stats.jitter_ms, 1)
            << " ms\n";
  std::cout << "pre-roll:    " << format_double(stats.preroll_seconds, 1)
            << " s, rebuffers: " << stats.rebuffer_events << " ("
            << format_double(stats.rebuffer_seconds, 1) << " s)\n";
  std::cout << "frames:      " << stats.frames_played << " played, "
            << stats.frames_dropped << " dropped, "
            << stats.frames_cpu_scaled << " cpu-scaled\n";
  std::cout << "cpu:         "
            << format_double(stats.cpu_utilization * 100.0, 0) << "%\n";
  if (args.has("samples")) {
    std::cout << "\n t(s)  Kbps   fps\n";
    for (const auto& s : stats.samples) {
      std::cout << "  " << format_double(s.t_seconds, 0) << "\t"
                << format_double(to_kbps(s.bandwidth), 0) << "\t"
                << format_double(s.frame_rate, 0) << "\n";
    }
  }
  return stats.played_any_frame ? 0 : 1;
}
