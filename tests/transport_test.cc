#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/cross_traffic.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "transport/mux.h"
#include "transport/rate_control.h"
#include "transport/tcp.h"
#include "transport/udp.h"
#include "util/rng.h"

namespace rv::transport {
namespace {

// Tags sent along chunks/datagrams to verify framing.
struct TagMeta : net::PayloadMeta {
  explicit TagMeta(int tag) : tag(tag) {}
  int tag;
};

// A client/server pair joined by a configurable bottleneck path.
struct Pair {
  sim::Simulator sim;
  std::unique_ptr<net::Network> net_;
  net::NodeId client_id = 0;
  net::NodeId server_id = 0;
  net::NodeId router_a = 0;
  net::NodeId router_b = 0;
  std::unique_ptr<TransportMux> client_mux;
  std::unique_ptr<TransportMux> server_mux;

  explicit Pair(BitsPerSec bottleneck = mbps(2), SimTime delay = msec(20),
                std::int64_t queue_bytes = 64 * 1024) {
    net_ = std::make_unique<net::Network>(sim);
    client_id = net_->add_node("client");
    router_a = net_->add_node("ra");
    router_b = net_->add_node("rb");
    server_id = net_->add_node("server");
    net_->add_link(client_id, router_a, mbps(100), msec(1));
    net_->add_link(router_a, router_b, bottleneck, delay, queue_bytes);
    net_->add_link(router_b, server_id, mbps(100), msec(1));
    net_->compute_routes();
    client_mux = std::make_unique<TransportMux>(*net_, client_id);
    server_mux = std::make_unique<TransportMux>(*net_, server_id);
  }
};

TEST(Tcp, HandshakeEstablishesBothSides) {
  Pair p;
  bool server_up = false;
  bool client_up = false;
  std::unique_ptr<TcpConnection> accepted;
  TcpListener listener(*p.server_mux, 80, TcpConfig{},
                       [&](std::unique_ptr<TcpConnection> c) {
                         accepted = std::move(c);
                         accepted->set_on_established(
                             [&] { server_up = true; });
                       });
  TcpConnection client(*p.client_mux, TcpConfig{});
  client.set_on_established([&] { client_up = true; });
  client.connect({p.server_id, 80});
  p.sim.run_until(sec(2));
  EXPECT_TRUE(client_up);
  EXPECT_TRUE(server_up);
  ASSERT_NE(accepted, nullptr);
  EXPECT_TRUE(accepted->established());
}

TEST(Tcp, DeliversChunksInOrderWithMetadata) {
  Pair p;
  std::vector<int> tags;
  std::vector<std::int64_t> sizes;
  std::unique_ptr<TcpConnection> accepted;
  TcpListener listener(*p.server_mux, 80, TcpConfig{},
                       [&](std::unique_ptr<TcpConnection> c) {
                         accepted = std::move(c);
                         accepted->set_on_chunk(
                             [&](std::shared_ptr<const net::PayloadMeta> m,
                                 std::int64_t bytes) {
                               tags.push_back(
                                   static_cast<const TagMeta&>(*m).tag);
                               sizes.push_back(bytes);
                             });
                       });
  TcpConnection client(*p.client_mux, TcpConfig{});
  client.set_on_established([&] {
    client.send_chunk(500, std::make_shared<TagMeta>(1));
    client.send_chunk(2500, std::make_shared<TagMeta>(2));  // spans segments
    client.send_chunk(100, std::make_shared<TagMeta>(3));
  });
  client.connect({p.server_id, 80});
  p.sim.run_until(sec(5));
  EXPECT_EQ(tags, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sizes, (std::vector<std::int64_t>{500, 2500, 100}));
  ASSERT_NE(accepted, nullptr);
  EXPECT_EQ(accepted->stats().bytes_delivered, 3100u);
}

TEST(Tcp, BulkTransferApproachesBottleneckRate) {
  Pair p(mbps(2), msec(20));
  std::unique_ptr<TcpConnection> accepted;
  TcpListener listener(*p.server_mux, 80, TcpConfig{},
                       [&](std::unique_ptr<TcpConnection> c) {
                         accepted = std::move(c);
                       });
  TcpConnection client(*p.client_mux, TcpConfig{});
  client.set_on_established([&] {
    for (int i = 0; i < 2000; ++i) {
      client.send_chunk(1000, std::make_shared<TagMeta>(i));
    }
  });
  client.connect({p.server_id, 80});
  p.sim.run_until(sec(12));
  ASSERT_NE(accepted, nullptr);
  const double goodput =
      static_cast<double>(accepted->stats().bytes_delivered) * 8.0 /
      to_seconds(p.sim.now());
  // 2 Mbps is the ceiling; Reno without SACK on a deep drop-tail queue
  // sustains roughly half of it (no-new-data-during-recovery is
  // conservative). Anything under 40% would indicate a broken sender.
  EXPECT_GT(goodput, mbps(2) * 0.40);
  EXPECT_GT(accepted->stats().bytes_delivered, 1'000'000u);
}

TEST(Tcp, RecoversFromQueueOverflowLoss) {
  // Tiny bottleneck queue forces drops; all data must still arrive in order.
  Pair p(kbps(500), msec(30), 6'000);
  std::vector<int> tags;
  std::unique_ptr<TcpConnection> accepted;
  TcpListener listener(*p.server_mux, 80, TcpConfig{},
                       [&](std::unique_ptr<TcpConnection> c) {
                         accepted = std::move(c);
                         accepted->set_on_chunk(
                             [&](std::shared_ptr<const net::PayloadMeta> m,
                                 std::int64_t) {
                               tags.push_back(
                                   static_cast<const TagMeta&>(*m).tag);
                             });
                       });
  TcpConnection client(*p.client_mux, TcpConfig{});
  client.set_on_established([&] {
    for (int i = 0; i < 300; ++i) {
      client.send_chunk(1000, std::make_shared<TagMeta>(i));
    }
  });
  client.connect({p.server_id, 80});
  p.sim.run_until(sec(60));
  ASSERT_EQ(tags.size(), 300u);
  for (int i = 0; i < 300; ++i) EXPECT_EQ(tags[static_cast<size_t>(i)], i);
  ASSERT_NE(accepted, nullptr);
  EXPECT_GT(client.stats().retransmits, 0u);  // loss actually happened
}

TEST(Tcp, CongestionWindowCollapsesOnTimeout) {
  Pair p;
  TcpConnection client(*p.client_mux, TcpConfig{});
  std::unique_ptr<TcpConnection> accepted;
  TcpListener listener(*p.server_mux, 80, TcpConfig{},
                       [&](std::unique_ptr<TcpConnection> c) {
                         accepted = std::move(c);
                       });
  client.set_on_established([&] {
    for (int i = 0; i < 50; ++i) {
      client.send_chunk(1000, std::make_shared<TagMeta>(i));
    }
  });
  client.connect({p.server_id, 80});
  p.sim.run_until(sec(1));
  const double cwnd_before = client.cwnd_bytes();
  EXPECT_GT(cwnd_before, 2000.0);
  // Sever the network by dropping everything: simulate by disconnecting the
  // server sink. Easier: force an RTO by making the server mux unreachable is
  // not possible here, so instead verify RTO math directly on stats after a
  // lossy run (covered above) and cwnd growth here.
  EXPECT_GE(client.stats().segments_sent, 50u);
}

TEST(Tcp, CloseHandshakeCompletes) {
  Pair p;
  bool client_closed = false;
  bool server_closed = false;
  std::unique_ptr<TcpConnection> accepted;
  TcpListener listener(*p.server_mux, 80, TcpConfig{},
                       [&](std::unique_ptr<TcpConnection> c) {
                         accepted = std::move(c);
                         accepted->set_on_closed([&] { server_closed = true; });
                       });
  TcpConnection client(*p.client_mux, TcpConfig{});
  client.set_on_closed([&] { client_closed = true; });
  client.set_on_established([&] {
    client.send_chunk(100, std::make_shared<TagMeta>(1));
    client.close();
  });
  client.connect({p.server_id, 80});
  p.sim.run_until(sec(10));
  EXPECT_TRUE(client_closed);
  EXPECT_TRUE(server_closed);
  EXPECT_TRUE(client.closed());
}

TEST(Tcp, ConnectTimeoutClosesAfterRetries) {
  // No listener: SYNs go unanswered (sink drop), connection gives up.
  Pair p;
  bool closed = false;
  TcpConnection client(*p.client_mux, TcpConfig{});
  client.set_on_closed([&] { closed = true; });
  client.connect({p.server_id, 80});
  p.sim.run_until(sec(400));
  EXPECT_TRUE(closed);
  EXPECT_FALSE(client.established());
}

TEST(Tcp, BidirectionalDataFlows) {
  Pair p;
  std::vector<int> at_server;
  std::vector<int> at_client;
  std::unique_ptr<TcpConnection> accepted;
  TcpListener listener(
      *p.server_mux, 80, TcpConfig{},
      [&](std::unique_ptr<TcpConnection> c) {
        accepted = std::move(c);
        accepted->set_on_chunk(
            [&](std::shared_ptr<const net::PayloadMeta> m, std::int64_t) {
              at_server.push_back(static_cast<const TagMeta&>(*m).tag);
              accepted->send_chunk(
                  200, std::make_shared<TagMeta>(
                           static_cast<const TagMeta&>(*m).tag + 100));
            });
      });
  TcpConnection client(*p.client_mux, TcpConfig{});
  client.set_on_chunk(
      [&](std::shared_ptr<const net::PayloadMeta> m, std::int64_t) {
        at_client.push_back(static_cast<const TagMeta&>(*m).tag);
      });
  client.set_on_established([&] {
    client.send_chunk(300, std::make_shared<TagMeta>(1));
    client.send_chunk(300, std::make_shared<TagMeta>(2));
  });
  client.connect({p.server_id, 80});
  p.sim.run_until(sec(5));
  EXPECT_EQ(at_server, (std::vector<int>{1, 2}));
  EXPECT_EQ(at_client, (std::vector<int>{101, 102}));
}

// Property: TCP delivers every chunk exactly once, in order, across random
// bottleneck rates, delays, queue sizes and cross-traffic loads.
class TcpLossyPathTest : public ::testing::TestWithParam<int> {};

TEST_P(TcpLossyPathTest, ReliableInOrderDelivery) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const BitsPerSec rate = kbps(rng.uniform(64.0, 2000.0));
  const SimTime delay = msec(static_cast<std::int64_t>(rng.uniform(2, 150)));
  const auto queue =
      static_cast<std::int64_t>(rng.uniform(8'000.0, 64'000.0));
  Pair p(rate, delay, queue);

  // Random background load; bursts may briefly oversubscribe the link but
  // long-run load stays below capacity so the transfer can finish.
  net::CrossTrafficConfig ct;
  ct.burst_rate = rate * rng.uniform(0.3, 1.05);
  ct.mean_on = msec(400);
  ct.mean_off = msec(400);
  net::CrossTrafficSource cross(*p.net_, p.router_a, p.router_b, ct,
                                rng.fork("ct"));
  cross.start();

  const int n_chunks = 120;
  std::vector<int> tags;
  std::unique_ptr<TcpConnection> accepted;
  TcpListener listener(*p.server_mux, 80, TcpConfig{},
                       [&](std::unique_ptr<TcpConnection> c) {
                         accepted = std::move(c);
                         accepted->set_on_chunk(
                             [&](std::shared_ptr<const net::PayloadMeta> m,
                                 std::int64_t) {
                               tags.push_back(
                                   static_cast<const TagMeta&>(*m).tag);
                             });
                       });
  TcpConnection client(*p.client_mux, TcpConfig{});
  client.set_on_established([&] {
    for (int i = 0; i < n_chunks; ++i) {
      client.send_chunk(
          static_cast<std::int64_t>(rng.uniform_int(100, 2500)),
          std::make_shared<TagMeta>(i));
    }
  });
  client.connect({p.server_id, 80});
  p.sim.run_until(sec(300));

  ASSERT_EQ(tags.size(), static_cast<std::size_t>(n_chunks));
  for (int i = 0; i < n_chunks; ++i) {
    EXPECT_EQ(tags[static_cast<size_t>(i)], i);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPaths, TcpLossyPathTest,
                         ::testing::Range(0, 16));

TEST(Tcp, RtoBackoffDoublesAndCapsAtMaxRto) {
  // Blackhole the whole path mid-connection: every retransmission times
  // out, so the RTO must double per attempt and saturate at max_rto.
  Pair p;
  TcpConfig cfg;
  cfg.initial_rto = msec(500);
  cfg.max_rto = sec(4);
  std::unique_ptr<TcpConnection> accepted;
  TcpListener listener(*p.server_mux, 80, cfg,
                       [&](std::unique_ptr<TcpConnection> c) {
                         accepted = std::move(c);
                       });
  TcpConnection client(*p.client_mux, cfg);
  client.set_on_established([&] {
    client.send_chunk(1000, std::make_shared<TagMeta>(0));
  });
  client.connect({p.server_id, 80});
  // At t=1s the first chunk has been delivered and acked; kill every link
  // direction and queue one more chunk that can never be acknowledged.
  p.sim.schedule_at(sec(1), [&] {
    for (std::size_t i = 0; i < p.net_->link_count(); ++i) {
      net::Link& l = p.net_->link(i);
      l.direction_from(l.a()).set_fault_filter(
          [](const net::Packet&, SimTime) { return true; });
      l.direction_from(l.b()).set_fault_filter(
          [](const net::Packet&, SimTime) { return true; });
    }
    client.send_chunk(1000, std::make_shared<TagMeta>(1));
  });
  // Record the armed RTO after each timeout (polling at 50 ms beats the
  // 200 ms minimum RTO, so no timeout can slip between samples).
  std::vector<SimTime> rtos;
  std::uint64_t seen_timeouts = 0;
  std::function<void()> poll = [&] {
    if (client.stats().timeouts > seen_timeouts) {
      seen_timeouts = client.stats().timeouts;
      rtos.push_back(client.current_rto());
    }
    p.sim.schedule_in(msec(50), poll);
  };
  p.sim.schedule_at(sec(1), poll);
  p.sim.run_until(sec(40));
  ASSERT_NE(accepted, nullptr);
  ASSERT_GE(rtos.size(), 6u);
  // Exponential backoff with a hard cap: each armed RTO is exactly
  // min(2*previous, max_rto), and the cap is actually reached and held.
  for (std::size_t i = 0; i + 1 < rtos.size(); ++i) {
    EXPECT_EQ(rtos[i + 1], std::min<SimTime>(rtos[i] * 2, cfg.max_rto))
        << "timeout #" << i + 1;
    EXPECT_LE(rtos[i + 1], cfg.max_rto);
  }
  EXPECT_EQ(rtos.back(), cfg.max_rto);
  EXPECT_EQ(rtos[rtos.size() - 2], cfg.max_rto);  // held, not just touched
}

TEST(Tcp, FastRecoveryExitsOnFullAckWithoutTimeout) {
  // Drop exactly one data segment on the bottleneck. Three dupACKs enter
  // fast recovery; the retransmission's cumulative ACK covers the recovery
  // point and must exit recovery cleanly — no RTO involved.
  Pair p;
  net::Link& bottleneck = p.net_->link(1);
  int data_seen = 0;
  bool dropped = false;
  bottleneck.direction_from(p.router_a)
      .set_fault_filter([&](const net::Packet& pkt, SimTime) {
        if (pkt.size_bytes < 500) return false;  // leave control frames be
        ++data_seen;
        if (!dropped && data_seen == 8) {
          dropped = true;
          return true;
        }
        return false;
      });
  std::vector<int> tags;
  std::unique_ptr<TcpConnection> accepted;
  TcpListener listener(*p.server_mux, 80, TcpConfig{},
                       [&](std::unique_ptr<TcpConnection> c) {
                         accepted = std::move(c);
                         accepted->set_on_chunk(
                             [&](std::shared_ptr<const net::PayloadMeta> m,
                                 std::int64_t) {
                               tags.push_back(
                                   static_cast<const TagMeta&>(*m).tag);
                             });
                       });
  TcpConnection client(*p.client_mux, TcpConfig{});
  client.set_on_established([&] {
    for (int i = 0; i < 60; ++i) {
      client.send_chunk(1000, std::make_shared<TagMeta>(i));
    }
  });
  bool recovery_observed = false;
  std::function<void()> poll = [&] {
    recovery_observed = recovery_observed || client.in_fast_recovery();
    p.sim.schedule_in(msec(1), poll);
  };
  p.sim.schedule_at(0, poll);
  client.connect({p.server_id, 80});
  p.sim.run_until(sec(10));
  EXPECT_TRUE(dropped);
  EXPECT_TRUE(recovery_observed);
  EXPECT_EQ(client.stats().recovery_enters, 1u);
  EXPECT_EQ(client.stats().fast_retransmits, 1u);
  EXPECT_EQ(client.stats().timeouts, 0u);
  EXPECT_FALSE(client.in_fast_recovery());  // full ACK ended the episode
  // Post-recovery the window sits at ssthresh and growth has resumed.
  EXPECT_GE(client.cwnd_bytes(), client.ssthresh_bytes());
  // And the stream healed: everything delivered exactly once, in order.
  ASSERT_EQ(tags.size(), 60u);
  for (int i = 0; i < 60; ++i) EXPECT_EQ(tags[static_cast<size_t>(i)], i);
}

TEST(Tcp, PeerAdvertisedWindowClampsFlight) {
  // A 5 kB receive window must bound the sender's outstanding bytes no
  // matter how large the congestion window grows.
  Pair p;
  TcpConfig server_cfg;
  server_cfg.recv_window = 5'000;
  std::unique_ptr<TcpConnection> accepted;
  TcpListener listener(*p.server_mux, 80, server_cfg,
                       [&](std::unique_ptr<TcpConnection> c) {
                         accepted = std::move(c);
                       });
  TcpConnection client(*p.client_mux, TcpConfig{});
  client.set_on_established([&] {
    for (int i = 0; i < 100; ++i) {
      client.send_chunk(1000, std::make_shared<TagMeta>(i));
    }
  });
  std::int64_t max_flight = 0;
  std::function<void()> poll = [&] {
    max_flight = std::max(max_flight, client.flight_bytes());
    p.sim.schedule_in(msec(5), poll);
  };
  p.sim.schedule_at(0, poll);
  client.connect({p.server_id, 80});
  p.sim.run_until(sec(30));
  ASSERT_NE(accepted, nullptr);
  EXPECT_EQ(accepted->stats().bytes_delivered, 100'000u);
  EXPECT_GT(max_flight, 0);
  EXPECT_LE(max_flight, 5'000);
  // The congestion window itself outgrew the clamp, proving the peer
  // window (not cwnd) was the binding constraint.
  EXPECT_GT(client.cwnd_bytes(), 5'000.0);
}

TEST(Udp, RoundTripDatagrams) {
  Pair p;
  UdpSocket server_sock(*p.server_mux, 5000);
  UdpSocket client_sock(*p.client_mux);
  int server_got = 0;
  int client_got = 0;
  server_sock.set_on_datagram(
      [&](net::Endpoint from, std::shared_ptr<const net::PayloadMeta>,
          std::int32_t bytes) {
        ++server_got;
        EXPECT_EQ(bytes, 400);
        server_sock.send_to(from, 100, std::make_shared<TagMeta>(9));
      });
  client_sock.set_on_datagram(
      [&](net::Endpoint, std::shared_ptr<const net::PayloadMeta> m,
          std::int32_t) {
        ++client_got;
        EXPECT_EQ(static_cast<const TagMeta&>(*m).tag, 9);
      });
  client_sock.send_to({p.server_id, 5000}, 400, nullptr);
  p.sim.run();
  EXPECT_EQ(server_got, 1);
  EXPECT_EQ(client_got, 1);
}

TEST(Udp, LossyLinkDropsDatagrams) {
  Pair p(kbps(64), msec(5), 2'000);
  UdpSocket server_sock(*p.server_mux, 5000);
  int got = 0;
  server_sock.set_on_datagram(
      [&](net::Endpoint, std::shared_ptr<const net::PayloadMeta>,
          std::int32_t) { ++got; });
  UdpSocket client_sock(*p.client_mux);
  for (int i = 0; i < 50; ++i) {
    client_sock.send_to({p.server_id, 5000}, 972, nullptr);
  }
  p.sim.run();
  EXPECT_LT(got, 50);  // queue overflow dropped some
  EXPECT_GT(got, 0);
}

TEST(RateControl, AimdDecreasesOnLossIncreasesOtherwise) {
  AimdConfig cfg;
  cfg.initial_rate = kbps(100);
  AimdRateController ctl(cfg);
  FeedbackReport loss{};
  loss.loss_fraction = 0.10;
  ctl.on_feedback(loss);
  EXPECT_NEAR(ctl.allowed_rate(), kbps(100) * cfg.decrease_factor, 1.0);
  const double after_loss = ctl.allowed_rate();
  FeedbackReport clean{};
  ctl.on_feedback(clean);
  EXPECT_NEAR(ctl.allowed_rate(), after_loss + cfg.increase_per_report, 1.0);
}

TEST(RateControl, AimdRespectsBounds) {
  AimdConfig cfg;
  cfg.initial_rate = kbps(20);
  cfg.min_rate = kbps(16);
  cfg.max_rate = kbps(40);
  AimdRateController ctl(cfg);
  FeedbackReport loss{};
  loss.loss_fraction = 1.0;
  for (int i = 0; i < 20; ++i) ctl.on_feedback(loss);
  EXPECT_DOUBLE_EQ(ctl.allowed_rate(), kbps(16));
  FeedbackReport clean{};
  for (int i = 0; i < 100; ++i) ctl.on_feedback(clean);
  EXPECT_DOUBLE_EQ(ctl.allowed_rate(), kbps(40));
}

TEST(RateControl, TcpFriendlyEquationMonotone) {
  // Higher loss → lower rate; higher RTT → lower rate.
  const double r1 = tcp_friendly_rate(1000, 0.05, 0.01);
  const double r2 = tcp_friendly_rate(1000, 0.05, 0.05);
  const double r3 = tcp_friendly_rate(1000, 0.20, 0.01);
  EXPECT_GT(r1, r2);
  EXPECT_GT(r1, r3);
  // Sanity scale: 1% loss, 50 ms RTT is roughly 1.2-1.6 Mbps for 1000 B.
  EXPECT_GT(r1, kbps(500));
  EXPECT_LT(r1, mbps(4));
}

TEST(RateControl, TfrcTracksLossDown) {
  TfrcConfig cfg;
  cfg.initial_rate = kbps(500);
  TfrcController ctl(cfg);
  FeedbackReport rep{};
  rep.rtt_seconds = 0.1;
  rep.receive_rate = kbps(400);
  rep.loss_fraction = 0.05;
  for (int i = 0; i < 10; ++i) ctl.on_feedback(rep);
  EXPECT_LT(ctl.allowed_rate(), kbps(500));
  EXPECT_GT(ctl.smoothed_loss(), 0.01);
}

TEST(RateControl, TfrcProbesUpWithoutLoss) {
  TfrcConfig cfg;
  cfg.initial_rate = kbps(50);
  TfrcController ctl(cfg);
  FeedbackReport rep{};
  rep.rtt_seconds = 0.05;
  rep.receive_rate = kbps(50);
  const double before = ctl.allowed_rate();
  ctl.on_feedback(rep);
  EXPECT_GT(ctl.allowed_rate(), before);
}

TEST(RateControl, FixedIsUnresponsive) {
  FixedRateController ctl(kbps(300));
  FeedbackReport rep{};
  rep.loss_fraction = 0.5;
  ctl.on_feedback(rep);
  EXPECT_DOUBLE_EQ(ctl.allowed_rate(), kbps(300));
}

TEST(Mux, ConnectedBindingBeatsWildcard) {
  Pair p;
  struct Recorder : PacketSink {
    int count = 0;
    void on_packet(net::Packet) override { ++count; }
  };
  Recorder wildcard;
  Recorder connected;
  p.server_mux->bind(net::Protocol::kUdp, 7000, &wildcard);
  p.server_mux->bind_connected(net::Protocol::kUdp, 7000,
                               {p.client_id, 1234}, &connected);
  net::Packet from_conn;
  from_conn.src = p.client_id;
  from_conn.src_port = 1234;
  from_conn.dst = p.server_id;
  from_conn.dst_port = 7000;
  from_conn.proto = net::Protocol::kUdp;
  from_conn.size_bytes = 100;
  p.net_->send(from_conn);
  net::Packet from_other = from_conn;
  from_other.src_port = 9999;
  p.net_->send(from_other);
  p.sim.run();
  EXPECT_EQ(connected.count, 1);
  EXPECT_EQ(wildcard.count, 1);
  p.server_mux->unbind(net::Protocol::kUdp, 7000);
  p.server_mux->unbind_connected(net::Protocol::kUdp, 7000,
                                 {p.client_id, 1234});
}

TEST(Mux, DoubleBindThrows) {
  Pair p;
  struct Recorder : PacketSink {
    void on_packet(net::Packet) override {}
  };
  Recorder r;
  p.server_mux->bind(net::Protocol::kUdp, 7000, &r);
  EXPECT_THROW(p.server_mux->bind(net::Protocol::kUdp, 7000, &r),
               util::CheckError);
  p.server_mux->unbind(net::Protocol::kUdp, 7000);
}

TEST(Mux, AllocatePortSkipsBoundPorts) {
  Pair p;
  const net::Port a = p.client_mux->allocate_port();
  const net::Port b = p.client_mux->allocate_port();
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace rv::transport
