#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "study/analysis.h"
#include "study/cache.h"
#include "study/figures.h"
#include "study/study.h"
#include "util/check.h"

namespace rv::study {
namespace {

// One shared scaled-down study for all tests in this file (a full study is
// minutes of CPU; 6% preserves every code path).
const StudyResult& small_study() {
  static const StudyResult result = [] {
    StudyConfig config;
    config.play_scale = 0.06;
    return run_study(config);
  }();
  return result;
}

StudyConfig small_config() {
  StudyConfig config;
  config.play_scale = 0.06;
  return config;
}

TEST(Study, PopulationAndRecordCounts) {
  const auto& result = small_study();
  EXPECT_EQ(result.users.size(), 63u);
  EXPECT_GT(result.records.size(), 100u);
  EXPECT_GE(result.records.size(), result.played().size());
  EXPECT_GE(result.played().size(), result.rated().size());
}

TEST(Study, PlayedRecordsAreAnalyzable) {
  for (const auto* r : small_study().played()) {
    EXPECT_TRUE(r->available);
    EXPECT_FALSE(r->rtsp_blocked_user);
    EXPECT_TRUE(r->stats.played_any_frame);
    EXPECT_GE(r->stats.measured_fps, 0.0);
    EXPECT_GE(r->stats.jitter_ms, 0.0);
  }
}

TEST(Study, SomeClipsUnavailable) {
  std::size_t unavailable = 0;
  for (const auto* r : small_study().accesses()) {
    unavailable += !r->available;
  }
  EXPECT_GT(unavailable, 0u);
}

TEST(Study, BothProtocolsObserved) {
  const auto groups = by_protocol(small_study().played());
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_GT(groups.at("TCP").size(), 5u);
  EXPECT_GT(groups.at("UDP").size(), 5u);
}

TEST(Study, MetricExtractorsMatchSizes) {
  const auto played = small_study().played();
  EXPECT_EQ(frame_rates(played).size(), played.size());
  EXPECT_EQ(jitters_ms(played).size(), played.size());
  EXPECT_EQ(bandwidths_kbps(played).size(), played.size());
}

TEST(Study, GroupingsPartitionRecords) {
  const auto played = small_study().played();
  for (const auto& groups :
       {by_connection(played), by_protocol(played), by_server_group(played),
        by_user_group(played), by_pc_class(played),
        by_bandwidth_bucket(played)}) {
    std::size_t total = 0;
    for (const auto& [_, recs] : groups) total += recs.size();
    EXPECT_EQ(total, played.size());
  }
}

TEST(Study, CountTablesConsistent) {
  const auto played = small_study().played();
  EXPECT_EQ(clips_played_by_country(played).total(), played.size());
  EXPECT_EQ(clips_served_by_country(played).total(), played.size());
  std::size_t us = 0;
  for (const auto* r : played) us += r->country == "US";
  EXPECT_EQ(clips_played_by_us_state(played).total(), us);
}

TEST(Study, UnavailabilityPerServerInRange) {
  const auto by_server = unavailability_by_server(small_study().accesses());
  // At 6% play-scale only a playlist prefix runs, so not every one of the 11
  // sites is necessarily visited.
  EXPECT_GE(by_server.size(), 5u);
  EXPECT_LE(by_server.size(), 11u);
  for (const auto& [name, frac] : by_server) {
    EXPECT_GE(frac, 0.0) << name;
    EXPECT_LE(frac, 0.6) << name;
  }
}

TEST(Study, FiguresRenderNonEmpty) {
  const auto& result = small_study();
  for (const auto& text :
       {fig05_clips_per_user(result), fig06_rated_per_user(result),
        fig07_user_countries(result), fig08_server_countries(result),
        fig09_us_states(result), fig10_availability(result),
        fig11_framerate_all(result), fig12_framerate_by_net(result),
        fig13_bandwidth_by_net(result),
        fig14_framerate_by_server_region(result),
        fig15_framerate_by_user_region(result), fig16_protocol_mix(result),
        fig17_framerate_by_protocol(result),
        fig18_bandwidth_by_protocol(result), fig19_framerate_by_pc(result),
        fig20_jitter_all(result), fig21_jitter_by_net(result),
        fig22_jitter_by_server_region(result),
        fig23_jitter_by_user_region(result),
        fig24_jitter_by_protocol(result), fig25_jitter_by_bandwidth(result),
        fig26_quality_all(result), fig27_quality_by_net(result),
        fig28_quality_vs_bandwidth(result), study_summary(result)}) {
    EXPECT_GT(text.size(), 50u);
    EXPECT_NE(text.find("measured"), std::string::npos);
  }
}

TEST(Study, CacheRoundTrips) {
  const auto& result = small_study();
  const StudyConfig config = small_config();
  const std::string path = ::testing::TempDir() + "/rv_cache_test.bin";
  ASSERT_TRUE(save_result(path, config, result));
  const auto loaded = load_result(path, config);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->records.size(), result.records.size());
  ASSERT_EQ(loaded->users.size(), result.users.size());
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    const auto& a = result.records[i];
    const auto& b = loaded->records[i];
    EXPECT_EQ(a.user_id, b.user_id);
    EXPECT_EQ(a.country, b.country);
    EXPECT_EQ(a.clip_id, b.clip_id);
    EXPECT_EQ(a.available, b.available);
    EXPECT_EQ(a.rating, b.rating);
    EXPECT_EQ(a.stats.measured_fps, b.stats.measured_fps);
    EXPECT_EQ(a.stats.jitter_ms, b.stats.jitter_ms);
    EXPECT_EQ(a.stats.samples.size(), b.stats.samples.size());
  }
  std::remove(path.c_str());
}

TEST(Study, CacheRejectsDifferentConfig) {
  const auto& result = small_study();
  const StudyConfig config = small_config();
  const std::string path = ::testing::TempDir() + "/rv_cache_test2.bin";
  ASSERT_TRUE(save_result(path, config, result));
  StudyConfig other = config;
  other.seed = 4242;
  EXPECT_FALSE(load_result(path, other).has_value());
  std::remove(path.c_str());
}

TEST(Study, CacheRejectsGarbageFile) {
  const std::string path = ::testing::TempDir() + "/rv_cache_garbage.bin";
  {
    std::ofstream os(path, std::ios::binary);
    os << "this is not a cache file";
  }
  EXPECT_FALSE(load_result(path, small_config()).has_value());
  std::remove(path.c_str());
}

TEST(Study, FingerprintSensitiveToKnobs) {
  const StudyConfig base = small_config();
  StudyConfig seed = base;
  seed.seed = 77;
  StudyConfig control = base;
  control.tracer.udp_control = server::CongestionControlKind::kTfrc;
  StudyConfig scale = base;
  scale.play_scale = 0.5;
  EXPECT_NE(config_fingerprint(base), config_fingerprint(seed));
  EXPECT_NE(config_fingerprint(base), config_fingerprint(control));
  EXPECT_NE(config_fingerprint(base), config_fingerprint(scale));
  EXPECT_EQ(config_fingerprint(base), config_fingerprint(small_config()));
}

TEST(Study, RejectsInvalidPlayScale) {
  StudyConfig zero;
  zero.play_scale = 0.0;
  EXPECT_THROW(run_study(zero), util::CheckError);
  StudyConfig negative;
  negative.play_scale = -0.5;
  EXPECT_THROW(run_study(negative), util::CheckError);
  StudyConfig too_big;
  too_big.play_scale = 1.5;
  EXPECT_THROW(run_study(too_big), util::CheckError);
}

TEST(Study, RejectsNegativeThreads) {
  StudyConfig config;
  config.play_scale = 0.02;
  config.threads = -1;
  EXPECT_THROW(run_study(config), util::CheckError);
}

TEST(Study, FingerprintSensitiveToFaultKnobs) {
  const StudyConfig base = small_config();
  StudyConfig enabled = base;
  enabled.tracer.faults.enabled = true;
  StudyConfig scaled = base;
  scaled.tracer.faults.enabled = true;
  scaled.tracer.faults.outage_scale = 2.0;
  EXPECT_NE(config_fingerprint(base), config_fingerprint(enabled));
  EXPECT_NE(config_fingerprint(enabled), config_fingerprint(scaled));
}

TEST(Study, MechanisticUnavailabilityModeRuns) {
  StudyConfig config;
  config.play_scale = 0.03;
  config.tracer.faults.enabled = true;
  config.tracer.faults.mechanistic_unavailability = true;
  const auto result = run_study(config);
  std::size_t unavailable = 0;
  std::size_t played = 0;
  for (const auto* r : result.accesses()) {
    unavailable += !r->available;
    played += r->analyzable();
  }
  // Outage windows must both bite (some accesses land inside one) and spare
  // the bulk of the campaign.
  EXPECT_GT(unavailable, 0u);
  EXPECT_GT(played, 20u);
}

TEST(Study, DeterministicAcrossRuns) {
  StudyConfig config;
  config.play_scale = 0.02;
  const auto a = run_study(config);
  const auto b = run_study(config);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].stats.measured_fps,
              b.records[i].stats.measured_fps);
    EXPECT_EQ(a.records[i].rating, b.records[i].rating);
  }
}

}  // namespace
}  // namespace rv::study
