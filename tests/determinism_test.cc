// Thread-count invariance: a study is a pure function of its config — the
// per-play executor only changes *who* computes each record and *when*,
// never the record. Proven by byte-comparing the serialized results of
// 1-, 2- and 8-thread runs (8 > the 4-ish tasks-in-flight of a small study,
// so idle workers and empty queues are exercised too), with and without
// fault injection.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "study/cache.h"
#include "study/study.h"
#include "transport/congestion_control.h"

namespace rv::study {
namespace {

std::string serialize(const StudyConfig& config, const StudyResult& result) {
  // Unique per test so parallel ctest shards don't race on the temp file.
  const std::string path =
      ::testing::TempDir() + "/rv_determinism_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".bin";
  EXPECT_TRUE(save_result(path, config, result));
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  std::remove(path.c_str());
  return os.str();
}

void expect_thread_invariant(StudyConfig config) {
  config.threads = 1;
  const auto single = run_study(config);
  StudyConfig ref = config;
  ref.threads = 0;  // fingerprint input must match across all runs
  const std::string want = serialize(ref, single);
  for (const int threads : {2, 8}) {
    config.threads = threads;
    const auto pooled = run_study(config);
    ASSERT_EQ(single.users.size(), pooled.users.size()) << threads;
    ASSERT_EQ(single.records.size(), pooled.records.size()) << threads;
    // Byte-identical serialization covers every stat field, sample vector
    // and rating in one comparison.
    EXPECT_EQ(want, serialize(ref, pooled)) << "threads=" << threads;
  }
}

TEST(Determinism, ThreadCountInvariantWithoutFaults) {
  StudyConfig config;
  config.play_scale = 0.02;
  expect_thread_invariant(config);
}

TEST(Determinism, RepeatedRunsAreByteIdentical) {
  // Kernel-rewrite guard: the pooled-slot/4-ary-heap scheduler and the
  // packet pool recycle ids and memory across plays, none of which may leak
  // into results. Two fresh runs at one seed must serialize to identical
  // bytes — the same comparison (via the study cache file) that pinned the
  // rewritten kernel to the original's output, kept here as a regression
  // test against future ordering or state-reuse bugs.
  StudyConfig config;
  config.play_scale = 0.02;
  config.seed = 2001;
  const auto first = run_study(config);
  const auto second = run_study(config);
  ASSERT_EQ(first.records.size(), second.records.size());
  EXPECT_EQ(serialize(config, first), serialize(config, second));
}

TEST(Determinism, ThreadCountInvariantAcrossCcBackends) {
  // The worker pool must not perturb results for any congestion-control
  // backend. Reno is the default covered above; CUBIC's clock-anchored
  // cubic curve and BBR's windowed filters are the interesting cases —
  // both are pure functions of per-play sim time, never wall clock or
  // worker identity.
  for (const auto cc :
       {transport::CcAlgorithm::kCubic, transport::CcAlgorithm::kBbr}) {
    SCOPED_TRACE(transport::cc_algorithm_name(cc));
    StudyConfig config;
    config.play_scale = 0.02;
    config.tracer.tcp_cc = cc;
    expect_thread_invariant(config);
  }
}

TEST(Determinism, ThreadCountInvariantWithFaultInjection) {
  StudyConfig config;
  config.play_scale = 0.02;
  config.tracer.faults.enabled = true;
  config.tracer.faults.mechanistic_unavailability = true;
  config.tracer.faults.overload_probability = 0.05;
  config.tracer.faults.link_down_probability = 0.05;
  config.tracer.faults.corruption_probability = 0.05;
  expect_thread_invariant(config);
}

}  // namespace
}  // namespace rv::study
