#include <gtest/gtest.h>

#include "media/catalog.h"
#include "study/study.h"
#include "tracer/rating.h"
#include "tracer/real_tracer.h"
#include "world/region_graph.h"

namespace rv::tracer {
namespace {

client::ClipStats good_stats() {
  client::ClipStats s;
  s.played_any_frame = true;
  s.measured_fps = 20.0;
  s.jitter_ms = 20.0;
  s.measured_bandwidth = kbps(300);
  s.play_seconds = 60.0;
  return s;
}

client::ClipStats bad_stats() {
  client::ClipStats s;
  s.played_any_frame = true;
  s.measured_fps = 1.5;
  s.jitter_ms = 900.0;
  s.rebuffer_events = 3;
  s.rebuffer_seconds = 25.0;
  s.measured_bandwidth = kbps(12);
  s.play_seconds = 60.0;
  return s;
}

TEST(Rating, IntrinsicQualityOrdersPlayouts) {
  EXPECT_GT(intrinsic_quality(good_stats()), 7.0);
  EXPECT_LT(intrinsic_quality(bad_stats()), 2.5);
}

TEST(Rating, IntrinsicQualityBounded) {
  client::ClipStats s = bad_stats();
  s.rebuffer_events = 100;
  s.rebuffer_seconds = 60.0;
  EXPECT_GE(intrinsic_quality(s), 0.0);
  client::ClipStats p = good_stats();
  p.measured_fps = 30.0;
  p.jitter_ms = 0.0;
  EXPECT_LE(intrinsic_quality(p), 10.0);
}

TEST(Rating, RatingsStayInScale) {
  util::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    RaterProfile rater = make_rater(rng);
    const double good = rate_clip(rater, good_stats(), rng);
    const double bad = rate_clip(rater, bad_stats(), rng);
    EXPECT_GE(good, 0.0);
    EXPECT_LE(good, 10.0);
    EXPECT_GE(bad, 0.0);
    EXPECT_LE(bad, 10.0);
  }
}

TEST(Rating, GoodPlayoutsRateHigherOnAverage) {
  util::Rng rng(9);
  double good_sum = 0.0;
  double bad_sum = 0.0;
  constexpr int n = 300;
  for (int i = 0; i < n; ++i) {
    RaterProfile rater = make_rater(rng);
    good_sum += rate_clip(rater, good_stats(), rng);
    bad_sum += rate_clip(rater, bad_stats(), rng);
  }
  EXPECT_GT(good_sum / n, bad_sum / n + 1.5);
}

TEST(Rating, AudioInclusiveRatersForgiveLowBandwidth) {
  util::Rng rng(11);
  RaterProfile video_only;
  video_only.rates_video_only = true;
  video_only.content_noise = 0.0;
  RaterProfile with_audio = video_only;
  with_audio.rates_video_only = false;
  client::ClipStats low_bw = bad_stats();
  double v = 0.0;
  double a = 0.0;
  for (int i = 0; i < 200; ++i) {
    v += rate_clip(video_only, low_bw, rng);
    a += rate_clip(with_audio, low_bw, rng);
  }
  EXPECT_GT(a, v);  // the Fig 28 upper-left cluster mechanism
}

class TracerFixture : public ::testing::Test {
 protected:
  TracerFixture()
      : catalog_(study::make_catalog(config_)),
        tracer_(catalog_, graph_, config_.tracer) {}

  study::StudyConfig config_;
  media::Catalog catalog_;
  world::RegionGraph graph_;
  RealTracer tracer_;
};

world::UserProfile healthy_user() {
  world::UserProfile u;
  u.id = 7;
  u.country = "US";
  u.us_state = "MA";
  u.region = world::Region::kUsEast;
  u.group = world::UserRegionGroup::kUsCanada;
  u.connection = world::ConnectionClass::kDslCable;
  u.pc_class = "Pentium III / 256-512MB";
  u.isp_load_lo = 0.2;
  u.isp_load_hi = 0.4;
  u.seed = 99;
  return u;
}

TEST_F(TracerFixture, RunSingleProducesCompleteRecord) {
  const auto user = healthy_user();
  const auto rec = tracer_.run_single(user, 0, 1234);
  EXPECT_EQ(rec.user_id, user.id);
  EXPECT_EQ(rec.country, user.country);
  EXPECT_TRUE(rec.available);
  EXPECT_TRUE(rec.stats.session_established);
  EXPECT_TRUE(rec.stats.played_any_frame);
  EXPECT_GT(rec.stats.measured_fps, 0.0);
  EXPECT_EQ(rec.server_name, world::server_sites()[rec.site].name);
}

TEST_F(TracerFixture, RunSingleDeterministic) {
  const auto user = healthy_user();
  const auto a = tracer_.run_single(user, 0, 77);
  const auto b = tracer_.run_single(user, 0, 77);
  EXPECT_EQ(a.stats.measured_fps, b.stats.measured_fps);
  EXPECT_EQ(a.stats.bytes_received, b.stats.bytes_received);
  EXPECT_EQ(a.stats.jitter_ms, b.stats.jitter_ms);
}

TEST_F(TracerFixture, ForceTcpUsesTcp) {
  const auto rec = tracer_.run_single(healthy_user(), 0, 5, /*force_tcp=*/true);
  EXPECT_EQ(rec.stats.protocol, net::Protocol::kTcp);
}

TEST_F(TracerFixture, RtspBlockedUserExcluded) {
  auto users = world::generate_population({});
  users[0].rtsp_blocked = true;
  users[0].clips_to_play = 4;
  const auto records = tracer_.run_user(users[0], 1);
  ASSERT_EQ(records.size(), 4u);
  for (const auto& rec : records) {
    EXPECT_TRUE(rec.rtsp_blocked_user);
    EXPECT_FALSE(rec.analyzable());
  }
}

TEST_F(TracerFixture, RunUserHonoursPlayAndRateCounts) {
  auto users = world::generate_population({});
  users[0].rtsp_blocked = false;
  users[0].clips_to_play = 6;
  users[0].clips_to_rate = 2;
  const auto records = tracer_.run_user(users[0], 1);
  ASSERT_EQ(records.size(), 6u);
  int rated = 0;
  for (const auto& rec : records) rated += rec.rated();
  EXPECT_LE(rated, 2);
  for (const auto& rec : records) {
    if (rec.rated()) {
      EXPECT_GE(rec.rating, 0.0);
      EXPECT_LE(rec.rating, 10.0);
    }
  }
}


TEST_F(TracerFixture, TfrcControllerVariantWorks) {
  study::StudyConfig cfg;
  tracer::TracerConfig tcfg;
  tcfg.udp_control = server::CongestionControlKind::kTfrc;
  RealTracer tfrc_tracer(catalog_, graph_, tcfg);
  const auto rec = tfrc_tracer.run_single(healthy_user(), 1, 909);
  EXPECT_TRUE(rec.stats.played_any_frame);
  EXPECT_GT(rec.stats.measured_fps, 2.0);
}

TEST_F(TracerFixture, UnresponsiveControllerVariantWorks) {
  tracer::TracerConfig tcfg;
  tcfg.udp_control = server::CongestionControlKind::kNone;
  RealTracer none_tracer(catalog_, graph_, tcfg);
  const auto rec = none_tracer.run_single(healthy_user(), 1, 909);
  EXPECT_TRUE(rec.stats.played_any_frame);
}

TEST_F(TracerFixture, MetafileStepDoesNotBreakSessions) {
  // The HTTP metafile fetch precedes every session; a healthy play still
  // produces complete stats (regression guard for the §II.A step).
  const auto rec = tracer_.run_single(healthy_user(), 2, 4242);
  EXPECT_TRUE(rec.stats.session_established);
  EXPECT_TRUE(rec.stats.played_any_frame);
}
}  // namespace
}  // namespace rv::tracer
