// Property tests for the pluggable congestion-control backends.
//
// Unit level: drive RenoCC/CubicCC/BbrCC directly with synthetic ACK
// streams on a hand-rolled clock and check them against their specs —
// Reno's AIMD arithmetic, CUBIC's RFC 8312 closed form (curve anchor,
// plateau time K, TCP-friendly floor), BBR's state machine (startup →
// drain → probe-bw, probe-rtt on min-RTT staleness, deterministic
// pacing-gain cycle).
//
// Scenario level: full TcpConnection transfers over a lossy/jittery
// bottleneck reproduce the qualitative results that motivated the
// backends — BBR sustains throughput under random loss where loss-based
// CC collapses, and loss-based CC falls off a cliff once delay jitter
// reorders enough packets to fake dupACK loss signals.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/network.h"
#include "sim/simulator.h"
#include "transport/congestion_control.h"
#include "transport/mux.h"
#include "transport/tcp.h"
#include "util/rng.h"

namespace rv::transport {
namespace {

TEST(CcAlgorithm, ParserAcceptsExactLowercaseNamesOnly) {
  EXPECT_EQ(parse_cc_algorithm("reno"), CcAlgorithm::kReno);
  EXPECT_EQ(parse_cc_algorithm("cubic"), CcAlgorithm::kCubic);
  EXPECT_EQ(parse_cc_algorithm("bbr"), CcAlgorithm::kBbr);
  EXPECT_FALSE(parse_cc_algorithm("Reno").has_value());
  EXPECT_FALSE(parse_cc_algorithm("CUBIC").has_value());
  EXPECT_FALSE(parse_cc_algorithm("bbr2").has_value());
  EXPECT_FALSE(parse_cc_algorithm("tahoe").has_value());
  EXPECT_FALSE(parse_cc_algorithm(" reno").has_value());
  EXPECT_FALSE(parse_cc_algorithm("reno ").has_value());
  EXPECT_FALSE(parse_cc_algorithm("").has_value());
}

TEST(CcAlgorithm, NamesRoundTripThroughParser) {
  for (const auto a :
       {CcAlgorithm::kReno, CcAlgorithm::kCubic, CcAlgorithm::kBbr}) {
    EXPECT_EQ(parse_cc_algorithm(cc_algorithm_name(a)), a);
  }
}

TEST(CcFactory, BuildsRequestedBackendWithInitialWindow) {
  for (const auto a :
       {CcAlgorithm::kReno, CcAlgorithm::kCubic, CcAlgorithm::kBbr}) {
    const auto cc = make_congestion_control(a, 1000, 2, 64 * 1024);
    ASSERT_NE(cc, nullptr);
    EXPECT_STREQ(cc->name(), cc_algorithm_name(a));
    EXPECT_DOUBLE_EQ(cc->cwnd(), 2000.0);
  }
}

// --- Reno -----------------------------------------------------------------

CcAck ack_of(SimTime now, std::int64_t acked, std::uint64_t una,
             std::int64_t flight, bool in_recovery = false) {
  CcAck a;
  a.now = now;
  a.newly_acked = acked;
  a.snd_una = una;
  a.snd_nxt = una + static_cast<std::uint64_t>(flight);
  a.flight = flight;
  a.in_recovery = in_recovery;
  return a;
}

TEST(RenoCC, SlowStartThenAimdThenLossEvents) {
  RenoCC cc(1000, 2, 8'000);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 2000.0);
  // Slow start: one MSS per MSS acked (capped per ACK at one MSS).
  cc.on_ack(ack_of(msec(10), 1000, 1000, 1000));
  EXPECT_DOUBLE_EQ(cc.cwnd(), 3000.0);
  cc.on_ack(ack_of(msec(20), 2500, 3500, 1000));
  EXPECT_DOUBLE_EQ(cc.cwnd(), 4000.0);  // 2500 acked still adds only 1 MSS
  // Push past ssthresh, then verify the MSS^2/cwnd additive increase.
  while (cc.cwnd() < cc.ssthresh()) {
    cc.on_ack(ack_of(msec(30), 1000, 10'000, 1000));
  }
  const double w = cc.cwnd();
  cc.on_ack(ack_of(msec(40), 1000, 20'000, 1000));
  EXPECT_DOUBLE_EQ(cc.cwnd(), w + 1000.0 * 1000.0 / w);
  // ACKs inside fast recovery change nothing.
  const double before = cc.cwnd();
  cc.on_ack(ack_of(msec(50), 1000, 21'000, 1000, /*in_recovery=*/true));
  EXPECT_DOUBLE_EQ(cc.cwnd(), before);
  // Recovery halves to flight/2 (floored at 2 MSS) and holds cwnd there.
  cc.on_recovery_enter(9'000, msec(60));
  EXPECT_DOUBLE_EQ(cc.ssthresh(), 4'500.0);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 4'500.0);
  cc.on_recovery_exit(msec(70));
  EXPECT_DOUBLE_EQ(cc.cwnd(), 4'500.0);
  // RTO collapses to one MSS; the 2-MSS ssthresh floor engages.
  cc.on_rto(3'000, msec(80));
  EXPECT_DOUBLE_EQ(cc.ssthresh(), 2'000.0);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 1'000.0);
}

// --- CUBIC ----------------------------------------------------------------

TEST(CubicCC, LossAnchorsCurvePerRfc8312ClosedForm) {
  // Start at the ssthresh boundary so every ACK is congestion avoidance.
  CubicCC cc(1000, 10, 10'000);
  cc.on_rtt_sample(0.1, 0);
  // First loss at W = 10 segments: w_max anchors there, window drops to
  // beta*W, and the epoch's plateau time K satisfies the RFC 8312 form
  // K = cbrt(w_max*(1-beta)/C).
  cc.on_recovery_enter(10'000, msec(100));
  EXPECT_DOUBLE_EQ(cc.ssthresh(), 10'000.0 * CubicCC::kBeta);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 7'000.0);
  cc.on_recovery_exit(msec(150));
  // First post-recovery ACK opens the epoch.
  cc.on_ack(ack_of(msec(200), 1000, 50'000, 7'000));
  EXPECT_DOUBLE_EQ(cc.w_max_segments(), 10.0);
  const double k_expected =
      std::cbrt(10.0 * (1.0 - CubicCC::kBeta) / CubicCC::kC);
  EXPECT_NEAR(cc.k_seconds(), k_expected, 1e-9);
  // The curve is anchored so that W(0) = beta*w_max and W(K) = w_max.
  EXPECT_NEAR(cc.w_cubic(0.0), CubicCC::kBeta * 10.0, 1e-9);
  EXPECT_NEAR(cc.w_cubic(cc.k_seconds()), 10.0, 1e-9);
  // And the closed form itself: W(t) = C*(t-K)^3 + w_max.
  for (const double t : {0.5, 1.0, 2.0, 4.0}) {
    EXPECT_NEAR(cc.w_cubic(t),
                CubicCC::kC * std::pow(t - k_expected, 3) + 10.0, 1e-9);
  }
}

TEST(CubicCC, TracksClosedFormTargetUnderSteadyAcks) {
  CubicCC cc(1000, 10, 10'000);
  const double rtt = 0.1;
  cc.on_rtt_sample(rtt, 0);
  cc.on_recovery_enter(10'000, 0);
  cc.on_recovery_exit(0);
  // Ack one full window per RTT in MSS-sized ACKs (the ACK rate scales
  // with the window, as on a real path); the per-ACK step chases
  // max(w_cubic(t+rtt), w_est(t)), so the realized window must hug the
  // closed-form target computed independently here.
  const SimTime t0 = msec(10);
  SimTime now = t0;
  std::uint64_t una = 0;
  const double k =
      std::cbrt(cc.w_max_segments() * (1.0 - CubicCC::kBeta) / CubicCC::kC);
  for (int round = 0; round < 60; ++round) {
    const int acks = std::max(1, static_cast<int>(cc.cwnd() / 1000.0));
    const SimTime gap = seconds_to_sim(rtt) / acks;
    for (int i = 0; i < acks; ++i) {
      now += gap;
      una += 1000;
      cc.on_ack(ack_of(now, 1000, una, 8'000));
    }
    const double t = to_seconds(now - t0);
    const double w_cubic =
        CubicCC::kC * std::pow(t + rtt - k, 3) + cc.w_max_segments();
    const double w_est =
        cc.w_max_segments() * CubicCC::kBeta +
        (3.0 * (1.0 - CubicCC::kBeta) / (1.0 + CubicCC::kBeta)) * (t / rtt);
    const double target = std::max(w_cubic, w_est);
    // Within 1.5 segments of the RFC curve at all times after warmup.
    if (t > 0.5) {
      EXPECT_NEAR(cc.cwnd() / 1000.0, target, 1.5)
          << "t=" << t << " w_cubic=" << w_cubic << " w_est=" << w_est;
    }
    // Never below the TCP-friendly floor (minus the discrete-step slack).
    EXPECT_GE(cc.cwnd() / 1000.0, w_est - 1.5) << "t=" << t;
  }
  // Six seconds with rtt 0.1 is deep in the TCP-friendly region for this
  // small w_max: the floor, not the cubic, must be carrying the window.
  const double t_end = to_seconds(now - t0);
  const double w_est_end =
      cc.w_max_segments() * CubicCC::kBeta +
      (3.0 * (1.0 - CubicCC::kBeta) / (1.0 + CubicCC::kBeta)) * (t_end / rtt);
  EXPECT_GT(w_est_end,
            CubicCC::kC * std::pow(t_end + rtt - k, 3) + cc.w_max_segments());
  EXPECT_GE(cc.cwnd() / 1000.0, w_est_end - 1.5);
}

TEST(CubicCC, FastConvergenceShrinksPlateauOnBackToBackLosses) {
  CubicCC cc(1000, 20, 20'000);
  cc.on_rtt_sample(0.05, 0);
  cc.on_recovery_enter(20'000, sec(1));
  EXPECT_DOUBLE_EQ(cc.w_max_segments(), 20.0);
  cc.on_recovery_exit(sec(1));
  // Second loss arrives before the window regains w_max (14 < 20): fast
  // convergence releases the flow's claim, w_max = w*(2-beta)/2 < w_max.
  cc.on_recovery_enter(14'000, sec(2));
  EXPECT_DOUBLE_EQ(cc.w_max_segments(), 14.0 * (2.0 - CubicCC::kBeta) / 2.0);
  EXPECT_LT(cc.w_max_segments(), 14.0);
}

// --- BBR ------------------------------------------------------------------

// Drives a BbrCC with a synthetic ACK clock, one ack per kStep of data.
struct BbrDriver {
  BbrCC cc{1000, 10};
  SimTime now = 0;
  std::uint64_t una = 0;
  std::uint64_t delivered = 0;
  std::int64_t flight = 64'000;

  // Delivers `bytes` spread over `dur` in fixed-size acks at RTT `rtt_sec`
  // and delivery rate bytes/dur. Feeding RTT and rate samples before each
  // ack mirrors tcp.cc's handle_ack ordering; every segment in one deliver()
  // burst carries the delivered level from the burst's start, so each call
  // is one packet-timed round.
  void deliver(std::int64_t bytes, SimTime dur, double rtt_sec,
               int acks = 16) {
    const std::int64_t per_ack = bytes / acks;
    const SimTime per_gap = dur / acks;
    const double bw = static_cast<double>(bytes) / to_seconds(dur);
    const std::uint64_t delivered_at_send = delivered;
    for (int i = 0; i < acks; ++i) {
      now += per_gap;
      una += static_cast<std::uint64_t>(per_ack);
      delivered += static_cast<std::uint64_t>(per_ack);
      cc.on_rtt_sample(rtt_sec, now);
      cc.on_delivery_rate_sample(bw, /*app_limited=*/false, delivered_at_send,
                                 delivered, now);
      cc.on_ack(ack_of(now, per_ack, una, flight));
    }
  }
};

TEST(BbrCC, StartupDrainProbeBwTraversal) {
  BbrDriver d;
  EXPECT_EQ(d.cc.state(), BbrCC::State::kStartup);
  EXPECT_DOUBLE_EQ(d.cc.pacing_gain(), BbrCC::kHighGain);
  // Growing delivery rate each round keeps the full-pipe detector armed.
  d.deliver(64'000, msec(640), 0.05);  // 100 kB/s
  d.deliver(64'000, msec(320), 0.05);  // 200 kB/s
  d.deliver(64'000, msec(160), 0.05);  // 400 kB/s
  EXPECT_EQ(d.cc.state(), BbrCC::State::kStartup);
  EXPECT_FALSE(d.cc.filled_pipe());
  // Plateau: three rounds without 1.25x growth declares the pipe full and
  // the state machine falls into drain.
  d.deliver(64'000, msec(160), 0.05);
  d.deliver(64'000, msec(160), 0.05);
  d.deliver(64'000, msec(160), 0.05);
  d.deliver(64'000, msec(160), 0.05);
  EXPECT_TRUE(d.cc.filled_pipe());
  EXPECT_EQ(d.cc.state(), BbrCC::State::kDrain);
  EXPECT_DOUBLE_EQ(d.cc.pacing_gain(), 1.0 / BbrCC::kHighGain);
  EXPECT_NEAR(d.cc.max_bw_bytes_per_sec(), 400'000.0, 20'000.0);
  EXPECT_DOUBLE_EQ(d.cc.min_rtt_sec(), 0.05);
  // Drain exits to probe-bw once flight drops to the BDP estimate.
  d.flight = static_cast<std::int64_t>(d.cc.bdp_bytes() / 2.0);
  d.deliver(4'000, msec(10), 0.05, /*acks=*/1);
  EXPECT_EQ(d.cc.state(), BbrCC::State::kProbeBw);
  EXPECT_DOUBLE_EQ(d.cc.pacing_gain(), 1.25);  // cycle starts on probe phase
}

// Runs a driver through startup into probe-bw, then collects the pacing
// gain after each further ACK spaced one phase apart.
std::vector<double> probe_bw_gain_trace(int phases) {
  BbrDriver d;
  for (const SimTime dur :
       {msec(640), msec(320), msec(160), msec(160), msec(160), msec(160),
        msec(160)}) {
    d.deliver(64'000, dur, 0.05);
  }
  d.flight = static_cast<std::int64_t>(d.cc.bdp_bytes() / 2.0);
  d.deliver(4'000, msec(10), 0.05, /*acks=*/1);
  std::vector<double> gains{d.cc.pacing_gain()};
  // Each ack lands one min-RTT past the phase boundary, advancing the
  // 8-phase cycle by exactly one step.
  for (int i = 1; i < phases; ++i) {
    d.deliver(4'000, msec(51), 0.05, /*acks=*/1);
    gains.push_back(d.cc.pacing_gain());
  }
  return gains;
}

TEST(BbrCC, ProbeBwGainCycleIsTheBbrV1OctetAndDeterministic) {
  const auto gains = probe_bw_gain_trace(17);
  const std::vector<double> expected = {
      1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0,  // full cycle
      1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0,  // wraps identically
      1.25};
  EXPECT_EQ(gains, expected);
  // Two independent drivers fed the same script agree ACK-for-ACK.
  EXPECT_EQ(gains, probe_bw_gain_trace(17));
}

TEST(BbrCC, ProbeRttEntryOnStaleMinRttAndTimedExit) {
  BbrDriver d;
  for (const SimTime dur :
       {msec(640), msec(320), msec(160), msec(160), msec(160), msec(160),
        msec(160)}) {
    d.deliver(64'000, dur, 0.05);
  }
  d.flight = static_cast<std::int64_t>(d.cc.bdp_bytes() / 2.0);
  d.deliver(4'000, msec(10), 0.05, /*acks=*/1);
  ASSERT_EQ(d.cc.state(), BbrCC::State::kProbeBw);
  const double cwnd_before = d.cc.cwnd();
  // An ACK arriving with the min-RTT sample older than the 10 s window (no
  // fresh sample re-grounding the filter in between) must yield to
  // probe-rtt and clamp the window to 4 segments.
  d.now += BbrCC::kMinRttWindow + msec(1);
  d.una += 1000;
  d.cc.on_ack(ack_of(d.now, 1000, d.una, d.flight));
  EXPECT_EQ(d.cc.state(), BbrCC::State::kProbeRtt);
  EXPECT_DOUBLE_EQ(d.cc.pacing_gain(), 1.0);
  EXPECT_LE(d.cc.cwnd(), 4'000.0);
  // Acks inside the probe interval keep the clamp.
  d.now += msec(100);
  d.una += 1000;
  d.cc.on_ack(ack_of(d.now, 1000, d.una, 4'000));
  EXPECT_EQ(d.cc.state(), BbrCC::State::kProbeRtt);
  EXPECT_LE(d.cc.cwnd(), 4'000.0);
  // After kProbeRttDuration the machine returns to probe-bw (pipe still
  // full), restores the pre-probe window and restarts the gain cycle.
  d.now += BbrCC::kProbeRttDuration;
  d.una += 1000;
  d.cc.on_ack(ack_of(d.now, 1000, d.una, 4'000));
  EXPECT_EQ(d.cc.state(), BbrCC::State::kProbeBw);
  EXPECT_DOUBLE_EQ(d.cc.pacing_gain(), 1.25);
  EXPECT_GE(d.cc.cwnd(), cwnd_before);
}

TEST(BbrCC, LossEventsDoNotCollapseTheModelButRtoDoes) {
  BbrDriver d;
  for (const SimTime dur : {msec(640), msec(320), msec(160), msec(160),
                            msec(160), msec(160), msec(160)}) {
    d.deliver(64'000, dur, 0.05);
  }
  const double cwnd = d.cc.cwnd();
  const double bw = d.cc.max_bw_bytes_per_sec();
  d.cc.on_recovery_enter(32'000, d.now);
  d.cc.on_recovery_exit(d.now);
  EXPECT_DOUBLE_EQ(d.cc.cwnd(), cwnd);  // loss is not a congestion signal
  d.cc.on_rto(32'000, d.now);
  EXPECT_DOUBLE_EQ(d.cc.cwnd(), 1000.0);  // timeout restarts conservatively
  EXPECT_DOUBLE_EQ(d.cc.max_bw_bytes_per_sec(), bw);  // model survives
}

TEST(BbrCC, PacingRateIsGainTimesModelBandwidth) {
  BbrDriver d;
  EXPECT_DOUBLE_EQ(d.cc.pacing_rate(0.1), 0.0);  // no model yet: no opinion
  for (const SimTime dur : {msec(640), msec(320), msec(160), msec(160),
                            msec(160), msec(160), msec(160)}) {
    d.deliver(64'000, dur, 0.05);
  }
  EXPECT_NEAR(d.cc.pacing_rate(0.1),
              d.cc.pacing_gain() * d.cc.max_bw_bytes_per_sec(), 1e-6);
}

// --- Loss / jitter scenarios over a real TcpConnection --------------------

struct NoMeta : net::PayloadMeta {};

// Bulk-transfer goodput (bytes/sec delivered to the receiving app) over a
// client -> server path whose bottleneck suffers random per-packet loss
// and/or per-packet delay jitter on the data direction.
double bulk_goodput(CcAlgorithm algorithm, double loss_prob,
                    double jitter_frac_of_rtt, std::uint64_t seed,
                    SimTime horizon = sec(30)) {
  sim::Simulator sim;
  net::Network net(sim);
  const net::NodeId client_id = net.add_node("client");
  const net::NodeId ra = net.add_node("ra");
  const net::NodeId rb = net.add_node("rb");
  const net::NodeId server_id = net.add_node("server");
  net.add_link(client_id, ra, mbps(100), msec(1));
  net::Link& bottleneck = net.add_link(ra, rb, mbps(4), msec(40), 64 * 1024);
  net.add_link(rb, server_id, mbps(100), msec(1));
  net.compute_routes();
  // Base RTT is 2*(1+40+1) = 84 ms; jitter is quoted as a fraction of it.
  const auto jitter_max =
      static_cast<std::int64_t>(jitter_frac_of_rtt * 84'000.0);

  auto rng = std::make_shared<util::Rng>(seed * 6151 + 11);
  net::LinkDirection& data_dir = bottleneck.direction_from(ra);
  if (loss_prob > 0.0) {
    data_dir.set_fault_filter([rng, loss_prob](const net::Packet& p, SimTime) {
      // Only data-bearing packets; pure ACKs ride the reverse direction.
      return p.size_bytes >= 500 && rng->bernoulli(loss_prob);
    });
  }
  if (jitter_max > 0) {
    data_dir.set_delay_jitter(
        [rng, jitter_max](SimTime) { return rng->uniform_int(0, jitter_max); });
  }

  TransportMux client_mux(net, client_id);
  TransportMux server_mux(net, server_id);
  TcpConfig cfg;
  cfg.cc = algorithm;
  // SACK on: scoreboard recovery keeps sending new data during recovery
  // under the backend's cwnd, so the *window policy* is what differs.
  cfg.sack_enabled = true;
  std::unique_ptr<TcpConnection> accepted;
  TcpListener listener(server_mux, 80, cfg,
                       [&](std::unique_ptr<TcpConnection> c) {
                         accepted = std::move(c);
                       });
  TcpConnection client(client_mux, cfg);
  client.set_on_established([&] {
    for (int i = 0; i < 20'000; ++i) {  // 20 MB: never source-limited
      client.send_chunk(1000, std::make_shared<NoMeta>());
    }
  });
  client.connect({server_id, 80});
  sim.run_until(horizon);
  if (accepted == nullptr) return 0.0;
  return static_cast<double>(accepted->stats().bytes_delivered) /
         to_seconds(horizon);
}

TEST(CcScenario, BbrSustainsThroughputUnderRandomLoss) {
  // The jittertrap-style result: random (non-congestive) loss starves
  // loss-based CC, while BBR's model keeps the pipe near-full. The gap
  // widens with the loss rate (at 1% SACK-based Reno still recovers most
  // losses cheaply; by 5% the window-halving tax dominates), so the pinned
  // margin scales with it. Seeds are pinned; the orderings must hold at
  // every loss rate.
  const struct {
    double loss;
    double margin;
  } rows[] = {{0.01, 1.1}, {0.03, 1.5}, {0.05, 1.5}};
  for (const auto& row : rows) {
    for (const std::uint64_t seed : {1ull, 2ull}) {
      const double reno =
          bulk_goodput(CcAlgorithm::kReno, row.loss, 0.0, seed);
      const double cubic =
          bulk_goodput(CcAlgorithm::kCubic, row.loss, 0.0, seed);
      const double bbr = bulk_goodput(CcAlgorithm::kBbr, row.loss, 0.0, seed);
      EXPECT_GT(bbr, row.margin * reno)
          << "loss=" << row.loss << " seed=" << seed;
      EXPECT_GT(bbr, row.margin * cubic)
          << "loss=" << row.loss << " seed=" << seed;
    }
  }
}

TEST(CcScenario, LossBasedThroughputDegradesMonotonicallyWithLoss) {
  for (const auto algorithm : {CcAlgorithm::kReno, CcAlgorithm::kCubic}) {
    const double clean = bulk_goodput(algorithm, 0.0, 0.0, 3);
    const double lossy = bulk_goodput(algorithm, 0.03, 0.0, 3);
    EXPECT_GT(clean, 2.0 * lossy) << cc_algorithm_name(algorithm);
  }
}

TEST(CcScenario, JitterCliffHitsLossBasedCcNotBbr) {
  // Delay jitter above ~20% of the RTT reorders segments enough to fake
  // 3-dupACK loss signals; loss-based CC halves its window on each and
  // falls off a cliff. BBR keeps cruising at the modelled rate.
  const std::uint64_t seed = 7;
  const double reno_base = bulk_goodput(CcAlgorithm::kReno, 0.0, 0.0, seed);
  const double reno_jit = bulk_goodput(CcAlgorithm::kReno, 0.0, 0.25, seed);
  const double cubic_base = bulk_goodput(CcAlgorithm::kCubic, 0.0, 0.0, seed);
  const double cubic_jit = bulk_goodput(CcAlgorithm::kCubic, 0.0, 0.25, seed);
  const double bbr_base = bulk_goodput(CcAlgorithm::kBbr, 0.0, 0.0, seed);
  const double bbr_jit = bulk_goodput(CcAlgorithm::kBbr, 0.0, 0.25, seed);
  // The cliff: loss-based retains under half of its clean goodput.
  EXPECT_LT(reno_jit, 0.5 * reno_base);
  EXPECT_LT(cubic_jit, 0.5 * cubic_base);
  // BBR retains most of its goodput and beats both under jitter.
  EXPECT_GT(bbr_jit, 0.6 * bbr_base);
  EXPECT_GT(bbr_jit, 1.5 * reno_jit);
  EXPECT_GT(bbr_jit, 1.5 * cubic_jit);
}

TEST(CcScenario, MildJitterBelowCliffIsSurvivable) {
  // Below the ~20%-of-RTT threshold reordering is rare: loss-based CC
  // keeps the bulk of its throughput (the cliff is a threshold effect,
  // not a linear slide).
  const std::uint64_t seed = 7;
  const double reno_base = bulk_goodput(CcAlgorithm::kReno, 0.0, 0.0, seed);
  const double reno_mild = bulk_goodput(CcAlgorithm::kReno, 0.0, 0.05, seed);
  EXPECT_GT(reno_mild, 0.7 * reno_base);
}

}  // namespace
}  // namespace rv::transport
