// Observability subsystem tests: TraceBuffer ring semantics, the
// thread-local sink hooks, Chrome trace export structure, and — the load-
// bearing guarantee — that per-play traces from a faulted mini-study are
// byte-identical at 1 and 8 worker threads, and that enabling tracing does
// not perturb the study results themselves.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "obs/chrome_trace.h"
#include "obs/trace.h"
#include "study/analysis.h"
#include "study/cache.h"
#include "study/study.h"

namespace rv::obs {
namespace {

TEST(TraceBuffer, KeepsEverythingUnderCapacity) {
  TraceBuffer buf(8);
  for (int i = 0; i < 5; ++i) {
    buf.emit(i * 10, Code::kFrameDrop, static_cast<std::uint64_t>(i), 0);
  }
  EXPECT_EQ(buf.total_emitted(), 5u);
  EXPECT_EQ(buf.dropped(), 0u);
  const auto events = buf.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].t, i * 10);
    EXPECT_EQ(events[static_cast<std::size_t>(i)].a0,
              static_cast<std::uint64_t>(i));
  }
}

TEST(TraceBuffer, WrapsKeepingMostRecent) {
  TraceBuffer buf(4);
  for (int i = 0; i < 10; ++i) {
    buf.emit(i, Code::kFrameDrop, static_cast<std::uint64_t>(i), 0);
  }
  EXPECT_EQ(buf.total_emitted(), 10u);
  EXPECT_EQ(buf.dropped(), 6u);
  const auto events = buf.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest survivor first: events 6, 7, 8, 9.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].a0, 6 + i);
  }
}

TEST(TraceBuffer, ClearRestartsWithoutRealloc) {
  TraceBuffer buf(4);
  buf.emit(1, Code::kPrerollDone, 0, 0);
  buf.clear();
  EXPECT_EQ(buf.total_emitted(), 0u);
  EXPECT_TRUE(buf.snapshot().empty());
  EXPECT_EQ(buf.capacity(), 4u);
}

TEST(TraceEventLayout, CatIsDerivedFromCode) {
  EXPECT_EQ(cat_of(Code::kRebufferStart), Cat::kClient);
  EXPECT_EQ(cat_of(Code::kSackRetransmit), Cat::kTransport);
  EXPECT_EQ(cat_of(Code::kRtspFallback), Cat::kRtsp);
  EXPECT_EQ(cat_of(Code::kFaultCorruption), Cat::kFault);
  // Every code and counter has a printable name.
  for (int c = 0; c < static_cast<int>(Code::kCodeCount); ++c) {
    EXPECT_STRNE(code_name(static_cast<Code>(c)), "unknown");
  }
  for (int c = 0; c < static_cast<int>(Counter::kCount); ++c) {
    EXPECT_STRNE(counter_name(static_cast<Counter>(c)), "unknown");
  }
}

TEST(TraceEventLayout, CodeAndCounterNamesAreUniqueAndNonEmpty) {
  std::set<std::string> code_names;
  for (int c = 0; c < static_cast<int>(Code::kCodeCount); ++c) {
    const char* name = code_name(static_cast<Code>(c));
    EXPECT_STRNE(name, "");
    code_names.insert(name);
  }
  EXPECT_EQ(code_names.size(), static_cast<std::size_t>(Code::kCodeCount));
  std::set<std::string> counter_names;
  for (int c = 0; c < static_cast<int>(Counter::kCount); ++c) {
    const char* name = counter_name(static_cast<Counter>(c));
    EXPECT_STRNE(name, "");
    counter_names.insert(name);
  }
  EXPECT_EQ(counter_names.size(), static_cast<std::size_t>(Counter::kCount));
}

TEST(ParseTracePlay, AcceptsExactlyTwoNonNegativeInts) {
  const auto ok = parse_trace_play("3,7");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->first, 3);
  EXPECT_EQ(ok->second, 7);
  const auto zero = parse_trace_play("0,0");
  ASSERT_TRUE(zero.has_value());
  EXPECT_EQ(zero->first, 0);
  EXPECT_EQ(zero->second, 0);
}

TEST(ParseTracePlay, RejectsMalformedInput) {
  EXPECT_FALSE(parse_trace_play("").has_value());
  EXPECT_FALSE(parse_trace_play("5").has_value());
  EXPECT_FALSE(parse_trace_play("1,2,3").has_value());  // trailing field
  EXPECT_FALSE(parse_trace_play("1,").has_value());
  EXPECT_FALSE(parse_trace_play(",2").has_value());
  EXPECT_FALSE(parse_trace_play("-1,2").has_value());
  EXPECT_FALSE(parse_trace_play("1,-2").has_value());
  EXPECT_FALSE(parse_trace_play("a,b").has_value());
  EXPECT_FALSE(parse_trace_play("1,2x").has_value());
  EXPECT_FALSE(parse_trace_play("99999999999,1").has_value());  // > int32
}

TEST(Hooks, NoSinkInstalledIsANoOp) {
  ASSERT_EQ(current_sink(), nullptr);
  // Must not crash, must not record anywhere.
  emit(100, Code::kFrameDrop, 1, 2);
  count(Counter::kFrameDrops);
  gauge_max(Counter::kFallbackDepth, 2);
  EXPECT_EQ(current_sink(), nullptr);
}

TEST(Hooks, ScopedSinkInstallsAndRestores) {
  PlaySink outer;
  outer.reset(16);
  {
    ScopedSink scope_outer(&outer);
    EXPECT_EQ(current_sink(), &outer);
    emit(5, Code::kPrerollDone, 42, 0);
    count(Counter::kRebuffers, 3);
    gauge_max(Counter::kFallbackDepth, 1);
    gauge_max(Counter::kFallbackDepth, 2);
    gauge_max(Counter::kFallbackDepth, 1);  // gauge keeps the high-water mark
    PlaySink inner;
    inner.reset(16);
    {
      ScopedSink scope_inner(&inner);
      EXPECT_EQ(current_sink(), &inner);
      emit(9, Code::kFrameDrop, 7, 0);
    }
    EXPECT_EQ(current_sink(), &outer);
    EXPECT_EQ(inner.buffer.total_emitted(), 1u);
  }
  EXPECT_EQ(current_sink(), nullptr);
  const auto events = outer.buffer.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].t, 5);
  EXPECT_EQ(events[0].a0, 42u);
  EXPECT_EQ(outer.counters.get(Counter::kRebuffers), 3u);
  EXPECT_EQ(outer.counters.get(Counter::kFallbackDepth), 2u);
}

TEST(Counters, MergeSumsExceptGaugeWhichMaxes) {
  Counters a;
  a.add(Counter::kTcpRetransmits, 5);
  a.set_max(Counter::kFallbackDepth, 2);
  Counters b;
  b.add(Counter::kTcpRetransmits, 7);
  b.set_max(Counter::kFallbackDepth, 1);
  a.merge(b);
  EXPECT_EQ(a.get(Counter::kTcpRetransmits), 12u);
  EXPECT_EQ(a.get(Counter::kFallbackDepth), 2u);
}

TEST(ObsConfig, SelectsAppliesFilters) {
  ObsConfig cfg;
  EXPECT_FALSE(cfg.selects(0, 0));  // disabled by default
  cfg.enabled = true;
  EXPECT_TRUE(cfg.selects(3, 1));
  cfg.filter_user = 3;
  EXPECT_TRUE(cfg.selects(3, 1));
  EXPECT_FALSE(cfg.selects(4, 1));
  cfg.filter_play = 0;
  EXPECT_FALSE(cfg.selects(3, 1));
  EXPECT_TRUE(cfg.selects(3, 0));
}

TEST(ChromeTrace, StructureAndSpanPairing) {
  PlayObs obs;
  obs.enabled = true;
  TraceBuffer buf(8);
  buf.emit(1000, Code::kRebufferStart, 1, 50);
  buf.emit(3000, Code::kRebufferStop, 2000, 12);
  buf.emit(4000, Code::kTcpTimeout, 99, 250000);
  obs.events = buf.snapshot();
  obs.counters.add(Counter::kRebuffers);

  PlayTrack track;
  track.pid = 12;
  track.tid = 3;
  track.process_name = "user 12 (modem)";
  track.thread_name = "clip 45";
  track.obs = &obs;

  const std::string json = chrome_trace_json({track});
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("user 12 (modem)"), std::string::npos);
  EXPECT_NE(json.find("clip 45"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("tcp_timeout"), std::string::npos);
  EXPECT_NE(json.find("play_counters"), std::string::npos);
  // Balanced span markers.
  std::size_t begins = 0;
  std::size_t ends = 0;
  for (std::size_t pos = 0;
       (pos = json.find("\"ph\":\"B\"", pos)) != std::string::npos; ++pos) {
    ++begins;
  }
  for (std::size_t pos = 0;
       (pos = json.find("\"ph\":\"E\"", pos)) != std::string::npos; ++pos) {
    ++ends;
  }
  EXPECT_EQ(begins, ends);

  // Disabled or missing obs is skipped entirely.
  PlayTrack empty = track;
  empty.obs = nullptr;
  const std::string skipped = chrome_trace_json({empty});
  EXPECT_EQ(skipped.find("\"ph\":\"B\""), std::string::npos);
}

TEST(CounterTotals, SumsMonotonicCountersButMaxesGauges) {
  std::vector<tracer::TraceRecord> records(3);
  records[0].obs.enabled = true;
  records[0].obs.counters.add(Counter::kRebuffers, 2);
  records[0].obs.counters.set_max(Counter::kFallbackDepth, 1);
  records[1].obs.enabled = true;
  records[1].obs.counters.add(Counter::kRebuffers, 3);
  records[1].obs.counters.set_max(Counter::kFallbackDepth, 2);
  // Untraced record: its (zero) counters must not contribute.
  records[2].obs.counters.add(Counter::kRebuffers, 100);
  records[2].obs.enabled = false;

  const Counters totals = study::counter_totals(records);
  EXPECT_EQ(totals.get(Counter::kRebuffers), 5u);
  // kFallbackDepth is a high-water gauge: study level takes the max across
  // plays (a depth-2 play and a depth-1 play is "worst was 2", not 3).
  EXPECT_EQ(totals.get(Counter::kFallbackDepth), 2u);
}

// --- study-level determinism ----------------------------------------------

study::StudyConfig faulted_mini_config() {
  study::StudyConfig config;
  config.play_scale = 0.02;
  config.seed = 2001;
  config.tracer.faults.enabled = true;
  config.tracer.faults.mechanistic_unavailability = true;
  config.tracer.faults.overload_probability = 0.05;
  config.tracer.faults.link_down_probability = 0.05;
  config.tracer.faults.corruption_probability = 0.05;
  return config;
}

bool same_events(const std::vector<TraceEvent>& a,
                 const std::vector<TraceEvent>& b) {
  if (a.size() != b.size()) return false;
  if (a.empty()) return true;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(TraceEvent)) == 0;
}

TEST(ObsStudy, TraceMergeByteIdenticalAcrossThreadCounts) {
  auto config = faulted_mini_config();
  config.tracer.obs.enabled = true;
  config.threads = 1;
  const auto single = study::run_study(config);
  config.threads = 8;
  const auto pooled = study::run_study(config);

  ASSERT_EQ(single.records.size(), pooled.records.size());
  std::size_t traced = 0;
  std::uint64_t total_events = 0;
  for (std::size_t i = 0; i < single.records.size(); ++i) {
    const auto& a = single.records[i].obs;
    const auto& b = pooled.records[i].obs;
    ASSERT_EQ(a.enabled, b.enabled) << "record " << i;
    if (!a.enabled) continue;
    ++traced;
    total_events += a.events.size();
    EXPECT_TRUE(same_events(a.events, b.events)) << "record " << i;
    EXPECT_EQ(a.events_dropped, b.events_dropped) << "record " << i;
    EXPECT_EQ(a.counters.v, b.counters.v) << "record " << i;
  }
  // Unavailable plays (the Fig 10 case) never simulate and so carry no
  // trace; every simulated play must.
  EXPECT_GT(traced, single.records.size() / 2);
  EXPECT_GT(total_events, 0u);

  // Study-level totals agree too, and saw real traffic.
  const auto totals_a = study::counter_totals(single.records);
  const auto totals_b = study::counter_totals(pooled.records);
  EXPECT_EQ(totals_a.v, totals_b.v);
  EXPECT_GT(totals_a.get(Counter::kPacketsEnqueued), 0u);
  EXPECT_GT(totals_a.get(Counter::kSimEvents), 0u);
}

TEST(ObsStudy, TracingDoesNotPerturbResults) {
  // The serialized study (which never includes obs data) must be
  // byte-identical with tracing off and on — observation cannot change the
  // observed.
  const auto serialize = [](const study::StudyConfig& config,
                            const study::StudyResult& result) {
    const std::string path = ::testing::TempDir() + "/rv_obs_perturb.bin";
    EXPECT_TRUE(study::save_result(path, config, result));
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    std::remove(path.c_str());
    return os.str();
  };

  auto config = faulted_mini_config();
  config.threads = 2;
  config.tracer.obs.enabled = false;
  const auto off = study::run_study(config);
  auto on_config = config;
  on_config.tracer.obs.enabled = true;
  on_config.tracer.obs.ring_capacity = 64;  // force ring wrap on some plays
  const auto on = study::run_study(on_config);

  // Same fingerprint: obs config must not leak into the cache key.
  EXPECT_EQ(study::config_fingerprint(config),
            study::config_fingerprint(on_config));
  EXPECT_EQ(serialize(config, off), serialize(config, on));
}

}  // namespace
}  // namespace rv::obs
