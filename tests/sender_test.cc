#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "media/codec.h"
#include "server/stream_sender.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace rv::server {
namespace {

// Records everything the sender pushes; emulates a configurable TCP backlog.
class FakeChannel : public MediaChannel {
 public:
  void send_media(std::shared_ptr<const media::MediaPacketMeta> meta,
                  std::int32_t bytes) override {
    sent.push_back(std::move(meta));
    total_bytes += bytes;
  }
  std::int64_t backlog_bytes() const override { return backlog; }
  bool reliable() const override { return reliable_flag; }

  std::vector<std::shared_ptr<const media::MediaPacketMeta>> sent;
  std::int64_t total_bytes = 0;
  std::int64_t backlog = 0;
  bool reliable_flag = false;
};

media::Clip surestream_clip() {
  const auto& targets = media::target_audiences();
  std::vector<media::EncodingLevel> levels = {
      make_level(targets[1], media::AudioContent::kVoice),   // 34K
      make_level(targets[3], media::AudioContent::kVoice),   // 80K
      make_level(targets[5], media::AudioContent::kVoice),   // 225K
  };
  return media::Clip(5, "sender-test", media::ClipKind::kNews, sec(60),
                     std::move(levels), 77);
}

StreamSenderConfig quick_config() {
  StreamSenderConfig cfg;
  cfg.preroll_media_seconds = 4.0;
  return cfg;
}

TEST(StreamSender, PacesAtRoughlyLevelRate) {
  sim::Simulator sim;
  const auto clip = surestream_clip();
  FakeChannel channel;
  StreamSender sender(sim, clip, 2, channel, nullptr, quick_config(),
                      util::Rng(1));
  sender.start();
  sim.run_until(sec(20));
  sender.stop();
  // 225 Kbps level: ~28 KB/s; the preroll burst runs ~1.8x for 4 media-sec.
  const double rate_bps = static_cast<double>(channel.total_bytes) * 8 / 20.0;
  EXPECT_GT(rate_bps, kbps(180));
  EXPECT_LT(rate_bps, kbps(330));
  EXPECT_GT(channel.sent.size(), 100u);
}

TEST(StreamSender, SendsAudioAndVideoInterleaved) {
  sim::Simulator sim;
  const auto clip = surestream_clip();
  FakeChannel channel;
  StreamSender sender(sim, clip, 0, channel, nullptr, quick_config(),
                      util::Rng(1));
  sender.start();
  sim.run_until(sec(10));
  sender.stop();
  int audio = 0;
  int video = 0;
  for (const auto& m : channel.sent) {
    audio += m->kind == media::MediaKind::kAudio;
    video += m->kind == media::MediaKind::kVideo;
  }
  EXPECT_GT(audio, 10);
  EXPECT_GT(video, 30);
}

TEST(StreamSender, SequenceNumbersStrictlyIncrease) {
  sim::Simulator sim;
  const auto clip = surestream_clip();
  FakeChannel channel;
  StreamSender sender(sim, clip, 1, channel, nullptr, quick_config(),
                      util::Rng(1));
  sender.start();
  sim.run_until(sec(15));
  sender.stop();
  for (std::size_t i = 1; i < channel.sent.size(); ++i) {
    EXPECT_EQ(channel.sent[i]->seq, channel.sent[i - 1]->seq + 1);
  }
}

TEST(StreamSender, EndOfStreamAfterWholeClip) {
  sim::Simulator sim;
  const auto& targets = media::target_audiences();
  std::vector<media::EncodingLevel> levels = {
      make_level(targets[0], media::AudioContent::kVoice)};
  const media::Clip clip(1, "short", media::ClipKind::kNews, sec(5),
                         std::move(levels), 3);
  FakeChannel channel;
  channel.reliable_flag = true;
  StreamSender sender(sim, clip, 0, channel, nullptr, quick_config(),
                      util::Rng(1));
  sender.start();
  sim.run_until(sec(30));
  EXPECT_TRUE(sender.stopped());
  int eos = 0;
  for (const auto& m : channel.sent) {
    eos += m->kind == media::MediaKind::kEndOfStream;
  }
  EXPECT_EQ(eos, 1);  // reliable channel: single EOS
}

TEST(StreamSender, UnreliableChannelRepeatsEos) {
  sim::Simulator sim;
  const auto& targets = media::target_audiences();
  std::vector<media::EncodingLevel> levels = {
      make_level(targets[0], media::AudioContent::kVoice)};
  const media::Clip clip(1, "short", media::ClipKind::kNews, sec(5),
                         std::move(levels), 3);
  FakeChannel channel;  // reliable_flag = false
  StreamSender sender(sim, clip, 0, channel, nullptr, quick_config(),
                      util::Rng(1));
  sender.start();
  sim.run_until(sec(30));
  int eos = 0;
  for (const auto& m : channel.sent) {
    eos += m->kind == media::MediaKind::kEndOfStream;
  }
  EXPECT_EQ(eos, 3);
}

TEST(StreamSender, ControllerDrivesLevelDown) {
  sim::Simulator sim;
  const auto clip = surestream_clip();
  FakeChannel channel;
  transport::AimdConfig aimd;
  aimd.initial_rate = kbps(250);
  auto controller = std::make_unique<transport::AimdRateController>(aimd);
  StreamSender sender(sim, clip, 2, channel,
                      std::move(controller), quick_config(), util::Rng(1));
  sender.start();
  sim.run_until(sec(2));
  EXPECT_EQ(sender.active_level(), 2u);
  // Persistent loss reports crush the allowed rate.
  media::FeedbackMeta feedback;
  feedback.loss_fraction = 0.3;
  feedback.receive_rate = kbps(40);
  for (int i = 0; i < 10; ++i) sender.on_feedback(feedback);
  EXPECT_EQ(sender.active_level(), 0u);
  EXPECT_GT(sender.level_switches(), 0u);
}

TEST(StreamSender, ControllerDrivesLevelBackUp) {
  sim::Simulator sim;
  const auto clip = surestream_clip();
  FakeChannel channel;
  transport::AimdConfig aimd;
  aimd.initial_rate = kbps(30);
  aimd.increase_per_report = kbps(40);
  auto controller = std::make_unique<transport::AimdRateController>(aimd);
  StreamSender sender(sim, clip, 0, channel,
                      std::move(controller), quick_config(), util::Rng(1));
  sender.start();
  media::FeedbackMeta clean;
  clean.loss_fraction = 0.0;
  clean.receive_rate = kbps(300);
  for (int i = 0; i < 12; ++i) sender.on_feedback(clean);
  EXPECT_GT(sender.active_level(), 0u);
}

TEST(StreamSender, SvtThinsWhenRateBelowFloorLevel) {
  sim::Simulator sim;
  const auto clip = surestream_clip();
  FakeChannel channel;
  transport::AimdConfig aimd;
  aimd.initial_rate = kbps(12);  // far below the 34K floor
  aimd.max_rate = kbps(14);
  auto controller = std::make_unique<transport::AimdRateController>(aimd);
  StreamSender sender(sim, clip, 0, channel,
                      std::move(controller), quick_config(), util::Rng(1));
  sender.start();
  media::FeedbackMeta clean;
  clean.loss_fraction = 0.0;
  clean.receive_rate = kbps(12);
  for (int i = 0; i < 4; ++i) {
    sim.run_until(sim.now() + sec(3));
    sender.on_feedback(clean);
  }
  EXPECT_GT(sender.frames_thinned(), 5u);
}

TEST(StreamSender, RepairResendsFromRing) {
  sim::Simulator sim;
  const auto clip = surestream_clip();
  FakeChannel channel;
  StreamSender sender(sim, clip, 1, channel, nullptr, quick_config(),
                      util::Rng(1));
  sender.start();
  sim.run_until(sec(5));
  ASSERT_GT(channel.sent.size(), 10u);
  const std::uint32_t seq = channel.sent[4]->seq;
  const auto before = channel.sent.size();
  media::RepairRequestMeta nak;
  nak.seqs = {seq, seq + 1, 9999999u};  // last one is out of the ring
  sender.on_repair_request(nak);
  ASSERT_EQ(channel.sent.size(), before + 2);
  EXPECT_EQ(channel.sent[before]->kind, media::MediaKind::kRepair);
  EXPECT_EQ(channel.sent[before]->seq, seq);
  EXPECT_EQ(sender.repairs_sent(), 2u);
}

TEST(StreamSender, DeepTcpBacklogPausesPumpAndSwitchesDown) {
  sim::Simulator sim;
  const auto clip = surestream_clip();
  FakeChannel channel;
  channel.reliable_flag = true;
  StreamSenderConfig cfg = quick_config();
  StreamSender sender(sim, clip, 2, channel, nullptr, cfg, util::Rng(1));
  sender.start();
  sim.run_until(sec(2));
  // Simulate a TCP that cannot drain: enormous backlog.
  channel.backlog = 1'000'000;
  const auto sent_before = channel.sent.size();
  sim.run_until(sec(8));
  // Pump paused: (almost) nothing more was submitted.
  EXPECT_LE(channel.sent.size(), sent_before + 3);
  // And the SureStream logic moved to a cheaper level.
  EXPECT_LT(sender.active_level(), 2u);
  sender.stop();
}

TEST(StreamSender, StopIsIdempotentAndHaltsTraffic) {
  sim::Simulator sim;
  const auto clip = surestream_clip();
  FakeChannel channel;
  StreamSender sender(sim, clip, 0, channel, nullptr, quick_config(),
                      util::Rng(1));
  sender.start();
  sim.run_until(sec(2));
  sender.stop();
  sender.stop();
  const auto frozen = channel.sent.size();
  sim.run_until(sec(10));
  EXPECT_EQ(channel.sent.size(), frozen);
}

}  // namespace
}  // namespace rv::server
