// Telemetry subsystem tests: sampler mechanics, bottleneck attribution,
// flight-recorder rendering, and the load-bearing study-level guarantees —
// per-play series and both exports (CSV, flight JSON) byte-identical at 1
// and 8 worker threads, and telemetry/profiling leaving the study results
// themselves untouched.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <numeric>
#include <sstream>
#include <string>

#include "obs/chrome_trace.h"
#include "sim/simulator.h"
#include "study/cache.h"
#include "study/study.h"
#include "study/telemetry_report.h"
#include "telemetry/flight.h"
#include "telemetry/sampler.h"
#include "telemetry/series.h"
#include "util/strings.h"
#include "world/path_builder.h"

namespace rv::telemetry {
namespace {

std::string file_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

TEST(PlaySampler, TicksOnTheSimClockUntilFinished) {
  sim::Simulator sim;
  Series out;
  out.reset(0);
  Probe probe;
  probe.buffer_sec = [] { return 2.5; };
  // 1 frame per 50 ms of sim time — a pure function of the clock.
  probe.frames_played = [&sim] { return sim.now() / msec(50); };
  probe.finished = [&sim] { return sim.now() >= sec(2); };
  PlaySampler sampler(sim, nullptr, 0, std::move(probe), &out, msec(500));
  sampler.start();
  EXPECT_TRUE(sampler.active());
  sim.run_until(sec(10));

  // Ticks at 0.5/1.0/1.5 s sample; the 2.0 s tick sees finished and stops —
  // the series freezes instead of recording an idle tail to the horizon.
  ASSERT_EQ(out.size(), 3u);
  EXPECT_FALSE(sampler.active());
  EXPECT_EQ(out.t[0], msec(500));
  EXPECT_EQ(out.t[1], msec(1000));
  EXPECT_EQ(out.t[2], msec(1500));
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out.buffer_sec[i], 2.5);
    EXPECT_DOUBLE_EQ(out.fps[i], 20.0);  // 10 frames per 500 ms interval
    EXPECT_DOUBLE_EQ(out.cwnd_bytes[i], 0.0);  // probe absent -> 0 column
  }
}

TEST(PlaySampler, ClampsBackwardSteppingCumulativeProbes) {
  sim::Simulator sim;
  Series out;
  out.reset(0);
  std::int64_t frames = 100;
  Probe probe;
  probe.frames_played = [&frames] { return frames; };
  PlaySampler sampler(sim, nullptr, 0, std::move(probe), &out, msec(500));
  sampler.sample_at(msec(500));
  EXPECT_DOUBLE_EQ(out.fps[0], 200.0);
  // The playout engine is rebuilt on TCP fallback, resetting its cumulative
  // frame count; the interval must read as zero rate, not negative.
  frames = 40;
  sampler.sample_at(msec(1000));
  EXPECT_DOUBLE_EQ(out.fps[1], 0.0);
  frames = 60;
  sampler.sample_at(msec(1500));
  EXPECT_DOUBLE_EQ(out.fps[2], 40.0);
}

TEST(BottleneckLink, ArgmaxOfOccupancyPlusDropShare) {
  Series s;
  EXPECT_EQ(bottleneck_link(s), -1);  // empty
  s.reset(3);
  EXPECT_EQ(bottleneck_link(s), -1);  // links but no samples
  s.t = {msec(500), msec(1000)};
  s.links[0].occupancy = {0.1, 0.1};
  s.links[0].drops = {0, 0};
  s.links[1].occupancy = {0.5, 0.7};
  s.links[1].drops = {0, 0};
  s.links[2].occupancy = {0.5, 0.7};
  s.links[2].drops = {0, 0};
  // Links 1 and 2 tie on mean occupancy: the lower index wins.
  EXPECT_EQ(bottleneck_link(s), 1);
  // All drops on link 2: its drop share breaks the tie decisively.
  s.links[2].drops = {5, 0};
  EXPECT_EQ(bottleneck_link(s), 2);
}

TEST(FlightJson, RendersMetaReasonsEventsAndSeries) {
  FlightInfo info;
  info.meta.emplace_back("server", util::json_quote("US \"CNN\"\n"));
  info.meta.emplace_back("user_id", "7");
  info.reasons = {"low-fps", "rebuffer"};
  const std::string bare = flight_json(info);
  EXPECT_NE(bare.find("\"meta\""), std::string::npos);
  EXPECT_NE(bare.find("\\\"CNN\\\""), std::string::npos);  // escaped quote
  EXPECT_NE(bare.find("\\n"), std::string::npos);          // escaped newline
  EXPECT_NE(bare.find("\"low-fps\""), std::string::npos);
  EXPECT_EQ(bare.find("\"events\""), std::string::npos);  // no obs attached
  EXPECT_EQ(bare.find("\"series\""), std::string::npos);

  obs::PlayObs play_obs;
  play_obs.enabled = true;
  obs::TraceBuffer buf(4);
  buf.emit(1000, obs::Code::kRebufferStart, 1, 2);
  play_obs.events = buf.snapshot();
  PlaySeries series;
  series.enabled = true;
  series.interval = msec(500);
  series.data.reset(1);
  series.data.t = {msec(500)};
  series.data.buffer_sec = {1.5};
  series.data.fps = {20.0};
  series.data.bandwidth_kbps = {33.0};
  series.data.cwnd_bytes = {0.0};
  series.data.retx_per_sec = {0.0};
  series.data.pacing_kbps = {0.0};
  series.data.cc_state = {0.0};
  series.data.links[0].occupancy = {0.25};
  series.data.links[0].drops = {3};
  info.obs = &play_obs;
  info.series = &series;
  const std::string full = flight_json(info);
  EXPECT_NE(full.find("\"events\""), std::string::npos);
  EXPECT_NE(full.find("\"rebuffer\""), std::string::npos);  // code name
  EXPECT_NE(full.find("\"interval_usec\":500000"), std::string::npos);
  EXPECT_NE(full.find("\"drops\":[3]"), std::string::npos);

  const std::string path = ::testing::TempDir() + "/rv_flight_unit.json";
  EXPECT_TRUE(write_flight_json(path, info));
  EXPECT_EQ(file_bytes(path), full);
  std::remove(path.c_str());
}

TEST(FlightReasons, FixedOrderAndAnalyzableGating) {
  tracer::TraceRecord rec;
  rec.stats.played_any_frame = true;
  rec.stats.measured_fps = 10.0;
  const study::FlightPredicates pred;
  EXPECT_TRUE(study::flight_reasons(rec, pred).empty());

  rec.stats.rebuffer_seconds = 11.0;
  rec.stats.fell_back_to_http = true;
  rec.stats.measured_fps = 1.0;
  const auto reasons = study::flight_reasons(rec, pred);
  ASSERT_EQ(reasons.size(), 3u);
  EXPECT_EQ(reasons[0], "rebuffer");
  EXPECT_EQ(reasons[1], "http-cloak");
  EXPECT_EQ(reasons[2], "low-fps");

  // Non-analyzable plays (unavailable / firewalled) are the availability
  // story, not flight-recorder anomalies.
  rec.stats.played_any_frame = false;
  EXPECT_TRUE(study::flight_reasons(rec, pred).empty());
}

TEST(ChromeCounterSeries, ColumnsBecomeCounterTracks) {
  PlaySeries series;
  EXPECT_TRUE(study::chrome_counter_series(series).empty());  // disabled
  series.enabled = true;
  series.interval = msec(500);
  series.data.reset(world::PlayPath::kLinkCount);
  series.data.t = {msec(500), msec(1000)};
  series.data.buffer_sec = {1.0, 2.0};
  series.data.fps = {20.0, 21.0};
  series.data.bandwidth_kbps = {30.0, 31.0};
  series.data.cwnd_bytes = {0.0, 0.0};
  series.data.retx_per_sec = {0.0, 0.0};
  series.data.pacing_kbps = {0.0, 0.0};
  series.data.cc_state = {0.0, 0.0};
  for (auto& link : series.data.links) {
    link.occupancy = {0.1, 0.2};
    link.drops = {0, 1};
  }
  const auto tracks = study::chrome_counter_series(series);
  ASSERT_EQ(tracks.size(), 7u + 2u * world::PlayPath::kLinkCount);
  EXPECT_EQ(tracks[0].name, "buffer_sec");
  EXPECT_EQ(tracks[5].name, "pacing_kbps");
  EXPECT_EQ(tracks[6].name, "cc_state");
  EXPECT_EQ(tracks[7].name, "access_occupancy");
  for (const auto& track : tracks) {
    EXPECT_EQ(track.t.size(), 2u);
    EXPECT_EQ(track.v.size(), 2u);
  }

  obs::PlayObs play_obs;
  play_obs.enabled = true;
  obs::PlayTrack track;
  track.pid = 1;
  track.tid = 0;
  track.obs = &play_obs;
  track.counters = tracks;
  const std::string json = obs::chrome_trace_json({track});
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("bandwidth_kbps"), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"telemetry\""), std::string::npos);
}

// --- study-level determinism ----------------------------------------------

study::StudyConfig telemetry_mini_config() {
  study::StudyConfig config;
  config.play_scale = 0.02;
  config.seed = 2001;
  config.tracer.faults.enabled = true;
  config.tracer.faults.mechanistic_unavailability = true;
  config.tracer.faults.overload_probability = 0.05;
  config.tracer.faults.link_down_probability = 0.05;
  config.tracer.faults.corruption_probability = 0.05;
  config.tracer.telemetry.enabled = true;
  return config;
}

TEST(TelemetryStudy, SeriesAndExportsByteIdenticalAcrossThreadCounts) {
  auto config = telemetry_mini_config();
  config.tracer.obs.enabled = true;  // flight dumps carry the event ring too
  config.threads = 1;
  const auto single = study::run_study(config);
  config.threads = 8;
  const auto pooled = study::run_study(config);

  ASSERT_EQ(single.records.size(), pooled.records.size());
  std::size_t sampled = 0, samples = 0;
  for (std::size_t i = 0; i < single.records.size(); ++i) {
    const auto& a = single.records[i].series;
    const auto& b = pooled.records[i].series;
    ASSERT_EQ(a.enabled, b.enabled) << "record " << i;
    EXPECT_TRUE(a == b) << "record " << i;
    if (a.enabled && !a.data.empty()) {
      ++sampled;
      samples += a.data.size();
    }
  }
  EXPECT_GT(sampled, 0u);
  EXPECT_GT(samples, sampled);  // real multi-sample series, not stubs

  const std::string p1 = ::testing::TempDir() + "/rv_series_t1.csv";
  const std::string p8 = ::testing::TempDir() + "/rv_series_t8.csv";
  study::write_series_csv(p1, single.records);
  study::write_series_csv(p8, pooled.records);
  const std::string csv1 = file_bytes(p1);
  EXPECT_FALSE(csv1.empty());
  EXPECT_EQ(csv1, file_bytes(p8));
  std::remove(p1.c_str());
  std::remove(p8.c_str());

  // Flight dumps: identical file sets with identical bytes. A lenient fps
  // predicate makes every analyzable play an "anomaly" so the set is large.
  study::FlightPredicates pred;
  pred.min_fps = 1000.0;
  const std::string d1 = ::testing::TempDir() + "/rv_flight_t1";
  const std::string d8 = ::testing::TempDir() + "/rv_flight_t8";
  std::filesystem::remove_all(d1);
  std::filesystem::remove_all(d8);
  const int n1 = study::write_flight_records(d1, single, pred);
  const int n8 = study::write_flight_records(d8, pooled, pred);
  EXPECT_GT(n1, 0);
  EXPECT_EQ(n1, n8);
  const auto dir_contents = [&](const std::string& dir) {
    std::map<std::string, std::string> files;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      files[entry.path().filename().string()] =
          file_bytes(entry.path().string());
    }
    return files;
  };
  EXPECT_EQ(dir_contents(d1), dir_contents(d8));
  std::filesystem::remove_all(d1);
  std::filesystem::remove_all(d8);
}

TEST(TelemetryStudy, TelemetryAndProfilingDoNotPerturbResults) {
  // The serialized study (which never includes series or profile data) must
  // be byte-identical with telemetry+profiling off and on, under the same
  // cache fingerprint — sampling cannot change the sampled.
  const auto serialize = [](const study::StudyConfig& config,
                            const study::StudyResult& result) {
    const std::string path =
        ::testing::TempDir() + "/rv_telemetry_perturb.bin";
    EXPECT_TRUE(study::save_result(path, config, result));
    const std::string bytes = file_bytes(path);
    std::remove(path.c_str());
    return bytes;
  };

  auto config = telemetry_mini_config();
  config.threads = 2;
  config.tracer.telemetry.enabled = false;
  const auto off = study::run_study(config);
  auto on_config = config;
  on_config.tracer.telemetry.enabled = true;
  on_config.tracer.telemetry.interval = msec(250);
  on_config.profile = true;
  const auto on = study::run_study(on_config);

  EXPECT_EQ(study::config_fingerprint(config),
            study::config_fingerprint(on_config));
  EXPECT_EQ(serialize(config, off), serialize(config, on));

  // The profile rode along and accounts for every task exactly once.
  ASSERT_TRUE(on.profile.enabled);
  ASSERT_EQ(on.profile.workers.size(), 2u);
  const std::uint64_t plays = std::accumulate(
      on.profile.workers.begin(), on.profile.workers.end(),
      std::uint64_t{0},
      [](std::uint64_t acc, const study::WorkerProfile& w) {
        return acc + w.plays;
      });
  EXPECT_EQ(plays, on.records.size());
  EXPECT_GT(on.profile.execute_seconds, 0.0);
  EXPECT_FALSE(off.profile.enabled);
  const std::string report = study::profile_report(on.profile);
  EXPECT_NE(report.find("plan"), std::string::npos);
  EXPECT_NE(report.find("worker"), std::string::npos);
}

TEST(TelemetryStudy, ModemPlaysBottleneckOnTheAccessLink) {
  // No faults here: with healthy links, a 56k modem play's constraint is its
  // own access line (the paper's core Fig 12/13 finding).
  study::StudyConfig config;
  config.play_scale = 0.02;
  config.seed = 2001;
  config.threads = 4;
  config.tracer.telemetry.enabled = true;
  const auto result = study::run_study(config);

  const auto table = study::bottleneck_table(result);
  const auto it = table.find("56k Modem");
  ASSERT_NE(it, table.end());
  const auto& row = it->second;
  ASSERT_EQ(row.size(), world::PlayPath::kLinkCount);
  const int total = std::accumulate(row.begin(), row.end(), 0);
  ASSERT_GT(total, 0);
  EXPECT_GT(row[world::PlayPath::kAccessLink], total / 2)
      << "access=" << row[world::PlayPath::kAccessLink]
      << " of total=" << total;

  const std::string report = study::telemetry_report(result);
  EXPECT_NE(report.find("Telemetry rollup"), std::string::npos);
  EXPECT_NE(report.find("bottleneck attribution"), std::string::npos);
  EXPECT_NE(report.find("56k Modem"), std::string::npos);
}

}  // namespace
}  // namespace rv::telemetry
