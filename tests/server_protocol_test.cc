// Protocol-level tests: a hand-rolled client speaks raw RTSP/HTTP to
// RealServerApp over the simulated network and checks the exact responses.
#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "media/catalog.h"
#include "media/stream_wire.h"
#include "net/network.h"
#include "rtsp/http.h"
#include "rtsp/message.h"
#include "server/real_server.h"
#include "sim/simulator.h"
#include "transport/tcp.h"
#include "util/rng.h"

namespace rv {
namespace {

media::Catalog tiny_catalog() {
  media::CatalogSpec spec;
  spec.clips_per_site = 4;
  spec.playlist_size = 4;
  return media::Catalog(spec, {media::SiteProfile::kNewsBroadcaster});
}

// Raw TCP client that sends pre-serialized text chunks and records every
// text chunk that comes back.
struct RawClient {
  sim::Simulator sim;
  std::unique_ptr<net::Network> net_;
  net::NodeId client_node = 0;
  net::NodeId server_node = 0;
  media::Catalog catalog = tiny_catalog();
  std::unique_ptr<server::RealServerApp> server;
  std::unique_ptr<transport::TransportMux> mux;
  std::unique_ptr<transport::TcpConnection> conn;
  std::deque<std::string> replies;

  RawClient() {
    net_ = std::make_unique<net::Network>(sim);
    client_node = net_->add_node("client");
    server_node = net_->add_node("server");
    net_->add_link(client_node, server_node, mbps(10), msec(5));
    net_->compute_routes();
    server = std::make_unique<server::RealServerApp>(
        *net_, server_node, catalog, server::RealServerConfig{},
        util::Rng(3));
    mux = std::make_unique<transport::TransportMux>(*net_, client_node);
  }

  void connect(net::Port port) {
    conn = std::make_unique<transport::TcpConnection>(*mux,
                                                      transport::TcpConfig{});
    conn->set_on_chunk([this](std::shared_ptr<const net::PayloadMeta> meta,
                              std::int64_t) {
      if (const auto* text =
              dynamic_cast<const media::RtspTextMeta*>(meta.get())) {
        replies.push_back(text->text);
      }
    });
    conn->connect({server_node, port});
    sim.run_until(sim.now() + sec(2));
  }

  void send_text(const std::string& wire) {
    conn->send_chunk(static_cast<std::int64_t>(wire.size()),
                     std::make_shared<media::RtspTextMeta>(wire));
    sim.run_until(sim.now() + sec(2));
  }

  rtsp::Response send_rtsp(rtsp::Request req) {
    static int cseq = 0;
    req.cseq = ++cseq;
    const std::size_t before = replies.size();
    send_text(req.serialize());
    EXPECT_GT(replies.size(), before) << "no response to "
                                      << rtsp::method_name(req.method);
    if (replies.size() <= before) return {};
    const auto resp = rtsp::parse_response(replies.back());
    EXPECT_TRUE(resp.has_value());
    return resp.value_or(rtsp::Response{});
  }
};

rtsp::Request make_request(rtsp::Method method, std::uint32_t clip_id) {
  rtsp::Request req;
  req.method = method;
  req.url = server::RealServerApp::clip_url(clip_id);
  return req;
}

TEST(ServerProtocol, OptionsListsMethods) {
  RawClient client;
  client.connect(net::kRtspPort);
  const auto resp = client.send_rtsp(make_request(rtsp::Method::kOptions, 0));
  EXPECT_TRUE(resp.ok());
  const auto methods = resp.headers.get("Public");
  ASSERT_TRUE(methods.has_value());
  EXPECT_NE(methods->find("DESCRIBE"), std::string::npos);
  EXPECT_NE(methods->find("TEARDOWN"), std::string::npos);
}

TEST(ServerProtocol, DescribeReturnsClipDescription) {
  RawClient client;
  client.connect(net::kRtspPort);
  const std::uint32_t clip_id = client.catalog.clip(1).id();
  const auto resp =
      client.send_rtsp(make_request(rtsp::Method::kDescribe, clip_id));
  EXPECT_TRUE(resp.ok());
  EXPECT_NE(resp.body.find("duration="), std::string::npos);
  EXPECT_NE(resp.body.find("levels="), std::string::npos);
}

TEST(ServerProtocol, DescribeUnknownClipIs404) {
  RawClient client;
  client.connect(net::kRtspPort);
  const auto resp =
      client.send_rtsp(make_request(rtsp::Method::kDescribe, 99999));
  EXPECT_EQ(resp.status, rtsp::StatusCode::kNotFound);
}

TEST(ServerProtocol, DescribeUnavailableClipIs404) {
  RawClient client;
  const std::uint32_t clip_id = client.catalog.clip(0).id();
  client.server->set_unavailable({clip_id});
  client.connect(net::kRtspPort);
  const auto resp =
      client.send_rtsp(make_request(rtsp::Method::kDescribe, clip_id));
  EXPECT_EQ(resp.status, rtsp::StatusCode::kNotFound);
}

TEST(ServerProtocol, SetupBeforeDescribeIsBadRequest) {
  RawClient client;
  client.connect(net::kRtspPort);
  auto req = make_request(rtsp::Method::kSetup, client.catalog.clip(0).id());
  req.headers.set("Transport", "x-real-rdt/tcp");
  const auto resp = client.send_rtsp(req);
  EXPECT_EQ(resp.status, rtsp::StatusCode::kBadRequest);
}

TEST(ServerProtocol, PlayBeforeSetupIsBadRequest) {
  RawClient client;
  client.connect(net::kRtspPort);
  client.send_rtsp(
      make_request(rtsp::Method::kDescribe, client.catalog.clip(0).id()));
  const auto resp = client.send_rtsp(
      make_request(rtsp::Method::kPlay, client.catalog.clip(0).id()));
  EXPECT_EQ(resp.status, rtsp::StatusCode::kBadRequest);
}

TEST(ServerProtocol, UnsupportedTransportRejected) {
  RawClient client;
  client.connect(net::kRtspPort);
  const std::uint32_t clip_id = client.catalog.clip(0).id();
  client.send_rtsp(make_request(rtsp::Method::kDescribe, clip_id));
  auto req = make_request(rtsp::Method::kSetup, clip_id);
  req.headers.set("Transport", "RTP/AVP;client_port=88");
  const auto resp = client.send_rtsp(req);
  EXPECT_EQ(resp.status, rtsp::StatusCode::kUnsupportedTransport);
}

TEST(ServerProtocol, FullTcpSessionStreamsMedia) {
  RawClient client;
  client.connect(net::kRtspPort);
  const std::uint32_t clip_id = client.catalog.clip(0).id();
  int media_packets = 0;
  client.conn->set_on_chunk(
      [&](std::shared_ptr<const net::PayloadMeta> meta, std::int64_t) {
        if (const auto* text =
                dynamic_cast<const media::RtspTextMeta*>(meta.get())) {
          client.replies.push_back(text->text);
        } else if (dynamic_cast<const media::MediaPacketMeta*>(meta.get()) !=
                   nullptr) {
          ++media_packets;
        }
      });
  EXPECT_TRUE(
      client.send_rtsp(make_request(rtsp::Method::kDescribe, clip_id)).ok());
  auto setup = make_request(rtsp::Method::kSetup, clip_id);
  setup.headers.set("Transport", "x-real-rdt/tcp");
  setup.headers.set("Bandwidth", "450000");
  const auto setup_resp = client.send_rtsp(setup);
  EXPECT_TRUE(setup_resp.ok());
  EXPECT_TRUE(setup_resp.headers.contains("Session"));
  EXPECT_TRUE(client.send_rtsp(make_request(rtsp::Method::kPlay, clip_id))
                  .ok());
  client.sim.run_until(client.sim.now() + sec(10));
  EXPECT_GT(media_packets, 20);
  // PAUSE stops the flow.
  EXPECT_TRUE(client.send_rtsp(make_request(rtsp::Method::kPause, clip_id))
                  .ok());
  const int frozen = media_packets;
  client.sim.run_until(client.sim.now() + sec(5));
  EXPECT_LE(media_packets, frozen + 2);
  EXPECT_TRUE(
      client.send_rtsp(make_request(rtsp::Method::kTeardown, clip_id)).ok());
}

TEST(ServerProtocol, MalformedControlMessageGetsBadRequest) {
  RawClient client;
  client.connect(net::kRtspPort);
  client.send_text("THIS IS NOT RTSP\r\n\r\n");
  ASSERT_FALSE(client.replies.empty());
  const auto resp = rtsp::parse_response(client.replies.back());
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, rtsp::StatusCode::kBadRequest);
}

TEST(ServerProtocol, HttpMetafileFetch) {
  RawClient client;
  client.connect(80);
  const std::uint32_t clip_id = client.catalog.clip(2).id();
  rtsp::HttpRequest req;
  req.path = server::RealServerApp::metafile_path(clip_id);
  client.send_text(req.serialize());
  ASSERT_FALSE(client.replies.empty());
  const auto resp = rtsp::parse_http_response(client.replies.back());
  ASSERT_TRUE(resp.has_value());
  EXPECT_TRUE(resp->ok());
  EXPECT_EQ(rtsp::parse_ram_metafile(resp->body),
            server::RealServerApp::clip_url(clip_id));
}

TEST(ServerProtocol, HttpUnknownMetafileIs404) {
  RawClient client;
  client.connect(80);
  rtsp::HttpRequest req;
  req.path = "/clip/424242.ram";
  client.send_text(req.serialize());
  ASSERT_FALSE(client.replies.empty());
  const auto resp = rtsp::parse_http_response(client.replies.back());
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 404);
}

TEST(ServerProtocol, HttpConnectionClosesAfterResponse) {
  RawClient client;
  client.connect(80);
  bool closed = false;
  client.conn->set_on_closed([&] { closed = true; });
  rtsp::HttpRequest req;
  req.path = server::RealServerApp::metafile_path(client.catalog.clip(0).id());
  client.send_text(req.serialize());
  client.sim.run_until(client.sim.now() + sec(5));
  EXPECT_TRUE(closed);  // HTTP/1.0 semantics
}

}  // namespace
}  // namespace rv
