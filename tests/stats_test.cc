#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "stats/cdf.h"
#include "stats/correlation.h"
#include "stats/csv.h"
#include "stats/histogram.h"
#include "stats/render.h"
#include "stats/summary.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/strings.h"

namespace rv::stats {
namespace {

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, SampleVariance) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 1.0);
}

TEST(Summary, EmptyThrows) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.mean(), util::CheckError);
  EXPECT_THROW(s.min(), util::CheckError);
}

TEST(Summary, Quantiles) {
  const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.125), 1.5);  // interpolated
}

TEST(Summary, Fractions) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(fraction_below(xs, 3.0), 0.5);
  EXPECT_DOUBLE_EQ(fraction_at_or_above(xs, 3.0), 0.5);
  EXPECT_DOUBLE_EQ(fraction_below(xs, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(fraction_below(xs, 10.0), 1.0);
}

TEST(Cdf, EvaluatesEmpirically) {
  const std::vector<double> xs = {1.0, 2.0, 2.0, 4.0};
  const Cdf cdf(xs);
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.at(3.9), 0.75);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.mean(), 2.25);
  EXPECT_DOUBLE_EQ(cdf.median(), 2.0);
}

TEST(Cdf, InverseIsRightInverse) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0, 50.0};
  const Cdf cdf(xs);
  EXPECT_DOUBLE_EQ(cdf.inverse(0.2), 10.0);
  EXPECT_DOUBLE_EQ(cdf.inverse(0.5), 20.0);
  EXPECT_DOUBLE_EQ(cdf.inverse(1.0), 50.0);
}

TEST(Cdf, SampleEndpointsCoverRange) {
  const std::vector<double> xs = {0.0, 5.0, 10.0};
  const Cdf cdf(xs);
  const auto pts = cdf.sample(11);
  ASSERT_EQ(pts.size(), 11u);
  EXPECT_DOUBLE_EQ(pts.front().x, 0.0);
  EXPECT_DOUBLE_EQ(pts.back().x, 10.0);
  EXPECT_DOUBLE_EQ(pts.back().f, 1.0);
}

// Property: a CDF is monotone non-decreasing and bounded by [0, 1], for any
// random dataset.
class CdfPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CdfPropertyTest, MonotoneAndBounded) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n = 1 + static_cast<int>(rng.uniform_int(0, 499));
  std::vector<double> xs;
  xs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) xs.push_back(rng.normal(0.0, 100.0));
  const Cdf cdf(xs);
  double prev = 0.0;
  for (double x = -400.0; x <= 400.0; x += 7.3) {
    const double f = cdf.at(x);
    EXPECT_GE(f, prev);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
  EXPECT_DOUBLE_EQ(cdf.at(cdf.max()), 1.0);
}

INSTANTIATE_TEST_SUITE_P(RandomDatasets, CdfPropertyTest,
                         ::testing::Range(0, 20));

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.9);   // bin 4
  h.add(-3.0);  // clamped to bin 0
  h.add(42.0);  // clamped to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(2), 6.0);
}

TEST(CountTable, CountsAndSorts) {
  CountTable t;
  t.add("US", 3);
  t.add("UK");
  t.add("US", 2);
  EXPECT_EQ(t.count("US"), 5u);
  EXPECT_EQ(t.count("UK"), 1u);
  EXPECT_EQ(t.count("FR"), 0u);
  EXPECT_EQ(t.total(), 6u);
  const auto sorted = t.sorted_by_count();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted.front().first, "UK");
  EXPECT_EQ(sorted.back().first, "US");
}

TEST(Correlation, PerfectLinear) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const auto fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 0.0, 1e-12);
}

TEST(Correlation, AntiCorrelated) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> ys = {3.0, 2.0, 1.0};
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Correlation, ConstantSeriesYieldsNaNNotAbort) {
  // Zero variance on either axis makes r undefined; it must come back as
  // NaN for the caller to render as "n/a", not crash the figure.
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> flat = {4.0, 4.0, 4.0};
  EXPECT_TRUE(std::isnan(pearson(xs, flat)));
  EXPECT_TRUE(std::isnan(pearson(flat, xs)));
  EXPECT_TRUE(std::isnan(pearson(flat, flat)));
}

TEST(Correlation, ConstantXMakesFitUndefined) {
  const std::vector<double> flat = {2.0, 2.0, 2.0};
  const std::vector<double> ys = {1.0, 5.0, 9.0};
  const auto fit = linear_fit(flat, ys);
  EXPECT_TRUE(std::isnan(fit.slope));
  EXPECT_TRUE(std::isnan(fit.intercept));
  EXPECT_TRUE(std::isnan(fit.r));
}

TEST(Correlation, ConstantYStillFitsFlatLine) {
  // y has no variance: the least-squares line is y = c (slope 0), but r is
  // undefined.
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> flat = {4.0, 4.0, 4.0};
  const auto fit = linear_fit(xs, flat);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 4.0);
  EXPECT_TRUE(std::isnan(fit.r));
}

TEST(Correlation, NaNRendersAsNotAvailable) {
  EXPECT_EQ(util::format_double(std::numeric_limits<double>::quiet_NaN(), 2),
            "n/a");
}

TEST(Correlation, IndependentNearZero) {
  util::Rng rng(5);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 20'000; ++i) {
    xs.push_back(rng.normal());
    ys.push_back(rng.normal());
  }
  EXPECT_NEAR(pearson(xs, ys), 0.0, 0.03);
}

TEST(Render, CdfPlotContainsLegendAndTitle) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {2.0, 3.0, 4.0};
  std::vector<LabeledCdf> series;
  series.push_back({"alpha", Cdf(a)});
  series.push_back({"beta", Cdf(b)});
  RenderOptions opts;
  opts.title = "Figure X";
  opts.x_label = "Frame Rate (fps)";
  const std::string out = render_cdfs(series, opts);
  EXPECT_NE(out.find("Figure X"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
  EXPECT_NE(out.find("Frame Rate"), std::string::npos);
}

TEST(Render, BarsShowCounts) {
  CountTable t;
  t.add("MA", 10);
  t.add("CT", 2);
  const std::string out = render_bars(t, "Clips");
  EXPECT_NE(out.find("MA"), std::string::npos);
  EXPECT_NE(out.find("10"), std::string::npos);
}

TEST(Render, ComparisonTable) {
  const std::vector<ComparisonRow> rows = {
      {"mean fps", "10", "10.3"},
      {"% < 3 fps", "25%", "24.1%"},
  };
  const std::string out = render_comparison("Fig 11", rows);
  EXPECT_NE(out.find("mean fps"), std::string::npos);
  EXPECT_NE(out.find("10.3"), std::string::npos);
}

TEST(Csv, EscapesSpecials) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesRows) {
  const std::string path = ::testing::TempDir() + "/rv_csv_test.csv";
  {
    CsvWriter w(path);
    w.write_row({"x", "f"});
    w.write_row({"1.5", "0.25"});
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "x,f");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "1.5,0.25");
}

TEST(MergeableHistogram, AddClampsIntoEdgeBins) {
  MergeableHistogram h(0.0, 10.0, 10);
  h.add(-5.0);      // below range -> first bin
  h.add(1e9);       // above range -> last bin
  h.add(10.0);      // exactly hi -> last bin
  h.add(4.5);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.bin_count(4), 1u);
}

TEST(MergeableHistogram, MergeIsCommutativeAndAssociativeBinExact) {
  util::Rng rng(17);
  const auto make = [&](int n, double lo, double hi) {
    MergeableHistogram h(0.0, 100.0, 64);
    for (int i = 0; i < n; ++i) h.add(rng.uniform(lo, hi));
    return h;
  };
  const MergeableHistogram a = make(500, 0.0, 40.0);
  const MergeableHistogram b = make(300, 20.0, 90.0);
  const MergeableHistogram c = make(200, -10.0, 120.0);

  MergeableHistogram ab = a;
  ab.merge(b);
  MergeableHistogram ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba);  // commutative, counts bin-exact

  MergeableHistogram ab_c = ab;
  ab_c.merge(c);
  MergeableHistogram bc = b;
  bc.merge(c);
  MergeableHistogram a_bc = a;
  a_bc.merge(bc);
  EXPECT_EQ(ab_c, a_bc);  // associative
  EXPECT_EQ(ab_c.total(), 1000u);
}

TEST(MergeableHistogram, MergeRequiresSameGeometry) {
  const MergeableHistogram a(0.0, 10.0, 10);
  const MergeableHistogram b(0.0, 10.0, 20);
  const MergeableHistogram c(0.0, 20.0, 10);
  EXPECT_FALSE(a.same_geometry(b));
  EXPECT_FALSE(a.same_geometry(c));
  EXPECT_TRUE(a.same_geometry(MergeableHistogram(0.0, 10.0, 10)));
}

TEST(MergeableHistogram, QuantilesInterpolateWithinBins) {
  MergeableHistogram h(0.0, 10.0, 10);
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));  // empty
  for (int i = 0; i < 100; ++i) h.add(i * 0.1);  // ~uniform over [0, 10)
  EXPECT_NEAR(h.quantile(0.5), 5.0, 0.2);
  EXPECT_NEAR(h.quantile(0.95), 9.5, 0.2);
  EXPECT_LE(h.quantile(0.0), h.quantile(0.5));
  EXPECT_LE(h.quantile(0.5), h.quantile(1.0));
  EXPECT_LE(h.quantile(1.0), 10.0);
}

TEST(MergeableHistogram, SixtyFourShardMergeMatchesSingleProcess) {
  // Campaign-shaped: 64 shards each fold a slice of the same value stream;
  // any merge order/grouping must land on the single-process histogram.
  constexpr int kShards = 64, kPerShard = 200;
  MergeableHistogram whole(0.0, 50.0, 80);
  std::vector<MergeableHistogram> shards(
      kShards, MergeableHistogram(0.0, 50.0, 80));
  util::Rng rng(4242);
  for (int s = 0; s < kShards; ++s) {
    for (int i = 0; i < kPerShard; ++i) {
      const double v = rng.uniform(-5.0, 60.0);
      whole.add(v);
      shards[static_cast<std::size_t>(s)].add(v);
    }
  }

  MergeableHistogram in_order(0.0, 50.0, 80);
  for (const auto& sh : shards) in_order.merge(sh);
  EXPECT_EQ(in_order, whole);
  EXPECT_EQ(in_order.total(),
            static_cast<std::uint64_t>(kShards) * kPerShard);

  // Reverse order and pairwise-tree grouping give the same bytes.
  MergeableHistogram reversed(0.0, 50.0, 80);
  for (auto it = shards.rbegin(); it != shards.rend(); ++it) {
    reversed.merge(*it);
  }
  EXPECT_EQ(reversed, whole);

  std::vector<MergeableHistogram> level = shards;
  while (level.size() > 1) {
    std::vector<MergeableHistogram> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      MergeableHistogram m = level[i];
      m.merge(level[i + 1]);
      next.push_back(m);
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  EXPECT_EQ(level[0], whole);
}

TEST(MergeableHistogram, QuantilesStableAtHundredMillionWeight) {
  // add_bin lets a deserialized shard carry ~1e8 total weight; quantiles
  // must not lose precision or overflow at that count.
  MergeableHistogram h(0.0, 100.0, 100);
  for (std::size_t b = 0; b < 100; ++b) h.add_bin(b, 1'000'000);
  EXPECT_EQ(h.total(), 100'000'000u);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.25), 25.0, 1.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.0);

  // Doubling via self-merge keeps the shape: quantiles are weight-scale
  // invariant.
  MergeableHistogram doubled = h;
  doubled.merge(h);
  EXPECT_EQ(doubled.total(), 200'000'000u);
  EXPECT_EQ(doubled.quantile(0.5), h.quantile(0.5));
  EXPECT_EQ(doubled.quantile(0.99), h.quantile(0.99));
}

TEST(MergeableHistogram, AddBinRejectsOutOfRangeAndMergeRejectsGeometry) {
  MergeableHistogram h(0.0, 10.0, 10);
  h.add_bin(9, 3);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_THROW(h.add_bin(10, 1), util::CheckError);

  MergeableHistogram narrow(0.0, 10.0, 20);
  EXPECT_THROW(h.merge(narrow), util::CheckError);
  MergeableHistogram shifted(1.0, 10.0, 10);
  EXPECT_THROW(h.merge(shifted), util::CheckError);
  EXPECT_EQ(h.total(), 3u);  // failed merges leave the histogram untouched
}

}  // namespace
}  // namespace rv::stats
